// One testing.B benchmark per paper table/figure (at reduced scale so the
// full suite stays minutes, not hours — the cmd/mto-bench binary runs the
// paper-scale versions), plus micro-benchmarks, design-choice ablations,
// and the fleet-scaling pair (see README.md).
package rewire_test

import (
	"testing"
	"time"

	"rewire/internal/core"
	"rewire/internal/diag"
	"rewire/internal/estimate"
	"rewire/internal/exp"
	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/spectral"
	"rewire/internal/walk"
)

// --- Paper artifacts -------------------------------------------------------

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Table1(false, 40, 1)
		if len(res.Rows) != 3 {
			b.Fatal("table1 incomplete")
		}
	}
}

func BenchmarkRunningExampleBarbell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunningExample(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if res.PhiRM <= res.Phi0 {
			b.Fatal("no conductance gain")
		}
	}
}

func benchFig7(b *testing.B, dataset string) {
	ds := exp.DatasetByName(dataset, false)
	if ds == nil {
		b.Fatal("missing dataset")
	}
	cfg := exp.QuickFig7Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7(*ds, cfg, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Epinions(b *testing.B)  { benchFig7(b, "Epinions") }
func BenchmarkFig7SlashdotA(b *testing.B) { benchFig7(b, "Slashdot A") }
func BenchmarkFig7SlashdotB(b *testing.B) { benchFig7(b, "Slashdot B") }

func BenchmarkFig8KLDivergence(b *testing.B) {
	ds := exp.SmallDatasets()[:1]
	cfg := exp.QuickFig8Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig8(ds, cfg, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9GewekeSweep(b *testing.B) {
	ds := exp.DatasetByName("Slashdot B", false)
	cfg := exp.QuickFig9Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9(*ds, cfg, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10LatentMixing(b *testing.B) {
	cfg := exp.QuickFig10Config()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10(cfg, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11GooglePlus(b *testing.B) {
	cfg := exp.QuickFig11Config()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11(false, cfg, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem6Bound(b *testing.B) {
	cfg := exp.QuickTheorem6Config()
	for i := 0; i < b.N; i++ {
		res, err := exp.Theorem6(cfg, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.GainBound < 1.04 || res.GainBound > 1.06 {
			b.Fatalf("gain bound %v", res.GainBound)
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// benchSamplerVariant measures unique-query cost per sample for one MTO
// configuration on the small Epinions stand-in.
func benchSamplerVariant(b *testing.B, cfg core.Config) {
	g := exp.SmallDatasets()[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := osn.NewService(g, nil, osn.Config{})
		client := osn.NewClient(svc)
		s := core.NewSampler(client, 0, cfg, rng.New(uint64(i+1)))
		info := func(v graph.NodeID) (int, estimate.Attrs) { return client.Degree(v), estimate.Attrs{} }
		res := estimate.RunSession(s, s, estimate.AvgDegree(), info, client.UniqueQueries,
			estimate.SessionConfig{BurnIn: diag.NewGeweke(0.3, 200), MaxBurnInSteps: 4000, Samples: 2000})
		b.ReportMetric(float64(res.FinalCost), "queries/run")
	}
}

func BenchmarkAblationCriterionOriginal(b *testing.B) {
	benchSamplerVariant(b, core.DefaultConfig())
}

func BenchmarkAblationCriterionOverlay(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Criterion = core.EvalOverlay
	benchSamplerVariant(b, cfg)
}

func BenchmarkAblationNoExtension(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.UseExtended = false
	benchSamplerVariant(b, cfg)
}

func BenchmarkAblationLazyProb1(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.LazyProb = 1.0
	benchSamplerVariant(b, cfg)
}

func BenchmarkAblationRemovalOnly(b *testing.B) {
	benchSamplerVariant(b, core.RemovalOnlyConfig())
}

func BenchmarkAblationReplacementOnly(b *testing.B) {
	benchSamplerVariant(b, core.ReplacementOnlyConfig())
}

func BenchmarkAblationWeightExact(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Weights = core.WeightExact
	benchSamplerVariant(b, cfg)
}

func BenchmarkAblationWeightSampled(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Weights = core.WeightSampled
	benchSamplerVariant(b, cfg)
}

// --- Fleet scaling -----------------------------------------------------------

// benchFleetSamples draws a fixed sample budget with k shared-overlay MTO
// samplers over one shared caching client, either concurrently (walk.Fleet,
// k goroutines) or sequentially round-robin (walk.Parallel, one goroutine).
// The service charges a real 200µs round-trip per unique query — the
// network cost a crawler actually pays — so comparing FleetConcurrentK16
// against FleetSequentialK16 measures the wall-clock win of overlapping
// in-flight queries (and, on multicore hardware, the sampling CPU too).
func benchFleetSamples(b *testing.B, k int, concurrent bool) {
	g := exp.SmallDatasets()[0].Graph
	const samples = 20000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := osn.NewService(g, nil, osn.Config{RealLatency: 200 * time.Microsecond})
		client := osn.NewClient(svc)
		r := rng.New(uint64(i + 1))
		starts := core.SpreadStarts(k, g.NumNodes(), r)
		if concurrent {
			f, _ := core.NewFleet(client, starts, core.DefaultConfig(), r)
			f.Samples(samples)
		} else {
			p, _ := core.NewParallelSamplers(client, starts, core.DefaultConfig(), r)
			walk.Run(p, samples)
		}
		b.ReportMetric(float64(client.UniqueQueries()), "queries/run")
	}
}

func BenchmarkFleetConcurrentK1(b *testing.B)  { benchFleetSamples(b, 1, true) }
func BenchmarkFleetConcurrentK4(b *testing.B)  { benchFleetSamples(b, 4, true) }
func BenchmarkFleetConcurrentK16(b *testing.B) { benchFleetSamples(b, 16, true) }

func BenchmarkFleetSequentialK1(b *testing.B)  { benchFleetSamples(b, 1, false) }
func BenchmarkFleetSequentialK4(b *testing.B)  { benchFleetSamples(b, 4, false) }
func BenchmarkFleetSequentialK16(b *testing.B) { benchFleetSamples(b, 16, false) }

// --- Prefetch pipeline -------------------------------------------------------

// benchFleetPrefetch draws a fixed partitioned sample budget with a k-member
// SRW fleet over one prefetching client, paying a real 200µs round-trip per
// service query. The budget is partitioned (not raced), so the trajectories
// — and with them the unique-query bill reported as queries/run — are
// byte-identical across strategies: compare BenchmarkFleetPrefetchOff
// against the strategy variants to read off the pure wall-clock win of
// speculation at equal query cost (≥2x for the pipelined strategies; see
// bench/baseline.json where CI gates exactly that).
func benchFleetPrefetch(b *testing.B, strategy string) {
	ds := exp.SmallDatasets()[0]
	cfg := exp.QuickPrefetchExpConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := exp.RunPrefetchFleet(ds, cfg, strategy, uint64(i+1))
		b.ReportMetric(float64(row.Unique), "queries/run")
	}
}

func BenchmarkFleetPrefetchOff(b *testing.B)      { benchFleetPrefetch(b, exp.PrefetchNone) }
func BenchmarkFleetPrefetchNextHop(b *testing.B)  { benchFleetPrefetch(b, exp.PrefetchNextHop) }
func BenchmarkFleetPrefetchFrontier(b *testing.B) { benchFleetPrefetch(b, exp.PrefetchFrontier) }

// benchMTOPrefetch is the single-walker MTO counterpart: pivot-candidate
// prefetch against the identical plain run.
func benchMTOPrefetch(b *testing.B, prefetch bool) {
	ds := exp.SmallDatasets()[0]
	cfg := exp.QuickPrefetchExpConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := exp.RunPrefetchMTO(ds, cfg, prefetch, uint64(i+1))
		b.ReportMetric(float64(row.Unique), "queries/run")
	}
}

func BenchmarkMTOPivotPrefetchOff(b *testing.B) { benchMTOPrefetch(b, false) }
func BenchmarkMTOPivotPrefetchOn(b *testing.B)  { benchMTOPrefetch(b, true) }

// --- Storage-engine contention ----------------------------------------------

// benchContention hammers one shared client with k zero-latency SRW walkers
// on k goroutines (partitioned step quotas, no fleet plumbing), isolating
// the storage engine's locking cost. shards=1 is the legacy single-RWMutex
// layout every store used before the sharded engine; shards=0 selects the
// sharded default. The gap between the two is a multicore effect — on one
// core they tie — which is why CI gates it through the conservative floor in
// bench/baseline.json rather than through these smoke benchmarks.
func benchContention(b *testing.B, k, shards int) {
	ds := exp.SmallDatasets()[0]
	cfg := exp.QuickContentionConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := exp.RunContention(ds, k, shards, cfg.Samples, uint64(i+1))
		b.ReportMetric(float64(row.Unique), "queries/run")
	}
}

func BenchmarkContentionLegacyK1(b *testing.B)   { benchContention(b, 1, 1) }
func BenchmarkContentionLegacyK4(b *testing.B)   { benchContention(b, 4, 1) }
func BenchmarkContentionLegacyK16(b *testing.B)  { benchContention(b, 16, 1) }
func BenchmarkContentionLegacyK64(b *testing.B)  { benchContention(b, 64, 1) }
func BenchmarkContentionShardedK1(b *testing.B)  { benchContention(b, 1, 0) }
func BenchmarkContentionShardedK4(b *testing.B)  { benchContention(b, 4, 0) }
func BenchmarkContentionShardedK16(b *testing.B) { benchContention(b, 16, 0) }
func BenchmarkContentionShardedK64(b *testing.B) { benchContention(b, 64, 0) }

// --- Micro-benchmarks of the hot paths --------------------------------------

func BenchmarkRemovalCriterion(b *testing.B) {
	g := exp.SmallDatasets()[0].Graph
	edges := g.Edges()
	b.ResetTimer()
	fired := 0
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if core.RemovableTheorem3(g.CountCommonNeighbors(e.U, e.V), g.Degree(e.U), g.Degree(e.V)) {
			fired++
		}
	}
	_ = fired
}

func BenchmarkMTOStep(b *testing.B) {
	g := exp.SmallDatasets()[0].Graph
	s := core.NewSampler(g, 0, core.DefaultConfig(), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkSRWStepViaClient(b *testing.B) {
	g := exp.SmallDatasets()[0].Graph
	svc := osn.NewService(g, nil, osn.Config{})
	client := osn.NewClient(svc)
	w, _, err := exp.NewWalker(exp.AlgSRW, client, g.NumNodes(), 0, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

func BenchmarkBuildOverlayEpinionsSmall(b *testing.B) {
	g := exp.SmallDatasets()[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildOverlay(g, core.BuildOptions{Removal: true, Replacement: true}, rng.New(uint64(i+1)))
	}
}

func BenchmarkSocialGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.Social(gen.SocialConfig{Nodes: 2659, TargetEdges: 10012}, rng.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactConductance22(b *testing.B) {
	g := gen.Barbell(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spectral.ExactConductance(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLambda2PowerIteration(b *testing.B) {
	g := exp.SmallDatasets()[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spectral.Lambda2(g, 500, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGewekeObserve(b *testing.B) {
	m := diag.NewGeweke(0.1, 100)
	for i := 0; i < b.N; i++ {
		m.Observe(float64(i % 17))
		if i%1000 == 999 {
			m.Converged()
		}
	}
}
