// Package analysistest runs one analyzer over a fixture module and checks
// its diagnostics against // want comments, mirroring (a useful subset of)
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is an ordinary Go module rooted at testdata/src/<analyzer>/ —
// it has its own go.mod, so the loader's `go list` pipeline exercises the
// exact code path production rewirelint uses. Every line expected to
// produce diagnostics carries a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// with one double-quoted regexp per expected diagnostic on that line.
// Diagnostics on lines without a want comment, and want patterns no
// diagnostic matched, both fail the test. //rewirelint:allow suppression is
// active, so fixtures can also prove that the annotated form stays silent.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"rewire/tools/rewirelint/analysis"
	"rewire/tools/rewirelint/loader"
	"rewire/tools/rewirelint/runner"
)

// wantRe pulls the double-quoted patterns out of a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture module at dir (patterns ./...), applies the analyzer,
// and diffs findings against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.Load(abs, "./...")
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: fixture %s matched no packages", dir)
	}
	findings, err := runner.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	// Index findings by file:line, then match each line's findings against
	// that line's want patterns.
	got := make(map[string][]runner.Finding)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		got[key] = append(got[key], f)
	}

	for key, patterns := range wants {
		fs := got[key]
		delete(got, key)
		if len(fs) != len(patterns) {
			t.Errorf("%s: want %d diagnostic(s), got %d: %v", key, len(patterns), len(fs), messages(fs))
			continue
		}
		for _, p := range patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				t.Errorf("%s: bad want pattern %q: %v", key, p, err)
				continue
			}
			matched := false
			for _, f := range fs {
				if re.MatchString(f.Message) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: no diagnostic matched %q; got %v", key, p, messages(fs))
			}
		}
	}
	for key, fs := range got {
		t.Errorf("%s: unexpected diagnostic(s): %v", key, messages(fs))
	}
}

// collectWants scans every fixture source file for want comments, keyed by
// file:line.
func collectWants(pkgs []*loader.Package) (map[string][]string, error) {
	wants := make(map[string][]string)
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			name := pkg.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			src, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			for i, line := range strings.Split(string(src), "\n") {
				idx := strings.Index(line, "// want ")
				if idx < 0 {
					continue
				}
				var patterns []string
				for _, m := range wantRe.FindAllStringSubmatch(line[idx+len("// want "):], -1) {
					unq := strings.ReplaceAll(strings.ReplaceAll(m[1], `\"`, `"`), `\\`, `\`)
					patterns = append(patterns, unq)
				}
				if len(patterns) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", name, i+1)
				}
				wants[fmt.Sprintf("%s:%d", name, i+1)] = patterns
			}
		}
	}
	return wants, nil
}

func messages(fs []runner.Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Message
	}
	return out
}
