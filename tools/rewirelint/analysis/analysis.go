// Package analysis is a deliberately tiny, dependency-free subset of
// golang.org/x/tools/go/analysis: just enough structure — an Analyzer with a
// Run function over a typed Pass, reporting Diagnostics — for rewirelint's
// project-specific checkers. The shapes mirror x/tools on purpose, so the
// suite can migrate onto the real framework mechanically if the repo ever
// grows a dependency budget; until then the tools module builds offline with
// the standard library alone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rewirelint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by rewirelint -list.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed and type-checked state to an Analyzer.
// Only non-test files are loaded: the repo's invariants protect production
// code paths, and tests are deliberately free to use time.Now,
// context.Background, et al.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver (which applies
	// //rewirelint:allow suppression before printing).
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
