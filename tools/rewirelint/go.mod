module rewire/tools/rewirelint

go 1.24
