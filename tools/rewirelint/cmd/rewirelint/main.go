// Command rewirelint is the repo's multichecker: it machine-enforces the
// concurrency, determinism, and billing invariants the paper reproduction
// depends on, as compiler-grade diagnostics instead of code-review folklore.
//
// Usage:
//
//	rewirelint [-analyzers a,b] [-list] [packages]
//
// run from the target module's root (patterns default to ./...). Exit code
// 0 means clean, 1 means findings, 2 means the load itself failed. Each
// finding prints as file:line:col: message (analyzer). Deliberate
// exceptions are annotated in source:
//
//	//rewirelint:allow <analyzer> <reason>
//
// suppressing that analyzer on the same line or the line below. See each
// analyzer's package documentation (rewirelint -list) for the invariant it
// encodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rewire/tools/rewirelint/analysis"
	"rewire/tools/rewirelint/loader"
	"rewire/tools/rewirelint/runner"
	"rewire/tools/rewirelint/suite"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	dir := flag.String("C", ".", "directory of the module to analyze")
	flag.Parse()

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = filter(analyzers, strings.Split(*only, ","))
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "rewirelint: no analyzer matches -analyzers=%s\n", *only)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rewirelint:", err)
		os.Exit(2)
	}
	findings, err := runner.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rewirelint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rewirelint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// filter keeps the analyzers whose names appear in names.
func filter(all []*analysis.Analyzer, names []string) []*analysis.Analyzer {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
