package rewirelint_test

import (
	"path/filepath"
	"testing"

	"rewire/tools/rewirelint/loader"
	"rewire/tools/rewirelint/runner"
	"rewire/tools/rewirelint/suite"
)

// TestRepoIsClean is the meta-test the CI analyze job mirrors: the whole
// repository, examples and commands included, must pass the full analyzer
// suite with zero findings. Every deliberate exception in the repo is
// therefore a visible, reasoned //rewirelint:allow annotation — an
// unannotated violation anywhere fails this test before it fails review.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages for the repo")
	}
	findings, err := runner.Run(pkgs, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("repo has %d rewirelint finding(s); fix them or annotate with //rewirelint:allow <analyzer> <reason>", len(findings))
	}
}

// TestSuiteNames pins the analyzer set: CI docs, README, and allow
// annotations all reference these names.
func TestSuiteNames(t *testing.T) {
	want := []string{"lockheld", "ctxflow", "deterministic", "sentinel", "aliasing"}
	all := suite.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
