// Package bench is off the gated path list: timing and ambient entropy are
// its job, and the analyzer must stay silent here.
package bench

import (
	"math/rand"
	"time"
)

func stamp() int64 { return time.Now().UnixNano() }

func draw() int { return rand.Intn(10) }

func keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
