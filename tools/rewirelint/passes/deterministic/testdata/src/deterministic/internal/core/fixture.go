// Package core sits on a gated path suffix (internal/core), so every source
// of ambient entropy below must be reported unless repaired or annotated.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a seed-deterministic package"
}

func globalDraw() int {
	return rand.Intn(10) // want "global rand.Intn in a seed-deterministic package"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle in a seed-deterministic package"
}

func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seed ctors are the sanctioned path
	return r.Intn(10)
}

func unsortedKeys(m map[int]string) []int {
	var out []int
	for k := range m { // want "map iteration order is randomized"
		out = append(out, k)
	}
	return out
}

func sortedKeys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func countOnly(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func annotatedCollect(m map[int]string) []int {
	var out []int
	//rewirelint:allow deterministic the consumer is an order-insensitive set-union
	for k := range m {
		out = append(out, k)
	}
	return out
}
