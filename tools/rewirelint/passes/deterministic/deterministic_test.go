package deterministic_test

import (
	"testing"

	"rewire/tools/rewirelint/analysistest"
	"rewire/tools/rewirelint/passes/deterministic"
)

func TestDeterministic(t *testing.T) {
	analysistest.Run(t, "testdata/src/deterministic", deterministic.Analyzer)
}
