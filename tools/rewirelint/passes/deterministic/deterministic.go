// Package deterministic guards the repo's headline reproducibility claim:
// at a fixed seed, trajectories and query bills are byte-identical, run
// after run, machine after machine. That only holds while the sampling
// packages stay free of ambient entropy, so inside the seed-deterministic
// packages (internal/core, internal/walk, internal/graph, internal/gen,
// internal/estimate, internal/stats) the analyzer bans:
//
//   - time.Now — wall-clock reads leak scheduling into results (timing
//     belongs in the bench/exp layers, which are not gated);
//   - the global math/rand and math/rand/v2 generators (rand.Intn,
//     rand.Shuffle, ...), which are process-global and, since Go 1.20,
//     auto-seeded. All randomness must flow from an explicitly seeded
//     generator (internal/rng, or rand.New(rand.NewSource(seed)));
//     seed-accepting constructors (rand.New*, rand.NewSource) stay legal;
//   - building ordered output (append, channel send) while ranging over a
//     map, unless the enclosing function visibly sorts afterwards — Go maps
//     iterate in deliberately randomized order, the exact bug that once made
//     BarabasiAlbert emit a different graph per run at the same seed.
//
// Other packages may use all three freely; deliberate exceptions inside the
// gated set take //rewirelint:allow deterministic <reason>.
package deterministic

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rewire/tools/rewirelint/analysis"
	"rewire/tools/rewirelint/internal/lintutil"
)

// Analyzer reports ambient-entropy use inside seed-deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "deterministic",
	Doc:  "ban time.Now, the global math/rand generator, and map-order-dependent output in seed-deterministic packages",
	Run:  run,
}

// GatedSuffixes are the import-path suffixes of the seed-deterministic
// packages. A package is gated when its path equals a suffix or ends in
// "/"+suffix, so the rule follows the packages through module renames and
// applies to the test fixtures' miniature copies.
var GatedSuffixes = []string{
	"internal/core",
	"internal/walk",
	"internal/graph",
	"internal/gen",
	"internal/estimate",
	"internal/stats",
}

// gated reports whether pkgPath is in the seed-deterministic set.
func gated(pkgPath string) bool {
	for _, s := range GatedSuffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// seedCtors are math/rand package-level functions that are fine in gated
// code: they construct explicitly seeded generators rather than consuming
// the global one.
var seedCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	if !gated(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEntropy(pass, fd.Body)
			checkMapOrder(pass, fd)
		}
	}
	return nil
}

// checkEntropy flags time.Now and global math/rand draws.
func checkEntropy(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return true // methods (e.g. on *rand.Rand) are seeded instances
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				pass.Reportf(sel.Pos(), "time.Now in a seed-deterministic package; results must be a function of the seed alone")
			}
		case "math/rand", "math/rand/v2":
			if !seedCtors[fn.Name()] {
				pass.Reportf(sel.Pos(), "global rand.%s in a seed-deterministic package; draw from an explicitly seeded generator instead", fn.Name())
			}
		}
		return true
	})
}

// checkMapOrder flags map-range loops whose bodies emit ordered output
// (append or channel send) with no visible sort after the loop.
func checkMapOrder(pass *analysis.Pass, fd *ast.FuncDecl) {
	var ranges []*ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			if t, ok := pass.TypesInfo.Types[r.X]; ok {
				if _, isMap := t.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, r)
				}
			}
		}
		return true
	})
	for _, r := range ranges {
		pos := orderedOutput(r.Body)
		if !pos.IsValid() {
			continue
		}
		if sortsAfter(pass, fd.Body, r) {
			continue
		}
		pass.Reportf(r.Pos(), "map iteration order is randomized, but this loop builds ordered output; iterate sorted keys or sort the result")
	}
}

// orderedOutput returns the position of the first append call or channel
// send inside body (invalid when there is none).
func orderedOutput(body *ast.BlockStmt) (pos token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			pos = x.Pos()
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
				pos = x.Pos()
				return false
			}
		}
		return true
	})
	return pos
}

// sortsAfter reports whether the enclosing function body calls a sort
// (sort.* or slices.Sort*) lexically after the range loop — the canonical
// collect-then-sort repair.
func sortsAfter(pass *analysis.Pass, body *ast.BlockStmt, r *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(fn.Name(), "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}
