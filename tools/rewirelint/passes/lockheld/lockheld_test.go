package lockheld_test

import (
	"testing"

	"rewire/tools/rewirelint/analysistest"
	"rewire/tools/rewirelint/passes/lockheld"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockheld", lockheld.Analyzer)
}
