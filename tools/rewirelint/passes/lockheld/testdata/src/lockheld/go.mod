module lockheldfix

go 1.24
