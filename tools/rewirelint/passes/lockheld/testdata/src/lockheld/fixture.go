// Package lockheldfix seeds every shape of lock-across-blocking violation the
// analyzer must catch, next to the released/annotated forms it must not.
package lockheldfix

import (
	"context"
	"sync"
	"time"
)

// Client mimics the repo's caching client: a mutex guarding state, plus a
// channel standing in for any rendezvous with another goroutine.
type Client struct {
	mu sync.Mutex
	ch chan int
}

// fetch stands in for a provider round-trip (ctx-first signature).
func fetch(ctx context.Context, v int) int {
	<-ctx.Done()
	return v
}

// Query is the context-less round-trip spelling.
func (c *Client) Query(v int) int { return v }

func (c *Client) sendWhileHeld() {
	c.mu.Lock()
	c.ch <- 1 // want "channel send while c.mu is held"
	c.mu.Unlock()
}

func (c *Client) recvWhileDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.ch // want "channel receive while c.mu is held"
}

func (c *Client) selectWhileHeld(done <-chan struct{}) {
	c.mu.Lock()
	select { // want "blocking select while c.mu is held"
	case <-done:
	case c.ch <- 1:
	}
	c.mu.Unlock()
}

func (c *Client) drainWhileHeld() {
	c.mu.Lock()
	for range c.ch { // want "range over a channel while c.mu is held"
	}
	c.mu.Unlock()
}

func (c *Client) roundTripWhileHeld(ctx context.Context) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fetch(ctx, 1) // want "fetch takes a context"
}

func (c *Client) queryWhileHeld(o *Client) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return o.Query(1) // want "Query can reach the provider but c.mu is held"
}

func (c *Client) schedulerWhileHeld(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait()                   // want "Wait blocks on the scheduler but c.mu is held"
	time.Sleep(time.Nanosecond) // want "Sleep blocks on the scheduler but c.mu is held"
	c.mu.Unlock()
}

func (c *Client) branchWhileHeld(cold bool) {
	c.mu.Lock()
	if cold {
		c.ch <- 1 // want "channel send while c.mu is held"
	}
	c.mu.Unlock()
}

// Map mimics store.Map: Locked runs its callback under a shard lock.
type Map struct{}

// Locked runs fn while holding the key's shard lock.
func (m *Map) Locked(k int, fn func()) { fn() }

func (c *Client) compoundOpBlocks(m *Map) {
	m.Locked(1, func() {
		c.ch <- 1 // want "channel send while m's shard lock is held"
	})
}

// --- released, deferred-to-later, and annotated forms stay silent ---

func (c *Client) releasedFirst() {
	c.mu.Lock()
	c.mu.Unlock()
	c.ch <- 1
}

func (c *Client) spawnedGoroutine() {
	c.mu.Lock()
	go func() { c.ch <- 1 }() // runs outside the critical section
	c.mu.Unlock()
}

func (c *Client) nonBlockingSelect() {
	c.mu.Lock()
	select {
	case c.ch <- 1:
	default:
	}
	c.mu.Unlock()
}

// ledger mimics the client's tiny billing ledger: taking it under the shard
// lock is the documented lock order, not a violation.
type ledger struct{ mu sync.Mutex }

func (c *Client) nestedLockOrder(l *ledger) {
	c.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	c.mu.Unlock()
}

func (c *Client) annotatedException() {
	c.mu.Lock()
	//rewirelint:allow lockheld the channel is buffered by construction; the send cannot block
	c.ch <- 1
	c.mu.Unlock()
}
