// Package lockheld encodes the repo's PR-1 locking discipline: no
// sync.Mutex/RWMutex (nor a store.Map shard lock entered through a
// Locked/RLocked compound op) may be held across an operation that can block
// on the network or the scheduler. Blocking while holding a lock is exactly
// how one slow provider round-trip serializes a whole walker fleet — the
// failure mode the sharded client and overlay were built to make impossible.
//
// An operation counts as blocking when it is:
//
//   - a channel send, a channel receive (<-ch, including <-ctx.Done()), a
//     range over a channel, or a select with no default clause;
//   - a call whose first parameter is a context.Context (the repo-wide
//     signature of "this can wait on a round-trip": Backend.Fetch,
//     Service.QueryContext, Client.QueryBatchContext, ...);
//   - a call to a method named Fetch, Query, QueryUser, or QueryBatch (the
//     context-less convenience spellings of the same round-trips);
//   - sync.WaitGroup.Wait, sync.Cond.Wait, or time.Sleep.
//
// Taking another mutex while one is held is deliberately NOT flagged: the
// client's documented shard-then-ledger lock order depends on it, and lock
// ordering is a different invariant from lock-across-latency.
//
// The analysis is a per-function, straight-line approximation: a lock whose
// Unlock is deferred is treated as held to the end of the function, branch
// bodies are scanned with a copy of the held set, and function literals are
// skipped (they run later) — except a literal passed to a Locked/RLocked
// compound op, which runs under that shard lock and is scanned accordingly.
// Deliberate, documented exceptions take a
// //rewirelint:allow lockheld <reason> annotation.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"

	"rewire/tools/rewirelint/analysis"
	"rewire/tools/rewirelint/internal/lintutil"
)

// Analyzer reports blocking operations performed while a lock is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "forbid holding a sync.Mutex/RWMutex (or a store shard lock) across channel ops, selects, or provider round-trips",
	Run:  run,
}

// blockingNames are context-less method spellings that still reach the
// network (their Context variants are caught by the ctx-first-param rule).
var blockingNames = map[string]bool{
	"Fetch":      true,
	"Query":      true,
	"QueryUser":  true,
	"QueryBatch": true,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.scanStmts(fd.Body.List, nil)
			}
		}
	}
	return nil
}

// heldLock is one lock the current control path is holding.
type heldLock struct {
	name string // rendered lock expression, e.g. "o.mu"
}

type checker struct {
	pass *analysis.Pass
}

// scanStmts walks one statement list, threading the held-lock set through
// Lock/Unlock pairs and checking everything else against it. It returns the
// held set as of the end of the list (deferred unlocks never pop).
func (c *checker) scanStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, stmt := range stmts {
		held = c.scanStmt(stmt, held)
	}
	return held
}

func (c *checker) scanStmt(stmt ast.Stmt, held []heldLock) []heldLock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, op := c.lockOp(call); op != "" {
				switch op {
				case "Lock", "RLock":
					return append(held, heldLock{name: name})
				case "Unlock", "RUnlock":
					return pop(held, name)
				}
			}
		}
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() extends the hold to the end of the function;
		// any other deferred call runs at return, outside this scan.
		return held
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's critical
		// section; its body is its own function for this analysis.
		c.checkExprs(s.Call.Args, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			c.pass.Reportf(s.Pos(), "channel send while %s is held; a blocked receiver stalls every goroutine waiting on the lock", top(held))
		}
		c.checkExpr(s.Value, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if len(held) > 0 && !hasDefault {
			c.pass.Reportf(s.Pos(), "blocking select while %s is held; add a default case or release the lock first", top(held))
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.scanStmts(cc.Body, clone(held))
			}
		}
	case *ast.BlockStmt:
		return c.scanStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.scanStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.scanStmts(s.Body.List, clone(held))
		if s.Else != nil {
			c.scanStmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		c.scanStmts(s.Body.List, clone(held))
	case *ast.RangeStmt:
		if len(held) > 0 {
			if t, ok := c.pass.TypesInfo.Types[s.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					c.pass.Reportf(s.Pos(), "range over a channel while %s is held", top(held))
				}
			}
		}
		c.checkExpr(s.X, held)
		c.scanStmts(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.checkExprs(cc.List, held)
				c.scanStmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.scanStmts(cc.Body, clone(held))
			}
		}
	case *ast.LabeledStmt:
		return c.scanStmt(s.Stmt, held)
	case *ast.AssignStmt:
		c.checkExprs(s.Rhs, held)
		c.checkExprs(s.Lhs, held)
	case *ast.ReturnStmt:
		c.checkExprs(s.Results, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.checkExprs(vs.Values, held)
				}
			}
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held)
	}
	return held
}

// checkExprs applies checkExpr to each expression.
func (c *checker) checkExprs(exprs []ast.Expr, held []heldLock) {
	for _, e := range exprs {
		c.checkExpr(e, held)
	}
}

// checkExpr flags blocking operations inside e. Function literals are not
// descended into (they execute later) unless they are the callback of a
// Locked/RLocked compound op, which runs them under the shard lock.
func (c *checker) checkExpr(e ast.Expr, held []heldLock) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(held) > 0 {
				c.pass.Reportf(x.Pos(), "channel receive while %s is held; the sender may need the lock you are holding", top(held))
			}
		case *ast.CallExpr:
			c.checkCall(x, held)
			// Locked/RLocked compound ops run their callback under the
			// shard's lock: scan the body with that lock pushed.
			if name := lockedCallback(x); name != "" {
				if lit, ok := x.Args[len(x.Args)-1].(*ast.FuncLit); ok {
					c.scanStmts(lit.Body.List, append(clone(held), heldLock{name: name}))
				}
			}
		}
		return true
	})
}

// checkCall flags calls that can block while a lock is held.
func (c *checker) checkCall(call *ast.CallExpr, held []heldLock) {
	if len(held) == 0 {
		return
	}
	fn := lintutil.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	switch {
	case lintutil.FirstParamIsContext(sig):
		c.pass.Reportf(call.Pos(), "%s takes a context (it can wait on a round-trip) but %s is held across the call", fn.Name(), top(held))
	case sig.Recv() != nil && blockingNames[fn.Name()]:
		c.pass.Reportf(call.Pos(), "%s can reach the provider but %s is held across the call", fn.Name(), top(held))
	case isMethodOf(fn, "sync", "Wait") || lintutil.IsPkgFunc(fn, "time", "Sleep"):
		c.pass.Reportf(call.Pos(), "%s blocks on the scheduler but %s is held across the call", fn.Name(), top(held))
	}
}

// lockOp classifies call as a sync lock operation, returning the rendered
// lock expression and the method name ("" when it is not one).
func (c *checker) lockOp(call *ast.CallExpr) (name, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := lintutil.Callee(c.pass.TypesInfo, call)
	if fn == nil || !isMethodOf(fn, "sync", "Lock", "RLock", "Unlock", "RUnlock") {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

// lockedCallback recognizes calls to methods named Locked/RLocked whose last
// argument is a function literal — the store.Map compound-op shape — and
// returns a display name for the shard lock they hold ("" otherwise).
func lockedCallback(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return ""
	}
	if _, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Locked", "RLocked":
		return types.ExprString(sel.X) + "'s shard lock"
	}
	return ""
}

// isMethodOf reports whether fn is a method named one of names declared on a
// type in package pkgPath.
func isMethodOf(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

func pop(held []heldLock, name string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].name == name {
			return append(clone(held[:i]), held[i+1:]...)
		}
	}
	return held
}

func top(held []heldLock) string { return held[len(held)-1].name }

func clone(held []heldLock) []heldLock {
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}
