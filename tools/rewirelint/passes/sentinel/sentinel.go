// Package sentinel keeps the SDK's typed error contract honest. PR 3
// introduced sentinel errors (ErrBudgetExhausted, ErrDisconnected, ...) so
// callers can program against failure classes; that contract survives only
// if every layer wraps with %w (so the sentinel stays reachable through
// fmt.Errorf chains) and every test is errors.Is (so wrapping never breaks a
// caller). The analyzer reports:
//
//   - comparing an error against a sentinel with == or != (use errors.Is;
//     one wrapped return anywhere in the chain makes == silently false);
//   - switching on an error value with sentinel case arms (same bug in
//     switch clothing);
//   - fmt.Errorf with an error argument but no %w verb — the context is
//     kept but the error's identity is amputated.
//
// A sentinel is any package-level error variable whose name starts with
// "Err". io.EOF is exempt from the comparison rule: the io contract
// guarantees it is returned unwrapped, and == is its documented idiom.
package sentinel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"rewire/tools/rewirelint/analysis"
	"rewire/tools/rewirelint/internal/lintutil"
)

// Analyzer reports sentinel-error misuse.
var Analyzer = &analysis.Analyzer{
	Name: "sentinel",
	Doc:  "error sentinels must be wrapped with %w and tested with errors.Is, never ==",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, x)
			case *ast.SwitchStmt:
				checkSwitch(pass, x)
			case *ast.CallExpr:
				checkErrorf(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkCompare flags err == ErrSentinel / err != ErrSentinel.
func checkCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, e := range []ast.Expr{be.X, be.Y} {
		if name, ok := sentinelVar(pass.TypesInfo, e); ok {
			pass.Reportf(be.Pos(), "%s compared with %s; use errors.Is so wrapped errors still match", name, be.Op)
			return
		}
	}
}

// checkSwitch flags switch err { case ErrSentinel: } arms.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	t, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || !lintutil.IsErrorType(t.Type) {
		return
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := sentinelVar(pass.TypesInfo, e); ok {
				pass.Reportf(e.Pos(), "switch case compares %s by identity; use errors.Is in an if/else chain", name)
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls that swallow an error argument without
// a %w verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if !lintutil.IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	// Escaped %% must not hide or fabricate a %w.
	if strings.Contains(strings.ReplaceAll(format, "%%", ""), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t, ok := pass.TypesInfo.Types[arg]
		if ok && t.Type != nil && lintutil.IsErrorType(t.Type) && !t.IsNil() {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; the cause becomes unreachable to errors.Is")
			return
		}
	}
}

// sentinelVar reports whether e names a package-level error variable whose
// name starts with Err (io.EOF exempt), returning a display name.
func sentinelVar(info *types.Info, e ast.Expr) (string, bool) {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	default:
		return "", false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || !lintutil.IsErrorType(v.Type()) {
		return "", false
	}
	return v.Name(), true
}
