// Package sentinelfix seeds every sentinel-error misuse next to the
// errors.Is/%w forms that keep the typed-error contract intact.
package sentinelfix

import (
	"errors"
	"fmt"
	"io"
)

// ErrBudget mimics the SDK's sentinel errors (ErrBudgetExhausted, ...).
var ErrBudget = errors.New("budget exhausted")

func compareEq(err error) bool {
	return err == ErrBudget // want "ErrBudget compared with ==; use errors.Is"
}

func compareNeq(err error) bool {
	return err != ErrBudget // want "ErrBudget compared with !="
}

func compareIs(err error) bool {
	return errors.Is(err, ErrBudget)
}

func compareEOF(err error) bool {
	return err == io.EOF // io contract: EOF is returned unwrapped; == is its idiom
}

func compareNil(err error) bool {
	return err != nil // nil checks are not sentinel comparisons
}

func classify(err error) string {
	switch err {
	case ErrBudget: // want "switch case compares ErrBudget by identity"
		return "budget"
	default:
		return "other"
	}
}

func wrapLossy(err error) error {
	return fmt.Errorf("query failed: %v", err) // want "fmt.Errorf formats an error without %w"
}

func wrapKept(err error) error {
	return fmt.Errorf("query failed: %w", err)
}

func wrapEscaped(err error) error {
	return fmt.Errorf("100%% of retries failed: %w", err)
}

func wrapNoError(v int) error {
	return fmt.Errorf("bad value %d", v)
}

func annotatedIdentity(err error) bool {
	//rewirelint:allow sentinel comparing an in-package return that is never wrapped, by construction
	return err == ErrBudget
}
