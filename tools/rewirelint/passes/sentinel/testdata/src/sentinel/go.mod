module sentinelfix

go 1.24
