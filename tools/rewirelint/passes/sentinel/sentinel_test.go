package sentinel_test

import (
	"testing"

	"rewire/tools/rewirelint/analysistest"
	"rewire/tools/rewirelint/passes/sentinel"
)

func TestSentinel(t *testing.T) {
	analysistest.Run(t, "testdata/src/sentinel", sentinel.Analyzer)
}
