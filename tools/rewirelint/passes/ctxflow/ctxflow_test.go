package ctxflow_test

import (
	"testing"

	"rewire/tools/rewirelint/analysistest"
	"rewire/tools/rewirelint/passes/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxflow", ctxflow.Analyzer)
}
