// Package ctxflow enforces the repo's context-threading discipline (PR 3
// wired context.Context through the entire query path; this keeps it wired):
//
//   - context.Context must be a function's first parameter — a ctx buried
//     mid-signature is how call sites end up passing the wrong one;
//   - a named context parameter must actually be used (forwarded, checked,
//     or listened on). Accepting a ctx and ignoring it silently severs
//     cancellation for every caller above; implementations that genuinely
//     cannot honor it must say so by naming the parameter _;
//   - context.Background() and context.TODO() are banned outside package
//     main (a binary's entry point owns the root context) and _test.go
//     files (never loaded by rewirelint anyway). A library that conjures a
//     fresh Background context is discarding its caller's deadline and
//     cancellation — the exact bug class PR 3 eliminated. Deliberate
//     compatibility shims (Query wrapping QueryContext for context-free
//     callers) carry a //rewirelint:allow ctxflow <reason> annotation.
package ctxflow

import (
	"go/ast"
	"go/types"

	"rewire/tools/rewirelint/analysis"
	"rewire/tools/rewirelint/internal/lintutil"
)

// Analyzer reports context plumbing violations.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context must be the first parameter, must be used, and context.Background/TODO are banned outside package main",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, x.Type)
				if x.Body != nil {
					checkUnused(pass, x.Type, x.Body)
				}
			case *ast.FuncLit:
				checkSignature(pass, x.Type)
			case *ast.CallExpr:
				if isMain {
					return true
				}
				fn := lintutil.Callee(pass.TypesInfo, x)
				if fn != nil && (lintutil.IsPkgFunc(fn, "context", "Background") || lintutil.IsPkgFunc(fn, "context", "TODO")) {
					pass.Reportf(x.Pos(), "context.%s discards the caller's cancellation and deadline; forward a caller ctx or annotate the shim", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkSignature reports a context.Context parameter that is not first.
func checkSignature(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		t, ok := pass.TypesInfo.Types[field.Type]
		isCtx := ok && lintutil.IsContextType(t.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

// checkUnused reports a named (non-_) context parameter that the body never
// reads: cancellation from above is silently dropped.
func checkUnused(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		t, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !lintutil.IsContextType(t.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" || name.Name == "" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || usesObject(pass.TypesInfo, body, obj) {
				continue
			}
			pass.Reportf(name.Pos(), "context parameter %s is never used: forward it, or name it _ to declare the drop", name.Name)
		}
	}
}

// usesObject reports whether any identifier in body resolves to obj.
func usesObject(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
