// Package ctxflowfix seeds every context-plumbing violation next to the
// compliant and annotated forms.
package ctxflowfix

import "context"

func conjure() context.Context {
	return context.Background() // want "context.Background discards the caller's cancellation"
}

func procrastinate() context.Context {
	return context.TODO() // want "context.TODO discards the caller's cancellation"
}

func annotatedShim() context.Context {
	//rewirelint:allow ctxflow compatibility shim for context-free callers
	return context.Background()
}

func buried(v int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = v
	return ctx.Err()
}

var literalBuried = func(v int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = v
	return ctx.Err()
}

func dropped(ctx context.Context) int { // want "context parameter ctx is never used"
	return 1
}

func declaredDrop(_ context.Context) int { return 2 }

func forwarded(ctx context.Context) error { return ctx.Err() }

func relayed(ctx context.Context) error { return forwarded(ctx) }
