// Command tool proves that package main, which owns the root context, may
// call context.Background freely.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx.Err()
}
