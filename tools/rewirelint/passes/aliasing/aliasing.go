// Package aliasing makes the PR-4/PR-5 class of aliasing bugs — an exported
// method handing a caller the live backing store of internal state —
// unrepresentable. A caller that appends to (or writes through) such a slice
// scribbles over the provider cache, the CSR adjacency, or the overlay's
// materialized lists, and the corruption surfaces as a wrong trajectory
// thousands of steps later.
//
// The analyzer reports an exported method on an exported type whose return
// statement hands out a slice or map reached directly from the receiver's
// fields (r.f, r.a.b, r.f[lo:hi], r.f[lo:hi:hi], r.f[i] with slice
// elements), including through a local variable bound to such a field.
// Returning fresh storage (append, make+copy, slices.Clone, composite
// literals) or values produced by calls is fine.
//
// Deliberate zero-copy views — graph.Graph.Neighbors's CSR row is the
// repo's hot-path contract — stay legal with an explicit, documented
// //rewirelint:allow aliasing <view contract> annotation, which converts
// "accidentally leaked internals" into "API with a stated ownership rule".
package aliasing

import (
	"go/ast"
	"go/types"

	"rewire/tools/rewirelint/analysis"
)

// Analyzer reports exported methods returning internal mutable state.
var Analyzer = &analysis.Analyzer{
	Name: "aliasing",
	Doc:  "exported methods must not return internal mutable slices/maps without a copy or a documented view contract",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverObj(pass.TypesInfo, fd)
			if recv == nil || !exportedReceiver(recv) {
				continue
			}
			checkMethod(pass, fd, recv)
		}
	}
	return nil
}

// receiverObj returns the receiver variable's object (nil for unnamed
// receivers, which cannot leak their fields by name).
func receiverObj(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	obj, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return obj
}

// exportedReceiver reports whether the receiver's named type is exported —
// unexported types are internal plumbing with no outside callers to protect.
func exportedReceiver(recv *types.Var) bool {
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Exported()
}

// checkMethod flags return statements that alias receiver state.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Var) {
	// aliases maps local variables to the receiver-field expression they
	// were bound to (x := r.f) anywhere in the method.
	aliases := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !receiverChain(pass.TypesInfo, rhs, recv) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					aliases[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					aliases[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !mutableType(pass.TypesInfo, res) {
				continue
			}
			leaked := receiverChain(pass.TypesInfo, res, recv)
			if !leaked {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					leaked = aliases[pass.TypesInfo.Uses[id]]
				}
			}
			if leaked {
				pass.Reportf(res.Pos(), "%s returns internal mutable state of %s without a copy; copy it or annotate the view contract", fd.Name.Name, recvTypeName(recv))
			}
		}
		return true
	})
}

// mutableType reports whether e's static type shares backing storage when
// returned: slices and maps.
func mutableType(info *types.Info, e ast.Expr) bool {
	t, ok := info.Types[e]
	if !ok || t.Type == nil {
		return false
	}
	switch t.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// receiverChain reports whether e reaches storage owned by the receiver
// without an intervening call: a selector chain rooted at recv, optionally
// re-sliced or indexed.
func receiverChain(info *types.Info, e ast.Expr, recv *types.Var) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// Field access only; a method value/call breaks ownership.
			if sel, ok := info.Selections[x]; !ok || sel.Kind() != types.FieldVal {
				return false
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return info.Uses[x] == recv
		default:
			return false
		}
	}
}

// recvTypeName renders the receiver's type for diagnostics.
func recvTypeName(recv *types.Var) string {
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return recv.Type().String()
}
