module aliasfix

go 1.24
