// Package aliasfix seeds every shape of internal-state leak through an
// exported method, next to the copying and annotated-view forms.
package aliasfix

// Graph mimics the repo's CSR graph: slices and maps that ARE the store.
type Graph struct {
	neigh []int
	attrs map[string]string
	rows  [][]int
	csr   struct{ data []int }
}

func (g *Graph) LeakField() []int {
	return g.neigh // want "LeakField returns internal mutable state of Graph"
}

func (g *Graph) LeakView(lo, hi int) []int {
	return g.neigh[lo:hi:hi] // want "LeakView returns internal mutable state of Graph"
}

func (g *Graph) LeakMap() map[string]string {
	return g.attrs // want "LeakMap returns internal mutable state of Graph"
}

func (g *Graph) LeakNested() []int {
	return g.csr.data // want "LeakNested returns internal mutable state of Graph"
}

func (g *Graph) LeakRow(i int) []int {
	return g.rows[i] // want "LeakRow returns internal mutable state of Graph"
}

func (g *Graph) LeakThroughLocal() []int {
	view := g.neigh
	return view // want "LeakThroughLocal returns internal mutable state of Graph"
}

func (g *Graph) CopyAppend() []int {
	return append([]int(nil), g.neigh...)
}

func (g *Graph) CopyMake() []int {
	out := make([]int, len(g.neigh))
	copy(out, g.neigh)
	return out
}

func (g *Graph) ViaCall() []int {
	return g.CopyAppend() // a call breaks ownership: the callee decides
}

func (g *Graph) AnnotatedView() []int {
	//rewirelint:allow aliasing documented zero-copy view; caller must not modify, valid until the next mutation
	return g.neigh
}

// unexported methods have no outside callers to protect.
func (g *Graph) leak() []int { return g.neigh }

// hidden is an unexported type: internal plumbing, exempt by design.
type hidden struct{ data []int }

// Leak is exported but its receiver type is not reachable from outside.
func (h *hidden) Leak() []int { return h.data }
