package aliasing_test

import (
	"testing"

	"rewire/tools/rewirelint/analysistest"
	"rewire/tools/rewirelint/passes/aliasing"
)

func TestAliasing(t *testing.T) {
	analysistest.Run(t, "testdata/src/aliasing", aliasing.Analyzer)
}
