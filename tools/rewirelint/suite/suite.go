// Package suite enumerates the rewirelint analyzers in their canonical
// order. cmd/rewirelint, the self-check test, and CI all consume this one
// list, so an analyzer added here is everywhere at once.
package suite

import (
	"rewire/tools/rewirelint/analysis"
	"rewire/tools/rewirelint/passes/aliasing"
	"rewire/tools/rewirelint/passes/ctxflow"
	"rewire/tools/rewirelint/passes/deterministic"
	"rewire/tools/rewirelint/passes/lockheld"
	"rewire/tools/rewirelint/passes/sentinel"
)

// All returns every analyzer in the suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockheld.Analyzer,
		ctxflow.Analyzer,
		deterministic.Analyzer,
		sentinel.Analyzer,
		aliasing.Analyzer,
	}
}
