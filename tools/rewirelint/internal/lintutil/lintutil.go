// Package lintutil holds the small go/types interrogation helpers the
// rewirelint analyzers share: resolving a call's static callee, recognizing
// context.Context parameters, and spotting error-typed values.
package lintutil

import (
	"go/ast"
	"go/types"
)

// Callee resolves the static *types.Func a call invokes: a package function,
// a method (through a selection), or a conversion/builtin (nil). Calls
// through function-typed variables resolve to nil too — rewirelint's checks
// are about named API surfaces, not function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified package call: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether fn is the package-level function path.name
// (methods never match).
func IsPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// FirstParamIsContext reports whether sig's first parameter is a
// context.Context.
func FirstParamIsContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && IsContextType(sig.Params().At(0).Type())
}

// errorType is the universe's error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t implements error.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}
