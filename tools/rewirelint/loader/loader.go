// Package loader turns `go list` package patterns into parsed, type-checked
// packages without golang.org/x/tools/go/packages. It shells out to
// `go list -export -deps -json`, which compiles every dependency and reports
// the path of its export data, then type-checks each non-dependency package
// from source with go/types, resolving imports — standard library and
// module-local alike — through the gc export data the list step just built.
// The result is a fully typed view of the target packages that needs nothing
// beyond the Go toolchain already required to build the repo.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir's module and returns its target packages
// (dependencies are consumed as export data, not returned). Any list, parse,
// or type error fails the whole load: rewirelint analyzes code that builds.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(pkgs))
	var targets []listPackage
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// golist runs `go list -export -deps -json` and decodes its JSON stream.
func golist(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// GOWORK=off: a stray go.work above a fixture module must not stitch it
	// into some other build. Everything else inherits (GOCACHE, GOMODCACHE).
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check parses and type-checks one target package from source.
func check(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		PkgPath: t.ImportPath,
		Name:    t.Name,
		Dir:     t.Dir,
		Fset:    fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
