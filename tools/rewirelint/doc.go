// Package rewirelint is the root of the repo's static-analysis tools module.
// It is a separate Go module so the main rewire module stays dependency-free
// and the analyzer suite versions independently of the library it polices.
//
// The five analyzers (see ./passes/...) machine-enforce the invariants the
// paper reproduction's guarantees rest on:
//
//	lockheld       no lock held across network/scheduler blocking (PR 1)
//	ctxflow        context threaded through the whole query path (PR 3)
//	deterministic  seed-deterministic packages free of ambient entropy
//	sentinel       %w wrapping + errors.Is for typed error sentinels (PR 3)
//	aliasing       no exported method leaks internal mutable state (PR 4/5)
//
// Run the suite with `go run ./cmd/rewirelint -C ../..` from this directory,
// or via the repository's CI analyze job. The self-check test in this
// package asserts the repository itself is clean.
package rewirelint
