// Package runner drives a set of analyzers over loaded packages and applies
// the //rewirelint:allow suppression grammar. It is the shared engine behind
// cmd/rewirelint, the analysistest harness, and the repo's self-check test,
// so all three agree exactly on what "clean" means.
//
// # Allow directives
//
// A finding is an error unless the offending line carries an explicit,
// reasoned waiver:
//
//	//rewirelint:allow <analyzer> <reason...>
//
// The directive suppresses diagnostics of that one analyzer on the
// directive's own line (trailing comment) and on the line directly below it
// (standalone comment above the offending statement). The reason is
// mandatory — an annotation that does not say why it exists is a future
// bug report — and a directive naming an unknown analyzer or missing its
// reason is itself reported, so the annotation inventory cannot rot.
package runner

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"rewire/tools/rewirelint/analysis"
	"rewire/tools/rewirelint/loader"
)

// DirectivePrefix introduces an allow annotation.
const DirectivePrefix = "//rewirelint:allow"

// Finding is one unsuppressed diagnostic, resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding the way compilers do: file:line:col: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// directive is one parsed //rewirelint:allow comment.
type directive struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// Run executes every analyzer over every package and returns the surviving
// findings sorted by position. Analyzer errors (not diagnostics) abort.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		dirs, malformed := collectDirectives(pkg, known)
		findings = append(findings, malformed...)
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("runner: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if allowed(dirs, a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// collectDirectives parses every //rewirelint:allow comment in the package.
// Malformed directives (unknown analyzer, missing reason) come back as
// findings under the "rewirelint" pseudo-analyzer.
func collectDirectives(pkg *loader.Package, known map[string]bool) (map[string][]directive, []Finding) {
	dirs := make(map[string][]directive)
	var malformed []Finding
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					malformed = append(malformed, Finding{
						Analyzer: "rewirelint", Pos: pos,
						Message: "malformed directive: want //rewirelint:allow <analyzer> <reason>",
					})
				case !known[fields[0]]:
					malformed = append(malformed, Finding{
						Analyzer: "rewirelint", Pos: pos,
						Message: fmt.Sprintf("directive names unknown analyzer %q", fields[0]),
					})
				case len(fields) < 2:
					malformed = append(malformed, Finding{
						Analyzer: "rewirelint", Pos: pos,
						Message: fmt.Sprintf("directive for %q is missing its reason", fields[0]),
					})
				default:
					dirs[pos.Filename] = append(dirs[pos.Filename], directive{
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
						line:     pos.Line,
						pos:      c.Pos(),
					})
				}
			}
		}
	}
	return dirs, malformed
}

// allowed reports whether a directive for analyzer covers pos: same line
// (trailing comment) or the line above (standalone annotation).
func allowed(dirs map[string][]directive, analyzer string, pos token.Position) bool {
	for _, d := range dirs[pos.Filename] {
		if d.analyzer == analyzer && (d.line == pos.Line || d.line == pos.Line-1) {
			return true
		}
	}
	return false
}
