module directivesfix

go 1.24
