// Package directivesfix carries one of each malformed //rewirelint:allow
// spelling, so the runner's directive grammar is pinned by test.
package directivesfix

//rewirelint:allow
func missingAnalyzer() {}

//rewirelint:allow nosuchanalyzer the analyzer name is wrong
func unknownAnalyzer() {}

//rewirelint:allow ctxflow
func missingReason() {}

//rewirelint:allow ctxflow a well-formed directive is not a finding, even with nothing to suppress
func wellFormed() {}
