package runner_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rewire/tools/rewirelint/loader"
	"rewire/tools/rewirelint/runner"
	"rewire/tools/rewirelint/suite"
)

// TestMalformedDirectives pins the allow-directive grammar: a directive with
// no analyzer, an unknown analyzer, or a missing reason is itself a finding
// under the "rewirelint" pseudo-analyzer; a well-formed directive is not.
func TestMalformedDirectives(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := runner.Run(pkgs, suite.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	wants := []string{
		"malformed directive: want //rewirelint:allow <analyzer> <reason>",
		`directive names unknown analyzer "nosuchanalyzer"`,
		`directive for "ctxflow" is missing its reason`,
	}
	if len(findings) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wants), findings)
	}
	for i, want := range wants {
		if findings[i].Analyzer != "rewirelint" {
			t.Errorf("finding %d: analyzer %q, want %q", i, findings[i].Analyzer, "rewirelint")
		}
		if !strings.Contains(findings[i].Message, want) {
			t.Errorf("finding %d: message %q does not contain %q", i, findings[i].Message, want)
		}
	}
}
