package rewire

import (
	"context"
	"fmt"
	"slices"
	"time"

	"rewire/internal/durable"
	"rewire/internal/osn"
)

// Source is the network backend a Session samples from. The built-in
// implementations are in-memory graphs (GraphSource — free local access, for
// ground-truth work) and Providers (Simulate, Open, BackendSource — the
// paper's access model, with unique-query cost accounting over any Backend).
// Every query a Session issues flows through this interface, and the
// context-taking form is what makes cancellation and deadlines abort
// in-flight round-trips.
//
// Aliasing contract (applies to every Source and to Provider.Query/
// QueryBatch): a returned neighbor slice is the caller's to read, never to
// modify in place. GraphSource hands out read-only views into its graph's
// CSR storage (zero-copy, capacity clipped so an append reallocates);
// Provider returns defensive copies, because its cached lists also feed the
// billing ledger and the Theorem 5 criterion and must stay immune to caller
// mutation. Code that wants a mutable list clones it.
type Source interface {
	// Neighbors returns v's neighbor list (see the aliasing contract on
	// Source), or nil for unknown IDs and failed round-trips — use
	// NeighborsContext to see the error.
	Neighbors(v NodeID) []NodeID
	// Degree returns len(Neighbors(v)).
	Degree(v NodeID) int
	// NeighborsContext is Neighbors bound to a context: any round-trip the
	// read requires honors ctx, and failures (cancellation, deadline, budget
	// exhaustion, unknown IDs) are returned instead of swallowed. Unknown IDs
	// fail with an error matching ErrNoSuchUser on every backend.
	NeighborsContext(ctx context.Context, v NodeID) ([]NodeID, error)
	// NumUsers returns the total user count — the provider-published figure
	// Random Jump needs for its ID space (0 when the backend does not publish
	// one).
	NumUsers() int
}

// GraphSource exposes an in-memory graph as a Source: every read is free and
// instantaneous, so sessions over it measure pure algorithm behavior. It is
// the compatibility layer over the mem: driver's free-access semantics —
// unlike Open("mem:..."), nothing is cached or billed, because there is no
// cost model to account under. Neighbor lists follow the Source aliasing
// contract (read-only CSR views).
func GraphSource(g *Graph) Source { return graphSource{g} }

type graphSource struct{ g *Graph }

func (s graphSource) Neighbors(v NodeID) []NodeID {
	if v < 0 || int(v) >= s.g.NumNodes() {
		return nil
	}
	return s.g.Neighbors(v)
}

func (s graphSource) Degree(v NodeID) int {
	if v < 0 || int(v) >= s.g.NumNodes() {
		return 0
	}
	return s.g.Degree(v)
}

func (s graphSource) NumUsers() int { return s.g.NumNodes() }

func (s graphSource) NeighborsContext(ctx context.Context, v NodeID) ([]NodeID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if v < 0 || int(v) >= s.g.NumNodes() {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchUser, v)
	}
	return s.g.Neighbors(v), nil
}

// Limits configures a simulated provider's restrictions, mirroring the
// published quotas of real social networks.
type Limits struct {
	// QueriesPerWindow caps queries per Window; 0 disables rate limiting.
	QueriesPerWindow int
	// Window is the rate-limit window length (e.g. 600s).
	Window time.Duration
	// PerQueryLatency is the simulated round-trip time of one web request.
	// It advances only the simulated clock; the caller never blocks.
	PerQueryLatency time.Duration
	// RealLatency, when positive, makes every query actually block the
	// calling goroutine for that long — what a concurrent walker fleet
	// overlaps and a sequential crawler pays in full. Cancelling the
	// query's context interrupts the wait.
	RealLatency time.Duration
}

// FacebookLimits mirrors the paper's cited Facebook quota: 600 open-graph
// queries per 600 seconds.
func FacebookLimits() Limits { return Limits(osn.FacebookLimits()) }

// TwitterLimits mirrors the paper's cited Twitter quota: 350 requests/hour.
func TwitterLimits() Limits { return Limits(osn.TwitterLimits()) }

// PrefetchStats counts a provider's speculative-fetch activity.
type PrefetchStats = osn.PrefetchStats

// Provider is the cached, demand-billed client over any Backend: the only
// operation is the individual-user query q(v), with the paper's cost
// accounting — only unique demanded queries count; duplicates and
// speculative prefetches are served from (or parked in) a local sharded
// cache. Construct one with Simulate (simulated restrictive interface over
// an in-memory graph), Open (URL-style driver resolution: mem, sim, http,
// snapshot, or third-party schemes), or BackendSource (any hand-built
// Backend, middleware included).
//
// A Provider is safe for concurrent use and is the backend to pass
// NewSession for any experiment where query cost or latency matters.
// Returned neighbor slices are defensive copies — see the Source aliasing
// contract.
type Provider struct {
	svc     *osn.Service // non-nil only for simulated backends
	client  *osn.Client
	backend Backend        // nil for the legacy Simulate construction path
	durable *durable.Cache // non-nil once a durable cache is attached
}

// Simulate wraps g in a simulated provider under the given limits. It is the
// compatibility constructor for the sim: driver — Open(ctx,
// "sim:...?limits=facebook") builds the same stack — and keeps its
// historical behavior bit-for-bit: fixed-seed trajectories and unique-query
// bills are byte-identical to pre-driver releases (the CI bench gate pins
// them).
func Simulate(g *Graph, limits Limits) *Provider {
	svc := osn.NewService(g, nil, osn.Config(limits))
	return &Provider{svc: svc, client: osn.NewClient(svc)}
}

// BackendSource wraps any Backend in a Provider, attaching the full client
// stack: sharded response cache, per-user singleflight, unique-query demand
// billing, budgets, and the speculative prefetch pool. Capabilities
// (UserCounter, Hinter, RateLimited, io.Closer) are discovered through the
// backend's Unwrap chain, so middleware composition never hides them.
func BackendSource(b Backend) *Provider {
	p := &Provider{client: osn.NewClient(newOSNBackend(b)), backend: b}
	if sb, ok := backendAs[*simBackend](b); ok {
		// Simulated backends opened through the driver registry report their
		// simulation telemetry exactly like the Simulate constructor.
		p.svc = sb.svc
	}
	if cb, ok := backendAs[*cacheBackend](b); ok {
		// A cache: backend carries an opened durable cache; replay its
		// recovered state into the fresh client and journal from here on.
		// Attach can only fail on a client that already served queries or a
		// cache already wired to another provider — programmer errors on the
		// order of a duplicate Register, so they panic the same way.
		if err := cb.cache.Attach(p.client); err != nil {
			panic("rewire: attaching durable cache backend: " + err.Error())
		}
		p.durable = cb.cache
	}
	return p
}

// Backend returns the backend this provider wraps (nil for the legacy
// Simulate construction path). Probe it for capabilities — e.g.
// RateLimited, or a WithMetrics wrapper's Metrics method.
func (p *Provider) Backend() Backend { return p.backend }

// Close releases resources held by the backend chain (snapshot mappings,
// idle HTTP connections) and, when a durable cache is attached, seals its
// write-ahead log and releases the directory lock. The provider's in-memory
// cache and ledger survive Close — but fetches after it will fail for
// backends that needed those resources, and nothing is journaled anymore.
// Providers over purely in-memory backends without a durable cache make
// Close a no-op.
func (p *Provider) Close() error {
	var first error
	if p.durable != nil {
		// Idempotent: for cache: backends the chain walk below reaches the
		// same cache again through cacheBackend.Close, which is then a no-op.
		first = p.durable.Close()
	}
	if p.backend != nil {
		if err := closeBackend(p.backend); first == nil {
			first = err
		}
	}
	return first
}

// Neighbors returns v's neighbor list, querying (and billing) on a cache
// miss; nil for unknown IDs or failed round-trips — use NeighborsContext to
// see the error. The slice is a defensive copy (Source aliasing contract).
func (p *Provider) Neighbors(v NodeID) []NodeID {
	nbrs := p.client.Neighbors(v)
	if nbrs == nil {
		return nil
	}
	return slices.Clone(nbrs)
}

// Degree returns v's degree, querying on a cache miss.
func (p *Provider) Degree(v NodeID) int { return p.client.Degree(v) }

// NeighborsContext returns v's neighbor list (a defensive copy, per the
// Source aliasing contract) with the round-trip bound to ctx; cancellation
// aborts the in-flight request without billing it.
func (p *Provider) NeighborsContext(ctx context.Context, v NodeID) ([]NodeID, error) {
	nbrs, err := p.client.NeighborsContext(ctx, v)
	if err != nil {
		return nil, err
	}
	return slices.Clone(nbrs), nil
}

// NumUsers returns the provider-published user count (0 when the backend
// lacks the UserCounter capability).
func (p *Provider) NumUsers() int { return p.client.NumUsers() }

// Query resolves q(v) under ctx and returns v's neighbor list (a defensive
// copy, per the Source aliasing contract).
func (p *Provider) Query(ctx context.Context, v NodeID) ([]NodeID, error) {
	nbrs, err := p.client.NeighborsContext(ctx, v)
	if err != nil {
		return nil, err
	}
	return slices.Clone(nbrs), nil
}

// QueryBatch resolves all ids under ctx, overlapping the misses' round-trips,
// and returns the neighbor lists in input order (defensive copies, per the
// Source aliasing contract). Each id bills at most one unique query no
// matter how many batches or walkers race for it. On failure — cancellation,
// budget exhaustion, an unknown id — the batch returns nil results with the
// error; responses that resolved before the failure are cached and billed,
// and re-querying them is free.
func (p *Provider) QueryBatch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	resps, err := p.client.QueryBatchContext(ctx, ids)
	if err != nil {
		return nil, err
	}
	out := make([][]NodeID, len(resps))
	for i, r := range resps {
		out[i] = slices.Clone(r.Neighbors)
	}
	return out, nil
}

// SetBudget caps unique (demand) queries at n; the sampling path returns
// ErrBudgetExhausted instead of billing past it. n <= 0 removes the cap.
// Raising the budget mid-run resumes an exhausted walk.
func (p *Provider) SetBudget(n int64) { p.client.SetBudget(n) }

// UniqueQueries returns the paper's query-cost metric: distinct users a
// sampler actually demanded (speculative prefetches park outside the ledger
// until consumed).
func (p *Provider) UniqueQueries() int64 { return p.client.UniqueQueries() }

// TenantBill is one tenant's slice of a provider's billing ledger: its
// demanded unique queries, in-flight reservations, and private budget. See
// WithTenant for how queries acquire a tenant attribution.
type TenantBill = osn.TenantBill

// WithTenant returns a context whose demand queries are attributed to the
// named tenant in the provider's per-tenant ledger. Attribution rides the
// context, not the Provider, so any number of tenants can share one
// provider — one cache, one singleflight, one global ledger — while their
// bills stay exactly separable: a query is billed to the tenant whose
// demand made it billable (first demand of a fetch, or first demand touch
// of a speculative response); cache hits and coalesced waits are free for
// everyone. The empty name is the anonymous tenant, so the invariant
// Σ TenantBill.Unique == UniqueQueries holds unconditionally.
func WithTenant(ctx context.Context, name string) context.Context {
	return osn.WithTenant(ctx, name)
}

// TenantFrom returns the tenant name carried by ctx ("" when none).
func TenantFrom(ctx context.Context) string { return osn.TenantFrom(ctx) }

// TenantBill returns the named tenant's current ledger slice ("" is the
// anonymous tenant).
func (p *Provider) TenantBill(name string) TenantBill { return p.client.TenantBill(name) }

// TenantBills returns every tenant's ledger slice keyed by name — a private
// copy, consistent at one ledger instant.
func (p *Provider) TenantBills() map[string]TenantBill { return p.client.TenantBills() }

// SetTenantBudget caps the named tenant's unique demand queries at n
// (n <= 0 removes the cap), independently of the provider-wide SetBudget
// cap. The tenant's queries fail with ErrBudgetExhausted once its own bill
// reaches the cap, however much global budget remains.
func (p *Provider) SetTenantBudget(name string, n int64) { p.client.SetTenantBudget(name, n) }

// CachedDegree returns v's degree if — and only if — it is already known
// locally through a demand query, without issuing (or billing) one: the
// paper's free historical knowledge, exposed so read-only consumers (a
// serving layer computing estimates from delivered samples) never perturb
// the bill. Speculative prefetch results are excluded until demanded.
func (p *Provider) CachedDegree(v NodeID) (int, bool) { return p.client.CachedDegree(v) }

// CacheSize returns the number of distinct users stored locally (demanded
// and speculative).
func (p *Provider) CacheSize() int { return p.client.CacheSize() }

// SpeculativeCount returns prefetched responses no demand query has consumed.
func (p *Provider) SpeculativeCount() int64 { return p.client.SpeculativeCount() }

// TotalQueries returns the simulated provider-side request count (including
// speculative and coalesced duplicates served before caching); 0 for
// non-simulated backends, which meter on their own side.
func (p *Provider) TotalQueries() int64 {
	if p.svc == nil {
		return 0
	}
	return p.svc.TotalQueries()
}

// SimulatedElapsed returns the simulated wall-clock consumed so far (0 for
// non-simulated backends).
func (p *Provider) SimulatedElapsed() time.Duration {
	if p.svc == nil {
		return 0
	}
	return p.svc.SimulatedElapsed()
}

// RateLimitWaits returns how many times a query sat out a simulated
// rate-limit window (0 for non-simulated backends — see RateLimit for live
// quota feedback).
func (p *Provider) RateLimitWaits() int64 {
	if p.svc == nil {
		return 0
	}
	return p.svc.RateLimitWaits()
}

// RateLimit returns the backend's live quota feedback when it has the
// RateLimited capability (the HTTP driver mirrors X-RateLimit-* headers
// here); ok is false otherwise, and until feedback has been observed.
func (p *Provider) RateLimit() (RateLimitInfo, bool) {
	if p.backend == nil {
		return RateLimitInfo{}, false
	}
	rl, ok := backendAs[RateLimited](p.backend)
	if !ok {
		return RateLimitInfo{}, false
	}
	return rl.RateLimit()
}

// PrefetchStats returns the speculative pool's counters (zero without
// prefetching configured).
func (p *Provider) PrefetchStats() PrefetchStats { return p.client.PrefetchStats() }

var (
	_ Source = graphSource{}
	_ Source = (*Provider)(nil)
)
