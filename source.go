package rewire

import (
	"context"
	"slices"
	"time"

	"rewire/internal/osn"
)

// Source is the network backend a Session samples from. The two built-in
// backends are in-memory graphs (GraphSource — free local access, for
// ground-truth work) and simulated restrictive providers (Simulate — the
// paper's access model, with unique-query cost accounting, rate limits, and
// round-trip latency). Every query a Session issues flows through this
// interface, and the context-taking form is what makes cancellation and
// deadlines abort in-flight round-trips.
type Source interface {
	// Neighbors returns v's neighbor list. GraphSource hands out a read-only
	// view into its graph's CSR storage (zero-copy, capacity clipped so an
	// append reallocates); Provider returns a defensive copy, because its
	// cached lists also feed the billing ledger and the Theorem 5 criterion
	// and must stay immune to caller mutation. Either way the caller owns no
	// right to modify elements of a view.
	Neighbors(v NodeID) []NodeID
	// Degree returns len(Neighbors(v)).
	Degree(v NodeID) int
	// NeighborsContext is Neighbors bound to a context: any round-trip the
	// read requires honors ctx, and failures (cancellation, deadline, budget
	// exhaustion, unknown IDs) are returned instead of swallowed.
	NeighborsContext(ctx context.Context, v NodeID) ([]NodeID, error)
	// NumUsers returns the total user count — the provider-published figure
	// Random Jump needs for its ID space.
	NumUsers() int
}

// GraphSource exposes an in-memory graph as a Source: every read is free and
// instantaneous, so sessions over it measure pure algorithm behavior.
// Neighbor lists are read-only views into the graph's CSR arrays — never
// modify their elements (appending is safe: views have clipped capacity, so
// an append reallocates instead of touching the graph).
func GraphSource(g *Graph) Source { return graphSource{g} }

type graphSource struct{ g *Graph }

func (s graphSource) Neighbors(v NodeID) []NodeID { return s.g.Neighbors(v) }
func (s graphSource) Degree(v NodeID) int         { return s.g.Degree(v) }
func (s graphSource) NumUsers() int               { return s.g.NumNodes() }

func (s graphSource) NeighborsContext(ctx context.Context, v NodeID) ([]NodeID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.g.Neighbors(v), nil
}

// Limits configures a simulated provider's restrictions, mirroring the
// published quotas of real social networks.
type Limits struct {
	// QueriesPerWindow caps queries per Window; 0 disables rate limiting.
	QueriesPerWindow int
	// Window is the rate-limit window length (e.g. 600s).
	Window time.Duration
	// PerQueryLatency is the simulated round-trip time of one web request.
	// It advances only the simulated clock; the caller never blocks.
	PerQueryLatency time.Duration
	// RealLatency, when positive, makes every query actually block the
	// calling goroutine for that long — what a concurrent walker fleet
	// overlaps and a sequential crawler pays in full. Cancelling the
	// query's context interrupts the wait.
	RealLatency time.Duration
}

// FacebookLimits mirrors the paper's cited Facebook quota: 600 open-graph
// queries per 600 seconds.
func FacebookLimits() Limits { return Limits(osn.FacebookLimits()) }

// TwitterLimits mirrors the paper's cited Twitter quota: 350 requests/hour.
func TwitterLimits() Limits { return Limits(osn.TwitterLimits()) }

// PrefetchStats counts a provider's speculative-fetch activity.
type PrefetchStats = osn.PrefetchStats

// Provider simulates the restrictive web interface of an online social
// network over an in-memory graph: the only operation is the individual-user
// query q(v), rate-limited per Limits, with the paper's cost accounting —
// only unique demanded queries count; duplicates and speculative prefetches
// are served from (or parked in) a local cache.
//
// A Provider is safe for concurrent use and is the backend to pass NewSession
// for any experiment where query cost or latency matters.
type Provider struct {
	svc    *osn.Service
	client *osn.Client
}

// Simulate wraps g in a simulated provider under the given limits.
func Simulate(g *Graph, limits Limits) *Provider {
	svc := osn.NewService(g, nil, osn.Config(limits))
	return &Provider{svc: svc, client: osn.NewClient(svc)}
}

// Neighbors returns v's neighbor list, querying (and billing) on a cache
// miss; nil for unknown IDs or failed round-trips — use NeighborsContext to
// see the error. The returned slice is a defensive copy: the cached list
// also backs the client's free-knowledge accessors (Theorem 5) and must not
// be mutable from outside.
func (p *Provider) Neighbors(v NodeID) []NodeID {
	return slices.Clone(p.client.Neighbors(v))
}

// Degree returns v's degree, querying on a cache miss.
func (p *Provider) Degree(v NodeID) int { return p.client.Degree(v) }

// NeighborsContext returns v's neighbor list (a defensive copy, like
// Neighbors) with the round-trip bound to ctx; cancellation aborts the
// in-flight request without billing it.
func (p *Provider) NeighborsContext(ctx context.Context, v NodeID) ([]NodeID, error) {
	nbrs, err := p.client.NeighborsContext(ctx, v)
	return slices.Clone(nbrs), err
}

// NumUsers returns the provider-published user count.
func (p *Provider) NumUsers() int { return p.client.NumUsers() }

// Query resolves q(v) under ctx and returns v's neighbor list (a defensive
// copy, like Neighbors).
func (p *Provider) Query(ctx context.Context, v NodeID) ([]NodeID, error) {
	nbrs, err := p.client.NeighborsContext(ctx, v)
	return slices.Clone(nbrs), err
}

// QueryBatch resolves all ids under ctx, overlapping the misses' round-trips,
// and returns the neighbor lists in input order. Each id bills at most one
// unique query no matter how many batches or walkers race for it; a
// cancelled batch returns promptly with ctx's error.
func (p *Provider) QueryBatch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	resps, err := p.client.QueryBatchContext(ctx, ids)
	out := make([][]NodeID, len(resps))
	for i, r := range resps {
		out[i] = slices.Clone(r.Neighbors)
	}
	return out, err
}

// SetBudget caps unique (demand) queries at n; the sampling path returns
// ErrBudgetExhausted instead of billing past it. n <= 0 removes the cap.
// Raising the budget mid-run resumes an exhausted walk.
func (p *Provider) SetBudget(n int64) { p.client.SetBudget(n) }

// UniqueQueries returns the paper's query-cost metric: distinct users a
// sampler actually demanded (speculative prefetches park outside the ledger
// until consumed).
func (p *Provider) UniqueQueries() int64 { return p.client.UniqueQueries() }

// CacheSize returns the number of distinct users stored locally (demanded
// and speculative).
func (p *Provider) CacheSize() int { return p.client.CacheSize() }

// SpeculativeCount returns prefetched responses no demand query has consumed.
func (p *Provider) SpeculativeCount() int64 { return p.client.SpeculativeCount() }

// TotalQueries returns the provider-side request count (including
// speculative and coalesced duplicates served before caching).
func (p *Provider) TotalQueries() int64 { return p.svc.TotalQueries() }

// SimulatedElapsed returns the simulated wall-clock consumed so far.
func (p *Provider) SimulatedElapsed() time.Duration { return p.svc.SimulatedElapsed() }

// RateLimitWaits returns how many times a query sat out a rate-limit window.
func (p *Provider) RateLimitWaits() int64 { return p.svc.RateLimitWaits() }

// PrefetchStats returns the speculative pool's counters (zero without
// prefetching configured).
func (p *Provider) PrefetchStats() PrefetchStats { return p.client.PrefetchStats() }

var (
	_ Source = graphSource{}
	_ Source = (*Provider)(nil)
)
