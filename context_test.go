package rewire_test

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"rewire"
)

// billingExact asserts the cost-ledger invariant that must survive any mix
// of cancellation, speculation, and coalescing: every locally stored
// response is either billed exactly once (demanded) or parked speculative —
// never both, never neither — and the provider served at least as many
// requests as the ledger claims.
func billingExact(t *testing.T, p *rewire.Provider) {
	t.Helper()
	unique, spec, cached := p.UniqueQueries(), p.SpeculativeCount(), int64(p.CacheSize())
	if unique+spec != cached {
		t.Fatalf("billing drift: unique %d + speculative %d != cached %d", unique, spec, cached)
	}
	if total := p.TotalQueries(); total < unique+spec {
		t.Fatalf("ledger claims %d+%d responses but provider served only %d", unique, spec, total)
	}
}

// TestDeadlineAbortsFleetWalk is the acceptance test for the context
// tentpole: a deadline must abort a fleet walk mid-round-trip — returning
// orders of magnitude before the uncancelled walk would finish — while
// UniqueQueries billing remains exact, and the session must resume cleanly.
func TestDeadlineAbortsFleetWalk(t *testing.T) {
	g, err := rewire.SocialGraph(800, 3200, 21)
	if err != nil {
		t.Fatal(err)
	}
	limits := rewire.Limits{RealLatency: 5 * time.Millisecond}
	p := rewire.Simulate(g, limits)
	s, err := rewire.NewSession(p, rewire.WithFleet(4), rewire.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}

	// With 5ms per cold round-trip, 100k samples over fresh territory would
	// take minutes; the 60ms deadline must cut that to roughly the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	begin := time.Now()
	got, err := s.Samples(ctx, 100000)
	elapsed := time.Since(begin)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(s.Err(), nil) {
		t.Fatal("session did not record the abort reason")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline-bound walk took %v to abort", elapsed)
	}
	if len(got) == 100000 {
		t.Fatal("walk completed despite the deadline")
	}
	billingExact(t, p)

	// Resumability: a fresh context continues from the held positions, and
	// already-paid-for topology is never re-billed.
	before := p.UniqueQueries()
	positions := s.Positions()
	more, err := s.Samples(context.Background(), 50)
	if err != nil {
		t.Fatalf("resume after deadline: %v", err)
	}
	if len(more) != 50 {
		t.Fatalf("resume drew %d samples, want 50", len(more))
	}
	billingExact(t, p)
	// Re-demanding the nodes the walkers sat on must be free: they were
	// demand-queried during the aborted run (or the resume's first steps).
	after := p.UniqueQueries()
	if _, err := p.QueryBatch(context.Background(), positions); err != nil {
		t.Fatal(err)
	}
	if p.UniqueQueries() != after {
		t.Fatalf("re-demanding held positions re-billed: %d -> %d", after, p.UniqueQueries())
	}
	if after < before {
		t.Fatalf("ledger went backwards: %d -> %d", before, after)
	}
}

// TestCancellationMidStream cancels a live stream from the consumer side and
// verifies the iterator terminates with the cancellation error promptly.
func TestCancellationMidStream(t *testing.T) {
	g, err := rewire.SocialGraph(500, 2000, 31)
	if err != nil {
		t.Fatal(err)
	}
	p := rewire.Simulate(g, rewire.Limits{RealLatency: 2 * time.Millisecond})
	s, err := rewire.NewSession(p, rewire.WithFleet(3), rewire.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawErr error
	n := 0
	begin := time.Now()
	for smp, err := range s.Stream(ctx, 1000000) {
		_ = smp
		if err != nil {
			sawErr = err
			break
		}
		n++
		if n == 20 {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("stream ended with %v, want context.Canceled", sawErr)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
	billingExact(t, p)
}

// TestDeadlineDuringPrefetchExpansion puts a deadline in the middle of a
// deep speculative frontier expansion: the pool must stop spending provider
// quota once the context expires, and the speculative ledger must stay
// consistent — aborted speculative fetches cache nothing and bill nothing.
func TestDeadlineDuringPrefetchExpansion(t *testing.T) {
	g, err := rewire.SocialGraph(1200, 6000, 41)
	if err != nil {
		t.Fatal(err)
	}
	p := rewire.Simulate(g, rewire.Limits{RealLatency: 2 * time.Millisecond})
	s, err := rewire.NewSession(p,
		rewire.WithFleet(2),
		rewire.WithSeed(17),
		rewire.WithPrefetch(rewire.PrefetchOptions{
			Strategy: rewire.PrefetchFrontier,
			TopK:     8,
			Workers:  8,
			Depth:    3, // deep recursive expansion: the frontier outruns the walk
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Samples(ctx, 1000000); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	billingExact(t, p)
	servedAtAbort := p.TotalQueries()
	// The pool is stopped and its context expired: no speculative round-trip
	// may land after the abort settles.
	time.Sleep(20 * time.Millisecond)
	if now := p.TotalQueries(); now != servedAtAbort {
		t.Fatalf("provider served %d more requests after the aborted run settled", now-servedAtAbort)
	}
	billingExact(t, p)

	// The session still completes a small follow-up run (speculation is a
	// pure latency optimization — aborting it loses nothing).
	if _, err := s.Samples(context.Background(), 30); err != nil {
		t.Fatalf("resume after prefetch abort: %v", err)
	}
	billingExact(t, p)
}

// TestAbortBillingHammer is the -race hammer for exact billing: a fleet with
// deep speculation is cancelled at random points over many rounds — hitting
// walks between speculative fetch and demand consumption from every angle —
// and the ledger invariant must hold after every round, with cached
// responses never re-billed.
func TestAbortBillingHammer(t *testing.T) {
	g, err := rewire.SocialGraph(600, 2600, 51)
	if err != nil {
		t.Fatal(err)
	}
	p := rewire.Simulate(g, rewire.Limits{RealLatency: 300 * time.Microsecond})
	s, err := rewire.NewSession(p,
		rewire.WithFleet(8),
		rewire.WithSeed(23),
		rewire.WithPrefetch(rewire.PrefetchOptions{Strategy: rewire.PrefetchNextHop, Workers: 8, Depth: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(99))
	var aborted, clean atomic.Int64
	for round := 0; round < 15; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		if delay := rnd.Intn(4); delay > 0 {
			timer := time.AfterFunc(time.Duration(delay)*time.Millisecond, cancel)
			_, err := s.Samples(ctx, 300)
			timer.Stop()
			if err != nil {
				aborted.Add(1)
			} else {
				clean.Add(1)
			}
		} else {
			cancel() // already-dead context: the run must refuse instantly
			if _, err := s.Samples(ctx, 300); !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: pre-cancelled run returned %v", round, err)
			}
			ctx2, cancel2 := context.WithCancel(context.Background())
			if _, err := s.Samples(ctx2, 50); err != nil {
				t.Fatalf("round %d: recovery run failed: %v", round, err)
			}
			cancel2()
			clean.Add(1)
		}
		cancel()
		billingExact(t, p)
	}
	if aborted.Load() == 0 {
		t.Log("hammer note: no round aborted mid-walk (timing-dependent); invariants still exercised")
	}
	if clean.Load() == 0 {
		t.Fatal("hammer never completed a clean round")
	}
	// Exactness across the speculative boundary: demanding the walkers'
	// final positions may upgrade entries still parked speculative (a node
	// stepped to just before a cancel has been prefetched but not yet
	// demanded) — each billed exactly once — after which the same batch must
	// be entirely free.
	if _, err := p.QueryBatch(context.Background(), s.Positions()); err != nil {
		t.Fatal(err)
	}
	billingExact(t, p)
	before := p.UniqueQueries()
	if _, err := p.QueryBatch(context.Background(), s.Positions()); err != nil {
		t.Fatal(err)
	}
	if p.UniqueQueries() != before {
		t.Fatalf("second replay moved the ledger: %d -> %d", before, p.UniqueQueries())
	}
	billingExact(t, p)
}
