package rewire_test

import (
	"context"
	"errors"
	"fmt"

	"rewire"
)

// ExampleNewSession shows the zero-to-sampling path: simulate a restrictive
// provider over the paper's barbell graph and drain a sample budget with an
// MTO session. The barbell has 22 nodes, so a full crawl costs 22 unique
// queries no matter how many samples are drawn — everything else is cache.
func ExampleNewSession() {
	g := rewire.Barbell(11)
	provider := rewire.Simulate(g, rewire.FacebookLimits())
	s, err := rewire.NewSession(provider,
		rewire.WithStarts(0),
		rewire.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	samples, err := s.Samples(context.Background(), 1000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d samples, %d unique queries\n", len(samples), provider.UniqueQueries())
	// Output:
	// 1000 samples, 22 unique queries
}

// ExampleSession_Stream ranges over the sample iterator and stops early —
// breaking out of the loop is all the cleanup a consumer owes.
func ExampleSession_Stream() {
	g := rewire.Barbell(5)
	s, err := rewire.NewSession(rewire.GraphSource(g),
		rewire.WithAlgorithm(rewire.AlgSRW),
		rewire.WithStarts(0),
		rewire.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}
	n := 0
	for sample, err := range s.Stream(context.Background(), 100) {
		if err != nil {
			panic(err)
		}
		_ = sample
		n++
		if n == 10 {
			break
		}
	}
	fmt.Println("consumed", n, "of 100 budgeted samples")
	// Output:
	// consumed 10 of 100 budgeted samples
}

// ExampleSession_Samples_cancellation shows context plumbing end to end: a
// cancelled context aborts the run — including any in-flight provider
// round-trips — and the session reports the reason.
func ExampleSession_Samples_cancellation() {
	g := rewire.Barbell(8)
	s, err := rewire.NewSession(rewire.Simulate(g, rewire.FacebookLimits()))
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the run refuses immediately
	_, err = s.Samples(ctx, 1000)
	fmt.Println("aborted:", errors.Is(err, context.Canceled))

	// The session survives: a live context resumes where the walk stood.
	samples, err := s.Samples(context.Background(), 50)
	if err != nil {
		panic(err)
	}
	fmt.Println("resumed for", len(samples), "samples")
	// Output:
	// aborted: true
	// resumed for 50 samples
}

// ExampleSession_Estimate runs the paper's full protocol — Geweke-monitored
// burn-in, importance-weighted estimation — in one call.
func ExampleSession_Estimate() {
	g := rewire.Barbell(11)
	provider := rewire.Simulate(g, rewire.Limits{})
	s, err := rewire.NewSession(provider,
		rewire.WithStarts(0),
		rewire.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	res, err := s.Estimate(context.Background(), rewire.AvgDegree(), rewire.EstimateOptions{
		Samples:         2000,
		BurnIn:          true,
		GewekeThreshold: 0.2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimate %.2f (truth %.2f) from %d samples, converged: %v\n",
		res.Estimate, g.AverageDegree(), res.Samples, res.Converged)
	// Output:
	// estimate 10.09 (truth 10.09) from 2000 samples, converged: true
}

// ExampleSession_Rewired shows the on-the-fly rewiring doing its job: the
// walk's overlay ends denser in conductance than the graph it never
// modified.
func ExampleSession_Rewired() {
	g := rewire.Barbell(11)
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithStarts(0), rewire.WithSeed(1))
	if err != nil {
		panic(err)
	}
	if _, err := s.Samples(context.Background(), 5000); err != nil {
		panic(err)
	}
	removed, added := s.Rewired()
	overlay, err := s.MaterializeOverlay()
	if err != nil {
		panic(err)
	}
	phi, _ := rewire.Conductance(g)
	phiStar, _ := rewire.Conductance(overlay)
	fmt.Printf("%d removals, %d additions; conductance %.4f -> %.4f\n",
		removed, added, phi, phiStar)
	// Output:
	// 81 removals, 0 additions; conductance 0.0179 -> 0.0667
}
