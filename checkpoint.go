package rewire

import (
	"context"
	"encoding/json"
	"fmt"
	"slices"

	"rewire/internal/core"
	"rewire/internal/graph"
	"rewire/internal/walk"
)

// checkpointVersion is the envelope version this build reads and writes.
// Bump it on any incompatible change to the serialized layout; Resume
// rejects other versions with ErrCheckpointVersion.
const checkpointVersion = 1

// checkpointEnvelope is the serialized form of a paused session: the full
// construction config plus the per-walker chain state (position and RNG
// stream) and the MTO overlay's edge delta. It deliberately carries NO
// backend and NO cache: the bytes must be portable across processes, and the
// expensive state — the paid-for topology — lives in the Provider's cache,
// which the resuming caller reattaches via WithSource. Everything else a
// walker holds (verdict caches, frontier rankings, scratch buffers) is pure
// memoization of deterministic recomputation and is rebuilt lazily.
type checkpointEnvelope struct {
	// Version is serialized under the key "rewire_checkpoint" so the first
	// bytes of the JSON double as a file magic.
	Version     int              `json:"rewire_checkpoint"`
	Alg         string           `json:"alg"`
	Seed        uint64           `json:"seed"`
	PJump       float64          `json:"p_jump,omitempty"`
	Partitioned bool             `json:"partitioned,omitempty"`
	Shards      int              `json:"shards,omitempty"`
	Core        core.Config      `json:"core"`
	Prefetch    *PrefetchOptions `json:"prefetch,omitempty"`
	Walkers     []walkerEnvelope `json:"walkers"`
	Overlay     *overlayEnvelope `json:"overlay,omitempty"`
}

// walkerEnvelope is one fleet member's chain state. Position plus the four
// xoshiro words fully determine every future draw; for RandomJump the one
// stream covers both the jump coin and the embedded MHRW.
type walkerEnvelope struct {
	Pos  NodeID    `json:"pos"`
	Rand [4]uint64 `json:"rand"`
}

// overlayEnvelope is the MTO overlay's rewiring delta: removed and added
// edges as canonical (u <= v) endpoint pairs, sorted, plus the pivots
// already spent on Theorem 4 replacements. The pivot set is load-bearing for
// byte-identical resumption: pivot availability is checked BEFORE the
// replacement coin is drawn, so losing it would desynchronize the resumed
// RNG stream from the uninterrupted run's.
type overlayEnvelope struct {
	Removed [][2]NodeID `json:"removed"`
	Added   [][2]NodeID `json:"added"`
	Pivots  []NodeID    `json:"pivots"`
}

func edgePairs(keys []graph.EdgeKey) [][2]NodeID {
	out := make([][2]NodeID, len(keys))
	for i, k := range keys {
		u, v := k.Nodes()
		out[i] = [2]NodeID{u, v}
	}
	return out
}

func edgeKeys(pairs [][2]NodeID) []graph.EdgeKey {
	out := make([]graph.EdgeKey, len(pairs))
	for i, p := range pairs {
		out[i] = graph.KeyOf(p[0], p[1])
	}
	return out
}

func algName(a Algorithm) string { return a.String() }

func algFromName(name string) (Algorithm, error) {
	for a := AlgMTO; a <= AlgRJ; a++ {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("rewire: checkpoint names unknown algorithm %q", name)
}

// Checkpoint serializes the session's resumable state — config, per-walker
// chain state, overlay delta — as a versioned, self-describing JSON envelope
// that Resume turns back into a live session, in this process or another.
// The output is deterministic: the same paused session always produces the
// same bytes.
//
// Only a quiescent session can be checkpointed: pause an active run first
// (Session.Pause, then let the stream drain) or wait for it to finish;
// during a run Checkpoint returns ErrActiveStream rather than racing the
// walker goroutines. The bytes carry no backend and no cache — resuming
// attaches a Source explicitly (WithSource), typically the same shared
// Provider whose cache made the walk cheap in the first place.
func (s *Session) Checkpoint(ctx context.Context) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	active := s.running
	s.mu.Unlock()
	if active {
		return nil, ErrActiveStream
	}
	members := s.fleet.Members()
	walkers := make([]walkerEnvelope, len(members))
	for i, m := range members {
		sc, ok := m.(walk.StateCarrier)
		if !ok {
			return nil, fmt.Errorf("rewire: walker %d (%T) cannot export chain state", i, m)
		}
		walkers[i] = walkerEnvelope{Pos: m.Current(), Rand: sc.RandState()}
	}
	env := checkpointEnvelope{
		Version:     checkpointVersion,
		Alg:         algName(s.cfg.alg),
		Seed:        s.cfg.seed,
		PJump:       s.cfg.pJump,
		Partitioned: s.cfg.partitioned,
		Shards:      s.cfg.shards,
		Core:        s.cfg.core,
		Prefetch:    s.cfg.prefetch,
		Walkers:     walkers,
	}
	if s.overlay != nil {
		removed, added, pivots := s.overlay.Delta()
		env.Overlay = &overlayEnvelope{
			Removed: edgePairs(removed),
			Added:   edgePairs(added),
			Pivots:  pivots,
		}
	}
	return json.Marshal(env)
}

// Resume rebuilds a live session from Checkpoint bytes. The checkpoint
// fixes the chain — algorithm, fleet size, walker positions, RNG streams,
// overlay delta, seed — so the resumed session's future trajectory is
// byte-identical to the uninterrupted run's. What the checkpoint does NOT
// carry is the backend: pass one with WithSource — the same Provider for an
// in-process pause/resume, or a fresh one over the same URL after a process
// restart (the resumed walk then re-demands what the lost cache held, but
// follows the same nodes).
//
// Options that would change the chain (WithAlgorithm, WithFleet, WithStarts,
// WithSeed) are rejected; operational options — WithSource, WithStoreShards,
// WithPrefetch, budget and weight tuning — apply normally.
//
// Bytes from an incompatible envelope version fail with
// ErrCheckpointVersion.
func Resume(ctx context.Context, data []byte, opts ...Option) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("rewire: malformed checkpoint: %w", err)
	}
	if env.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: envelope says %d, this build speaks %d",
			ErrCheckpointVersion, env.Version, checkpointVersion)
	}
	if len(env.Walkers) == 0 {
		return nil, fmt.Errorf("rewire: checkpoint carries no walkers")
	}
	alg, err := algFromName(env.Alg)
	if err != nil {
		return nil, err
	}

	cfg := defaults()
	cfg.alg = alg
	cfg.seed = env.Seed
	if env.PJump > 0 {
		cfg.pJump = env.PJump
	}
	cfg.partitioned = env.Partitioned
	cfg.shards = env.Shards
	cfg.core = env.Core
	cfg.prefetch = env.Prefetch
	cfg.fleet = len(env.Walkers)
	cfg.starts = make([]NodeID, len(env.Walkers))
	for i, w := range env.Walkers {
		cfg.starts[i] = w.Pos
	}

	frozen := cfg // the chain-defining fields options must not touch
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	switch {
	case cfg.alg != frozen.alg:
		return nil, fmt.Errorf("rewire: Resume cannot change the algorithm (checkpoint is %s)", frozen.alg)
	case cfg.fleet != frozen.fleet || !slices.Equal(cfg.starts, frozen.starts):
		return nil, fmt.Errorf("rewire: Resume cannot change the fleet or its positions (checkpoint has %d walkers)", frozen.fleet)
	case cfg.seed != frozen.seed:
		return nil, fmt.Errorf("rewire: Resume cannot reseed — the checkpoint carries the live RNG streams")
	}
	if cfg.src == nil {
		return nil, fmt.Errorf("rewire: Resume needs a backend — checkpoints are backend-free, pass WithSource")
	}

	s, err := newSession(cfg.src, cfg)
	if err != nil {
		return nil, err
	}
	for i, m := range s.fleet.Members() {
		sc, ok := m.(walk.StateCarrier)
		if !ok {
			return nil, fmt.Errorf("rewire: walker %d (%T) cannot restore chain state", i, m)
		}
		sc.SetCurrent(env.Walkers[i].Pos)
		sc.SetRandState(env.Walkers[i].Rand)
	}
	if env.Overlay != nil && s.overlay != nil {
		s.overlay.RestoreDelta(edgeKeys(env.Overlay.Removed), edgeKeys(env.Overlay.Added), env.Overlay.Pivots)
	}
	return s, nil
}
