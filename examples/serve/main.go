// Command serve demonstrates the multi-tenant sampling daemon end to end,
// all in one process:
//
//  1. a reference HTTP provider (internal/httpsrc.Handler) serves a generated
//     social graph over GET /neighbors + /meta, with per-request latency like
//     a real API;
//  2. a serve.Server — the engine behind cmd/rewire-serve — opens ONE shared
//     provider stack for that URL;
//  3. a client submits a job, follows its JSON-lines stream, pauses it
//     mid-run, resumes it, and reads the final estimate — the resumed
//     trajectory continuing byte-identically where the paused one stopped.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"rewire"
	"rewire/internal/httpsrc"
	"rewire/internal/serve"
)

type event struct {
	Sample   *rewire.Sample `json:"sample"`
	State    string         `json:"state"`
	Estimate *float64       `json:"estimate"`
	Error    string         `json:"error"`
}

// follow reads the job's stream from index `from`, calling onSample per
// sample, until the closing state line.
func follow(base, id string, from int, onSample func(n int)) (int, event, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?from=%d", base, id, from))
	if err != nil {
		return 0, event{}, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	n := 0
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return n, event{}, err
		}
		if ev.Sample != nil {
			n++
			if onSample != nil {
				onSample(n)
			}
			continue
		}
		return n, ev, nil
	}
	if err := sc.Err(); err != nil {
		return n, event{}, fmt.Errorf("stream ended without a state line: %w", err)
	}
	return n, event{}, fmt.Errorf("stream ended without a state line")
}

func listen() (net.Listener, string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}

func main() {
	// 1. The reference provider: a 3000-user social graph behind a real
	// socket, 1ms per request — slow enough that pausing lands mid-run.
	g, err := rewire.SocialGraph(3000, 12000, 7)
	if err != nil {
		log.Fatal(err)
	}
	provLn, provURL := listen()
	go http.Serve(provLn, httpsrc.Handler(g, httpsrc.ServerOptions{Latency: time.Millisecond}))

	// 2. The daemon: one shared provider stack per backend URL.
	srv := serve.New(context.Background(), serve.Options{})
	defer srv.Close()
	srvLn, base := listen()
	go http.Serve(srvLn, srv.Handler())
	fmt.Printf("provider at %s, daemon at %s\n\n", provURL, base)

	// 3. Submit: a JSON spec mirroring the SDK's functional options.
	spec := fmt.Sprintf(`{"backend": %q, "tenant": "demo", "samples": 1200, "algorithm": "MTO", "seed": 42}`,
		provURL+"?timeout=10s")
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted job %s: %s\n", sub.ID, spec)

	// 4. Stream, pausing after 300 samples.
	pauseAt := 300
	n1, end, err := follow(base, sub.ID, 0, func(n int) {
		if n == pauseAt {
			if _, err := http.Post(base+"/v1/jobs/"+sub.ID+"/pause", "", nil); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d samples, then the stream ended %q (pause quiesces at a step boundary)\n", n1, end.State)

	var bills struct {
		Tenants map[string]map[string]rewire.TenantBill `json:"tenants"`
	}
	getJSON(base+"/v1/tenants", &bills)
	for url, bill := range bills.Tenants["demo"] {
		fmt.Printf("tenant %q billed %d unique queries on %s so far\n", "demo", bill.Unique, url)
	}

	// 5. Resume: the stored checkpoint is fed through rewire.Resume with the
	// SHARED provider reattached, so the walk keeps every cached neighbor
	// list it already paid for and continues byte-identically.
	if _, err := http.Post(base+"/v1/jobs/"+sub.ID+"/resume", "", nil); err != nil {
		log.Fatal(err)
	}
	n2, end, err := follow(base, sub.ID, n1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed: %d more samples, stream ended %q\n", n2, end.State)
	if end.Estimate != nil {
		fmt.Printf("final average-degree estimate: %.3f (true %.3f)\n",
			*end.Estimate, 2*float64(g.NumEdges())/float64(g.NumNodes()))
	}
	getJSON(base+"/v1/tenants", &bills)
	for url, bill := range bills.Tenants["demo"] {
		fmt.Printf("tenant %q final bill on %s: %d unique queries\n", "demo", url, bill.Unique)
	}
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
