// Command backends demonstrates the pluggable backend layer: URL-style
// driver opening, the snapshot workflow (crawl → WriteSnapshot → reopen in
// O(1)), and composable middleware over a custom Backend — everything built
// on the public rewire SDK only.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rewire"
)

func main() {
	ctx := context.Background()

	// 1. URL-style opening: the same session code runs over any scheme.
	// mem: serves a generated graph through the full provider stack (cache,
	// billing); sim: adds the paper's simulated quota machinery.
	fmt.Println("== rewire.Open over registered drivers ==")
	fmt.Println("registered schemes:", rewire.Drivers())
	for _, target := range []string{
		"mem:barbell?n=100",
		"sim:social?nodes=2000&edges=8000&seed=7&limits=facebook",
	} {
		p, err := rewire.Open(ctx, target)
		if err != nil {
			log.Fatal(err)
		}
		s, err := rewire.NewSession(p, rewire.WithAlgorithm(rewire.AlgMTO), rewire.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := s.Samples(ctx, 500); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-55s %5d users, %4d unique queries\n", target, p.NumUsers(), p.UniqueQueries())
		p.Close()
	}

	// 2. The snapshot workflow: pay for the crawl once, write the topology
	// as a binary CSR snapshot, and every later session opens it in O(1) —
	// no edge-list rebuild, mmap'd on linux.
	fmt.Println("\n== snapshot workflow: crawl -> WriteSnapshot -> Open ==")
	g, err := rewire.SocialGraph(5000, 20000, 42)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "rewire-backends-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "crawl.csr")
	if err := rewire.WriteSnapshotFile(snapPath, g); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(snapPath)
	fmt.Printf("  wrote %s (%d nodes, %d edges, %d bytes)\n", snapPath, g.NumNodes(), g.NumEdges(), st.Size())

	p, err := rewire.Open(ctx, "snapshot:"+snapPath)
	if err != nil {
		log.Fatal(err)
	}
	s, err := rewire.NewSession(p,
		rewire.WithAlgorithm(rewire.AlgMTO),
		rewire.WithFleet(4),
		rewire.WithSeed(3),
		rewire.WithPartitionedBudget(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Estimate(ctx, rewire.AvgDegree(), rewire.EstimateOptions{Samples: 2000, BurnIn: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  reopened snapshot: est avg degree %.3f (true %.3f), %d unique queries\n",
		res.Estimate, g.AverageDegree(), res.UniqueQueries)
	p.Close()

	// 3. Middleware composition over a hand-built backend: metrics around a
	// client-side rate limit around the mem driver's backend, then the whole
	// stack behind a Provider. Capabilities (user count, close) survive the
	// wrapping because probing follows Unwrap chains.
	fmt.Println("\n== middleware composition ==")
	inner, err := rewire.Open(ctx, "mem:barbell?n=60")
	if err != nil {
		log.Fatal(err)
	}
	var metrics rewire.BackendMetrics
	stacked := rewire.BackendSource(
		rewire.WithMetrics(
			rewire.WithRateLimit(
				rewire.WithRetry(inner.Backend(), rewire.RetryOptions{}),
				5000, 100),
			&metrics),
	)
	s2, err := rewire.NewSession(stacked, rewire.WithAlgorithm(rewire.AlgSRW), rewire.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s2.Samples(ctx, 400); err != nil {
		log.Fatal(err)
	}
	snap := metrics.Snapshot()
	fmt.Printf("  metrics through the stack: %d fetches / %d ids / %d failures, %v total\n",
		snap.Fetches, snap.IDs, snap.Failures, snap.Total)
	fmt.Printf("  provider billed %d unique queries over %d users\n", stacked.UniqueQueries(), stacked.NumUsers())
	stacked.Close()
}
