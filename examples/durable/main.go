// Command durable demonstrates the crash-safe cache: a child process crawls
// through a write-ahead-logged cache directory and dies abruptly — no Close,
// no WAL seal, no cleanup, the moral equivalent of kill -9 — and the parent
// reopens the directory, recovers the cache and billing ledger exactly, and
// re-runs the same fixed-seed crawl warm: byte-identical trajectory, zero
// re-billed queries. Built on the public rewire SDK only.
//
//	go run ./examples/durable
package main

import (
	"context"
	"fmt"
	"log"
	"net/url"
	"os"
	"os/exec"

	"rewire"
)

const (
	graphURL = "mem:social?nodes=500&edges=2000&seed=42"
	seed     = 7
	steps    = 2000
	childEnv = "REWIRE_DURABLE_CHILD"
)

func main() {
	if dir := os.Getenv(childEnv); dir != "" {
		child(dir)
		return
	}

	ctx := context.Background()
	dir, err := os.MkdirTemp("", "rewire-durable-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Reference: the same crawl, cold, with no cache — what an uninterrupted
	// run produces.
	ref, err := rewire.Open(ctx, graphURL)
	if err != nil {
		log.Fatal(err)
	}
	refNodes := crawl(ctx, ref)
	refUnique := ref.UniqueQueries()
	ref.Close()
	fmt.Printf("reference crawl: %d steps, %d unique queries billed\n\n", steps, refUnique)

	// The child crawls into the cache directory and dies mid-run without
	// closing anything.
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), childEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	fmt.Printf("%s", out)
	if err == nil {
		log.Fatal("child was supposed to die mid-crawl")
	}
	fmt.Printf("child died as planned (%v) — nothing was flushed or sealed\n\n", err)

	// Recovery: reopen the directory through the cache: driver. The WAL tail
	// is replayed (a torn final record, if the crash split one, is silently
	// truncated — it was never acknowledged), and the ledger comes back
	// exactly as far as the child's acknowledged fetches.
	p, err := rewire.Open(ctx, cacheScheme(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	st, _ := p.DurableCacheStats()
	recovered := p.UniqueQueries()
	fmt.Printf("recovered: %d cached users, %d WAL records replayed, ledger at %d unique queries\n",
		st.Entries, st.Replayed, recovered)

	// Resume: the same-seed crawl replays the reference trajectory node for
	// node; recovered entries are free cache hits.
	warmNodes := crawl(ctx, p)
	for i := range refNodes {
		if warmNodes[i] != refNodes[i] {
			log.Fatalf("trajectory diverged at step %d: %d != %d", i, warmNodes[i], refNodes[i])
		}
	}
	fmt.Printf("resumed crawl: trajectory identical to the reference for all %d steps\n", steps)
	fmt.Printf("final bill: %d unique queries (reference %d) — the %d recovered entries were never re-billed\n",
		p.UniqueQueries(), refUnique, recovered)
}

func cacheScheme(dir string) string {
	return "cache:" + dir + "?src=" + url.QueryEscape(graphURL)
}

// crawl runs the demo's fixed-seed random walk over src and returns the node
// trajectory.
func crawl(ctx context.Context, src rewire.Source) []rewire.NodeID {
	sess, err := rewire.NewSession(src, rewire.WithAlgorithm(rewire.AlgSRW), rewire.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	var nodes []rewire.NodeID
	for v := range sess.Nodes(ctx, steps) {
		nodes = append(nodes, v)
	}
	if err := sess.Err(); err != nil {
		log.Fatal(err)
	}
	return nodes
}

// child crawls into the durable cache at dir and exits abruptly partway —
// simulating a crash: no provider Close, no WAL seal, no manifest update.
func child(dir string) {
	ctx := context.Background()
	p, err := rewire.Open(ctx, cacheScheme(dir))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := rewire.NewSession(p, rewire.WithAlgorithm(rewire.AlgSRW), rewire.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for range sess.Nodes(ctx, steps) {
		n++
		if n == steps/3 {
			fmt.Printf("child: crawled %d steps (%d unique queries persisted), dying now\n",
				n, p.UniqueQueries())
			os.Exit(137) // no cleanup runs: the WAL is all that survives
		}
	}
	log.Fatal("child finished without dying")
}
