// Epinions aggregate estimation: the paper's §V-B local-dataset workload.
// A directed trust graph is converted to its reciprocal undirected form
// (§V-A.2), served behind the restrictive per-user query interface, and all
// four samplers estimate the average degree under a fixed query budget.
//
//	go run ./examples/epinions
package main

import (
	"fmt"
	"log"

	"rewire/internal/diag"
	"rewire/internal/estimate"
	"rewire/internal/exp"
	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/stats"
)

func main() {
	// Build the trust network the way the paper prepares Epinions: start
	// from the directed graph, keep only reciprocal edges.
	mutual := gen.EpinionsLikeSmall(11)
	directed := gen.DirectedTrust(mutual, mutual.NumEdges()/2, rng.New(12))
	g := directed.Reciprocal()
	fmt.Printf("directed trust graph: %d arcs; reciprocal: %d nodes, %d edges\n",
		directed.NumArcs(), g.NumNodes(), g.NumEdges())

	truth := estimate.GroundTruthDegree(g)
	fmt.Printf("ground-truth average degree: %.4f\n\n", truth)
	fmt.Printf("%-7s %12s %10s %10s %9s\n", "sampler", "estimate", "rel err", "queries", "burn-in")

	for _, alg := range exp.PaperAlgorithms() {
		svc := osn.NewService(g, nil, osn.Config{})
		client := osn.NewClient(svc)
		r := rng.New(99)
		start := graph.NodeID(r.Intn(g.NumNodes()))
		walker, weighter, err := exp.NewWalker(alg, client, client.NumUsers(), start, r)
		if err != nil {
			log.Fatal(err)
		}
		info := func(v graph.NodeID) (int, estimate.Attrs) {
			return client.Degree(v), estimate.Attrs{}
		}
		res := estimate.RunSession(walker, weighter, estimate.AvgDegree(), info,
			client.UniqueQueries, estimate.SessionConfig{
				BurnIn:  diag.NewGeweke(diag.DefaultThreshold, 200),
				Samples: 3000,
			})
		fmt.Printf("%-7s %12.4f %10.4f %10d %9d\n",
			alg, res.Estimate, stats.RelativeError(res.Estimate, truth),
			res.FinalCost, res.BurnInSteps)
	}
}
