// Fleet: run k MTO walkers concurrently against ONE simulated provider
// under the paper's Facebook quota (600 queries / 600 s, §II-A), sharing a
// single caching client and a single rewired overlay — so every walker
// benefits from every other walker's discovered topology and the whole
// fleet draws on one query budget. For contrast, the same walkers are then
// run in isolation (private caches, private overlays), which multiplies the
// unique-query bill for the same sample count.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"rewire/internal/core"
	"rewire/internal/gen"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

const (
	walkers = 8
	samples = 4000
)

// provider is the paper's Facebook quota plus a real 1ms round-trip per
// query, so walkers genuinely wait on the wire — the wait a concurrent
// fleet overlaps and a sequential crawler pays in full.
func provider() osn.Config {
	cfg := osn.FacebookLimits()
	cfg.RealLatency = time.Millisecond
	return cfg
}

func main() {
	g, err := gen.Social(gen.SocialConfig{Nodes: 2659, TargetEdges: 10012}, rng.New(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; provider quota: Facebook (600 queries / 600s), 1ms round-trip\n\n",
		g.NumNodes(), g.NumEdges())

	starts := core.SpreadStarts(walkers, g.NumNodes(), rng.New(7))

	// --- Shared fleet: one API key, one cache, one overlay -----------------
	svc := osn.NewService(g, nil, provider())
	client := osn.NewClient(svc)
	fleet, ov := core.NewFleet(client, starts, core.DefaultConfig(), rng.New(1))
	t0 := time.Now()
	drawn := fleet.Samples(samples)
	fleetWall := time.Since(t0)

	fmt.Printf("shared fleet (%d walkers, one budget):\n", walkers)
	fmt.Printf("  samples drawn        %d\n", len(drawn))
	fmt.Printf("  per-walker share     %v\n", walk.PerWalker(drawn, walkers))
	fmt.Printf("  unique queries       %d\n", client.UniqueQueries())
	fmt.Printf("  rate-limit waits     %d\n", svc.RateLimitWaits())
	fmt.Printf("  simulated elapsed    %v\n", svc.SimulatedElapsed())
	fmt.Printf("  wall-clock           %v\n", fleetWall.Round(time.Millisecond))
	fmt.Printf("  overlay rewiring     %d removals, %d additions\n\n", ov.RemovedCount(), ov.AddedCount())

	// --- Isolated walkers: k API keys, k caches, k overlays ----------------
	var isolatedQueries, isolatedWaits int64
	r := rng.New(1)
	t1 := time.Now()
	for i := 0; i < walkers; i++ {
		svcI := osn.NewService(g, nil, provider())
		clientI := osn.NewClient(svcI)
		s := core.NewSampler(clientI, starts[i], core.DefaultConfig(), r.Split())
		walk.Run(s, samples/walkers)
		isolatedQueries += clientI.UniqueQueries()
		isolatedWaits += svcI.RateLimitWaits()
	}
	isolatedWall := time.Since(t1)
	fmt.Printf("isolated walkers (%d private budgets, same %d total samples, run back to back):\n", walkers, samples)
	fmt.Printf("  unique queries       %d\n", isolatedQueries)
	fmt.Printf("  rate-limit waits     %d\n", isolatedWaits)
	fmt.Printf("  wall-clock           %v\n", isolatedWall.Round(time.Millisecond))

	saved := isolatedQueries - client.UniqueQueries()
	fmt.Printf("\nsharing the cache and overlay saved %d unique queries (%.1f%% of the isolated bill), "+
		"and overlapping round-trips cut wall-clock %.1fx\n",
		saved, 100*float64(saved)/float64(isolatedQueries), float64(isolatedWall)/float64(fleetWall))
}
