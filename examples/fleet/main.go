// Fleet: run k MTO walkers concurrently against ONE simulated provider
// under the paper's Facebook quota (600 queries / 600 s, §II-A), sharing a
// single caching client and a single rewired overlay — so every walker
// benefits from every other walker's discovered topology and the whole
// fleet draws on one query budget. For contrast, the same walkers are then
// run in isolation (private sessions, private caches, private overlays),
// which multiplies the unique-query bill for the same sample count. Built
// entirely on the public rewire SDK.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rewire"
)

const (
	walkers = 8
	samples = 4000
)

// limits is the paper's Facebook quota plus a real 1ms round-trip per
// query, so walkers genuinely wait on the wire — the wait a concurrent
// fleet overlaps and a sequential crawler pays in full.
func limits() rewire.Limits {
	l := rewire.FacebookLimits()
	l.RealLatency = time.Millisecond
	return l
}

func main() {
	ctx := context.Background()
	g, err := rewire.SocialGraph(2659, 10012, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; provider quota: Facebook (600 queries / 600s), 1ms round-trip\n\n",
		g.NumNodes(), g.NumEdges())

	// --- Shared fleet: one API key, one cache, one overlay -----------------
	shared := rewire.Simulate(g, limits())
	fleet, err := rewire.NewSession(shared, rewire.WithFleet(walkers), rewire.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	// Before the first run, Positions() is the seeded spread of start nodes;
	// pin the isolated control arm to the same starts so the comparison
	// isolates cache/overlay sharing, not start placement.
	starts := fleet.Positions()
	t0 := time.Now()
	drawn, err := fleet.Samples(ctx, samples)
	if err != nil {
		log.Fatal(err)
	}
	fleetWall := time.Since(t0)
	perWalker := make([]int, walkers)
	for _, s := range drawn {
		perWalker[s.Walker]++
	}
	removed, added := fleet.Rewired()

	fmt.Printf("shared fleet (%d walkers, one budget):\n", walkers)
	fmt.Printf("  samples drawn        %d\n", len(drawn))
	fmt.Printf("  per-walker share     %v\n", perWalker)
	fmt.Printf("  unique queries       %d\n", shared.UniqueQueries())
	fmt.Printf("  rate-limit waits     %d\n", shared.RateLimitWaits())
	fmt.Printf("  simulated elapsed    %v\n", shared.SimulatedElapsed())
	fmt.Printf("  wall-clock           %v\n", fleetWall.Round(time.Millisecond))
	fmt.Printf("  overlay rewiring     %d removals, %d additions\n\n", removed, added)

	// --- Isolated walkers: k API keys, k caches, k overlays ----------------
	var isolatedQueries, isolatedWaits int64
	t1 := time.Now()
	for i := 0; i < walkers; i++ {
		p := rewire.Simulate(g, limits())
		solo, err := rewire.NewSession(p,
			rewire.WithStarts(starts[i]), rewire.WithSeed(uint64(100+i)))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := solo.Samples(ctx, samples/walkers); err != nil {
			log.Fatal(err)
		}
		isolatedQueries += p.UniqueQueries()
		isolatedWaits += p.RateLimitWaits()
	}
	isolatedWall := time.Since(t1)
	fmt.Printf("isolated walkers (%d private budgets, same %d total samples, run back to back):\n", walkers, samples)
	fmt.Printf("  unique queries       %d\n", isolatedQueries)
	fmt.Printf("  rate-limit waits     %d\n", isolatedWaits)
	fmt.Printf("  wall-clock           %v\n", isolatedWall.Round(time.Millisecond))

	saved := isolatedQueries - shared.UniqueQueries()
	fmt.Printf("\nsharing the cache and overlay saved %d unique queries (%.1f%% of the isolated bill), "+
		"and overlapping round-trips cut wall-clock %.1fx\n",
		saved, 100*float64(saved)/float64(isolatedQueries), float64(isolatedWall)/float64(fleetWall))
}
