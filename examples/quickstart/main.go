// Quickstart: the public rewire SDK end to end, on nothing but the root
// package. Rewire the paper's barbell running example and watch the
// conductance improve, then compare SRW and MTO sampling through a simulated
// restrictive interface — with a context deadline bounding the whole run.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rewire"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// 1. The 22-node barbell of the paper's Fig 1: two 11-cliques and one
	// bridge. Its conductance is terrible, so simple random walks take
	// forever to mix.
	g := rewire.Barbell(11)
	phi, err := rewire.Conductance(g)
	if err != nil {
		log.Fatal(err)
	}
	mixing, err := rewire.MixingTime(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("barbell: %d nodes, %d edges, conductance %.4f, SLEM mixing time %.1f\n",
		g.NumNodes(), g.NumEdges(), phi, mixing)

	// 2. Run an MTO session over the graph; the overlay it leaves behind is
	// the rewired topology the walk actually followed.
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithStarts(0), rewire.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.Samples(ctx, 5000); err != nil {
		log.Fatal(err)
	}
	overlay, err := s.MaterializeOverlay()
	if err != nil {
		log.Fatal(err)
	}
	phiStar, err := rewire.Conductance(overlay)
	if err != nil {
		log.Fatal(err)
	}
	mixingStar, err := rewire.MixingTime(overlay)
	if err != nil {
		log.Fatal(err)
	}
	removed, added := s.Rewired()
	fmt.Printf("overlay: %d edges after %d removals + %d additions\n",
		overlay.NumEdges(), removed, added)
	fmt.Printf("overlay: conductance %.4f (%.1fx), mixing time %.1f (-%.0f%%)\n",
		phiStar, phiStar/phi, mixingStar, 100*(1-mixingStar/mixing))

	// 3. Estimate the average degree through the restrictive interface with
	// both samplers and compare unique-query cost.
	truth := g.AverageDegree()
	for _, alg := range []rewire.Algorithm{rewire.AlgSRW, rewire.AlgMTO} {
		osn := rewire.Simulate(g, rewire.Limits{})
		est, err := rewire.NewSession(osn,
			rewire.WithAlgorithm(alg), rewire.WithStarts(0), rewire.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		res, err := est.Estimate(ctx, rewire.AvgDegree(),
			rewire.EstimateOptions{Samples: 2000, BurnIn: true, GewekeThreshold: 0.2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: estimate %.3f (truth %.3f, rel err %.3f), %d unique queries, burn-in %d steps\n",
			alg, res.Estimate, truth, rewire.RelativeError(res.Estimate, truth),
			res.UniqueQueries, res.BurnInSteps)
	}
}
