// Quickstart: rewire the paper's barbell running example and watch the
// conductance and mixing time improve, then compare SRW and MTO sampling
// through a simulated restrictive interface.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rewire/internal/core"
	"rewire/internal/diag"
	"rewire/internal/estimate"
	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/spectral"
	"rewire/internal/stats"
	"rewire/internal/walk"
)

func main() {
	// 1. The 22-node barbell of the paper's Fig 1: two 11-cliques and one
	// bridge. Its conductance is terrible, so simple random walks take
	// forever to mix.
	g := gen.Barbell(11)
	phi, _, err := spectral.ExactConductance(g)
	if err != nil {
		log.Fatal(err)
	}
	mixing, err := spectral.GraphMixingTime(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("barbell: %d nodes, %d edges, conductance %.4f, SLEM mixing time %.1f\n",
		g.NumNodes(), g.NumEdges(), phi, mixing)

	// 2. Run the MTO-Sampler until it has visited every node; its overlay
	// is the rewired topology the walk actually followed.
	s := core.NewSampler(g, 0, core.DefaultConfig(), rng.New(1))
	core.WalkToCoverage(s, g.NumNodes(), 100000)
	overlay := s.Overlay().Materialize(g.NumNodes())
	phiStar, _, err := spectral.ExactConductance(overlay)
	if err != nil {
		log.Fatal(err)
	}
	mixingStar, err := spectral.GraphMixingTime(overlay)
	if err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	fmt.Printf("overlay: %d edges after %d removals + %d replacements\n",
		overlay.NumEdges(), st.Removals, st.Replacements)
	fmt.Printf("overlay: conductance %.4f (%.1fx), mixing time %.1f (-%.0f%%)\n",
		phiStar, phiStar/phi, mixingStar, 100*(1-mixingStar/mixing))

	// 3. Estimate the average degree through the restrictive interface with
	// both samplers and compare unique-query cost.
	truth := estimate.GroundTruthDegree(g)
	for _, alg := range []string{"SRW", "MTO"} {
		svc := osn.NewService(g, nil, osn.Config{})
		client := osn.NewClient(svc)
		r := rng.New(7)
		var walker walk.Walker
		var weighter walk.Weighter
		if alg == "SRW" {
			w := walk.NewSimple(client, 0, r)
			walker, weighter = w, w
		} else {
			m := core.NewSampler(client, 0, core.DefaultConfig(), r)
			walker, weighter = m, m
		}
		info := func(v graph.NodeID) (int, estimate.Attrs) {
			return client.Degree(v), estimate.Attrs{}
		}
		res := estimate.RunSession(walker, weighter, estimate.AvgDegree(), info,
			client.UniqueQueries, estimate.SessionConfig{
				BurnIn:  diag.NewGeweke(0.2, 100),
				Samples: 2000,
			})
		fmt.Printf("%s: estimate %.3f (truth %.3f, rel err %.3f), %d unique queries, burn-in %d steps\n",
			alg, res.Estimate, truth, stats.RelativeError(res.Estimate, truth),
			res.FinalCost, res.BurnInSteps)
	}
}
