// Google Plus crawl simulation: the paper's §V-B online experiment. A large
// synthetic social graph with per-user attributes sits behind a rate-limited
// API (Facebook-style 600 queries / 600 s); SRW and MTO estimate the average
// self-description length, and the report includes the simulated wall-clock
// a real crawler would have burned against the quota.
//
//	go run ./examples/gplus
package main

import (
	"fmt"
	"log"

	"rewire/internal/core"
	"rewire/internal/diag"
	"rewire/internal/estimate"
	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/stats"
	"rewire/internal/walk"
)

func main() {
	g := gen.GooglePlusLikeSmall(21)
	attrs := osn.SynthesizeAttributes(g, rng.New(22))
	truth := attrs.MeanDescLen()
	fmt.Printf("google-plus stand-in: %d users, %d connections\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("true average self-description length: %.2f chars\n\n", truth)

	for _, alg := range []string{"SRW", "MTO"} {
		svc := osn.NewService(g, attrs, osn.FacebookLimits())
		client := osn.NewClient(svc)
		r := rng.New(23)
		start := graph.NodeID(r.Intn(g.NumNodes()))
		var walker walk.Walker
		var weighter walk.Weighter
		if alg == "SRW" {
			w := walk.NewSimple(client, start, r)
			walker, weighter = w, w
		} else {
			m := core.NewSampler(client, start, core.DefaultConfig(), r)
			walker, weighter = m, m
		}
		info := func(v graph.NodeID) (int, estimate.Attrs) {
			resp, err := client.Query(v)
			if err != nil {
				log.Fatal(err)
			}
			return resp.Degree(), estimate.Attrs{
				Age:     resp.Attrs.Age,
				DescLen: resp.Attrs.DescLen,
				Posts:   resp.Attrs.Posts,
			}
		}
		res := estimate.RunSession(walker, weighter, estimate.AvgDescLen(), info,
			client.UniqueQueries, estimate.SessionConfig{
				BurnIn:  diag.NewGeweke(diag.DefaultThreshold, 200),
				Samples: 3000,
			})
		fmt.Printf("%s:\n", alg)
		fmt.Printf("  estimate:        %.2f chars (rel err %.4f)\n",
			res.Estimate, stats.RelativeError(res.Estimate, truth))
		fmt.Printf("  unique queries:  %d (cache held %d users)\n", res.FinalCost, client.CacheSize())
		fmt.Printf("  burn-in:         %d steps (Geweke converged: %v)\n", res.BurnInSteps, res.BurnInConverged)
		fmt.Printf("  simulated time:  %s under the 600/600s quota (%d window waits)\n\n",
			svc.SimulatedElapsed().Round(1e9), svc.RateLimitWaits())
	}
}
