// Prefetch: run the same SRW fleet twice against a simulated provider with
// a real 1ms round-trip per query — once cold, once with the asynchronous
// prefetch pipeline (frontier top-k hints feeding a depth-2 speculative
// worker pool). The budget is partitioned, so both runs draw byte-identical
// trajectories and pay the byte-identical unique-query bill; the only thing
// speculation buys is wall-clock, because by the time the walk demands a
// node, its round-trip has usually already happened. The same contrast is
// then shown for a single MTO sampler with pivot-candidate hints.
//
//	go run ./examples/prefetch
package main

import (
	"fmt"
	"log"
	"time"

	"rewire/internal/core"
	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

const (
	walkers  = 4
	samples  = 4000
	mtoSteps = 1500
	latency  = time.Millisecond
)

var pool = osn.PrefetchConfig{Workers: 32, Depth: 2, Queue: 8192}

func main() {
	g, err := gen.Social(gen.SocialConfig{Nodes: 2659, TargetEdges: 10012}, rng.New(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; provider round-trip %v\n\n", g.NumNodes(), g.NumEdges(), latency)

	// --- SRW fleet: cold vs frontier-prefetched ---------------------------
	coldWall, coldClient, coldSvc := runFleet(g, false)
	fmt.Printf("SRW fleet (k=%d, %d samples, partitioned budget):\n", walkers, samples)
	fmt.Printf("  no prefetch     wall %-8v unique %-5d service round-trips %d\n",
		coldWall.Round(time.Millisecond), coldClient.UniqueQueries(), coldSvc.TotalQueries())

	warmWall, warmClient, warmSvc := runFleet(g, true)
	stats := warmClient.PrefetchStats()
	fmt.Printf("  frontier top-8  wall %-8v unique %-5d service round-trips %d\n",
		warmWall.Round(time.Millisecond), warmClient.UniqueQueries(), warmSvc.TotalQueries())
	fmt.Printf("  speedup %.1fx at identical query bills (%d == %d); pool fetched %d, %d speculative responses never demanded\n\n",
		float64(coldWall)/float64(warmWall), coldClient.UniqueQueries(), warmClient.UniqueQueries(),
		stats.Fetched, stats.Unused)

	// --- MTO sampler: pivot-candidate hints -------------------------------
	mtoCold, mtoColdClient, _ := runMTO(g, false)
	fmt.Printf("MTO sampler (1 walker, %d steps, Theorem 4 pivot hints):\n", mtoSteps)
	fmt.Printf("  no prefetch     wall %-8v unique %d\n",
		mtoCold.Round(time.Millisecond), mtoColdClient.UniqueQueries())
	mtoWarm, mtoWarmClient, _ := runMTO(g, true)
	fmt.Printf("  pivot prefetch  wall %-8v unique %d\n",
		mtoWarm.Round(time.Millisecond), mtoWarmClient.UniqueQueries())
	fmt.Printf("  speedup %.1fx — the inner-loop re-picks and replacement targets coalesce onto in-flight speculation\n",
		float64(mtoCold)/float64(mtoWarm))
}

func runFleet(g *graph.Graph, prefetch bool) (time.Duration, *osn.Client, *osn.Service) {
	svc := osn.NewService(g, nil, osn.Config{RealLatency: latency})
	var client *osn.Client
	if prefetch {
		client = osn.NewPrefetchingClient(svc, pool)
	} else {
		client = osn.NewClient(svc)
	}
	starts := core.SpreadStarts(walkers, g.NumNodes(), rng.New(7))
	fleet := walk.NewFleetSimple(client, starts, rng.New(1))
	if prefetch {
		fleet = fleet.Prefetched(func() walk.Prefetcher { return walk.NewFrontier(client, 8) })
	}
	t0 := time.Now()
	fleet.SamplesPartitioned(samples)
	wall := time.Since(t0)
	client.StopPrefetch()
	return wall, client, svc
}

func runMTO(g *graph.Graph, prefetch bool) (time.Duration, *osn.Client, *osn.Service) {
	svc := osn.NewService(g, nil, osn.Config{RealLatency: latency})
	var client *osn.Client
	cfg := core.DefaultConfig()
	if prefetch {
		client = osn.NewPrefetchingClient(svc, pool)
		cfg.Prefetch = true
	} else {
		client = osn.NewClient(svc)
	}
	s := core.NewSampler(client, 0, cfg, rng.New(3))
	t0 := time.Now()
	walk.Run(s, mtoSteps)
	wall := time.Since(t0)
	client.StopPrefetch()
	return wall, client, svc
}
