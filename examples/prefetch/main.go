// Prefetch: run the same SRW fleet twice against a simulated provider with
// a real 1ms round-trip per query — once cold, once with the asynchronous
// prefetch pipeline (frontier top-k hints feeding a depth-2 speculative
// worker pool). The budget is partitioned, so both runs draw byte-identical
// trajectories and pay the byte-identical unique-query bill; the only thing
// speculation buys is wall-clock, because by the time the walk demands a
// node, its round-trip has usually already happened. The same contrast is
// then shown for an MTO session (inner-loop and Theorem 4 pivot hints) —
// all of it on the public rewire SDK.
//
//	go run ./examples/prefetch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rewire"
)

const (
	walkers = 4
	samples = 4000
	latency = time.Millisecond
)

func run(g *rewire.Graph, alg rewire.Algorithm, k, total int, prefetch bool) (time.Duration, *rewire.Provider) {
	osn := rewire.Simulate(g, rewire.Limits{RealLatency: latency})
	opts := []rewire.Option{
		rewire.WithAlgorithm(alg),
		rewire.WithFleet(k),
		rewire.WithSeed(7),
		rewire.WithPartitionedBudget(true),
	}
	if prefetch {
		opts = append(opts, rewire.WithPrefetch(rewire.PrefetchOptions{
			Strategy: rewire.PrefetchFrontier,
			TopK:     8,
			Workers:  32,
			Depth:    2,
			Queue:    8192,
		}))
	}
	s, err := rewire.NewSession(osn, opts...)
	if err != nil {
		log.Fatal(err)
	}
	begin := time.Now()
	if _, err := s.Samples(context.Background(), total); err != nil {
		log.Fatal(err)
	}
	return time.Since(begin), osn
}

func main() {
	g, err := rewire.SocialGraph(2659, 10012, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; provider round-trip %v\n\n", g.NumNodes(), g.NumEdges(), latency)

	// --- SRW fleet: cold vs frontier-prefetched ---------------------------
	coldWall, cold := run(g, rewire.AlgSRW, walkers, samples, false)
	fmt.Printf("SRW fleet (k=%d, %d samples, partitioned budget):\n", walkers, samples)
	fmt.Printf("  no prefetch     wall %-8v unique %-5d service round-trips %d\n",
		coldWall.Round(time.Millisecond), cold.UniqueQueries(), cold.TotalQueries())
	warmWall, warm := run(g, rewire.AlgSRW, walkers, samples, true)
	stats := warm.PrefetchStats()
	fmt.Printf("  frontier top-8  wall %-8v unique %-5d service round-trips %d\n",
		warmWall.Round(time.Millisecond), warm.UniqueQueries(), warm.TotalQueries())
	fmt.Printf("  speedup %.1fx at identical query bills (%d == %d); pool fetched %d, %d speculative responses never demanded\n\n",
		float64(coldWall)/float64(warmWall), cold.UniqueQueries(), warm.UniqueQueries(),
		stats.Fetched, stats.Unused)
	if cold.UniqueQueries() != warm.UniqueQueries() {
		log.Fatalf("prefetch changed the SRW query bill: %d vs %d", cold.UniqueQueries(), warm.UniqueQueries())
	}

	// --- MTO session: inner-loop + pivot-candidate hints ------------------
	mtoCold, mtoColdP := run(g, rewire.AlgMTO, 1, 1500, false)
	fmt.Printf("MTO session (1 walker, 1500 samples, Theorem 4 pivot hints):\n")
	fmt.Printf("  no prefetch     wall %-8v unique %d\n",
		mtoCold.Round(time.Millisecond), mtoColdP.UniqueQueries())
	mtoWarm, mtoWarmP := run(g, rewire.AlgMTO, 1, 1500, true)
	fmt.Printf("  pivot prefetch  wall %-8v unique %d\n",
		mtoWarm.Round(time.Millisecond), mtoWarmP.UniqueQueries())
	fmt.Printf("  speedup %.1fx — the inner-loop re-picks and replacement targets coalesce onto in-flight speculation\n",
		float64(mtoCold)/float64(mtoWarm))
}
