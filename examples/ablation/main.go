// Ablation: the paper's Fig 10 question — how much of MTO's gain comes from
// edge removal vs edge replacement? On latent-space graphs, each variant is
// walked to full coverage, its overlay extracted, and the theoretical (SLEM)
// mixing time compared against the original graph and the Theorem 6 bound.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"rewire/internal/core"
	"rewire/internal/gen"
	"rewire/internal/latent"
	"rewire/internal/rng"
	"rewire/internal/spectral"
)

func main() {
	gain := latent.PaperGainBound()
	fmt.Printf("Theorem 6 conductance-gain bound: %.4f (paper eq. 13: 1.052)\n\n", gain)
	fmt.Printf("%6s %8s %10s %10s %10s %10s %10s\n",
		"nodes", "giant", "original", "theory", "MTO_RM", "MTO_RP", "MTO_Both")

	master := rng.New(2013)
	for _, n := range []int{50, 60, 70, 80} {
		const trials = 5
		var giant, orig, rm, rp, both float64
		valid := 0
		for trial := 0; trial < trials; trial++ {
			r := master.Split()
			g0, _, err := gen.LatentSpace(gen.PaperLatentConfig(n), r)
			if err != nil {
				log.Fatal(err)
			}
			g, _ := g0.LargestComponent()
			if g.NumNodes() < 4 || g.NumEdges() < 4 {
				continue
			}
			t0, err := spectral.GraphMixingTime(g)
			if err != nil {
				continue
			}
			mix := func(cfg core.Config) float64 {
				s := core.NewSampler(g, 0, cfg, r.Split())
				core.WalkToCoverage(s, g.NumNodes(), 100000)
				t, err := spectral.GraphMixingTime(s.Overlay().Materialize(g.NumNodes()))
				if err != nil {
					return 0
				}
				return t
			}
			mRM := mix(core.RemovalOnlyConfig())
			mRP := mix(core.ReplacementOnlyConfig())
			mBoth := mix(core.DefaultConfig())
			if mRM == 0 || mRP == 0 || mBoth == 0 {
				continue
			}
			giant += float64(g.NumNodes())
			orig += t0
			rm += mRM
			rp += mRP
			both += mBoth
			valid++
		}
		if valid == 0 {
			continue
		}
		f := float64(valid)
		fmt.Printf("%6d %8.1f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			n, giant/f, orig/f, orig/f/(gain*gain), rm/f, rp/f, both/f)
	}
	fmt.Println("\n(mixing time = 1/log(1/SLEM); theory = original shrunk by the")
	fmt.Println(" Theorem 6 bound squared, since mixing scales as 1/Φ² by eq. 6)")
}
