module rewire

go 1.24
