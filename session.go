package rewire

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"rewire/internal/core"
	"rewire/internal/diag"
	"rewire/internal/estimate"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// Sample is one node drawn by a session walker, tagged with its provenance:
// Walker is the index of the fleet member that drew it, and Weight is a
// quantity proportional to the member's stationary probability at Node — the
// importance-sampling denominator that unbiases aggregates.
type Sample = walk.Sample

// Session is a long-lived, resumable sampling run over a Source: k walkers
// (WithFleet) advancing the configured chain (WithAlgorithm), sharing the
// source's cache and query budget and — for MTO — one on-the-fly rewired
// overlay. Construct it with NewSession, then draw samples with Stream,
// Nodes, Samples, or Estimate.
//
// Runs are serialized: one Stream/Estimate at a time (walkers are
// single-goroutine state; the fleet parallelism lives inside a run). The
// session itself survives any number of runs — cancel a stream, come back
// with a fresh context, and the walkers resume from their positions with the
// cache, ledger, and overlay intact. That is what makes deadline-bounded,
// interruptible crawls expressible: cancellation loses at most the samples
// not yet yielded, never the paid-for topology.
type Session struct {
	src      Source
	provider *Provider // nil for graph backends
	bound    *walk.Bound
	fleet    *walk.Fleet
	seq      *walk.Parallel // same members, round-robin, for Estimate
	overlay  *core.Overlay  // nil unless AlgMTO
	cfg      config

	mu      sync.Mutex
	running bool
	err     error // why the last run aborted (nil for clean completion)

	// pauseReq marks the active run as pause-requested: walkers stop at the
	// next step boundary (Fleet.Quiesce) and the run reports ErrPaused rather
	// than clean completion, so callers can tell "budget drained" from
	// "pause honored". Reset by the next begin.
	pauseReq atomic.Bool
}

// NewSession builds a session over src with the given options. Construction
// is cheap and query-free: validation that needs topology (e.g. whether a
// start node is connected) happens on the first run, under that run's
// context.
func NewSession(src Source, opts ...Option) (*Session, error) {
	cfg := defaults()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if cfg.src != nil {
		if src != nil {
			return nil, fmt.Errorf("rewire: WithSource conflicts with NewSession's src argument — pass one or the other")
		}
		src = cfg.src
	}
	return newSession(src, cfg)
}

// newSession constructs a session from a folded config — the shared back
// half of NewSession and Resume.
func newSession(src Source, cfg config) (*Session, error) {
	if src == nil {
		return nil, fmt.Errorf("rewire: nil Source")
	}
	k := cfg.fleet
	switch {
	case len(cfg.starts) > 0 && k == 0:
		k = len(cfg.starts)
	case len(cfg.starts) > 0 && k != len(cfg.starts):
		return nil, fmt.Errorf("rewire: WithFleet(%d) disagrees with %d starts", k, len(cfg.starts))
	case k == 0:
		k = 1
	}
	n := src.NumUsers()
	if n == 0 {
		// A backend without the UserCounter capability (or an empty source)
		// publishes no ID space: starts cannot be spread or range-validated,
		// and Random Jump has nowhere to jump. Explicit starts keep every
		// other chain usable — a bad start surfaces as ErrNoSuchUser on the
		// first-run connectivity check instead.
		if len(cfg.starts) == 0 {
			return nil, fmt.Errorf("rewire: source publishes no user count — pin start nodes with WithStarts")
		}
		if cfg.alg == AlgRJ {
			return nil, fmt.Errorf("rewire: AlgRJ needs a published user count for its jump ID space")
		}
	}
	r := rng.New(cfg.seed)
	starts := cfg.starts
	if len(starts) == 0 {
		starts = core.SpreadStarts(k, n, r)
		if len(starts) < k {
			return nil, fmt.Errorf("rewire: fleet of %d exceeds %d users", k, n)
		}
	}
	for _, v := range starts {
		if v < 0 || (n > 0 && int(v) >= n) {
			return nil, fmt.Errorf("%w: start %d", ErrNoSuchUser, v)
		}
	}

	s := &Session{src: src, cfg: cfg}
	s.provider, _ = src.(*Provider)
	// Bind walkers to the provider's client (not the Provider wrapper) so
	// the capability probes — prefetch hints, free cached-degree reads for
	// Theorem 5 — find the real implementations.
	var inner walk.Source = src
	if s.provider == nil && cfg.cacheDir != "" {
		return nil, fmt.Errorf("rewire: WithDurableCache needs a Provider source (a GraphSource has no billed cache to persist)")
	}
	if s.provider != nil {
		inner = s.provider.client
		if cfg.shards > 0 {
			// The client is still idle (sessions are constructed before any
			// run), so re-bucketing its store is cheap and race-free.
			s.provider.client.Reshard(cfg.shards)
		}
		if cfg.cacheDir != "" {
			// After the reshard: seeding replays straight into the final
			// bucket layout. Reshard preserves entries either way, but the
			// order keeps the one-time replay from being moved twice.
			if err := s.provider.AttachDurableCache(cfg.cacheDir); err != nil {
				return nil, err
			}
		}
	}
	s.bound = walk.NewBound(inner)

	members := make([]walk.Walker, k)
	switch cfg.alg {
	case AlgMTO:
		s.overlay = core.NewOverlayShards(s.bound, cfg.shards)
		for i, start := range starts {
			members[i] = core.NewSamplerOn(s.overlay, start, cfg.core, r.Split())
		}
	case AlgSRW:
		for i, start := range starts {
			members[i] = walk.NewSimple(s.bound, start, r.Split())
		}
	case AlgMHRW:
		for i, start := range starts {
			members[i] = walk.NewMetropolisHastings(s.bound, start, r.Split())
		}
	case AlgRJ:
		for i, start := range starts {
			members[i] = walk.NewRandomJump(s.bound, start, n, cfg.pJump, r.Split())
		}
	}
	if pf := cfg.prefetch; pf != nil {
		// Wrap every member with a per-member hinting strategy (strategies
		// are single-goroutine state, one instance each).
		for i, m := range members {
			switch pf.Strategy {
			case PrefetchFrontier:
				members[i] = walk.WithPrefetch(m, walk.NewFrontier(s.bound, pf.TopK))
			default:
				members[i] = walk.WithPrefetch(m, walk.NewNextHop(s.bound))
			}
		}
	}
	s.fleet = walk.NewFleet(members...)
	s.seq = walk.NewParallel(members...)
	return s, nil
}

// Walkers returns the fleet size.
func (s *Session) Walkers() int { return len(s.fleet.Members()) }

// Positions returns each walker's current node — checkpoint state a caller
// can persist alongside the provider's cache to resume a crawl elsewhere.
// Walker positions are single-goroutine state, so Positions is only
// meaningful between runs: during an active Stream/Estimate it returns nil
// rather than racing the walker goroutines.
func (s *Session) Positions() []NodeID {
	s.mu.Lock()
	active := s.running
	s.mu.Unlock()
	if active {
		return nil
	}
	members := s.fleet.Members()
	out := make([]NodeID, len(members))
	for i, m := range members {
		out[i] = m.Current()
	}
	return out
}

// UniqueQueries returns the session backend's unique-query bill (0 for free
// graph backends).
func (s *Session) UniqueQueries() int64 {
	if s.provider == nil {
		return 0
	}
	return s.provider.UniqueQueries()
}

// Rewired returns the overlay's net edge delta (removals, additions) for MTO
// sessions; zeros otherwise.
func (s *Session) Rewired() (removed, added int) {
	if s.overlay == nil {
		return 0, 0
	}
	return s.overlay.RemovedCount(), s.overlay.AddedCount()
}

// MaterializeOverlay builds the current rewired topology as a concrete
// graph. It reads every node's base neighborhood, so over a Provider it
// spends budget like a full crawl; over a GraphSource it is free. Non-MTO
// sessions return ErrNoOverlay.
func (s *Session) MaterializeOverlay() (*Graph, error) {
	if s.overlay == nil {
		return nil, ErrNoOverlay
	}
	return s.overlay.Materialize(s.src.NumUsers()), nil
}

// Err returns why the last run stopped early (context cancellation, deadline,
// ErrBudgetExhausted, ...), or nil after a clean completion. It is the
// error-reporting side of the plain-Sample iterators (Nodes, and Stream
// bodies that break early).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// begin claims the session for one run and binds ctx to its query path.
func (s *Session) begin(ctx context.Context) error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return ErrActiveStream
	}
	s.running = true
	s.err = nil
	s.mu.Unlock()
	s.pauseReq.Store(false)
	if err := ctx.Err(); err != nil {
		// A dead-on-arrival context is still a run that aborted: record the
		// reason so the Nodes()+Err() pattern sees it.
		s.finish(err)
		return err
	}
	s.bound.Bind(ctx)
	if pf := s.cfg.prefetch; pf != nil && s.provider != nil {
		s.provider.client.StartPrefetchContext(ctx, osn.PrefetchConfig{
			Workers: pf.Workers,
			Queue:   pf.Queue,
			Depth:   pf.Depth,
			Budget:  pf.Budget,
		})
	}
	// Connectivity check on each walker's current node: its neighbor list is
	// the first thing the next step demands anyway (and is cached after), so
	// this costs no extra unique queries. Over a provider the cold misses
	// are batched first so their round-trips overlap instead of paying k
	// RealLatencies end to end.
	members := s.fleet.Members()
	if s.provider != nil && len(members) > 1 {
		ids := make([]NodeID, len(members))
		for i, m := range members {
			ids[i] = m.Current()
		}
		if _, err := s.provider.client.QueryBatchContext(ctx, ids); err != nil {
			s.finish(err)
			return err
		}
	}
	for _, m := range members {
		nbrs, err := s.bound.NeighborsContext(ctx, m.Current())
		if err != nil {
			s.finish(err)
			return err
		}
		if len(nbrs) == 0 {
			err := fmt.Errorf("%w: node %d", ErrDisconnected, m.Current())
			s.finish(err)
			return err
		}
	}
	return nil
}

// finish releases the run claim and records why the run ended.
func (s *Session) finish(err error) {
	if s.cfg.prefetch != nil && s.provider != nil {
		s.provider.client.StopPrefetch()
	}
	s.mu.Lock()
	s.err = err
	s.running = false
	s.mu.Unlock()
}

// Pause asks the active run to stop at the next step boundary: every walker
// finishes and delivers its in-flight step, then retires, and the run ends
// with ErrPaused. Unlike cancelling the run's context — which can abort a
// walker mid-step, after its RNG stream advanced but before the sample was
// emitted — a pause leaves every chain's state exactly consistent with the
// samples delivered, which is what makes a Checkpoint taken afterwards
// Resume byte-identically: the resumed trajectory continues precisely where
// an uninterrupted run would have gone. Safe from any goroutine; a no-op
// when no run is active (the next run resets the request).
func (s *Session) Pause() {
	s.pauseReq.Store(true)
	s.fleet.Quiesce()
}

// abortErr explains an early stop: the query path's sticky failure when
// there is one (it is the more specific: budget exhaustion, a provider
// error), else the context's, else — for a run that stopped only because
// Pause asked it to — ErrPaused.
func (s *Session) abortErr(ctx context.Context) error {
	if err := s.bound.Err(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.pauseReq.Load() {
		return ErrPaused
	}
	return nil
}

// Stream draws up to total samples as a single-use iterator of (Sample,
// error) pairs: range over it to walk, break to stop. Samples arrive with a
// nil error; when the run aborts early — ctx cancelled, deadline expired,
// budget exhausted — the final pair carries the zero Sample and the reason,
// and iteration ends. A clean drain of the budgeted total yields no error
// pair.
//
// Fleet members race for the shared budget (WithPartitionedBudget splits it
// instead); merged arrival order is nondeterministic, but each member's own
// subsequence is a faithful trajectory. Whatever ends the loop — completion,
// break, cancellation — every walker goroutine has exited by the time the
// range statement returns, and the session is immediately reusable.
func (s *Session) Stream(ctx context.Context, total int) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		if err := s.begin(ctx); err != nil {
			yield(Sample{}, err)
			return
		}
		var runErr error
		defer func() { s.finish(runErr) }()
		var stream <-chan Sample
		var stop func()
		if s.cfg.partitioned {
			stream, stop = s.fleet.StreamPartitionedContext(ctx, total)
		} else {
			stream, stop = s.fleet.StreamContext(ctx, total)
		}
		defer func() {
			stop()
			for range stream { // wait for every walker goroutine to retire
			}
		}()
		for smp := range stream {
			if !yield(smp, nil) {
				return
			}
		}
		if runErr = s.abortErr(ctx); runErr != nil {
			yield(Sample{}, runErr)
		}
	}
}

// Nodes is Stream reduced to the visited nodes: a plain iter.Seq for callers
// that only need positions. Check Err after the loop to distinguish a
// drained budget from an aborted run.
func (s *Session) Nodes(ctx context.Context, total int) iter.Seq[NodeID] {
	return func(yield func(NodeID) bool) {
		for smp, err := range s.Stream(ctx, total) {
			if err != nil {
				return
			}
			if !yield(smp.Node) {
				return
			}
		}
	}
}

// Samples drains Stream(ctx, total) into a slice. On an aborted run it
// returns the samples drawn so far alongside the abort reason.
func (s *Session) Samples(ctx context.Context, total int) ([]Sample, error) {
	out := make([]Sample, 0, total)
	for smp, err := range s.Stream(ctx, total) {
		if err != nil {
			return out, err
		}
		out = append(out, smp)
	}
	return out, nil
}

// Attrs carries the published per-user attributes an Aggregate may consume
// (zero-valued on purely topological backends).
type Attrs = estimate.Attrs

// Aggregate is a per-user quantity being averaged over the network, e.g.
// degree or self-description length.
type Aggregate = estimate.Aggregate

// AvgDegree is the paper's default aggregate: the network's average degree.
func AvgDegree() Aggregate { return estimate.AvgDegree() }

// EstimateOptions tunes Session.Estimate.
type EstimateOptions struct {
	// Samples is the number of post-burn-in samples to draw (default 1000).
	Samples int
	// BurnIn enables Geweke-monitored burn-in: the walk runs until the
	// degree trace converges (or MaxBurnInSteps) before sampling starts.
	BurnIn bool
	// GewekeThreshold overrides the convergence threshold (default the
	// diagnostic's standard 0.1).
	GewekeThreshold float64
	// MaxBurnInSteps caps the burn-in phase (default 100000).
	MaxBurnInSteps int
	// Thinning is walk steps per retained sample (default 1, as in the
	// paper).
	Thinning int
}

// Result reports one Estimate run.
type Result struct {
	// Estimate is the importance-weighted estimate of the aggregate.
	Estimate float64
	// Samples is the number of samples actually recorded.
	Samples int
	// BurnInSteps is the number of steps spent before sampling.
	BurnInSteps int
	// Converged reports whether the burn-in monitor fired (false when capped
	// or burn-in was disabled).
	Converged bool
	// UniqueQueries is the backend's ledger after the run (0 for free graph
	// backends).
	UniqueQueries int64
}

// Estimate runs the paper's estimation protocol under ctx: optional
// Geweke-monitored burn-in, then importance-weighted sampling of agg, the
// walkers advancing round-robin so every fleet member contributes evenly.
// Cancellation, deadline expiry, and budget exhaustion end the run early
// with the partial result and the reason.
func (s *Session) Estimate(ctx context.Context, agg Aggregate, opt EstimateOptions) (Result, error) {
	if opt.Samples <= 0 {
		opt.Samples = 1000
	}
	if err := s.begin(ctx); err != nil {
		return Result{}, err
	}
	var runErr error
	defer func() { s.finish(runErr) }()

	var monitor diag.Monitor
	if opt.BurnIn {
		threshold := opt.GewekeThreshold
		if threshold <= 0 {
			threshold = diag.DefaultThreshold
		}
		monitor = diag.NewGeweke(threshold, 200)
	}
	var cost estimate.CostFunc
	if s.provider != nil {
		cost = s.provider.UniqueQueries
	}
	info := func(v NodeID) (int, Attrs) {
		deg := s.bound.Degree(v)
		var attrs Attrs
		if s.provider != nil {
			if ua, ok := s.provider.client.CachedAttrs(v); ok {
				attrs = Attrs(ua)
			}
		}
		return deg, attrs
	}
	res := estimate.RunSession(s.seq, s.seq, agg, info, cost, estimate.SessionConfig{
		BurnIn:         monitor,
		MaxBurnInSteps: opt.MaxBurnInSteps,
		Samples:        opt.Samples,
		Thinning:       opt.Thinning,
		Stop: func() bool {
			return ctx.Err() != nil || s.bound.Err() != nil || s.pauseReq.Load()
		},
	})
	out := Result{
		Estimate:      res.Estimate,
		Samples:       res.Samples,
		BurnInSteps:   res.BurnInSteps,
		Converged:     res.BurnInConverged,
		UniqueQueries: res.FinalCost,
	}
	if s.provider == nil {
		out.UniqueQueries = 0 // FinalCost fell back to step counting
	}
	runErr = s.abortErr(ctx)
	return out, runErr
}
