package rewire_test

import (
	"context"
	"reflect"
	"testing"

	"rewire"
)

// TestNeighborAliasingProviderCopies proves the satellite contract: slices a
// Provider hands out at the public API boundary are defensive copies, so a
// caller scribbling over them cannot corrupt the cached state that feeds
// billing and the Theorem 5 criterion.
func TestNeighborAliasingProviderCopies(t *testing.T) {
	ctx := context.Background()
	g, err := rewire.NewGraph(4, [][2]rewire.NodeID{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	p := rewire.Simulate(g, rewire.Limits{})

	want := append([]rewire.NodeID(nil), p.Neighbors(0)...)
	if len(want) != 2 {
		t.Fatalf("unexpected degree: %v", want)
	}

	// Vandalize every public access path.
	n1 := p.Neighbors(0)
	n1[0] = 99
	n2, err := p.NeighborsContext(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	n2[1] = -7
	n3, err := p.Query(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range n3 {
		n3[i] = 0
	}
	batch, err := p.QueryBatch(ctx, []rewire.NodeID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	batch[0][0] = 42
	batch[1][0] = 42

	// The cache must be intact: same list, same bill (2 distinct demands,
	// nodes 0 and 2; every repeat access was a cache hit).
	if got := p.Neighbors(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("cached neighbors corrupted: %v, want %v", got, want)
	}
	if q := p.UniqueQueries(); q != 2 {
		t.Fatalf("UniqueQueries = %d, want 2 (mutation must not force refetches)", q)
	}

	// And a walk over the same provider still sees the true topology.
	s, err := rewire.NewSession(p, rewire.WithSeed(3), rewire.WithAlgorithm(rewire.AlgSRW))
	if err != nil {
		t.Fatal(err)
	}
	for v := range s.Nodes(ctx, 50) {
		if v < 0 || int(v) >= g.NumNodes() {
			t.Fatalf("walk left the graph: %d", v)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestNeighborAliasingGraphViewAppendSafe pins the read-only-view contract of
// the zero-copy path: Graph.Neighbors views have clipped capacity, so an
// append cannot overwrite the adjacent CSR row.
func TestNeighborAliasingGraphViewAppendSafe(t *testing.T) {
	g, err := rewire.NewGraph(4, [][2]rewire.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	nbrs := g.Neighbors(1)
	if cap(nbrs) != len(nbrs) {
		t.Fatalf("view capacity %d exceeds length %d", cap(nbrs), len(nbrs))
	}
	_ = append(nbrs, 99)
	if !reflect.DeepEqual(g.Neighbors(2), []rewire.NodeID{1, 3}) {
		t.Fatal("append through a view corrupted the next row")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreShardsInvariance is the refactor's correctness bar: for a fixed
// seed, trajectories and query bills are byte-identical at any shard count —
// sharding is a contention optimization, never a behavior change.
func TestStoreShardsInvariance(t *testing.T) {
	ctx := context.Background()
	// Two deterministic workload shapes: a partitioned SRW fleet (each
	// member's trajectory depends only on its own RNG stream — the shape the
	// CI bench-gate relies on) exercising the sharded client cache, and a
	// single-walker MTO run exercising the sharded overlay. Shared-overlay
	// fleets are excluded on purpose: their guarded rewiring ops resolve
	// races by arrival order, which no storage layout can make
	// schedule-free.
	run := func(shards int, mto bool) ([]rewire.Sample, int64) {
		g, err := rewire.SocialGraph(600, 2400, 11)
		if err != nil {
			t.Fatal(err)
		}
		p := rewire.Simulate(g, rewire.Limits{})
		opts := []rewire.Option{rewire.WithSeed(7)}
		if mto {
			opts = append(opts, rewire.WithAlgorithm(rewire.AlgMTO))
		} else {
			opts = append(opts,
				rewire.WithAlgorithm(rewire.AlgSRW),
				rewire.WithFleet(4),
				rewire.WithPartitionedBudget(true),
			)
		}
		if shards > 0 {
			opts = append(opts, rewire.WithStoreShards(shards))
		}
		s, err := rewire.NewSession(p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := s.Samples(ctx, 400)
		if err != nil {
			t.Fatal(err)
		}
		// Arrival order in the merged stream is not deterministic: group by
		// walker for a canonical transcript.
		byWalker := make([][]rewire.Sample, s.Walkers())
		for _, smp := range samples {
			byWalker[smp.Walker] = append(byWalker[smp.Walker], smp)
		}
		var canon []rewire.Sample
		for _, part := range byWalker {
			canon = append(canon, part...)
		}
		if mto {
			removed, added := s.Rewired()
			if removed+added == 0 {
				t.Fatal("MTO session rewired nothing — workload too small to be meaningful")
			}
		}
		return canon, p.UniqueQueries()
	}

	for _, mto := range []bool{false, true} {
		refSamples, refQueries := run(1, mto) // legacy single-lock layout
		// 0 exercises the adaptive GOMAXPROCS-sized default shard count,
		// which must be as invisible to results as any explicit count.
		for _, shards := range []int{0, 2, 64, 256} {
			samples, queries := run(shards, mto)
			if queries != refQueries {
				t.Fatalf("mto=%v shards=%d: UniqueQueries = %d, want %d", mto, shards, queries, refQueries)
			}
			if !reflect.DeepEqual(samples, refSamples) {
				t.Fatalf("mto=%v shards=%d: trajectories diverged from single-lock run", mto, shards)
			}
		}
	}
}

// TestWithStoreShardsValidation pins option validation.
func TestWithStoreShardsValidation(t *testing.T) {
	g, err := rewire.NewGraph(3, [][2]rewire.NodeID{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithStoreShards(0)); err == nil {
		t.Fatal("WithStoreShards(0) accepted")
	}
	if _, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithStoreShards(8)); err != nil {
		t.Fatal(err)
	}
}
