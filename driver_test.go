package rewire_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"net/url"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rewire"
	"rewire/internal/httpsrc"
)

// fakeBackend is a scriptable Backend for middleware tests.
type fakeBackend struct {
	mu      sync.Mutex
	graph   map[rewire.NodeID][]rewire.NodeID
	users   int
	fails   int // fail this many Fetches before succeeding
	failErr error
	calls   atomic.Int64
	hints   atomic.Int64
	closed  atomic.Bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		graph: map[rewire.NodeID][]rewire.NodeID{
			0: {1, 2}, 1: {0, 2}, 2: {0, 1, 3}, 3: {2},
		},
		users:   4,
		failErr: errors.New("transient blip"),
	}
}

func (f *fakeBackend) Fetch(ctx context.Context, ids []rewire.NodeID) ([][]rewire.NodeID, error) {
	f.calls.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.fails > 0 {
		f.fails--
		f.mu.Unlock()
		return nil, f.failErr
	}
	f.mu.Unlock()
	out := make([][]rewire.NodeID, len(ids))
	for i, v := range ids {
		nbrs, ok := f.graph[v]
		if !ok {
			return nil, fmt.Errorf("%w: id %d", rewire.ErrNoSuchUser, v)
		}
		out[i] = slices.Clone(nbrs)
	}
	return out, nil
}

func (f *fakeBackend) NumUsers() int            { return f.users }
func (f *fakeBackend) Hint(ids []rewire.NodeID) { f.hints.Add(int64(len(ids))) }
func (f *fakeBackend) Close() error             { f.closed.Store(true); return nil }

func TestOpenUnknownScheme(t *testing.T) {
	ctx := context.Background()
	if _, err := rewire.Open(ctx, "bogus:thing"); !errors.Is(err, rewire.ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
	if _, err := rewire.Open(ctx, "no-scheme-at-all"); !errors.Is(err, rewire.ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
	for _, s := range []string{"mem", "sim", "http", "https", "snapshot"} {
		if !slices.Contains(rewire.Drivers(), s) {
			t.Fatalf("built-in scheme %q not registered (have %v)", s, rewire.Drivers())
		}
	}
}

func TestOpenBadSpecs(t *testing.T) {
	ctx := context.Background()
	for _, u := range []string{
		"mem:unknowngen",
		"mem:barbell?n=1",
		"mem:social?nodes=x",
		"mem:preset",             // missing name
		"sim:barbell?limits=ebz", // unknown preset
		"sim:barbell?window=ns5", // bad duration
		"snapshot:",              // empty path
		"snapshot:/definitely/not/a/file.csr",
	} {
		if _, err := rewire.Open(ctx, u); err == nil {
			t.Errorf("Open(%q) succeeded, want error", u)
		}
	}
}

func TestRegisterThirdPartyDriver(t *testing.T) {
	fb := newFakeBackend()
	rewire.Register("faketest", rewire.DriverFunc(func(ctx context.Context, u *url.URL) (rewire.Backend, error) {
		if u.Opaque != "net" {
			return nil, fmt.Errorf("bad opaque %q", u.Opaque)
		}
		return fb, nil
	}))
	p, err := rewire.Open(context.Background(), "faketest:net")
	if err != nil {
		t.Fatal(err)
	}
	if n := p.NumUsers(); n != 4 {
		t.Fatalf("NumUsers = %d, want 4", n)
	}
	nbrs, err := p.NeighborsContext(context.Background(), 2)
	if err != nil || !slices.Equal(nbrs, []rewire.NodeID{0, 1, 3}) {
		t.Fatalf("NeighborsContext(2) = %v, %v", nbrs, err)
	}
	if err := p.Close(); err != nil || !fb.closed.Load() {
		t.Fatalf("Close did not reach the backend (err %v, closed %v)", err, fb.closed.Load())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	rewire.Register("faketest", rewire.DriverFunc(func(context.Context, *url.URL) (rewire.Backend, error) {
		return nil, nil
	}))
}

func TestWithRetryRecoversTransientFailures(t *testing.T) {
	fb := newFakeBackend()
	fb.fails = 2
	b := rewire.WithRetry(fb, rewire.RetryOptions{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond})
	lists, err := b.Fetch(context.Background(), []rewire.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(lists[0], []rewire.NodeID{1, 2}) {
		t.Fatalf("lists[0] = %v", lists[0])
	}
	if c := fb.calls.Load(); c != 3 {
		t.Fatalf("inner saw %d calls, want 3", c)
	}
}

func TestWithRetryDoesNotRetryNoSuchUser(t *testing.T) {
	fb := newFakeBackend()
	b := rewire.WithRetry(fb, rewire.RetryOptions{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if _, err := b.Fetch(context.Background(), []rewire.NodeID{99}); !errors.Is(err, rewire.ErrNoSuchUser) {
		t.Fatalf("err = %v, want ErrNoSuchUser", err)
	}
	if c := fb.calls.Load(); c != 1 {
		t.Fatalf("inner saw %d calls, want 1", c)
	}
}

func TestWithRetryExhaustsAttempts(t *testing.T) {
	fb := newFakeBackend()
	fb.fails = 100
	b := rewire.WithRetry(fb, rewire.RetryOptions{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	if _, err := b.Fetch(context.Background(), []rewire.NodeID{0}); !errors.Is(err, fb.failErr) {
		t.Fatalf("err = %v, want wrapped inner error", err)
	}
	if c := fb.calls.Load(); c != 3 {
		t.Fatalf("inner saw %d calls, want 3", c)
	}
}

func TestWithRateLimitThrottlesAndHonorsContext(t *testing.T) {
	fb := newFakeBackend()
	b := rewire.WithRateLimit(fb, 50, 1) // 50/s, burst 1 → ~20ms spacing
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := b.Fetch(ctx, []rewire.NodeID{0}); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("3 fetches at 50/s burst 1 took %v, want >= ~40ms", el)
	}
	// A blocked fetch returns promptly when cancelled.
	cctx, cancel := context.WithCancel(ctx)
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	if _, err := b.Fetch(cctx, []rewire.NodeID{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWithMetricsCounts(t *testing.T) {
	fb := newFakeBackend()
	var m rewire.BackendMetrics
	b := rewire.WithMetrics(fb, &m)
	b.Fetch(context.Background(), []rewire.NodeID{0, 1})
	b.Fetch(context.Background(), []rewire.NodeID{99}) // fails
	snap := m.Snapshot()
	if snap.Fetches != 2 || snap.IDs != 3 || snap.Failures != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestMiddlewareCompositionKeepsCapabilities proves capability probing
// follows the Unwrap chain through stacked middleware: a Provider over
// metrics(retry(ratelimit(backend))) still sees NumUsers, forwards hints,
// and closes the inner backend.
func TestMiddlewareCompositionKeepsCapabilities(t *testing.T) {
	fb := newFakeBackend()
	var m rewire.BackendMetrics
	b := rewire.WithMetrics(rewire.WithRetry(rewire.WithRateLimit(fb, 10_000, 100), rewire.RetryOptions{MaxAttempts: 2, BaseDelay: time.Millisecond}), &m)
	p := rewire.BackendSource(b)
	defer p.Close()

	if n := p.NumUsers(); n != 4 {
		t.Fatalf("NumUsers through 3 wrappers = %d, want 4", n)
	}
	s, err := rewire.NewSession(p,
		rewire.WithAlgorithm(rewire.AlgSRW),
		rewire.WithSeed(2),
		rewire.WithPrefetch(rewire.PrefetchOptions{Strategy: rewire.PrefetchNextHop}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Samples(context.Background(), 30); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot().Fetches == 0 {
		t.Fatal("metrics wrapper saw no fetches")
	}
	if fb.hints.Load() == 0 {
		t.Fatal("accepted prefetch hints were not forwarded to the backend's Hinter")
	}
	if err := p.Close(); err != nil || !fb.closed.Load() {
		t.Fatalf("Close did not traverse the middleware chain (err %v, closed %v)", err, fb.closed.Load())
	}
}

// TestCounterlessBackendNeedsStarts pins the documented workaround for
// backends without the UserCounter capability: WithStarts makes them
// sampleable (range validation deferred to the backend), no starts is a
// construction error, and Random Jump — which needs the ID space — is
// refused.
func TestCounterlessBackendNeedsStarts(t *testing.T) {
	fetchOnly := fetchOnlyBackend{newFakeBackend()}
	p := rewire.BackendSource(fetchOnly)
	if n := p.NumUsers(); n != 0 {
		t.Fatalf("NumUsers over a Fetch-only backend = %d, want 0", n)
	}
	if _, err := rewire.NewSession(p, rewire.WithAlgorithm(rewire.AlgSRW)); err == nil {
		t.Fatal("NewSession without starts over a counter-less backend succeeded")
	}
	if _, err := rewire.NewSession(p, rewire.WithAlgorithm(rewire.AlgRJ), rewire.WithStarts(0)); err == nil {
		t.Fatal("AlgRJ over a counter-less backend succeeded")
	}
	s, err := rewire.NewSession(p, rewire.WithAlgorithm(rewire.AlgSRW), rewire.WithStarts(0), rewire.WithSeed(1))
	if err != nil {
		t.Fatalf("NewSession with pinned starts: %v", err)
	}
	samples, err := s.Samples(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 20 {
		t.Fatalf("drew %d samples, want 20", len(samples))
	}
}

// fetchOnlyBackend exposes only the Fetch method of its inner backend.
type fetchOnlyBackend struct{ inner *fakeBackend }

func (f fetchOnlyBackend) Fetch(ctx context.Context, ids []rewire.NodeID) ([][]rewire.NodeID, error) {
	return f.inner.Fetch(ctx, ids)
}

// TestOpenSimMatchesSimulate pins the compatibility claim: Open("sim:...")
// and Simulate over the same graph and limits produce byte-identical
// trajectories, bills, and simulation telemetry.
func TestOpenSimMatchesSimulate(t *testing.T) {
	ctx := context.Background()
	g, err := rewire.SocialGraph(200, 800, 9)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *rewire.Provider) ([]rewire.Sample, int64, int64) {
		s, err := rewire.NewSession(p, rewire.WithAlgorithm(rewire.AlgMTO), rewire.WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		samples, err := s.Samples(ctx, 150)
		if err != nil {
			t.Fatal(err)
		}
		return samples, p.UniqueQueries(), p.TotalQueries()
	}
	legacy, legacyBill, legacyTotal := run(rewire.Simulate(g, rewire.FacebookLimits()))
	opened, err := rewire.Open(ctx, "sim:social?nodes=200&edges=800&seed=9&limits=facebook")
	if err != nil {
		t.Fatal(err)
	}
	driver, driverBill, driverTotal := run(opened)
	if !slices.Equal(legacy, driver) {
		t.Fatal("sim: driver trajectory diverged from Simulate")
	}
	if legacyBill != driverBill || legacyTotal != driverTotal {
		t.Fatalf("bills diverged: Simulate %d/%d, sim: %d/%d", legacyBill, legacyTotal, driverBill, driverTotal)
	}
	if opened.SimulatedElapsed() <= 0 {
		t.Fatal("sim: driver lost the simulated clock")
	}
}

// TestOpenHTTPBatchwaitParam pins the driver-level coalescing opt-in: a
// batchwait URL parameter wraps the HTTP backend in WithBatching (probeable
// as BatchStatser through the capability chain) and a malformed or negative
// value fails Open.
func TestOpenHTTPBatchwaitParam(t *testing.T) {
	ctx := context.Background()
	g, err := rewire.SocialGraph(60, 240, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpsrc.Handler(g, httpsrc.ServerOptions{}))
	defer srv.Close()

	be, err := rewire.OpenBackend(ctx, srv.URL+"?timeout=5s&batch=8&batchwait=1ms")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if c, ok := rewire.BackendAs[interface{ Close() error }](be); ok {
			c.Close()
		}
	}()
	bs, ok := rewire.BackendAs[rewire.BatchStatser](be)
	if !ok {
		t.Fatal("batchwait URL param did not attach the coalescing middleware")
	}
	if _, err := be.Fetch(ctx, []rewire.NodeID{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if st := bs.BatchStats(); st.Batches == 0 || st.IDs < 3 {
		t.Fatalf("stats = %+v after a fetch through the coalescer", st)
	}

	// Without the parameter the backend stays bare.
	plain, err := rewire.OpenBackend(ctx, srv.URL+"?timeout=5s")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rewire.BackendAs[rewire.BatchStatser](plain); ok {
		t.Fatal("coalescing middleware attached without batchwait")
	}

	for _, bad := range []string{"?batchwait=nope", "?batchwait=-2ms"} {
		if _, err := rewire.OpenBackend(ctx, srv.URL+bad); err == nil {
			t.Errorf("OpenBackend(%q) succeeded, want error", bad)
		}
	}
}
