package rewire

import (
	"fmt"

	"rewire/internal/core"
)

// Algorithm selects the sampling chain a Session runs.
type Algorithm int

const (
	// AlgMTO is the paper's contribution: a simple random walk over a
	// virtual overlay that is rewired on-the-fly (Theorem 3/5 removals,
	// Theorem 4 replacements) to mix faster at the same query cost.
	AlgMTO Algorithm = iota
	// AlgSRW is the baseline simple random walk.
	AlgSRW
	// AlgMHRW is Metropolis–Hastings with a uniform target.
	AlgMHRW
	// AlgRJ is Random Jump: MHRW with uniform restarts (needs the global ID
	// space, which every Source here publishes via NumUsers).
	AlgRJ
)

// String names the algorithm the way the paper does.
func (a Algorithm) String() string {
	switch a {
	case AlgMTO:
		return "MTO"
	case AlgSRW:
		return "SRW"
	case AlgMHRW:
		return "MHRW"
	case AlgRJ:
		return "RJ"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// WeightMode selects how an MTO session computes the overlay degree k*(v)
// that unbiases its samples (π*(v) ∝ k*(v)).
type WeightMode int

const (
	// WeightOverlayDegree uses the current overlay degree — free, and exact
	// once the walk has classified the edges around v. The default.
	WeightOverlayDegree WeightMode = iota
	// WeightExact classifies every incident edge of v on demand before
	// reporting the degree (more queries, tightest weights).
	WeightExact
	// WeightSampled estimates k*(v) from a random sample of v's incident
	// edges — the paper's cheap middle ground.
	WeightSampled
)

// PrefetchStrategy selects which speculative queries a session issues as its
// walkers advance. Speculation never changes trajectories or unique-query
// bills — prefetched responses stay invisible to the cost ledger until a
// demand query consumes them — only wall-clock.
type PrefetchStrategy int

const (
	// PrefetchNextHop hints the node each walker just landed on, whose
	// neighbor list the next step must demand.
	PrefetchNextHop PrefetchStrategy = iota
	// PrefetchFrontier additionally hints the top-K cold frontier nodes
	// ranked by cache-visible degree — the nodes the walk is most likely to
	// demand soon.
	PrefetchFrontier
)

// PrefetchOptions configures a session's speculative query pipeline
// (WithPrefetch). The zero value selects next-hop hints with default pool
// sizing.
type PrefetchOptions struct {
	// Strategy picks the hinting policy.
	Strategy PrefetchStrategy
	// TopK is the frontier width for PrefetchFrontier (default 8).
	TopK int
	// Workers is the number of concurrent speculative round-trips (default
	// osn pool sizing).
	Workers int
	// Queue is the pending-hint buffer; hints beyond it are dropped.
	Queue int
	// Depth is the recursive lookahead: after fetching a hinted node, its
	// still-unknown neighbors are re-enqueued with Depth-1.
	Depth int
	// Budget caps total speculative round-trips (0 = unlimited). Every
	// speculative fetch still consumes the provider's rate limit.
	Budget int64
}

// config accumulates functional options; the zero value plus defaults() is a
// valid single-walker MTO session.
type config struct {
	alg         Algorithm
	core        core.Config
	fleet       int // 0 = unset
	starts      []NodeID
	seed        uint64
	pJump       float64
	partitioned bool
	prefetch    *PrefetchOptions
	shards      int    // 0 = store default
	src         Source // WithSource; the backend for Resume (and an alternative spelling for NewSession)
	cacheDir    string // WithDurableCache; attached to the provider at NewSession
	err         error  // first option-validation failure, surfaced by NewSession
}

// Option configures a Session at construction.
type Option func(*config)

func defaults() config {
	return config{
		alg:   AlgMTO,
		core:  core.DefaultConfig(),
		seed:  1,
		pJump: 0.5,
	}
}

func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithAlgorithm selects the sampling chain (default AlgMTO).
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) {
		if a < AlgMTO || a > AlgRJ {
			c.fail(fmt.Errorf("rewire: unknown algorithm %d", int(a)))
			return
		}
		c.alg = a
	}
}

// WithRemoval toggles the Theorem 3/5 edge-removal operation of an MTO
// session (default on). Turning both removal and replacement off degrades
// MTO to a plain SRW at overlay bookkeeping cost — use AlgSRW instead.
func WithRemoval(on bool) Option {
	return func(c *config) { c.core.EnableRemoval = on }
}

// WithReplacement toggles the Theorem 4 degree-3 replacement operation of an
// MTO session (default on).
func WithReplacement(on bool) Option {
	return func(c *config) { c.core.EnableReplacement = on }
}

// WithExtendedCriterion toggles the Theorem 5 extension, which strengthens
// the removal test with degree knowledge already in the local cache (default
// on; silently degrades to Theorem 3 over backends without a cache).
func WithExtendedCriterion(on bool) Option {
	return func(c *config) { c.core.UseExtended = on }
}

// WithWeightMode selects the importance-weight computation of an MTO session
// (default WeightOverlayDegree).
func WithWeightMode(m WeightMode) Option {
	return func(c *config) {
		switch m {
		case WeightOverlayDegree:
			c.core.Weights = core.WeightOverlayDegree
		case WeightExact:
			c.core.Weights = core.WeightExact
		case WeightSampled:
			c.core.Weights = core.WeightSampled
		default:
			c.fail(fmt.Errorf("rewire: unknown weight mode %d", int(m)))
		}
	}
}

// WithFleet runs k concurrent walkers (default 1) sharing one source cache,
// one query budget, and — for MTO — one rewired overlay, so every walker
// benefits from every other's discoveries and their round-trips overlap.
func WithFleet(k int) Option {
	return func(c *config) {
		if k < 1 {
			c.fail(fmt.Errorf("rewire: fleet size %d < 1", k))
			return
		}
		c.fleet = k
	}
}

// WithStarts pins the walkers' start nodes. Without it, starts are spread
// uniformly over the ID space from the session seed. When WithFleet is also
// given, the counts must agree; alone, the start count sets the fleet size.
func WithStarts(starts ...NodeID) Option {
	return func(c *config) {
		if len(starts) == 0 {
			c.fail(fmt.Errorf("rewire: WithStarts needs at least one node"))
			return
		}
		c.starts = append([]NodeID(nil), starts...)
	}
}

// WithSeed fixes the session's RNG seed (default 1). Each walker gets a
// split stream, so single-walker or partitioned runs are reproducible
// sample-for-sample.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithJumpProbability sets AlgRJ's teleport probability (default 0.5, the
// paper's setting).
func WithJumpProbability(p float64) Option {
	return func(c *config) {
		if p < 0 || p > 1 {
			c.fail(fmt.Errorf("rewire: jump probability %v outside [0, 1]", p))
			return
		}
		c.pJump = p
	}
}

// WithPartitionedBudget splits the sample budget up front — walker i draws
// exactly total/k samples — instead of letting members race for it. Each
// member's trajectory then depends only on its own RNG stream, so runs are
// reproducible; racing (the default) finishes as soon as the fastest members
// drain the budget.
func WithPartitionedBudget(on bool) Option {
	return func(c *config) { c.partitioned = on }
}

// WithStoreShards sets the shard count of the session's storage engine —
// the sharded maps behind the provider's query cache and the MTO overlay's
// edit sets and materialized lists (internal/store). n is rounded up to a
// power of two. The default adapts to the machine: the next power of two
// >= 4x GOMAXPROCS, clamped to [8, 256], so small runners stop paying for
// shards they cannot contend on and many-core boxes get headroom without
// tuning. Set it explicitly for very large fleets beyond the clamp, or 1 to
// force the legacy single-lock layout the contention benchmarks compare
// against.
// Sharding is invisible to results: trajectories and query bills for a fixed
// seed are identical at any shard count.
//
// Applying the option re-buckets the backing Provider's store at NewSession
// time, so construct the session before sharing that Provider with anything
// that queries it concurrently.
func WithStoreShards(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.fail(fmt.Errorf("rewire: store shards %d < 1", n))
			return
		}
		c.shards = n
	}
}

// WithSource supplies the network backend as an option. It exists for
// Resume, whose signature has no Source parameter: a checkpoint deliberately
// carries no backend (the bytes must be portable across processes, and the
// whole point of resuming inside a service is to reattach to a SHARED
// provider whose cache other tenants keep warming), so the caller names the
// backend explicitly — typically the same Provider, or one rebuilt over the
// same URL. Passing it to NewSession instead of the src argument is also
// allowed (pass nil there); passing both is an error.
func WithSource(src Source) Option {
	return func(c *config) {
		if src == nil {
			c.fail(fmt.Errorf("rewire: WithSource(nil)"))
			return
		}
		c.src = src
	}
}

// WithPrefetch enables the speculative query pipeline: a worker pool fetches
// the nodes the walk is likely to demand next, overlapping their round-trips
// with the walk itself. Only provider backends benefit (a GraphSource has no
// latency to hide). The pool is started per run, bound to the run's context
// — a deadline aborts speculation with the walk.
func WithPrefetch(o PrefetchOptions) Option {
	return func(c *config) {
		if o.Strategy < PrefetchNextHop || o.Strategy > PrefetchFrontier {
			c.fail(fmt.Errorf("rewire: unknown prefetch strategy %d", int(o.Strategy)))
			return
		}
		if o.TopK <= 0 {
			o.TopK = 8
		}
		c.prefetch = &o
		c.core.Prefetch = true
	}
}
