package durable

import (
	"bytes"
	"testing"

	"rewire/internal/graph"
)

// FuzzWALReplay drives segment recovery with arbitrary bytes — torn writes,
// bit flips, truncated tails, hostile lengths — and checks the recovery
// contract rather than any particular decoding:
//
//   - replay never panics and never over-allocates (frame lengths are
//     CRC-guarded and bounded);
//   - tail (active-segment) replay never errors: any malformed suffix is
//     truncation, and valid never exceeds the input;
//   - recovery is idempotent: re-replaying the truncated prefix yields the
//     identical record sequence and the same valid length;
//   - re-encoding the recovered records yields bytes that replay to the
//     same records again (decode ∘ encode is the identity on valid frames);
//   - sealed-segment replay is strictly harsher: it accepts exactly the
//     inputs whose every byte survives tail replay.
func FuzzWALReplay(f *testing.F) {
	var seed []byte
	seed = encodeFrame(seed, Record{Type: recFetch, User: 12, Billed: true, Tenant: "acme", Neighbors: []graph.NodeID{3, 4, 5}})
	seed = encodeFrame(seed, Record{Type: recUpgrade, User: 3, Tenant: "b"})
	seed = encodeFrame(seed, Record{Type: recTombstone, User: 4})
	seed = encodeFrame(seed, Record{Type: recBudget, Budget: 99})
	seed = encodeFrame(seed, Record{Type: recTenantBudget, Tenant: "acme", Budget: -1})
	seed = encodeFrame(seed, Record{Type: recBarrier, Gen: 7})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flipped := bytes.Clone(seed)
	flipped[9] ^= 0x10 // bit flip inside the first payload
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // hostile length, no payload

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		valid, err := replaySegment(data, true, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			t.Fatalf("tail replay errored: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid = %d outside [0, %d]", valid, len(data))
		}

		// Idempotence on the truncated prefix.
		var again []Record
		valid2, err := replaySegment(data[:valid], true, func(r Record) error {
			again = append(again, r)
			return nil
		})
		if err != nil || valid2 != valid {
			t.Fatalf("re-replay: valid %d→%d, err %v", valid, valid2, err)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-replay records %d→%d", len(recs), len(again))
		}

		// The recovered prefix is sealed-grade data.
		if _, err := replaySegment(data[:valid], false, func(Record) error { return nil }); err != nil {
			t.Fatalf("recovered prefix fails sealed replay: %v", err)
		}
		// And sealed replay of the full input succeeds iff nothing was torn.
		_, sealedErr := replaySegment(data, false, func(Record) error { return nil })
		if (sealedErr == nil) != (valid == int64(len(data))) {
			t.Fatalf("sealed/tail disagreement: valid=%d len=%d sealedErr=%v", valid, len(data), sealedErr)
		}

		// Round-trip: re-encode the recovered records and replay again.
		var enc []byte
		for _, r := range recs {
			enc = encodeFrame(enc, r)
		}
		var rt []Record
		if _, err := replaySegment(enc, false, func(r Record) error {
			rt = append(rt, r)
			return nil
		}); err != nil {
			t.Fatalf("re-encoded records fail replay: %v", err)
		}
		if len(rt) != len(recs) {
			t.Fatalf("round trip lost records: %d→%d", len(recs), len(rt))
		}
		for i := range recs {
			a, b := recs[i], rt[i]
			if a.Type != b.Type || a.User != b.User || a.Billed != b.Billed ||
				a.Tenant != b.Tenant || a.Budget != b.Budget || a.Gen != b.Gen ||
				a.Attrs != b.Attrs || len(a.Neighbors) != len(b.Neighbors) {
				t.Fatalf("round trip record %d: %+v != %+v", i, a, b)
			}
		}
	})
}
