package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"

	"rewire/internal/graph"
	"rewire/internal/osn"
)

// metaEntry is the billing metadata for one cached user: whether the fetch
// was demand-billed (vs speculative prefetch), which tenant paid, and the
// user attributes (the neighbor row itself lives in the snapshot or WAL).
type metaEntry struct {
	billed bool
	tenant string
	attrs  osn.UserAttrs
}

// metaState is the folded view of a cache's billing ledger: per-entry
// metadata plus explicit unique-query totals and budgets. The totals are
// stored explicitly — not derived from live entries — because tombstones
// remove entries without refunding the queries that fetched them, exactly as
// the live ledger never decrements unique counts.
type metaState struct {
	entries map[graph.NodeID]metaEntry
	// unique maps tenant ("" = anonymous) to billed unique queries. The
	// global counter is the sum — an invariant the client ledger shares.
	unique       map[string]int64
	budget       int64
	tenantBudget map[string]int64
}

func newMetaState() *metaState {
	return &metaState{
		entries:      make(map[graph.NodeID]metaEntry),
		unique:       make(map[string]int64),
		tenantBudget: make(map[string]int64),
	}
}

// apply folds one replayed WAL record into the state, mirroring the client's
// live billing transitions exactly: every billed fetch and every speculative
// upgrade increments the paying tenant's unique count; tombstones drop the
// entry but never the accrued bill.
func (m *metaState) apply(r Record) {
	switch r.Type {
	case recFetch:
		m.entries[r.User] = metaEntry{billed: r.Billed, tenant: r.Tenant, attrs: r.Attrs}
		if r.Billed {
			m.unique[r.Tenant]++
		}
	case recUpgrade:
		if e, ok := m.entries[r.User]; ok && !e.billed {
			e.billed = true
			e.tenant = r.Tenant
			m.entries[r.User] = e
			m.unique[r.Tenant]++
		}
	case recTombstone:
		delete(m.entries, r.User)
	case recBudget:
		m.budget = r.Budget
	case recTenantBudget:
		if r.Budget == 0 {
			delete(m.tenantBudget, r.Tenant)
		} else {
			m.tenantBudget[r.Tenant] = r.Budget
		}
	case recBarrier:
		// Informational; the manifest names the authoritative generation.
	}
}

// sortedIDs returns the live entry ids in ascending order — the order the
// snapshot compactor appends rows.
func (m *metaState) sortedIDs() []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(m.entries))
	for id := range m.entries {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Meta file format: "RWIRMET1" magic, then a versioned body, then an IEEE
// CRC-32 of everything before it. The body interns tenant names in a sorted
// string table and stores entries sorted by id, so identical states encode
// to identical bytes (byte-stable across map iteration order).
const (
	metaMagic   = "RWIRMET1"
	metaVersion = 1
)

func encodeMeta(m *metaState) []byte {
	tenantSet := make(map[string]struct{})
	for _, e := range m.entries {
		tenantSet[e.tenant] = struct{}{}
	}
	for t := range m.unique {
		tenantSet[t] = struct{}{}
	}
	for t := range m.tenantBudget {
		tenantSet[t] = struct{}{}
	}
	tenants := make([]string, 0, len(tenantSet))
	for t := range tenantSet {
		tenants = append(tenants, t)
	}
	slices.Sort(tenants)
	idx := make(map[string]uint64, len(tenants))
	for i, t := range tenants {
		idx[t] = uint64(i)
	}

	b := []byte(metaMagic)
	b = binary.AppendUvarint(b, metaVersion)
	b = binary.AppendVarint(b, m.budget)
	b = binary.AppendUvarint(b, uint64(len(tenants)))
	for _, t := range tenants {
		b = appendLenString(b, t)
	}
	var uniques, budgets []string
	for t, n := range m.unique {
		if n != 0 {
			uniques = append(uniques, t)
		}
	}
	for t := range m.tenantBudget {
		budgets = append(budgets, t)
	}
	slices.Sort(uniques)
	slices.Sort(budgets)
	b = binary.AppendUvarint(b, uint64(len(uniques)))
	for _, t := range uniques {
		b = binary.AppendUvarint(b, idx[t])
		b = binary.AppendVarint(b, m.unique[t])
	}
	b = binary.AppendUvarint(b, uint64(len(budgets)))
	for _, t := range budgets {
		b = binary.AppendUvarint(b, idx[t])
		b = binary.AppendVarint(b, m.tenantBudget[t])
	}
	ids := m.sortedIDs()
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		e := m.entries[id]
		b = binary.AppendUvarint(b, uint64(uint32(id)))
		var flags byte
		if e.billed {
			flags |= 1
		}
		b = append(b, flags)
		b = binary.AppendUvarint(b, idx[e.tenant])
		b = binary.AppendUvarint(b, uint64(e.attrs.Age))
		b = binary.AppendUvarint(b, uint64(e.attrs.DescLen))
		b = binary.AppendUvarint(b, uint64(e.attrs.Posts))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func decodeMeta(data []byte) (*metaState, error) {
	if len(data) < len(metaMagic)+4 {
		return nil, fmt.Errorf("%w: meta file %d bytes", ErrCorrupt, len(data))
	}
	if string(data[:len(metaMagic)]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic %q", ErrCorrupt, data[:len(metaMagic)])
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: meta checksum mismatch", ErrCorrupt)
	}
	r := payloadReader{b: body, off: len(metaMagic)}
	if v := r.uvarint(); r.err == nil && v != metaVersion {
		return nil, fmt.Errorf("%w: unknown meta version %d", ErrCorrupt, v)
	}
	m := newMetaState()
	m.budget = r.varint()
	nTenants := r.smallInt()
	if r.err == nil && nTenants > len(body) {
		r.fail("tenant count %d overruns body", nTenants)
	}
	tenants := make([]string, 0, max(nTenants, 0))
	for i := 0; i < nTenants && r.err == nil; i++ {
		tenants = append(tenants, r.str())
	}
	tenant := func(i uint64) string {
		if r.err == nil && i >= uint64(len(tenants)) {
			r.fail("tenant index %d outside table of %d", i, len(tenants))
		}
		if r.err != nil {
			return ""
		}
		return tenants[i]
	}
	for i, n := 0, r.smallInt(); i < n && r.err == nil; i++ {
		t := tenant(r.uvarint())
		m.unique[t] = r.varint()
	}
	for i, n := 0, r.smallInt(); i < n && r.err == nil; i++ {
		t := tenant(r.uvarint())
		m.tenantBudget[t] = r.varint()
	}
	nEntries := r.smallInt()
	if r.err == nil && nEntries > len(body) {
		r.fail("entry count %d overruns body", nEntries)
	}
	for i := 0; i < nEntries && r.err == nil; i++ {
		id := r.nodeID()
		flags := r.byte()
		e := metaEntry{billed: flags&1 != 0, tenant: tenant(r.uvarint())}
		e.attrs.Age = r.smallInt()
		e.attrs.DescLen = r.smallInt()
		e.attrs.Posts = r.smallInt()
		if r.err == nil {
			m.entries[id] = e
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing meta bytes", ErrCorrupt, len(body)-r.off)
	}
	return m, nil
}
