package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so a crash at any instant leaves either
// the old file or the complete new one, never a torn mix: the bytes go to a
// uniquely named temp file in path's directory, the temp file is fsync'd,
// renamed over path, and the directory entry is fsync'd so the rename itself
// survives power loss. This is the one write-then-rename helper behind every
// piece of durable state in the repo — WAL manifests, compacted snapshot
// metadata, and the serving layer's drain checkpoints all commit through it.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: creating temp for %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("durable: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Chmod(perm); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("durable: chmod %s: %w", filepath.Base(path), err)
	}
	return CommitFile(f, path)
}

// CommitFile fsyncs f, closes it, and atomically renames it over path (f must
// live in path's directory), then fsyncs the directory. On failure the temp
// file is removed. It is the tail half of WriteFileAtomic, exposed for
// writers that stream into the temp file themselves — the snapshot compactor
// streams gigabyte-scale CSR rows and only then commits the name.
func CommitFile(f *os.File, path string) error {
	tmp := f.Name()
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: syncing %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: closing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: committing %s: %w", filepath.Base(path), err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-committed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: opening dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: syncing dir %s: %w", dir, err)
	}
	return nil
}
