package durable

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rewire/internal/graph"
	"rewire/internal/osn"
)

// mapBackend is a deterministic in-memory backend: neighbors of v are
// (v+1)%n and (v+2)%n, attrs derived from v. Fetches count for warm-start
// assertions.
type mapBackend struct {
	n       int32
	fetches int
}

func (b *mapBackend) Fetch(ctx context.Context, ids []graph.NodeID) ([]osn.Response, error) {
	out := make([]osn.Response, len(ids))
	for i, v := range ids {
		if v < 0 || v >= b.n {
			return nil, osn.ErrNoSuchUser
		}
		b.fetches++
		out[i] = osn.Response{
			User:      v,
			Neighbors: []graph.NodeID{(v + 1) % b.n, (v + 2) % b.n},
			Attrs:     osn.UserAttrs{Age: int(v % 90), DescLen: int(v % 7), Posts: int(v % 13)},
		}
	}
	return out, nil
}

func openAttached(t *testing.T, dir string, opt Options, be osn.Backend) (*Cache, *osn.Client) {
	t.Helper()
	c, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	client := osn.NewClient(be)
	if err := c.Attach(client); err != nil {
		c.Close()
		t.Fatalf("Attach: %v", err)
	}
	return c, client
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: recFetch, User: 7, Billed: true, Tenant: "acme", Attrs: osn.UserAttrs{Age: 33, DescLen: 5, Posts: 12}, Neighbors: []graph.NodeID{1, 2, 3}},
		{Type: recFetch, User: 0, Neighbors: []graph.NodeID{}},
		{Type: recUpgrade, User: 9, Tenant: ""},
		{Type: recTombstone, User: 4},
		{Type: recBudget, Budget: -3},
		{Type: recTenantBudget, Tenant: "t2", Budget: 500},
		{Type: recBarrier, Gen: 42},
	}
	var buf []byte
	for _, r := range recs {
		buf = encodeFrame(buf, r)
	}
	var got []Record
	valid, err := replaySegment(buf, false, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if valid != int64(len(buf)) {
		t.Fatalf("valid = %d, want %d", valid, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Type != r.Type || g.User != r.User || g.Billed != r.Billed || g.Tenant != r.Tenant ||
			g.Budget != r.Budget || g.Gen != r.Gen || g.Attrs != r.Attrs || len(g.Neighbors) != len(r.Neighbors) {
			t.Errorf("record %d: got %+v, want %+v", i, g, r)
		}
		for j := range r.Neighbors {
			if g.Neighbors[j] != r.Neighbors[j] {
				t.Errorf("record %d neighbor %d: got %d, want %d", i, j, g.Neighbors[j], r.Neighbors[j])
			}
		}
	}
}

func TestReplayTornTailTruncatesAtEveryOffset(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = encodeFrame(buf, Record{Type: recFetch, User: graph.NodeID(i), Billed: true, Neighbors: []graph.NodeID{1, 2}})
	}
	// Frame boundaries: replay of any prefix recovers exactly the complete
	// frames and reports their byte length as valid.
	boundaries := []int64{}
	valid, err := replaySegment(buf, true, func(Record) error { boundaries = append(boundaries, 0); return nil })
	if err != nil || valid != int64(len(buf)) {
		t.Fatalf("full replay: valid=%d err=%v", valid, err)
	}
	for cut := 0; cut <= len(buf); cut++ {
		n := 0
		valid, err := replaySegment(buf[:cut], true, func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: tail replay errored: %v", cut, err)
		}
		if valid > int64(cut) {
			t.Fatalf("cut %d: valid %d beyond data", cut, valid)
		}
		// Re-replay of the truncated prefix must be idempotent.
		n2 := 0
		valid2, err := replaySegment(buf[:valid], true, func(Record) error { n2++; return nil })
		if err != nil || valid2 != valid || n2 != n {
			t.Fatalf("cut %d: re-replay diverged: valid %d→%d records %d→%d err=%v", cut, valid, valid2, n, n2, err)
		}
	}
	// Sealed segments reject the same torn data loudly.
	if _, err := replaySegment(buf[:len(buf)-1], false, func(Record) error { return nil }); err == nil {
		t.Fatal("sealed segment with torn tail replayed without error")
	}
}

func TestReplayRejectsBitFlips(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = encodeFrame(buf, Record{Type: recFetch, User: graph.NodeID(i), Neighbors: []graph.NodeID{9}})
	}
	for bit := 0; bit < len(buf)*8; bit += 7 {
		mut := bytes.Clone(buf)
		mut[bit/8] ^= 1 << (bit % 8)
		_, err := replaySegment(mut, false, func(Record) error { return nil })
		full, terr := replaySegment(mut, true, func(Record) error { return nil })
		if terr != nil {
			t.Fatalf("bit %d: tail replay must never error, got %v", bit, terr)
		}
		if err == nil && full != int64(len(mut)) {
			t.Fatalf("bit %d: sealed replay accepted what tail replay truncated", bit)
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	m := newMetaState()
	m.apply(Record{Type: recFetch, User: 3, Billed: true, Tenant: "a", Attrs: osn.UserAttrs{Age: 1}, Neighbors: []graph.NodeID{1}})
	m.apply(Record{Type: recFetch, User: 5, Billed: false, Neighbors: nil})
	m.apply(Record{Type: recUpgrade, User: 5, Tenant: "b"})
	m.apply(Record{Type: recFetch, User: 9, Billed: true, Tenant: "a"})
	m.apply(Record{Type: recTombstone, User: 9})
	m.apply(Record{Type: recBudget, Budget: 100})
	m.apply(Record{Type: recTenantBudget, Tenant: "a", Budget: 40})
	enc := encodeMeta(m)
	if !bytes.Equal(enc, encodeMeta(m)) {
		t.Fatal("encodeMeta not deterministic")
	}
	got, err := decodeMeta(enc)
	if err != nil {
		t.Fatalf("decodeMeta: %v", err)
	}
	if len(got.entries) != 2 || got.unique["a"] != 2 || got.unique["b"] != 1 ||
		got.budget != 100 || got.tenantBudget["a"] != 40 {
		t.Fatalf("decoded state mismatch: %+v", got)
	}
	if e := got.entries[5]; !e.billed || e.tenant != "b" {
		t.Fatalf("upgraded entry mismatch: %+v", e)
	}
	// Tombstoned id 9's bill survives in unique["a"] with no entry.
	if _, ok := got.entries[9]; ok {
		t.Fatal("tombstoned entry survived")
	}
	if _, err := decodeMeta(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated meta decoded")
	}
	mut := bytes.Clone(enc)
	mut[len(mut)/2] ^= 0x40
	if _, err := decodeMeta(mut); err == nil {
		t.Fatal("bit-flipped meta decoded")
	}
}

func TestCacheReopenRestoresExactState(t *testing.T) {
	dir := t.TempDir()
	be := &mapBackend{n: 1000}
	c, client := openAttached(t, dir, Options{}, be)
	client.SetBudget(800)
	client.SetTenantBudget("acme", 300)
	ctx := osn.WithTenant(context.Background(), "acme")
	for v := graph.NodeID(0); v < 50; v++ {
		if _, err := client.QueryContext(ctx, v); err != nil {
			t.Fatalf("query %d: %v", v, err)
		}
	}
	if _, err := client.QueryContext(context.Background(), 200); err != nil {
		t.Fatalf("anonymous query: %v", err)
	}
	wantUnique := client.UniqueQueries()
	wantSize := client.CacheSize()
	wantAcme := client.TenantBill("acme")
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	be2 := &mapBackend{n: 1000}
	c2, client2 := openAttached(t, dir, Options{}, be2)
	defer c2.Close()
	if got := client2.UniqueQueries(); got != wantUnique {
		t.Errorf("UniqueQueries after reopen = %d, want %d", got, wantUnique)
	}
	if got := client2.CacheSize(); got != wantSize {
		t.Errorf("CacheSize after reopen = %d, want %d", got, wantSize)
	}
	if got := client2.TenantBill("acme"); got != wantAcme {
		t.Errorf("TenantBill(acme) after reopen = %+v, want %+v", got, wantAcme)
	}
	// Replayed entries are warm: re-querying them costs no backend fetch and
	// no unique query.
	for v := graph.NodeID(0); v < 50; v++ {
		resp, err := client2.QueryContext(ctx, v)
		if err != nil {
			t.Fatalf("warm query %d: %v", v, err)
		}
		if len(resp.Neighbors) != 2 || resp.Neighbors[0] != (v+1)%1000 {
			t.Fatalf("warm query %d: wrong neighbors %v", v, resp.Neighbors)
		}
		if resp.Attrs != (osn.UserAttrs{Age: int(v % 90), DescLen: int(v % 7), Posts: int(v % 13)}) {
			t.Fatalf("warm query %d: wrong attrs %+v", v, resp.Attrs)
		}
	}
	if be2.fetches != 0 {
		t.Errorf("warm reopen hit the backend %d times", be2.fetches)
	}
	if got := client2.UniqueQueries(); got != wantUnique {
		t.Errorf("UniqueQueries after warm re-queries = %d, want %d", got, wantUnique)
	}
	// The replayed budget still binds: 800 global, and the crawl above used
	// 51; a fresh query must bill normally until the cap.
	if _, err := client2.QueryContext(ctx, 900); err != nil {
		t.Fatalf("fresh query after reopen: %v", err)
	}
	if got := client2.UniqueQueries(); got != wantUnique+1 {
		t.Errorf("fresh query billed %d, want %d", got, wantUnique+1)
	}
}

func TestCacheRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	be := &mapBackend{n: 4000}
	// Tiny segments force rotations; CompactSegments < 0 keeps compaction
	// manual so the test controls when the fold happens.
	c, client := openAttached(t, dir, Options{SegmentBytes: 1 << 10, CompactSegments: -1}, be)
	ctx := osn.WithTenant(context.Background(), "t")
	for v := graph.NodeID(0); v < 500; v++ {
		if _, err := client.QueryContext(ctx, v); err != nil {
			t.Fatalf("query %d: %v", v, err)
		}
	}
	if st := c.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotations, got %d segments", st.Segments)
	}
	if err := c.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := c.Stats()
	if st.Gen != 1 || st.Compactions != 1 {
		t.Fatalf("after compact: %+v", st)
	}
	if st.Segments != 1 {
		t.Fatalf("compaction left %d segments, want 1 (active)", st.Segments)
	}
	// The mmap'd rows seeded into the client before compaction must still be
	// readable after the old generation was superseded and unlinked.
	for v := graph.NodeID(0); v < 500; v++ {
		nbrs, ok := client.CachedNeighbors(v)
		if !ok || nbrs[0] != (v+1)%4000 {
			t.Fatalf("cached row %d unreadable after compaction", v)
		}
	}
	// More traffic after compaction, then a second compact folds snapshot +
	// new segments.
	for v := graph.NodeID(500); v < 900; v++ {
		if _, err := client.QueryContext(ctx, v); err != nil {
			t.Fatalf("query %d: %v", v, err)
		}
	}
	if err := c.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	wantUnique := client.UniqueQueries()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	be2 := &mapBackend{n: 4000}
	c2, client2 := openAttached(t, dir, Options{}, be2)
	defer c2.Close()
	if got := c2.Stats().Gen; got != 2 {
		t.Errorf("reopened gen = %d, want 2", got)
	}
	if got := client2.UniqueQueries(); got != wantUnique {
		t.Errorf("UniqueQueries after compacted reopen = %d, want %d", got, wantUnique)
	}
	for v := graph.NodeID(0); v < 900; v++ {
		resp, err := client2.QueryContext(ctx, v)
		if err != nil || len(resp.Neighbors) != 2 || resp.Neighbors[1] != (v+2)%4000 {
			t.Fatalf("warm row %d after compacted reopen: %v %v", v, resp.Neighbors, err)
		}
	}
	if be2.fetches != 0 {
		t.Errorf("compacted reopen hit the backend %d times", be2.fetches)
	}
}

func TestTombstoneKeepsBillOnReplay(t *testing.T) {
	// A billed fetch then its tombstone: the bill must survive replay — from
	// raw WAL and from a compacted generation alike — with no cache entry.
	for _, compact := range []bool{false, true} {
		dir := t.TempDir()
		c, client := openAttached(t, dir, Options{CompactSegments: -1}, &mapBackend{n: 10})
		if _, err := client.Query(3); err != nil {
			t.Fatalf("query: %v", err)
		}
		if err := c.append(Record{Type: recTombstone, User: 3}); err != nil {
			t.Fatalf("tombstone: %v", err)
		}
		if compact {
			if err := c.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		}
		c.Close()

		be := &mapBackend{n: 10}
		c2, client2 := openAttached(t, dir, Options{CompactSegments: -1}, be)
		if got := client2.UniqueQueries(); got != 1 {
			t.Fatalf("compact=%v: replayed unique = %d, want 1 (tombstoned bill kept)", compact, got)
		}
		if client2.Cached(3) {
			t.Fatalf("compact=%v: tombstoned entry came back cached", compact)
		}
		// Re-fetching the tombstoned id bills again, exactly as live.
		if _, err := client2.Query(3); err != nil {
			t.Fatalf("refetch: %v", err)
		}
		if got := client2.UniqueQueries(); got != 2 {
			t.Fatalf("compact=%v: refetch billed %d, want 2", compact, got)
		}
		c2.Close()
	}
}

func TestOpenRefusesSecondProcessLock(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a locked dir succeeded")
	}
}

func TestOpenPrunesDebris(t *testing.T) {
	dir := t.TempDir()
	c, client := openAttached(t, dir, Options{}, &mapBackend{n: 10})
	if _, err := client.Query(1); err != nil {
		t.Fatalf("query: %v", err)
	}
	c.Close()
	// Simulate a crashed compaction: orphan snapshot, meta, segment, temp.
	for _, name := range []string{snapName(9), metaName(9), segmentName(99), "snap-000001.csr.tmp123"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c2, client2 := openAttached(t, dir, Options{}, &mapBackend{n: 10})
	defer c2.Close()
	if got := client2.UniqueQueries(); got != 1 {
		t.Fatalf("replay over debris: unique = %d, want 1", got)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		for _, orphan := range []string{snapName(9), metaName(9), segmentName(99)} {
			if e.Name() == orphan {
				t.Errorf("debris %s survived open", orphan)
			}
		}
		if name := e.Name(); len(name) > 4 && name[len(name)-7:len(name)-3] == ".tmp" {
			t.Errorf("temp debris %s survived open", name)
		}
	}
}

func TestSpeculativeEntriesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	c, client := openAttached(t, dir, Options{}, &mapBackend{n: 100})
	// A speculative (unbilled) fetch record, as the prefetch pool would
	// journal it, followed by close and reopen.
	if err := c.RecordFetch(7, osn.Response{User: 7, Neighbors: []graph.NodeID{8, 9}}, false, ""); err != nil {
		t.Fatalf("RecordFetch: %v", err)
	}
	client.SeedCached(7, osn.Response{User: 7, Neighbors: []graph.NodeID{8, 9}}, false, "")
	c.Close()

	be := &mapBackend{n: 100}
	c2, client2 := openAttached(t, dir, Options{}, be)
	defer c2.Close()
	if got := client2.UniqueQueries(); got != 0 {
		t.Fatalf("speculative replay billed %d unique", got)
	}
	if got := client2.SpeculativeCount(); got != 1 {
		t.Fatalf("SpeculativeCount after reopen = %d, want 1", got)
	}
	// First demand upgrades it: one unique query, zero backend fetches.
	if _, err := client2.Query(7); err != nil {
		t.Fatalf("upgrade query: %v", err)
	}
	if got := client2.UniqueQueries(); got != 1 {
		t.Fatalf("upgrade billed %d, want 1", got)
	}
	if be.fetches != 0 {
		t.Fatalf("upgrade hit the backend %d times", be.fetches)
	}
	c2.Close()
	// And the upgrade itself is durable.
	c3, client3 := openAttached(t, dir, Options{}, &mapBackend{n: 100})
	defer c3.Close()
	if got := client3.UniqueQueries(); got != 1 {
		t.Fatalf("replayed upgrade: unique = %d, want 1", got)
	}
	if got := client3.SpeculativeCount(); got != 0 {
		t.Fatalf("replayed upgrade left %d speculative", got)
	}
}

func TestAttachGuards(t *testing.T) {
	dir := t.TempDir()
	c, client := openAttached(t, dir, Options{}, &mapBackend{n: 10})
	defer c.Close()
	if err := c.Attach(osn.NewClient(&mapBackend{n: 10})); err == nil {
		t.Fatal("double Attach succeeded")
	}
	_ = client

	dir2 := t.TempDir()
	c2, err := Open(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	dirty := osn.NewClient(&mapBackend{n: 10})
	if _, err := dirty.Query(1); err != nil {
		t.Fatal(err)
	}
	if err := c2.Attach(dirty); err == nil {
		t.Fatal("Attach to a non-empty client succeeded")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	for i := 0; i < 3; i++ {
		want := []byte(fmt.Sprintf("generation %d", i))
		if err := WriteFileAtomic(path, want, 0o644); err != nil {
			t.Fatalf("WriteFileAtomic: %v", err)
		}
		got, err := os.ReadFile(path)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("read back %q, err %v", got, err)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}
