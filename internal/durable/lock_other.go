//go:build !unix

package durable

import (
	"fmt"
	"os"
)

// Non-unix fallback: no flock primitive, so the lock file is advisory only
// (created, never contended). Crash injection falls back to a hard exit.
type dirLock struct {
	f *os.File
}

func acquireDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening lock file: %w", err)
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}

func crashSelf() {
	os.Exit(137)
}
