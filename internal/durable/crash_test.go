package durable

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"testing"

	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// TestCrashChild is the fault-injection subprocess, driven by
// TestKillAndRecoverMidCrawl via re-exec: it crawls over a durable cache
// configured to SIGKILL itself after REWIRE_CRASH_AFTER appends, and never
// returns. Running it directly (no env) is a no-op skip.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("REWIRE_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-injection child; driven by TestKillAndRecoverMidCrawl")
	}
	after, err := strconv.ParseInt(os.Getenv("REWIRE_CRASH_AFTER"), 10, 64)
	if err != nil {
		t.Fatalf("bad REWIRE_CRASH_AFTER: %v", err)
	}
	c, err := Open(dir, Options{SegmentBytes: 1 << 10, CompactSegments: 2, CrashAfterAppends: after})
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	client := osn.NewClient(&mapBackend{n: 5000})
	if err := c.Attach(client); err != nil {
		t.Fatalf("child Attach: %v", err)
	}
	w := walk.NewSimple(client, 0, rng.New(42).Split())
	for i := 0; i < 1_000_000; i++ {
		w.Step()
	}
	t.Fatal("child survived its crawl without crashing")
}

// TestKillAndRecoverMidCrawl is the crash-injection harness: a subprocess
// crawls over a durable cache and SIGKILLs itself mid-append-stream at
// varied points (mid-segment, at rotation boundaries, during compaction
// churn). The parent then reopens the directory and asserts the recovery
// contract: no corruption, billing exactly equal to the recovered cache
// state, and — because the cache layer is transparent to trajectories — a
// fresh same-seed walk over the recovered cache replays the reference
// trajectory byte-for-byte while re-billing none of the recovered entries.
func TestKillAndRecoverMidCrawl(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash injection is not -short friendly")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("no test executable for re-exec")
	}

	// Reference trajectory and bill: same graph, same seed, no cache.
	const steps = 3000
	refClient := osn.NewClient(&mapBackend{n: 5000})
	refWalk := walk.NewSimple(refClient, 0, rng.New(42).Split())
	refPath := make([]graph.NodeID, steps)
	for i := range refPath {
		refPath[i] = refWalk.Step()
	}
	refUnique := refClient.UniqueQueries()

	// Crash points: early (first segment), around the 1 KiB rotation
	// threshold, and deep enough that compaction (CompactSegments: 2) has
	// started folding generations.
	for _, crashAfter := range []int64{1, 7, 40, 120, 600} {
		t.Run(fmt.Sprintf("after=%d", crashAfter), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(exe, "-test.run=TestCrashChild$", "-test.v")
			cmd.Env = append(os.Environ(),
				"REWIRE_CRASH_DIR="+dir,
				"REWIRE_CRASH_AFTER="+strconv.FormatInt(crashAfter, 10),
			)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("child did not die by signal: err=%v\n%s", err, out)
			}
			ws, ok := ee.Sys().(syscall.WaitStatus)
			if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
				t.Fatalf("child exit = %v, want SIGKILL\n%s", err, out)
			}

			// First reopen: recovery must succeed and be internally exact.
			c, err := Open(dir, Options{SegmentBytes: 1 << 10, CompactSegments: -1})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			be := &mapBackend{n: 5000}
			client := osn.NewClient(be)
			if err := c.Attach(client); err != nil {
				t.Fatalf("attach after crash: %v", err)
			}
			recovered := client.UniqueQueries()
			if recovered <= 0 {
				t.Fatalf("recovered nothing (unique = %d)", recovered)
			}
			if recovered > refUnique {
				t.Fatalf("recovered %d unique queries, reference crawl needs only %d", recovered, refUnique)
			}

			// Resume: the same-seed walk replays the reference trajectory
			// byte-identically, recovered entries are free, and the final
			// bill lands exactly on the reference — no loss of acknowledged
			// fetches, no double billing of replayed ones.
			w := walk.NewSimple(client, 0, rng.New(42).Split())
			for i := 0; i < steps; i++ {
				if got := w.Step(); got != refPath[i] {
					t.Fatalf("resumed trajectory diverged at step %d: %d != %d", i, got, refPath[i])
				}
			}
			if got := client.UniqueQueries(); got != refUnique {
				t.Fatalf("resumed bill = %d, want %d (recovered %d)", got, refUnique, recovered)
			}
			if int64(be.fetches) != refUnique-recovered {
				t.Fatalf("backend fetches = %d, want %d (every recovered entry must be a free hit)", be.fetches, refUnique-recovered)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("close recovered cache: %v", err)
			}

			// Second reopen with no intervening writes: replay idempotence.
			c2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("second reopen: %v", err)
			}
			client2 := osn.NewClient(&mapBackend{n: 5000})
			if err := c2.Attach(client2); err != nil {
				t.Fatalf("second attach: %v", err)
			}
			if got := client2.UniqueQueries(); got != refUnique {
				t.Fatalf("idempotent replay: unique = %d, want %d", got, refUnique)
			}
			if err := c2.Close(); err != nil {
				t.Fatalf("second close: %v", err)
			}
		})
	}
}
