package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"rewire/internal/graph"
)

// compactorLoop is the background half of compaction: it waits for append to
// signal that enough sealed segments have accumulated, folds them, and goes
// back to sleep. Close stops it and collects the last error.
func (c *Cache) compactorLoop() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case <-c.trigger:
		}
		if err := c.Compact(); err != nil {
			c.mu.Lock()
			c.cerr = err
			c.mu.Unlock()
		}
	}
}

// Compact folds every sealed WAL segment, together with the current
// snapshot generation, into a new snapshot + meta pair, then swaps the
// manifest and deletes the folded files. Appends proceed concurrently (they
// land in the active segment, which is never folded). The fold re-reads
// everything from disk — old meta, old snapshot rows, sealed segments — so
// compaction memory is bounded by the sealed WAL size plus the offsets
// array, not the total cache size.
//
// Crash safety: the new snapshot and meta files commit via fsync'd
// temp-and-rename before the manifest swap, and the swap itself is atomic —
// a crash at any instant leaves the manifest naming either the old complete
// generation (new files become debris, pruned at open) or the new one
// (folded files become debris). Safe to call concurrently; a second call
// while one runs is a no-op.
func (c *Cache) Compact() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("durable: cache closed")
	}
	if c.compacting {
		c.mu.Unlock()
		return nil
	}
	if c.werr != nil {
		err := c.werr
		c.mu.Unlock()
		return err
	}
	c.compacting = true
	defer func() {
		c.mu.Lock()
		c.compacting = false
		c.mu.Unlock()
	}()
	gen := c.man.Gen
	if c.size == 0 && len(c.man.Segments) == 1 {
		// One empty active segment: nothing to fold.
		c.mu.Unlock()
		return nil
	}
	if c.size > 0 {
		// Seal the active segment (stamping the new generation's barrier)
		// so the sealed set below contains every record appended so far.
		if err := c.rotateLocked(gen + 1); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	sealed := append([]uint64(nil), c.man.Segments[:len(c.man.Segments)-1]...)
	snap := c.snap
	oldSnapName, oldMetaName := c.man.Snapshot, c.man.Meta
	c.mu.Unlock()

	if len(sealed) == 0 {
		return nil
	}
	newGen := gen + 1
	if err := c.fold(newGen, sealed, snap, oldMetaName); err != nil {
		return err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// Close won the race; the new generation's files are debris for the
		// next open to prune.
		return fmt.Errorf("durable: cache closed during compaction")
	}
	man := c.man
	man.Gen = newGen
	man.Snapshot = snapName(newGen)
	man.Meta = metaName(newGen)
	live := make([]uint64, 0, len(c.man.Segments))
	folded := make(map[uint64]bool, len(sealed))
	for _, seq := range sealed {
		folded[seq] = true
	}
	for _, seq := range c.man.Segments {
		if !folded[seq] {
			live = append(live, seq)
		}
	}
	man.Segments = live
	newSnap, err := graph.OpenSnapshot(filepath.Join(c.dir, man.Snapshot))
	if err != nil {
		return fmt.Errorf("durable: reopening compacted snapshot: %w", err)
	}
	if err := saveManifest(c.dir, man); err != nil {
		newSnap.Close()
		return err
	}
	c.man = man
	if c.snap != nil {
		// Superseded, but clients hold zero-copy views into its rows: keep
		// the mapping alive until Close. The file itself can be unlinked —
		// POSIX keeps mapped pages valid with no directory entry.
		c.oldSnaps = append(c.oldSnaps, c.snap)
	}
	c.snap = newSnap
	c.compactions++
	c.stats.Gen = man.Gen
	c.stats.Segments = len(man.Segments)
	// Folded inputs are garbage now; removal is best-effort (leftovers are
	// pruned at the next open).
	for _, seq := range sealed {
		os.Remove(filepath.Join(c.dir, segmentName(seq)))
	}
	if oldSnapName != "" {
		os.Remove(filepath.Join(c.dir, oldSnapName))
		os.Remove(filepath.Join(c.dir, oldMetaName))
	}
	return nil
}

// fold builds generation newGen on disk: old meta + old snapshot rows +
// sealed segments → snap-<gen>.csr + meta-<gen>.bin, both committed with
// fsync'd renames. No cache state is touched — the caller swaps the manifest.
func (c *Cache) fold(newGen uint64, sealed []uint64, snap *graph.Snapshot, oldMetaName string) error {
	base := newMetaState()
	if oldMetaName != "" {
		data, err := os.ReadFile(filepath.Join(c.dir, oldMetaName))
		if err != nil {
			return fmt.Errorf("durable: reading meta for fold: %w", err)
		}
		if base, err = decodeMeta(data); err != nil {
			return fmt.Errorf("durable: decoding meta for fold: %w", err)
		}
	}
	walRows := make(map[graph.NodeID][]graph.NodeID)
	for _, seq := range sealed {
		data, err := os.ReadFile(filepath.Join(c.dir, segmentName(seq)))
		if err != nil {
			return fmt.Errorf("durable: reading segment for fold: %w", err)
		}
		if _, err := replaySegment(data, false, func(r Record) error {
			base.apply(r)
			switch r.Type {
			case recFetch:
				walRows[r.User] = r.Neighbors
			case recTombstone:
				delete(walRows, r.User)
			}
			return nil
		}); err != nil {
			return fmt.Errorf("durable: folding %s: %w", segmentName(seq), err)
		}
	}

	ids := base.sortedIDs()
	numNodes := 0
	if len(ids) > 0 {
		numNodes = int(ids[len(ids)-1]) + 1
	}
	f, err := os.CreateTemp(c.dir, snapName(newGen)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: creating snapshot temp: %w", err)
	}
	app, err := graph.NewSnapshotAppender(f, numNodes)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	for _, id := range ids {
		nbrs, ok := walRows[id]
		if !ok {
			if nbrs, err = snap.Neighbors(id); err != nil {
				f.Close()
				os.Remove(f.Name())
				return fmt.Errorf("durable: folding snapshot row %d: %w", id, err)
			}
		}
		if err := app.Append(id, nbrs); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
	}
	if err := app.Finish(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := CommitFile(f, filepath.Join(c.dir, snapName(newGen))); err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(c.dir, metaName(newGen)), encodeMeta(base), 0o644)
}
