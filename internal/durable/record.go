package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"rewire/internal/graph"
	"rewire/internal/osn"
)

// ErrCorrupt reports WAL or metadata bytes that cannot be decoded: torn
// frames, checksum mismatches, impossible lengths, unknown record types.
// Recovery treats a corrupt suffix of the ACTIVE segment as a torn write and
// truncates it; the same bytes in a sealed segment are data loss and fail
// the open.
var ErrCorrupt = errors.New("durable: corrupt record")

// recordType discriminates WAL records. Values are part of the on-disk
// format; never renumber.
type recordType uint8

const (
	// recFetch persists one committed neighbor-list fetch: id, billed flag,
	// tenant, user attributes, and the full neighbor row. Appended before the
	// client publishes the response, so an acknowledged fetch is always
	// recoverable.
	recFetch recordType = 1
	// recUpgrade marks a speculative (prefetched, unbilled) entry's promotion
	// to billed when a demand query first consumes it.
	recUpgrade recordType = 2
	// recTombstone invalidates a cached entry (future eviction/refresh path);
	// billing already accrued is untouched, mirroring the live ledger.
	recTombstone recordType = 3
	// recBudget and recTenantBudget persist ledger budget changes so a
	// reopened cache enforces the same caps.
	recBudget       recordType = 4
	recTenantBudget recordType = 5
	// recBarrier is written as the first record of the segment opened by a
	// compaction's rotation, carrying the generation the compactor is about
	// to produce. Replay ignores it — the manifest is authoritative — but it
	// cross-checks segment/manifest pairing in tests and post-mortems.
	recBarrier recordType = 6
)

const (
	recordVersion = 1
	// frameHeader is the per-record framing: uint32 payload length then
	// uint32 IEEE CRC-32 of the payload, both little-endian.
	frameHeader = 8
	// maxPayload bounds a frame's declared length so corrupt headers cannot
	// drive giant allocations during recovery.
	maxPayload = 1 << 26
)

// Record is one decoded WAL entry. Which fields are meaningful depends on
// Type; see the recordType constants.
type Record struct {
	Type      recordType
	User      graph.NodeID
	Neighbors []graph.NodeID
	Attrs     osn.UserAttrs
	Billed    bool
	Tenant    string
	Budget    int64
	Gen       uint64
}

// encodeFrame appends r's framed encoding — length, CRC, versioned payload —
// to dst and returns the extended slice.
func encodeFrame(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	p := len(dst)
	dst = append(dst, recordVersion, byte(r.Type))
	switch r.Type {
	case recFetch:
		dst = binary.AppendUvarint(dst, uint64(uint32(r.User)))
		var flags byte
		if r.Billed {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = appendLenString(dst, r.Tenant)
		dst = binary.AppendUvarint(dst, uint64(r.Attrs.Age))
		dst = binary.AppendUvarint(dst, uint64(r.Attrs.DescLen))
		dst = binary.AppendUvarint(dst, uint64(r.Attrs.Posts))
		dst = binary.AppendUvarint(dst, uint64(len(r.Neighbors)))
		for _, n := range r.Neighbors {
			dst = binary.AppendUvarint(dst, uint64(uint32(n)))
		}
	case recUpgrade:
		dst = binary.AppendUvarint(dst, uint64(uint32(r.User)))
		dst = appendLenString(dst, r.Tenant)
	case recTombstone:
		dst = binary.AppendUvarint(dst, uint64(uint32(r.User)))
	case recBudget:
		dst = binary.AppendVarint(dst, r.Budget)
	case recTenantBudget:
		dst = appendLenString(dst, r.Tenant)
		dst = binary.AppendVarint(dst, r.Budget)
	case recBarrier:
		dst = binary.AppendUvarint(dst, r.Gen)
	}
	payload := dst[p:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

func appendLenString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// payloadReader decodes a record payload with sticky-error bounds checking:
// any short read, overlong varint, or out-of-range value poisons the reader
// and every subsequent read returns zero values.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *payloadReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated payload")
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string length %d overruns payload", n)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *payloadReader) nodeID() graph.NodeID {
	v := r.uvarint()
	if r.err == nil && v > math.MaxInt32 {
		r.fail("node id %d outside the int32 space", v)
		return 0
	}
	return graph.NodeID(v)
}

// smallInt decodes a uvarint that must fit an int (attrs, counts).
func (r *payloadReader) smallInt() int {
	v := r.uvarint()
	if r.err == nil && v > math.MaxInt32 {
		r.fail("value %d out of range", v)
		return 0
	}
	return int(v)
}

// decodePayload decodes one record payload (the bytes covered by the frame
// CRC). The payload length is already bounded by maxPayload, and neighbor
// counts are checked against the remaining bytes, so corrupt input cannot
// force allocations beyond the payload's own size.
func decodePayload(p []byte) (Record, error) {
	r := payloadReader{b: p}
	var rec Record
	if v := r.byte(); r.err == nil && v != recordVersion {
		return rec, fmt.Errorf("%w: unknown record version %d", ErrCorrupt, v)
	}
	rec.Type = recordType(r.byte())
	switch rec.Type {
	case recFetch:
		rec.User = r.nodeID()
		rec.Billed = r.byte()&1 != 0
		rec.Tenant = r.str()
		rec.Attrs.Age = r.smallInt()
		rec.Attrs.DescLen = r.smallInt()
		rec.Attrs.Posts = r.smallInt()
		n := r.uvarint()
		if r.err == nil && n > uint64(len(r.b)-r.off) {
			r.fail("neighbor count %d overruns payload", n)
		}
		if r.err == nil {
			rec.Neighbors = make([]graph.NodeID, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				rec.Neighbors = append(rec.Neighbors, r.nodeID())
			}
		}
	case recUpgrade:
		rec.User = r.nodeID()
		rec.Tenant = r.str()
	case recTombstone:
		rec.User = r.nodeID()
	case recBudget:
		rec.Budget = r.varint()
	case recTenantBudget:
		rec.Tenant = r.str()
		rec.Budget = r.varint()
	case recBarrier:
		rec.Gen = r.uvarint()
	default:
		if r.err == nil {
			r.fail("unknown record type %d", rec.Type)
		}
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.off != len(p) {
		return rec, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p)-r.off)
	}
	return rec, nil
}

// replaySegment scans one segment's records in order, invoking fn for each.
// tail selects torn-end handling: for the active segment (true), any
// malformed suffix — short frame, bad CRC, undecodable payload — ends the
// scan cleanly and valid reports the byte length of the intact prefix (the
// caller truncates to it); for sealed segments (false) the same suffix is
// corruption and errors. An error from fn aborts the scan outright.
func replaySegment(data []byte, tail bool, fn func(Record) error) (valid int64, err error) {
	off := 0
	torn := func(reason error) (int64, error) {
		if tail {
			return int64(off), nil
		}
		return int64(off), fmt.Errorf("sealed segment byte %d: %w", off, reason)
	}
	for off < len(data) {
		if len(data)-off < frameHeader {
			return torn(fmt.Errorf("%w: torn frame header", ErrCorrupt))
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen < 2 || plen > maxPayload || int64(plen) > int64(len(data)-off-frameHeader) {
			return torn(fmt.Errorf("%w: frame length %d outside [2, %d] or past segment end", ErrCorrupt, plen, maxPayload))
		}
		payload := data[off+frameHeader : off+frameHeader+int(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			return torn(fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt))
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return torn(derr)
		}
		if err := fn(rec); err != nil {
			return int64(off), err
		}
		off += frameHeader + int(plen)
	}
	return int64(off), nil
}
