package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
)

// manifest is the atomically swapped root of a cache directory: which
// snapshot generation is current and which WAL segments are live. Every
// structural transition — segment rotation, compaction — commits by writing
// a new manifest through WriteFileAtomic, so a crash at any point leaves a
// directory whose manifest still names a complete, consistent set of files
// (leftover unreferenced files are debris, pruned at the next open).
type manifest struct {
	Version int    `json:"version"`
	Gen     uint64 `json:"gen"`
	// Snapshot and Meta name the compacted state of generation Gen; both are
	// empty while Gen == 0 (nothing compacted yet).
	Snapshot string `json:"snapshot,omitempty"`
	Meta     string `json:"meta,omitempty"`
	// Segments lists live WAL segment sequence numbers in append order; the
	// last one is the active segment, the rest are sealed.
	Segments []uint64 `json:"segments"`
	// NextSeq is the sequence number the next rotation will use.
	NextSeq uint64 `json:"next_seq"`
}

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
	lockName        = "LOCK"
)

func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(gen uint64) string    { return fmt.Sprintf("snap-%06d.csr", gen) }
func metaName(gen uint64) string    { return fmt.Sprintf("meta-%06d.bin", gen) }

// loadManifest reads and validates dir's manifest. ok is false when none
// exists (a fresh cache directory).
func loadManifest(dir string) (m manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return m, false, nil
	}
	if err != nil {
		return m, false, fmt.Errorf("durable: reading manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, false, fmt.Errorf("durable: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return m, false, fmt.Errorf("durable: unsupported manifest version %d", m.Version)
	}
	if len(m.Segments) == 0 {
		return m, false, fmt.Errorf("durable: manifest lists no segments")
	}
	if !slices.IsSorted(m.Segments) || len(slices.Compact(slices.Clone(m.Segments))) != len(m.Segments) {
		return m, false, fmt.Errorf("durable: manifest segments not strictly increasing: %v", m.Segments)
	}
	if last := m.Segments[len(m.Segments)-1]; m.NextSeq <= last {
		return m, false, fmt.Errorf("durable: manifest next_seq %d not above active segment %d", m.NextSeq, last)
	}
	if (m.Gen == 0) != (m.Snapshot == "") || (m.Gen == 0) != (m.Meta == "") {
		return m, false, fmt.Errorf("durable: manifest generation %d inconsistent with snapshot %q / meta %q", m.Gen, m.Snapshot, m.Meta)
	}
	return m, true, nil
}

// saveManifest commits m as dir's manifest via the fsync'd atomic-rename
// helper.
func saveManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: encoding manifest: %w", err)
	}
	return WriteFileAtomic(filepath.Join(dir, manifestName), data, 0o644)
}
