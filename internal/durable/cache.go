// Package durable is the crash-safe persistence layer behind the sampling
// client's neighbor cache: a write-ahead log of every committed fetch, a
// background compactor that folds sealed log segments into the graph
// package's binary CSR snapshot format, and recovery code that reopens the
// whole thing after any crash — including SIGKILL mid-write — with exact
// billing intact. A restarted crawl warm-starts from snapshot + WAL tail
// instead of re-querying the provider: every replayed entry is a cache hit,
// never re-billed.
//
// Layout of a cache directory:
//
//	MANIFEST.json     atomically swapped root: current snapshot generation
//	                  and the live WAL segment list
//	wal-XXXXXXXX.log  length-prefixed, CRC'd, versioned records (fetches,
//	                  speculative upgrades, tombstones, budget changes,
//	                  compaction barriers); the highest sequence number is
//	                  the active segment, earlier ones are sealed immutable
//	snap-XXXXXX.csr   compacted neighbor rows in the directed (version 2)
//	                  CSR snapshot format, mmap'd on linux
//	meta-XXXXXX.bin   billing metadata for the snapshot of the same
//	                  generation: per-entry billed/tenant/attrs plus
//	                  explicit ledger totals and budgets
//	LOCK              flock'd while a process has the cache open
//
// Recovery invariants: an append that returned success is never lost short
// of media failure (with Options.Fsync, not even then); a torn tail on the
// ACTIVE segment is truncated silently (the interrupted append was never
// acknowledged); corruption anywhere else fails the open loudly. Replay is
// idempotent — reopening without new writes reconstructs byte-identical
// state, and because the cache layer is transparent to walk trajectories,
// a resumed run continues exactly where the killed one stopped.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"rewire/internal/graph"
	"rewire/internal/osn"
)

// Options tunes a cache; the zero value is production-ready.
type Options struct {
	// SegmentBytes seals the active WAL segment once it grows past this size
	// (default 4 MiB). Smaller segments compact sooner; larger ones amortize
	// rotation cost.
	SegmentBytes int64
	// CompactSegments triggers background compaction once this many sealed
	// segments accumulate (default 4; negative disables the background
	// compactor — Compact still works when called explicitly).
	CompactSegments int
	// Fsync forces an fsync after every appended record. Off by default:
	// appends are single write syscalls, so acknowledged records survive
	// process death (the crash mode the recovery tests inject) without it;
	// turn it on to also survive kernel crashes and power loss, at a heavy
	// per-append latency cost. Segment seals, snapshots, and manifest swaps
	// are always fsync'd regardless.
	Fsync bool
	// CrashAfterAppends is a fault-injection hook for the crash tests: when
	// positive, the process SIGKILLs itself immediately after persisting
	// that many records — no deferred cleanup, no flushes, the closest
	// reproducible stand-in for power loss. Never set it in production.
	CrashAfterAppends int64
}

// Stats describes a cache's recovered and live state.
type Stats struct {
	// Entries is the number of cached users recovered at open.
	Entries int
	// Replayed is the number of WAL records replayed at open (the tail
	// beyond the last compacted snapshot).
	Replayed int
	// TornTail reports whether open truncated a torn active-segment tail.
	TornTail bool
	// Gen is the current snapshot generation (0 = nothing compacted yet).
	Gen uint64
	// Segments is the live WAL segment count (sealed + active).
	Segments int
	// Compactions counts compactions completed since open.
	Compactions int64
	// Appends counts records appended since open.
	Appends int64
}

// Cache is an open durable cache directory. It implements osn.Journal: wire
// it behind a client with Attach, which replays the recovered state into the
// client's cache and ledger and then installs the journal hook.
//
// All methods are safe for concurrent use. Exactly one process may hold a
// directory open (flock-enforced on unix).
type Cache struct {
	dir  string
	opt  Options
	lock *dirLock

	mu          sync.Mutex
	man         manifest
	f           *os.File // active segment, O_APPEND
	size        int64    // active segment size
	scratch     []byte
	closed      bool
	werr        error // sticky append failure: fail-stop
	cerr        error // last background compaction failure (surfaced by Close)
	snap        *graph.Snapshot
	oldSnaps    []*graph.Snapshot // superseded generations, kept mapped until Close (clients alias their rows)
	compacting  bool
	attached    bool
	compactions int64
	appends     int64

	// Recovered state, built at Open and handed to the client by Attach.
	seedMeta *metaState
	seedTail map[graph.NodeID][]graph.NodeID
	stats    Stats

	trigger chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

// Open opens (creating if needed) the cache directory at dir, recovers its
// state — current snapshot, replayed WAL tail, torn-tail truncation — and
// starts the background compactor. The recovered cache is inert until
// Attach wires it behind a client.
func Open(dir string, opt Options) (*Cache, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 4 << 20
	}
	if opt.CompactSegments == 0 {
		opt.CompactSegments = 4
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating cache dir: %w", err)
	}
	lock, err := acquireDirLock(filepath.Join(dir, lockName))
	if err != nil {
		return nil, err
	}
	c := &Cache{
		dir:     dir,
		opt:     opt,
		lock:    lock,
		trigger: make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if err := c.recover(); err != nil {
		lock.release()
		return nil, err
	}
	go c.compactorLoop()
	return c, nil
}

// recover loads the manifest, opens the current snapshot generation, replays
// the WAL segments on top, truncates a torn active-segment tail, prunes
// debris from interrupted compactions, and opens the active segment for
// appending.
func (c *Cache) recover() error {
	man, ok, err := loadManifest(c.dir)
	if err != nil {
		return err
	}
	if !ok {
		man = manifest{Version: manifestVersion, Segments: []uint64{1}, NextSeq: 2}
		if err := saveManifest(c.dir, man); err != nil {
			return err
		}
	}
	c.man = man

	c.seedMeta = newMetaState()
	if man.Gen > 0 {
		snap, err := graph.OpenSnapshot(filepath.Join(c.dir, man.Snapshot))
		if err != nil {
			return fmt.Errorf("durable: opening snapshot %s: %w", man.Snapshot, err)
		}
		c.snap = snap
		data, err := os.ReadFile(filepath.Join(c.dir, man.Meta))
		if err != nil {
			return fmt.Errorf("durable: reading meta %s: %w", man.Meta, err)
		}
		m, err := decodeMeta(data)
		if err != nil {
			return fmt.Errorf("durable: decoding meta %s: %w", man.Meta, err)
		}
		c.seedMeta = m
	}

	c.seedTail = make(map[graph.NodeID][]graph.NodeID)
	for i, seq := range man.Segments {
		path := filepath.Join(c.dir, segmentName(seq))
		active := i == len(man.Segments)-1
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) && active {
			// Rotation crashed between creating the file and the first
			// append, or the fresh manifest was saved before any segment
			// existed; the O_CREATE open below makes it.
			data = nil
		} else if err != nil {
			return fmt.Errorf("durable: reading segment %s: %w", segmentName(seq), err)
		}
		valid, err := replaySegment(data, active, func(r Record) error {
			c.seedMeta.apply(r)
			switch r.Type {
			case recFetch:
				c.seedTail[r.User] = r.Neighbors
			case recTombstone:
				delete(c.seedTail, r.User)
			}
			c.stats.Replayed++
			return nil
		})
		if err != nil {
			return fmt.Errorf("durable: replaying %s: %w", segmentName(seq), err)
		}
		if active && valid < int64(len(data)) {
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("durable: truncating torn tail of %s: %w", segmentName(seq), err)
			}
			c.stats.TornTail = true
		}
	}

	// Every recovered entry must have a neighbor row somewhere: in the WAL
	// tail or inside the snapshot's id range.
	for id := range c.seedMeta.entries {
		if _, ok := c.seedTail[id]; ok {
			continue
		}
		if c.snap == nil || int(id) >= c.snap.NumNodes() {
			return fmt.Errorf("%w: entry %d has no neighbor row in snapshot or WAL", ErrCorrupt, id)
		}
	}

	if err := c.pruneDebris(); err != nil {
		return err
	}

	f, err := os.OpenFile(filepath.Join(c.dir, segmentName(man.Segments[len(man.Segments)-1])), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: opening active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("durable: sizing active segment: %w", err)
	}
	c.f, c.size = f, st.Size()
	c.stats.Entries = len(c.seedMeta.entries)
	c.stats.Gen = man.Gen
	c.stats.Segments = len(man.Segments)
	return nil
}

// pruneDebris removes files a crashed compaction or rotation left behind:
// anything matching the cache's naming patterns that the manifest does not
// reference. The manifest is the authority on what is live.
func (c *Cache) pruneDebris() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("durable: scanning cache dir: %w", err)
	}
	live := map[string]bool{manifestName: true, lockName: true}
	for _, seq := range c.man.Segments {
		live[segmentName(seq)] = true
	}
	if c.man.Gen > 0 {
		live[c.man.Snapshot] = true
		live[c.man.Meta] = true
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || live[name] {
			continue
		}
		stale := strings.Contains(name, ".tmp") ||
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")) ||
			(strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".csr")) ||
			(strings.HasPrefix(name, "meta-") && strings.HasSuffix(name, ".bin"))
		if stale {
			if err := os.Remove(filepath.Join(c.dir, name)); err != nil {
				return fmt.Errorf("durable: pruning debris %s: %w", name, err)
			}
		}
	}
	return nil
}

// Attach replays the recovered state into client — cache entries, ledger
// totals, budgets — and installs the cache as its journal. The client must
// be freshly constructed: empty cache, no journal. Construction-time only,
// before the client serves queries.
//
// Replayed neighbor rows that live in the snapshot are seeded zero-copy
// (views into the mmap), which is why superseded snapshot generations stay
// mapped until Close — and why the client must not be used after it.
func (c *Cache) Attach(client *osn.Client) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("durable: attach on closed cache")
	}
	if c.attached {
		return fmt.Errorf("durable: cache already attached to a client")
	}
	if client.Journaled() {
		return fmt.Errorf("durable: client already has a journal")
	}
	if client.CacheSize() != 0 {
		return fmt.Errorf("durable: client cache not empty (%d entries)", client.CacheSize())
	}
	seeded := make(map[string]int64)
	for id, e := range c.seedMeta.entries {
		nbrs, ok := c.seedTail[id]
		if !ok {
			row, err := c.snap.Neighbors(id)
			if err != nil {
				return fmt.Errorf("durable: reading snapshot row %d: %w", id, err)
			}
			nbrs = row
		}
		client.SeedCached(id, osn.Response{User: id, Neighbors: nbrs, Attrs: e.attrs}, e.billed, e.tenant)
		if e.billed {
			seeded[e.tenant]++
		}
	}
	// The explicit ledger totals cover bills whose entries were tombstoned;
	// top each tenant up to its recorded count.
	for tenant, want := range c.seedMeta.unique {
		if d := want - seeded[tenant]; d > 0 {
			client.SeedBill(tenant, d)
		}
	}
	if c.seedMeta.budget != 0 {
		client.SetBudget(c.seedMeta.budget)
	}
	for tenant, n := range c.seedMeta.tenantBudget {
		client.SetTenantBudget(tenant, n)
	}
	client.SetJournal(c)
	c.attached = true
	// The client owns the seeded rows now; compaction re-reads segments and
	// meta from disk, so the recovery images are dead weight.
	c.seedTail = nil
	c.seedMeta = nil
	return nil
}

// RecordFetch implements osn.Journal.
func (c *Cache) RecordFetch(v graph.NodeID, resp osn.Response, billed bool, tenant string) error {
	return c.append(Record{Type: recFetch, User: v, Neighbors: resp.Neighbors, Attrs: resp.Attrs, Billed: billed, Tenant: tenant})
}

// RecordUpgrade implements osn.Journal.
func (c *Cache) RecordUpgrade(v graph.NodeID, tenant string) error {
	return c.append(Record{Type: recUpgrade, User: v, Tenant: tenant})
}

// RecordBudget implements osn.Journal.
func (c *Cache) RecordBudget(n int64) error {
	return c.append(Record{Type: recBudget, Budget: n})
}

// RecordTenantBudget implements osn.Journal.
func (c *Cache) RecordTenantBudget(tenant string, n int64) error {
	return c.append(Record{Type: recTenantBudget, Tenant: tenant, Budget: n})
}

// append frames and writes one record to the active segment, rotating and
// triggering compaction at the configured thresholds. A write failure is
// sticky: the cache fail-stops (every later append reports the first error)
// rather than risking a gap in the log.
func (c *Cache) append(r Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("durable: cache closed")
	}
	if c.werr != nil {
		return c.werr
	}
	c.scratch = encodeFrame(c.scratch[:0], r)
	if n, err := c.f.Write(c.scratch); err != nil {
		if n > 0 {
			// Keep the segment frame-aligned for the in-process reader path;
			// recovery would truncate the torn frame anyway.
			c.f.Truncate(c.size)
		}
		c.werr = fmt.Errorf("durable: wal append: %w", err)
		return c.werr
	}
	c.size += int64(len(c.scratch))
	if c.opt.Fsync {
		if err := c.f.Sync(); err != nil {
			c.werr = fmt.Errorf("durable: wal fsync: %w", err)
			return c.werr
		}
	}
	c.appends++
	c.stats.Appends++
	if c.opt.CrashAfterAppends > 0 && c.appends >= c.opt.CrashAfterAppends {
		crashSelf()
	}
	if c.size >= c.opt.SegmentBytes {
		if err := c.rotateLocked(0); err != nil {
			c.werr = err
			return c.werr
		}
		if c.opt.CompactSegments > 0 && len(c.man.Segments)-1 >= c.opt.CompactSegments {
			select {
			case c.trigger <- struct{}{}:
			default:
			}
		}
	}
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens a fresh
// one, committing the new segment list through the manifest before any
// record lands in it. barrierGen > 0 stamps the fresh segment with a
// compaction barrier record. Callers hold c.mu.
func (c *Cache) rotateLocked(barrierGen uint64) error {
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("durable: sealing segment: %w", err)
	}
	if err := c.f.Close(); err != nil {
		return fmt.Errorf("durable: sealing segment: %w", err)
	}
	seq := c.man.NextSeq
	f, err := os.OpenFile(filepath.Join(c.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: opening segment %d: %w", seq, err)
	}
	man := c.man
	man.Segments = append(append([]uint64(nil), c.man.Segments...), seq)
	man.NextSeq = seq + 1
	if err := saveManifest(c.dir, man); err != nil {
		f.Close()
		return err
	}
	c.man = man
	c.f, c.size = f, 0
	c.stats.Segments = len(man.Segments)
	if barrierGen > 0 {
		c.scratch = encodeFrame(c.scratch[:0], Record{Type: recBarrier, Gen: barrierGen})
		if _, err := c.f.Write(c.scratch); err != nil {
			return fmt.Errorf("durable: writing compaction barrier: %w", err)
		}
		c.size += int64(len(c.scratch))
	}
	return nil
}

// Dir returns the cache's directory path.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Gen = c.man.Gen
	s.Segments = len(c.man.Segments)
	s.Compactions = c.compactions
	return s
}

// Close stops the compactor, seals the active segment, releases the snapshot
// mappings and the directory lock. Cached neighbor rows seeded from the
// snapshot are views into the mappings and die with them: close the cache
// only when its client is done. Idempotent; returns the first error,
// including any background compaction failure.
func (c *Cache) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stop)
	c.mu.Unlock()
	<-c.done

	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if c.f != nil {
		keep(c.f.Sync())
		keep(c.f.Close())
		c.f = nil
	}
	if c.snap != nil {
		keep(c.snap.Close())
		c.snap = nil
	}
	for _, s := range c.oldSnaps {
		keep(s.Close())
	}
	c.oldSnaps = nil
	keep(c.cerr)
	keep(c.lock.release())
	return first
}
