//go:build unix

package durable

import (
	"fmt"
	"os"
	"syscall"
)

// dirLock is an exclusive flock on the cache directory's LOCK file: two
// processes appending to the same WAL would interleave frames and corrupt
// each other, so Open refuses to share.
type dirLock struct {
	f *os.File
}

func acquireDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: cache directory already locked by another process: %w", err)
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	// Closing the descriptor drops the flock.
	return f.Close()
}

// crashSelf is the fault-injection kill switch: SIGKILL, not panic, so no
// deferred cleanup runs — the closest reproducible stand-in for power loss.
func crashSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}
