package core

import (
	"sync"
	"testing"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

func socialGraph(t testing.TB, nodes, edges int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.Social(gen.SocialConfig{Nodes: nodes, TargetEdges: edges}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkOverlayConsistent asserts the overlay's delta accounting against a
// full materialization: removals only ever mark base edges, additions only
// non-base pairs, so the materialized edge count is exactly
// |base| - removed + added, and per-node overlay degrees agree.
func checkOverlayConsistent(t *testing.T, g *graph.Graph, ov *Overlay) {
	t.Helper()
	mat := ov.Materialize(g.NumNodes())
	want := g.NumEdges() - ov.RemovedCount() + ov.AddedCount()
	if mat.NumEdges() != want {
		t.Errorf("materialized edges = %d, want %d (= %d base - %d removed + %d added)",
			mat.NumEdges(), want, g.NumEdges(), ov.RemovedCount(), ov.AddedCount())
	}
	for _, k := range ov.RemovedEdges() {
		u, v := k.Nodes()
		if !graph.ContainsSorted(g.Neighbors(u), v) {
			t.Errorf("removed set contains non-base pair (%d,%d)", u, v)
		}
	}
	for _, k := range ov.AddedEdges() {
		u, v := k.Nodes()
		if graph.ContainsSorted(g.Neighbors(u), v) {
			t.Errorf("added set contains base edge (%d,%d)", u, v)
		}
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if ov.Degree(u) != mat.Degree(u) {
			t.Errorf("node %d: overlay degree %d != materialized degree %d", u, ov.Degree(u), mat.Degree(u))
			break
		}
	}
}

// TestOverlayConcurrentReadersWriters hammers one overlay with concurrent
// edge mutations and neighbor reads (run with -race) and then checks the
// edge-delta accounting is still exact.
func TestOverlayConcurrentReadersWriters(t *testing.T) {
	g := socialGraph(t, 400, 1600, 2)
	ov := NewOverlay(g)
	edges := g.Edges()
	n := g.NumNodes()

	var wg sync.WaitGroup
	// Writers: remove base edges, add random chords, occasionally restore.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 1500; i++ {
				switch r.Intn(3) {
				case 0:
					e := edges[r.Intn(len(edges))]
					ov.RemoveEdge(e.U, e.V)
				case 1:
					ov.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
				default:
					e := edges[r.Intn(len(edges))]
					ov.AddEdge(e.U, e.V) // restore if removed, else no-op
				}
			}
		}(uint64(w + 1))
	}
	// Readers: walk the overlay surface.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 3000; i++ {
				u := graph.NodeID(r.Intn(n))
				switch i % 3 {
				case 0:
					ov.Neighbors(u)
				case 1:
					ov.Degree(u)
				default:
					ov.HasEdge(u, graph.NodeID(r.Intn(n)))
				}
			}
		}(uint64(w + 100))
	}
	wg.Wait()
	checkOverlayConsistent(t, g, ov)
}

// TestFleetSharedOverlayConsistency runs a full MTO fleet — shared client,
// shared overlay, one goroutine per sampler — and checks both ledgers
// afterwards: the client's unique-query accounting and the overlay's
// edge-delta accounting.
func TestFleetSharedOverlayConsistency(t *testing.T) {
	g := socialGraph(t, 400, 1600, 3)
	svc := osn.NewService(g, nil, osn.Config{})
	client := osn.NewClient(svc)
	r := rng.New(7)

	const k = 8
	fleet, ov := NewFleet(client, SpreadStarts(k, g.NumNodes(), r), DefaultConfig(), r)
	samples := fleet.Samples(4000)

	if len(samples) != 4000 {
		t.Fatalf("drew %d samples, want 4000", len(samples))
	}
	for _, s := range samples {
		if s.Walker < 0 || s.Walker >= k {
			t.Fatalf("sample with out-of-range walker %d", s.Walker)
		}
	}
	if got, n := client.UniqueQueries(), int64(g.NumNodes()); got > n {
		t.Errorf("unique queries %d exceed user count %d", got, n)
	}
	if got, want := client.UniqueQueries(), svc.TotalQueries(); got != want {
		t.Errorf("client unique %d != service total %d: a duplicate slipped past the shared cache", got, want)
	}
	if int64(client.CacheSize()) != client.UniqueQueries() {
		t.Errorf("cache size %d != unique queries %d", client.CacheSize(), client.UniqueQueries())
	}
	// Rewiring happened (the sampler's whole point) and its ledger is exact.
	if ov.RemovedCount() == 0 {
		t.Error("fleet performed no removals on a clustered social graph")
	}
	// Every removal mark traces back to a member operation: plain removals
	// mark one base edge each, and each Theorem 4 replacement removes one
	// edge too (its added edge may later be cancelled, leaving the mark).
	var removalOps int64
	for _, m := range fleet.Members() {
		st := m.(*Sampler).Stats()
		removalOps += st.Removals + st.Replacements
	}
	if int64(ov.RemovedCount()) > removalOps {
		t.Errorf("overlay removed %d edges but members only performed %d removal-capable ops", ov.RemovedCount(), removalOps)
	}
	checkOverlayConsistent(t, g, ov)
}

// TestFleetMatchesSequentialBudget checks the fleet does the same *kind* of
// work as the sequential round-robin baseline: on the same graph with the
// same member count and sample budget, both stay within the unique-query
// ceiling (the node count) and both discover a rewired overlay.
func TestFleetMatchesSequentialBudget(t *testing.T) {
	g := socialGraph(t, 300, 1200, 4)
	starts := SpreadStarts(4, g.NumNodes(), rng.New(9))
	const budget = 2000

	svcSeq := osn.NewService(g, nil, osn.Config{})
	clientSeq := osn.NewClient(svcSeq)
	p, ovSeq := NewParallelSamplers(clientSeq, starts, DefaultConfig(), rng.New(11))
	walk.Run(p, budget)

	svcFl := osn.NewService(g, nil, osn.Config{})
	clientFl := osn.NewClient(svcFl)
	f, ovFl := NewFleet(clientFl, starts, DefaultConfig(), rng.New(11))
	f.Samples(budget)

	n := int64(g.NumNodes())
	if clientSeq.UniqueQueries() > n || clientFl.UniqueQueries() > n {
		t.Errorf("unique queries exceed node count: seq %d, fleet %d, n %d",
			clientSeq.UniqueQueries(), clientFl.UniqueQueries(), n)
	}
	if ovSeq.RemovedCount() == 0 || ovFl.RemovedCount() == 0 {
		t.Errorf("expected rewiring in both modes: seq removed %d, fleet removed %d",
			ovSeq.RemovedCount(), ovFl.RemovedCount())
	}
	checkOverlayConsistent(t, g, ovSeq)
	checkOverlayConsistent(t, g, ovFl)
}
