package core

import (
	"testing"

	"rewire/internal/gen"
	"rewire/internal/rng"
	"rewire/internal/spectral"
)

func TestBuildOverlayBarbellRunningExample(t *testing.T) {
	// Offline construction of the running example's G* and G**.
	g := gen.Barbell(11)
	phi0, _, err := spectral.ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if phi0 < 0.017 || phi0 > 0.019 {
		t.Fatalf("Φ(G) = %v, want ≈0.018", phi0)
	}
	gStar, st := BuildOverlay(g, BuildOptions{Removal: true}, rng.New(1))
	if !gStar.IsConnected() {
		t.Fatal("G* disconnected")
	}
	if st.Removed == 0 {
		t.Fatal("no removals on the barbell")
	}
	phiStar, _, err := spectral.ExactConductance(gStar)
	if err != nil {
		t.Fatal(err)
	}
	if phiStar <= phi0 {
		t.Errorf("Φ(G*) = %v not above Φ(G) = %v", phiStar, phi0)
	}
	// The paper reports 0.053; the sequential construction is order-
	// dependent, so accept the shape: at least a 2x conductance gain.
	if phiStar < 2*phi0 {
		t.Errorf("Φ(G*) = %v, want >= 2*Φ(G) = %v", phiStar, 2*phi0)
	}

	gBoth, st2 := BuildOverlay(g, BuildOptions{Removal: true, Replacement: true}, rng.New(1))
	if !gBoth.IsConnected() {
		t.Fatal("G** disconnected")
	}
	if st2.Replacements == 0 {
		t.Error("no replacements after aggressive removal (degree-3 pivots should exist)")
	}
	phiBoth, _, err := spectral.ExactConductance(gBoth)
	if err != nil {
		t.Fatal(err)
	}
	if phiBoth <= phi0 {
		t.Errorf("Φ(G**) = %v not above Φ(G) = %v", phiBoth, phi0)
	}
}

func TestBuildOverlayEvalOverlayConservative(t *testing.T) {
	g := gen.Barbell(11)
	cons, stCons := BuildOverlay(g, BuildOptions{Removal: true, Criterion: EvalOverlay}, rng.New(2))
	aggr, stAggr := BuildOverlay(g, BuildOptions{Removal: true, Criterion: EvalOriginal}, rng.New(2))
	if stCons.Removed >= stAggr.Removed {
		t.Errorf("conservative removed %d, aggressive %d: expected conservative < aggressive",
			stCons.Removed, stAggr.Removed)
	}
	if !cons.IsConnected() || !aggr.IsConnected() {
		t.Error("overlays must stay connected")
	}
	// Conservative mode never decreases conductance (each removal is
	// certified against the current graph).
	phi0, _, _ := spectral.ExactConductance(g)
	phiCons, _, err := spectral.ExactConductance(cons)
	if err != nil {
		t.Fatal(err)
	}
	if phiCons < phi0-1e-12 {
		t.Errorf("conservative overlay conductance %v below original %v", phiCons, phi0)
	}
}

func TestBuildOverlayConductanceNeverDecreasesProperty(t *testing.T) {
	// Conservative (EvalOverlay) removals: the overlay conductance must not
	// drop below the original *in the paper's stated regime* — graphs whose
	// optimal cut has few cross-cutting edges relative to the side volumes
	// (Theorem 3's proof explicitly assumes this; on dense expander-like
	// graphs, e.g. G(12, 0.4), small decreases genuinely occur and the
	// assumption is void). Planted partitions are the canonical instance of
	// the intended regime.
	r := rng.New(41)
	for trial := 0; trial < 12; trial++ {
		g := gen.Connect(gen.PlantedPartition(2, 8, 0.75, 0.04, r), r)
		if g.NumEdges() < 10 {
			continue
		}
		phi0, _, err := spectral.ExactConductance(g)
		if err != nil {
			continue
		}
		ov, _ := BuildOverlay(g, BuildOptions{Removal: true, Criterion: EvalOverlay}, r)
		phi1, _, err := spectral.ExactConductance(ov)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if phi1 < phi0-1e-12 {
			t.Errorf("trial %d: conductance dropped %v -> %v", trial, phi0, phi1)
		}
		if !ov.IsConnected() {
			t.Errorf("trial %d: overlay disconnected", trial)
		}
	}
}

func TestBuildOverlayDenseRegimeCaveat(t *testing.T) {
	// Documented limitation: outside the
	// paper's few-cross-cutting-edges assumption the conservative removal
	// can reduce conductance slightly. Pin the known counterexample so the
	// behaviour is tracked rather than silently relied upon.
	r := rng.New(41)
	var worst float64 = 1
	for trial := 0; trial < 10; trial++ {
		g := gen.Connect(gen.GNP(12, 0.4, r), r)
		phi0, _, err := spectral.ExactConductance(g)
		if err != nil {
			continue
		}
		ov, _ := BuildOverlay(g, BuildOptions{Removal: true, Criterion: EvalOverlay}, r)
		phi1, _, err := spectral.ExactConductance(ov)
		if err != nil {
			continue
		}
		if ratio := phi1 / phi0; ratio < worst {
			worst = ratio
		}
	}
	// Decreases exist but stay mild (within ~15% on this family).
	if worst < 0.85 {
		t.Errorf("dense-regime conductance ratio %v fell below the documented bound", worst)
	}
}

func TestBuildOverlayReplacementOnStar(t *testing.T) {
	// K1,3: hub has degree 3 and no leaf-leaf edges; exactly one
	// replacement is possible.
	g := gen.Star(4)
	ov, st := BuildOverlay(g, BuildOptions{Replacement: true}, rng.New(3))
	if st.Replacements != 1 {
		t.Fatalf("replacements = %d, want 1", st.Replacements)
	}
	if ov.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3 (replacement preserves count)", ov.NumEdges())
	}
	if !ov.IsConnected() {
		t.Error("replacement disconnected the star")
	}
	// Hub degree dropped to 2; no further pivots of degree 3.
	if ov.Degree(0) != 2 {
		t.Errorf("hub degree = %d, want 2", ov.Degree(0))
	}
}

func TestBuildOverlayReplacementSkipsK4(t *testing.T) {
	g := gen.Complete(4)
	ov, st := BuildOverlay(g, BuildOptions{Replacement: true}, rng.New(4))
	if st.Replacements != 0 {
		t.Errorf("replacements on K4 = %d, want 0", st.Replacements)
	}
	if ov.NumEdges() != 6 {
		t.Errorf("K4 modified: %d edges", ov.NumEdges())
	}
}

func TestBuildOverlayK2Guard(t *testing.T) {
	// A lone edge satisfies the raw criterion but must never be removed.
	g := gen.Path(2)
	ov, st := BuildOverlay(g, BuildOptions{Removal: true}, rng.New(5))
	if st.Removed != 0 || ov.NumEdges() != 1 {
		t.Errorf("K2 was modified: removed=%d edges=%d", st.Removed, ov.NumEdges())
	}
}

func TestBuildOverlayExtendedDegrees(t *testing.T) {
	// Theorem 5 with full knowledge removes at least as much as Theorem 3
	// on graphs with low-degree common neighbors.
	g := gen.EpinionsLikeSmall(5)
	_, st3 := BuildOverlay(g, BuildOptions{Removal: true}, rng.New(6))
	_, st5 := BuildOverlay(g, BuildOptions{Removal: true, ExtendedDegrees: true}, rng.New(6))
	if st5.Removed < st3.Removed {
		t.Errorf("extended removals %d < plain %d", st5.Removed, st3.Removed)
	}
}

func TestBuildOverlayDeterministic(t *testing.T) {
	g := gen.EpinionsLikeSmall(8)
	a, stA := BuildOverlay(g, BuildOptions{Removal: true, Replacement: true}, rng.New(9))
	b, stB := BuildOverlay(g, BuildOptions{Removal: true, Replacement: true}, rng.New(9))
	if stA != stB {
		t.Fatalf("stats differ: %+v vs %+v", stA, stB)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v differs between builds", e)
		}
	}
}
