package core

import (
	"sort"

	"rewire/internal/graph"
	"rewire/internal/rng"
)

// BuildOptions controls offline overlay construction on a fully known
// graph — the mode used for the paper's spectral measurements (running
// example G* and G**, Fig 10) where the walk-discovered overlay is
// approximated by applying the theorems to every edge directly.
type BuildOptions struct {
	// Removal applies Theorem 3 (or 5, see ExtendedDegrees) edge removal.
	Removal bool
	// Replacement applies Theorem 4 degree-3 pivot replacement.
	Replacement bool
	// ExtendedDegrees applies Theorem 5 with full degree knowledge (offline
	// we know every degree "for free").
	ExtendedDegrees bool
	// Criterion selects the evaluation base, as in Config.Criterion:
	// EvalOriginal (default) tests edges against the input graph with
	// connectivity guards on the evolving overlay; EvalOverlay re-tests
	// against the current overlay each sweep.
	Criterion CriterionBase
	// MaxPasses bounds removal sweeps; a sweep that removes nothing stops
	// early. Default 8.
	MaxPasses int
}

// BuildStats reports what the builder did.
type BuildStats struct {
	Removed      int
	Replacements int
	Passes       int
}

// mutableGraph is adjacency-set form for efficient edge deletion.
type mutableGraph struct {
	adj []map[graph.NodeID]struct{}
}

func newMutable(g *graph.Graph) *mutableGraph {
	m := &mutableGraph{adj: make([]map[graph.NodeID]struct{}, g.NumNodes())}
	for u := 0; u < g.NumNodes(); u++ {
		set := make(map[graph.NodeID]struct{}, g.Degree(graph.NodeID(u)))
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			set[v] = struct{}{}
		}
		m.adj[u] = set
	}
	return m
}

func (m *mutableGraph) degree(u graph.NodeID) int { return len(m.adj[u]) }

func (m *mutableGraph) hasEdge(u, v graph.NodeID) bool {
	_, ok := m.adj[u][v]
	return ok
}

func (m *mutableGraph) removeEdge(u, v graph.NodeID) {
	delete(m.adj[u], v)
	delete(m.adj[v], u)
}

func (m *mutableGraph) addEdge(u, v graph.NodeID) {
	m.adj[u][v] = struct{}{}
	m.adj[v][u] = struct{}{}
}

func (m *mutableGraph) commonCount(u, v graph.NodeID) int {
	a, b := m.adj[u], m.adj[v]
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for w := range a {
		if _, ok := b[w]; ok {
			n++
		}
	}
	return n
}

// commonWith lists common neighbors, sorted. Today's consumers (the
// Theorem 3/5 criteria) only count and sum over the list, but collecting
// from a map range must not bake iteration order into anything a future
// caller might branch on — sorting keeps the helper seed-deterministic by
// construction.
func (m *mutableGraph) commonWith(u, v graph.NodeID) []graph.NodeID {
	a, b := m.adj[u], m.adj[v]
	if len(b) < len(a) {
		a, b = b, a
	}
	var out []graph.NodeID
	for w := range a {
		if _, ok := b[w]; ok {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *mutableGraph) build() *graph.Graph {
	b := graph.NewBuilder(len(m.adj))
	for u := range m.adj {
		for v := range m.adj[u] {
			if graph.NodeID(u) < v {
				b.AddEdge(graph.NodeID(u), v)
			}
		}
	}
	return b.Build()
}

// fullDegreeCache serves Theorem 5 with complete current-degree knowledge.
type fullDegreeCache struct{ m *mutableGraph }

func (c fullDegreeCache) CachedDegree(v graph.NodeID) (int, bool) {
	return c.m.degree(v), true
}

// originalDegreeCache serves Theorem 5 with input-graph degrees (the
// EvalOriginal path).
type originalDegreeCache struct{ g *graph.Graph }

func (c originalDegreeCache) CachedDegree(v graph.NodeID) (int, bool) {
	return c.g.Degree(v), true
}

// BuildOverlay constructs the overlay graph G* (and with Replacement, G**)
// from a fully known graph. Removal sweeps visit edges in seeded random
// order and re-test against the *current* overlay (the criterion must track
// the evolving topology — on the original barbell it would fire for every
// clique edge); sweeps repeat until a fixpoint or MaxPasses. Replacement
// then makes one Theorem 4 move per degree-3 pivot where possible.
//
// The result is order-dependent (so is the paper's walk); pass a seeded rng
// for reproducibility.
func BuildOverlay(g *graph.Graph, opt BuildOptions, r *rng.Rand) (*graph.Graph, BuildStats) {
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 8
	}
	m := newMutable(g)
	var stats BuildStats
	var cache DegreeCache
	if opt.ExtendedDegrees {
		cache = fullDegreeCache{m}
	}

	if opt.Removal {
		edges := g.Edges()
		order := r.Perm(len(edges))
		for pass := 0; pass < opt.MaxPasses; pass++ {
			stats.Passes++
			removedThisPass := 0
			for _, i := range order {
				e := edges[i]
				if !m.hasEdge(e.U, e.V) {
					continue
				}
				ku, kv := m.degree(e.U), m.degree(e.V)
				if ku <= 1 || kv <= 1 {
					continue // stranding guard
				}
				var fires bool
				if opt.Criterion == EvalOverlay {
					fires = Removable(m.commonWith(e.U, e.V), ku, kv, cache)
				} else {
					// Static criterion on the input graph; connectivity
					// guard on the evolving overlay.
					if m.commonCount(e.U, e.V) < 1 {
						continue
					}
					var origCache DegreeCache
					if opt.ExtendedDegrees {
						origCache = originalDegreeCache{g}
					}
					fires = Removable(g.CommonNeighbors(e.U, e.V), g.Degree(e.U), g.Degree(e.V), origCache)
				}
				if fires {
					m.removeEdge(e.U, e.V)
					removedThisPass++
				}
			}
			stats.Removed += removedThisPass
			if removedThisPass == 0 {
				break
			}
		}
	}

	if opt.Replacement {
		pivots := r.Perm(g.NumNodes())
		for _, pi := range pivots {
			p := graph.NodeID(pi)
			if !ReplaceablePivot(m.degree(p)) {
				continue
			}
			nbrs := make([]graph.NodeID, 0, 3)
			for w := range m.adj[p] {
				nbrs = append(nbrs, w)
			}
			sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
			// Random (x, y) pair with e(x,y) absent: replace e(x,p) by e(x,y).
			perm := r.Perm(len(nbrs))
			done := false
			for _, xi := range perm {
				if done {
					break
				}
				x := nbrs[xi]
				for _, yi := range perm {
					y := nbrs[yi]
					if x == y || m.hasEdge(x, y) {
						continue
					}
					m.removeEdge(x, p)
					m.addEdge(x, y)
					stats.Replacements++
					done = true
					break
				}
			}
		}
	}

	return m.build(), stats
}
