package core

import (
	"testing"
	"time"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// runMTO advances one MTO sampler for steps steps over a fresh service and
// returns its trajectory plus the client/service for inspection.
func runMTO(t *testing.T, g *graph.Graph, cfg Config, seed uint64, steps int,
	pf *osn.PrefetchConfig) ([]graph.NodeID, *osn.Client, *osn.Service) {
	t.Helper()
	svc := osn.NewService(g, nil, osn.Config{RealLatency: 20 * time.Microsecond})
	var client *osn.Client
	if pf != nil {
		client = osn.NewPrefetchingClient(svc, *pf)
	} else {
		client = osn.NewClient(svc)
	}
	s := NewSampler(client, 0, cfg, rng.New(seed))
	traj := walk.Run(s, steps)
	client.StopPrefetch()
	return traj, client, svc
}

// TestSamplerPrefetchInvariant checks the MTO pivot-candidate prefetch is
// semantically invisible: same trajectory, same rewiring, same unique-query
// bill as the plain sampler on the same seed — while the provider records
// that speculative round-trips really happened. This covers the Theorem 5
// interaction too: speculative entries must not leak into CachedDegree, or
// removal verdicts (and with them the walk) would silently change.
func TestSamplerPrefetchInvariant(t *testing.T) {
	g, err := gen.Social(gen.SocialConfig{Nodes: 400, TargetEdges: 1600}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	const steps = 1500
	plainCfg := DefaultConfig()
	trajPlain, cPlain, svcPlain := runMTO(t, g, plainCfg, 9, steps, nil)

	specCfg := DefaultConfig()
	specCfg.Prefetch = true
	pool := osn.PrefetchConfig{Workers: 16, Depth: 1, Queue: 4096}
	trajSpec, cSpec, svcSpec := runMTO(t, g, specCfg, 9, steps, &pool)

	for i := range trajPlain {
		if trajPlain[i] != trajSpec[i] {
			t.Fatalf("trajectory diverged at step %d: %d vs %d — prefetch must be invisible",
				i, trajPlain[i], trajSpec[i])
		}
	}
	if cPlain.UniqueQueries() != cSpec.UniqueQueries() {
		t.Errorf("UniqueQueries differ: %d plain vs %d prefetching",
			cPlain.UniqueQueries(), cSpec.UniqueQueries())
	}
	if svcSpec.TotalQueries() <= svcPlain.TotalQueries() {
		t.Errorf("service round-trips %d with prefetch vs %d without — expected real speculation",
			svcSpec.TotalQueries(), svcPlain.TotalQueries())
	}
	if stats := cSpec.PrefetchStats(); stats.Fetched == 0 {
		t.Error("prefetch pool fetched nothing — hints never reached the client")
	}
}

// TestSamplerPrefetchDisabledWithoutCapability checks a Prefetch-enabled
// config over a plain local graph degrades cleanly: no pf, no hints, no
// behavior change.
func TestSamplerPrefetchDisabledWithoutCapability(t *testing.T) {
	g, err := gen.Social(gen.SocialConfig{Nodes: 200, TargetEdges: 800}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Prefetch = true
	s := NewSampler(g, 0, cfg, rng.New(1))
	if s.pf != nil {
		t.Fatal("sampler acquired a prefetch source from a local graph")
	}
	plain := NewSampler(g, 0, DefaultConfig(), rng.New(1))
	for i := 0; i < 500; i++ {
		if a, b := s.Step(), plain.Step(); a != b {
			t.Fatalf("step %d diverged: %d vs %d", i, a, b)
		}
	}
}
