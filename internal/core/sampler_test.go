package core

import (
	"testing"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/spectral"
	"rewire/internal/stats"
	"rewire/internal/walk"
)

func TestSamplerImprovesBarbellConductance(t *testing.T) {
	// The running example (§II–III): rewiring must raise the barbell's
	// conductance. Paper: 0.018 -> 0.053 (removal) -> 0.105 (both).
	g := gen.Barbell(11)
	phi0, _, err := spectral.ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	improvedRM, improvedBoth := 0, 0
	const trials = 5
	for seed := uint64(1); seed <= trials; seed++ {
		s := NewSampler(g, 0, RemovalOnlyConfig(), rng.New(seed))
		if _, ok := WalkToCoverage(s, g.NumNodes(), 100000); !ok {
			t.Fatalf("seed %d: no coverage", seed)
		}
		ovRM := s.Overlay().Materialize(g.NumNodes())
		if !ovRM.IsConnected() {
			t.Fatalf("seed %d: removal disconnected the overlay", seed)
		}
		phiRM, _, err := spectral.ExactConductance(ovRM)
		if err != nil {
			t.Fatal(err)
		}
		if phiRM > phi0 {
			improvedRM++
		}

		s2 := NewSampler(g, 0, DefaultConfig(), rng.New(seed))
		if _, ok := WalkToCoverage(s2, g.NumNodes(), 100000); !ok {
			t.Fatalf("seed %d: no coverage (both)", seed)
		}
		ovBoth := s2.Overlay().Materialize(g.NumNodes())
		if !ovBoth.IsConnected() {
			t.Fatalf("seed %d: rewiring disconnected the overlay", seed)
		}
		phiBoth, _, err := spectral.ExactConductance(ovBoth)
		if err != nil {
			t.Fatal(err)
		}
		if phiBoth > phi0 {
			improvedBoth++
		}
	}
	if improvedRM != trials {
		t.Errorf("removal improved conductance in %d/%d trials", improvedRM, trials)
	}
	if improvedBoth != trials {
		t.Errorf("full MTO improved conductance in %d/%d trials", improvedBoth, trials)
	}
}

func TestSamplerRemovesAggressivelyUnderEvalOriginal(t *testing.T) {
	g := gen.Barbell(11)
	run := func(cb CriterionBase) int64 {
		cfg := RemovalOnlyConfig()
		cfg.Criterion = cb
		s := NewSampler(g, 0, cfg, rng.New(3))
		WalkToCoverage(s, g.NumNodes(), 100000)
		return s.Stats().Removals
	}
	orig := run(EvalOriginal)
	ovl := run(EvalOverlay)
	if orig <= ovl {
		t.Errorf("EvalOriginal removals %d should exceed EvalOverlay %d", orig, ovl)
	}
	// On the barbell the aggressive mode thins each clique hard.
	if orig < 50 {
		t.Errorf("EvalOriginal removed only %d edges", orig)
	}
}

func TestSamplerNeverStrandsNodes(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.EpinionsLikeSmall(seed)
		s := NewSampler(g, 0, DefaultConfig(), rng.New(seed))
		for i := 0; i < 20000; i++ {
			s.Step()
		}
		ov := s.Overlay().Materialize(g.NumNodes())
		if ov.MinDegree() < 1 {
			t.Fatalf("seed %d: rewiring stranded a node", seed)
		}
		if !ov.IsConnected() {
			t.Fatalf("seed %d: rewiring disconnected the graph", seed)
		}
	}
}

func TestSamplerStationaryMatchesOverlayDegrees(t *testing.T) {
	// After the topology stabilizes, the MTO walk is an SRW on the overlay,
	// so visits should be proportional to overlay degree.
	g := gen.Barbell(8)
	cfg := RemovalOnlyConfig() // replacements keep mutating forever; focus on RM
	s := NewSampler(g, 0, cfg, rng.New(5))
	WalkToCoverage(s, g.NumNodes(), 50000)
	// Burn a while so remaining removals happen.
	for i := 0; i < 50000; i++ {
		s.Step()
	}
	ov := s.Overlay().Materialize(g.NumNodes())
	h := stats.NewCountHistogram(g.NumNodes())
	for i := 0; i < 400000; i++ {
		h.Observe(int(s.Step()))
	}
	want := make([]float64, g.NumNodes())
	for u := range want {
		want[u] = float64(ov.Degree(graph.NodeID(u)))
	}
	if tv, err := stats.TotalVariation(h.Distribution(), want); err != nil || tv > 0.03 {
		t.Errorf("TV distance from overlay-degree distribution = %v", tv)
	}
}

func TestSamplerQueryCostBounded(t *testing.T) {
	g := gen.EpinionsLikeSmall(7)
	svc := osn.NewService(g, nil, osn.Config{})
	client := osn.NewClient(svc)
	s := NewSampler(client, 0, DefaultConfig(), rng.New(7))
	for i := 0; i < 5000; i++ {
		s.Step()
	}
	if client.UniqueQueries() > int64(g.NumNodes()) {
		t.Errorf("unique queries %d exceed node count %d", client.UniqueQueries(), g.NumNodes())
	}
	if client.UniqueQueries() == 0 {
		t.Error("no queries issued")
	}
}

func TestSamplerTheorem5UsesClientCache(t *testing.T) {
	// A configuration only the extension can crack: u=0 and v=1 share the
	// degree-2 common neighbors w1=2 and w2=3 and have degree 5 each.
	// Theorem 3 on (0,1): 2*(⌈2/2⌉+1) = 4 > 5 fails. Theorem 5 once w1, w2
	// are cached: 2 + (4-2)+(4-2) = 6 > 5 fires. No other edge in the graph
	// is removable at all, so the removal counter isolates the extension.
	g := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3},
		{U: 0, V: 4}, {U: 0, V: 5}, {U: 1, V: 6}, {U: 1, V: 7},
	})
	run := func(useExt bool) (int64, bool) {
		svc := osn.NewService(g, nil, osn.Config{})
		client := osn.NewClient(svc)
		cfg := RemovalOnlyConfig()
		cfg.UseExtended = useExt
		s := NewSampler(client, 2, cfg, rng.New(11))
		for i := 0; i < 3000; i++ {
			s.Step()
		}
		return s.Stats().Removals, s.Overlay().Removed(0, 1)
	}
	removals, gone := run(true)
	if removals != 1 || !gone {
		t.Errorf("with extension: removals=%d removed(0,1)=%v, want 1/true", removals, gone)
	}
	if removals, gone := run(false); removals != 0 || gone {
		t.Errorf("without extension: removals=%d removed(0,1)=%v, want 0/false", removals, gone)
	}
}

func TestReplacementMechanics(t *testing.T) {
	// A 3-star: hub 0 with leaves 1,2,3 — every walk position at a leaf sees
	// pivot 0 with degree 3 and two replacement options. Replacement should
	// fire quickly and create a leaf-leaf edge.
	g := gen.Star(4)
	cfg := DefaultConfig()
	cfg.EnableRemoval = false
	s := NewSampler(g, 1, cfg, rng.New(13))
	for i := 0; i < 100 && s.Stats().Replacements == 0; i++ {
		s.Step()
	}
	if s.Stats().Replacements == 0 {
		t.Fatal("no replacement on a 3-star in 100 steps")
	}
	ov := s.Overlay().Materialize(g.NumNodes())
	if ov.NumEdges() != 3 {
		t.Errorf("replacement changed edge count: %d", ov.NumEdges())
	}
	if !ov.IsConnected() {
		t.Error("replacement disconnected the star")
	}
}

func TestReplacementSkipsExistingEdges(t *testing.T) {
	// K4: every node has degree 3, but all candidate edges already exist,
	// so no replacement is licensed and the topology must stay K4.
	g := gen.Complete(4)
	cfg := DefaultConfig()
	cfg.EnableRemoval = false
	s := NewSampler(g, 0, cfg, rng.New(17))
	for i := 0; i < 2000; i++ {
		s.Step()
	}
	if s.Stats().Replacements != 0 {
		t.Errorf("replacements on K4 = %d, want 0", s.Stats().Replacements)
	}
}

func TestWeightModes(t *testing.T) {
	g := gen.Barbell(8)
	for _, mode := range []WeightMode{WeightOverlayDegree, WeightExact, WeightSampled} {
		cfg := RemovalOnlyConfig()
		cfg.Weights = mode
		s := NewSampler(g, 0, cfg, rng.New(19))
		WalkToCoverage(s, g.NumNodes(), 50000)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			w := s.StationaryWeight(v)
			if w < 1 {
				t.Errorf("mode %v node %d: weight %v < 1", mode, v, w)
			}
			if w > float64(g.Degree(v)) {
				t.Errorf("mode %v node %d: weight %v exceeds base degree %d", mode, v, w, g.Degree(v))
			}
		}
	}
}

func TestWeightExactMatchesMaterializedDegree(t *testing.T) {
	g := gen.Barbell(8)
	cfg := RemovalOnlyConfig()
	cfg.Weights = WeightExact
	s := NewSampler(g, 0, cfg, rng.New(23))
	WalkToCoverage(s, g.NumNodes(), 50000)
	// Exact classification removes whatever is removable right now, so a
	// second call must agree with the materialized overlay.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		s.StationaryWeight(v) // classification pass
	}
	ov := s.Overlay().Materialize(g.NumNodes())
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if got := s.StationaryWeight(v); got != float64(ov.Degree(v)) {
			t.Errorf("node %d: exact weight %v vs overlay degree %d", v, got, ov.Degree(v))
		}
	}
}

func TestWalkToCoverage(t *testing.T) {
	g := gen.Cycle(30)
	s := NewSampler(g, 0, DefaultConfig(), rng.New(29))
	visited, ok := WalkToCoverage(s, g.NumNodes(), 100000)
	if !ok || visited != 30 {
		t.Errorf("coverage = %d/%v", visited, ok)
	}
	s2 := NewSampler(g, 0, DefaultConfig(), rng.New(29))
	if _, ok := WalkToCoverage(s2, g.NumNodes(), 3); ok {
		t.Error("3 steps cannot cover a 30-cycle")
	}
}

func TestSamplerIsolatedStart(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 1, V: 2}})
	s := NewSampler(g, 0, DefaultConfig(), rng.New(31))
	if got := s.Step(); got != 0 {
		t.Errorf("isolated start moved to %d", got)
	}
}

func TestSamplerInterfaceCompliance(t *testing.T) {
	var _ walk.Walker = (*Sampler)(nil)
	var _ walk.Weighter = (*Sampler)(nil)
	var _ walk.Source = (*Overlay)(nil)
}
