package core

import (
	"rewire/internal/graph"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// NewFleet builds one MTO sampler per start, all sharing a single overlay
// over src, and wraps them in a walk.Fleet: k goroutines, one rewired
// topology, one query budget. src must be safe for concurrent use
// (osn.Client and *graph.Graph both are). Each member gets its own RNG
// stream split from r, so runs are reproducible up to goroutine
// interleaving. The shared overlay is returned for post-run inspection
// (Materialize, RemovedCount, ...).
func NewFleet(src walk.Source, starts []graph.NodeID, cfg Config, r *rng.Rand) (*walk.Fleet, *Overlay) {
	members, ov := samplersOn(src, starts, cfg, r)
	return walk.NewFleet(members...), ov
}

// NewParallelSamplers builds the same shared-overlay MTO samplers as
// NewFleet but wraps them in the sequential round-robin walk.Parallel — the
// single-goroutine baseline a Fleet should beat on multicore hardware while
// doing the identical sampling work.
func NewParallelSamplers(src walk.Source, starts []graph.NodeID, cfg Config, r *rng.Rand) (*walk.Parallel, *Overlay) {
	members, ov := samplersOn(src, starts, cfg, r)
	return walk.NewParallel(members...), ov
}

func samplersOn(src walk.Source, starts []graph.NodeID, cfg Config, r *rng.Rand) ([]walk.Walker, *Overlay) {
	ov := NewOverlay(src)
	members := make([]walk.Walker, len(starts))
	for i, s := range starts {
		members[i] = NewSamplerOn(ov, s, cfg, r.Split())
	}
	return members, ov
}

// SpreadStarts picks k distinct start nodes spread uniformly over an n-node
// ID space (distinct as long as k <= n), the recommended fleet seeding: the
// whole point of many walks is to begin in many places.
func SpreadStarts(k, n int, r *rng.Rand) []graph.NodeID {
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	starts := make([]graph.NodeID, k)
	for i := range starts {
		starts[i] = graph.NodeID(perm[i])
	}
	return starts
}
