package core

import (
	"rewire/internal/graph"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// WeightMode selects how StationaryWeight obtains the overlay degree k*(v)
// that unbiases MTO samples (paper §IV-A: τ*(u) = k*_u / 2|E*|).
type WeightMode int

const (
	// WeightOverlayDegree uses the current overlay degree — free, and exact
	// once the walk has classified the edges around v.
	WeightOverlayDegree WeightMode = iota
	// WeightExact classifies every incident edge of v on demand (queries
	// all neighbors) before reporting the degree.
	WeightExact
	// WeightSampled estimates k*(v) from a random sample of v's incident
	// edges — the paper's "draw simple random sample from u's neighbors in
	// G*" suggestion. Sample size is Config.DegreeSample.
	WeightSampled
)

// CriterionBase selects which neighborhoods the removal criterion is
// evaluated against. The paper's Theorems 3/5 are stated as static
// properties of the original graph G, and Algorithm 1 tests edges with the
// neighborhoods the queries return — i.e., original lists (EvalOriginal).
// Evaluated inductively against the evolving overlay instead (EvalOverlay),
// each removal is individually conductance-safe on the current graph, but
// the process reaches a much denser fixpoint (on the barbell running
// example: Φ* ≈ 0.022 versus ≈ 0.05–0.07 for EvalOriginal, the paper
// reporting 0.053). The criterion ablation benchmarks in bench_test.go
// quantify both; EvalOriginal is the default because it reproduces the
// paper's magnitudes.
type CriterionBase int

const (
	// EvalOriginal tests the criterion on original (queried) neighborhoods.
	// Removals are guarded: both endpoints keep overlay degree >= 2 and at
	// least one common overlay neighbor, so the overlay stays connected.
	EvalOriginal CriterionBase = iota
	// EvalOverlay tests the criterion on current overlay neighborhoods.
	EvalOverlay
)

// Config tunes the MTO-Sampler. The zero value is NOT valid; use
// DefaultConfig and adjust.
type Config struct {
	// EnableRemoval switches Theorem 3/5 edge removal.
	EnableRemoval bool
	// EnableReplacement switches Theorem 4 degree-3 replacement.
	EnableReplacement bool
	// UseExtended applies Theorem 5 using free cached degree knowledge when
	// the source exposes it (osn.Client does); otherwise the test silently
	// degenerates to Theorem 3.
	UseExtended bool
	// Criterion selects the evaluation base for the removal test.
	Criterion CriterionBase
	// LazyProb is Algorithm 1's "rand(0,1) < 1/2" move probability per
	// inner iteration; the complement re-picks a neighbor (possibly after
	// more topology edits).
	LazyProb float64
	// ReplaceProb is the probability of performing the replacement when a
	// degree-3 pivot is encountered (Algorithm 1's "choose to replace").
	ReplaceProb float64
	// PivotOnce limits each pivot node to a single Theorem 4 replacement
	// (default true). Heavy-tailed social graphs are full of degree-3
	// users; without the bound the walk rewires forever, its stationary
	// distribution never settles, and the Geweke indicator (rightly)
	// refuses to fire. One replacement per pivot keeps total rewiring
	// O(|V|) so the chain is asymptotically stationary. The used-pivot set
	// lives on the overlay, so the bound holds across every sampler
	// sharing it (a fleet), not per member.
	PivotOnce bool
	// MaxInner caps inner re-pick iterations per Step as a safety valve.
	MaxInner int
	// DegreeFloor keeps every node's overlay degree at or above
	// ⌈DegreeFloor · original degree⌉ (at least 2): iterated removal would
	// otherwise drain dense pockets into bipartite trees whose SRW never
	// mixes. 0.3 keeps the barbell overlay at the paper's reported G*
	// density; 0 disables the floor (Algorithm 1 verbatim, which only
	// guards |N(u)| >= 1).
	DegreeFloor float64
	// Weights selects the importance-weight computation.
	Weights WeightMode
	// DegreeSample is the incident-edge sample size for WeightSampled.
	DegreeSample int
	// Prefetch issues non-blocking speculative fetch hints when the source
	// supports them (an osn.Client with a running prefetch pool behind the
	// overlay): on arrival the current node's overlay neighbors — the inner
	// loop's re-pick candidate set — and on meeting a degree-3 pivot the
	// pivot's neighbor list, i.e. the Theorem 4 replacement targets, so
	// stepping onto a redirected edge finds its round-trip already in
	// flight. Speculative responses stay invisible to the cost ledger and to
	// the Theorem 5 degree cache until a demand query consumes them, so
	// enabling this changes neither trajectories nor UniqueQueries — only
	// wall-clock.
	Prefetch bool
}

// DefaultConfig returns the paper's configuration: both operations on,
// extension on, lazy and replacement probabilities 1/2.
func DefaultConfig() Config {
	return Config{
		EnableRemoval:     true,
		EnableReplacement: true,
		UseExtended:       true,
		LazyProb:          0.5,
		ReplaceProb:       0.5,
		PivotOnce:         true,
		MaxInner:          64,
		Weights:           WeightOverlayDegree,
		DegreeSample:      5,
		DegreeFloor:       0.3,
	}
}

// RemovalOnlyConfig disables replacement (the paper's MTO_RM ablation).
func RemovalOnlyConfig() Config {
	c := DefaultConfig()
	c.EnableReplacement = false
	return c
}

// ReplacementOnlyConfig disables removal (the paper's MTO_RP ablation).
func ReplacementOnlyConfig() Config {
	c := DefaultConfig()
	c.EnableRemoval = false
	return c
}

// Stats counts the rewiring work a sampler has performed.
type Stats struct {
	Steps        int64 // completed Step calls
	Examined     int64 // edges examined against the removal criterion
	Removals     int64 // overlay edge removals
	Replacements int64 // overlay edge replacements
}

// Sampler is the MTO-Sampler of Algorithm 1: a simple random walk over the
// overlay that removes provably non-cross-cutting edges and performs
// conductance-safe replacements as it goes. It implements walk.Walker and
// walk.Weighter, so it plugs into the same estimation pipeline as the
// baselines.
type Sampler struct {
	cfg   Config
	ov    *Overlay
	cache DegreeCache // nil unless the source can answer degree questions for free
	// pf carries prefetch hints to the base client when Config.Prefetch is
	// set and the base supports them; nil otherwise.
	pf    walk.PrefetchSource
	cur   graph.NodeID
	rng   *rng.Rand
	stats Stats
	// verdicts caches negative Theorem 3 outcomes under EvalOriginal, where
	// the criterion is static (positive outcomes remove the edge, so they
	// never need caching). Unused when Theorem 5 can apply: its verdict
	// improves as the degree cache grows.
	verdicts map[graph.EdgeKey]struct{}
	// scratch is the reusable common-neighbor buffer behind removableEdge:
	// the criterion only reads the intersection, so one buffer per sampler
	// keeps the steady-state step allocation-free.
	scratch []graph.NodeID
}

// neighborCache is the optional source capability the Theorem 5 path needs:
// telling whether v is already in the local store. osn.Client provides it.
type neighborCache interface {
	Cached(v graph.NodeID) bool
}

// NewSampler starts an MTO walk at start over src, with a private overlay.
func NewSampler(src walk.Source, start graph.NodeID, cfg Config, r *rng.Rand) *Sampler {
	return NewSamplerOn(NewOverlay(src), start, cfg, r)
}

// NewSamplerOn starts an MTO walk at start over an existing overlay, so
// several samplers can share one rewired topology (the fleet configuration:
// every walker benefits from every other walker's removals and
// replacements). The sampler itself is single-goroutine state — run each
// sampler on its own goroutine and share only the overlay and its source.
func NewSamplerOn(ov *Overlay, start graph.NodeID, cfg Config, r *rng.Rand) *Sampler {
	if cfg.MaxInner <= 0 {
		cfg.MaxInner = 64
	}
	src := ov.Base()
	s := &Sampler{cfg: cfg, ov: ov, cur: start, rng: r}
	if cfg.Prefetch {
		if _, ok := src.(walk.PrefetchSource); ok {
			s.pf = ov
		}
	}
	if cfg.UseExtended {
		switch cfg.Criterion {
		case EvalOverlay:
			if _, ok := src.(neighborCache); ok {
				s.cache = overlayDegreeCache{s.ov}
			}
		default:
			// Original-graph evaluation wants original cached degrees; the
			// OSN client provides them directly.
			if dc, ok := src.(DegreeCache); ok {
				s.cache = dc
			}
		}
	}
	if cfg.Criterion == EvalOriginal && s.cache == nil {
		s.verdicts = make(map[graph.EdgeKey]struct{})
	}
	return s
}

// overlayDegreeCache answers Theorem 5's degree questions with *overlay*
// degrees, and only for nodes whose base neighborhood is already cached (so
// no query is ever spent). This is strictly more faithful than raw base
// degrees: the theorem's proof argues about the current graph.
type overlayDegreeCache struct{ ov *Overlay }

func (c overlayDegreeCache) CachedDegree(v graph.NodeID) (int, bool) {
	if lst, ok := c.ov.cachedList(v); ok {
		return len(lst), true
	}
	if nc, ok := c.ov.base.(neighborCache); ok && nc.Cached(v) {
		return len(c.ov.Neighbors(v)), true // materializes from cache, no query
	}
	return 0, false
}

// Current returns the walk position.
func (s *Sampler) Current() graph.NodeID { return s.cur }

// SetCurrent repositions the walk (between runs only).
func (s *Sampler) SetCurrent(v graph.NodeID) { s.cur = v }

// RandState captures the sampler's RNG stream for checkpointing. Together
// with the overlay delta (Overlay.Delta) it is the sampler's complete
// trajectory-determining state: the verdict cache and scratch buffer only
// memoize deterministic recomputation and never touch the stream.
func (s *Sampler) RandState() [4]uint64 { return s.rng.State() }

// SetRandState restores a stream captured with RandState.
func (s *Sampler) SetRandState(st [4]uint64) { s.rng.SetState(st) }

// Overlay exposes the evolving rewired topology.
func (s *Sampler) Overlay() *Overlay { return s.ov }

// Err reports the base source's sticky failure (cancellation, deadline,
// budget exhaustion) when the overlay's base tracks one — the walk.Failing
// capability a fleet uses to retire the sampler instead of spinning on
// absorbing nil reads.
func (s *Sampler) Err() error {
	if f, ok := s.ov.base.(walk.Failing); ok {
		return f.Err()
	}
	return nil
}

// Stats returns rewiring counters.
func (s *Sampler) Stats() Stats { return s.stats }

// Step runs one outer iteration of Algorithm 1: repeatedly pick a uniform
// overlay neighbor v of the current node; remove the edge if Theorem 3/5
// fires (and re-pick); optionally replace it around a degree-3 pivot
// (Theorem 4), redirecting the candidate; then move with probability
// LazyProb, else re-pick. A MaxInner safety valve forces a plain SRW move if
// the loop spins too long (e.g. ReplaceProb pathologies).
func (s *Sampler) Step() graph.NodeID {
	defer func() { s.stats.Steps++ }()
	for iter := 0; iter < s.cfg.MaxInner; iter++ {
		if s.ov.failed() {
			return s.cur // query path failed: hold position for a resume
		}
		nbrs := s.ov.Neighbors(s.cur)
		if len(nbrs) == 0 {
			return s.cur // isolated: absorbing, same as SRW
		}
		if iter == 0 && s.pf != nil {
			// Every inner iteration demands one of these neighborhoods; get
			// their round-trips in flight before the picks start, so re-picks
			// coalesce onto speculation instead of paying latency serially.
			s.pf.Prefetch(nbrs...)
		}
		v := rng.Choice(s.rng, nbrs)
		vn := s.ov.Neighbors(v) // the individual-user query for v
		s.stats.Examined++
		if s.cfg.EnableRemoval && s.removableEdge(s.cur, v, nbrs, vn) {
			// Theorem 3/5: (cur, v) is provably non-cross-cutting. The
			// criterion was judged on snapshots; the guarded commit
			// re-validates the walk-safety invariants (Algorithm 1's
			// |N(u)| >= 1, the degree floor, overlay connectivity) against
			// the *current* overlay under the lock, so a concurrent fleet
			// member acting on the same stale lists cannot strand a node.
			if s.ov.RemoveEdgeGuarded(s.cur, v, s.minKeep(s.cur), s.minKeep(v),
				s.cfg.Criterion == EvalOriginal) {
				s.stats.Removals++
			}
			continue
		}
		cand := v
		if s.cfg.EnableReplacement && ReplaceablePivot(len(vn)) {
			if s.pf != nil {
				// Theorem 4 pivot candidates: whichever neighbor of v the
				// replacement redirects to becomes the walk's next demand.
				s.pf.Prefetch(vn...)
			}
			if s.pivotAvailable(v) && s.rng.Bernoulli(s.cfg.ReplaceProb) {
				if w, ok := s.pickReplacement(nbrs, v, vn); ok &&
					s.ov.ReplaceEdgeGuarded(s.cur, v, w, s.cfg.PivotOnce) {
					s.stats.Replacements++
					cand = w // Algorithm 1's "v ← v′"
				}
			}
		}
		if s.rng.Bernoulli(s.cfg.LazyProb) {
			s.cur = cand
			return s.cur
		}
	}
	if nbrs := s.ov.Neighbors(s.cur); len(nbrs) > 0 {
		s.cur = rng.Choice(s.rng, nbrs)
	}
	return s.cur
}

// removableEdge applies the removal criterion to the edge (u, v), where
// uOv and vOv are the endpoints' current overlay neighbor lists. Guards
// (both overlay degrees >= 2; under EvalOriginal additionally >= 1 common
// overlay neighbor) ensure a removal never strands a node or disconnects
// the overlay.
func (s *Sampler) removableEdge(u, v graph.NodeID, uOv, vOv []graph.NodeID) bool {
	if len(uOv) <= 1 || len(vOv) <= 1 {
		return false
	}
	// Theorems 3/5 certify edges of the *original* graph. Overlay additions
	// came from Theorem 4 replacements precisely because they are likely
	// cross-cutting; removing them again would silently undo the rewiring
	// (and, iterated with replacement, grind the overlay down to a tree).
	if s.ov.IsAdded(u, v) {
		return false
	}
	if s.cfg.DegreeFloor > 0 {
		if len(uOv) <= s.floorOf(u) || len(vOv) <= s.floorOf(v) {
			return false
		}
	}
	if s.cfg.Criterion == EvalOverlay {
		s.scratch = graph.IntersectSortedInto(s.scratch, uOv, vOv)
		return Removable(s.scratch, len(uOv), len(vOv), s.cache)
	}
	// EvalOriginal: static criterion on the neighborhoods the queries
	// returned; connectivity guard on the overlay.
	if graph.CountIntersectSorted(uOv, vOv) < 1 {
		return false
	}
	k := graph.KeyOf(u, v)
	if s.verdicts != nil {
		if _, known := s.verdicts[k]; known {
			return false // cached negative
		}
	}
	ub := s.ov.base.Neighbors(u) // cached: the walk already paid for both
	vb := s.ov.base.Neighbors(v)
	s.scratch = graph.IntersectSortedInto(s.scratch, ub, vb)
	fires := Removable(s.scratch, len(ub), len(vb), s.cache)
	if !fires && s.verdicts != nil {
		s.verdicts[k] = struct{}{}
	}
	return fires
}

// pivotAvailable reports whether v may still host a replacement. The used
// set lives on the (possibly shared) overlay, so under PivotOnce the bound
// is one replacement per pivot for the whole fleet, not per member; this is
// only a cheap pre-check — the authoritative claim happens atomically
// inside ReplaceEdgeGuarded.
func (s *Sampler) pivotAvailable(v graph.NodeID) bool {
	return !s.cfg.PivotOnce || !s.ov.PivotUsed(v)
}

// minKeep returns the overlay degree a node must retain after a removal:
// the configured degree floor when one is set, else Algorithm 1's bare
// |N(u)| >= 1.
func (s *Sampler) minKeep(u graph.NodeID) int {
	if s.cfg.DegreeFloor > 0 {
		return s.floorOf(u)
	}
	return 1
}

// floorOf returns the minimum overlay degree node u must keep:
// max(2, ⌈DegreeFloor · base degree⌉). Base neighborhoods are cached for
// every node the walk touches, so this never issues a query.
func (s *Sampler) floorOf(u graph.NodeID) int {
	f := int(s.cfg.DegreeFloor*float64(len(s.ov.base.Neighbors(u))) + 0.999999)
	if f < 2 {
		f = 2
	}
	return f
}

// pickReplacement chooses w for the Theorem 4 replacement of (cur, v)
// around pivot v: w is a uniformly chosen other neighbor of v such that
// (cur, w) does not already exist (a no-op "replacement" would just delete
// (cur, v), which Theorem 4 does not license).
func (s *Sampler) pickReplacement(curNbrs []graph.NodeID, v graph.NodeID, vNbrs []graph.NodeID) (graph.NodeID, bool) {
	options := make([]graph.NodeID, 0, 2)
	for _, w := range vNbrs {
		if w != s.cur && !graph.ContainsSorted(curNbrs, w) {
			options = append(options, w)
		}
	}
	if len(options) == 0 {
		return 0, false
	}
	return rng.Choice(s.rng, options), true
}

// StationaryWeight returns k*(v) per the configured WeightMode — the
// importance weight denominator for unbiasing MTO samples.
func (s *Sampler) StationaryWeight(v graph.NodeID) float64 {
	switch s.cfg.Weights {
	case WeightExact:
		return float64(s.classifyIncident(v, -1))
	case WeightSampled:
		return float64(s.classifyIncident(v, s.cfg.DegreeSample))
	default:
		return float64(s.ov.Degree(v))
	}
}

// classifyIncident tests (a sample of) v's incident overlay edges against
// the removal criterion, removes the ones that fire, and returns the
// resulting degree estimate. sample < 0 classifies all incident edges
// (exact); otherwise `sample` random neighbors are tested and the removable
// fraction is extrapolated.
func (s *Sampler) classifyIncident(v graph.NodeID, sample int) int {
	nbrs := s.ov.Neighbors(v)
	deg := len(nbrs)
	if deg <= 1 || !s.cfg.EnableRemoval {
		return deg
	}
	idx := make([]int, deg)
	for i := range idx {
		idx[i] = i
	}
	tested := deg
	if sample >= 0 && sample < deg {
		s.rng.Shuffle(deg, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		tested = sample
		if tested == 0 {
			return deg
		}
	}
	removed := 0
	for _, i := range idx[:tested] {
		w := nbrs[i]
		wn := s.ov.Neighbors(w)
		s.stats.Examined++
		if s.removableEdge(v, w, nbrs, wn) &&
			s.ov.RemoveEdgeGuarded(v, w, s.minKeep(v), s.minKeep(w),
				s.cfg.Criterion == EvalOriginal) {
			removed++
			s.stats.Removals++
		}
	}
	if tested == deg {
		return deg - removed
	}
	frac := float64(removed) / float64(tested)
	est := int(float64(deg)*(1-frac) + 0.5)
	if est < 1 {
		est = 1
	}
	return est
}

// WalkToCoverage advances the sampler until every node of an n-node graph
// has been visited at least once (the paper's §V-A.3 procedure for
// extracting the full overlay topology) or maxSteps elapse. It returns the
// number of distinct nodes visited and whether full coverage was reached.
func WalkToCoverage(s *Sampler, n, maxSteps int) (visited int, ok bool) {
	seen := make([]bool, n)
	seen[s.Current()] = true
	visited = 1
	for step := 0; step < maxSteps && visited < n; step++ {
		v := s.Step()
		if !seen[v] {
			seen[v] = true
			visited++
		}
	}
	return visited, visited == n
}

// Interface conformance checks.
var (
	_ walk.Walker         = (*Sampler)(nil)
	_ walk.Weighter       = (*Sampler)(nil)
	_ walk.StateCarrier   = (*Sampler)(nil)
	_ walk.Source         = (*Overlay)(nil)
	_ walk.PrefetchSource = (*Overlay)(nil)
)
