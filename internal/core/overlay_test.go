package core

import (
	"reflect"
	"testing"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/rng"
)

func TestOverlayPassThrough(t *testing.T) {
	g := gen.Barbell(4)
	ov := NewOverlay(g)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if !reflect.DeepEqual(ov.Neighbors(u), g.Neighbors(u)) {
			t.Fatalf("node %d: overlay differs from base with empty delta", u)
		}
		if ov.Degree(u) != g.Degree(u) {
			t.Fatalf("node %d: degree mismatch", u)
		}
	}
	if ov.RemovedCount() != 0 || ov.AddedCount() != 0 {
		t.Error("fresh overlay has nonzero delta counts")
	}
}

func TestOverlayRemoveEdge(t *testing.T) {
	g := gen.Complete(4)
	ov := NewOverlay(g)
	ov.RemoveEdge(0, 1)
	if ov.HasEdge(0, 1) || ov.HasEdge(1, 0) {
		t.Error("removed edge still present")
	}
	if ov.Degree(0) != 2 || ov.Degree(1) != 2 {
		t.Errorf("degrees after removal: %d, %d", ov.Degree(0), ov.Degree(1))
	}
	if ov.RemovedCount() != 1 {
		t.Errorf("RemovedCount = %d", ov.RemovedCount())
	}
	if !ov.Removed(0, 1) || !ov.Removed(1, 0) {
		t.Error("Removed() should be symmetric")
	}
	// Base untouched.
	if !g.HasEdge(0, 1) {
		t.Error("base graph mutated")
	}
}

func TestOverlayAddEdge(t *testing.T) {
	g := gen.Path(4) // 0-1-2-3
	ov := NewOverlay(g)
	ov.AddEdge(0, 3)
	if !ov.HasEdge(0, 3) || !ov.HasEdge(3, 0) {
		t.Error("added edge missing")
	}
	if ov.Degree(0) != 2 || ov.Degree(3) != 2 {
		t.Errorf("degrees after addition: %d, %d", ov.Degree(0), ov.Degree(3))
	}
	// Lists stay sorted.
	n0 := ov.Neighbors(0)
	for i := 1; i < len(n0); i++ {
		if n0[i-1] >= n0[i] {
			t.Fatalf("overlay list not sorted: %v", n0)
		}
	}
	// Adding an existing base edge is a no-op.
	ov.AddEdge(0, 1)
	if ov.AddedCount() != 1 {
		t.Errorf("AddedCount = %d after re-adding base edge", ov.AddedCount())
	}
	// Self loops ignored.
	ov.AddEdge(2, 2)
	if ov.AddedCount() != 1 {
		t.Error("self loop was recorded")
	}
}

func TestOverlayRemoveThenAddBack(t *testing.T) {
	g := gen.Complete(3)
	ov := NewOverlay(g)
	ov.RemoveEdge(0, 1)
	ov.AddEdge(0, 1)
	if !ov.HasEdge(0, 1) {
		t.Error("re-added edge missing")
	}
	if ov.RemovedCount() != 0 || ov.AddedCount() != 0 {
		t.Errorf("delta counts = %d/%d, want 0/0", ov.RemovedCount(), ov.AddedCount())
	}
}

func TestOverlayAddThenRemoveCancels(t *testing.T) {
	g := gen.Path(3)
	ov := NewOverlay(g)
	ov.AddEdge(0, 2)
	ov.RemoveEdge(0, 2)
	if ov.HasEdge(0, 2) {
		t.Error("cancelled addition still present")
	}
	if ov.AddedCount() != 0 || ov.RemovedCount() != 0 {
		t.Errorf("delta counts = %d/%d, want 0/0", ov.AddedCount(), ov.RemovedCount())
	}
	if ov.Degree(0) != 1 {
		t.Errorf("Degree(0) = %d", ov.Degree(0))
	}
}

func TestOverlayReplaceEdge(t *testing.T) {
	// Star with hub 0: replace (1,0) with (1,2) (Theorem 4 around pivot 0
	// would need deg 3; this tests the mechanics only).
	g := gen.Star(4)
	ov := NewOverlay(g)
	ov.ReplaceEdge(1, 0, 2)
	if ov.HasEdge(1, 0) {
		t.Error("replaced edge still present")
	}
	if !ov.HasEdge(1, 2) {
		t.Error("replacement edge missing")
	}
	if ov.Degree(0) != 2 || ov.Degree(1) != 1 || ov.Degree(2) != 2 {
		t.Errorf("degrees = %d,%d,%d", ov.Degree(0), ov.Degree(1), ov.Degree(2))
	}
}

func TestOverlayMaterialize(t *testing.T) {
	g := gen.Complete(5)
	ov := NewOverlay(g)
	ov.RemoveEdge(0, 1)
	ov.RemoveEdge(2, 3)
	ov.AddEdge(0, 1) // cancel one removal
	mat := ov.Materialize(g.NumNodes())
	if err := mat.Validate(); err != nil {
		t.Fatal(err)
	}
	if mat.NumEdges() != g.NumEdges()-1 {
		t.Errorf("materialized edges = %d, want %d", mat.NumEdges(), g.NumEdges()-1)
	}
	if mat.HasEdge(2, 3) {
		t.Error("removed edge in materialization")
	}
	if !mat.HasEdge(0, 1) {
		t.Error("restored edge missing from materialization")
	}
}

func TestOverlayMatchesMaterializedProperty(t *testing.T) {
	// Random mutation sequences: the overlay's incremental view must agree
	// exactly with a from-scratch materialization.
	r := rng.New(77)
	for trial := 0; trial < 25; trial++ {
		g := gen.GNP(12, 0.35, r)
		ov := NewOverlay(g)
		for op := 0; op < 40; op++ {
			u := graph.NodeID(r.Intn(12))
			v := graph.NodeID(r.Intn(12))
			if u == v {
				continue
			}
			if r.Bool() {
				ov.RemoveEdge(u, v)
			} else {
				ov.AddEdge(u, v)
			}
		}
		mat := ov.Materialize(12)
		for u := graph.NodeID(0); u < 12; u++ {
			a, b := ov.Neighbors(u), mat.Neighbors(u)
			if len(a) != len(b) {
				t.Fatalf("trial %d node %d: overlay %v vs materialized %v",
					trial, u, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d node %d: overlay %v vs materialized %v",
						trial, u, a, b)
				}
			}
		}
		// Degree sum invariant.
		sum := 0
		for u := graph.NodeID(0); u < 12; u++ {
			sum += ov.Degree(u)
		}
		if sum != 2*mat.NumEdges() {
			t.Fatalf("trial %d: degree sum %d vs 2*edges %d", trial, sum, 2*mat.NumEdges())
		}
	}
}

func TestOverlayRemoveNonexistentIsNoop(t *testing.T) {
	g := gen.Path(3)
	ov := NewOverlay(g)
	ov.RemoveEdge(0, 2) // not an edge
	if ov.Degree(0) != 1 || ov.Degree(2) != 1 {
		t.Error("no-op removal changed degrees")
	}
	// It is recorded in the removed set, which is harmless; adding it back
	// must produce a present edge.
	ov.AddEdge(0, 2)
	if !ov.HasEdge(0, 2) {
		t.Error("add after spurious remove failed")
	}
}

func TestCommonOverlayNeighbors(t *testing.T) {
	g := gen.Complete(5)
	ov := NewOverlay(g)
	if got := ov.CommonOverlayNeighbors(0, 1); len(got) != 3 {
		t.Fatalf("common = %v", got)
	}
	ov.RemoveEdge(0, 2)
	if got := ov.CommonOverlayNeighbors(0, 1); len(got) != 2 {
		t.Fatalf("common after removal = %v", got)
	}
}
