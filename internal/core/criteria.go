// Package core implements the paper's contribution: the MTO-Sampler
// ("Modified TOpology Sampler"), which speeds up third-party random walks
// over an online social network by rewiring a *virtual overlay* of the graph
// on-the-fly, using only the local neighborhoods the walk has already paid
// queries for.
//
// Three results drive it:
//
//   - Theorem 3 (edge removal): if ⌈|N(u)∩N(v)|/2⌉ + 1 > max(ku, kv)/2 then
//     (u,v) is provably non-cross-cutting and can be deleted from the
//     overlay without decreasing conductance.
//   - Theorem 5 (extension): degree knowledge of common neighbors cached
//     from earlier queries strengthens the test — each known common
//     neighbor w with 2 ≤ kw ≤ 3 contributes (4-kw)/2 to the left side.
//   - Theorem 4 (edge replacement): around a degree-3 pivot p, an incident
//     edge (x, p) may be replaced by (x, y) for the other neighbor y of p
//     without ever decreasing conductance.
//
// The Sampler (Algorithm 1) applies these while walking; BuildOverlay
// applies them offline to a known graph for the paper's Fig 10 style
// spectral measurements.
package core

import "rewire/internal/graph"

// RemovableTheorem3 evaluates the paper's Theorem 3 removal criterion given
// the common-neighbor count of (u, v) and the endpoint degrees:
//
//	⌈common/2⌉ + 1 > max(ku, kv)/2.
//
// All arithmetic stays in integers (the comparison is doubled) so there is
// no floating-point edge case. The caller must pass degrees and common
// counts measured on the *current overlay* — evaluating against the original
// graph while the overlay has diverged voids the theorem's guarantee.
func RemovableTheorem3(common, ku, kv int) bool {
	maxDeg := ku
	if kv > maxDeg {
		maxDeg = kv
	}
	// 2*(⌈n/2⌉ + 1) > maxDeg  with ⌈n/2⌉ = (n+1)/2 in integer division.
	return 2*((common+1)/2+1) > maxDeg
}

// DegreeCache supplies degree knowledge already present in the sampler's
// local store — the "historical information [obtained] without paying any
// query cost" of the paper's §III-D. *osn.Client implements it.
type DegreeCache interface {
	CachedDegree(v graph.NodeID) (int, bool)
}

// RemovableTheorem5 evaluates the extended criterion of Theorem 5. common
// lists the common neighbors of (u, v) on the current overlay; cache
// provides free degree knowledge. With N* = {w ∈ common : kw cached,
// 2 ≤ kw ≤ 3}, the edge is removable when
//
//	⌈(|common| - |N*|)/2⌉ + 1 + Σ_{w∈N*} (4-kw)/2 > max(ku, kv)/2.
//
// With an empty N* this degenerates to Theorem 3 exactly, so callers can use
// it unconditionally. A nil cache is treated as empty.
func RemovableTheorem5(common []graph.NodeID, ku, kv int, cache DegreeCache) bool {
	nStar := 0
	bonus := 0 // Σ (4 - kw), kept doubled like the rest of the comparison
	if cache != nil {
		for _, w := range common {
			kw, ok := cache.CachedDegree(w)
			if ok && kw >= 2 && kw <= 3 {
				nStar++
				bonus += 4 - kw
			}
		}
	}
	maxDeg := ku
	if kv > maxDeg {
		maxDeg = kv
	}
	rest := len(common) - nStar
	// 2*(⌈rest/2⌉ + 1) + bonus > maxDeg.
	return 2*((rest+1)/2+1)+bonus > maxDeg
}

// Removable combines both certificates: an edge is removable when Theorem 3
// fires on the counts alone, or Theorem 5 fires with cached degree
// knowledge. The two are combined with OR because the ⌈·/2⌉ parity makes
// neither test pointwise stronger: e.g. with 3 common neighbors, one cached
// at degree 3, and max degree 5, Theorem 3 fires (6 > 5) while the Theorem 5
// left side is only 5.
func Removable(common []graph.NodeID, ku, kv int, cache DegreeCache) bool {
	if RemovableTheorem3(len(common), ku, kv) {
		return true
	}
	if cache == nil {
		return false
	}
	return RemovableTheorem5(common, ku, kv, cache)
}

// ReplaceablePivot reports whether Theorem 4 applies at pivot p given its
// overlay degree: replacement around p is conductance-safe exactly when
// deg(p) == 3 (Corollary 2 shows 3 is the *only* safe degree).
func ReplaceablePivot(degP int) bool { return degP == 3 }
