package core

import (
	"testing"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/rng"
	"rewire/internal/spectral"
)

func TestDegreeFloorLimitsDraining(t *testing.T) {
	// Without the floor, iterated removal+replacement drains the barbell
	// toward a (bipartite) near-tree; with the default 0.3 floor every node
	// keeps >= ceil(0.3 * original degree) overlay neighbors.
	g := gen.Barbell(11)
	cfg := DefaultConfig()
	s := NewSampler(g, 0, cfg, rng.New(3))
	for i := 0; i < 100000; i++ {
		s.Step()
	}
	ov := s.Overlay().Materialize(g.NumNodes())
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		floor := int(cfg.DegreeFloor*float64(g.Degree(v)) + 0.999999)
		if floor < 2 {
			floor = 2
		}
		// Replacement can shift one more edge away from a node after
		// removal stopped, so allow slack of one below the removal floor.
		if ov.Degree(v) < floor-1 {
			t.Errorf("node %d: overlay degree %d below floor %d", v, ov.Degree(v), floor)
		}
	}
	// The drained-tree pathology specifically: the overlay must keep
	// substantially more than a spanning tree and still mix.
	if ov.NumEdges() < g.NumNodes()+5 {
		t.Errorf("overlay has only %d edges — drained to a near-tree", ov.NumEdges())
	}
	mt, err := spectral.GraphMixingTime(ov)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := spectral.GraphMixingTime(g)
	if mt >= orig {
		t.Errorf("overlay mixing %v not below original %v", mt, orig)
	}
}

func TestNoFloorDrainsBarbell(t *testing.T) {
	// Pin the documented pathology: DegreeFloor = 0 (Algorithm 1 verbatim)
	// eventually thins the barbell far below the floored overlay.
	cfgNoFloor := DefaultConfig()
	cfgNoFloor.DegreeFloor = 0
	g := gen.Barbell(11)
	s := NewSampler(g, 0, cfgNoFloor, rng.New(3))
	for i := 0; i < 100000; i++ {
		s.Step()
	}
	ov := s.Overlay().Materialize(g.NumNodes())
	if ov.NumEdges() > 30 {
		t.Errorf("unfloored overlay kept %d edges; expected heavy draining (<= 30)", ov.NumEdges())
	}
	if !ov.IsConnected() {
		t.Error("even unfloored rewiring must preserve connectivity")
	}
}

func TestPivotOnceBoundsReplacements(t *testing.T) {
	g := gen.EpinionsLikeSmall(5)
	run := func(pivotOnce bool, steps int) int64 {
		cfg := DefaultConfig()
		cfg.PivotOnce = pivotOnce
		s := NewSampler(g, 0, cfg, rng.New(7))
		for i := 0; i < steps; i++ {
			s.Step()
		}
		return s.Stats().Replacements
	}
	bounded := run(true, 300000)
	unbounded := run(false, 300000)
	if bounded > int64(g.NumNodes()) {
		t.Errorf("PivotOnce replacements %d exceed node count %d", bounded, g.NumNodes())
	}
	if unbounded <= bounded {
		t.Errorf("unbounded replacements %d should exceed bounded %d on long runs", unbounded, bounded)
	}
}

func TestReplacementChurnStopsWithPivotOnce(t *testing.T) {
	// After a long run, the rewiring rate must approach zero so the chain
	// becomes stationary (this is what lets Geweke fire for MTO).
	g := gen.EpinionsLikeSmall(9)
	s := NewSampler(g, 0, DefaultConfig(), rng.New(11))
	for i := 0; i < 400000; i++ {
		s.Step()
	}
	before := s.Stats()
	for i := 0; i < 50000; i++ {
		s.Step()
	}
	after := s.Stats()
	mutations := (after.Removals - before.Removals) + (after.Replacements - before.Replacements)
	// Allow stragglers but not sustained churn (~1 per 1000 steps max).
	if mutations > 50 {
		t.Errorf("late-run mutations = %d in 50k steps; topology is not settling", mutations)
	}
}
