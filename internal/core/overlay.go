package core

import (
	"sort"

	"rewire/internal/graph"
	"rewire/internal/walk"
)

// Overlay is the virtual rewired topology: the base graph (seen through a
// walk.Source, typically the caching OSN client) plus an edge-delta set of
// removals and additions. It implements walk.Source itself, so any walker
// can run "on the overlay" — which is exactly the paper's trick: the random
// walk follows the modified topology while only the original network exists.
//
// The overlay never mutates the base; it is the third party's bookkeeping.
type Overlay struct {
	base    walk.Source
	removed map[graph.EdgeKey]struct{}
	added   map[graph.EdgeKey]struct{}
	// addedAdj lists added-edge partners per node for list materialization.
	addedAdj map[graph.NodeID][]graph.NodeID
	// lists caches materialized overlay neighbor lists, invalidated on
	// mutation of either endpoint.
	lists map[graph.NodeID][]graph.NodeID
}

// NewOverlay wraps base with an empty delta.
func NewOverlay(base walk.Source) *Overlay {
	return &Overlay{
		base:     base,
		removed:  make(map[graph.EdgeKey]struct{}),
		added:    make(map[graph.EdgeKey]struct{}),
		addedAdj: make(map[graph.NodeID][]graph.NodeID),
		lists:    make(map[graph.NodeID][]graph.NodeID),
	}
}

// Base returns the wrapped source.
func (o *Overlay) Base() walk.Source { return o.base }

// Neighbors returns v's overlay neighbor list (sorted; owned by the overlay,
// do not modify). Reading it may cost a query on the underlying client for
// v's base list — the same query any walk positioned at v must pay anyway.
func (o *Overlay) Neighbors(v graph.NodeID) []graph.NodeID {
	if lst, ok := o.lists[v]; ok {
		return lst
	}
	base := o.base.Neighbors(v)
	lst := make([]graph.NodeID, 0, len(base)+len(o.addedAdj[v]))
	for _, w := range base {
		if _, gone := o.removed[graph.KeyOf(v, w)]; !gone {
			lst = append(lst, w)
		}
	}
	if extra := o.addedAdj[v]; len(extra) > 0 {
		lst = append(lst, extra...)
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
	}
	o.lists[v] = lst
	return lst
}

// Degree returns v's overlay degree.
func (o *Overlay) Degree(v graph.NodeID) int { return len(o.Neighbors(v)) }

// HasEdge reports whether (u, v) exists in the overlay. It consults the
// delta sets first and falls back to u's materialized list.
func (o *Overlay) HasEdge(u, v graph.NodeID) bool {
	k := graph.KeyOf(u, v)
	if _, ok := o.removed[k]; ok {
		return false
	}
	if _, ok := o.added[k]; ok {
		return true
	}
	return graph.ContainsSorted(o.Neighbors(u), v)
}

// RemoveEdge deletes (u, v) from the overlay. Removing an edge that is not
// present is a no-op. Removing an added edge cancels the addition.
func (o *Overlay) RemoveEdge(u, v graph.NodeID) {
	k := graph.KeyOf(u, v)
	if _, ok := o.added[k]; ok {
		delete(o.added, k)
		o.addedAdj[u] = without(o.addedAdj[u], v)
		o.addedAdj[v] = without(o.addedAdj[v], u)
	} else {
		o.removed[k] = struct{}{}
	}
	delete(o.lists, u)
	delete(o.lists, v)
}

// AddEdge inserts (u, v) into the overlay: any removal mark is cleared, and
// the edge is recorded as an addition only when the base graph does not
// already carry it (so re-adding a base edge or restoring a removed one
// leaves the delta sets clean). Self-loops are ignored.
func (o *Overlay) AddEdge(u, v graph.NodeID) {
	if u == v {
		return
	}
	k := graph.KeyOf(u, v)
	delete(o.removed, k)
	delete(o.lists, u)
	delete(o.lists, v)
	if graph.ContainsSorted(o.base.Neighbors(u), v) {
		return // present in the base; clearing the removal mark restored it
	}
	if _, already := o.added[k]; !already {
		o.added[k] = struct{}{}
		o.addedAdj[u] = append(o.addedAdj[u], v)
		o.addedAdj[v] = append(o.addedAdj[v], u)
	}
}

// ReplaceEdge performs the Theorem 4 operation: remove (u, p), add (u, w).
func (o *Overlay) ReplaceEdge(u, p, w graph.NodeID) {
	o.RemoveEdge(u, p)
	o.AddEdge(u, w)
}

// RemovedCount returns the number of net edge removals.
func (o *Overlay) RemovedCount() int { return len(o.removed) }

// AddedCount returns the number of net edge additions.
func (o *Overlay) AddedCount() int { return len(o.added) }

// Removed reports whether (u,v) was explicitly removed.
func (o *Overlay) Removed(u, v graph.NodeID) bool {
	_, ok := o.removed[graph.KeyOf(u, v)]
	return ok
}

// IsAdded reports whether (u,v) is an overlay addition (not a base edge).
func (o *Overlay) IsAdded(u, v graph.NodeID) bool {
	_, ok := o.added[graph.KeyOf(u, v)]
	return ok
}

// RemovedEdges returns the keys of all removed edges (order unspecified).
// Useful for reconstructing overlay degrees against a local copy of the
// base graph without touching the query budget.
func (o *Overlay) RemovedEdges() []graph.EdgeKey {
	out := make([]graph.EdgeKey, 0, len(o.removed))
	for k := range o.removed {
		out = append(out, k)
	}
	return out
}

// AddedEdges returns the keys of all added edges (order unspecified).
func (o *Overlay) AddedEdges() []graph.EdgeKey {
	out := make([]graph.EdgeKey, 0, len(o.added))
	for k := range o.added {
		out = append(out, k)
	}
	return out
}

// Materialize builds the full overlay as a concrete graph over n nodes.
// It reads every node's base neighborhood, so call it only when the base is
// a local graph (or a client whose budget you are willing to spend) — the
// paper does exactly this in §V-A.3 to compute overlay mixing times after
// running the walk to full coverage.
func (o *Overlay) Materialize(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := graph.NodeID(0); int(u) < n; u++ {
		for _, v := range o.base.Neighbors(u) {
			if u < v {
				if _, gone := o.removed[graph.KeyOf(u, v)]; !gone {
					b.AddEdge(u, v)
				}
			}
		}
	}
	for k := range o.added {
		u, v := k.Nodes()
		b.AddEdge(u, v)
	}
	return b.Build()
}

func without(lst []graph.NodeID, x graph.NodeID) []graph.NodeID {
	for i, v := range lst {
		if v == x {
			return append(lst[:i], lst[i+1:]...)
		}
	}
	return lst
}

// CommonOverlayNeighbors intersects the overlay neighbor lists of u and v.
func (o *Overlay) CommonOverlayNeighbors(u, v graph.NodeID) []graph.NodeID {
	return graph.IntersectSorted(o.Neighbors(u), o.Neighbors(v))
}
