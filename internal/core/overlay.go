package core

import (
	"sort"
	"sync"

	"rewire/internal/graph"
	"rewire/internal/walk"
)

// Overlay is the virtual rewired topology: the base graph (seen through a
// walk.Source, typically the caching OSN client) plus an edge-delta set of
// removals and additions. It implements walk.Source itself, so any walker
// can run "on the overlay" — which is exactly the paper's trick: the random
// walk follows the modified topology while only the original network exists.
//
// The overlay never mutates the base; it is the third party's bookkeeping.
//
// Overlay is safe for concurrent use: a fleet of walkers reads materialized
// neighbor lists under a shared read lock, and edge mutations (plus list
// materialization) take the write lock. Returned neighbor slices are
// immutable snapshots — invalidation replaces them rather than editing them
// in place — so holding one across a concurrent mutation is safe.
type Overlay struct {
	base walk.Source
	// pf is the base's prefetch capability (nil when the base cannot warm
	// its cache asynchronously, e.g. a local *graph.Graph).
	pf walk.PrefetchSource
	// failer is the base's failure-reporting capability (a walk.Bound under
	// a cancellable session). When it reports an error, base reads are
	// returning truncated (nil) lists; the overlay must not let those poison
	// its materialized-list cache — a cancelled run may be resumed with a
	// fresh context, and the cache outlives the cancellation.
	failer walk.Failing

	mu      sync.RWMutex
	removed map[graph.EdgeKey]struct{}
	added   map[graph.EdgeKey]struct{}
	// addedAdj lists added-edge partners per node for list materialization.
	addedAdj map[graph.NodeID][]graph.NodeID
	// lists caches materialized overlay neighbor lists, invalidated on
	// mutation of either endpoint.
	lists map[graph.NodeID][]graph.NodeID
	// usedPivots records nodes that already hosted a Theorem 4 replacement.
	// It lives on the overlay — not the sampler — so the one-replacement-
	// per-pivot bound (Config.PivotOnce) holds across a whole fleet sharing
	// this overlay, keeping total rewiring O(|V|) regardless of k.
	usedPivots map[graph.NodeID]struct{}
}

// NewOverlay wraps base with an empty delta.
func NewOverlay(base walk.Source) *Overlay {
	pf, _ := base.(walk.PrefetchSource)
	failer, _ := base.(walk.Failing)
	return &Overlay{
		base:       base,
		pf:         pf,
		failer:     failer,
		removed:    make(map[graph.EdgeKey]struct{}),
		added:      make(map[graph.EdgeKey]struct{}),
		addedAdj:   make(map[graph.NodeID][]graph.NodeID),
		lists:      make(map[graph.NodeID][]graph.NodeID),
		usedPivots: make(map[graph.NodeID]struct{}),
	}
}

// Base returns the wrapped source.
func (o *Overlay) Base() walk.Source { return o.base }

// Neighbors returns v's overlay neighbor list (sorted; owned by the overlay,
// do not modify). Reading it may cost a query on the underlying client for
// v's base list — the same query any walk positioned at v must pay anyway.
func (o *Overlay) Neighbors(v graph.NodeID) []graph.NodeID {
	o.mu.RLock()
	lst, ok := o.lists[v]
	o.mu.RUnlock()
	if ok {
		return lst
	}
	// Warm the base cache BEFORE taking the overlay lock: on a fresh node
	// the base read is the expensive part (a real provider round-trip
	// through the client), and holding the overlay lock across it would
	// serialize the whole fleet behind one walker's network wait. Base
	// lists are immutable per node, so the early fetch is safe; the
	// materialization below re-reads it as a cache hit.
	o.base.Neighbors(v)
	if o.failed() {
		// The warm-up read was aborted (cancellation, deadline, budget):
		// return nil like an absorbing read, WITHOUT materializing — caching
		// a truncated list here would corrupt every later run over this
		// overlay.
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.materializeLocked(v)
}

// failed reports whether the base source is currently in a failed state
// (only ever true for failure-reporting bases, i.e. a walk.Bound whose run
// was cancelled or ran out of budget).
func (o *Overlay) failed() bool {
	return o.failer != nil && o.failer.Err() != nil
}

// cachedList returns v's materialized overlay list if one exists, without
// triggering materialization (and therefore without any base query).
func (o *Overlay) cachedList(v graph.NodeID) ([]graph.NodeID, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	lst, ok := o.lists[v]
	return lst, ok
}

// Degree returns v's overlay degree.
func (o *Overlay) Degree(v graph.NodeID) int { return len(o.Neighbors(v)) }

// HasEdge reports whether (u, v) exists in the overlay. It consults the
// delta sets first and falls back to u's materialized list.
func (o *Overlay) HasEdge(u, v graph.NodeID) bool {
	k := graph.KeyOf(u, v)
	o.mu.RLock()
	_, gone := o.removed[k]
	_, extra := o.added[k]
	o.mu.RUnlock()
	if gone {
		return false
	}
	if extra {
		return true
	}
	return graph.ContainsSorted(o.Neighbors(u), v)
}

// RemoveEdge deletes (u, v) from the overlay. Removing an edge that is not
// present is a no-op. Removing an added edge cancels the addition.
func (o *Overlay) RemoveEdge(u, v graph.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.removeEdgeLocked(u, v)
}

func (o *Overlay) removeEdgeLocked(u, v graph.NodeID) {
	k := graph.KeyOf(u, v)
	if _, ok := o.added[k]; ok {
		delete(o.added, k)
		o.addedAdj[u] = without(o.addedAdj[u], v)
		o.addedAdj[v] = without(o.addedAdj[v], u)
	} else if graph.ContainsSorted(o.base.Neighbors(u), v) {
		o.removed[k] = struct{}{}
	} else {
		// Neither an addition nor a base edge: a true no-op. Guarding here
		// keeps the removed set a subset of the base edge set even when a
		// fleet member acts on a stale neighbor list (e.g. the added edge it
		// saw was cancelled concurrently), so RemovedCount and Materialize
		// stay exact.
		return
	}
	delete(o.lists, u)
	delete(o.lists, v)
}

// AddEdge inserts (u, v) into the overlay: any removal mark is cleared, and
// the edge is recorded as an addition only when the base graph does not
// already carry it (so re-adding a base edge or restoring a removed one
// leaves the delta sets clean). Self-loops are ignored.
func (o *Overlay) AddEdge(u, v graph.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.addEdgeLocked(u, v)
}

func (o *Overlay) addEdgeLocked(u, v graph.NodeID) {
	if u == v {
		return
	}
	k := graph.KeyOf(u, v)
	delete(o.removed, k)
	delete(o.lists, u)
	delete(o.lists, v)
	if graph.ContainsSorted(o.base.Neighbors(u), v) {
		return // present in the base; clearing the removal mark restored it
	}
	if _, already := o.added[k]; !already {
		o.added[k] = struct{}{}
		o.addedAdj[u] = append(o.addedAdj[u], v)
		o.addedAdj[v] = append(o.addedAdj[v], u)
	}
}

// ReplaceEdge performs the Theorem 4 operation: remove (u, p), add (u, w),
// atomically with respect to concurrent readers.
func (o *Overlay) ReplaceEdge(u, p, w graph.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.removeEdgeLocked(u, p)
	o.addEdgeLocked(u, w)
}

// materializeLocked returns v's current overlay list, building it under the
// already-held write lock. Callers must only reach here for nodes whose
// base neighborhood is already cached by the client (the sampler guarantees
// that: it queries a node before judging its edges), so the base read never
// blocks on a provider round-trip while the lock is held.
func (o *Overlay) materializeLocked(v graph.NodeID) []graph.NodeID {
	if lst, ok := o.lists[v]; ok {
		return lst
	}
	base := o.base.Neighbors(v)
	lst := make([]graph.NodeID, 0, len(base)+len(o.addedAdj[v]))
	for _, w := range base {
		if _, gone := o.removed[graph.KeyOf(v, w)]; !gone {
			lst = append(lst, w)
		}
	}
	if extra := o.addedAdj[v]; len(extra) > 0 {
		lst = append(lst, extra...)
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
	}
	if o.failed() {
		// The base read may have been truncated by a cancelled run: hand the
		// caller a best-effort list (errors fail toward no mutation in the
		// guarded commits) but do not cache it past the failure.
		return lst
	}
	o.lists[v] = lst
	return lst
}

// RemoveEdgeGuarded removes (u, v) only if, under the lock, the edge still
// exists and the removal respects the walk-safety guards re-validated
// against the *current* overlay: both endpoints keep degree above their
// minimum (minU/minV are lower bounds the post-removal degree must not go
// below, i.e. removal requires current degree > min), and, when
// requireCommon is set, the endpoints share at least one other overlay
// neighbor so the overlay cannot disconnect. Snapshot-based guards alone
// are not enough in a fleet: two walkers can both judge the same edge
// removable against the same stale lists; the second commit must re-check.
// Reports whether the edge was removed.
func (o *Overlay) RemoveEdgeGuarded(u, v graph.NodeID, minU, minV int, requireCommon bool) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.added[graph.KeyOf(u, v)]; ok {
		// (u, v) is (now) a Theorem 4 addition — those are likely
		// cross-cutting and must never be removed by the criterion, even if
		// the caller judged a same-keyed base edge on a stale snapshot.
		return false
	}
	uLst := o.materializeLocked(u)
	if !graph.ContainsSorted(uLst, v) {
		return false // already gone (another walker won the race)
	}
	vLst := o.materializeLocked(v)
	if len(uLst) <= minU || len(vLst) <= minV {
		return false
	}
	if requireCommon && graph.CountIntersectSorted(uLst, vLst) < 1 {
		return false
	}
	o.removeEdgeLocked(u, v)
	return true
}

// ReplaceEdgeGuarded performs the Theorem 4 replacement remove (u, p) /
// add (u, w) only if, under the lock, it is still valid on the current
// overlay: (u, p) exists, (u, w) does not (a no-op replacement would just
// delete an edge, which Theorem 4 does not license), the pivot p still has
// exactly degree 3, and — when claimPivot is set — p has not hosted a
// replacement before (the claim commits atomically with the rewiring, so a
// fleet performs at most one replacement per pivot in total). Reports
// whether the replacement happened.
func (o *Overlay) ReplaceEdgeGuarded(u, p, w graph.NodeID, claimPivot bool) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if claimPivot {
		if _, used := o.usedPivots[p]; used {
			return false
		}
	}
	uLst := o.materializeLocked(u)
	if !graph.ContainsSorted(uLst, p) || graph.ContainsSorted(uLst, w) || u == w {
		return false
	}
	pLst := o.materializeLocked(p)
	if !ReplaceablePivot(len(pLst)) || !graph.ContainsSorted(pLst, w) {
		return false // pivot degree changed, or w is no longer p's neighbor
	}
	o.removeEdgeLocked(u, p)
	o.addEdgeLocked(u, w)
	if claimPivot {
		o.usedPivots[p] = struct{}{}
	}
	return true
}

// PivotUsed reports whether p already hosted a Theorem 4 replacement.
func (o *Overlay) PivotUsed(p graph.NodeID) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, used := o.usedPivots[p]
	return used
}

// RemovedCount returns the number of net edge removals.
func (o *Overlay) RemovedCount() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.removed)
}

// AddedCount returns the number of net edge additions.
func (o *Overlay) AddedCount() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.added)
}

// Removed reports whether (u,v) was explicitly removed.
func (o *Overlay) Removed(u, v graph.NodeID) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.removed[graph.KeyOf(u, v)]
	return ok
}

// IsAdded reports whether (u,v) is an overlay addition (not a base edge).
func (o *Overlay) IsAdded(u, v graph.NodeID) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.added[graph.KeyOf(u, v)]
	return ok
}

// RemovedEdges returns the keys of all removed edges (order unspecified).
// Useful for reconstructing overlay degrees against a local copy of the
// base graph without touching the query budget.
func (o *Overlay) RemovedEdges() []graph.EdgeKey {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]graph.EdgeKey, 0, len(o.removed))
	for k := range o.removed {
		out = append(out, k)
	}
	return out
}

// AddedEdges returns the keys of all added edges (order unspecified).
func (o *Overlay) AddedEdges() []graph.EdgeKey {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]graph.EdgeKey, 0, len(o.added))
	for k := range o.added {
		out = append(out, k)
	}
	return out
}

// Materialize builds the full overlay as a concrete graph over n nodes.
// It reads every node's base neighborhood, so call it only when the base is
// a local graph (or a client whose budget you are willing to spend) — the
// paper does exactly this in §V-A.3 to compute overlay mixing times after
// running the walk to full coverage. The write lock is held throughout, so
// the result is a consistent snapshot even with walkers still running.
func (o *Overlay) Materialize(n int) *graph.Graph {
	o.mu.Lock()
	defer o.mu.Unlock()
	b := graph.NewBuilder(n)
	for u := graph.NodeID(0); int(u) < n; u++ {
		for _, v := range o.base.Neighbors(u) {
			if u < v {
				if _, gone := o.removed[graph.KeyOf(u, v)]; !gone {
					b.AddEdge(u, v)
				}
			}
		}
	}
	for k := range o.added {
		u, v := k.Nodes()
		b.AddEdge(u, v)
	}
	return b.Build()
}

func without(lst []graph.NodeID, x graph.NodeID) []graph.NodeID {
	for i, v := range lst {
		if v == x {
			return append(lst[:i], lst[i+1:]...)
		}
	}
	return lst
}

// Prefetch forwards speculative fetch hints to the base source when it
// supports them (osn.Client with a running pool does) and reports how many
// were accepted. Overlay rewiring never adds nodes, only edges, so warming
// the base cache for any id the walk may demand is always meaningful. With a
// non-prefetchable base every hint is refused — the overlay then still
// satisfies walk.PrefetchSource, just as a sink.
func (o *Overlay) Prefetch(ids ...graph.NodeID) int {
	if o.pf == nil {
		return 0
	}
	return o.pf.Prefetch(ids...)
}

// Known reports whether a prefetch hint for v would be redundant. Without a
// prefetchable base it falls back to whether v's overlay list is already
// materialized.
func (o *Overlay) Known(v graph.NodeID) bool {
	if o.pf != nil {
		return o.pf.Known(v)
	}
	_, ok := o.cachedList(v)
	return ok
}

// CommonOverlayNeighbors intersects the overlay neighbor lists of u and v.
func (o *Overlay) CommonOverlayNeighbors(u, v graph.NodeID) []graph.NodeID {
	return graph.IntersectSorted(o.Neighbors(u), o.Neighbors(v))
}
