package core

import (
	"slices"
	"sync"

	"rewire/internal/graph"
	"rewire/internal/store"
	"rewire/internal/walk"
)

// Overlay is the virtual rewired topology: the base graph (seen through a
// walk.Source, typically the caching OSN client) plus an edge-delta set of
// removals and additions. It implements walk.Source itself, so any walker
// can run "on the overlay" — which is exactly the paper's trick: the random
// walk follows the modified topology while only the original network exists.
//
// The overlay never mutates the base; it is the third party's bookkeeping.
//
// Overlay is safe for concurrent use, and its storage is sharded
// (internal/store): the edge-delta sets and the materialized-list cache live
// in power-of-two-sharded maps, so fleet walkers reading different nodes'
// overlay lists never touch the same lock. A single RWMutex (mu) still
// serializes *mutations* against list materialization — edits are rare next
// to reads, and cross-key atomicity (a removal touches both endpoints' lists
// plus a delta set) is exactly what per-key shard locks cannot give — but
// the hot path, re-reading an already-materialized list, is one shard
// read-lock away and never blocks on mu. Materialized lists are carved from
// a slab arena (one allocation amortizes hundreds of lists) and are
// immutable snapshots with clipped capacity: invalidation replaces them
// rather than editing them in place, so holding one across a concurrent
// mutation is safe, and appending to one reallocates instead of corrupting
// the arena.
type Overlay struct {
	base walk.Source
	// pf is the base's prefetch capability (nil when the base cannot warm
	// its cache asynchronously, e.g. a local *graph.Graph).
	pf walk.PrefetchSource
	// failer is the base's failure-reporting capability (a walk.Bound under
	// a cancellable session). When it reports an error, base reads are
	// returning truncated (nil) lists; the overlay must not let those poison
	// its materialized-list cache — a cancelled run may be resumed with a
	// fresh context, and the cache outlives the cancellation.
	failer walk.Failing

	// mu serializes mutations (and Materialize snapshots) against list
	// materialization: mutators hold it exclusively, materializing readers
	// hold it shared. Lock order: mu first, then any shard lock of the
	// sharded maps below; never the reverse.
	mu      sync.RWMutex
	removed *store.Map[graph.EdgeKey, struct{}]
	added   *store.Map[graph.EdgeKey, struct{}]
	// addedAdj lists added-edge partners per node for list materialization.
	// Guarded by mu (only touched by mutators and materializing readers).
	addedAdj map[graph.NodeID][]graph.NodeID
	// removedAdj mirrors the removed set as per-node partner lists, also
	// guarded by mu. It exists so materialization — which already holds mu
	// and has the deltas frozen — filters a degree-d base list without d
	// shard-lock acquisitions on the sharded removed set; the common case
	// (no removals at v) is one empty map read.
	removedAdj map[graph.NodeID][]graph.NodeID
	// lists caches materialized overlay neighbor lists, invalidated on
	// mutation of either endpoint. A hit never takes mu.
	lists *store.Map[graph.NodeID, []graph.NodeID]
	// arena backs the materialized lists' storage.
	arena *store.Arena[graph.NodeID]
	// usedPivots records nodes that already hosted a Theorem 4 replacement.
	// It lives on the overlay — not the sampler — so the one-replacement-
	// per-pivot bound (Config.PivotOnce) holds across a whole fleet sharing
	// this overlay, keeping total rewiring O(|V|) regardless of k. Guarded
	// by mu.
	usedPivots map[graph.NodeID]struct{}
}

// NewOverlay wraps base with an empty delta (default shard count).
func NewOverlay(base walk.Source) *Overlay {
	return NewOverlayShards(base, 0)
}

// NewOverlayShards wraps base with an empty delta whose sharded stores use n
// shards (rounded up to a power of two; n <= 0 selects store.DefaultShards,
// n == 1 the legacy single-lock layout).
func NewOverlayShards(base walk.Source, n int) *Overlay {
	pf, _ := base.(walk.PrefetchSource)
	failer, _ := base.(walk.Failing)
	return &Overlay{
		base:       base,
		pf:         pf,
		failer:     failer,
		removed:    store.NewMap[graph.EdgeKey, struct{}](n),
		added:      store.NewMap[graph.EdgeKey, struct{}](n),
		addedAdj:   make(map[graph.NodeID][]graph.NodeID),
		removedAdj: make(map[graph.NodeID][]graph.NodeID),
		lists:      store.NewMap[graph.NodeID, []graph.NodeID](n),
		arena:      store.NewArena[graph.NodeID](0),
		usedPivots: make(map[graph.NodeID]struct{}),
	}
}

// Base returns the wrapped source.
func (o *Overlay) Base() walk.Source { return o.base }

// StoreShards returns the overlay's shard count.
func (o *Overlay) StoreShards() int { return o.lists.Shards() }

// Neighbors returns v's overlay neighbor list (sorted; an immutable snapshot
// owned by the overlay — do not modify its elements). Reading it may cost a
// query on the underlying client for v's base list — the same query any walk
// positioned at v must pay anyway.
func (o *Overlay) Neighbors(v graph.NodeID) []graph.NodeID {
	if lst, ok := o.lists.Get(v); ok {
		return lst
	}
	// Warm the base cache BEFORE taking the overlay lock: on a fresh node
	// the base read is the expensive part (a real provider round-trip
	// through the client), and holding the overlay lock across it would
	// serialize the whole fleet behind one walker's network wait. Base
	// lists are immutable per node, so the early fetch is safe; the
	// materialization below re-reads it as a cache hit.
	o.base.Neighbors(v)
	if o.failed() {
		// The warm-up read was aborted (cancellation, deadline, budget):
		// return nil like an absorbing read, WITHOUT materializing — caching
		// a truncated list here would corrupt every later run over this
		// overlay.
		return nil
	}
	// Materialize under the shared lock: concurrent readers materialize
	// different (or even the same) nodes in parallel; mutators are excluded,
	// so the delta sets cannot change between the reads below and the cache
	// publish.
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.materializeLocked(v)
}

// failed reports whether the base source is currently in a failed state
// (only ever true for failure-reporting bases, i.e. a walk.Bound whose run
// was cancelled or ran out of budget).
func (o *Overlay) failed() bool {
	return o.failer != nil && o.failer.Err() != nil
}

// cachedList returns v's materialized overlay list if one exists, without
// triggering materialization (and therefore without any base query).
func (o *Overlay) cachedList(v graph.NodeID) ([]graph.NodeID, bool) {
	return o.lists.Get(v)
}

// Degree returns v's overlay degree.
func (o *Overlay) Degree(v graph.NodeID) int { return len(o.Neighbors(v)) }

// HasEdge reports whether (u, v) exists in the overlay. It consults the
// delta sets first and falls back to u's materialized list.
func (o *Overlay) HasEdge(u, v graph.NodeID) bool {
	k := graph.KeyOf(u, v)
	if o.removed.Contains(k) {
		return false
	}
	if o.added.Contains(k) {
		return true
	}
	return graph.ContainsSorted(o.Neighbors(u), v)
}

// RemoveEdge deletes (u, v) from the overlay. Removing an edge that is not
// present is a no-op. Removing an added edge cancels the addition.
func (o *Overlay) RemoveEdge(u, v graph.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.removeEdgeLocked(u, v)
}

func (o *Overlay) removeEdgeLocked(u, v graph.NodeID) {
	k := graph.KeyOf(u, v)
	if o.added.Contains(k) {
		o.added.Delete(k)
		o.addedAdj[u] = without(o.addedAdj[u], v)
		o.addedAdj[v] = without(o.addedAdj[v], u)
	} else if graph.ContainsSorted(o.base.Neighbors(u), v) {
		if o.removed.Contains(k) {
			return // already removed: a no-op, and appending to the
			// removedAdj mirror twice would corrupt a later restore
		}
		o.removed.Put(k, struct{}{})
		o.removedAdj[u] = append(o.removedAdj[u], v)
		o.removedAdj[v] = append(o.removedAdj[v], u)
	} else {
		// Neither an addition nor a base edge: a true no-op. Guarding here
		// keeps the removed set a subset of the base edge set even when a
		// fleet member acts on a stale neighbor list (e.g. the added edge it
		// saw was cancelled concurrently), so RemovedCount and Materialize
		// stay exact.
		return
	}
	o.lists.Delete(u)
	o.lists.Delete(v)
}

// AddEdge inserts (u, v) into the overlay: any removal mark is cleared, and
// the edge is recorded as an addition only when the base graph does not
// already carry it (so re-adding a base edge or restoring a removed one
// leaves the delta sets clean). Self-loops are ignored.
func (o *Overlay) AddEdge(u, v graph.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.addEdgeLocked(u, v)
}

func (o *Overlay) addEdgeLocked(u, v graph.NodeID) {
	if u == v {
		return
	}
	k := graph.KeyOf(u, v)
	if o.removed.Contains(k) {
		o.removed.Delete(k)
		o.removedAdj[u] = without(o.removedAdj[u], v)
		o.removedAdj[v] = without(o.removedAdj[v], u)
	}
	o.lists.Delete(u)
	o.lists.Delete(v)
	if graph.ContainsSorted(o.base.Neighbors(u), v) {
		return // present in the base; clearing the removal mark restored it
	}
	if !o.added.Contains(k) {
		o.added.Put(k, struct{}{})
		o.addedAdj[u] = append(o.addedAdj[u], v)
		o.addedAdj[v] = append(o.addedAdj[v], u)
	}
}

// ReplaceEdge performs the Theorem 4 operation: remove (u, p), add (u, w),
// atomically with respect to concurrent readers.
func (o *Overlay) ReplaceEdge(u, p, w graph.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.removeEdgeLocked(u, p)
	o.addEdgeLocked(u, w)
}

// materializeLocked returns v's current overlay list, building it with mu
// held (shared by the read path, exclusive inside guarded mutations —
// either way the delta sets are frozen). Callers must only reach here for
// nodes whose base neighborhood is already cached by the client (the sampler
// guarantees that: it queries a node before judging its edges), so the base
// read never blocks on a provider round-trip while the lock is held.
func (o *Overlay) materializeLocked(v graph.NodeID) []graph.NodeID {
	if lst, ok := o.lists.Get(v); ok {
		return lst
	}
	base := o.base.Neighbors(v)
	extra := o.addedAdj[v]
	lst := o.arena.Alloc(len(base) + len(extra))
	if gone := o.removedAdj[v]; len(gone) == 0 {
		lst = append(lst, base...)
	} else {
		for _, w := range base {
			if !containsUnsorted(gone, w) {
				lst = append(lst, w)
			}
		}
	}
	if len(extra) > 0 {
		lst = append(lst, extra...)
		slices.Sort(lst)
	}
	// Clip the snapshot's capacity: a caller that appends to it reallocates
	// instead of scribbling over the arena cells reserved for this list.
	lst = lst[:len(lst):len(lst)]
	if o.failed() {
		// The base read may have been truncated by a cancelled run: hand the
		// caller a best-effort list (errors fail toward no mutation in the
		// guarded commits) but do not cache it past the failure.
		return lst
	}
	o.lists.Put(v, lst)
	return lst
}

// RemoveEdgeGuarded removes (u, v) only if, under the lock, the edge still
// exists and the removal respects the walk-safety guards re-validated
// against the *current* overlay: both endpoints keep degree above their
// minimum (minU/minV are lower bounds the post-removal degree must not go
// below, i.e. removal requires current degree > min), and, when
// requireCommon is set, the endpoints share at least one other overlay
// neighbor so the overlay cannot disconnect. Snapshot-based guards alone
// are not enough in a fleet: two walkers can both judge the same edge
// removable against the same stale lists; the second commit must re-check.
// Reports whether the edge was removed.
func (o *Overlay) RemoveEdgeGuarded(u, v graph.NodeID, minU, minV int, requireCommon bool) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.added.Contains(graph.KeyOf(u, v)) {
		// (u, v) is (now) a Theorem 4 addition — those are likely
		// cross-cutting and must never be removed by the criterion, even if
		// the caller judged a same-keyed base edge on a stale snapshot.
		return false
	}
	uLst := o.materializeLocked(u)
	if !graph.ContainsSorted(uLst, v) {
		return false // already gone (another walker won the race)
	}
	vLst := o.materializeLocked(v)
	if len(uLst) <= minU || len(vLst) <= minV {
		return false
	}
	if requireCommon && graph.CountIntersectSorted(uLst, vLst) < 1 {
		return false
	}
	o.removeEdgeLocked(u, v)
	return true
}

// ReplaceEdgeGuarded performs the Theorem 4 replacement remove (u, p) /
// add (u, w) only if, under the lock, it is still valid on the current
// overlay: (u, p) exists, (u, w) does not (a no-op replacement would just
// delete an edge, which Theorem 4 does not license), the pivot p still has
// exactly degree 3, and — when claimPivot is set — p has not hosted a
// replacement before (the claim commits atomically with the rewiring, so a
// fleet performs at most one replacement per pivot in total). Reports
// whether the replacement happened.
func (o *Overlay) ReplaceEdgeGuarded(u, p, w graph.NodeID, claimPivot bool) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if claimPivot {
		if _, used := o.usedPivots[p]; used {
			return false
		}
	}
	uLst := o.materializeLocked(u)
	if !graph.ContainsSorted(uLst, p) || graph.ContainsSorted(uLst, w) || u == w {
		return false
	}
	pLst := o.materializeLocked(p)
	if !ReplaceablePivot(len(pLst)) || !graph.ContainsSorted(pLst, w) {
		return false // pivot degree changed, or w is no longer p's neighbor
	}
	o.removeEdgeLocked(u, p)
	o.addEdgeLocked(u, w)
	if claimPivot {
		o.usedPivots[p] = struct{}{}
	}
	return true
}

// PivotUsed reports whether p already hosted a Theorem 4 replacement.
func (o *Overlay) PivotUsed(p graph.NodeID) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, used := o.usedPivots[p]
	return used
}

// RemovedCount returns the number of net edge removals.
func (o *Overlay) RemovedCount() int { return o.removed.Len() }

// AddedCount returns the number of net edge additions.
func (o *Overlay) AddedCount() int { return o.added.Len() }

// Removed reports whether (u,v) was explicitly removed.
func (o *Overlay) Removed(u, v graph.NodeID) bool {
	return o.removed.Contains(graph.KeyOf(u, v))
}

// IsAdded reports whether (u,v) is an overlay addition (not a base edge).
func (o *Overlay) IsAdded(u, v graph.NodeID) bool {
	return o.added.Contains(graph.KeyOf(u, v))
}

// Delta captures the overlay's complete rewiring state — removed edges,
// added edges, and the pivots already spent on Theorem 4 replacements — as
// sorted slices, suitable for serializing into a session checkpoint. The
// pivot set matters for byte-identical resumption: whether a pivot is still
// available decides whether the sampler draws its replacement coin at all,
// so losing it would desynchronize the RNG stream from an uninterrupted run.
func (o *Overlay) Delta() (removed, added []graph.EdgeKey, pivots []graph.NodeID) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	removed = o.removed.Keys()
	added = o.added.Keys()
	pivots = make([]graph.NodeID, 0, len(o.usedPivots))
	for p := range o.usedPivots {
		pivots = append(pivots, p)
	}
	slices.Sort(removed)
	slices.Sort(added)
	slices.Sort(pivots)
	return removed, added, pivots
}

// RestoreDelta installs a delta captured with Delta into a fresh overlay —
// the resume half of session checkpointing. It writes the sets and their
// adjacency mirrors directly, so restoration issues no base queries (the
// public mutators consult base neighborhoods, which over a cold provider
// would spend budget). Call it only on an empty overlay, before any walker
// runs; the materialized-list cache is dropped so lists rebuild lazily.
func (o *Overlay) RestoreDelta(removed, added []graph.EdgeKey, pivots []graph.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, k := range removed {
		if o.removed.Contains(k) {
			continue
		}
		u, v := k.Nodes()
		o.removed.Put(k, struct{}{})
		o.removedAdj[u] = append(o.removedAdj[u], v)
		o.removedAdj[v] = append(o.removedAdj[v], u)
		o.lists.Delete(u)
		o.lists.Delete(v)
	}
	for _, k := range added {
		if o.added.Contains(k) {
			continue
		}
		u, v := k.Nodes()
		o.added.Put(k, struct{}{})
		o.addedAdj[u] = append(o.addedAdj[u], v)
		o.addedAdj[v] = append(o.addedAdj[v], u)
		o.lists.Delete(u)
		o.lists.Delete(v)
	}
	for _, p := range pivots {
		o.usedPivots[p] = struct{}{}
	}
}

// RemovedEdges returns the keys of all removed edges (order unspecified).
// Useful for reconstructing overlay degrees against a local copy of the
// base graph without touching the query budget.
func (o *Overlay) RemovedEdges() []graph.EdgeKey { return o.removed.Keys() }

// AddedEdges returns the keys of all added edges (order unspecified).
func (o *Overlay) AddedEdges() []graph.EdgeKey { return o.added.Keys() }

// Materialize builds the full overlay as a concrete graph over n nodes.
// It reads every node's base neighborhood, so call it only when the base is
// a local graph (or a client whose budget you are willing to spend) — the
// paper does exactly this in §V-A.3 to compute overlay mixing times after
// running the walk to full coverage. The write lock is held throughout, so
// the result is a consistent snapshot even with walkers still running.
func (o *Overlay) Materialize(n int) *graph.Graph {
	o.mu.Lock()
	defer o.mu.Unlock()
	b := graph.NewBuilder(n)
	for u := graph.NodeID(0); int(u) < n; u++ {
		gone := o.removedAdj[u]
		for _, v := range o.base.Neighbors(u) {
			if u < v && !containsUnsorted(gone, v) {
				b.AddEdge(u, v)
			}
		}
	}
	for _, k := range o.added.Keys() {
		u, v := k.Nodes()
		b.AddEdge(u, v)
	}
	return b.Build()
}

// containsUnsorted scans a (short) partner list; removal counts per node are
// tiny next to degrees, so a linear scan beats building a set.
func containsUnsorted(lst []graph.NodeID, x graph.NodeID) bool {
	for _, v := range lst {
		if v == x {
			return true
		}
	}
	return false
}

func without(lst []graph.NodeID, x graph.NodeID) []graph.NodeID {
	for i, v := range lst {
		if v == x {
			return append(lst[:i], lst[i+1:]...)
		}
	}
	return lst
}

// Prefetch forwards speculative fetch hints to the base source when it
// supports them (osn.Client with a running pool does) and reports how many
// were accepted. Overlay rewiring never adds nodes, only edges, so warming
// the base cache for any id the walk may demand is always meaningful. With a
// non-prefetchable base every hint is refused — the overlay then still
// satisfies walk.PrefetchSource, just as a sink.
func (o *Overlay) Prefetch(ids ...graph.NodeID) int {
	if o.pf == nil {
		return 0
	}
	return o.pf.Prefetch(ids...)
}

// Known reports whether a prefetch hint for v would be redundant. Without a
// prefetchable base it falls back to whether v's overlay list is already
// materialized.
func (o *Overlay) Known(v graph.NodeID) bool {
	if o.pf != nil {
		return o.pf.Known(v)
	}
	_, ok := o.cachedList(v)
	return ok
}

// CommonOverlayNeighbors intersects the overlay neighbor lists of u and v.
func (o *Overlay) CommonOverlayNeighbors(u, v graph.NodeID) []graph.NodeID {
	return graph.IntersectSorted(o.Neighbors(u), o.Neighbors(v))
}
