package core

import (
	"testing"
	"testing/quick"

	"rewire/internal/graph"
)

func TestRemovableTheorem3Examples(t *testing.T) {
	cases := []struct {
		name           string
		common, ku, kv int
		want           bool
	}{
		// The paper's Fig 3: u and v share 5 common neighbors, each with one
		// other edge (ku = kv = 7 counting each other): removable.
		{"fig3", 5, 7, 7, true},
		// Barbell clique edge: 9 common, degrees 10/10: removable.
		{"barbell-clique", 9, 10, 10, true},
		// Bridge of the barbell: no common neighbors, degrees 11/11.
		{"barbell-bridge", 0, 11, 11, false},
		// Tightness (Corollary 1): equality must NOT fire.
		// common=4 -> lhs = 2*(2+1) = 6; max = 6 -> 6 > 6 false.
		{"tight-boundary", 4, 6, 6, false},
		{"just-above", 5, 6, 6, true},
		// Asymmetric degrees use the max.
		{"asymmetric", 5, 3, 12, false},
		{"asymmetric-fires", 9, 3, 11, true},
		// Triangle edge: common=1, degrees 2/2: 2*(1+1)=4 > 2.
		{"triangle", 1, 2, 2, true},
		// Isolated pair (K2): common=0, degrees 1/1: 2*(0+1)=2 > 1 fires —
		// the samplers must guard this case by degree, not the criterion.
		{"k2", 0, 1, 1, true},
	}
	for _, c := range cases {
		if got := RemovableTheorem3(c.common, c.ku, c.kv); got != c.want {
			t.Errorf("%s: RemovableTheorem3(%d,%d,%d) = %v, want %v",
				c.name, c.common, c.ku, c.kv, got, c.want)
		}
	}
}

func TestRemovableTheorem3Symmetric(t *testing.T) {
	check := func(common, ku, kv uint8) bool {
		return RemovableTheorem3(int(common), int(ku), int(kv)) ==
			RemovableTheorem3(int(common), int(kv), int(ku))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRemovableTheorem3MonotoneInCommon(t *testing.T) {
	// More shared neighbors can only help.
	check := func(common, ku, kv uint8) bool {
		c := int(common)
		if RemovableTheorem3(c, int(ku), int(kv)) {
			return RemovableTheorem3(c+1, int(ku), int(kv))
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// mapDegreeCache is a test DegreeCache.
type mapDegreeCache map[graph.NodeID]int

func (m mapDegreeCache) CachedDegree(v graph.NodeID) (int, bool) {
	d, ok := m[v]
	return d, ok
}

func TestRemovableTheorem5ReducesToTheorem3(t *testing.T) {
	common := []graph.NodeID{4, 5, 6}
	for _, cache := range []DegreeCache{nil, mapDegreeCache{}} {
		if RemovableTheorem5(common, 5, 6, cache) != RemovableTheorem3(3, 5, 6) {
			t.Errorf("empty N* should reduce to Theorem 3 (cache=%v)", cache)
		}
	}
}

func TestRemovableTheorem5ExtensionFires(t *testing.T) {
	// Two common neighbors, both cached with degree 2. Theorem 3 at
	// max degree 5: 2*(⌈2/2⌉+1) = 4 > 5 false.
	// Theorem 5: rest=0 -> 2*(0+1)=2, bonus = (4-2)+(4-2) = 4 -> 6 > 5 true.
	common := []graph.NodeID{7, 8}
	cache := mapDegreeCache{7: 2, 8: 2}
	if RemovableTheorem3(len(common), 5, 5) {
		t.Fatal("Theorem 3 should not fire in this configuration")
	}
	if !RemovableTheorem5(common, 5, 5, cache) {
		t.Error("Theorem 5 should fire with two degree-2 common neighbors")
	}
}

func TestRemovableTheorem5PaperFig5(t *testing.T) {
	// Fig 5: one common neighbor w with kw = 3 known. With ku = kv = 3:
	// Theorem 3: 2*(⌈1/2⌉+1) = 4 > 3 fires anyway; make degrees 4 so only
	// the extension fires: Thm3: 4 > 4 false; Thm5: rest=0 -> 2 + (4-3)=3 > 4
	// false. Use kw=2: bonus 2 -> 4 > 4 false. Two common neighbors needed
	// at degree 4: Thm3: 2*(1+1)=4 > 4 false; Thm5 with both kw=3:
	// 2 + 1 + 1 = 4 > 4 false; kw=2,3: 2+2+1 = 5 > 4 true.
	common := []graph.NodeID{1, 2}
	cache := mapDegreeCache{1: 2, 2: 3}
	if RemovableTheorem3(2, 4, 4) {
		t.Fatal("Theorem 3 must not fire")
	}
	if !RemovableTheorem5(common, 4, 4, cache) {
		t.Error("Theorem 5 must fire with degree-2 and degree-3 common neighbors")
	}
}

func TestRemovableTheorem5IgnoresHighDegreeNeighbors(t *testing.T) {
	// Cached common neighbors with kw >= 4 contribute nothing (dragging
	// them is never profitable, §III-D).
	common := []graph.NodeID{1, 2}
	cacheHigh := mapDegreeCache{1: 9, 2: 14}
	if RemovableTheorem5(common, 5, 5, cacheHigh) != RemovableTheorem3(2, 5, 5) {
		t.Error("high-degree cached neighbors must not change the verdict")
	}
	// Degree-1 neighbors are outside N* too (kw must be in [2,3]).
	cacheLow := mapDegreeCache{1: 1, 2: 1}
	if RemovableTheorem5(common, 5, 5, cacheLow) != RemovableTheorem3(2, 5, 5) {
		t.Error("degree-1 cached neighbors must not change the verdict")
	}
}

func TestRemovableCombinedContainsTheorem3(t *testing.T) {
	// The combined Removable must fire whenever Theorem 3 alone does,
	// regardless of what the degree cache contains (the ⌈·/2⌉ parity means
	// the raw Theorem 5 formula alone does NOT have this containment —
	// that is exactly why Removable is the OR of the two).
	check := func(nCommon, ku, kv uint8, degrees []uint8) bool {
		c := int(nCommon % 12)
		common := make([]graph.NodeID, c)
		cache := mapDegreeCache{}
		for i := range common {
			common[i] = graph.NodeID(i)
			if i < len(degrees) {
				cache[graph.NodeID(i)] = int(degrees[i]%5) + 1 // degrees 1..5
			}
		}
		if RemovableTheorem3(c, int(ku%20), int(kv%20)) {
			return Removable(common, int(ku%20), int(kv%20), cache) &&
				Removable(common, int(ku%20), int(kv%20), nil)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRemovableParityCounterexample(t *testing.T) {
	// The documented counterexample: 3 common neighbors, one cached at
	// degree 3, max degree 5. Theorem 3 fires; the raw Theorem 5 formula
	// does not; the combined Removable must.
	common := []graph.NodeID{1, 2, 3}
	cache := mapDegreeCache{1: 3}
	if !RemovableTheorem3(3, 5, 5) {
		t.Fatal("Theorem 3 should fire")
	}
	if RemovableTheorem5(common, 5, 5, cache) {
		t.Fatal("raw Theorem 5 formula should not fire here (parity loss)")
	}
	if !Removable(common, 5, 5, cache) {
		t.Error("combined Removable must fire")
	}
}

func TestReplaceablePivot(t *testing.T) {
	for d, want := range map[int]bool{1: false, 2: false, 3: true, 4: false, 10: false} {
		if got := ReplaceablePivot(d); got != want {
			t.Errorf("ReplaceablePivot(%d) = %v, want %v (Corollary 2: only 3)", d, got, want)
		}
	}
}
