// Package estimate turns walk samples into aggregate answers. It implements
// the paper's estimation pipeline (§IV-A): samples arrive from a walker's
// stationary distribution τ and are reweighted by importance sampling,
//
//	A(f) = Σ f(x_i) w(x_i) / Σ w(x_i),  w(x) ∝ target(x)/τ(x),
//
// so that AVG aggregates over all users (uniform target) come out unbiased.
// With the provider-published user count, COUNT and SUM aggregates follow.
package estimate

import (
	"errors"

	"rewire/internal/graph"
)

// ImportanceSampler accumulates weighted samples. For the uniform target the
// weight of a sample x is 1/ω(x), where ω is the walker's StationaryWeight
// (degree for SRW, overlay degree for MTO, constant for MHRW/RJ).
type ImportanceSampler struct {
	sumFW float64
	sumW  float64
	n     int
}

// Add records one sample with aggregate value f and stationary weight omega
// (> 0; non-positive weights are rejected to protect the ratio estimator).
func (s *ImportanceSampler) Add(f, omega float64) error {
	if omega <= 0 {
		return errors.New("estimate: non-positive stationary weight")
	}
	w := 1 / omega
	s.sumFW += f * w
	s.sumW += w
	s.n++
	return nil
}

// N returns the number of samples recorded.
func (s *ImportanceSampler) N() int { return s.n }

// Estimate returns the current self-normalized estimate (0 before any
// sample).
func (s *ImportanceSampler) Estimate() float64 {
	if s.sumW == 0 {
		return 0
	}
	return s.sumFW / s.sumW
}

// Aggregate is a per-user quantity being averaged, e.g. degree or
// self-description length.
type Aggregate struct {
	// Name labels the aggregate in reports.
	Name string
	// Value extracts the quantity from a sampled user. deg is the user's
	// observed degree (free at sampling time); attrs carries the published
	// content, zero-valued when the dataset is topological only.
	Value func(v graph.NodeID, deg int, attrs Attrs) float64
}

// Attrs mirrors osn.UserAttrs without importing it (estimate is also used
// with plain graphs). Convert at the call site.
type Attrs struct {
	Age     int
	DescLen int
	Posts   int
}

// AvgDegree is the paper's default aggregate for topological datasets.
func AvgDegree() Aggregate {
	return Aggregate{
		Name:  "average degree",
		Value: func(_ graph.NodeID, deg int, _ Attrs) float64 { return float64(deg) },
	}
}

// AvgDescLen is the Fig 11(c) aggregate: average self-description length.
func AvgDescLen() Aggregate {
	return Aggregate{
		Name:  "average self-description length",
		Value: func(_ graph.NodeID, _ int, a Attrs) float64 { return float64(a.DescLen) },
	}
}

// AvgAge averages the age attribute.
func AvgAge() Aggregate {
	return Aggregate{
		Name:  "average age",
		Value: func(_ graph.NodeID, _ int, a Attrs) float64 { return float64(a.Age) },
	}
}

// CountPredicate builds a selection-condition aggregate: the *fraction* of
// users satisfying pred (multiply by the published user count for COUNT).
func CountPredicate(name string, pred func(v graph.NodeID, deg int, attrs Attrs) bool) Aggregate {
	return Aggregate{
		Name: name,
		Value: func(v graph.NodeID, deg int, a Attrs) float64 {
			if pred(v, deg, a) {
				return 1
			}
			return 0
		},
	}
}

// GroundTruthDegree returns the exact average degree of g.
func GroundTruthDegree(g *graph.Graph) float64 { return g.AverageDegree() }

// GroundTruth computes the exact uniform average of agg over all nodes of g,
// with attrs optionally supplying per-node content (nil for topological
// aggregates).
func GroundTruth(g *graph.Graph, agg Aggregate, attrs func(graph.NodeID) Attrs) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	total := 0.0
	for v := 0; v < n; v++ {
		var a Attrs
		if attrs != nil {
			a = attrs(graph.NodeID(v))
		}
		total += agg.Value(graph.NodeID(v), g.Degree(graph.NodeID(v)), a)
	}
	return total / float64(n)
}
