package estimate

import (
	"rewire/internal/diag"
	"rewire/internal/graph"
	"rewire/internal/walk"
)

// InfoFunc returns the degree and attributes of a sampled user. Built over
// an osn.Client it costs nothing extra: the walk already queried the node it
// stands on.
type InfoFunc func(v graph.NodeID) (deg int, attrs Attrs)

// CostFunc returns the query budget spent so far (e.g. Client.UniqueQueries).
type CostFunc func() int64

// SessionConfig controls one sampling run.
type SessionConfig struct {
	// BurnIn is the convergence monitor deciding when sampling may start
	// (the paper uses Geweke on the degree trace). nil skips burn-in.
	BurnIn diag.Monitor
	// BurnInCheckEvery is how many steps pass between convergence checks
	// (default 25).
	BurnInCheckEvery int
	// MaxBurnInSteps caps the burn-in phase (default 100000).
	MaxBurnInSteps int
	// Samples is the number of post-burn-in samples to draw.
	Samples int
	// Thinning is the number of walk steps per retained sample (default 1,
	// as in the paper — every post-burn-in node is a sample).
	Thinning int
	// RecordEvery sets the trajectory granularity in samples (default 1).
	RecordEvery int
	// Stop, when non-nil, is polled once per walk step; returning true ends
	// the session early (burn-in or sampling alike) with whatever has been
	// accumulated. This is how a context-bound caller threads cancellation
	// and budget exhaustion through the estimation loop without the loop
	// importing context.
	Stop func() bool
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.BurnInCheckEvery <= 0 {
		c.BurnInCheckEvery = 25
	}
	if c.MaxBurnInSteps <= 0 {
		c.MaxBurnInSteps = 100000
	}
	if c.Thinning <= 0 {
		c.Thinning = 1
	}
	if c.RecordEvery <= 0 {
		c.RecordEvery = 1
	}
	return c
}

// SessionResult reports one sampling run.
type SessionResult struct {
	// Trajectory holds (cost, estimate) points across the sampling phase.
	Trajectory *Trajectory
	// Estimate is the final importance-sampling estimate.
	Estimate float64
	// BurnInSteps is the number of steps spent before sampling.
	BurnInSteps int
	// BurnInConverged reports whether the monitor fired (false when the cap
	// was hit or no monitor was configured).
	BurnInConverged bool
	// Samples is the number of samples recorded.
	Samples int
	// FinalCost is the query budget consumed by the whole run.
	FinalCost int64
}

// RunSession executes the paper's sampling protocol: walk until the
// convergence monitor fires (burn-in), then record samples with importance
// weights, tracking the estimate as a function of spent query cost.
//
// weight may be nil for walkers that do not implement walk.Weighter, in
// which case samples are unweighted (valid only for uniform-stationary
// walkers like MHRW/RJ).
func RunSession(w walk.Walker, weight walk.Weighter, agg Aggregate, info InfoFunc, cost CostFunc, cfg SessionConfig) SessionResult {
	cfg = cfg.withDefaults()
	// Without a cost meter, fall back to counting steps.
	var steps int64
	step := func() graph.NodeID { steps++; return w.Step() }
	if cost == nil {
		cost = func() int64 { return steps }
	}
	var res SessionResult
	res.Trajectory = &Trajectory{}

	stopped := func() bool { return cfg.Stop != nil && cfg.Stop() }

	// Burn-in phase: observe the degree trace until convergence.
	if cfg.BurnIn != nil {
		for res.BurnInSteps < cfg.MaxBurnInSteps {
			if stopped() {
				break
			}
			v := step()
			if stopped() {
				// The step's query path failed: v is stale and its degree
				// would read as garbage — keep it out of the convergence
				// trace (mirrors the sampling phase's post-step guard).
				break
			}
			res.BurnInSteps++
			deg, _ := info(v)
			cfg.BurnIn.Observe(float64(deg))
			if res.BurnInSteps%cfg.BurnInCheckEvery == 0 && cfg.BurnIn.Converged() {
				res.BurnInConverged = true
				break
			}
		}
	}

	// Sampling phase.
	var est ImportanceSampler
	for i := 0; i < cfg.Samples; i++ {
		if stopped() {
			break
		}
		var v graph.NodeID
		for s := 0; s < cfg.Thinning; s++ {
			v = step()
		}
		if stopped() {
			// The step's query path failed mid-walk (cancellation, budget):
			// v is a stale position whose info read would observe garbage
			// (e.g. degree 0) — drop it rather than poison the partial
			// estimate.
			break
		}
		deg, attrs := info(v)
		f := agg.Value(v, deg, attrs)
		omega := 1.0
		if weight != nil {
			omega = weight.StationaryWeight(v)
		}
		if omega <= 0 {
			omega = 1 // degenerate weight: fall back rather than poison the ratio
		}
		if err := est.Add(f, omega); err != nil {
			continue
		}
		res.Samples++
		if res.Samples%cfg.RecordEvery == 0 {
			res.Trajectory.Record(cost(), est.Estimate())
		}
	}
	res.Estimate = est.Estimate()
	res.FinalCost = cost()
	if len(res.Trajectory.Points) == 0 || res.Trajectory.FinalCost() != res.FinalCost {
		res.Trajectory.Record(res.FinalCost, res.Estimate)
	}
	return res
}
