package estimate

import (
	"math"

	"rewire/internal/stats"
)

// TrajectoryPoint is one (query cost, running estimate) observation.
type TrajectoryPoint struct {
	Cost     int64
	Estimate float64
}

// Trajectory records how an estimate evolves with spent query budget — the
// raw material of the paper's Fig 7 and Fig 11 bias-vs-cost curves.
type Trajectory struct {
	Points []TrajectoryPoint
}

// Record appends an observation.
func (t *Trajectory) Record(cost int64, estimate float64) {
	t.Points = append(t.Points, TrajectoryPoint{Cost: cost, Estimate: estimate})
}

// Final returns the last estimate (NaN when empty).
func (t *Trajectory) Final() float64 {
	if len(t.Points) == 0 {
		return math.NaN()
	}
	return t.Points[len(t.Points)-1].Estimate
}

// FinalCost returns the last recorded cost (0 when empty).
func (t *Trajectory) FinalCost() int64 {
	if len(t.Points) == 0 {
		return 0
	}
	return t.Points[len(t.Points)-1].Cost
}

// CostToReach returns the query cost after which the relative error against
// truth drops below threshold *and stays there* — the paper's Fig 7 y-axis
// ("the maximum query cost for a random walk to generate an estimation with
// relative error above a given value"). The second return is false when the
// trajectory never settles below the threshold.
func (t *Trajectory) CostToReach(truth, threshold float64) (int64, bool) {
	if len(t.Points) == 0 {
		return 0, false
	}
	// Find the last point whose error is >= threshold; the answer is the
	// cost of the next point.
	lastBad := -1
	for i, p := range t.Points {
		if stats.RelativeError(p.Estimate, truth) >= threshold {
			lastBad = i
		}
	}
	switch {
	case lastBad == len(t.Points)-1:
		return t.Points[lastBad].Cost, false // never settled
	case lastBad < 0:
		return t.Points[0].Cost, true // below threshold from the start
	default:
		return t.Points[lastBad+1].Cost, true
	}
}

// MeanCostToReach averages CostToReach over many runs, counting only runs
// that settled; it returns the mean and how many settled.
func MeanCostToReach(runs []*Trajectory, truth, threshold float64) (float64, int) {
	var sum float64
	settled := 0
	for _, tr := range runs {
		if c, ok := tr.CostToReach(truth, threshold); ok {
			sum += float64(c)
			settled++
		}
	}
	if settled == 0 {
		return math.NaN(), 0
	}
	return sum / float64(settled), settled
}
