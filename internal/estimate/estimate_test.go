package estimate

import (
	"math"
	"testing"

	"rewire/internal/diag"
	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

func TestImportanceSamplerUnweighted(t *testing.T) {
	var s ImportanceSampler
	for _, f := range []float64{1, 2, 3, 4} {
		if err := s.Add(f, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Estimate(); got != 2.5 {
		t.Errorf("Estimate = %v, want 2.5", got)
	}
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
}

func TestImportanceSamplerWeighted(t *testing.T) {
	// Two items with stationary weights 1 and 3 (degree-proportional):
	// item values 10 and 30. Uniform-target estimate:
	// (10*1 + 30/3) / (1 + 1/3) = 20/(4/3) = 15 — not the naive 20.
	var s ImportanceSampler
	if err := s.Add(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(30, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.Estimate(); math.Abs(got-15) > 1e-12 {
		t.Errorf("Estimate = %v, want 15", got)
	}
}

func TestImportanceSamplerRejectsBadWeight(t *testing.T) {
	var s ImportanceSampler
	if err := s.Add(1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := s.Add(1, -2); err == nil {
		t.Error("negative weight accepted")
	}
	if s.Estimate() != 0 {
		t.Error("empty sampler estimate not 0")
	}
}

func TestSRWDegreeEstimateUnbiased(t *testing.T) {
	// The canonical identity: SRW samples reweighted by 1/deg estimate the
	// true average degree. Star graph: truth = 2(n-1)/n.
	g := gen.Star(20)
	truth := GroundTruthDegree(g)
	w := walk.NewSimple(g, 0, rng.New(1))
	var est ImportanceSampler
	for i := 0; i < 200000; i++ {
		v := w.Step()
		deg := float64(g.Degree(v))
		if err := est.Add(deg, deg); err != nil {
			t.Fatal(err)
		}
	}
	if rel := math.Abs(est.Estimate()-truth) / truth; rel > 0.02 {
		t.Errorf("SRW estimate %v vs truth %v (rel %v)", est.Estimate(), truth, rel)
	}
}

func TestGroundTruth(t *testing.T) {
	g := gen.Path(4) // degrees 1,2,2,1
	if got := GroundTruth(g, AvgDegree(), nil); got != 1.5 {
		t.Errorf("avg degree = %v, want 1.5", got)
	}
	attrs := func(v graph.NodeID) Attrs { return Attrs{DescLen: int(v) * 10} }
	if got := GroundTruth(g, AvgDescLen(), attrs); got != 15 {
		t.Errorf("avg desc len = %v, want 15", got)
	}
	frac := GroundTruth(g, CountPredicate("deg2", func(_ graph.NodeID, deg int, _ Attrs) bool {
		return deg == 2
	}), nil)
	if frac != 0.5 {
		t.Errorf("predicate fraction = %v, want 0.5", frac)
	}
}

func TestTrajectoryCostToReach(t *testing.T) {
	tr := &Trajectory{}
	truth := 10.0
	// Errors: 0.5, 0.3, 0.15, 0.05, 0.02 at costs 10..50.
	for i, est := range []float64{15, 13, 11.5, 10.5, 10.2} {
		tr.Record(int64(10*(i+1)), est)
	}
	c, ok := tr.CostToReach(truth, 0.2)
	if !ok || c != 30 {
		t.Errorf("CostToReach(0.2) = %d,%v want 30,true", c, ok)
	}
	c, ok = tr.CostToReach(truth, 0.1)
	if !ok || c != 40 {
		t.Errorf("CostToReach(0.1) = %d,%v want 40,true", c, ok)
	}
	// Never settles below 0.01.
	if _, ok := tr.CostToReach(truth, 0.01); ok {
		t.Error("should not settle below 0.01")
	}
	// Below threshold from the start.
	c, ok = tr.CostToReach(truth, 0.9)
	if !ok || c != 10 {
		t.Errorf("CostToReach(0.9) = %d,%v want 10,true", c, ok)
	}
}

func TestTrajectoryCostToReachNonMonotone(t *testing.T) {
	// An estimate that dips below then bounces above the threshold: the
	// cost must reflect the *last* exceedance.
	tr := &Trajectory{}
	tr.Record(10, 12) // err .2
	tr.Record(20, 10) // err 0
	tr.Record(30, 13) // err .3 again
	tr.Record(40, 10.1)
	c, ok := tr.CostToReach(10, 0.15)
	if !ok || c != 40 {
		t.Errorf("CostToReach = %d,%v want 40,true", c, ok)
	}
}

func TestMeanCostToReach(t *testing.T) {
	mk := func(costs []int64, ests []float64) *Trajectory {
		tr := &Trajectory{}
		for i := range costs {
			tr.Record(costs[i], ests[i])
		}
		return tr
	}
	runs := []*Trajectory{
		mk([]int64{10, 20}, []float64{15, 10}), // settles at 20
		mk([]int64{10, 20}, []float64{10, 10}), // settles at 10
		mk([]int64{10, 20}, []float64{15, 15}), // never settles
	}
	mean, settled := MeanCostToReach(runs, 10, 0.2)
	if settled != 2 || mean != 15 {
		t.Errorf("MeanCostToReach = %v,%d want 15,2", mean, settled)
	}
	// At a tiny threshold, runs 1 and 2 still settle (both end exactly at
	// the truth); run 3 never does.
	if _, settled := MeanCostToReach(runs, 10, 0.001); settled != 2 {
		t.Errorf("settled = %d, want 2", settled)
	}
}

func TestTrajectoryEmpty(t *testing.T) {
	tr := &Trajectory{}
	if !math.IsNaN(tr.Final()) {
		t.Error("empty Final should be NaN")
	}
	if tr.FinalCost() != 0 {
		t.Error("empty FinalCost should be 0")
	}
	if _, ok := tr.CostToReach(1, 0.5); ok {
		t.Error("empty trajectory cannot settle")
	}
}

func TestRunSessionEndToEnd(t *testing.T) {
	g := gen.EpinionsLikeSmall(3)
	svc := osn.NewService(g, nil, osn.Config{})
	client := osn.NewClient(svc)
	w := walk.NewSimple(client, 0, rng.New(5))
	info := func(v graph.NodeID) (int, Attrs) { return client.Degree(v), Attrs{} }
	res := RunSession(w, w, AvgDegree(), info, client.UniqueQueries, SessionConfig{
		BurnIn:  diag.NewGeweke(0.5, 200),
		Samples: 4000,
	})
	if !res.BurnInConverged {
		t.Error("burn-in did not converge")
	}
	if res.Samples != 4000 {
		t.Errorf("samples = %d", res.Samples)
	}
	truth := GroundTruthDegree(g)
	if rel := math.Abs(res.Estimate-truth) / truth; rel > 0.25 {
		t.Errorf("estimate %v vs truth %v (rel %v)", res.Estimate, truth, rel)
	}
	if res.FinalCost <= 0 || res.FinalCost != client.UniqueQueries() {
		t.Errorf("cost accounting broken: %d vs %d", res.FinalCost, client.UniqueQueries())
	}
	if len(res.Trajectory.Points) == 0 {
		t.Error("no trajectory recorded")
	}
}

func TestRunSessionWithoutCostMeter(t *testing.T) {
	g := gen.Barbell(5)
	w := walk.NewSimple(g, 0, rng.New(7))
	info := func(v graph.NodeID) (int, Attrs) { return g.Degree(v), Attrs{} }
	res := RunSession(w, w, AvgDegree(), info, nil, SessionConfig{Samples: 100})
	// Cost falls back to step counting: 100 sampling steps, no burn-in.
	if res.FinalCost != 100 {
		t.Errorf("FinalCost = %d, want 100 steps", res.FinalCost)
	}
}

func TestRunSessionUniformWalkerNoWeighter(t *testing.T) {
	g := gen.Lollipop(5, 3)
	mh := walk.NewMetropolisHastings(g, 0, rng.New(9))
	info := func(v graph.NodeID) (int, Attrs) { return g.Degree(v), Attrs{} }
	res := RunSession(mh, mh, AvgDegree(), info, nil, SessionConfig{Samples: 120000})
	truth := GroundTruthDegree(g)
	if rel := math.Abs(res.Estimate-truth) / truth; rel > 0.05 {
		t.Errorf("MHRW estimate %v vs truth %v (rel %v)", res.Estimate, truth, rel)
	}
}

func TestRunSessionBurnInCap(t *testing.T) {
	g := gen.Barbell(8)
	w := walk.NewSimple(g, 0, rng.New(11))
	info := func(v graph.NodeID) (int, Attrs) { return g.Degree(v), Attrs{} }
	res := RunSession(w, w, AvgDegree(), info, nil, SessionConfig{
		BurnIn:         diag.NewGeweke(1e-9, 100), // unreachable threshold
		MaxBurnInSteps: 500,
		Samples:        10,
	})
	if res.BurnInConverged {
		t.Error("impossible threshold converged")
	}
	if res.BurnInSteps != 500 {
		t.Errorf("burn-in steps = %d, want cap 500", res.BurnInSteps)
	}
}
