// Package diag implements the convergence diagnostics the paper uses to
// decide when a random walk has (approximately) reached its stationary
// distribution — primarily the Geweke indicator of §V-A.3, eq. (14).
package diag

import (
	"math"

	"rewire/internal/stats"
)

// Monitor consumes a scalar trace (the paper uses node degree, "a commonly
// used [attribute] that applies to every graph") and reports convergence.
type Monitor interface {
	// Observe appends the next trace value.
	Observe(x float64)
	// Converged reports whether the stopping rule fires at the current
	// trace length.
	Converged() bool
}

// Geweke is the paper's convergence indicator: window A holds the first 10%
// of the trace, window B the last 50%, and
//
//	Z = |mean_A - mean_B| / sqrt(SE²_A + SE²_B)
//
// falls below the threshold when the two windows are statistically
// indistinguishable. (As is standard in the OSN-sampling literature, the S
// terms of eq. (14) are the squared standard errors of the window means;
// raw variances would not shrink as the chain grows.) The paper's default
// threshold is 0.1, swept over [0.1, 0.8] in Fig 9.
type Geweke struct {
	threshold float64
	minLen    int
	trace     []float64
}

// DefaultThreshold is the paper's default Geweke threshold.
const DefaultThreshold = 0.1

// NewGeweke returns a monitor with the given threshold (<= 0 selects the
// paper default) requiring at least minLen observations before it can fire
// (<= 0 selects 100, enough for the 10% window to hold 10 points).
func NewGeweke(threshold float64, minLen int) *Geweke {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if minLen <= 0 {
		minLen = 100
	}
	return &Geweke{threshold: threshold, minLen: minLen}
}

// Observe appends x to the trace.
func (g *Geweke) Observe(x float64) { g.trace = append(g.trace, x) }

// Len returns the trace length.
func (g *Geweke) Len() int { return len(g.trace) }

// Z computes the current Geweke statistic; NaN when the trace is too short
// for both windows to be non-empty.
func (g *Geweke) Z() float64 {
	n := len(g.trace)
	nA := n / 10
	nB := n / 2
	if nA < 2 || nB < 2 {
		return math.NaN()
	}
	var a, b stats.Summary
	a.AddAll(g.trace[:nA])
	b.AddAll(g.trace[n-nB:])
	seA := a.StdErr()
	seB := b.StdErr()
	den := math.Sqrt(seA*seA + seB*seB)
	if den == 0 {
		// Both windows constant: converged iff the constants agree.
		if a.Mean() == b.Mean() {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a.Mean()-b.Mean()) / den
}

// Converged reports whether the trace is long enough and Z is within the
// threshold.
func (g *Geweke) Converged() bool {
	if len(g.trace) < g.minLen {
		return false
	}
	z := g.Z()
	return !math.IsNaN(z) && z <= g.threshold
}

// Threshold returns the configured threshold.
func (g *Geweke) Threshold() float64 { return g.threshold }

// FixedLength is a trivial monitor that "converges" after exactly n
// observations — used for controlled experiments where all samplers must
// spend identical burn-in.
type FixedLength struct {
	n    int
	seen int
}

// NewFixedLength returns a monitor firing after n observations.
func NewFixedLength(n int) *FixedLength { return &FixedLength{n: n} }

// Observe counts.
func (f *FixedLength) Observe(float64) { f.seen++ }

// Converged fires once the count reaches n.
func (f *FixedLength) Converged() bool { return f.seen >= f.n }
