package diag

import (
	"math"
	"testing"

	"rewire/internal/rng"
)

func TestGewekeConvergesOnIID(t *testing.T) {
	// Z on an iid trace is ~|N(0,1)|, so any single check may exceed the
	// threshold; the stopping rule is polled as the chain grows (exactly how
	// the samplers use it) and should fire quickly.
	r := rng.New(1)
	g := NewGeweke(0.5, 100)
	converged := false
	for i := 1; i <= 5000 && !converged; i++ {
		g.Observe(r.NormFloat64())
		if i%25 == 0 {
			converged = g.Converged()
		}
	}
	if !converged {
		t.Errorf("iid trace never converged in 5000 steps; final Z = %v", g.Z())
	}
}

func TestGewekeRejectsTrend(t *testing.T) {
	r := rng.New(2)
	g := NewGeweke(0.1, 100)
	for i := 0; i < 5000; i++ {
		g.Observe(float64(i)/1000 + 0.1*r.NormFloat64())
	}
	if g.Converged() {
		t.Errorf("trending trace should not converge; Z = %v", g.Z())
	}
	if g.Z() < 10 {
		t.Errorf("Z = %v, expected strongly significant drift", g.Z())
	}
}

func TestGewekeMinLength(t *testing.T) {
	g := NewGeweke(100, 50) // absurdly lax threshold
	for i := 0; i < 49; i++ {
		g.Observe(1)
	}
	if g.Converged() {
		t.Error("converged before minLen")
	}
	g.Observe(1)
	if !g.Converged() {
		t.Error("constant trace at minLen should converge")
	}
}

func TestGewekeZShortTrace(t *testing.T) {
	g := NewGeweke(0.1, 10)
	g.Observe(1)
	g.Observe(2)
	if !math.IsNaN(g.Z()) {
		t.Errorf("Z on 2-point trace = %v, want NaN", g.Z())
	}
}

func TestGewekeConstantDisagreement(t *testing.T) {
	g := NewGeweke(0.1, 10)
	// First 10% all zeros, tail all ones: zero variance, different means.
	for i := 0; i < 30; i++ {
		g.Observe(0)
	}
	for i := 0; i < 270; i++ {
		g.Observe(1)
	}
	if !math.IsInf(g.Z(), 1) {
		t.Errorf("Z = %v, want +Inf for contradictory constants", g.Z())
	}
	if g.Converged() {
		t.Error("must not converge")
	}
}

func TestGewekeDefaults(t *testing.T) {
	g := NewGeweke(0, 0)
	if g.Threshold() != DefaultThreshold {
		t.Errorf("threshold = %v", g.Threshold())
	}
	for i := 0; i < 99; i++ {
		g.Observe(0)
	}
	if g.Converged() {
		t.Error("default minLen should be 100")
	}
}

func TestGewekeThresholdOrdering(t *testing.T) {
	// A stricter threshold must need at least as long a trace to fire.
	r := rng.New(3)
	// AR(1)-ish slowly converging trace.
	convergenceAt := func(threshold float64) int {
		g := NewGeweke(threshold, 100)
		x := 5.0
		for i := 1; i <= 20000; i++ {
			x = 0.999*x + 0.05*r.NormFloat64()
			g.Observe(x)
			if i%50 == 0 && g.Converged() {
				return i
			}
		}
		return 20001
	}
	strict := convergenceAt(0.05)
	loose := convergenceAt(0.8)
	if loose > strict {
		t.Errorf("loose threshold converged later (%d) than strict (%d)", loose, strict)
	}
}

func TestFixedLength(t *testing.T) {
	f := NewFixedLength(3)
	if f.Converged() {
		t.Error("converged with no observations")
	}
	f.Observe(0)
	f.Observe(0)
	if f.Converged() {
		t.Error("converged at 2/3")
	}
	f.Observe(0)
	if !f.Converged() {
		t.Error("did not converge at 3/3")
	}
}
