package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := New(7)
	p.Uint64() // Split consumed one parent value
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream matches parent stream at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean %v, want ~1", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(17)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	r := New(23)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		p := r.Perm(n)
		counts[p[0]]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("first element %d appeared %d times, want ~%v", i, c, expect)
		}
	}
}

func TestChoice(t *testing.T) {
	r := New(29)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Choice(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Choice never returned some elements: %v", seen)
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice on empty slice did not panic")
		}
	}()
	Choice(New(1), []int{})
}

func TestWeightedChoice(t *testing.T) {
	r := New(31)
	weights := []float64{1, 0, 3, -2, 6}
	counts := make([]int, len(weights))
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[WeightedChoice(r, weights)]++
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Errorf("zero/negative weights drawn: %v", counts)
	}
	// Expected proportions 1:3:6 of total 10.
	for i, want := range map[int]float64{0: 0.1, 2: 0.3, 4: 0.6} {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d rate %v, want %v", i, got, want)
		}
	}
}

func TestWeightedChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedChoice(New(1), []float64{0, -1})
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(37)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {1000, 5}, {100, 90}} {
		s := SampleWithoutReplacement(r, tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("n=%d k=%d: got %d elements", tc.n, tc.k, len(s))
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("n=%d k=%d: not strictly ascending: %v", tc.n, tc.k, s)
			}
		}
		for _, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("n=%d k=%d: out of range value %d", tc.n, tc.k, v)
			}
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	r := New(41)
	const n, k, draws = 6, 2, 60000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		for _, v := range SampleWithoutReplacement(r, n, k) {
			counts[v]++
		}
	}
	expect := float64(draws*k) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("element %d chosen %d times, want ~%v", i, c, expect)
		}
	}
}

func TestZipf(t *testing.T) {
	r := New(43)
	z := NewZipf(100, 1.5)
	const draws = 100000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		v := z.Draw(r)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[4] {
		t.Errorf("Zipf counts not decreasing: %v", counts[:8])
	}
	// P(0)/P(1) should be about 2^1.5.
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-math.Pow(2, 1.5)) > 0.4 {
		t.Errorf("Zipf head ratio %v, want ~%v", ratio, math.Pow(2, 1.5))
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(47)
	const draws = 100001
	xs := make([]float64, draws)
	for i := range xs {
		xs[i] = r.LogNormal(2, 0.5)
	}
	// Median of lognormal(mu, sigma) is e^mu.
	less := 0
	for _, x := range xs {
		if x < math.Exp(2) {
			less++
		}
	}
	if frac := float64(less) / draws; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("lognormal median fraction %v, want ~0.5", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000003)
	}
}
