// Package rng provides a small, deterministic pseudo-random number kit used
// throughout the repository. Every experiment in the paper reproduction is
// seeded, so results are replayable run to run.
//
// The generator is xoshiro256**, seeded through splitmix64 as its authors
// recommend. It is not cryptographically secure; it is fast, has a 2^256-1
// period, and passes the statistical batteries relevant for simulation work.
package rng

import "math"

// Rand is a deterministic pseudo-random generator. The zero value is not
// valid; construct one with New.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed and returns the next splitmix64 output. It is
// used only to initialize the xoshiro state so that nearby seeds produce
// uncorrelated streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield independent
// streams; the same seed always yields the same stream.
func New(seed uint64) *Rand {
	r := &Rand{}
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent generator from r. It consumes entropy from
// r, so the parent stream advances. Use it to hand child components their own
// streams without sharing state.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// State returns the generator's full internal state. Together with SetState
// it makes a stream checkpointable: capture the state, serialize it, and a
// generator restored from it continues the exact same sequence — the
// property session checkpoints lean on for byte-identical resumed walks.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State. The all-zero
// state is invalid for xoshiro and is replaced with a fixed nonzero word —
// it can only arise from corrupted input, never from State().
func (r *Rand) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Rejection sampling (Lemire's method) removes modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	// Fast path for powers of two.
	if un&(un-1) == 0 {
		return int(r.Uint64() & (un - 1))
	}
	// Lemire's nearly-divisionless bounded generation.
	for {
		x := r.Uint64()
		hi, lo := mul64(x, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate via the polar Box–Muller
// (Marsaglia) method. Unused spare values are discarded to keep the
// generator's state trajectory independent of call interleaving.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs an in-place Fisher–Yates shuffle.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs an in-place Fisher–Yates shuffle using swap, in the manner
// of math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
