package rng

import (
	"math"
	"sort"
)

// Choice returns a uniformly random element of xs. It panics on an empty
// slice.
func Choice[T any](r *Rand, xs []T) T {
	if len(xs) == 0 {
		panic("rng: Choice on empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// WeightedChoice returns an index in [0, len(weights)) drawn with probability
// proportional to weights[i]. Negative weights are treated as zero. It panics
// if the total weight is not positive.
func WeightedChoice(r *Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: WeightedChoice with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slop: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}

// SampleWithoutReplacement returns k distinct uniform values from [0, n) in
// ascending order. It panics if k > n or k < 0.
//
// For small k relative to n it uses Floyd's algorithm (O(k) expected); for
// large k it uses a partial Fisher–Yates.
func SampleWithoutReplacement(r *Rand, n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 <= n {
		chosen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		// Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; if taken,
		// take j itself. Yields a uniform k-subset.
		for j := n - k; j < n; j++ {
			t := r.Intn(j + 1)
			if _, ok := chosen[t]; ok {
				t = j
			}
			chosen[t] = struct{}{}
			out = append(out, t)
		}
		sort.Ints(out)
		return out
	}
	p := r.Perm(n)[:k]
	out := make([]int, k)
	copy(out, p)
	sort.Ints(out)
	return out
}

// Zipf draws integers in [0, n) with P(i) proportional to 1/(i+1)^s using the
// inverse-CDF over a precomputed table. Build once, draw many times.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// Draw returns the next Zipf-distributed index.
func (z *Zipf) Draw(r *Rand) int {
	x := r.Float64()
	return sort.SearchFloat64s(z.cdf, x)
}
