package osn

import (
	"sync"
	"testing"
	"time"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/rng"
)

// TestClientConcurrentUniqueAccounting hammers one shared client from many
// goroutines (run with -race) and checks the paper's cost accounting stays
// exact: every distinct user queried is charged exactly once, no matter how
// many goroutines race for it, and every miss reaches the service exactly
// once.
func TestClientConcurrentUniqueAccounting(t *testing.T) {
	g, err := gen.Social(gen.SocialConfig{Nodes: 300, TargetEdges: 1200}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(g, nil, Config{})
	client := NewClient(svc)

	const workers = 16
	const queriesPerWorker = 500
	var mu sync.Mutex
	distinct := make(map[graph.NodeID]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < queriesPerWorker; i++ {
				v := graph.NodeID(r.Intn(g.NumNodes()))
				if _, err := client.Query(v); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				distinct[v] = true
				mu.Unlock()
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	want := int64(len(distinct))
	if got := client.UniqueQueries(); got != want {
		t.Errorf("UniqueQueries = %d, want %d distinct users", got, want)
	}
	if got := int64(client.CacheSize()); got != want {
		t.Errorf("CacheSize = %d, want %d", got, want)
	}
	if got := svc.TotalQueries(); got != want {
		t.Errorf("service TotalQueries = %d, want %d (one per unique miss)", got, want)
	}
	for v := range distinct {
		if !client.Cached(v) {
			t.Errorf("user %d queried but not cached", v)
		}
	}
}

// TestServiceConcurrentRateLimit drives the rate-limited service from many
// goroutines and checks the mutex-guarded simulated clock admits queries
// exactly as a serial caller would: the number of window waits depends only
// on the total query count, not on the interleaving.
func TestServiceConcurrentRateLimit(t *testing.T) {
	g := gen.Barbell(8)
	svc := NewService(g, nil, Config{QueriesPerWindow: 10, Window: 100, PerQueryLatency: 0})

	const workers = 8
	const queriesPerWorker = 125 // 1000 total
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < queriesPerWorker; i++ {
				if _, err := svc.Query(graph.NodeID(r.Intn(g.NumNodes()))); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	const total = workers * queriesPerWorker
	if got := svc.TotalQueries(); got != total {
		t.Errorf("TotalQueries = %d, want %d", got, total)
	}
	// With zero latency the clock only moves on waits, so exactly one wait
	// fires per full window after the first: queries 11, 21, ... block.
	wantWaits := int64(total/10 - 1)
	if got := svc.RateLimitWaits(); got != wantWaits {
		t.Errorf("RateLimitWaits = %d, want %d", got, wantWaits)
	}
}

// TestClientCoalescesConcurrentMisses points many goroutines at the same
// uncached users simultaneously, with real latency widening the race window:
// the in-flight table must collapse all of them into one service query per
// user.
func TestClientCoalescesConcurrentMisses(t *testing.T) {
	g := gen.Barbell(8)
	svc := NewService(g, nil, Config{RealLatency: 2 * time.Millisecond})
	client := NewClient(svc)

	const workers = 16
	targets := []graph.NodeID{0, 5, 11}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range targets {
				if _, err := client.Query(v); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	want := int64(len(targets))
	if got := svc.TotalQueries(); got != want {
		t.Errorf("service saw %d queries, want %d (misses must coalesce)", got, want)
	}
	if got := client.UniqueQueries(); got != want {
		t.Errorf("UniqueQueries = %d, want %d", got, want)
	}
}

// TestClientConcurrentCachedReads interleaves cache-hit reads with misses to
// exercise the read/write lock paths together under -race.
func TestClientConcurrentCachedReads(t *testing.T) {
	g := gen.Barbell(8)
	svc := NewService(g, nil, Config{})
	client := NewClient(svc)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 400; i++ {
				v := graph.NodeID(r.Intn(g.NumNodes()))
				switch i % 4 {
				case 0:
					client.Neighbors(v)
				case 1:
					client.Degree(v)
				case 2:
					client.CachedDegree(v)
				default:
					client.Cached(v)
				}
			}
		}(uint64(w + 100))
	}
	wg.Wait()
	if client.UniqueQueries() > int64(g.NumNodes()) {
		t.Errorf("unique queries %d exceed user count %d", client.UniqueQueries(), g.NumNodes())
	}
}
