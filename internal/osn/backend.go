package osn

import (
	"context"

	"rewire/internal/graph"
)

// Backend is the minimal driver contract the Client wraps: one batch-capable,
// context-first fetch. Everything the client layers on top — the sharded
// response cache, per-user singleflight, demand billing, budgets, the
// speculative prefetch pool — is backend-agnostic, so the same machinery
// serves a simulated provider (Service), a live HTTP endpoint, a read-only
// CSR snapshot, or anything a third party registers.
//
// Contract:
//
//   - Fetch returns exactly one Response per requested id, in input order, or
//     a non-nil error for the batch as a whole. Partial results are not
//     returned: a failed batch is all-failed. The client issues single-id
//     fetches on its demand path, so per-id granularity is preserved there —
//     and the SDK's coalescing middleware (rewire.WithBatching), which merges
//     those single-id fetches back into multi-id round-trips, keeps it by
//     probing for a per-id PartialFetcher capability and isolating unknown
//     ids when the backend lacks one.
//   - An id outside the backend's user space fails with an error matching
//     ErrNoSuchUser (errors.Is).
//   - Fetch honors ctx: cancellation or deadline expiry aborts the in-flight
//     round-trip and returns the context's error.
//   - Returned neighbor slices are owned by the caller; the backend must not
//     retain or mutate them after returning (the client caches them forever).
//   - Fetch must be safe for concurrent use: the client overlaps misses for
//     different users, and the prefetch pool fetches speculatively alongside.
type Backend interface {
	Fetch(ctx context.Context, ids []graph.NodeID) ([]Response, error)
}

// UserCounter is the optional backend capability of publishing the total user
// count (the figure Random Jump needs for its ID space; the paper notes real
// providers publish it for advertising purposes). Backends without it report
// 0 through Client.NumUsers, and sessions over them must pin explicit starts.
type UserCounter interface {
	NumUsers() int
}

// Hinter is the optional backend capability of accepting advisory prefetch
// hints: ids the sampler expects to demand soon. The client forwards every
// hint its speculative pool accepts, so a backend can warm whatever is cheap
// on its side (an HTTP driver could pipeline, a snapshot could fault pages
// in). Hint must not block and must be safe for concurrent use; it carries no
// obligation whatsoever.
type Hinter interface {
	Hint(ids []graph.NodeID)
}

// backendUsers resolves the optional UserCounter capability (0 when absent).
func backendUsers(be Backend) int {
	if uc, ok := be.(UserCounter); ok {
		return uc.NumUsers()
	}
	return 0
}
