package osn

import (
	"errors"
	"testing"
	"time"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/rng"
)

func newTestService(cfg Config) (*Service, *graph.Graph) {
	g := gen.Barbell(5)
	return NewService(g, nil, cfg), g
}

func TestQueryReturnsNeighborhood(t *testing.T) {
	svc, g := newTestService(Config{})
	resp, err := svc.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.User != 0 {
		t.Errorf("User = %d", resp.User)
	}
	if resp.Degree() != g.Degree(0) {
		t.Errorf("Degree = %d, want %d", resp.Degree(), g.Degree(0))
	}
}

func TestQueryUnknownUser(t *testing.T) {
	svc, _ := newTestService(Config{})
	if _, err := svc.Query(-1); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("negative id: %v", err)
	}
	if _, err := svc.Query(999); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("large id: %v", err)
	}
}

func TestRateLimitingAdvancesClock(t *testing.T) {
	cfg := Config{QueriesPerWindow: 10, Window: 600 * time.Second, PerQueryLatency: time.Second}
	svc, _ := newTestService(cfg)
	for i := 0; i < 25; i++ {
		if _, err := svc.Query(graph.NodeID(i % 10)); err != nil {
			t.Fatal(err)
		}
	}
	if svc.TotalQueries() != 25 {
		t.Errorf("TotalQueries = %d", svc.TotalQueries())
	}
	// 25 queries at 10/window forces 2 waits.
	if svc.RateLimitWaits() != 2 {
		t.Errorf("RateLimitWaits = %d, want 2", svc.RateLimitWaits())
	}
	// Elapsed >= 2 full windows.
	if svc.SimulatedElapsed() < 2*600*time.Second {
		t.Errorf("SimulatedElapsed = %v, want >= 20m", svc.SimulatedElapsed())
	}
}

func TestNoRateLimitWhenDisabled(t *testing.T) {
	svc, _ := newTestService(Config{PerQueryLatency: time.Millisecond})
	for i := 0; i < 1000; i++ {
		if _, err := svc.Query(0); err != nil {
			t.Fatal(err)
		}
	}
	if svc.RateLimitWaits() != 0 {
		t.Errorf("waits = %d, want 0", svc.RateLimitWaits())
	}
	if svc.SimulatedElapsed() != time.Second {
		t.Errorf("elapsed = %v, want 1s", svc.SimulatedElapsed())
	}
}

func TestWindowResetsNaturally(t *testing.T) {
	// Slow queries spread over windows should never hit the limiter.
	cfg := Config{QueriesPerWindow: 2, Window: 10 * time.Second, PerQueryLatency: 6 * time.Second}
	svc, _ := newTestService(cfg)
	for i := 0; i < 10; i++ {
		if _, err := svc.Query(0); err != nil {
			t.Fatal(err)
		}
	}
	if svc.RateLimitWaits() != 0 {
		t.Errorf("waits = %d, want 0 (natural expiry)", svc.RateLimitWaits())
	}
}

func TestPresetLimits(t *testing.T) {
	fb := FacebookLimits()
	if fb.QueriesPerWindow != 600 || fb.Window != 600*time.Second {
		t.Errorf("facebook limits = %+v", fb)
	}
	tw := TwitterLimits()
	if tw.QueriesPerWindow != 350 || tw.Window != time.Hour {
		t.Errorf("twitter limits = %+v", tw)
	}
}

func TestClientCacheAndUniqueCost(t *testing.T) {
	svc, _ := newTestService(Config{})
	c := NewClient(svc)
	for i := 0; i < 5; i++ {
		if _, err := c.Query(3); err != nil {
			t.Fatal(err)
		}
	}
	if c.UniqueQueries() != 1 {
		t.Errorf("UniqueQueries = %d, want 1 (duplicates are free)", c.UniqueQueries())
	}
	if svc.TotalQueries() != 1 {
		t.Errorf("service saw %d queries, want 1", svc.TotalQueries())
	}
	if !c.Cached(3) || c.Cached(4) {
		t.Error("cache membership wrong")
	}
	if c.CacheSize() != 1 {
		t.Errorf("CacheSize = %d", c.CacheSize())
	}
}

func TestClientNeighborsAndDegree(t *testing.T) {
	svc, g := newTestService(Config{})
	c := NewClient(svc)
	nbrs := c.Neighbors(0)
	if len(nbrs) != g.Degree(0) {
		t.Errorf("Neighbors len = %d, want %d", len(nbrs), g.Degree(0))
	}
	if c.Degree(0) != g.Degree(0) {
		t.Errorf("Degree = %d", c.Degree(0))
	}
	if c.UniqueQueries() != 1 {
		t.Errorf("cost = %d, want 1", c.UniqueQueries())
	}
	if c.Neighbors(-5) != nil {
		t.Error("unknown id should return nil")
	}
	if c.Degree(-5) != 0 {
		t.Error("unknown id degree should be 0")
	}
}

func TestCachedDegreeNeverQueries(t *testing.T) {
	svc, _ := newTestService(Config{})
	c := NewClient(svc)
	if _, ok := c.CachedDegree(2); ok {
		t.Error("CachedDegree hit before any query")
	}
	if svc.TotalQueries() != 0 {
		t.Error("CachedDegree must not issue queries")
	}
	if _, err := c.Query(2); err != nil {
		t.Fatal(err)
	}
	d, ok := c.CachedDegree(2)
	if !ok || d != 4 {
		t.Errorf("CachedDegree = %d,%v after query", d, ok)
	}
}

func TestNumUsers(t *testing.T) {
	svc, g := newTestService(Config{})
	if svc.NumUsers() != g.NumNodes() {
		t.Errorf("NumUsers = %d", svc.NumUsers())
	}
	if NewClient(svc).NumUsers() != g.NumNodes() {
		t.Error("client NumUsers mismatch")
	}
}

func TestAttributes(t *testing.T) {
	g := gen.EpinionsLikeSmall(3)
	attrs := SynthesizeAttributes(g, rng.New(4))
	if attrs.Len() != g.NumNodes() {
		t.Fatalf("Len = %d", attrs.Len())
	}
	meanAge := attrs.MeanAge()
	if meanAge < 20 || meanAge > 50 {
		t.Errorf("mean age = %v, implausible", meanAge)
	}
	meanDesc := attrs.MeanDescLen()
	if meanDesc < 10 || meanDesc > 2000 {
		t.Errorf("mean desc len = %v, implausible", meanDesc)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v += 97 {
		a := attrs.Of(v)
		if a.Age < 13 || a.Age > 90 {
			t.Fatalf("age %d out of range", a.Age)
		}
		if a.DescLen < 0 || a.DescLen > 5000 {
			t.Fatalf("desc len %d out of range", a.DescLen)
		}
		if a.Posts < 0 {
			t.Fatalf("posts %d negative", a.Posts)
		}
	}
}

func TestAttributesThroughService(t *testing.T) {
	g := gen.Barbell(4)
	attrs := SynthesizeAttributes(g, rng.New(5))
	svc := NewService(g, attrs, Config{})
	c := NewClient(svc)
	resp, err := c.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attrs != attrs.Of(1) {
		t.Error("attrs not forwarded through query")
	}
	got, ok := c.CachedAttrs(1)
	if !ok || got != attrs.Of(1) {
		t.Error("CachedAttrs mismatch")
	}
	if _, ok := c.CachedAttrs(2); ok {
		t.Error("CachedAttrs hit for unqueried user")
	}
}

func TestAttributeDegreeCorrelation(t *testing.T) {
	// Construction promises: better-connected users have longer bios on
	// average. Check the aggregate trend on a star-heavy graph.
	g := gen.Star(2001)
	attrs := SynthesizeAttributes(g, rng.New(6))
	hub := attrs.Of(0)
	leafMean := 0.0
	for v := 1; v <= 2000; v++ {
		leafMean += float64(attrs.Of(graph.NodeID(v)).DescLen)
	}
	leafMean /= 2000
	if float64(hub.DescLen) < leafMean {
		t.Logf("hub %d vs leaf mean %v: single draw, not enforced strictly", hub.DescLen, leafMean)
	}
}
