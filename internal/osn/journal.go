package osn

import (
	"fmt"

	"rewire/internal/graph"
)

// Journal is the client's durability hook: when installed (SetJournal), every
// billing-relevant cache transition is persisted through it BEFORE the
// transition becomes observable — a fetch whose record cannot be appended
// fails rather than serving an unpersisted response. internal/durable's WAL
// implements it; the interface lives here so osn does not import its own
// persistence layer.
//
// Implementations must not call back into the Client: RecordFetch and
// RecordUpgrade run under a shard lock and the repo's lock-ordering rules
// (shard lock → ledger mutex, nothing else) apply.
type Journal interface {
	// RecordFetch persists one committed fetch: billed reports whether the
	// commit bills a unique query (demand path) or stays speculative, tenant
	// names the paying account ("" = anonymous).
	RecordFetch(v graph.NodeID, resp Response, billed bool, tenant string) error
	// RecordUpgrade persists a speculative entry's promotion to billed on
	// first demand consumption.
	RecordUpgrade(v graph.NodeID, tenant string) error
	// RecordBudget and RecordTenantBudget persist budget changes so a
	// recovered ledger enforces the same caps.
	RecordBudget(n int64) error
	RecordTenantBudget(tenant string, n int64) error
}

// SetJournal installs j as the client's durability hook. It is NOT safe to
// call concurrently with queries — install at construction time, after
// seeding (SeedCached/SeedBill deliberately do not journal: they replay
// state the journal already holds).
func (c *Client) SetJournal(j Journal) { c.journal = j }

// Journaled reports whether a journal is installed.
func (c *Client) Journaled() bool { return c.journal != nil }

// SeedCached inserts a recovered response into the cache and ledger without
// journaling: replayed WAL entries are cache hits, never re-billed and never
// re-persisted. billed mirrors the original commit's demand flag; tenant the
// original paying account. Like SetJournal, seeding is construction-time
// only — not safe concurrently with queries, and the id must not already be
// cached (the caller replays a journal, in which each id's last fetch record
// is unique).
func (c *Client) SeedCached(v graph.NodeID, resp Response, billed bool, tenant string) {
	c.state.Put(v, nodeState{resp: resp, cached: true, speculative: !billed})
	c.led.mu.Lock()
	defer c.led.mu.Unlock()
	if billed {
		c.led.unique++
		c.led.tenantLocked(tenant).unique++
	} else {
		c.led.speculative++
	}
	c.led.size++
}

// SeedBill adds n recovered unique queries to tenant's bill (and the global
// counter) without any cache entry — the replayed ledger's tombstoned
// fetches: queries that were billed but whose cached rows were later
// invalidated. Construction-time only, like SeedCached.
func (c *Client) SeedBill(tenant string, n int64) {
	c.led.mu.Lock()
	defer c.led.mu.Unlock()
	c.led.unique += n
	c.led.tenantLocked(tenant).unique += n
}

// journalFetch runs the persist-before-publish barrier for one finished
// fetch. Called under v's shard lock, before the ledger is touched; an
// append failure is returned so the commit fails the fetch — nothing is
// cached, nothing billed, and the next demand retries.
func (c *Client) journalFetch(v graph.NodeID, f *inflight) error {
	if c.journal == nil || f.err != nil {
		return nil
	}
	if err := c.journal.RecordFetch(v, f.resp, f.demand > 0, f.tenant); err != nil {
		return fmt.Errorf("osn: journaling fetch: %w", err)
	}
	return nil
}
