package osn

import "context"

// tenantKey carries the tenant attribution name in a context.
type tenantKey struct{}

// WithTenant returns a context whose demand queries are attributed to the
// named tenant in the client's per-tenant ledger. Attribution rides the
// context — not the Client — so any number of tenants can share one client
// (one cache, one singleflight, one global ledger) while their bills stay
// separable: a multi-tenant service binds each job's context once and every
// query the job issues lands on the right account.
//
// The empty name is the anonymous tenant: queries from contexts without an
// attribution are accounted there, so the cross-tenant invariant
// Σ TenantBill.Unique == UniqueQueries holds unconditionally.
func WithTenant(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, tenantKey{}, name)
}

// TenantFrom returns the tenant name carried by ctx ("" when none).
func TenantFrom(ctx context.Context) string {
	name, _ := ctx.Value(tenantKey{}).(string)
	return name
}
