package osn

import (
	"context"
	"sync"
	"sync/atomic"

	"rewire/internal/graph"
)

// PrefetchConfig tunes the client's asynchronous prefetch pool — the
// "walk, not wait" machinery (Nazi et al.): spend otherwise-idle round-trip
// time fetching the nodes the walk is likely to demand next.
type PrefetchConfig struct {
	// Workers is the number of concurrent speculative round-trips. More
	// workers overlap more provider latency; 0 selects DefaultPrefetchWorkers.
	Workers int
	// Queue is the pending-hint buffer size. Hints beyond it are dropped —
	// prefetching is speculative, so dropping is always safe. 0 selects
	// DefaultPrefetchQueue.
	Queue int
	// Depth is the recursive lookahead: after fetching a hinted node, its
	// still-unknown neighbors are re-enqueued with Depth-1. Depth 0 fetches
	// only the hinted ids; depth d expands a speculative frontier up to d
	// hops ahead of the walk, which is what actually beats the walk's serial
	// query chain — a node fetched two steps early has already paid its
	// round-trip by the time the walk arrives.
	Depth int
	// Budget caps total speculative round-trips (0 = unlimited). Every
	// speculative fetch still consumes the provider's rate limit, so a
	// crawler with a tight quota should bound its bet.
	Budget int64
}

// Default pool sizing: enough workers to keep a depth-2 frontier ahead of a
// 16-walker fleet, and a queue that absorbs bursts without unbounded memory.
const (
	DefaultPrefetchWorkers = 16
	DefaultPrefetchQueue   = 1024
)

// PrefetchStats counts the pool's activity. Enqueued hints either turn into
// Fetched round-trips, get skipped as redundant (already cached or in
// flight), or are dropped on a full queue. Unused is the current number of
// speculative responses no demand query has consumed.
type PrefetchStats struct {
	Enqueued int64
	Dropped  int64
	Fetched  int64
	Skipped  int64
	Unused   int64
}

// prefetchJob is one speculative fetch request.
type prefetchJob struct {
	id    graph.NodeID
	depth int
}

// prefetchPool runs speculative fetches on a bounded set of workers. It
// never blocks an enqueuer: a full queue drops the hint.
type prefetchPool struct {
	c     *Client
	cfg   PrefetchConfig
	queue chan prefetchJob
	quit  chan struct{}
	// ctx bounds every speculative round-trip the pool performs: when the
	// parent context passed to StartPrefetchContext is cancelled (a deadline
	// expiring mid depth-expansion, a session shutting down), in-flight
	// speculative fetches abort instead of blocking out their RealLatency.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	enqueued int64
	dropped  int64
	fetched  int64
	skipped  int64
	reserved int64 // budget reservations (only meaningful when cfg.Budget > 0)
}

// NewPrefetchingClient wraps a backend with an empty cache and a running
// prefetch pool.
func NewPrefetchingClient(be Backend, cfg PrefetchConfig) *Client {
	c := NewClient(be)
	c.StartPrefetch(cfg)
	return c
}

// StartPrefetch launches the prefetch pool. Starting an already-prefetching
// client replaces the pool (the old one is stopped first).
func (c *Client) StartPrefetch(cfg PrefetchConfig) {
	//rewirelint:allow ctxflow context-less convenience shim; ctx-aware callers use StartPrefetchContext
	c.StartPrefetchContext(context.Background(), cfg)
}

// StartPrefetchContext launches the prefetch pool with every speculative
// round-trip bound to ctx: when ctx is cancelled or its deadline expires,
// workers abort their in-flight fetches and stop expanding the frontier —
// no further speculative provider quota is spent. Aborted fetches commit
// nothing, so billing invariants are untouched. The pool still needs
// StopPrefetch (or a fresh StartPrefetch) to release its goroutines.
func (c *Client) StartPrefetchContext(ctx context.Context, cfg PrefetchConfig) {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultPrefetchWorkers
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultPrefetchQueue
	}
	c.StopPrefetch()
	pctx, cancel := context.WithCancel(ctx)
	p := &prefetchPool{
		c:      c,
		cfg:    cfg,
		queue:  make(chan prefetchJob, cfg.Queue),
		quit:   make(chan struct{}),
		ctx:    pctx,
		cancel: cancel,
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	c.poolMu.Lock()
	c.pool = p
	c.poolMu.Unlock()
}

// StopPrefetch shuts the pool down (idempotent; safe on clients that never
// prefetched). Pending hints are discarded; in-flight speculative round-trips
// finish and commit. After StopPrefetch, Prefetch is a no-op again, and the
// stopped pool's counters remain visible through PrefetchStats.
func (c *Client) StopPrefetch() {
	c.poolMu.Lock()
	p := c.pool
	c.pool = nil
	c.poolMu.Unlock()
	if p == nil {
		return
	}
	close(p.quit)
	p.wg.Wait()
	// Cancel only after the drain: StopPrefetch is graceful (in-flight
	// speculative round-trips finish and commit); the cancel here just
	// releases the derived context. Abortive shutdown comes from the parent
	// context passed to StartPrefetchContext.
	p.cancel()
	c.poolMu.Lock()
	c.retired.Enqueued += atomic.LoadInt64(&p.enqueued)
	c.retired.Dropped += atomic.LoadInt64(&p.dropped)
	c.retired.Fetched += atomic.LoadInt64(&p.fetched)
	c.retired.Skipped += atomic.LoadInt64(&p.skipped)
	c.poolMu.Unlock()
}

// Prefetch enqueues non-blocking speculative fetch hints for the given ids
// and returns how many were accepted. Redundant hints (already cached or in
// flight) and hints beyond the queue capacity are dropped — a prefetch is a
// bet, never an obligation. Without a running pool it accepts nothing.
// Accepted hints are additionally forwarded to the backend when it has the
// Hinter capability, so a driver can warm its own side of the fetch.
func (c *Client) Prefetch(ids ...graph.NodeID) int {
	c.poolMu.RLock()
	p := c.pool
	c.poolMu.RUnlock()
	if p == nil {
		return 0
	}
	accepted := 0
	var hinted []graph.NodeID
	for _, v := range ids {
		if c.Known(v) {
			continue
		}
		if p.enqueue(prefetchJob{id: v, depth: p.cfg.Depth}) {
			accepted++
			if c.hinter != nil {
				hinted = append(hinted, v)
			}
		}
	}
	if len(hinted) > 0 {
		c.hinter.Hint(hinted)
	}
	return accepted
}

// PrefetchStats returns the pool's counters, including totals carried over
// from pools that have since been stopped.
func (c *Client) PrefetchStats() PrefetchStats {
	c.poolMu.RLock()
	p := c.pool
	s := c.retired
	c.poolMu.RUnlock()
	s.Unused = c.SpeculativeCount()
	if p == nil {
		return s
	}
	s.Enqueued += atomic.LoadInt64(&p.enqueued)
	s.Dropped += atomic.LoadInt64(&p.dropped)
	s.Fetched += atomic.LoadInt64(&p.fetched)
	s.Skipped += atomic.LoadInt64(&p.skipped)
	return s
}

// enqueue offers a job to the queue without ever blocking the caller.
func (p *prefetchPool) enqueue(j prefetchJob) bool {
	select {
	case <-p.quit:
		return false
	default:
	}
	select {
	case p.queue <- j:
		atomic.AddInt64(&p.enqueued, 1)
		return true
	default:
		atomic.AddInt64(&p.dropped, 1)
		return false
	}
}

// worker drains the queue: fetch speculatively, then expand the frontier for
// jobs with remaining depth.
func (p *prefetchPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case j := <-p.queue:
			p.run(j)
		}
	}
}

func (p *prefetchPool) run(j prefetchJob) {
	if p.ctx.Err() != nil {
		// Parent context cancelled or deadline expired: stop betting.
		atomic.AddInt64(&p.skipped, 1)
		return
	}
	if p.cfg.Budget > 0 && atomic.AddInt64(&p.reserved, 1) > p.cfg.Budget {
		// Budget exhausted: release the reservation and drop the bet.
		atomic.AddInt64(&p.reserved, -1)
		atomic.AddInt64(&p.skipped, 1)
		return
	}
	resp, fetched, pending := p.c.fetchSpeculative(p.ctx, j.id)
	if !fetched {
		if p.cfg.Budget > 0 {
			atomic.AddInt64(&p.reserved, -1) // no round-trip happened
		}
		atomic.AddInt64(&p.skipped, 1)
		// The node is being (or was already) fetched by someone else —
		// typically the walker's own demand query winning the race against
		// its hint. The round-trip is covered either way; what is NOT
		// covered is the frontier behind it, so a depth-carrying job waits
		// for the result and keeps expanding. This is what lets speculation
		// get ahead of a serial walk instead of forever losing the same
		// race one hop at a time.
		if j.depth <= 0 {
			return
		}
		if pending != nil {
			select {
			case <-pending.done:
			case <-p.quit:
				return
			case <-p.ctx.Done():
				return
			}
			if pending.err != nil {
				return
			}
			resp = pending.resp
		} else if resp.Neighbors == nil {
			var ok bool
			if resp, ok = p.c.cachedResponse(j.id); !ok {
				return
			}
		}
	} else {
		atomic.AddInt64(&p.fetched, 1)
	}
	if j.depth <= 0 {
		return
	}
	for _, w := range resp.Neighbors {
		if p.c.Known(w) {
			continue
		}
		p.enqueue(prefetchJob{id: w, depth: j.depth - 1})
	}
}

// cachedResponse returns v's cached response regardless of whether it is
// speculative or demanded — pool-internal only: the pool may expand any
// known neighborhood without upgrading the entry's billing state.
func (c *Client) cachedResponse(v graph.NodeID) (Response, bool) {
	st, ok := c.state.Get(v)
	if !ok || !st.cached {
		return Response{}, false
	}
	return st.resp, true
}
