package osn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rewire/internal/gen"
	"rewire/internal/graph"
)

func billSum(c *Client) int64 {
	var sum int64
	for _, b := range c.TenantBills() {
		sum += b.Unique
	}
	return sum
}

// TestTenantAttribution pins the core accounting rule: a query is billed to
// the tenant whose demand made it billable; cache hits are free for every
// tenant; unattributed contexts land on the anonymous tenant; and the
// per-tenant bills partition the global ledger exactly.
func TestTenantAttribution(t *testing.T) {
	svc, _ := newTestService(Config{})
	c := NewClient(svc)
	ctxA := WithTenant(context.Background(), "alice")
	ctxB := WithTenant(context.Background(), "bob")
	for v := graph.NodeID(0); v < 5; v++ { // alice demands 0..4 cold
		if _, err := c.QueryContext(ctxA, v); err != nil {
			t.Fatal(err)
		}
	}
	for v := graph.NodeID(3); v < 8; v++ { // bob: 3,4 are hits, 5..7 cold
		if _, err := c.QueryContext(ctxB, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.QueryContext(context.Background(), 8); err != nil { // anonymous
		t.Fatal(err)
	}
	if got := c.TenantBill("alice").Unique; got != 5 {
		t.Fatalf("alice billed %d, want 5", got)
	}
	if got := c.TenantBill("bob").Unique; got != 3 {
		t.Fatalf("bob billed %d, want 3 (cache hits must be free)", got)
	}
	if got := c.TenantBill("").Unique; got != 1 {
		t.Fatalf("anonymous billed %d, want 1", got)
	}
	if got, want := billSum(c), c.UniqueQueries(); got != want {
		t.Fatalf("tenant bills sum to %d, global ledger says %d", got, want)
	}
	if got := c.TenantBill("nobody"); got != (TenantBill{}) {
		t.Fatalf("unknown tenant has a bill: %+v", got)
	}
}

// TestTenantCoalescedFetchBillsFirstDemander: when two tenants' demands
// coalesce onto one round-trip, the bill lands on the tenant whose demand
// arrived first — never on both.
func TestTenantCoalescedFetchBillsFirstDemander(t *testing.T) {
	svc, _ := newTestService(Config{RealLatency: 150 * time.Millisecond})
	c := NewClient(svc)
	ctxA := WithTenant(context.Background(), "alice")
	ctxB := WithTenant(context.Background(), "bob")
	done := make(chan error, 1)
	go func() {
		_, err := c.QueryContext(ctxA, 2)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // alice owns the in-flight fetch
	if _, err := c.QueryContext(ctxB, 2); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := c.TenantBill("alice").Unique; got != 1 {
		t.Fatalf("alice billed %d, want 1", got)
	}
	if got := c.TenantBill("bob").Unique; got != 0 {
		t.Fatalf("bob billed %d for a coalesced wait, want 0", got)
	}
	if got := c.UniqueQueries(); got != 1 {
		t.Fatalf("global ledger %d, want 1", got)
	}
}

// TestTenantWithdrawalAndSpeculativeUpgrade: a tenant that cancels out of a
// coalesced wait withdraws its reservation (billing nothing); the fetch
// commits speculative; and the tenant whose later demand consumes the parked
// response is the one billed.
func TestTenantWithdrawalAndSpeculativeUpgrade(t *testing.T) {
	svc, _ := newTestService(Config{RealLatency: 150 * time.Millisecond})
	c := NewClient(svc)
	// A speculative fetch (no demand) in flight...
	specDone := make(chan struct{})
	go func() {
		defer close(specDone)
		c.fetchSpeculative(context.Background(), 3)
	}()
	time.Sleep(30 * time.Millisecond)
	// ...alice coalesces onto it as first demander, then gives up.
	ctxA, cancel := context.WithTimeout(WithTenant(context.Background(), "alice"), 60*time.Millisecond)
	defer cancel()
	if _, err := c.QueryContext(ctxA, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if got := c.TenantBill("alice"); got.Unique != 0 || got.Reserved != 0 {
		t.Fatalf("withdrawn alice still on the ledger: %+v", got)
	}
	<-specDone
	if got := c.SpeculativeCount(); got != 1 {
		t.Fatalf("fetch nobody waited for committed non-speculative (count %d)", got)
	}
	// Bob's demand consumes the parked response: billed to bob, once.
	if _, err := c.QueryContext(WithTenant(context.Background(), "bob"), 3); err != nil {
		t.Fatal(err)
	}
	if got := c.TenantBill("bob").Unique; got != 1 {
		t.Fatalf("bob billed %d for the speculative upgrade, want 1", got)
	}
	if got, want := billSum(c), c.UniqueQueries(); got != want || want != 1 {
		t.Fatalf("bills sum %d, ledger %d, want 1", got, want)
	}
}

// TestTenantBudgetIsolation: a tenant's private cap stops that tenant — and
// only that tenant — while cached knowledge stays free past the cap.
func TestTenantBudgetIsolation(t *testing.T) {
	svc, _ := newTestService(Config{})
	c := NewClient(svc)
	c.SetTenantBudget("alice", 3)
	ctxA := WithTenant(context.Background(), "alice")
	for v := graph.NodeID(0); v < 3; v++ {
		if _, err := c.QueryContext(ctxA, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.QueryContext(ctxA, 9); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("alice's 4th cold query got %v, want ErrBudgetExhausted", err)
	}
	if _, err := c.QueryContext(ctxA, 1); err != nil {
		t.Fatalf("alice's cache hit failed past her cap: %v", err)
	}
	// Bob is untouched by alice's cap — including on the very id alice was
	// refused.
	ctxB := WithTenant(context.Background(), "bob")
	if _, err := c.QueryContext(ctxB, 9); err != nil {
		t.Fatal(err)
	}
	// Raising the cap resumes alice.
	c.SetTenantBudget("alice", 10)
	if _, err := c.QueryContext(ctxA, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.TenantBill("alice"); got.Unique != 4 || got.Budget != 10 {
		t.Fatalf("alice's bill = %+v, want Unique 4 Budget 10", got)
	}
}

// TestTenantBillsPartitionLedgerUnderConcurrency hammers one client from
// several tenants over overlapping ids and asserts the partition invariant
// the serving layer's billing isolation rests on.
func TestTenantBillsPartitionLedgerUnderConcurrency(t *testing.T) {
	g := gen.Complete(64)
	svc := NewService(g, nil, Config{})
	c := NewClient(svc)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := WithTenant(context.Background(), fmt.Sprintf("tenant-%d", w%4))
			for i := 0; i < 200; i++ {
				v := graph.NodeID((i*7 + w*13) % 64)
				if _, err := c.QueryContext(ctx, v); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := billSum(c), c.UniqueQueries(); got != want {
		t.Fatalf("tenant bills sum to %d, global ledger says %d", got, want)
	}
	if got := c.UniqueQueries(); got != 64 {
		t.Fatalf("billed %d unique queries over 64 distinct ids", got)
	}
	for name, b := range c.TenantBills() {
		if b.Reserved != 0 {
			t.Fatalf("tenant %q left a dangling reservation: %+v", name, b)
		}
	}
}
