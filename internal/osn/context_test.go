package osn

import (
	"context"
	"errors"
	"testing"
	"time"

	"rewire/internal/gen"
	"rewire/internal/graph"
)

// TestCancelledQueryBatchReturnsPromptly is the regression test for the
// RealLatency sleeps: a cancelled QueryBatch must return in roughly the
// cancellation delay, not after paying every outstanding round-trip.
func TestCancelledQueryBatchReturnsPromptly(t *testing.T) {
	g := gen.Complete(64)
	// 200ms per round-trip, 32 cold ids: an uninterruptible batch would sit
	// out at least one full 200ms round-trip (its misses overlap).
	svc := NewService(g, nil, Config{RealLatency: 200 * time.Millisecond})
	c := NewClient(svc)
	ids := make([]graph.NodeID, 32)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	_, err := c.QueryBatchContext(ctx, ids)
	elapsed := time.Since(begin)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed >= 150*time.Millisecond {
		t.Fatalf("cancelled batch took %v; the RealLatency sleep was not interrupted", elapsed)
	}
	// Aborted round-trips obtained no response: nothing cached, nothing
	// billed.
	if got := c.UniqueQueries(); got != 0 {
		t.Fatalf("aborted batch billed %d unique queries", got)
	}
	if got := c.CacheSize(); got != 0 {
		t.Fatalf("aborted batch cached %d responses", got)
	}
	// A fresh context retries the same ids successfully, each billed once.
	if _, err := c.QueryBatchContext(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	if got := c.UniqueQueries(); got != int64(len(ids)) {
		t.Fatalf("retry billed %d unique queries, want %d", got, len(ids))
	}
}

// TestQueryContextDeadlineOnColdMiss covers the single-query path.
func TestQueryContextDeadlineOnColdMiss(t *testing.T) {
	g := gen.Complete(8)
	svc := NewService(g, nil, Config{RealLatency: 150 * time.Millisecond})
	c := NewClient(svc)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, err := c.QueryContext(ctx, 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(begin); elapsed >= 100*time.Millisecond {
		t.Fatalf("deadline-bound query took %v", elapsed)
	}
	// Cache hits never consult the context: once paid, always served.
	if _, err := c.Query(3); err != nil {
		t.Fatal(err)
	}
	dead, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := c.QueryContext(dead, 3); err != nil {
		t.Fatalf("cache hit failed under dead context: %v", err)
	}
	if got := c.UniqueQueries(); got != 1 {
		t.Fatalf("billed %d unique queries, want 1", got)
	}
}

// TestAbortBetweenSpeculativeFetchAndDemand pins the billing rule the
// prefetch pipeline lives by: a walk aborted after a speculative fetch
// completes but before any demand consumes it leaves the response parked
// (unbilled), and the eventual demand bills it exactly once.
func TestAbortBetweenSpeculativeFetchAndDemand(t *testing.T) {
	g := gen.Complete(16)
	svc := NewService(g, nil, Config{})
	c := NewClient(svc)
	c.StartPrefetch(PrefetchConfig{Workers: 2})
	defer c.StopPrefetch()

	c.Prefetch(5)
	waitFor(t, func() bool { return c.SpeculativeCount() == 1 })
	if got := c.UniqueQueries(); got != 0 {
		t.Fatalf("speculative fetch billed %d unique queries", got)
	}

	// The "walk" aborts: its demand query runs under a dead context and
	// fails without touching the parked response.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.QueryContext(dead, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if u, s := c.UniqueQueries(), c.SpeculativeCount(); u != 0 || s != 1 {
		t.Fatalf("aborted demand disturbed the ledger: unique %d, speculative %d", u, s)
	}

	// The resumed walk demands it: billed exactly once, never again.
	if _, err := c.Query(5); err != nil {
		t.Fatal(err)
	}
	if u, s := c.UniqueQueries(), c.SpeculativeCount(); u != 1 || s != 0 {
		t.Fatalf("demand consumption: unique %d, speculative %d; want 1, 0", u, s)
	}
	if _, err := c.Query(5); err != nil {
		t.Fatal(err)
	}
	if got := c.UniqueQueries(); got != 1 {
		t.Fatalf("duplicate demand re-billed: %d", got)
	}
}

// TestCancelledWaiterWithdrawsDemand covers the coalescing path: a demand
// caller that gives up on someone else's in-flight speculative fetch must
// withdraw its demand, so the fetch commits speculative and is billed only
// when a later demand consumes it.
func TestCancelledWaiterWithdrawsDemand(t *testing.T) {
	g := gen.Complete(16)
	svc := NewService(g, nil, Config{RealLatency: 80 * time.Millisecond})
	c := NewClient(svc)
	c.StartPrefetch(PrefetchConfig{Workers: 1})
	defer c.StopPrefetch()

	c.Prefetch(7)
	waitFor(t, func() bool { return c.Known(7) }) // in flight (or done)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.QueryContext(ctx, 7)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter coalesce
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter returned %v", err)
	}
	// Let the speculative round-trip finish and commit.
	waitFor(t, func() bool { return c.SpeculativeCount() == 1 || c.UniqueQueries() == 1 })
	if u := c.UniqueQueries(); u != 0 {
		// The waiter may have won the race and consumed the response before
		// cancellation took effect; then exactly one bill is correct.
		if u != 1 {
			t.Fatalf("unique queries %d, want 0 (withdrawn) or 1 (consumed)", u)
		}
		return
	}
	if s := c.SpeculativeCount(); s != 1 {
		t.Fatalf("withdrawn fetch not parked speculative: %d", s)
	}
	if _, err := c.Query(7); err != nil {
		t.Fatal(err)
	}
	if u, s := c.UniqueQueries(), c.SpeculativeCount(); u != 1 || s != 0 {
		t.Fatalf("post-withdraw demand: unique %d, speculative %d; want 1, 0", u, s)
	}
}

// TestBudgetExhaustion covers the demand-budget sentinel.
func TestBudgetExhaustion(t *testing.T) {
	g := gen.Complete(32)
	svc := NewService(g, nil, Config{})
	c := NewClient(svc)
	c.SetBudget(3)
	for v := graph.NodeID(0); v < 3; v++ {
		if _, err := c.Query(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query(10); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("got %v, want ErrBudgetExhausted", err)
	}
	// Cached responses stay free past exhaustion.
	if _, err := c.Query(1); err != nil {
		t.Fatalf("cache hit failed after exhaustion: %v", err)
	}
	if got := c.UniqueQueries(); got != 3 {
		t.Fatalf("billed %d, want 3", got)
	}
	// Raising the budget resumes.
	c.SetBudget(4)
	if _, err := c.Query(10); err != nil {
		t.Fatal(err)
	}
	if got := c.UniqueQueries(); got != 4 {
		t.Fatalf("billed %d, want 4", got)
	}
}
