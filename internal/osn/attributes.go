package osn

import (
	"rewire/internal/graph"
	"rewire/internal/rng"
)

// UserAttrs carries the per-user content a query exposes alongside the
// neighbor list. The fields mirror the aggregates the paper estimates:
// average degree (from Neighbors), average self-description length
// (Fig 11c), and generic numeric attributes for AVG/COUNT queries with
// selection conditions (§I-A).
type UserAttrs struct {
	Age     int // years
	DescLen int // characters of self-description, the Fig 11(c) attribute
	Posts   int // published posts
}

// Attributes is a column store of user attributes.
type Attributes struct {
	age     []uint8
	descLen []int32
	posts   []int32
}

// SynthesizeAttributes generates plausible attributes for every node of g:
//
//   - Age: 13 + a right-skewed lognormal, clamped to [13, 90].
//   - DescLen: lognormal with a mild positive degree correlation (active,
//     well-connected users write longer bios), clamped to [0, 5000].
//   - Posts: lognormal scaled by degree (connectivity correlates with
//     activity), so COUNT/AVG queries with predicates have signal.
//
// Deterministic given the generator.
func SynthesizeAttributes(g *graph.Graph, r *rng.Rand) *Attributes {
	n := g.NumNodes()
	a := &Attributes{
		age:     make([]uint8, n),
		descLen: make([]int32, n),
		posts:   make([]int32, n),
	}
	for v := 0; v < n; v++ {
		age := 13 + int(r.LogNormal(2.9, 0.45))
		if age > 90 {
			age = 90
		}
		a.age[v] = uint8(age)

		deg := float64(g.Degree(graph.NodeID(v)))
		dl := int(r.LogNormal(3.6, 1.0) * (1 + deg/50))
		if dl > 5000 {
			dl = 5000
		}
		a.descLen[v] = int32(dl)

		p := int(r.LogNormal(2.0, 1.2) * (1 + deg/20))
		if p > 100000 {
			p = 100000
		}
		a.posts[v] = int32(p)
	}
	return a
}

// Of returns the attributes of user v.
func (a *Attributes) Of(v graph.NodeID) UserAttrs {
	return UserAttrs{
		Age:     int(a.age[v]),
		DescLen: int(a.descLen[v]),
		Posts:   int(a.posts[v]),
	}
}

// Len returns the number of users covered.
func (a *Attributes) Len() int { return len(a.age) }

// MeanDescLen returns the ground-truth average self-description length —
// what the Fig 11(c) estimators chase.
func (a *Attributes) MeanDescLen() float64 {
	if len(a.descLen) == 0 {
		return 0
	}
	s := 0.0
	for _, d := range a.descLen {
		s += float64(d)
	}
	return s / float64(len(a.descLen))
}

// MeanAge returns the ground-truth average age.
func (a *Attributes) MeanAge() float64 {
	if len(a.age) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range a.age {
		s += float64(x)
	}
	return s / float64(len(a.age))
}
