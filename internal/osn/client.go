package osn

import (
	"context"
	"fmt"
	"sync"

	"rewire/internal/graph"
	"rewire/internal/store"
)

// inflight coordinates concurrent fetches for one user: the first goroutine
// to miss (or the prefetch worker) performs the service round-trip, later
// arrivals wait on done and share the result. Publishing resp/err before
// close(done) gives waiters a happens-before edge, so no lock is needed to
// read them.
type inflight struct {
	done chan struct{}
	resp Response
	err  error
	// demand counts the demand-path callers (Query, QueryBatch, waiters that
	// coalesced onto this fetch) currently needing the result. Guarded by the
	// user's shard lock. A waiter whose context is cancelled before the fetch
	// commits withdraws its demand; a fetch whose demand count is zero at
	// commit time stays speculative and does not touch the unique-query
	// ledger.
	demand int
	// tenant names the account the fetch's reservation — and, at commit, its
	// unique-query bill — belongs to: the FIRST demander's tenant (the one
	// whose arrival turned a free fetch into a billable one). Later
	// coalescers ride along unbilled, exactly as cache hits do. Guarded by
	// the user's shard lock, like demand; rewritten if demand returns to
	// zero and a new first demander claims the fetch.
	tenant string
}

// nodeState is everything the client knows about one user, stored as a single
// sharded-map entry so "check the cache, join an in-flight fetch, or claim
// the fetch" is one atomic step under one shard lock — per-shard singleflight.
// Exactly one of the two halves is live: flight != nil while a fetch is in
// progress, cached once a response landed. Speculative entries were fetched
// by the prefetch pool and not yet consumed by any demand query: they are
// invisible to the cost ledger AND to the free-knowledge accessors (Cached,
// CachedDegree, CachedAttrs) until a demand query upgrades them, so enabling
// prefetch changes neither walk trajectories nor Theorem 5 verdicts nor
// UniqueQueries — it is purely a latency optimization.
type nodeState struct {
	resp        Response
	cached      bool
	speculative bool
	flight      *inflight
}

// ledger is the client's global billing state. It is deliberately tiny — a
// handful of int64 counters behind one mutex touched only on the cold paths
// (misses, commits, speculative upgrades) — so that the hot path, a cache
// hit, costs exactly one shard read-lock and never contends across shards.
// Lock order: a user's shard lock first, then the ledger; never the reverse.
type ledger struct {
	mu     sync.Mutex
	unique int64
	// budget caps unique (demand) queries when positive; the demand path
	// returns ErrBudgetExhausted rather than billing past it.
	budget int64
	// reserved counts in-flight fetches that carry demand (each will bill
	// exactly one unique query when it commits successfully). Budget checks
	// test unique+reserved so that concurrent misses cannot collectively
	// overshoot the cap between pre-check and commit.
	reserved int64
	// speculative counts cache entries fetched ahead of demand and not yet
	// consumed — the pool's outstanding bet.
	speculative int64
	// size counts cached users (demanded and speculative). Tracked here so
	// CacheSize is O(1) and the billing invariant unique + speculative ==
	// size is checkable at a glance.
	size int64
	// tenants splits unique and reserved by tenant attribution (see
	// WithTenant); "" is the anonymous tenant. The split is exact, never a
	// sample: every unique++ above is mirrored on exactly one tenant, so
	// Σ tenants[*].unique == unique at every instant the mutex is free.
	tenants map[string]*tenantLedger
}

// tenantLedger is one tenant's slice of the ledger: its billed and reserved
// demand queries, and its optional private budget.
type tenantLedger struct {
	unique   int64
	reserved int64
	// budget caps this tenant's unique demand queries when positive,
	// independently of (and in addition to) the client-wide budget.
	budget int64
}

// tenantLocked returns (allocating on first touch) the named tenant's
// ledger slice. Callers hold led.mu.
func (l *ledger) tenantLocked(name string) *tenantLedger {
	if l.tenants == nil {
		l.tenants = make(map[string]*tenantLedger)
	}
	t := l.tenants[name]
	if t == nil {
		t = &tenantLedger{}
		l.tenants[name] = t
	}
	return t
}

// overTenantBudgetLocked is overBudgetLocked for one tenant's private cap.
// Callers hold led.mu.
func (l *ledger) overTenantBudgetLocked(t *tenantLedger) bool {
	return t.budget > 0 && t.unique+t.reserved >= t.budget
}

// overBudgetLocked reports whether committing to one more unique query —
// on top of those already billed AND those reserved by in-flight demanded
// fetches — would exceed the configured budget. Callers hold led.mu.
func (l *ledger) overBudgetLocked() bool {
	return l.budget > 0 && l.unique+l.reserved >= l.budget
}

// Client is the third-party sampler's view of a network backend. It
// implements the paper's query-cost accounting (§II-B): "we consider the
// number of unique queries one has to issue for the sampling process, as any
// duplicate query can be answered from local cache without consuming the
// query limit". Every response is cached forever (the paper's Redis/Mongo
// local store), and cached degree knowledge powers the Theorem 5 extended
// removal criterion.
//
// The client is generic over the Backend contract: the simulated Service is
// merely the built-in backend, and a live HTTP provider or a read-only CSR
// snapshot gets the exact same cache, singleflight, billing, budget, and
// prefetch machinery.
//
// Client is safe for concurrent use, and its local store is sharded
// (internal/store): per-user state lives in a power-of-two-sharded map with
// one RWMutex per shard, so fleet walkers and prefetch workers touching
// different users never contend — a cache hit is one shard read-lock, and a
// cache miss is coalesced per user under its shard lock (per-shard
// singleflight). The lock is NOT held across the service round-trip (misses
// for different users overlap their latency, the fleet's whole wall-clock
// win), yet concurrent misses for the same user still charge exactly one
// unique query. Global billing counters live in a separate one-mutex ledger
// touched only on cold paths.
//
// A Client can additionally run an asynchronous prefetch pool (see
// NewPrefetchingClient / StartPrefetch): Prefetch(ids...) enqueues
// speculative fetches that overlap their round-trips with the walk, and a
// demand Query that lands on an in-flight or completed speculative fetch
// consumes it at exactly one unique query — never zero, never two.
type Client struct {
	be Backend
	// hinter is be's optional advisory-prefetch capability, probed once at
	// construction (nil when absent).
	hinter Hinter
	state  *store.Map[graph.NodeID, nodeState]
	led    ledger

	// pool is the optional prefetch worker pool; nil means Prefetch is a
	// no-op. Guarded by poolMu (not the shard locks: enqueueing must not
	// contend with the cache). retired accumulates counters of stopped pools.
	poolMu  sync.RWMutex
	pool    *prefetchPool
	retired PrefetchStats

	// journal, when non-nil, persists billing-relevant transitions before
	// they become observable (see Journal). Installed at construction time
	// via SetJournal; never mutated while queries run.
	journal Journal
}

// NewClient wraps a backend with an empty cache (adaptive default shard
// count) and no prefetch pool.
func NewClient(be Backend) *Client {
	return NewClientShards(be, 0)
}

// NewClientShards wraps a backend with an empty cache sharded n ways (rounded
// up to a power of two; n <= 0 selects the adaptive store.DefaultShards(),
// n == 1 is the legacy single-lock layout the contention benchmarks compare
// against).
func NewClientShards(be Backend, n int) *Client {
	c := &Client{
		be:    be,
		state: store.NewMap[graph.NodeID, nodeState](n),
	}
	c.hinter, _ = be.(Hinter)
	return c
}

// fetchOne performs the backend round-trip for a single user. The demand and
// speculative paths both funnel through it, so the Backend contract — one
// Response per id or a batch-wide error — is enforced in exactly one place.
func (c *Client) fetchOne(ctx context.Context, v graph.NodeID) (Response, error) {
	resps, err := c.be.Fetch(ctx, []graph.NodeID{v})
	if err != nil {
		return Response{}, err
	}
	if len(resps) != 1 {
		return Response{}, fmt.Errorf("osn: backend returned %d responses for 1 id", len(resps))
	}
	return resps[0], nil
}

// Reshard rebuilds the local store with a new shard count. It is NOT safe to
// call concurrently with queries — it exists so a Session can apply
// WithStoreShards before its first run.
func (c *Client) Reshard(n int) { c.state.Reshard(n) }

// StoreShards returns the local store's shard count.
func (c *Client) StoreShards() int { return c.state.Shards() }

// SetBudget caps the number of unique (demand) queries at n; once the ledger
// reaches n, the demand path returns ErrBudgetExhausted instead of billing
// past the cap. n <= 0 removes the cap. The budget is a demand-side guard —
// the speculative pool has its own (PrefetchConfig.Budget) — and it is safe
// to raise mid-run to resume an exhausted walk.
func (c *Client) SetBudget(n int64) {
	c.led.mu.Lock()
	c.led.budget = n
	c.led.mu.Unlock()
	if c.journal != nil {
		// Best-effort: a failed append fail-stops the journal itself, and the
		// budget still applies for this process's lifetime.
		_ = c.journal.RecordBudget(n)
	}
}

// Query returns q(v), from cache when possible. Only cache misses reach the
// service, and only demanded responses count toward UniqueQueries: a
// response the prefetch pool fetched speculatively is billed here, on first
// demand, exactly once.
func (c *Client) Query(v graph.NodeID) (Response, error) {
	//rewirelint:allow ctxflow context-less convenience shim; ctx-aware callers use QueryContext
	return c.QueryContext(context.Background(), v)
}

// QueryContext is Query bound to a context: a cache miss's provider
// round-trip honors ctx (see Service.QueryContext), and a caller coalescing
// onto someone else's in-flight fetch stops waiting when ctx is cancelled.
//
// Billing stays exact under cancellation. A waiter that gives up before the
// shared fetch commits withdraws its demand, so a fetch nobody ended up
// needing commits speculative (billed only when a later demand consumes it),
// and a fetch that fails (including by cancellation of the goroutine driving
// the round-trip) bills nothing and caches nothing — the next demand retries
// it. Coalesced waiters share the driving fetch's fate, errors included,
// exactly like singleflight; a waiter that sees a context error not its own
// may simply retry.
func (c *Client) QueryContext(ctx context.Context, v graph.NodeID) (Response, error) {
	// Hot path: a demanded cache hit costs one shard read-lock.
	if st, ok := c.state.Get(v); ok && st.cached && !st.speculative {
		return st.resp, nil
	}
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	// Tenant attribution is read from ctx BEFORE any lock: the billing
	// branches below run under a shard lock and the ledger mutex.
	tn := TenantFrom(ctx)
	var (
		resp    Response
		retErr  error
		settled bool // resolved under the shard lock; return immediately
		f       *inflight
		owner   bool // this call claimed the fetch and must drive it
	)
	c.state.Locked(v, func(s store.LockedShard[graph.NodeID, nodeState]) {
		st, ok := s.Get(v)
		switch {
		case ok && st.cached:
			if st.speculative {
				// First demand touch of a prefetched response: bill it now,
				// to the tenant whose demand consumed the speculation.
				c.led.mu.Lock()
				tl := c.led.tenantLocked(tn)
				if c.led.overBudgetLocked() || c.led.overTenantBudgetLocked(tl) {
					c.led.mu.Unlock()
					retErr = ErrBudgetExhausted
					settled = true
					return
				}
				if c.journal != nil {
					// Persist the promotion before billing it (same barrier
					// as commit): an append failure fails the query and
					// leaves the entry speculative for a later retry.
					if jerr := c.journal.RecordUpgrade(v, tn); jerr != nil {
						c.led.mu.Unlock()
						retErr = fmt.Errorf("osn: journaling speculative upgrade: %w", jerr)
						settled = true
						return
					}
				}
				c.led.unique++
				tl.unique++
				c.led.speculative--
				c.led.mu.Unlock()
				st.speculative = false
				s.Put(v, st)
			}
			resp = st.resp
			settled = true
		case ok && st.flight != nil:
			// Someone else — a sibling walker or the prefetch pool — is
			// already fetching v: register demand so commit bills it, then
			// wait for the shared round-trip. Budget is consulted (and a
			// reservation taken, on the global ledger and on this tenant's)
			// only when this is the fetch's FIRST demand; coalescing onto an
			// already-demanded fetch costs nothing — for anyone.
			f = st.flight
			if f.demand == 0 {
				c.led.mu.Lock()
				tl := c.led.tenantLocked(tn)
				if c.led.overBudgetLocked() || c.led.overTenantBudgetLocked(tl) {
					c.led.mu.Unlock()
					f = nil
					retErr = ErrBudgetExhausted
					settled = true
					return
				}
				c.led.reserved++
				tl.reserved++
				c.led.mu.Unlock()
				f.tenant = tn
			}
			f.demand++
		default:
			c.led.mu.Lock()
			tl := c.led.tenantLocked(tn)
			if c.led.overBudgetLocked() || c.led.overTenantBudgetLocked(tl) {
				c.led.mu.Unlock()
				retErr = ErrBudgetExhausted
				settled = true
				return
			}
			c.led.reserved++
			tl.reserved++
			c.led.mu.Unlock()
			f = &inflight{done: make(chan struct{}), demand: 1, tenant: tn}
			owner = true
			s.Put(v, nodeState{flight: f})
		}
	})
	if settled {
		return resp, retErr
	}
	if owner {
		f.resp, f.err = c.fetchOne(ctx, v)
		c.commit(v, f)
		if f.err != nil {
			return Response{}, f.err
		}
		return f.resp, nil
	}
	select {
	case <-f.done:
		if f.err != nil {
			return Response{}, f.err
		}
		return f.resp, nil
	case <-ctx.Done():
		// Withdraw the demand unless the fetch already committed (commit
		// removes the flight entry under the shard lock before closing done,
		// so checking it decides the race consistently).
		withdrawn := false
		c.state.Locked(v, func(s store.LockedShard[graph.NodeID, nodeState]) {
			if st, ok := s.Get(v); ok && st.flight == f {
				f.demand--
				if f.demand == 0 {
					// Last demander gone: release the reservation — from the
					// fetch's billing tenant, who may differ from this waiter
					// (the first demander could have withdrawn earlier while
					// others kept the fetch demanded).
					c.led.mu.Lock()
					c.led.reserved--
					c.led.tenantLocked(f.tenant).reserved--
					c.led.mu.Unlock()
				}
				withdrawn = true
			}
		})
		if !withdrawn {
			// Commit won: the response (if any) is cached and billed on this
			// walker's behalf — return it rather than the late cancellation.
			<-f.done
			if f.err == nil {
				return f.resp, nil
			}
		}
		return Response{}, ctx.Err()
	}
}

// commit publishes a finished fetch: the response enters the cache (tagged
// speculative when no demand caller still wants the fetch), the ledger is
// billed for demanded fetches, and waiters are released. Failed fetches
// cache nothing and bill nothing — the next demand retries.
func (c *Client) commit(v graph.NodeID, f *inflight) {
	c.state.Locked(v, func(s store.LockedShard[graph.NodeID, nodeState]) {
		// Durability barrier: persist the fetch before any waiter can observe
		// it or the ledger bills it. On append failure the fetch fails —
		// nothing cached, nothing billed — and the next demand retries.
		if jerr := c.journalFetch(v, f); jerr != nil {
			f.err = jerr
		}
		c.led.mu.Lock()
		if f.demand > 0 {
			// The reservation resolves here — into a bill or a retry — on
			// the global ledger and on the billing tenant's slice alike.
			c.led.reserved--
			c.led.tenantLocked(f.tenant).reserved--
		}
		if f.err == nil {
			if f.demand > 0 {
				c.led.unique++
				c.led.tenantLocked(f.tenant).unique++
			} else {
				c.led.speculative++
			}
			c.led.size++
		}
		c.led.mu.Unlock()
		if f.err == nil {
			s.Put(v, nodeState{resp: f.resp, cached: true, speculative: f.demand == 0})
		} else {
			s.Delete(v)
		}
	})
	close(f.done)
}

// fetchSpeculative is the prefetch worker's fetch path: skip anything cached
// or already in flight, otherwise perform the round-trip (bound to the
// pool's context) without registering demand. It reports whether this call
// performed a service round-trip; when someone else's fetch is in flight it
// returns that fetch instead, so a depth-carrying job can await the result
// and still expand the frontier behind it — the common case for next-hop
// hints, which lose the race against the walker's own demand query almost
// every time.
func (c *Client) fetchSpeculative(ctx context.Context, v graph.NodeID) (resp Response, fetched bool, pending *inflight) {
	var (
		f      *inflight
		cached bool
	)
	c.state.Locked(v, func(s store.LockedShard[graph.NodeID, nodeState]) {
		st, ok := s.Get(v)
		switch {
		case ok && st.cached:
			resp = st.resp
			cached = true
		case ok && st.flight != nil:
			pending = st.flight
		default:
			f = &inflight{done: make(chan struct{})}
			s.Put(v, nodeState{flight: f})
		}
	})
	if cached || pending != nil {
		return resp, false, pending
	}
	f.resp, f.err = c.fetchOne(ctx, v)
	c.commit(v, f)
	return f.resp, f.err == nil, nil
}

// QueryBatch resolves all ids, blocking until every response is available,
// and returns them in input order. Misses are fetched concurrently — they
// coalesce with any in-flight fetches and with each other — so a batch of m
// cold ids costs roughly one RealLatency of wall-clock, not m, while each id
// is billed as a demand query exactly once however many batches or walkers
// race for it. The first error (if any) is returned after all fetches
// settle.
func (c *Client) QueryBatch(ids []graph.NodeID) ([]Response, error) {
	//rewirelint:allow ctxflow context-less convenience shim; ctx-aware callers use QueryBatchContext
	return c.QueryBatchContext(context.Background(), ids)
}

// QueryBatchContext is QueryBatch bound to a context: cancellation or
// deadline expiry aborts the in-flight misses promptly (see QueryContext for
// the exact billing semantics) and the call returns the context's error
// after the per-id fetches settle. Responses already resolved are still
// returned at their slots.
func (c *Client) QueryBatchContext(ctx context.Context, ids []graph.NodeID) ([]Response, error) {
	out := make([]Response, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, v := range ids {
		if st, ok := c.state.Get(v); ok && st.cached && !st.speculative {
			out[i] = st.resp
			continue
		}
		wg.Add(1)
		go func(i int, v graph.NodeID) {
			defer wg.Done()
			out[i], errs[i] = c.QueryContext(ctx, v)
		}(i, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// NeighborsContext returns v's neighbor list (shared slice, do not modify),
// querying on a cache miss with the round-trip bound to ctx. Unlike
// Neighbors, errors — cancellation, budget exhaustion, unknown IDs — are
// returned instead of swallowed, which is what lets a cancelled walk
// distinguish "isolated node" from "aborted query".
func (c *Client) NeighborsContext(ctx context.Context, v graph.NodeID) ([]graph.NodeID, error) {
	resp, err := c.QueryContext(ctx, v)
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// Neighbors returns v's neighbor list (shared slice, do not modify),
// querying on a cache miss. Unknown IDs return nil — walkers only ever hold
// IDs the interface handed them, so this is a programming-error guard, not a
// control path.
func (c *Client) Neighbors(v graph.NodeID) []graph.NodeID {
	resp, err := c.Query(v)
	if err != nil {
		return nil
	}
	return resp.Neighbors
}

// Degree returns v's degree, querying on a cache miss (0 for unknown IDs).
func (c *Client) Degree(v graph.NodeID) int {
	return len(c.Neighbors(v))
}

// Cached reports whether v's response is already in the local store AND has
// been paid for by a demand query. Speculative prefetch results are
// deliberately excluded: free-knowledge consumers (the Theorem 5 criterion)
// must see the exact same world with and without prefetching, or enabling
// the pool would silently change trajectories and query bills.
func (c *Client) Cached(v graph.NodeID) bool {
	st, ok := c.state.Get(v)
	return ok && st.cached && !st.speculative
}

// Known reports whether a fetch for v is already cached (demanded or
// speculative) or in flight — i.e. whether issuing a prefetch hint for v
// would be redundant. Prefetch strategies use it to spend their hint budget
// on genuinely cold nodes.
func (c *Client) Known(v graph.NodeID) bool {
	// Failed fetches delete their entry, so presence == cached or in flight.
	return c.state.Contains(v)
}

// CachedDegree returns v's degree if — and only if — it is already known
// locally through a demand query, without issuing one. This is the
// "historical information ... without paying any query cost" of the paper's
// Theorem 5 extension. Speculative entries are excluded (see Cached).
func (c *Client) CachedDegree(v graph.NodeID) (int, bool) {
	st, ok := c.state.Get(v)
	if !ok || !st.cached || st.speculative {
		return 0, false
	}
	return len(st.resp.Neighbors), true
}

// CachedNeighbors returns v's neighbor list (shared slice, do not modify) if
// already demand-cached. Prefetch strategies use it to read the walk
// frontier without spending queries.
func (c *Client) CachedNeighbors(v graph.NodeID) ([]graph.NodeID, bool) {
	st, ok := c.state.Get(v)
	if !ok || !st.cached || st.speculative {
		return nil, false
	}
	return st.resp.Neighbors, true
}

// CachedAttrs returns v's attributes if already demand-cached.
func (c *Client) CachedAttrs(v graph.NodeID) (UserAttrs, bool) {
	st, ok := c.state.Get(v)
	if !ok || !st.cached || st.speculative {
		return UserAttrs{}, false
	}
	return st.resp.Attrs, true
}

// UniqueQueries returns the paper's query-cost metric: responses a sampler
// actually demanded. Speculative fetches still sitting unconsumed in the
// cache are not included — see SpeculativeCount for the pool's outstanding
// bet and Service.TotalQueries for the provider's view.
func (c *Client) UniqueQueries() int64 {
	c.led.mu.Lock()
	defer c.led.mu.Unlock()
	return c.led.unique
}

// SpeculativeCount returns the number of prefetched responses no demand
// query has consumed yet.
func (c *Client) SpeculativeCount() int64 {
	c.led.mu.Lock()
	defer c.led.mu.Unlock()
	return c.led.speculative
}

// NumUsers exposes the provider-published user count (0 when the backend
// lacks the UserCounter capability — such backends can still be queried, but
// a session over them must pin explicit start nodes).
func (c *Client) NumUsers() int { return backendUsers(c.be) }

// CacheSize returns the number of distinct users stored locally (demanded
// and speculative).
func (c *Client) CacheSize() int {
	c.led.mu.Lock()
	defer c.led.mu.Unlock()
	return int(c.led.size)
}

// TenantBill is one tenant's slice of the billing ledger (see WithTenant).
type TenantBill struct {
	// Unique is the tenant's demand-query bill: fetches whose FIRST demand
	// came from this tenant, plus speculative responses this tenant's
	// demand consumed. Cache hits and coalesced waits are free, so
	// Σ all tenants' Unique == UniqueQueries exactly.
	Unique int64
	// Reserved counts the tenant's in-flight demanded fetches (each will
	// bill one unique query if it commits successfully).
	Reserved int64
	// Budget is the tenant's private demand-query cap (0 = none). The
	// client-wide budget still applies on top.
	Budget int64
}

// TenantBill returns the named tenant's current ledger slice ("" is the
// anonymous tenant — demand queries from contexts without WithTenant).
func (c *Client) TenantBill(name string) TenantBill {
	c.led.mu.Lock()
	defer c.led.mu.Unlock()
	t := c.led.tenants[name]
	if t == nil {
		return TenantBill{}
	}
	return TenantBill{Unique: t.unique, Reserved: t.reserved, Budget: t.budget}
}

// TenantBills returns every tenant's ledger slice, keyed by tenant name, as
// a private copy consistent at one ledger instant.
func (c *Client) TenantBills() map[string]TenantBill {
	c.led.mu.Lock()
	defer c.led.mu.Unlock()
	out := make(map[string]TenantBill, len(c.led.tenants))
	for name, t := range c.led.tenants {
		out[name] = TenantBill{Unique: t.unique, Reserved: t.reserved, Budget: t.budget}
	}
	return out
}

// SetTenantBudget caps the named tenant's unique demand queries at n
// (n <= 0 removes the cap). The tenant's demand path returns
// ErrBudgetExhausted once its own bill reaches the cap, regardless of how
// much client-wide budget remains — billing isolation's enforcement half.
// Safe to raise mid-run to resume the tenant's exhausted jobs.
func (c *Client) SetTenantBudget(name string, n int64) {
	c.led.mu.Lock()
	c.led.tenantLocked(name).budget = n
	c.led.mu.Unlock()
	if c.journal != nil {
		// Best-effort, as in SetBudget.
		_ = c.journal.RecordTenantBudget(name, n)
	}
}
