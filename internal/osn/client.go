package osn

import "rewire/internal/graph"

// Client is the third-party sampler's view of the service. It implements the
// paper's query-cost accounting (§II-B): "we consider the number of unique
// queries one has to issue for the sampling process, as any duplicate query
// can be answered from local cache without consuming the query limit".
// Every response is cached forever (the paper's Redis/Mongo local store),
// and cached degree knowledge powers the Theorem 5 extended removal
// criterion.
type Client struct {
	svc    *Service
	cache  map[graph.NodeID]Response
	unique int64
}

// NewClient wraps a service with an empty cache.
func NewClient(svc *Service) *Client {
	return &Client{svc: svc, cache: make(map[graph.NodeID]Response)}
}

// Query returns q(v), from cache when possible. Only cache misses reach the
// service and count toward UniqueQueries.
func (c *Client) Query(v graph.NodeID) (Response, error) {
	if resp, ok := c.cache[v]; ok {
		return resp, nil
	}
	resp, err := c.svc.Query(v)
	if err != nil {
		return Response{}, err
	}
	c.cache[v] = resp
	c.unique++
	return resp, nil
}

// Neighbors returns v's neighbor list (shared slice, do not modify),
// querying on a cache miss. Unknown IDs return nil — walkers only ever hold
// IDs the interface handed them, so this is a programming-error guard, not a
// control path.
func (c *Client) Neighbors(v graph.NodeID) []graph.NodeID {
	resp, err := c.Query(v)
	if err != nil {
		return nil
	}
	return resp.Neighbors
}

// Degree returns v's degree, querying on a cache miss (0 for unknown IDs).
func (c *Client) Degree(v graph.NodeID) int {
	return len(c.Neighbors(v))
}

// Cached reports whether v's response is already in the local store.
func (c *Client) Cached(v graph.NodeID) bool {
	_, ok := c.cache[v]
	return ok
}

// CachedDegree returns v's degree if — and only if — it is already known
// locally, without issuing a query. This is the "historical information ...
// without paying any query cost" of the paper's Theorem 5 extension.
func (c *Client) CachedDegree(v graph.NodeID) (int, bool) {
	resp, ok := c.cache[v]
	if !ok {
		return 0, false
	}
	return len(resp.Neighbors), true
}

// CachedAttrs returns v's attributes if already known locally.
func (c *Client) CachedAttrs(v graph.NodeID) (UserAttrs, bool) {
	resp, ok := c.cache[v]
	if !ok {
		return UserAttrs{}, false
	}
	return resp.Attrs, true
}

// UniqueQueries returns the paper's query-cost metric.
func (c *Client) UniqueQueries() int64 { return c.unique }

// NumUsers exposes the provider-published user count.
func (c *Client) NumUsers() int { return c.svc.NumUsers() }

// CacheSize returns the number of distinct users stored locally.
func (c *Client) CacheSize() int { return len(c.cache) }
