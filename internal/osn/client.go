package osn

import (
	"sync"

	"rewire/internal/graph"
)

// inflight coordinates concurrent cache misses for one user: the first
// goroutine to miss performs the service round-trip, later arrivals wait on
// done and share the result. Publishing resp/err before close(done) gives
// waiters a happens-before edge, so no lock is needed to read them.
type inflight struct {
	done chan struct{}
	resp Response
	err  error
}

// Client is the third-party sampler's view of the service. It implements the
// paper's query-cost accounting (§II-B): "we consider the number of unique
// queries one has to issue for the sampling process, as any duplicate query
// can be answered from local cache without consuming the query limit".
// Every response is cached forever (the paper's Redis/Mongo local store),
// and cached degree knowledge powers the Theorem 5 extended removal
// criterion.
//
// Client is safe for concurrent use. A fleet of walkers sharing one Client
// shares both the query budget and the discovered topology: cache hits are
// served under a read lock, and cache misses are coalesced per user — the
// lock is NOT held across the service round-trip (so misses for different
// users overlap their latency, the fleet's whole wall-clock win), yet
// concurrent misses for the same user still charge exactly one unique query.
type Client struct {
	svc    *Service
	mu     sync.RWMutex
	cache  map[graph.NodeID]Response
	flight map[graph.NodeID]*inflight
	unique int64
}

// NewClient wraps a service with an empty cache.
func NewClient(svc *Service) *Client {
	return &Client{
		svc:    svc,
		cache:  make(map[graph.NodeID]Response),
		flight: make(map[graph.NodeID]*inflight),
	}
}

// Query returns q(v), from cache when possible. Only cache misses reach the
// service and count toward UniqueQueries.
func (c *Client) Query(v graph.NodeID) (Response, error) {
	c.mu.RLock()
	resp, ok := c.cache[v]
	c.mu.RUnlock()
	if ok {
		return resp, nil
	}
	c.mu.Lock()
	if resp, ok := c.cache[v]; ok {
		c.mu.Unlock()
		return resp, nil
	}
	if f, ok := c.flight[v]; ok {
		// Someone else is already fetching v: wait for their round-trip.
		c.mu.Unlock()
		<-f.done
		return f.resp, f.err
	}
	f := &inflight{done: make(chan struct{})}
	c.flight[v] = f
	c.mu.Unlock()

	f.resp, f.err = c.svc.Query(v)

	c.mu.Lock()
	if f.err == nil {
		c.cache[v] = f.resp
		c.unique++
	}
	delete(c.flight, v)
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return Response{}, f.err
	}
	return f.resp, nil
}

// Neighbors returns v's neighbor list (shared slice, do not modify),
// querying on a cache miss. Unknown IDs return nil — walkers only ever hold
// IDs the interface handed them, so this is a programming-error guard, not a
// control path.
func (c *Client) Neighbors(v graph.NodeID) []graph.NodeID {
	resp, err := c.Query(v)
	if err != nil {
		return nil
	}
	return resp.Neighbors
}

// Degree returns v's degree, querying on a cache miss (0 for unknown IDs).
func (c *Client) Degree(v graph.NodeID) int {
	return len(c.Neighbors(v))
}

// Cached reports whether v's response is already in the local store.
func (c *Client) Cached(v graph.NodeID) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.cache[v]
	return ok
}

// CachedDegree returns v's degree if — and only if — it is already known
// locally, without issuing a query. This is the "historical information ...
// without paying any query cost" of the paper's Theorem 5 extension.
func (c *Client) CachedDegree(v graph.NodeID) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	resp, ok := c.cache[v]
	if !ok {
		return 0, false
	}
	return len(resp.Neighbors), true
}

// CachedAttrs returns v's attributes if already known locally.
func (c *Client) CachedAttrs(v graph.NodeID) (UserAttrs, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	resp, ok := c.cache[v]
	if !ok {
		return UserAttrs{}, false
	}
	return resp.Attrs, true
}

// UniqueQueries returns the paper's query-cost metric.
func (c *Client) UniqueQueries() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.unique
}

// NumUsers exposes the provider-published user count.
func (c *Client) NumUsers() int { return c.svc.NumUsers() }

// CacheSize returns the number of distinct users stored locally.
func (c *Client) CacheSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cache)
}
