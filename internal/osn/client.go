package osn

import (
	"context"
	"sync"

	"rewire/internal/graph"
)

// inflight coordinates concurrent fetches for one user: the first goroutine
// to miss (or the prefetch worker) performs the service round-trip, later
// arrivals wait on done and share the result. Publishing resp/err before
// close(done) gives waiters a happens-before edge, so no lock is needed to
// read them.
type inflight struct {
	done chan struct{}
	resp Response
	err  error
	// demand counts the demand-path callers (Query, QueryBatch, waiters that
	// coalesced onto this fetch) currently needing the result. Guarded by
	// Client.mu. A waiter whose context is cancelled before the fetch commits
	// withdraws its demand; a fetch whose demand count is zero at commit time
	// stays speculative and does not touch the unique-query ledger.
	demand int
}

// cacheEntry is one stored response. Speculative entries were fetched by the
// prefetch pool and not yet consumed by any demand query: they are invisible
// to the cost ledger AND to the free-knowledge accessors (Cached,
// CachedDegree, CachedAttrs) until a demand query upgrades them, so enabling
// prefetch changes neither walk trajectories nor Theorem 5 verdicts nor
// UniqueQueries — it is purely a latency optimization.
type cacheEntry struct {
	resp        Response
	speculative bool
}

// Client is the third-party sampler's view of the service. It implements the
// paper's query-cost accounting (§II-B): "we consider the number of unique
// queries one has to issue for the sampling process, as any duplicate query
// can be answered from local cache without consuming the query limit".
// Every response is cached forever (the paper's Redis/Mongo local store),
// and cached degree knowledge powers the Theorem 5 extended removal
// criterion.
//
// Client is safe for concurrent use. A fleet of walkers sharing one Client
// shares both the query budget and the discovered topology: cache hits are
// served under a read lock, and cache misses are coalesced per user — the
// lock is NOT held across the service round-trip (so misses for different
// users overlap their latency, the fleet's whole wall-clock win), yet
// concurrent misses for the same user still charge exactly one unique query.
//
// A Client can additionally run an asynchronous prefetch pool (see
// NewPrefetchingClient / StartPrefetch): Prefetch(ids...) enqueues
// speculative fetches that overlap their round-trips with the walk, and a
// demand Query that lands on an in-flight or completed speculative fetch
// consumes it at exactly one unique query — never zero, never two.
type Client struct {
	svc    *Service
	mu     sync.RWMutex
	cache  map[graph.NodeID]cacheEntry
	flight map[graph.NodeID]*inflight
	unique int64
	// budget caps unique (demand) queries when positive; the demand path
	// returns ErrBudgetExhausted rather than billing past it.
	budget int64
	// reserved counts in-flight fetches that carry demand (each will bill
	// exactly one unique query when it commits successfully). Budget checks
	// test unique+reserved so that concurrent misses cannot collectively
	// overshoot the cap between pre-check and commit.
	reserved int64
	// speculative counts cache entries fetched ahead of demand and not yet
	// consumed — the pool's outstanding bet.
	speculative int64

	// pool is the optional prefetch worker pool; nil means Prefetch is a
	// no-op. Guarded by poolMu (not mu: enqueueing must not contend with the
	// cache lock). retired accumulates counters of stopped pools.
	poolMu  sync.RWMutex
	pool    *prefetchPool
	retired PrefetchStats
}

// NewClient wraps a service with an empty cache and no prefetch pool.
func NewClient(svc *Service) *Client {
	return &Client{
		svc:    svc,
		cache:  make(map[graph.NodeID]cacheEntry),
		flight: make(map[graph.NodeID]*inflight),
	}
}

// SetBudget caps the number of unique (demand) queries at n; once the ledger
// reaches n, the demand path returns ErrBudgetExhausted instead of billing
// past the cap. n <= 0 removes the cap. The budget is a demand-side guard —
// the speculative pool has its own (PrefetchConfig.Budget) — and it is safe
// to raise mid-run to resume an exhausted walk.
func (c *Client) SetBudget(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = n
}

// overBudgetLocked reports whether committing to one more unique query —
// on top of those already billed AND those reserved by in-flight demanded
// fetches — would exceed the configured budget. Callers hold c.mu.
func (c *Client) overBudgetLocked() bool {
	return c.budget > 0 && c.unique+c.reserved >= c.budget
}

// Query returns q(v), from cache when possible. Only cache misses reach the
// service, and only demanded responses count toward UniqueQueries: a
// response the prefetch pool fetched speculatively is billed here, on first
// demand, exactly once.
func (c *Client) Query(v graph.NodeID) (Response, error) {
	return c.QueryContext(context.Background(), v)
}

// QueryContext is Query bound to a context: a cache miss's provider
// round-trip honors ctx (see Service.QueryContext), and a caller coalescing
// onto someone else's in-flight fetch stops waiting when ctx is cancelled.
//
// Billing stays exact under cancellation. A waiter that gives up before the
// shared fetch commits withdraws its demand, so a fetch nobody ended up
// needing commits speculative (billed only when a later demand consumes it),
// and a fetch that fails (including by cancellation of the goroutine driving
// the round-trip) bills nothing and caches nothing — the next demand retries
// it. Coalesced waiters share the driving fetch's fate, errors included,
// exactly like singleflight; a waiter that sees a context error not its own
// may simply retry.
func (c *Client) QueryContext(ctx context.Context, v graph.NodeID) (Response, error) {
	c.mu.RLock()
	e, ok := c.cache[v]
	c.mu.RUnlock()
	if ok && !e.speculative {
		return e.resp, nil
	}
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	c.mu.Lock()
	if e, ok := c.cache[v]; ok {
		if e.speculative {
			// First demand touch of a prefetched response: bill it now.
			if c.overBudgetLocked() {
				c.mu.Unlock()
				return Response{}, ErrBudgetExhausted
			}
			e.speculative = false
			c.cache[v] = e
			c.unique++
			c.speculative--
		}
		c.mu.Unlock()
		return e.resp, nil
	}
	if f, ok := c.flight[v]; ok {
		// Someone else — a sibling walker or the prefetch pool — is already
		// fetching v: register demand so commit bills it, then wait for the
		// shared round-trip. Budget is consulted (and a reservation taken)
		// only when this is the fetch's FIRST demand; coalescing onto an
		// already-demanded fetch costs nothing.
		if f.demand == 0 {
			if c.overBudgetLocked() {
				c.mu.Unlock()
				return Response{}, ErrBudgetExhausted
			}
			c.reserved++
		}
		f.demand++
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return Response{}, f.err
			}
			return f.resp, nil
		case <-ctx.Done():
			// Withdraw the demand unless the fetch already committed (the
			// flight entry is removed under the lock before done is closed,
			// so checking it decides the race consistently).
			c.mu.Lock()
			withdrawn := false
			if _, still := c.flight[v]; still {
				f.demand--
				if f.demand == 0 {
					c.reserved-- // last demander gone: release the reservation
				}
				withdrawn = true
			}
			c.mu.Unlock()
			if !withdrawn {
				// Commit won: the response (if any) is cached and billed on
				// this walker's behalf — return it rather than the late
				// cancellation.
				<-f.done
				if f.err == nil {
					return f.resp, nil
				}
			}
			return Response{}, ctx.Err()
		}
	}
	if c.overBudgetLocked() {
		c.mu.Unlock()
		return Response{}, ErrBudgetExhausted
	}
	f := &inflight{done: make(chan struct{}), demand: 1}
	c.reserved++
	c.flight[v] = f
	c.mu.Unlock()

	f.resp, f.err = c.svc.QueryContext(ctx, v)
	c.commit(v, f)
	if f.err != nil {
		return Response{}, f.err
	}
	return f.resp, nil
}

// commit publishes a finished fetch: the response enters the cache (tagged
// speculative when no demand caller still wants the fetch), the ledger is
// billed for demanded fetches, and waiters are released. Failed fetches
// cache nothing and bill nothing — the next demand retries.
func (c *Client) commit(v graph.NodeID, f *inflight) {
	c.mu.Lock()
	if f.demand > 0 {
		c.reserved-- // the reservation resolves here: into a bill or a retry
	}
	if f.err == nil {
		c.cache[v] = cacheEntry{resp: f.resp, speculative: f.demand == 0}
		if f.demand > 0 {
			c.unique++
		} else {
			c.speculative++
		}
	}
	delete(c.flight, v)
	c.mu.Unlock()
	close(f.done)
}

// fetchSpeculative is the prefetch worker's fetch path: skip anything cached
// or already in flight, otherwise perform the round-trip (bound to the
// pool's context) without registering demand. It reports whether this call
// performed a service round-trip; when someone else's fetch is in flight it
// returns that fetch instead, so a depth-carrying job can await the result
// and still expand the frontier behind it — the common case for next-hop
// hints, which lose the race against the walker's own demand query almost
// every time.
func (c *Client) fetchSpeculative(ctx context.Context, v graph.NodeID) (resp Response, fetched bool, pending *inflight) {
	c.mu.Lock()
	if e, ok := c.cache[v]; ok {
		c.mu.Unlock()
		return e.resp, false, nil
	}
	if f, ok := c.flight[v]; ok {
		c.mu.Unlock()
		return Response{}, false, f
	}
	f := &inflight{done: make(chan struct{})}
	c.flight[v] = f
	c.mu.Unlock()

	f.resp, f.err = c.svc.QueryContext(ctx, v)
	c.commit(v, f)
	return f.resp, f.err == nil, nil
}

// QueryBatch resolves all ids, blocking until every response is available,
// and returns them in input order. Misses are fetched concurrently — they
// coalesce with any in-flight fetches and with each other — so a batch of m
// cold ids costs roughly one RealLatency of wall-clock, not m, while each id
// is billed as a demand query exactly once however many batches or walkers
// race for it. The first error (if any) is returned after all fetches
// settle.
func (c *Client) QueryBatch(ids []graph.NodeID) ([]Response, error) {
	return c.QueryBatchContext(context.Background(), ids)
}

// QueryBatchContext is QueryBatch bound to a context: cancellation or
// deadline expiry aborts the in-flight misses promptly (see QueryContext for
// the exact billing semantics) and the call returns the context's error
// after the per-id fetches settle. Responses already resolved are still
// returned at their slots.
func (c *Client) QueryBatchContext(ctx context.Context, ids []graph.NodeID) ([]Response, error) {
	out := make([]Response, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, v := range ids {
		c.mu.RLock()
		e, ok := c.cache[v]
		c.mu.RUnlock()
		if ok && !e.speculative {
			out[i] = e.resp
			continue
		}
		wg.Add(1)
		go func(i int, v graph.NodeID) {
			defer wg.Done()
			out[i], errs[i] = c.QueryContext(ctx, v)
		}(i, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// NeighborsContext returns v's neighbor list (shared slice, do not modify),
// querying on a cache miss with the round-trip bound to ctx. Unlike
// Neighbors, errors — cancellation, budget exhaustion, unknown IDs — are
// returned instead of swallowed, which is what lets a cancelled walk
// distinguish "isolated node" from "aborted query".
func (c *Client) NeighborsContext(ctx context.Context, v graph.NodeID) ([]graph.NodeID, error) {
	resp, err := c.QueryContext(ctx, v)
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// Neighbors returns v's neighbor list (shared slice, do not modify),
// querying on a cache miss. Unknown IDs return nil — walkers only ever hold
// IDs the interface handed them, so this is a programming-error guard, not a
// control path.
func (c *Client) Neighbors(v graph.NodeID) []graph.NodeID {
	resp, err := c.Query(v)
	if err != nil {
		return nil
	}
	return resp.Neighbors
}

// Degree returns v's degree, querying on a cache miss (0 for unknown IDs).
func (c *Client) Degree(v graph.NodeID) int {
	return len(c.Neighbors(v))
}

// Cached reports whether v's response is already in the local store AND has
// been paid for by a demand query. Speculative prefetch results are
// deliberately excluded: free-knowledge consumers (the Theorem 5 criterion)
// must see the exact same world with and without prefetching, or enabling
// the pool would silently change trajectories and query bills.
func (c *Client) Cached(v graph.NodeID) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.cache[v]
	return ok && !e.speculative
}

// Known reports whether a fetch for v is already cached (demanded or
// speculative) or in flight — i.e. whether issuing a prefetch hint for v
// would be redundant. Prefetch strategies use it to spend their hint budget
// on genuinely cold nodes.
func (c *Client) Known(v graph.NodeID) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.cache[v]; ok {
		return true
	}
	_, ok := c.flight[v]
	return ok
}

// CachedDegree returns v's degree if — and only if — it is already known
// locally through a demand query, without issuing one. This is the
// "historical information ... without paying any query cost" of the paper's
// Theorem 5 extension. Speculative entries are excluded (see Cached).
func (c *Client) CachedDegree(v graph.NodeID) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.cache[v]
	if !ok || e.speculative {
		return 0, false
	}
	return len(e.resp.Neighbors), true
}

// CachedNeighbors returns v's neighbor list (shared slice, do not modify) if
// already demand-cached. Prefetch strategies use it to read the walk
// frontier without spending queries.
func (c *Client) CachedNeighbors(v graph.NodeID) ([]graph.NodeID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.cache[v]
	if !ok || e.speculative {
		return nil, false
	}
	return e.resp.Neighbors, true
}

// CachedAttrs returns v's attributes if already demand-cached.
func (c *Client) CachedAttrs(v graph.NodeID) (UserAttrs, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.cache[v]
	if !ok || e.speculative {
		return UserAttrs{}, false
	}
	return e.resp.Attrs, true
}

// UniqueQueries returns the paper's query-cost metric: responses a sampler
// actually demanded. Speculative fetches still sitting unconsumed in the
// cache are not included — see SpeculativeCount for the pool's outstanding
// bet and Service.TotalQueries for the provider's view.
func (c *Client) UniqueQueries() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.unique
}

// SpeculativeCount returns the number of prefetched responses no demand
// query has consumed yet.
func (c *Client) SpeculativeCount() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.speculative
}

// NumUsers exposes the provider-published user count.
func (c *Client) NumUsers() int { return c.svc.NumUsers() }

// CacheSize returns the number of distinct users stored locally (demanded
// and speculative).
func (c *Client) CacheSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cache)
}
