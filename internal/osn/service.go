// Package osn simulates the restrictive web interface of an online social
// network, the access model the whole paper is built around (§II-A): the only
// operation is the individual-user query
//
//	q(v): SELECT * FROM D WHERE USER-ID = v
//
// which returns v's published attributes and the list of users connected to
// v. Real providers rate-limit these queries (the paper cites 600/600s for
// Facebook and 350/hour for Twitter); the Service reproduces that with a
// simulated clock, and the Client reproduces the paper's cost accounting —
// only *unique* queries count, duplicates are served from a local cache.
package osn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rewire/internal/graph"
)

// ErrNoSuchUser is returned for queries outside the user-ID space.
var ErrNoSuchUser = errors.New("osn: no such user")

// ErrBudgetExhausted is returned by a Client whose demand-query budget
// (SetBudget) would be exceeded by the next unique query. The walk that
// receives it can checkpoint and resume later with a fresh budget — the
// cache, the overlay, and every walker position survive.
var ErrBudgetExhausted = errors.New("osn: query budget exhausted")

// Response is the answer to one individual-user query.
type Response struct {
	User      graph.NodeID
	Neighbors []graph.NodeID // shared slice; callers must not modify
	Attrs     UserAttrs
}

// Degree returns the number of connections in the response.
func (r Response) Degree() int { return len(r.Neighbors) }

// Config controls the simulated provider limits.
type Config struct {
	// QueriesPerWindow caps queries per Window; 0 disables rate limiting.
	QueriesPerWindow int
	// Window is the rate-limit window length (e.g. 600s).
	Window time.Duration
	// PerQueryLatency is the simulated round-trip time of one web request.
	// It advances only the simulated clock; the caller never blocks.
	PerQueryLatency time.Duration
	// RealLatency, when positive, makes every query actually block the
	// calling goroutine for that long, outside the admission lock — the
	// provider serves concurrent requests concurrently, each paying one
	// round-trip. This is what a walker fleet overlaps: k in-flight queries
	// cost one RealLatency of wall-clock, not k, while a sequential walker
	// pays them end to end. Leave 0 for pure simulated-time experiments.
	RealLatency time.Duration
}

// FacebookLimits mirrors the paper's cited Facebook quota: 600 open-graph
// queries per 600 seconds.
func FacebookLimits() Config {
	return Config{QueriesPerWindow: 600, Window: 600 * time.Second, PerQueryLatency: 50 * time.Millisecond}
}

// TwitterLimits mirrors the paper's cited Twitter quota: 350 requests/hour.
func TwitterLimits() Config {
	return Config{QueriesPerWindow: 350, Window: time.Hour, PerQueryLatency: 50 * time.Millisecond}
}

// Service owns a social graph and serves individual-user queries under the
// configured limits, advancing a simulated clock: when the current window's
// quota is exhausted the next query "sleeps" (jumps the clock) to the next
// window, exactly like a polite third-party crawler.
//
// Service is safe for concurrent use: the simulated clock and rate-limit
// window are mutex-guarded, so a fleet of walkers sharing one API quota sees
// the same serialized admission a real provider would enforce.
type Service struct {
	g     *graph.Graph
	attrs *Attributes
	cfg   Config

	mu           sync.Mutex
	now          time.Duration
	windowStart  time.Duration
	usedInWindow int

	totalQueries int64
	totalWaits   int64
}

// NewService creates a service over g with optional attributes (may be nil
// for purely topological datasets, like the paper's local snapshots).
func NewService(g *graph.Graph, attrs *Attributes, cfg Config) *Service {
	return &Service{g: g, attrs: attrs, cfg: cfg}
}

// NumUsers exposes the total user count. The paper notes providers publish
// this for advertising purposes; Random Jump needs it for its ID space.
func (s *Service) NumUsers() int { return s.g.NumNodes() }

// Query serves q(v), charging simulated latency and honoring the rate limit.
func (s *Service) Query(v graph.NodeID) (Response, error) {
	//rewirelint:allow ctxflow context-less convenience shim; ctx-aware callers use QueryContext
	return s.QueryContext(context.Background(), v)
}

// QueryContext serves q(v) like Query, but the RealLatency round-trip wait is
// interruptible: when ctx is cancelled or its deadline expires mid-sleep, the
// call returns ctx's error immediately instead of blocking out the full
// round-trip. Admission (the simulated clock and rate-limit window) has
// already happened by then — exactly like aborting an HTTP request after it
// was sent: the provider-side quota is spent, but no response is obtained, so
// the Client bills nothing for it.
func (s *Service) QueryContext(ctx context.Context, v graph.NodeID) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if v < 0 || int(v) >= s.g.NumNodes() {
		return Response{}, fmt.Errorf("%w: id %d", ErrNoSuchUser, v)
	}
	s.admitOne()
	if s.cfg.RealLatency > 0 {
		t := time.NewTimer(s.cfg.RealLatency)
		select {
		case <-ctx.Done():
			t.Stop()
			return Response{}, ctx.Err()
		case <-t.C:
		}
	}
	resp := Response{User: v, Neighbors: s.g.Neighbors(v)}
	if s.attrs != nil {
		resp.Attrs = s.attrs.Of(v)
	}
	return resp, nil
}

// Fetch implements Backend over the simulated provider: each id is served as
// one individual-user query in input order, so a batch of m ids spends m
// units of the rate-limit quota exactly as m separate queries would. The
// first failure aborts the batch (see the Backend contract).
func (s *Service) Fetch(ctx context.Context, ids []graph.NodeID) ([]Response, error) {
	out := make([]Response, len(ids))
	for i, v := range ids {
		resp, err := s.QueryContext(ctx, v)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// admitOne advances the simulated clock through latency and, if needed, a
// rate-limit wait.
func (s *Service) admitOne() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.QueriesPerWindow > 0 {
		if s.now-s.windowStart >= s.cfg.Window {
			// Window expired naturally.
			s.windowStart = s.now
			s.usedInWindow = 0
		}
		if s.usedInWindow >= s.cfg.QueriesPerWindow {
			// Sleep until the window resets.
			s.now = s.windowStart + s.cfg.Window
			s.windowStart = s.now
			s.usedInWindow = 0
			s.totalWaits++
		}
		s.usedInWindow++
	}
	s.now += s.cfg.PerQueryLatency
	s.totalQueries++
}

// TotalQueries returns the number of queries served (including duplicates —
// the Client is what deduplicates).
func (s *Service) TotalQueries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalQueries
}

// RateLimitWaits returns how many times a caller had to sit out a window.
func (s *Service) RateLimitWaits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalWaits
}

// SimulatedElapsed returns the simulated wall-clock time consumed so far.
func (s *Service) SimulatedElapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}
