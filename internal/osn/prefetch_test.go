package osn

import (
	"sync"
	"testing"
	"time"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/rng"
)

func prefetchGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Social(gen.SocialConfig{Nodes: 300, TargetEdges: 1200}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPrefetchInvisibleUntilDemanded checks the billing barrier: a
// speculative fetch reaches the service but stays out of the unique-query
// ledger and out of every free-knowledge accessor until a demand query
// consumes it — at which point it is billed exactly once.
func TestPrefetchInvisibleUntilDemanded(t *testing.T) {
	g := prefetchGraph(t)
	svc := NewService(g, nil, Config{})
	client := NewPrefetchingClient(svc, PrefetchConfig{Workers: 4})
	defer client.StopPrefetch()

	if n := client.Prefetch(0, 1, 2); n != 3 {
		t.Fatalf("Prefetch accepted %d hints, want 3", n)
	}
	waitFor(t, func() bool { return client.SpeculativeCount() == 3 })

	if got := client.UniqueQueries(); got != 0 {
		t.Errorf("UniqueQueries = %d before any demand, want 0", got)
	}
	for _, v := range []graph.NodeID{0, 1, 2} {
		if client.Cached(v) {
			t.Errorf("Cached(%d) = true for a speculative entry", v)
		}
		if _, ok := client.CachedDegree(v); ok {
			t.Errorf("CachedDegree(%d) visible for a speculative entry", v)
		}
		if !client.Known(v) {
			t.Errorf("Known(%d) = false after prefetch completed", v)
		}
	}
	if got := svc.TotalQueries(); got != 3 {
		t.Errorf("service TotalQueries = %d, want 3 speculative round-trips", got)
	}

	// Demanding a prefetched node bills it once and upgrades it.
	if _, err := client.Query(1); err != nil {
		t.Fatal(err)
	}
	if got := client.UniqueQueries(); got != 1 {
		t.Errorf("UniqueQueries = %d after one demand, want 1", got)
	}
	if !client.Cached(1) {
		t.Error("Cached(1) = false after demand upgraded the entry")
	}
	if got := client.SpeculativeCount(); got != 2 {
		t.Errorf("SpeculativeCount = %d, want 2", got)
	}
	// Re-demanding is free, and the service saw no extra round-trip.
	if _, err := client.Query(1); err != nil {
		t.Fatal(err)
	}
	if got, want := client.UniqueQueries(), int64(1); got != want {
		t.Errorf("UniqueQueries = %d after re-demand, want %d", got, want)
	}
	if got := svc.TotalQueries(); got != 3 {
		t.Errorf("service TotalQueries = %d, want 3 (no extra round-trip)", got)
	}
}

// TestUnusedPrefetchNeverBilled is the cancelled-prefetch half of the budget
// invariant: hints the walk never demands cost zero unique queries, no
// matter when the pool is stopped.
func TestUnusedPrefetchNeverBilled(t *testing.T) {
	g := prefetchGraph(t)
	svc := NewService(g, nil, Config{})
	client := NewPrefetchingClient(svc, PrefetchConfig{Workers: 4})

	ids := make([]graph.NodeID, 50)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	client.Prefetch(ids...)
	client.StopPrefetch() // cancels pending hints, waits out in-flight ones

	if got := client.UniqueQueries(); got != 0 {
		t.Errorf("UniqueQueries = %d with zero demand queries, want 0", got)
	}
	if unused := client.SpeculativeCount(); unused != int64(client.CacheSize()) {
		t.Errorf("SpeculativeCount = %d, CacheSize = %d — every entry should still be speculative",
			unused, client.CacheSize())
	}
}

// TestPrefetchDepthExpandsFrontier checks recursive lookahead: with Depth 2,
// a single hint grows a speculative neighborhood well beyond the hinted node.
func TestPrefetchDepthExpandsFrontier(t *testing.T) {
	g := prefetchGraph(t)
	svc := NewService(g, nil, Config{})
	client := NewPrefetchingClient(svc, PrefetchConfig{Workers: 8, Depth: 2})
	defer client.StopPrefetch()

	client.Prefetch(0)
	// The frontier of node 0 at depth 2: 0, its neighbors, their neighbors.
	want := map[graph.NodeID]bool{0: true}
	for _, v := range g.Neighbors(0) {
		want[v] = true
		for _, w := range g.Neighbors(v) {
			want[w] = true
		}
	}
	waitFor(t, func() bool { return client.CacheSize() >= len(want) })
	if got := client.UniqueQueries(); got != 0 {
		t.Errorf("UniqueQueries = %d, want 0 (all speculative)", got)
	}
}

// TestPrefetchBudgetCapsRoundTrips checks that Budget strictly bounds the
// number of speculative round-trips.
func TestPrefetchBudgetCapsRoundTrips(t *testing.T) {
	g := prefetchGraph(t)
	svc := NewService(g, nil, Config{})
	client := NewPrefetchingClient(svc, PrefetchConfig{Workers: 8, Depth: 3, Budget: 10})

	ids := make([]graph.NodeID, 40)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	client.Prefetch(ids...)
	client.StopPrefetch()

	if got := svc.TotalQueries(); got > 10 {
		t.Errorf("service saw %d speculative round-trips, budget is 10", got)
	}
}

// TestPrefetchDemandRace hammers demand queries against a deep prefetch
// frontier over the same ID range (run with -race): however the speculative
// and demand fetches interleave, each distinct demanded user is billed
// exactly once and the cache ends consistent.
func TestPrefetchDemandRace(t *testing.T) {
	g := prefetchGraph(t)
	svc := NewService(g, nil, Config{RealLatency: 50 * time.Microsecond})
	client := NewPrefetchingClient(svc, PrefetchConfig{Workers: 16, Depth: 2, Queue: 4096})
	defer client.StopPrefetch()

	const workers = 8
	const queriesPerWorker = 300
	var mu sync.Mutex
	demanded := make(map[graph.NodeID]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < queriesPerWorker; i++ {
				v := graph.NodeID(r.Intn(g.NumNodes()))
				// Interleave hint styles: bare hints, single demands, and
				// batched demands all race for the same users.
				switch i % 3 {
				case 0:
					client.Prefetch(v)
					fallthrough
				case 1:
					if _, err := client.Query(v); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					demanded[v] = true
					mu.Unlock()
				default:
					u := graph.NodeID(r.Intn(g.NumNodes()))
					if _, err := client.QueryBatch([]graph.NodeID{v, u}); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					demanded[v] = true
					demanded[u] = true
					mu.Unlock()
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	if got, want := client.UniqueQueries(), int64(len(demanded)); got != want {
		t.Errorf("UniqueQueries = %d, want %d distinct demanded users", got, want)
	}
	for v := range demanded {
		if !client.Cached(v) {
			t.Errorf("demanded user %d not demand-cached", v)
		}
	}
}

// TestQueryBatchOverlapsAndBillsOnce checks the batch path: order preserved,
// cold misses overlapped, each id billed once even across repeat batches.
func TestQueryBatchOverlapsAndBillsOnce(t *testing.T) {
	g := prefetchGraph(t)
	const latency = 2 * time.Millisecond
	svc := NewService(g, nil, Config{RealLatency: latency})
	client := NewClient(svc)

	ids := []graph.NodeID{5, 9, 5, 23, 42, 9}
	t0 := time.Now()
	resps, err := client.QueryBatch(ids)
	wall := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ids {
		if resps[i].User != v {
			t.Errorf("resps[%d].User = %d, want %d", i, resps[i].User, v)
		}
	}
	if got, want := client.UniqueQueries(), int64(4); got != want {
		t.Errorf("UniqueQueries = %d, want %d", got, want)
	}
	// 4 cold misses overlapped should cost far less than 4 serial trips.
	if wall >= 4*latency {
		t.Errorf("batch wall-clock %v, want < %v (misses must overlap)", wall, 4*latency)
	}
	// A second batch over the same ids is free.
	if _, err := client.QueryBatch(ids); err != nil {
		t.Fatal(err)
	}
	if got, want := client.UniqueQueries(), int64(4); got != want {
		t.Errorf("UniqueQueries = %d after repeat batch, want %d", got, want)
	}
}

// waitFor polls cond until it holds or a generous deadline expires — pool
// workers run asynchronously, so completion tests need a rendezvous.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(time.Millisecond)
	}
}
