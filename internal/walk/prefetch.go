package walk

import (
	"rewire/internal/graph"
)

// PrefetchSource is a Source whose local cache can be warmed asynchronously:
// Prefetch enqueues non-blocking speculative fetch hints (a bet, never an
// obligation — implementations may drop hints freely), and Known reports
// whether a hint for v would be redundant because v is already cached or in
// flight. osn.Client implements it when its prefetch pool is running, and
// core.Overlay forwards it to its base.
type PrefetchSource interface {
	Source
	// Prefetch enqueues speculative fetches for ids and returns how many
	// hints were accepted. It must never block on a provider round-trip.
	Prefetch(ids ...graph.NodeID) int
	// Known reports whether v is already cached or in flight.
	Known(v graph.NodeID) bool
}

// CachedSource exposes free reads of already-paid-for topology — the same
// "historical information without query cost" the Theorem 5 criterion uses.
// Prefetch strategies use it to look at the walk frontier without spending
// queries. osn.Client implements it.
type CachedSource interface {
	// CachedNeighbors returns v's neighbor list if demand-cached (shared
	// slice, do not modify), without issuing a query.
	CachedNeighbors(v graph.NodeID) ([]graph.NodeID, bool)
	// CachedDegree returns v's degree if demand-cached, without a query.
	CachedDegree(v graph.NodeID) (int, bool)
}

// Prefetcher decides which speculative queries to issue as a walk advances.
// Implementations are per-walker, single-goroutine state: a fleet builds one
// strategy instance per member (see Fleet.Prefetched). Since speculative
// responses stay invisible to the cost ledger until demanded, no strategy
// can change a walk's trajectory or unique-query bill — only its wall-clock.
type Prefetcher interface {
	// Landed is called after each Step with the node the walker stepped from
	// and the node it landed on. It may issue non-blocking prefetch hints.
	Landed(from, to graph.NodeID)
}

// NoPrefetch is the null strategy: never hint anything. It is the explicit
// baseline row in the prefetch-scaling experiment.
type NoPrefetch struct{}

// Landed does nothing.
func (NoPrefetch) Landed(from, to graph.NodeID) {}

// NextHop is depth-1 lookahead: hint the node the walk just landed on, whose
// neighbor list the very next Step must demand. On its own this overlaps
// only the time between steps; combined with a recursive pool depth
// (osn.PrefetchConfig.Depth) the pool keeps expanding ahead of the walk.
type NextHop struct {
	src PrefetchSource
}

// NewNextHop builds the strategy over src.
func NewNextHop(src PrefetchSource) *NextHop { return &NextHop{src: src} }

// Landed hints the landing node.
func (p *NextHop) Landed(from, to graph.NodeID) { p.src.Prefetch(to) }

// Frontier is the frontier-top-k strategy: besides the landing node, it
// hints up to K cold frontier nodes ranked by cache-visible degree — the
// number of already-demanded neighbor lists a cold node appears in. Under an
// SRW that count is proportional to the probability mass flowing into the
// node from explored territory, so high scorers are the cold nodes the walk
// is most likely to demand soon. Social-graph clustering is what makes this
// pay: a node hinted from u's list is typically reached several steps later,
// by which time its round-trip has already completed.
type Frontier struct {
	src    PrefetchSource
	cached CachedSource // nil degrades the strategy to NextHop behavior
	k      int
	// scanned marks nodes whose demanded neighbor list was already folded
	// into the scores, so each list is counted once.
	scanned map[graph.NodeID]struct{}
	// score is the cache-visible degree of cold frontier nodes. Entries are
	// pruned once the node stops being cold.
	score map[graph.NodeID]int
}

// NewFrontier builds the strategy over src with frontier width k (values
// < 1 are raised to 1). Ranking needs free topology reads, so src should
// also implement CachedSource (osn.Client does); without it the strategy
// degrades to next-hop hints.
func NewFrontier(src PrefetchSource, k int) *Frontier {
	if k < 1 {
		k = 1
	}
	cached, _ := src.(CachedSource)
	return &Frontier{
		src:     src,
		cached:  cached,
		k:       k,
		scanned: make(map[graph.NodeID]struct{}),
		score:   make(map[graph.NodeID]int),
	}
}

// frontierCapPerK bounds the score map at frontierCapPerK·k entries, so one
// Landed call costs O(cap) regardless of how much territory the walk has
// seen. Ranking a speculative hint heuristic does not justify unbounded
// state or a per-step sort.
const frontierCapPerK = 64

// Landed folds the newly demanded neighbor lists into the frontier scores,
// then hints the landing node plus the top-k cold frontier nodes.
func (p *Frontier) Landed(from, to graph.NodeID) {
	p.scan(from)
	p.scan(to)
	p.src.Prefetch(to)
	if len(p.score) == 0 {
		return
	}
	// One pass over the (bounded) score map: prune entries that are no
	// longer cold, and keep the k best by linear top-k insertion — k is
	// small, so this is O(|score|·k) with no allocation-heavy sort.
	best := make([]graph.NodeID, 0, p.k)
	for v := range p.score {
		if p.src.Known(v) {
			delete(p.score, v)
			continue
		}
		best = insertTopK(best, p.k, v, p.score)
	}
	p.src.Prefetch(best...)
	for _, v := range best {
		delete(p.score, v) // hinted: in flight now, no longer cold
	}
	// Keep the map bounded: past the cap, shed the weakest entries (score
	// 1, the overwhelming majority in a heavy-tailed graph). Their lists
	// were already scanned, so a shed node only returns via a fresh list —
	// an acceptable loss of hint quality for bounded per-step cost.
	if limit := frontierCapPerK * p.k; len(p.score) > limit {
		for v, s := range p.score {
			if s <= 1 {
				delete(p.score, v)
			}
			if len(p.score) <= limit {
				break
			}
		}
	}
}

// insertTopK inserts v into best (descending score, ties by ascending id),
// keeping at most k entries.
func insertTopK(best []graph.NodeID, k int, v graph.NodeID, score map[graph.NodeID]int) []graph.NodeID {
	i := len(best)
	for i > 0 {
		u := best[i-1]
		if score[u] > score[v] || (score[u] == score[v] && u < v) {
			break
		}
		i--
	}
	if i >= k {
		return best
	}
	if len(best) < k {
		best = append(best, 0)
	}
	copy(best[i+1:], best[i:])
	best[i] = v
	return best
}

// scan folds v's demanded neighbor list into the frontier scores (once).
func (p *Frontier) scan(v graph.NodeID) {
	if p.cached == nil {
		return
	}
	if _, done := p.scanned[v]; done {
		return
	}
	nbrs, ok := p.cached.CachedNeighbors(v)
	if !ok {
		return
	}
	p.scanned[v] = struct{}{}
	for _, w := range nbrs {
		if !p.src.Known(w) {
			p.score[w]++
		}
	}
}

// Prefetched wraps a Walker so that every Step issues prefetch hints through
// a strategy. The wrapper forwards StationaryWeight to the inner walker when
// it is a Weighter (weight 1 otherwise, matching Fleet's default), so
// wrapping never changes estimation.
type Prefetched struct {
	inner    Walker
	strategy Prefetcher
}

// WithPrefetch wraps w with strategy p.
func WithPrefetch(w Walker, p Prefetcher) *Prefetched {
	return &Prefetched{inner: w, strategy: p}
}

// Current returns the inner walker's position.
func (w *Prefetched) Current() graph.NodeID { return w.inner.Current() }

// Step advances the inner walker, then lets the strategy hint.
func (w *Prefetched) Step() graph.NodeID {
	from := w.inner.Current()
	to := w.inner.Step()
	w.strategy.Landed(from, to)
	return to
}

// StationaryWeight delegates to the inner walker when it is a Weighter.
func (w *Prefetched) StationaryWeight(v graph.NodeID) float64 {
	if ww, ok := w.inner.(Weighter); ok {
		return ww.StationaryWeight(v)
	}
	return 1
}

// Err delegates to the inner walker when it reports failures.
func (w *Prefetched) Err() error {
	if f, ok := w.inner.(Failing); ok {
		return f.Err()
	}
	return nil
}

// Inner returns the wrapped walker — the one carrying the chain state.
func (w *Prefetched) Inner() Walker { return w.inner }

// SetCurrent forwards to the inner walker's StateCarrier capability (a no-op
// when the inner walker does not carry restorable state).
func (w *Prefetched) SetCurrent(v graph.NodeID) {
	if sc, ok := w.inner.(StateCarrier); ok {
		sc.SetCurrent(v)
	}
}

// RandState forwards to the inner walker's StateCarrier capability.
func (w *Prefetched) RandState() [4]uint64 {
	if sc, ok := w.inner.(StateCarrier); ok {
		return sc.RandState()
	}
	return [4]uint64{}
}

// SetRandState forwards to the inner walker's StateCarrier capability.
func (w *Prefetched) SetRandState(s [4]uint64) {
	if sc, ok := w.inner.(StateCarrier); ok {
		sc.SetRandState(s)
	}
}

// Prefetched returns a new Fleet whose members issue prefetch hints through
// strategies built by mk — one instance per member, because strategies are
// single-goroutine state. The members themselves are shared with the
// receiver, so use either fleet, not both.
func (f *Fleet) Prefetched(mk func() Prefetcher) *Fleet {
	wrapped := make([]Walker, len(f.members))
	for i, m := range f.members {
		wrapped[i] = WithPrefetch(m, mk())
	}
	return NewFleet(wrapped...)
}

var (
	_ Walker     = (*Prefetched)(nil)
	_ Weighter   = (*Prefetched)(nil)
	_ Prefetcher = NoPrefetch{}
	_ Prefetcher = (*NextHop)(nil)
	_ Prefetcher = (*Frontier)(nil)
)
