package walk

import (
	"math"
	"testing"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/stats"
)

// empiricalDistribution runs the walker and tallies visit frequencies.
func empiricalDistribution(w Walker, n int, numNodes int) []float64 {
	h := stats.NewCountHistogram(numNodes)
	for i := 0; i < n; i++ {
		h.Observe(int(w.Step()))
	}
	return h.Distribution()
}

func degreeDistribution(g *graph.Graph) []float64 {
	out := make([]float64, g.NumNodes())
	twoM := float64(2 * g.NumEdges())
	for u := range out {
		out[u] = float64(g.Degree(graph.NodeID(u))) / twoM
	}
	return out
}

func uniformDistribution(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(n)
	}
	return out
}

func TestSimpleStationaryIsDegreeProportional(t *testing.T) {
	g := gen.Lollipop(6, 4) // mixed degrees
	w := NewSimple(g, 0, rng.New(1))
	emp := empiricalDistribution(w, 400000, g.NumNodes())
	want := degreeDistribution(g)
	if tv, err := stats.TotalVariation(emp, want); err != nil || tv > 0.02 {
		t.Errorf("SRW TV distance from degree-proportional = %v", tv)
	}
}

func TestMHRWStationaryIsUniform(t *testing.T) {
	g := gen.Lollipop(6, 4)
	w := NewMetropolisHastings(g, 0, rng.New(2))
	emp := empiricalDistribution(w, 400000, g.NumNodes())
	if tv, err := stats.TotalVariation(emp, uniformDistribution(g.NumNodes())); err != nil || tv > 0.02 {
		t.Errorf("MHRW TV distance from uniform = %v", tv)
	}
}

func TestRandomJumpStationaryIsUniform(t *testing.T) {
	g := gen.Barbell(6)
	w := NewRandomJump(g, 0, g.NumNodes(), 0.5, rng.New(3))
	emp := empiricalDistribution(w, 400000, g.NumNodes())
	if tv, err := stats.TotalVariation(emp, uniformDistribution(g.NumNodes())); err != nil || tv > 0.02 {
		t.Errorf("RJ TV distance from uniform = %v", tv)
	}
}

func TestRandomJumpEscapesBarbell(t *testing.T) {
	// SRW crosses the barbell bridge rarely; RJ teleports freely. Count
	// side switches in a fixed number of steps.
	g := gen.Barbell(11)
	countSwitches := func(w Walker) int {
		side := func(v graph.NodeID) int {
			if v < 11 {
				return 0
			}
			return 1
		}
		prev := side(w.Current())
		switches := 0
		for i := 0; i < 20000; i++ {
			s := side(w.Step())
			if s != prev {
				switches++
			}
			prev = s
		}
		return switches
	}
	srw := countSwitches(NewSimple(g, 0, rng.New(4)))
	rj := countSwitches(NewRandomJump(g, 0, g.NumNodes(), 0.5, rng.New(4)))
	if rj < 10*srw {
		t.Errorf("RJ switches %d vs SRW %d: teleports should dominate", rj, srw)
	}
}

func TestWalkersHandleIsolatedStart(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 1, V: 2}}) // node 0 isolated
	if got := NewSimple(g, 0, rng.New(5)).Step(); got != 0 {
		t.Errorf("SRW left isolated node: %d", got)
	}
	if got := NewMetropolisHastings(g, 0, rng.New(5)).Step(); got != 0 {
		t.Errorf("MHRW left isolated node: %d", got)
	}
}

func TestStationaryWeights(t *testing.T) {
	g := gen.Star(5)
	srw := NewSimple(g, 0, rng.New(6))
	if srw.StationaryWeight(0) != 4 || srw.StationaryWeight(1) != 1 {
		t.Error("SRW weights should equal degree")
	}
	mh := NewMetropolisHastings(g, 0, rng.New(6))
	if mh.StationaryWeight(0) != 1 || mh.StationaryWeight(3) != 1 {
		t.Error("MHRW weights should be constant")
	}
}

func TestQueryCostAccounting(t *testing.T) {
	g := gen.Barbell(8)
	svc := osn.NewService(g, nil, osn.Config{})
	c := osn.NewClient(svc)
	w := NewSimple(c, 0, rng.New(7))
	Run(w, 500)
	// Unique cost can't exceed steps+1 or the node count.
	cost := c.UniqueQueries()
	if cost > 501 || cost > int64(g.NumNodes()) {
		t.Errorf("cost = %d out of bounds", cost)
	}
	// The walk visited both cliques by then; cost should be substantial.
	if cost < 8 {
		t.Errorf("cost = %d suspiciously small", cost)
	}
}

func TestMHRWCostsProposalQueries(t *testing.T) {
	// MHRW pays for rejected proposals too: on a star, the hub keeps
	// proposing leaves (deg 1 -> always accepted), but leaves proposing the
	// hub accept w.p. 1/(n-1); either way each new proposal is a query.
	g := gen.Star(50)
	svc := osn.NewService(g, nil, osn.Config{})
	c := osn.NewClient(svc)
	w := NewMetropolisHastings(c, 1, rng.New(8))
	for i := 0; i < 4000; i++ {
		w.Step()
	}
	// Hub acceptance from a leaf is 1/49, so ~4000/49 hub visits, each
	// moving to a fresh leaf (a new query).
	if c.UniqueQueries() < 20 {
		t.Errorf("MHRW unique cost = %d, expected many proposal queries", c.UniqueQueries())
	}
}

func TestRunLength(t *testing.T) {
	g := gen.Cycle(9)
	trace := Run(NewSimple(g, 0, rng.New(9)), 123)
	if len(trace) != 123 {
		t.Fatalf("trace length = %d", len(trace))
	}
	// Consecutive positions on a cycle differ by ±1 mod 9.
	prev := graph.NodeID(0)
	for _, v := range trace {
		d := int(math.Abs(float64(v - prev)))
		if d != 1 && d != 8 {
			t.Fatalf("illegal cycle transition %d -> %d", prev, v)
		}
		prev = v
	}
}

func TestDeterministicWalks(t *testing.T) {
	g := gen.EpinionsLikeSmall(1)
	a := Run(NewSimple(g, 0, rng.New(42)), 1000)
	b := Run(NewSimple(g, 0, rng.New(42)), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walks diverged at step %d", i)
		}
	}
}
