package walk

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"

	"rewire/internal/graph"
	"rewire/internal/rng"
)

// Sample is one node drawn by a fleet member, tagged with its provenance so
// downstream estimators can attribute, stratify, or de-bias per walker.
type Sample struct {
	// Walker is the index of the member that drew the sample.
	Walker int
	// Node is the walk position after the step.
	Node graph.NodeID
	// Weight is the member's stationary weight at Node (1 for members that
	// do not implement Weighter, i.e. uniform-target walkers).
	Weight float64
}

// Fleet runs k walkers on k goroutines against a shared Source, merging
// their sample streams through a channel. Where Parallel interleaves its
// members round-robin on the caller's goroutine, Fleet is truly concurrent:
// each member advances on its own goroutine, and the members race to drain
// a shared sample budget — the "many random walks are faster than one"
// scheme (Alon et al.) executed the way the follow-up OSN-sampling work
// (Nazi et al.; Zhou et al.) argues it should be, with every walker sharing
// the discovered topology and the query budget of the common source.
//
// Each member's own state (position, RNG, rewiring bookkeeping) must be
// confined to one goroutine — Fleet guarantees that by never stepping a
// member from two goroutines. Anything the members share must be safe for
// concurrent use: osn.Client, osn.Service, and core.Overlay all are.
type Fleet struct {
	members []Walker
	// quiesced requests a step-boundary stop of the active run: members
	// finish (and deliver) their in-flight step, then retire before claiming
	// another sample. Unlike context cancellation — which can abort a member
	// mid-step, after its RNG stream advanced but before the sample was
	// emitted — a quiesced stop leaves every member's chain state exactly
	// consistent with the samples delivered, which is what makes a
	// checkpoint taken afterwards resume byte-identically. Reset at the
	// start of every run.
	quiesced atomic.Bool
}

// NewFleet wraps the given walkers (at least one; an empty fleet panics —
// a programmer error the public SDK's option validation rules out before
// construction).
func NewFleet(members ...Walker) *Fleet {
	if len(members) == 0 {
		panic("walk: NewFleet needs at least one walker")
	}
	return &Fleet{members: members}
}

// NewFleetSimple builds k SRW members over src with distinct starts and
// split RNG streams. src must be safe for concurrent use.
func NewFleetSimple(src Source, starts []graph.NodeID, r *rng.Rand) *Fleet {
	members := make([]Walker, len(starts))
	for i, s := range starts {
		members[i] = NewSimple(src, s, r.Split())
	}
	return NewFleet(members...)
}

// Members returns a copy of the member list; mutating it cannot reorder or
// drop the fleet's walkers. (The Walker values themselves are shared — they
// ARE the fleet's live state.)
func (f *Fleet) Members() []Walker { return slices.Clone(f.members) }

// Stream launches one goroutine per member and returns a channel carrying
// their merged samples, plus a stop function. The members race for a shared
// budget of total samples; the channel is closed once the budget is drained
// and every goroutine has exited. Arrival order is nondeterministic — that
// is the point — but each member's own subsequence is a faithful walk
// trajectory.
//
// A caller that stops consuming before the channel closes MUST call stop
// (idempotent, safe after normal completion too) — otherwise the walker
// goroutines would block forever on their next send. After stop, drain any
// buffered samples by ranging until the channel closes, or just drop the
// channel; the goroutines exit either way.
func (f *Fleet) Stream(total int) (samples <-chan Sample, stop func()) {
	//rewirelint:allow ctxflow context-less convenience shim; ctx-aware callers use StreamContext
	return f.StreamContext(context.Background(), total)
}

// StreamContext is Stream bound to a context: when ctx is cancelled or its
// deadline expires, every member goroutine retires promptly — mid-claim,
// mid-send, and (when the shared source is context-aware, e.g. a Bound over
// an osn.Client) mid-round-trip — and the channel closes after the last one
// exits. A member whose walker reports a sticky failure (the Failing
// capability: cancellation surfaced by the source, budget exhaustion)
// retires without emitting the poisoned sample.
func (f *Fleet) StreamContext(ctx context.Context, total int) (samples <-chan Sample, stop func()) {
	var claimed int64
	return f.launch(ctx, func(int) bool {
		return atomic.AddInt64(&claimed, 1) <= int64(total)
	})
}

// StreamPartitioned is Stream with the budget split up front instead of
// raced for: member i draws exactly total/k samples (the first total%k
// members draw one more). Each member's trajectory then depends only on its
// own RNG stream, not on goroutine scheduling, so a partitioned run is
// reproducible sample-for-sample — which is what the prefetch benchmarks
// lean on to demonstrate identical unique-query counts with and without
// speculation. The racing Stream stays the default: it finishes as soon as
// the fastest members have drained the budget, while partitioning waits for
// the slowest member's fixed quota.
func (f *Fleet) StreamPartitioned(total int) (samples <-chan Sample, stop func()) {
	//rewirelint:allow ctxflow context-less convenience shim; ctx-aware callers use StreamPartitionedContext
	return f.StreamPartitionedContext(context.Background(), total)
}

// StreamPartitionedContext is StreamPartitioned bound to a context, with the
// same cancellation semantics as StreamContext.
func (f *Fleet) StreamPartitionedContext(ctx context.Context, total int) (samples <-chan Sample, stop func()) {
	quotas := make([]int64, len(f.members))
	share := int64(total) / int64(len(f.members))
	extra := total % len(f.members)
	for i := range quotas {
		quotas[i] = share
		if i < extra {
			quotas[i]++
		}
	}
	// quotas[id] is touched only by member id's goroutine: no atomics needed.
	return f.launch(ctx, func(id int) bool {
		if quotas[id] <= 0 {
			return false
		}
		quotas[id]--
		return true
	})
}

// Quiesce asks the active run to stop at the next step boundary: every
// member finishes and delivers its in-flight step, then retires instead of
// claiming another sample. The stream closes (without error) once the last
// member exits. Between runs it is a no-op — each run resets the flag.
func (f *Fleet) Quiesce() { f.quiesced.Store(true) }

// launch starts one goroutine per member; claim(id) grants member id its
// next sample (claims are never returned, even on early stop or quiesce).
func (f *Fleet) launch(ctx context.Context, claim func(id int) bool) (samples <-chan Sample, stop func()) {
	f.quiesced.Store(false)
	out := make(chan Sample, len(f.members))
	quit := make(chan struct{})
	var quitOnce sync.Once
	stop = func() { quitOnce.Do(func() { close(quit) }) }
	done := ctx.Done()
	var wg sync.WaitGroup
	for i, m := range f.members {
		wg.Add(1)
		go func(id int, w Walker) {
			defer wg.Done()
			weighter, _ := w.(Weighter)
			failing, _ := w.(Failing)
			for !f.quiesced.Load() && claim(id) {
				select {
				case <-quit:
					return
				case <-done:
					return
				default:
				}
				v := w.Step()
				if failing != nil && failing.Err() != nil {
					// The step's query path failed (cancelled round-trip,
					// exhausted budget): v is a stale position, not a sample.
					return
				}
				s := Sample{Walker: id, Node: v, Weight: 1}
				if weighter != nil {
					s.Weight = weighter.StationaryWeight(v)
				}
				select {
				case out <- s:
				case <-quit:
					return
				case <-done:
					return
				}
			}
		}(i, m)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, stop
}

// Samples drains Stream(total) into a slice, in arrival order.
func (f *Fleet) Samples(total int) []Sample {
	stream, stop := f.Stream(total)
	return drain(stream, stop, total)
}

// SamplesPartitioned drains StreamPartitioned(total) into a slice.
func (f *Fleet) SamplesPartitioned(total int) []Sample {
	stream, stop := f.StreamPartitioned(total)
	return drain(stream, stop, total)
}

func drain(stream <-chan Sample, stop func(), total int) []Sample {
	defer stop()
	out := make([]Sample, 0, total)
	for s := range stream {
		out = append(out, s)
	}
	return out
}

// PerWalker tallies how many of the given samples each of k walkers drew.
func PerWalker(samples []Sample, k int) []int {
	counts := make([]int, k)
	for _, s := range samples {
		if s.Walker >= 0 && s.Walker < k {
			counts[s.Walker]++
		}
	}
	return counts
}
