package walk

import (
	"slices"

	"rewire/internal/graph"
	"rewire/internal/rng"
)

// Parallel interleaves k independent walkers round-robin, implementing the
// "many random walks are faster than one" scheme (Alon et al. [4]) the
// paper's related-work section points at: MTO applies to each member walk
// unchanged, and when the members share one caching client they also share
// the query budget and the discovered topology.
//
// Parallel itself satisfies Walker: each Step advances the next member and
// returns its position, so k consecutive Steps advance every member once.
// It satisfies Weighter when every member does, delegating to the member
// that produced the most recent sample.
type Parallel struct {
	members []Walker
	next    int
	stepped bool
}

// NewParallel wraps the given walkers (at least one; an empty ensemble
// panics — a programmer error, as in NewFleet).
func NewParallel(members ...Walker) *Parallel {
	if len(members) == 0 {
		panic("walk: NewParallel needs at least one walker")
	}
	return &Parallel{members: members}
}

// NewParallelSimple builds k SRW members over src with distinct starts and
// split RNG streams.
func NewParallelSimple(src Source, starts []graph.NodeID, r *rng.Rand) *Parallel {
	members := make([]Walker, len(starts))
	for i, s := range starts {
		members[i] = NewSimple(src, s, r.Split())
	}
	return NewParallel(members...)
}

// Members returns a copy of the member list; mutating it cannot reorder or
// drop the wrapped walkers. (The Walker values themselves are shared — they
// ARE the walk's live state.)
func (p *Parallel) Members() []Walker { return slices.Clone(p.members) }

// lastStepped returns the index of the member that produced the most recent
// sample (member 0 before any step). p.next points at the member that steps
// next, so the last stepper is one behind it — modulo the wrap: after
// exactly k steps p.next is 0 again, and the last stepper is member k-1,
// not member 0.
func (p *Parallel) lastStepped() int {
	if !p.stepped {
		return 0
	}
	last := p.next - 1
	if last < 0 {
		last = len(p.members) - 1
	}
	return last
}

// Current returns the position of the member that last stepped (the first
// member before any step).
func (p *Parallel) Current() graph.NodeID {
	return p.members[p.lastStepped()].Current()
}

// Step advances the next member round-robin.
func (p *Parallel) Step() graph.NodeID {
	v := p.members[p.next].Step()
	p.next = (p.next + 1) % len(p.members)
	p.stepped = true
	return v
}

// StationaryWeight delegates to the member that produced the most recent
// sample; members that do not implement Weighter weigh 1 (uniform target).
func (p *Parallel) StationaryWeight(v graph.NodeID) float64 {
	if w, ok := p.members[p.lastStepped()].(Weighter); ok {
		return w.StationaryWeight(v)
	}
	return 1
}

var (
	_ Walker   = (*Parallel)(nil)
	_ Weighter = (*Parallel)(nil)
)
