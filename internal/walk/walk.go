// Package walk implements the random-walk samplers the paper compares:
// Simple Random Walk (SRW, the baseline, Definition 1), Metropolis–Hastings
// Random Walk (MHRW, uniform target), and Random Jump (RJ, MHRW with uniform
// restarts). The MTO-Sampler itself lives in internal/core and plugs into
// the same Walker interface.
//
// Walkers see the network only through a Source — either a *graph.Graph
// (free local access, for ground-truth computations) or an *osn.Client
// (the restrictive web interface with unique-query cost accounting).
package walk

import (
	"rewire/internal/graph"
	"rewire/internal/rng"
)

// Source is a read-only neighborhood oracle. *graph.Graph and *osn.Client
// both satisfy it.
type Source interface {
	// Neighbors returns v's neighbor list (shared slice, do not modify).
	Neighbors(v graph.NodeID) []graph.NodeID
	// Degree returns len(Neighbors(v)).
	Degree(v graph.NodeID) int
}

// Walker advances a Markov chain over nodes.
type Walker interface {
	// Current returns the node the walk is at.
	Current() graph.NodeID
	// Step advances one transition and returns the new current node.
	Step() graph.NodeID
}

// Weighter exposes a quantity proportional to the walker's stationary
// probability at v, used by importance-sampling estimators to unbias
// aggregates. (SRW: degree; MHRW/RJ: constant; MTO: overlay degree.)
type Weighter interface {
	// StationaryWeight returns a value proportional to π(v). It may issue
	// queries when the walker needs topology it has not seen.
	StationaryWeight(v graph.NodeID) float64
}

// StateCarrier is the optional Walker capability of exposing its complete
// per-member chain state — position plus RNG stream — for checkpointing.
// A walker restored with SetCurrent + SetRandState continues the exact
// sample sequence the original would have produced, which is what makes a
// paused-then-resumed session trajectory byte-identical to an uninterrupted
// one. All walkers in this repository implement it; wrappers (Prefetched)
// forward it to the walker they wrap.
type StateCarrier interface {
	Walker
	// SetCurrent repositions the walker. Call it only between runs.
	SetCurrent(v graph.NodeID)
	// RandState captures the walker's RNG stream state.
	RandState() [4]uint64
	// SetRandState restores a stream captured with RandState.
	SetRandState(s [4]uint64)
}

// Simple is the paper's baseline SRW: from u, move to a uniformly random
// neighbor. Its stationary distribution is π(v) = deg(v)/2|E| on the
// component of the start node. A node with no neighbors is absorbing (the
// walk stays put), which cannot happen on connected inputs.
type Simple struct {
	src Source
	cur graph.NodeID
	rng *rng.Rand
}

// NewSimple starts an SRW at start.
func NewSimple(src Source, start graph.NodeID, r *rng.Rand) *Simple {
	return &Simple{src: src, cur: start, rng: r}
}

// Current returns the walk position.
func (w *Simple) Current() graph.NodeID { return w.cur }

// Step moves to a uniform random neighbor.
func (w *Simple) Step() graph.NodeID {
	nbrs := w.src.Neighbors(w.cur)
	if len(nbrs) > 0 {
		w.cur = rng.Choice(w.rng, nbrs)
	}
	return w.cur
}

// StationaryWeight is deg(v).
func (w *Simple) StationaryWeight(v graph.NodeID) float64 {
	return float64(w.src.Degree(v))
}

// Err reports the source's sticky failure, if the source tracks one.
func (w *Simple) Err() error { return sourceErr(w.src) }

// SetCurrent repositions the walk (between runs only).
func (w *Simple) SetCurrent(v graph.NodeID) { w.cur = v }

// RandState captures the walker's RNG stream.
func (w *Simple) RandState() [4]uint64 { return w.rng.State() }

// SetRandState restores a stream captured with RandState.
func (w *Simple) SetRandState(s [4]uint64) { w.rng.SetState(s) }

// MetropolisHastings is the MHRW sampler with a uniform target
// distribution: propose a uniform neighbor v of u, accept with probability
// min(1, deg(u)/deg(v)), else stay. Every proposal costs a query for v's
// degree — the reason the paper (citing [10], [14]) finds MHRW 1.5–8×
// slower than SRW in practice.
type MetropolisHastings struct {
	src Source
	cur graph.NodeID
	rng *rng.Rand
}

// NewMetropolisHastings starts an MHRW at start.
func NewMetropolisHastings(src Source, start graph.NodeID, r *rng.Rand) *MetropolisHastings {
	return &MetropolisHastings{src: src, cur: start, rng: r}
}

// Current returns the walk position.
func (w *MetropolisHastings) Current() graph.NodeID { return w.cur }

// Step performs one propose/accept round.
func (w *MetropolisHastings) Step() graph.NodeID {
	nbrs := w.src.Neighbors(w.cur)
	if len(nbrs) == 0 {
		return w.cur
	}
	v := rng.Choice(w.rng, nbrs)
	ku := len(nbrs)
	kv := w.src.Degree(v) // costs a query on first contact
	if kv == 0 {
		// v is a neighbor of the current node, so its true degree is >= 1:
		// a zero can only mean the degree read failed (cancellation, budget
		// exhaustion on a failure-tracking source). Hold position rather
		// than commit an always-accept transition on garbage.
		return w.cur
	}
	if kv <= ku || w.rng.Float64() < float64(ku)/float64(kv) {
		w.cur = v
	}
	return w.cur
}

// StationaryWeight is constant: MHRW targets the uniform distribution.
func (w *MetropolisHastings) StationaryWeight(graph.NodeID) float64 { return 1 }

// Err reports the source's sticky failure, if the source tracks one.
func (w *MetropolisHastings) Err() error { return sourceErr(w.src) }

// SetCurrent repositions the walk (between runs only).
func (w *MetropolisHastings) SetCurrent(v graph.NodeID) { w.cur = v }

// RandState captures the walker's RNG stream.
func (w *MetropolisHastings) RandState() [4]uint64 { return w.rng.State() }

// SetRandState restores a stream captured with RandState.
func (w *MetropolisHastings) SetRandState(s [4]uint64) { w.rng.SetState(s) }

// RandomJump wraps MHRW with uniform restarts: with probability PJump the
// walk teleports to a uniformly random user ID (requiring the global ID
// space, which the paper notes is not available on every network), otherwise
// it performs an MHRW step. Uniform is stationary for both components, so
// the chain still targets the uniform distribution. The paper's experiments
// use PJump = 0.5.
type RandomJump struct {
	mh       *MetropolisHastings
	numUsers int
	pJump    float64
	rng      *rng.Rand
}

// NewRandomJump starts an RJ walker at start over an ID space of numUsers.
func NewRandomJump(src Source, start graph.NodeID, numUsers int, pJump float64, r *rng.Rand) *RandomJump {
	return &RandomJump{
		mh:       NewMetropolisHastings(src, start, r),
		numUsers: numUsers,
		pJump:    pJump,
		rng:      r,
	}
}

// Current returns the walk position.
func (w *RandomJump) Current() graph.NodeID { return w.mh.cur }

// Step jumps or performs an MHRW step.
func (w *RandomJump) Step() graph.NodeID {
	if w.rng.Bernoulli(w.pJump) {
		w.mh.cur = graph.NodeID(w.rng.Intn(w.numUsers))
		// Touch the landing node so the jump is charged like any other
		// individual-user query.
		w.mh.src.Neighbors(w.mh.cur)
		return w.mh.cur
	}
	return w.mh.Step()
}

// StationaryWeight is constant: RJ targets the uniform distribution.
func (w *RandomJump) StationaryWeight(graph.NodeID) float64 { return 1 }

// Err reports the source's sticky failure, if the source tracks one.
func (w *RandomJump) Err() error { return w.mh.Err() }

// SetCurrent repositions the walk (between runs only).
func (w *RandomJump) SetCurrent(v graph.NodeID) { w.mh.cur = v }

// RandState captures the walker's RNG stream (shared with the embedded MHRW
// chain, so one state covers both the jump coin and the proposal draws).
func (w *RandomJump) RandState() [4]uint64 { return w.rng.State() }

// SetRandState restores a stream captured with RandState.
func (w *RandomJump) SetRandState(s [4]uint64) { w.rng.SetState(s) }

// Interface conformance checks.
var (
	_ StateCarrier = (*Simple)(nil)
	_ StateCarrier = (*MetropolisHastings)(nil)
	_ StateCarrier = (*RandomJump)(nil)
)

// Run advances w by n steps and returns the visited nodes (one entry per
// step, excluding the start).
func Run(w Walker, n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = w.Step()
	}
	return out
}
