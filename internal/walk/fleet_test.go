package walk

import (
	"testing"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/stats"
)

func TestFleetDrawsExactBudgetWithProvenance(t *testing.T) {
	g := gen.Cycle(12)
	f := NewFleetSimple(g, []graph.NodeID{0, 3, 6, 9}, rng.New(1))
	const total = 1000
	samples := f.Samples(total)
	if len(samples) != total {
		t.Fatalf("drew %d samples, want %d", len(samples), total)
	}
	counts := PerWalker(samples, len(f.Members()))
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != total {
		t.Errorf("per-walker counts sum to %d, want %d", sum, total)
	}
	for _, s := range samples {
		if s.Walker < 0 || s.Walker >= len(f.Members()) {
			t.Fatalf("out-of-range walker index %d", s.Walker)
		}
		// On a cycle every node has degree 2, so every SRW sample must carry
		// stationary weight 2 regardless of interleaving.
		if s.Weight != 2 {
			t.Errorf("sample weight %v, want 2 on a cycle", s.Weight)
		}
	}
}

func TestFleetSharesQueryBudget(t *testing.T) {
	g := gen.Barbell(8)
	svc := osn.NewService(g, nil, osn.Config{})
	client := osn.NewClient(svc)
	// Two members starting in the two different cliques share the cache, so
	// the fleet's whole cost stays bounded by the node count — the same
	// shared-budget property TestParallelSharesQueryBudget checks for the
	// sequential interleaving, now under real concurrency (run with -race).
	f := NewFleetSimple(client, []graph.NodeID{0, 8}, rng.New(3))
	f.Samples(2000)
	if client.UniqueQueries() > int64(g.NumNodes()) {
		t.Errorf("cost %d exceeds node count", client.UniqueQueries())
	}
	if client.UniqueQueries() < 10 {
		t.Errorf("cost %d too small for two-clique coverage", client.UniqueQueries())
	}
}

func TestFleetStationaryStillDegreeProportional(t *testing.T) {
	g := gen.Lollipop(6, 4)
	starts := []graph.NodeID{0, 3, 7, 9}
	f := NewFleetSimple(g, starts, rng.New(2))
	h := stats.NewCountHistogram(g.NumNodes())
	stream, stop := f.Stream(400000)
	defer stop()
	for s := range stream {
		h.Observe(int(s.Node))
	}
	want := make([]float64, g.NumNodes())
	for u := range want {
		want[u] = float64(g.Degree(graph.NodeID(u)))
	}
	if tv, err := stats.TotalVariation(h.Distribution(), want); err != nil || tv > 0.02 {
		t.Errorf("fleet SRW TV distance = %v", tv)
	}
}

func TestFleetStreamStopEarly(t *testing.T) {
	g := gen.Cycle(12)
	f := NewFleetSimple(g, []graph.NodeID{0, 3, 6, 9}, rng.New(8))
	// A budget that would take forever to drain: stop() must shut the
	// stream down anyway (the range below terminates only if every walker
	// goroutine exits and the channel closes).
	stream, stop := f.Stream(1 << 30)
	got := 0
	for range stream {
		got++
		if got == 100 {
			stop()
		}
	}
	if got < 100 {
		t.Fatalf("drew %d samples before the stream closed, want >= 100", got)
	}
	stop() // idempotent after close
}

func TestFleetPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFleet()
}
