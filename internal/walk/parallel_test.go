package walk

import (
	"math"
	"testing"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/stats"
)

func TestParallelRoundRobin(t *testing.T) {
	g := gen.Cycle(12)
	p := NewParallelSimple(g, []graph.NodeID{0, 6}, rng.New(1))
	if len(p.Members()) != 2 {
		t.Fatalf("members = %d", len(p.Members()))
	}
	// Steps alternate between walkers started at 0 and 6; on a cycle each
	// stays within ±i of its origin after i of its own steps.
	first := p.Step()  // member 0
	second := p.Step() // member 1
	d0 := cycleDist(first, 0, 12)
	d1 := cycleDist(second, 6, 12)
	if d0 != 1 || d1 != 1 {
		t.Errorf("first steps landed at %d,%d", first, second)
	}
}

func cycleDist(a, b graph.NodeID, n int) int {
	d := int(math.Abs(float64(a - b)))
	if n-d < d {
		d = n - d
	}
	return d
}

func TestParallelStationaryStillDegreeProportional(t *testing.T) {
	g := gen.Lollipop(6, 4)
	starts := []graph.NodeID{0, 3, 7, 9}
	p := NewParallelSimple(g, starts, rng.New(2))
	h := stats.NewCountHistogram(g.NumNodes())
	for i := 0; i < 400000; i++ {
		h.Observe(int(p.Step()))
	}
	want := make([]float64, g.NumNodes())
	for u := range want {
		want[u] = float64(g.Degree(graph.NodeID(u)))
	}
	if tv, err := stats.TotalVariation(h.Distribution(), want); err != nil || tv > 0.02 {
		t.Errorf("parallel SRW TV distance = %v", tv)
	}
}

func TestParallelSharesQueryBudget(t *testing.T) {
	g := gen.Barbell(8)
	svc := osn.NewService(g, nil, osn.Config{})
	client := osn.NewClient(svc)
	// Two members starting in the two different cliques share the cache.
	p := NewParallelSimple(client, []graph.NodeID{0, 8}, rng.New(3))
	Run(p, 2000)
	if client.UniqueQueries() > int64(g.NumNodes()) {
		t.Errorf("cost %d exceeds node count", client.UniqueQueries())
	}
	// Both cliques were explored: cost well above a single clique's size.
	if client.UniqueQueries() < 10 {
		t.Errorf("cost %d too small for two-clique coverage", client.UniqueQueries())
	}
}

func TestParallelWeighterDelegation(t *testing.T) {
	g := gen.Star(6)
	p := NewParallelSimple(g, []graph.NodeID{1, 2}, rng.New(4))
	v := p.Step()
	if got, want := p.StationaryWeight(v), float64(g.Degree(v)); got != want {
		t.Errorf("weight = %v, want %v", got, want)
	}
	if p.Current() != v {
		t.Errorf("Current = %d, want %d", p.Current(), v)
	}
}

func TestParallelCurrentAfterWrap(t *testing.T) {
	g := gen.Cycle(12)
	starts := []graph.NodeID{0, 4, 8}
	p := NewParallelSimple(g, starts, rng.New(5))
	k := len(starts)
	if got := p.Current(); got != starts[0] {
		t.Fatalf("Current before any step = %d, want member 0's start %d", got, starts[0])
	}
	// Exactly k steps: the internal index wraps back to 0, but the member
	// that last stepped is k-1 — Current must report it, not member 0.
	var last graph.NodeID
	for i := 0; i < k; i++ {
		last = p.Step()
	}
	if got := p.Current(); got != last {
		t.Errorf("Current after %d steps = %d, want last returned %d", k, got, last)
	}
	if got, want := p.Current(), p.Members()[k-1].Current(); got != want {
		t.Errorf("Current after wrap = %d, want member %d's position %d", got, k-1, want)
	}
	// k+1 steps: member 0 stepped again and is the latest.
	last = p.Step()
	if got := p.Current(); got != last {
		t.Errorf("Current after %d steps = %d, want last returned %d", k+1, got, last)
	}
	if got, want := p.Current(), p.Members()[0].Current(); got != want {
		t.Errorf("Current after k+1 steps = %d, want member 0's position %d", got, want)
	}
}

func TestParallelPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewParallel()
}

func TestParallelMixesFasterOnBarbell(t *testing.T) {
	// The point of parallel walks: members starting on both sides cover the
	// barbell far faster than a single walk that must cross the bridge.
	g := gen.Barbell(11)
	coverSteps := func(w Walker) int {
		seen := make(map[graph.NodeID]bool)
		for i := 1; i <= 300000; i++ {
			seen[w.Step()] = true
			if len(seen) == g.NumNodes() {
				return i
			}
		}
		return 300001
	}
	var single, both int
	for seed := uint64(1); seed <= 30; seed++ {
		single += coverSteps(NewSimple(g, 0, rng.New(seed)))
		both += coverSteps(NewParallelSimple(g, []graph.NodeID{0, 11}, rng.New(seed)))
	}
	if both >= single {
		t.Errorf("mean parallel coverage %d not faster than single %d (30 seeds)", both/30, single/30)
	}
}
