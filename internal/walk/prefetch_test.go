package walk

import (
	"testing"
	"time"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
)

func prefetchTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.Social(gen.SocialConfig{Nodes: 400, TargetEdges: 1600}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// trajectories groups a sample stream into per-walker node sequences.
func trajectories(samples []Sample, k int) [][]graph.NodeID {
	out := make([][]graph.NodeID, k)
	for _, s := range samples {
		out[s.Walker] = append(out[s.Walker], s.Node)
	}
	return out
}

// runPartitionedFleet runs a k-member SRW fleet over a fresh client and
// returns the drawn samples plus the client and service for inspection.
// mk == nil runs without prefetch wrapping.
func runPartitionedFleet(t testing.TB, g *graph.Graph, k, total int, seed uint64,
	pf osn.PrefetchConfig, mk func(src PrefetchSource) Prefetcher) ([]Sample, *osn.Client, *osn.Service) {
	t.Helper()
	svc := osn.NewService(g, nil, osn.Config{RealLatency: 20 * time.Microsecond})
	var client *osn.Client
	if mk != nil {
		client = osn.NewPrefetchingClient(svc, pf)
	} else {
		client = osn.NewClient(svc)
	}
	r := rng.New(seed)
	starts := make([]graph.NodeID, k)
	for i := range starts {
		starts[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	fleet := NewFleetSimple(client, starts, rng.New(seed+1))
	if mk != nil {
		fleet = fleet.Prefetched(func() Prefetcher { return mk(client) })
	}
	samples := fleet.SamplesPartitioned(total)
	client.StopPrefetch()
	return samples, client, svc
}

// TestPartitionedFleetDeterministic checks that a partitioned-budget fleet
// is reproducible run to run: same seeds, same per-member trajectories, same
// unique-query bill — the property the prefetch invariants build on.
func TestPartitionedFleetDeterministic(t *testing.T) {
	g := prefetchTestGraph(t)
	const k, total = 4, 2000
	s1, c1, _ := runPartitionedFleet(t, g, k, total, 7, osn.PrefetchConfig{}, nil)
	s2, c2, _ := runPartitionedFleet(t, g, k, total, 7, osn.PrefetchConfig{}, nil)
	if len(s1) != total || len(s2) != total {
		t.Fatalf("drew %d and %d samples, want %d", len(s1), len(s2), total)
	}
	t1, t2 := trajectories(s1, k), trajectories(s2, k)
	for i := range t1 {
		if len(t1[i]) != len(t2[i]) {
			t.Fatalf("member %d drew %d then %d samples", i, len(t1[i]), len(t2[i]))
		}
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				t.Fatalf("member %d diverged at step %d: %d vs %d", i, j, t1[i][j], t2[i][j])
			}
		}
	}
	if c1.UniqueQueries() != c2.UniqueQueries() {
		t.Errorf("unique queries differ across identical runs: %d vs %d",
			c1.UniqueQueries(), c2.UniqueQueries())
	}
}

// TestPrefetchBudgetInvariant is the tentpole's accounting guarantee, run
// with -race: a prefetching fleet draws the exact same trajectories, the
// exact same number of samples, and the exact same unique-query bill as the
// same fleet without prefetching — while the service records that real
// speculation happened. A speculative hit never double-bills; an unused
// prefetch is never billed at all.
func TestPrefetchBudgetInvariant(t *testing.T) {
	g := prefetchTestGraph(t)
	const k, total = 8, 4000
	plain, cPlain, svcPlain := runPartitionedFleet(t, g, k, total, 11, osn.PrefetchConfig{}, nil)
	pf := osn.PrefetchConfig{Workers: 16, Depth: 2, Queue: 4096}
	spec, cSpec, svcSpec := runPartitionedFleet(t, g, k, total, 11, pf,
		func(src PrefetchSource) Prefetcher { return NewFrontier(src, 8) })

	if len(plain) != total || len(spec) != total {
		t.Fatalf("sample budget violated: %d and %d drawn, want %d — speculation must not consume samples",
			len(plain), len(spec), total)
	}
	tp, ts := trajectories(plain, k), trajectories(spec, k)
	for i := range tp {
		if len(tp[i]) != len(ts[i]) {
			t.Fatalf("member %d drew %d plain vs %d prefetched samples", i, len(tp[i]), len(ts[i]))
		}
		for j := range tp[i] {
			if tp[i][j] != ts[i][j] {
				t.Fatalf("member %d trajectory diverged at step %d: %d vs %d — prefetch must be invisible",
					i, j, tp[i][j], ts[i][j])
			}
		}
	}
	if cPlain.UniqueQueries() != cSpec.UniqueQueries() {
		t.Errorf("UniqueQueries differ: %d without prefetch, %d with — billing must be identical",
			cPlain.UniqueQueries(), cSpec.UniqueQueries())
	}
	if svcSpec.TotalQueries() <= svcPlain.TotalQueries() {
		t.Errorf("service saw %d round-trips with prefetch vs %d without — expected real speculation",
			svcSpec.TotalQueries(), svcPlain.TotalQueries())
	}
	stats := cSpec.PrefetchStats()
	if stats.Fetched == 0 {
		t.Error("prefetch pool fetched nothing — the invariant test proved nothing")
	}
}

// TestPrefetchedWrapperDelegatesWeight checks the wrapper preserves the
// Weighter contract: SRW weighs by degree through the wrapper, and a
// non-Weighter inner walker weighs 1.
func TestPrefetchedWrapperDelegatesWeight(t *testing.T) {
	g := prefetchTestGraph(t)
	w := NewSimple(g, 0, rng.New(1))
	v := w.Step()
	wrapped := WithPrefetch(w, NoPrefetch{})
	if got, want := wrapped.StationaryWeight(v), float64(g.Degree(v)); got != want {
		t.Errorf("wrapped SRW StationaryWeight(%d) = %v, want %v", v, got, want)
	}
	if got := wrapped.Current(); got != w.Current() {
		t.Errorf("wrapped Current = %d, inner Current = %d", got, w.Current())
	}
}

// TestFrontierWithoutPoolIsHarmless checks strategies stay no-ops over a
// client with no running pool: hints are refused, nothing is fetched, the
// walk is unaffected.
func TestFrontierWithoutPoolIsHarmless(t *testing.T) {
	g := prefetchTestGraph(t)
	svc := osn.NewService(g, nil, osn.Config{})
	client := osn.NewClient(svc)
	w := WithPrefetch(NewSimple(client, 0, rng.New(1)), NewFrontier(client, 8))
	for i := 0; i < 50; i++ {
		w.Step()
	}
	if got := client.SpeculativeCount(); got != 0 {
		t.Errorf("SpeculativeCount = %d without a pool, want 0", got)
	}
	if got, want := client.UniqueQueries(), int64(client.CacheSize()); got != want {
		t.Errorf("UniqueQueries = %d, CacheSize = %d — all entries should be demanded", got, want)
	}
}
