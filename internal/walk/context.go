package walk

import (
	"context"
	"sync"

	"rewire/internal/graph"
)

// ContextSource is a Source whose round-trips can be bound to a context, so
// cancellation and deadlines abort in-flight provider queries instead of
// blocking out their latency. osn.Client implements it; plain graphs are
// adapted by AsContextSource.
type ContextSource interface {
	Source
	// NeighborsContext returns v's neighbor list (shared slice, do not
	// modify), honoring ctx for any round-trip the read requires. Unlike
	// Neighbors, failures are returned, not swallowed.
	NeighborsContext(ctx context.Context, v graph.NodeID) ([]graph.NodeID, error)
}

// AsContextSource adapts any Source to a ContextSource. Sources that already
// implement the interface are returned unchanged; others get a trivial
// adapter whose NeighborsContext checks ctx before the (local, non-blocking)
// read — right for in-memory graphs, whose reads never wait on a provider.
func AsContextSource(src Source) ContextSource {
	if cs, ok := src.(ContextSource); ok {
		return cs
	}
	return plainContextSource{src}
}

type plainContextSource struct{ Source }

func (p plainContextSource) NeighborsContext(ctx context.Context, v graph.NodeID) ([]graph.NodeID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.Source.Neighbors(v), nil
}

// Failing is the optional walker/source capability the fleet uses to detect
// that a member's query path has failed (cancellation, deadline, budget
// exhaustion): a non-nil Err means further stepping is pointless. Bound
// implements it for sources; samplers delegate to their source.
type Failing interface {
	Err() error
}

// sourceErr returns src's sticky error when src can report one.
func sourceErr(src Source) error {
	if f, ok := src.(Failing); ok {
		return f.Err()
	}
	return nil
}

// Bound adapts a ContextSource to the plain Source interface under a
// switchable context, so existing walkers — whose Step has no context
// parameter — become cancellable without changing the Walker interface: a
// session binds the context once per run, every query the walkers issue
// through the Bound honors it, and the first failure is latched for the run
// and reported through Err.
//
// On a failed read, Neighbors returns nil — walkers treat that as an
// absorbing position and stay put, which is safe — and the fleet notices the
// latched error (via Failing) and retires the walker without emitting the
// poisoned sample.
//
// Bound forwards the optional capabilities of its inner source (prefetch
// hints, free cached-topology reads) with inert fallbacks when the inner
// source lacks them, so a sampler built over a Bound behaves exactly as one
// built over the inner source directly.
//
// Bound is safe for concurrent use by a fleet; Bind must not be called while
// a run is in flight (the session serializes runs).
type Bound struct {
	src    ContextSource
	pf     PrefetchSource
	cached CachedSource
	nc     interface {
		Cached(v graph.NodeID) bool
	}

	mu  sync.Mutex
	ctx context.Context
	err error
}

// NewBound wraps src (adapted via AsContextSource) bound to the background
// context.
func NewBound(src Source) *Bound {
	cs := AsContextSource(src)
	//rewirelint:allow ctxflow Background is the documented initial state; Bind installs the caller's ctx
	b := &Bound{src: cs, ctx: context.Background()}
	b.pf, _ = src.(PrefetchSource)
	b.cached, _ = src.(CachedSource)
	b.nc, _ = src.(interface {
		Cached(v graph.NodeID) bool
	})
	return b
}

// Bind installs ctx as the context for subsequent queries and clears the
// latched error. Call it only between runs, never while walkers are
// stepping.
func (b *Bound) Bind(ctx context.Context) {
	if ctx == nil {
		//rewirelint:allow ctxflow nil means unbound; Background restores the documented initial state
		ctx = context.Background()
	}
	b.mu.Lock()
	b.ctx = ctx
	b.err = nil
	b.mu.Unlock()
}

// Err returns the first query failure since the last Bind (nil if none).
func (b *Bound) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// fail latches the first error of the run.
func (b *Bound) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// context returns the currently bound context.
func (b *Bound) context() context.Context {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ctx
}

// Neighbors returns v's neighbor list under the bound context; on failure it
// latches the error and returns nil.
func (b *Bound) Neighbors(v graph.NodeID) []graph.NodeID {
	nbrs, err := b.src.NeighborsContext(b.context(), v)
	if err != nil {
		b.fail(err)
		return nil
	}
	return nbrs
}

// NeighborsContext delegates to the inner source under the caller's ctx
// (latching failures), so a Bound is itself a ContextSource.
func (b *Bound) NeighborsContext(ctx context.Context, v graph.NodeID) ([]graph.NodeID, error) {
	nbrs, err := b.src.NeighborsContext(ctx, v)
	if err != nil {
		b.fail(err)
	}
	return nbrs, err
}

// Degree returns len(Neighbors(v)) under the bound context (0 on failure).
func (b *Bound) Degree(v graph.NodeID) int { return len(b.Neighbors(v)) }

// Prefetch forwards hints to the inner source's prefetch capability; without
// one every hint is refused.
func (b *Bound) Prefetch(ids ...graph.NodeID) int {
	if b.pf == nil {
		return 0
	}
	return b.pf.Prefetch(ids...)
}

// Known reports whether a prefetch hint for v would be redundant (false when
// the inner source has no prefetch capability).
func (b *Bound) Known(v graph.NodeID) bool {
	if b.pf == nil {
		return false
	}
	return b.pf.Known(v)
}

// Cached reports whether v is demand-cached on the inner source (false when
// it has no cache).
func (b *Bound) Cached(v graph.NodeID) bool {
	if b.nc == nil {
		return false
	}
	return b.nc.Cached(v)
}

// CachedNeighbors forwards the inner source's free topology reads (miss when
// it has none).
func (b *Bound) CachedNeighbors(v graph.NodeID) ([]graph.NodeID, bool) {
	if b.cached == nil {
		return nil, false
	}
	return b.cached.CachedNeighbors(v)
}

// CachedDegree forwards the inner source's free degree reads (miss when it
// has none).
func (b *Bound) CachedDegree(v graph.NodeID) (int, bool) {
	if b.cached == nil {
		return 0, false
	}
	return b.cached.CachedDegree(v)
}

var (
	_ Source        = (*Bound)(nil)
	_ ContextSource = (*Bound)(nil)
	_ Failing       = (*Bound)(nil)
)
