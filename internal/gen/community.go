package gen

import (
	"fmt"
	"math"
	"sort"

	"rewire/internal/graph"
	"rewire/internal/rng"
)

// SocialConfig parameterizes the calibrated "tight community" social-graph
// model used as the stand-in for the paper's SNAP snapshots and Google Plus
// crawl. The model produces the two properties the paper's technique feeds
// on: a heavy-tailed degree distribution, and many small dense pockets in
// which members' degrees are comparable to the pocket size — exactly the
// regime where the Theorem 3 removal criterion (|N(u)∩N(v)| ≳ max(ku,kv)-2)
// fires, and which gives real OSNs their unexpectedly low conductance [18].
type SocialConfig struct {
	Nodes        int     // number of nodes
	TargetEdges  int     // approximate edge count of the output
	Gamma        float64 // power-law exponent of the degree distribution (default 2.3)
	MinDegree    int     // smallest degree (default 3)
	MaxDegree    int     // largest degree (default ~2*sqrt(2m))
	Mixing       float64 // fraction of a gateway node's stubs wired across communities (default 0.4)
	Slack        float64 // community size ≈ Slack * member degree + 2 (default 1.25)
	MinCommunity int     // smallest community size (default 6)
	// GatewayFraction is the fraction of each community's members that
	// carry inter-community edges (default 0.2). Everyone else keeps all
	// their connections inside the pocket, which is what makes real OSN
	// communities the deep random-walk traps of [18]: a walk escapes only
	// through the few gateways.
	GatewayFraction float64
	// SuperClusters splits the communities into this many loosely-coupled
	// macro regions (default 2; 1 disables). Gateways wire within their
	// region; only BridgeFraction of the edge budget crosses regions. This
	// reproduces the global sparse cuts behind the "mixing time much larger
	// than anticipated" finding of [18] that motivates the paper.
	SuperClusters int
	// BridgeFraction is the fraction of TargetEdges crossing super-cluster
	// boundaries (default 0.004).
	BridgeFraction float64
}

func (c SocialConfig) withDefaults() SocialConfig {
	if c.Gamma == 0 {
		c.Gamma = 2.3
	}
	if c.MinDegree == 0 {
		c.MinDegree = 3
	}
	if c.MaxDegree == 0 {
		c.MaxDegree = int(2 * math.Sqrt(float64(2*c.TargetEdges)))
		if c.MaxDegree >= c.Nodes {
			c.MaxDegree = c.Nodes - 1
		}
	}
	if c.Mixing == 0 {
		c.Mixing = 0.4
	}
	if c.Slack == 0 {
		c.Slack = 1.25
	}
	if c.MinCommunity == 0 {
		c.MinCommunity = 6
	}
	if c.GatewayFraction == 0 {
		c.GatewayFraction = 0.2
	}
	if c.SuperClusters == 0 {
		c.SuperClusters = 2
	}
	if c.BridgeFraction == 0 {
		c.BridgeFraction = 0.004
	}
	return c
}

// PowerLawDegrees draws a degree sequence with tail exponent gamma whose sum
// is 2*m (so it is realizable as m edges): continuous Pareto quantiles are
// scaled by a factor found with binary search, clamped to [kmin, kmax], and
// the sum parity is fixed up on a random node.
func PowerLawDegrees(n, m int, gamma float64, kmin, kmax int, r *rng.Rand) []int {
	if n <= 0 {
		return nil
	}
	if kmin < 1 {
		kmin = 1
	}
	if kmax < kmin {
		kmax = kmin
	}
	base := make([]float64, n)
	for i := range base {
		u := r.Float64()
		// Pareto quantile with minimum 1: (1-u)^(-1/(gamma-1)).
		base[i] = math.Pow(1-u, -1/(gamma-1))
	}
	degsFor := func(alpha float64) ([]int, int) {
		ks := make([]int, n)
		sum := 0
		for i, w := range base {
			k := int(math.Round(alpha * w))
			if k < kmin {
				k = kmin
			}
			if k > kmax {
				k = kmax
			}
			ks[i] = k
			sum += k
		}
		return ks, sum
	}
	target := 2 * m
	lo, hi := 1e-3, float64(kmax)
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		_, sum := degsFor(mid)
		if sum < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	ks, sum := degsFor(hi)
	// Nudge random nodes to close the residual gap (clamping makes an exact
	// hit by scaling alone impossible in general).
	for sum != target {
		i := r.Intn(n)
		switch {
		case sum < target && ks[i] < kmax:
			ks[i]++
			sum++
		case sum > target && ks[i] > kmin:
			ks[i]--
			sum--
		}
	}
	return ks
}

// Social generates a graph from cfg. The construction:
//
//  1. draw a power-law degree sequence summing to 2*TargetEdges;
//  2. sort nodes by degree and chunk them into communities sized
//     ≈ Slack*degree+2, so low-degree nodes land in pockets they can almost
//     fill (near-cliques) while hubs overflow into the global stage;
//  3. wire ⌈(1-Mixing)·k⌉ of each node's stubs inside its community and the
//     rest across communities, both by randomized stub matching with
//     duplicate rejection;
//  4. connect leftover components to the giant with one edge each.
//
// The result has NumNodes() == cfg.Nodes and an edge count within a few
// percent of cfg.TargetEdges (exact counts are reported by the harness).
func Social(cfg SocialConfig, r *rng.Rand) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < cfg.MinCommunity {
		return nil, fmt.Errorf("gen: Social needs at least %d nodes", cfg.MinCommunity)
	}
	maxEdges := cfg.Nodes * (cfg.Nodes - 1) / 2
	if cfg.TargetEdges < cfg.Nodes || cfg.TargetEdges > maxEdges {
		return nil, fmt.Errorf("gen: TargetEdges %d out of range [%d, %d]", cfg.TargetEdges, cfg.Nodes, maxEdges)
	}
	n := cfg.Nodes
	degs := PowerLawDegrees(n, cfg.TargetEdges, cfg.Gamma, cfg.MinDegree, cfg.MaxDegree, r)

	// Chunk degree-sorted nodes into communities.
	order := r.Perm(n) // random tie-break before the stable degree sort
	sort.SliceStable(order, func(a, b int) bool { return degs[order[a]] < degs[order[b]] })
	var communities [][]graph.NodeID
	for i := 0; i < n; {
		want := int(math.Round(cfg.Slack*float64(degs[order[i]]))) + 2
		if want < cfg.MinCommunity {
			want = cfg.MinCommunity
		}
		if rem := n - i; want > rem || rem-want < cfg.MinCommunity {
			want = rem
		}
		mem := make([]graph.NodeID, want)
		for j := 0; j < want; j++ {
			mem[j] = graph.NodeID(order[i+j])
		}
		communities = append(communities, mem)
		i += want
	}

	b := graph.NewBuilder(n)
	seen := make(map[graph.EdgeKey]struct{}, cfg.TargetEdges)
	addEdge := func(u, v graph.NodeID) bool {
		if u == v {
			return false
		}
		k := graph.KeyOf(u, v)
		if _, ok := seen[k]; ok {
			return false
		}
		seen[k] = struct{}{}
		b.AddEdge(u, v)
		return true
	}

	// Intra-community wiring: randomized stub matching, then a greedy
	// completion pass (random matching alone cannot realize near-cliques —
	// late stubs keep colliding with existing edges). The last (highest
	// degree, by construction order) GatewayFraction of members are the
	// community's gateways: only they reserve stubs for inter-community
	// edges; everyone else aims all connections inside the pocket.
	used := make([]int, n)
	for _, mem := range communities {
		s := len(mem)
		gateways := int(math.Round(cfg.GatewayFraction * float64(s)))
		if gateways < 1 {
			gateways = 1
		}
		targets := make(map[graph.NodeID]int, s)
		var stubs []graph.NodeID
		for idx, u := range mem {
			t := degs[u]
			if idx >= s-gateways {
				t = int(math.Ceil((1 - cfg.Mixing) * float64(degs[u])))
			}
			if t > s-1 {
				t = s - 1
			}
			targets[u] = t
			for j := 0; j < t; j++ {
				stubs = append(stubs, u)
			}
		}
		matched := matchStubs(stubs, addEdge, r, 4)
		for _, u := range matched {
			used[u]++
		}
		// Greedy completion of whatever the random matching left unfilled.
		for i, u := range mem {
			if used[u] >= targets[u] {
				continue
			}
			for j := i + 1; j < s && used[u] < targets[u]; j++ {
				v := mem[j]
				if used[v] >= targets[v] {
					continue
				}
				if addEdge(u, v) {
					used[u]++
					used[v]++
				}
			}
		}
	}

	// Inter-community wiring from the residual stubs, region by region:
	// each community belongs to one super-cluster and its gateways wire
	// within it; a thin bridge budget crosses regions.
	region := make([]int, n)
	for ci, mem := range communities {
		rg := ci % cfg.SuperClusters
		for _, u := range mem {
			region[u] = rg
		}
	}
	pools := make([][]graph.NodeID, cfg.SuperClusters)
	for u := 0; u < n; u++ {
		for j := used[u]; j < degs[u]; j++ {
			pools[region[u]] = append(pools[region[u]], graph.NodeID(u))
		}
	}
	for rg := range pools {
		matched := matchStubs(pools[rg], addEdge, r, 6)
		for _, u := range matched {
			used[u]++
		}
	}
	if cfg.SuperClusters > 1 {
		bridges := int(math.Round(cfg.BridgeFraction * float64(cfg.TargetEdges)))
		if bridges < cfg.SuperClusters-1 {
			bridges = cfg.SuperClusters - 1 // keep regions connectable
		}
		for added, attempts := 0, 200*bridges; added < bridges && attempts > 0; attempts-- {
			ra := r.Intn(cfg.SuperClusters)
			rb := r.Intn(cfg.SuperClusters)
			if ra == rb || len(pools[ra]) == 0 || len(pools[rb]) == 0 {
				continue
			}
			if addEdge(rng.Choice(r, pools[ra]), rng.Choice(r, pools[rb])) {
				added++
			}
		}
	}

	// Top up to the exact edge target with degree-weighted random pairs
	// inside random regions (bounded attempts; an unlucky draw sequence
	// leaves the count a hair short rather than looping forever).
	if deficit := cfg.TargetEdges - len(seen); deficit > 0 {
		for attempts := 60 * deficit; attempts > 0 && len(seen) < cfg.TargetEdges; attempts-- {
			pool := pools[r.Intn(cfg.SuperClusters)]
			if len(pool) < 2 {
				continue
			}
			addEdge(rng.Choice(r, pool), rng.Choice(r, pool))
		}
	}

	return Connect(b.Build(), r), nil
}

// matchStubs pairs stubs randomly, calling addEdge for each pair; pairs that
// fail (self-loop or duplicate) are retried in up to `rounds` extra passes.
// It returns the stubs that were successfully matched (one entry per matched
// endpoint).
func matchStubs(stubs []graph.NodeID, addEdge func(u, v graph.NodeID) bool, r *rng.Rand, rounds int) []graph.NodeID {
	var matched []graph.NodeID
	pending := stubs
	for pass := 0; pass <= rounds && len(pending) >= 2; pass++ {
		r.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
		var leftover []graph.NodeID
		for i := 0; i+1 < len(pending); i += 2 {
			u, v := pending[i], pending[i+1]
			if addEdge(u, v) {
				matched = append(matched, u, v)
			} else {
				leftover = append(leftover, u, v)
			}
		}
		if len(pending)%2 == 1 {
			leftover = append(leftover, pending[len(pending)-1])
		}
		if len(leftover) == len(pending) {
			break // no progress; give up
		}
		pending = leftover
	}
	return matched
}
