// Package gen builds the graphs the reproduction runs on: deterministic
// topologies (the paper's barbell running example, cliques, cycles, …),
// classic random models (Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
// planted partition), the latent-space model of the paper's §IV-B, and the
// calibrated "tight community" social model that stands in for the SNAP
// snapshots and the Google Plus crawl (see the Social doc comment in
// community.go for the substitution rationale).
package gen

import "rewire/internal/graph"

// Barbell returns the paper's running example generalized to clique size k:
// two k-cliques joined by a single edge between node 0 and node k. With
// k = 11 this is the 22-node, 111-edge graph of Fig 1, whose conductance is
// 1/(C(11,2)+1) = 1/56 ≈ 0.018.
func Barbell(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for side := 0; side < 2; side++ {
		off := graph.NodeID(side * k)
		for i := graph.NodeID(0); int(i) < k; i++ {
			for j := i + 1; int(j) < k; j++ {
				b.AddEdge(off+i, off+j)
			}
		}
	}
	b.AddEdge(0, graph.NodeID(k))
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := graph.NodeID(0); int(i) < n; i++ {
		for j := i + 1; int(j) < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Cycle returns the n-cycle C_n (n >= 3).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

// Path returns the path graph on n nodes.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

// Star returns the star with one hub (node 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	return b.Build()
}

// Grid returns the rows×cols 2D lattice.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Lollipop returns a k-clique with a path of tail nodes attached — another
// classic low-conductance shape used in rewiring tests.
func Lollipop(k, tail int) *graph.Graph {
	b := graph.NewBuilder(k + tail)
	for i := graph.NodeID(0); int(i) < k; i++ {
		for j := i + 1; int(j) < k; j++ {
			b.AddEdge(i, j)
		}
	}
	prev := graph.NodeID(k - 1)
	for i := 0; i < tail; i++ {
		next := graph.NodeID(k + i)
		b.AddEdge(prev, next)
		prev = next
	}
	return b.Build()
}
