package gen

import (
	"rewire/internal/graph"
	"rewire/internal/rng"
)

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, r *rng.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(p) {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return b.Build()
}

// GNM returns a uniform random graph with exactly m distinct edges (m capped
// at C(n,2)).
func GNM(n, m int, r *rng.Rand) *graph.Graph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	b := graph.NewBuilder(n)
	seen := make(map[graph.EdgeKey]struct{}, m)
	for len(seen) < m {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		k := graph.KeyOf(u, v)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert grows a preferential-attachment graph: it starts from a
// small clique of m+1 seed nodes and attaches every later node to m existing
// nodes chosen proportionally to degree. Produces the heavy-tailed degree
// distributions typical of OSNs.
func BarabasiAlbert(n, m int, r *rng.Rand) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	b := graph.NewBuilder(n)
	// repeated holds each node once per unit of degree: uniform draws from
	// it implement preferential attachment.
	var repeated []graph.NodeID
	for i := graph.NodeID(0); int(i) <= m; i++ {
		for j := i + 1; int(j) <= m; j++ {
			b.AddEdge(i, j)
			repeated = append(repeated, i, j)
		}
	}
	targets := make(map[graph.NodeID]struct{}, m)
	order := make([]graph.NodeID, 0, m)
	for v := m + 1; v < n; v++ {
		for k := range targets {
			delete(targets, k)
		}
		// Record targets in draw order, not map-iteration order: appending
		// to `repeated` in map order would make the remaining growth — and
		// therefore the whole graph — vary run to run for a fixed seed.
		order = order[:0]
		for len(targets) < m {
			t := rng.Choice(r, repeated)
			if _, dup := targets[t]; dup {
				continue
			}
			targets[t] = struct{}{}
			order = append(order, t)
		}
		for _, t := range order {
			b.AddEdge(graph.NodeID(v), t)
			repeated = append(repeated, graph.NodeID(v), t)
		}
	}
	return b.Build()
}

// WattsStrogatz returns a small-world graph: a ring lattice where each node
// connects to its k nearest neighbors (k even), with each edge rewired to a
// random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, r *rng.Rand) *graph.Graph {
	if k%2 != 0 {
		k--
	}
	if k < 2 {
		k = 2
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			j := (i + d) % n
			if r.Bernoulli(beta) {
				// Rewire to a uniform non-self target; duplicates are
				// deduplicated by the builder.
				j = r.Intn(n)
				for j == i {
					j = r.Intn(n)
				}
			}
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return b.Build()
}

// PlantedPartition returns a graph of `parts` equal blocks of size
// `blockSize` with within-block edge probability pIn and cross-block
// probability pOut — the textbook low-conductance family.
func PlantedPartition(parts, blockSize int, pIn, pOut float64, r *rng.Rand) *graph.Graph {
	n := parts * blockSize
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if i/blockSize == j/blockSize {
				p = pIn
			}
			if r.Bernoulli(p) {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return b.Build()
}

// Connect adds the minimum number of edges needed to make g connected (one
// per extra component, each from a random node of that component to a random
// node of the largest component) and returns the connected graph. Random
// models occasionally leave stragglers; the samplers need one component to
// roam.
func Connect(g *graph.Graph, r *rng.Rand) *graph.Graph {
	labels, count := g.ConnectedComponents()
	if count <= 1 {
		return g
	}
	members := make([][]graph.NodeID, count)
	for u, l := range labels {
		members[l] = append(members[l], graph.NodeID(u))
	}
	giant := 0
	for c := range members {
		if len(members[c]) > len(members[giant]) {
			giant = c
		}
	}
	b := graph.NewBuilder(g.NumNodes())
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for c := range members {
		if c == giant {
			continue
		}
		b.AddEdge(rng.Choice(r, members[c]), rng.Choice(r, members[giant]))
	}
	return b.Build()
}
