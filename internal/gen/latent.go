package gen

import (
	"fmt"
	"math"

	"rewire/internal/graph"
	"rewire/internal/rng"
)

// LatentSpaceConfig parameterizes the latent space model of the paper's
// §IV-B (Sarkar–Chakrabarti–Moore): n points are placed uniformly at random
// in a D-dimensional box and nodes i, j are connected with probability
//
//	P(i ~ j | d_ij) = 1 / (1 + e^{Alpha (d_ij - R)}),
//
// the paper's eq. (11). Alpha = +Inf (math.Inf(1)) gives the hard-threshold
// random geometric graph assumed by Theorem 6.
type LatentSpaceConfig struct {
	N       int
	Lengths []float64 // box side lengths; len(Lengths) = D (paper: [4, 5])
	R       float64   // sociability radius (paper: 0.7)
	Alpha   float64   // sharpness; +Inf for the hard threshold
}

// LatentSpace generates the graph and returns it with the node coordinates.
// The pairwise loop is O(n²); the paper's Fig 10 uses n in [50, 100].
func LatentSpace(cfg LatentSpaceConfig, r *rng.Rand) (*graph.Graph, [][]float64, error) {
	if cfg.N < 1 {
		return nil, nil, fmt.Errorf("gen: LatentSpace needs N >= 1, got %d", cfg.N)
	}
	if len(cfg.Lengths) == 0 {
		return nil, nil, fmt.Errorf("gen: LatentSpace needs at least one dimension")
	}
	if cfg.R <= 0 {
		return nil, nil, fmt.Errorf("gen: LatentSpace needs R > 0, got %v", cfg.R)
	}
	points := make([][]float64, cfg.N)
	for i := range points {
		p := make([]float64, len(cfg.Lengths))
		for d, l := range cfg.Lengths {
			p[d] = r.Float64() * l
		}
		points[i] = p
	}
	b := graph.NewBuilder(cfg.N)
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			d := euclid(points[i], points[j])
			if r.Bernoulli(ConnectProbability(d, cfg.R, cfg.Alpha)) {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return b.Build(), points, nil
}

// ConnectProbability evaluates the paper's eq. (11) link function
// 1/(1+e^{alpha(d-r)}); alpha = +Inf degenerates to the indicator d < r.
func ConnectProbability(d, r, alpha float64) float64 {
	if math.IsInf(alpha, 1) {
		if d < r {
			return 1
		}
		return 0
	}
	return 1 / (1 + math.Exp(alpha*(d-r)))
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// PaperLatentConfig returns the exact configuration of the paper's Fig 10
// and §IV-B simulation: D = 2, box [0,4]×[0,5], r = 0.7, hard threshold.
func PaperLatentConfig(n int) LatentSpaceConfig {
	return LatentSpaceConfig{
		N:       n,
		Lengths: []float64{4, 5},
		R:       0.7,
		Alpha:   math.Inf(1),
	}
}
