package gen

import (
	"math"
	"testing"

	"rewire/internal/graph"
	"rewire/internal/rng"
)

func mustValidate(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarbellRunningExample(t *testing.T) {
	g := Barbell(11)
	mustValidate(t, g)
	if g.NumNodes() != 22 {
		t.Errorf("nodes = %d, want 22", g.NumNodes())
	}
	if g.NumEdges() != 111 {
		t.Errorf("edges = %d, want 111 (paper running example)", g.NumEdges())
	}
	// Bridge endpoints have degree 11, everyone else 10.
	for u := graph.NodeID(0); u < 22; u++ {
		want := 10
		if u == 0 || u == 11 {
			want = 11
		}
		if got := g.Degree(u); got != want {
			t.Errorf("degree(%d) = %d, want %d", u, got, want)
		}
	}
	if !g.HasEdge(0, 11) {
		t.Error("missing bridge edge")
	}
}

func TestDeterministicShapes(t *testing.T) {
	cases := []struct {
		name         string
		g            *graph.Graph
		nodes, edges int
	}{
		{"K5", Complete(5), 5, 10},
		{"C7", Cycle(7), 7, 7},
		{"P6", Path(6), 6, 5},
		{"Star9", Star(9), 9, 8},
		{"Grid3x4", Grid(3, 4), 12, 17},
		{"Lollipop5+3", Lollipop(5, 3), 8, 13},
	}
	for _, c := range cases {
		mustValidate(t, c.g)
		if c.g.NumNodes() != c.nodes || c.g.NumEdges() != c.edges {
			t.Errorf("%s: %d nodes %d edges, want %d/%d",
				c.name, c.g.NumNodes(), c.g.NumEdges(), c.nodes, c.edges)
		}
		if !c.g.IsConnected() {
			t.Errorf("%s: not connected", c.name)
		}
	}
}

func TestGNPEdgeCount(t *testing.T) {
	r := rng.New(1)
	g := GNP(100, 0.1, r)
	mustValidate(t, g)
	want := 0.1 * 100 * 99 / 2
	if math.Abs(float64(g.NumEdges())-want) > 4*math.Sqrt(want) {
		t.Errorf("G(100,0.1) edges = %d, want ~%v", g.NumEdges(), want)
	}
}

func TestGNMExactCount(t *testing.T) {
	r := rng.New(2)
	g := GNM(50, 200, r)
	mustValidate(t, g)
	if g.NumEdges() != 200 {
		t.Errorf("GNM edges = %d, want 200", g.NumEdges())
	}
	// Capped at complete graph.
	g2 := GNM(5, 100, r)
	if g2.NumEdges() != 10 {
		t.Errorf("capped GNM edges = %d, want 10", g2.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	r := rng.New(3)
	g := BarabasiAlbert(500, 3, r)
	mustValidate(t, g)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Edges = C(4,2) + 3*(500-4) = 6 + 1488.
	if g.NumEdges() != 1494 {
		t.Errorf("edges = %d, want 1494", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("BA graph should be connected")
	}
	if g.MaxDegree() < 20 {
		t.Errorf("max degree %d suspiciously small for preferential attachment", g.MaxDegree())
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := rng.New(4)
	g := WattsStrogatz(200, 6, 0.1, r)
	mustValidate(t, g)
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Rewiring can deduplicate a few edges; allow slack below 600.
	if g.NumEdges() < 570 || g.NumEdges() > 600 {
		t.Errorf("edges = %d, want ~600", g.NumEdges())
	}
	// beta=0 is the exact ring lattice.
	ring := WattsStrogatz(50, 4, 0, rng.New(5))
	if ring.NumEdges() != 100 {
		t.Errorf("ring lattice edges = %d, want 100", ring.NumEdges())
	}
	for u := graph.NodeID(0); u < 50; u++ {
		if ring.Degree(u) != 4 {
			t.Fatalf("ring degree(%d) = %d, want 4", u, ring.Degree(u))
		}
	}
}

func TestPlantedPartition(t *testing.T) {
	r := rng.New(6)
	g := PlantedPartition(4, 25, 0.4, 0.01, r)
	mustValidate(t, g)
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Count intra vs inter edges.
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if int(e.U)/25 == int(e.V)/25 {
			intra++
		} else {
			inter++
		}
	}
	if intra < 8*inter {
		t.Errorf("intra %d vs inter %d: expected strong community structure", intra, inter)
	}
}

func TestConnect(t *testing.T) {
	r := rng.New(7)
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	c := Connect(g, r)
	if !c.IsConnected() {
		t.Fatal("Connect left graph disconnected")
	}
	// 2 extra components (node 5 isolated, {3,4}) -> exactly 2 added edges.
	if c.NumEdges() != g.NumEdges()+2 {
		t.Errorf("edges = %d, want %d", c.NumEdges(), g.NumEdges()+2)
	}
	// Already connected graphs pass through untouched.
	k := Complete(4)
	if got := Connect(k, r); got != k {
		t.Error("Connect should return connected input unchanged")
	}
}

func TestPowerLawDegrees(t *testing.T) {
	r := rng.New(8)
	n, m := 2000, 8000
	ks := PowerLawDegrees(n, m, 2.3, 3, 200, r)
	if len(ks) != n {
		t.Fatalf("len = %d", len(ks))
	}
	sum := 0
	minK, maxK := ks[0], ks[0]
	for _, k := range ks {
		sum += k
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	if sum != 2*m {
		t.Errorf("degree sum = %d, want %d", sum, 2*m)
	}
	if minK < 3 || maxK > 200 {
		t.Errorf("degrees out of [3,200]: min %d max %d", minK, maxK)
	}
	if maxK < 30 {
		t.Errorf("max degree %d: heavy tail missing", maxK)
	}
}

func TestSocialModel(t *testing.T) {
	r := rng.New(9)
	cfg := SocialConfig{Nodes: 3000, TargetEdges: 12000}
	g, err := Social(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	if g.NumNodes() != 3000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if rel := math.Abs(float64(g.NumEdges())-12000) / 12000; rel > 0.05 {
		t.Errorf("edges = %d, want 12000 ±5%%", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("social graph should be connected after Connect step")
	}
	// The whole point of the model: dense pockets => high clustering.
	cc := g.AverageClustering(1000, rng.New(10))
	if cc < 0.25 {
		t.Errorf("average clustering %v: too low for the MTO regime", cc)
	}
	// Heavy tail sanity.
	if g.MaxDegree() < 40 {
		t.Errorf("max degree %d: tail missing", g.MaxDegree())
	}
}

func TestSocialModelErrors(t *testing.T) {
	r := rng.New(11)
	if _, err := Social(SocialConfig{Nodes: 3, TargetEdges: 3}, r); err == nil {
		t.Error("tiny graph should error")
	}
	if _, err := Social(SocialConfig{Nodes: 100, TargetEdges: 10}, r); err == nil {
		t.Error("too few edges should error")
	}
	if _, err := Social(SocialConfig{Nodes: 100, TargetEdges: 1e6}, r); err == nil {
		t.Error("too many edges should error")
	}
}

func TestSocialDeterministicBySeed(t *testing.T) {
	cfg := SocialConfig{Nodes: 500, TargetEdges: 2000}
	a, err := Social(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Social(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("same seed, edge %v missing in second build", e)
		}
	}
}

func TestLatentSpace(t *testing.T) {
	cfg := PaperLatentConfig(80)
	g, pts, err := LatentSpace(cfg, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	if g.NumNodes() != 80 || len(pts) != 80 {
		t.Fatalf("nodes = %d, points = %d", g.NumNodes(), len(pts))
	}
	// Hard threshold: every edge has distance < r, every non-edge >= r.
	for i := 0; i < 80; i++ {
		for j := i + 1; j < 80; j++ {
			d := euclid(pts[i], pts[j])
			if g.HasEdge(graph.NodeID(i), graph.NodeID(j)) != (d < 0.7) {
				t.Fatalf("edge (%d,%d) inconsistent with distance %v", i, j, d)
			}
		}
	}
	// Points inside the box.
	for _, p := range pts {
		if p[0] < 0 || p[0] > 4 || p[1] < 0 || p[1] > 5 {
			t.Fatalf("point %v outside [0,4]x[0,5]", p)
		}
	}
}

func TestLatentSpaceSoftAlpha(t *testing.T) {
	cfg := LatentSpaceConfig{N: 60, Lengths: []float64{4, 5}, R: 0.7, Alpha: 4}
	g, _, err := LatentSpace(cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	if g.NumEdges() == 0 {
		t.Error("soft latent graph has no edges")
	}
}

func TestConnectProbability(t *testing.T) {
	inf := math.Inf(1)
	if ConnectProbability(0.5, 0.7, inf) != 1 {
		t.Error("d<r with alpha=inf should be 1")
	}
	if ConnectProbability(0.9, 0.7, inf) != 0 {
		t.Error("d>r with alpha=inf should be 0")
	}
	if p := ConnectProbability(0.7, 0.7, 4); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("d=r gives %v, want 0.5", p)
	}
	if ConnectProbability(0.1, 0.7, 4) <= ConnectProbability(1.2, 0.7, 4) {
		t.Error("probability should decrease with distance")
	}
}

func TestLatentSpaceErrors(t *testing.T) {
	r := rng.New(14)
	if _, _, err := LatentSpace(LatentSpaceConfig{N: 0, Lengths: []float64{1}, R: 1}, r); err == nil {
		t.Error("N=0 should error")
	}
	if _, _, err := LatentSpace(LatentSpaceConfig{N: 5, R: 1}, r); err == nil {
		t.Error("no dims should error")
	}
	if _, _, err := LatentSpace(LatentSpaceConfig{N: 5, Lengths: []float64{1}, R: 0}, r); err == nil {
		t.Error("R=0 should error")
	}
}

func TestSmallPresets(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"epinions-small": EpinionsLikeSmall(1),
		"slashdot-small": SlashdotLikeSmall(1),
	} {
		mustValidate(t, g)
		if !g.IsConnected() {
			t.Errorf("%s disconnected", name)
		}
		if g.AverageDegree() < 4 {
			t.Errorf("%s average degree %v too low", name, g.AverageDegree())
		}
	}
}

func TestDirectedTrust(t *testing.T) {
	r := rng.New(15)
	mutual := EpinionsLikeSmall(2)
	d := DirectedTrust(mutual, 5000, r)
	if d.NumArcs() != 2*mutual.NumEdges()+5000 {
		t.Fatalf("arcs = %d, want %d", d.NumArcs(), 2*mutual.NumEdges()+5000)
	}
	// Reciprocal conversion recovers exactly the mutual graph — the paper's
	// §V-A.2 guarantee.
	back := d.Reciprocal()
	if back.NumEdges() != mutual.NumEdges() {
		t.Fatalf("reciprocal edges = %d, want %d", back.NumEdges(), mutual.NumEdges())
	}
	for _, e := range mutual.Edges() {
		if !back.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestLocalClustering(t *testing.T) {
	k := Complete(5)
	if got := k.LocalClustering(0); got != 1 {
		t.Errorf("clique clustering = %v, want 1", got)
	}
	s := Star(6)
	if got := s.LocalClustering(0); got != 0 {
		t.Errorf("star hub clustering = %v, want 0", got)
	}
	if got := s.AverageClustering(100, rng.New(1)); got != 0 {
		t.Errorf("star average clustering = %v, want 0", got)
	}
}
