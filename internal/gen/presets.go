package gen

import (
	"rewire/internal/graph"
	"rewire/internal/rng"
)

// The presets below are the offline stand-ins for the datasets of the
// paper's Table I and the Google Plus crawl. Node/edge targets match the
// paper's reported (post reciprocal-conversion) numbers; structure comes from
// the Social model (see its doc comment in community.go).
//
// The Small variants are 1/10-scale versions for tests and quick benches.

// presetConfig applies the calibration shared by every dataset stand-in:
// tight near-clique pockets (Slack ≈ 1.05) with few gateways and a two-
// region macro structure, the regime documented for the real snapshots
// (high clustering, unexpectedly low conductance [18]).
func presetConfig(nodes, edges int) SocialConfig {
	return SocialConfig{
		Nodes:       nodes,
		TargetEdges: edges,
		Gamma:       2.4,
		Slack:       1.05,
	}
}

func mustSocial(cfg SocialConfig, seed uint64) *graph.Graph {
	g, err := Social(cfg, rng.New(seed))
	if err != nil {
		panic(err) // static configurations; cannot fail
	}
	return g
}

// EpinionsLike matches Table I's Epinions row: 26,588 nodes, ~100,120 edges.
func EpinionsLike(seed uint64) *graph.Graph {
	return mustSocial(presetConfig(26588, 100120), seed)
}

// SlashdotALike matches Table I's Slashdot A row: 70,068 nodes, ~428,714
// edges.
func SlashdotALike(seed uint64) *graph.Graph {
	return mustSocial(presetConfig(70068, 428714), seed)
}

// SlashdotBLike matches Table I's Slashdot B row: 70,999 nodes, ~436,453
// edges.
func SlashdotBLike(seed uint64) *graph.Graph {
	return mustSocial(presetConfig(70999, 436453), seed)
}

// GooglePlusLike stands in for the live Google Plus graph: sized at the
// paper's 240,276 accessed users with a mean degree of ~12.
func GooglePlusLike(seed uint64) *graph.Graph {
	return mustSocial(presetConfig(240276, 1441656), seed)
}

// EpinionsLikeSmall is a 1/10-scale Epinions for tests.
func EpinionsLikeSmall(seed uint64) *graph.Graph {
	return mustSocial(presetConfig(2659, 10012), seed)
}

// SlashdotLikeSmall is a 1/10-scale Slashdot for tests.
func SlashdotLikeSmall(seed uint64) *graph.Graph {
	return mustSocial(presetConfig(7007, 42871), seed)
}

// GooglePlusLikeSmall is a scaled-down Google Plus for tests.
func GooglePlusLikeSmall(seed uint64) *graph.Graph {
	return mustSocial(presetConfig(24028, 144166), seed)
}

// DirectedTrust builds a directed "trust" graph whose reciprocal conversion
// recovers mutual, exercising the paper's §V-A.2 preparation path: every
// edge of mutual becomes a mutual arc pair, and extraArcs additional one-way
// arcs are sprinkled on top (these disappear under Reciprocal()).
func DirectedTrust(mutual *graph.Graph, extraArcs int, r *rng.Rand) *graph.Digraph {
	n := mutual.NumNodes()
	b := graph.NewDigraphBuilder(n)
	for _, e := range mutual.Edges() {
		b.AddArc(e.U, e.V)
		b.AddArc(e.V, e.U)
	}
	oneWay := make(map[graph.EdgeKey]struct{}, extraArcs)
	for added := 0; added < extraArcs; {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		if u == v || mutual.HasEdge(u, v) {
			continue
		}
		// Never emit both directions of the same one-way pair: that would
		// survive Reciprocal() and corrupt the mutual graph.
		k := graph.KeyOf(u, v)
		if _, ok := oneWay[k]; ok {
			continue
		}
		oneWay[k] = struct{}{}
		b.AddArc(u, v)
		added++
	}
	return b.Build()
}
