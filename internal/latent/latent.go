// Package latent implements the theory side of the paper's §IV-B analysis
// on the latent space graph model (Theorem 6): the probability that an edge
// of a hard-threshold latent-space graph is provably removable, and the
// resulting lower bound on the conductance gain E[Φ(G*)] ≥ Φ(G)/(1 - P).
//
// With the paper's parameters (D = 2, box [0,4]×[0,5], r = 0.7) the bound
// evaluates to ≈ 1.052·Φ(G), the constant quoted in eq. (13).
package latent

import (
	"errors"
	"math"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/rng"
)

// SphereVolume returns the volume of a D-dimensional ball of radius r,
// π^{D/2} r^D / Γ(D/2 + 1) — the paper's V(r).
func SphereVolume(d int, r float64) float64 {
	if d < 0 || r < 0 {
		return math.NaN()
	}
	return math.Pow(math.Pi, float64(d)/2) * math.Pow(r, float64(d)) /
		math.Gamma(float64(d)/2+1)
}

// ThresholdD0 returns the distance threshold below which an edge of a
// hard-threshold (α = ∞) latent-space graph is provably removable. The
// paper's eq. (26) and final integral (30) disagree dimensionally; we follow
// the integral actually evaluated for eq. (13): d0² = 0.75 r², i.e.
// d0 = (√3/2) r. (The eq. 26 form 2r(1-(1/3)^{1/D}) gives 0.845r at D=2 —
// within 2.5% of the value used here.)
func ThresholdD0(r float64) float64 { return math.Sqrt(0.75) * r }

// diffDensity is the density of |X - Y| for X, Y uniform on [0, L]:
// f(z) = 2(L - z)/L² on [0, L].
func diffDensity(z, l float64) float64 {
	if z < 0 || z > l {
		return 0
	}
	return 2 * (l - z) / (l * l)
}

// diffCDF is the CDF of |X - Y| for X, Y uniform on [0, L]:
// F(t) = t(2L - t)/L² on [0, L].
func diffCDF(t, l float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= l {
		return 1
	}
	return t * (2*l - t) / (l * l)
}

// RemovalProbability computes P(d ≤ d0) for two independent uniform points
// in the box [0,a]×[0,b]: the probability mass of the coordinate-difference
// vector inside the disc z1² + z2² ≤ d0² (the paper's eq. 27/30). The outer
// integral runs over z1 with the inner integral available in closed form, so
// a composite Simpson rule converges fast.
func RemovalProbability(d0, a, b float64) (float64, error) {
	if d0 < 0 || a <= 0 || b <= 0 {
		return 0, errors.New("latent: RemovalProbability needs d0 >= 0 and positive box sides")
	}
	if d0 == 0 {
		return 0, nil
	}
	upper := math.Min(d0, a)
	f := func(z1 float64) float64 {
		z2max := math.Sqrt(math.Max(0, d0*d0-z1*z1))
		return diffDensity(z1, a) * diffCDF(z2max, b)
	}
	return simpson(f, 0, upper, 4096), nil
}

// simpson integrates f over [lo, hi] with n (even) panels.
func simpson(f func(float64) float64, lo, hi float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (hi - lo) / float64(n)
	sum := f(lo) + f(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// ConductanceGainBound returns the paper's eq. (24) lower bound on
// E[Φ(G*)]/Φ(G) for the hard-threshold latent space model on [0,a]×[0,b]
// with radius r: 1/(1 - P(d ≤ d0)).
func ConductanceGainBound(r, a, b float64) (float64, error) {
	p, err := RemovalProbability(ThresholdD0(r), a, b)
	if err != nil {
		return 0, err
	}
	if p >= 1 {
		return math.Inf(1), nil
	}
	return 1 / (1 - p), nil
}

// PaperGainBound evaluates the bound at the paper's parameters
// (r = 0.7, a = 4, b = 5); eq. (13) quotes 1.052.
func PaperGainBound() float64 {
	g, err := ConductanceGainBound(0.7, 4, 5)
	if err != nil {
		panic(err) // static arguments; cannot fail
	}
	return g
}

// ExpectedRemovableEdgesBound returns the eq. (23) lower bound on the
// expected number of removable edges, |E| · P(d ≤ d0).
func ExpectedRemovableEdgesBound(edges int, r, a, b float64) (float64, error) {
	p, err := RemovalProbability(ThresholdD0(r), a, b)
	if err != nil {
		return 0, err
	}
	return float64(edges) * p, nil
}

// MonteCarloRemovalProbability estimates P(d ≤ d0) by sampling point pairs
// uniformly from the box — the paper's "20000 points experiment".
func MonteCarloRemovalProbability(d0, a, b float64, pairs int, r *rng.Rand) float64 {
	hits := 0
	for i := 0; i < pairs; i++ {
		z1 := math.Abs(r.Float64()*a - r.Float64()*a)
		z2 := math.Abs(r.Float64()*b - r.Float64()*b)
		if z1*z1+z2*z2 <= d0*d0 {
			hits++
		}
	}
	return float64(hits) / float64(pairs)
}

// GeometricallyRemovableEdges counts edges of a hard-threshold latent-space
// graph whose endpoint distance is below d0 — the geometric certificate
// behind Theorem 6. points must be the coordinates the graph was built from.
func GeometricallyRemovableEdges(g *graph.Graph, points [][]float64, d0 float64) int {
	count := 0
	for _, e := range g.Edges() {
		if euclid(points[e.U], points[e.V]) <= d0 {
			count++
		}
	}
	return count
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// CombinatoriallyRemovableEdges counts edges satisfying the conservative
// neighborhood-overlap certificate the paper derives Theorem 6 from:
// |N(i) ∩ N(j)| ≥ |N(i) ∪ N(j)| - 2.
func CombinatoriallyRemovableEdges(g *graph.Graph) int {
	count := 0
	for _, e := range g.Edges() {
		common := g.CountCommonNeighbors(e.U, e.V)
		union := g.Degree(e.U) + g.Degree(e.V) - common - 2 // exclude i, j themselves
		if common >= union-2 {
			count++
		}
	}
	return count
}

// PaperLatentGraph generates the paper's latent-space configuration at the
// given size, returning the graph and its coordinates.
func PaperLatentGraph(n int, r *rng.Rand) (*graph.Graph, [][]float64, error) {
	return gen.LatentSpace(gen.PaperLatentConfig(n), r)
}
