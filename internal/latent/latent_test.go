package latent

import (
	"math"
	"testing"

	"rewire/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSphereVolume(t *testing.T) {
	cases := []struct {
		d    int
		r    float64
		want float64
	}{
		{1, 1, 2},               // segment length
		{2, 1, math.Pi},         // disc area
		{3, 1, 4 * math.Pi / 3}, // ball volume
		{2, 0.7, math.Pi * 0.49},
	}
	for _, c := range cases {
		if got := SphereVolume(c.d, c.r); !almost(got, c.want, 1e-12) {
			t.Errorf("V_%d(%v) = %v, want %v", c.d, c.r, got, c.want)
		}
	}
	if !math.IsNaN(SphereVolume(-1, 1)) || !math.IsNaN(SphereVolume(2, -1)) {
		t.Error("invalid arguments should give NaN")
	}
}

func TestThresholdD0(t *testing.T) {
	if got := ThresholdD0(0.7); !almost(got, 0.7*math.Sqrt(0.75), 1e-12) {
		t.Errorf("d0 = %v", got)
	}
}

func TestDiffDistribution(t *testing.T) {
	// Density integrates to 1; CDF endpoints.
	integral := simpson(func(z float64) float64 { return diffDensity(z, 4) }, 0, 4, 1000)
	if !almost(integral, 1, 1e-9) {
		t.Errorf("density mass = %v", integral)
	}
	if diffCDF(0, 5) != 0 || diffCDF(5, 5) != 1 || diffCDF(9, 5) != 1 {
		t.Error("CDF endpoints wrong")
	}
	// CDF is the integral of the density.
	at := 1.3
	got := simpson(func(z float64) float64 { return diffDensity(z, 5) }, 0, at, 1000)
	if !almost(got, diffCDF(at, 5), 1e-9) {
		t.Errorf("CDF mismatch: %v vs %v", got, diffCDF(at, 5))
	}
}

func TestPaperGainBoundMatchesEq13(t *testing.T) {
	// The headline number: E[Φ(G*)] >= 1.052 Φ(G).
	got := PaperGainBound()
	if math.Abs(got-1.052) > 0.003 {
		t.Errorf("gain bound = %v, want ≈1.052 (paper eq. 13)", got)
	}
}

func TestRemovalProbabilityAgainstMonteCarlo(t *testing.T) {
	d0 := ThresholdD0(0.7)
	p, err := RemovalProbability(d0, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	mc := MonteCarloRemovalProbability(d0, 4, 5, 2000000, rng.New(1))
	if math.Abs(p-mc) > 0.002 {
		t.Errorf("numeric %v vs Monte Carlo %v", p, mc)
	}
}

func TestRemovalProbabilityEdgeCases(t *testing.T) {
	if p, err := RemovalProbability(0, 4, 5); err != nil || p != 0 {
		t.Errorf("d0=0: %v, %v", p, err)
	}
	if _, err := RemovalProbability(1, 0, 5); err == nil {
		t.Error("zero box side should error")
	}
	if _, err := RemovalProbability(-1, 4, 5); err == nil {
		t.Error("negative d0 should error")
	}
	// Huge d0 covers (almost) all mass.
	p, err := RemovalProbability(100, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p, 1, 1e-6) {
		t.Errorf("huge d0 probability = %v, want 1", p)
	}
}

func TestRemovalProbabilityMonotoneInD0(t *testing.T) {
	prev := 0.0
	for d0 := 0.1; d0 <= 2; d0 += 0.1 {
		p, err := RemovalProbability(d0, 4, 5)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 {
			t.Fatalf("P not monotone at d0=%v: %v < %v", d0, p, prev)
		}
		prev = p
	}
}

func TestExpectedRemovableEdgesBoundHoldsEmpirically(t *testing.T) {
	// Theorem 6 (eq. 23): E[# removable] >= |E| * P(d <= d0). The geometric
	// certificate count must beat the bound on average.
	const trials = 10
	totalEdges, totalGeom := 0, 0
	for seed := uint64(1); seed <= trials; seed++ {
		r := rng.New(seed)
		g, pts, err := PaperLatentGraph(300, r)
		if err != nil {
			t.Fatal(err)
		}
		totalEdges += g.NumEdges()
		totalGeom += GeometricallyRemovableEdges(g, pts, ThresholdD0(0.7))
	}
	bound, err := ExpectedRemovableEdgesBound(totalEdges, 0.7, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Edge-conditional probability P(d<=d0 | d<r) exceeds the unconditional
	// P(d<=d0) by construction, so the certificate count must clear the
	// bound comfortably.
	if float64(totalGeom) < bound {
		t.Errorf("geometric removable %d below bound %v", totalGeom, bound)
	}
}

func TestGeometricImpliesClosePairs(t *testing.T) {
	r := rng.New(3)
	g, pts, err := PaperLatentGraph(200, r)
	if err != nil {
		t.Fatal(err)
	}
	d0 := ThresholdD0(0.7)
	geom := GeometricallyRemovableEdges(g, pts, d0)
	// Every counted edge must indeed be shorter than d0 < r (all edges are
	// < r by the hard threshold); counts must be within [0, |E|].
	if geom < 0 || geom > g.NumEdges() {
		t.Fatalf("geometric count %d out of range", geom)
	}
	comb := CombinatoriallyRemovableEdges(g)
	if comb < 0 || comb > g.NumEdges() {
		t.Fatalf("combinatorial count %d out of range", comb)
	}
}
