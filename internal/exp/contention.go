package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"rewire/internal/core"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// ContentionConfig controls the storage-contention measurement: k SRW
// walkers on k goroutines hammering one shared client over a ZERO-latency
// service, so there is no round-trip to hide behind and every nanosecond of
// wall-clock is walk arithmetic plus storage-engine locking. Comparing a
// sharded client (internal/store) against the legacy single-lock layout
// (shards=1) isolates exactly what the sharded engine buys.
//
// Budgets are partitioned per walker (each member's trajectory depends only
// on its own RNG stream), so the unique-query bill is a deterministic
// function of the seed — the property the CI bench-gate leans on.
type ContentionConfig struct {
	// Ks lists the fleet sizes to measure.
	Ks []int
	// Samples is the total step budget per run, split evenly across walkers.
	Samples int
	// Shards is the sharded variant's shard count (0 = store default).
	Shards int
}

// DefaultContentionConfig measures at a budget big enough for stable
// timings on a many-core machine.
func DefaultContentionConfig() ContentionConfig {
	return ContentionConfig{Ks: []int{1, 4, 16, 64}, Samples: 2_000_000}
}

// QuickContentionConfig is the reduced-scale variant for smoke runs and the
// CI suite.
func QuickContentionConfig() ContentionConfig {
	return ContentionConfig{Ks: []int{1, 4, 16, 64}, Samples: 400_000}
}

// ContentionRow is one (k, store layout) measurement.
type ContentionRow struct {
	K int
	// Shards is the client store's shard count (1 = legacy single lock).
	Shards int
	Wall   time.Duration
	// Unique is the deterministic unique-query bill (identical across
	// layouts for a fixed seed — sharding must never change behavior).
	Unique int64
	// Speedup is wall-clock relative to the legacy layout at the same k.
	Speedup float64
}

// RunContention measures one row: k SRW walkers with partitioned step
// quotas, each on its own goroutine, over one shared zero-latency client
// sharded `shards` ways. The walkers step directly — no sample channel, no
// fleet machinery — so the measurement is store pressure, not plumbing.
func RunContention(ds Dataset, k, shards, samples int, seed uint64) ContentionRow {
	svc := osn.NewService(ds.Graph, nil, osn.Config{})
	client := osn.NewClientShards(svc, shards)
	r := rng.New(seed)
	starts := core.SpreadStarts(k, ds.Graph.NumNodes(), r)
	walkers := make([]*walk.Simple, k)
	for i, s := range starts {
		walkers[i] = walk.NewSimple(client, s, r.Split())
	}
	quota := samples / k
	var wg sync.WaitGroup
	t0 := time.Now()
	for _, w := range walkers {
		wg.Add(1)
		go func(w *walk.Simple) {
			defer wg.Done()
			for j := 0; j < quota; j++ {
				w.Step()
			}
		}(w)
	}
	wg.Wait()
	return ContentionRow{
		K:      k,
		Shards: client.StoreShards(),
		Wall:   time.Since(t0),
		Unique: client.UniqueQueries(),
	}
}

// ContentionResult collects all rows for one dataset.
type ContentionResult struct {
	Dataset    string
	Cfg        ContentionConfig
	GoMaxProcs int
	Rows       []ContentionRow
}

// ContentionScaling measures the legacy (single-lock) and sharded layouts
// at every configured fleet size. Sharded rows carry Speedup relative to
// the legacy row at the same k.
func ContentionScaling(ds Dataset, cfg ContentionConfig, seed uint64) *ContentionResult {
	res := &ContentionResult{Dataset: ds.Name, Cfg: cfg, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, k := range cfg.Ks {
		legacy := RunContention(ds, k, 1, cfg.Samples, seed)
		legacy.Speedup = 1
		sharded := RunContention(ds, k, cfg.Shards, cfg.Samples, seed)
		if sharded.Wall > 0 {
			sharded.Speedup = float64(legacy.Wall) / float64(sharded.Wall)
		}
		res.Rows = append(res.Rows, legacy, sharded)
	}
	return res
}

// Render writes the paper-style aligned table.
func (r *ContentionResult) Render(w io.Writer) {
	fmt.Fprintf(w, "dataset: %s, %d steps per run (partitioned), zero-latency source, GOMAXPROCS=%d\n",
		r.Dataset, r.Cfg.Samples, r.GoMaxProcs)
	fmt.Fprintf(w, "sharded-vs-legacy wall-clock gains grow with cores; on a single-core host the two layouts should tie\n\n")
	t := &Table{Header: []string{"k", "store", "wall", "throughput", "speedup", "unique queries"}}
	for _, row := range r.Rows {
		layout := fmt.Sprintf("sharded/%d", row.Shards)
		if row.Shards == 1 {
			layout = "legacy/1"
		}
		persec := "-"
		if row.Wall > 0 {
			persec = fmt.Sprintf("%.2fM/s", float64(r.Cfg.Samples)/row.Wall.Seconds()/1e6)
		}
		t.AddRow(
			itoa(int64(row.K)),
			layout,
			row.Wall.Round(time.Millisecond).String(),
			persec,
			f2(row.Speedup)+"x",
			itoa(row.Unique),
		)
	}
	t.Render(w)
}
