package exp

import (
	"sync"

	"rewire/internal/gen"
	"rewire/internal/graph"
)

// Dataset pairs a named graph with its generator so drivers can request the
// paper's datasets by name at either scale.
type Dataset struct {
	Name  string
	Graph *graph.Graph
}

// DatasetSeed fixes the generator seed for every preset dataset, so all
// drivers and benches agree on the exact topologies.
const DatasetSeed = 20130408 // ICDE 2013 conference date

var (
	datasetOnce  sync.Once
	datasetCache map[string]*graph.Graph
	smallOnce    sync.Once
	smallCache   map[string]*graph.Graph
)

// LocalDatasets returns the paper's Table I datasets (full scale: Epinions,
// Slashdot A, Slashdot B). Generation happens once per process and is then
// shared — the graphs are immutable.
func LocalDatasets() []Dataset {
	datasetOnce.Do(func() {
		datasetCache = map[string]*graph.Graph{
			"Epinions":   gen.EpinionsLike(DatasetSeed),
			"Slashdot A": gen.SlashdotALike(DatasetSeed),
			"Slashdot B": gen.SlashdotBLike(DatasetSeed),
		}
	})
	return []Dataset{
		{"Epinions", datasetCache["Epinions"]},
		{"Slashdot A", datasetCache["Slashdot A"]},
		{"Slashdot B", datasetCache["Slashdot B"]},
	}
}

// SmallDatasets returns 1/10-scale counterparts for tests and quick benches.
func SmallDatasets() []Dataset {
	smallOnce.Do(func() {
		smallCache = map[string]*graph.Graph{
			"Epinions":   gen.EpinionsLikeSmall(DatasetSeed),
			"Slashdot A": gen.SlashdotLikeSmall(DatasetSeed),
			"Slashdot B": gen.SlashdotLikeSmall(DatasetSeed + 1),
		}
	})
	return []Dataset{
		{"Epinions", smallCache["Epinions"]},
		{"Slashdot A", smallCache["Slashdot A"]},
		{"Slashdot B", smallCache["Slashdot B"]},
	}
}

// Datasets selects full or small scale.
func Datasets(full bool) []Dataset {
	if full {
		return LocalDatasets()
	}
	return SmallDatasets()
}

// DatasetByName finds one dataset, nil when missing.
func DatasetByName(name string, full bool) *Dataset {
	for _, d := range Datasets(full) {
		if d.Name == name {
			return &d
		}
	}
	return nil
}

var (
	gplusOnce       sync.Once
	gplusCache      *graph.Graph
	gplusSmallOnce  sync.Once
	gplusSmallCache *graph.Graph
)

// GooglePlusGraph returns the Google Plus stand-in at the requested scale.
func GooglePlusGraph(full bool) *graph.Graph {
	if full {
		gplusOnce.Do(func() { gplusCache = gen.GooglePlusLike(DatasetSeed) })
		return gplusCache
	}
	gplusSmallOnce.Do(func() { gplusSmallCache = gen.GooglePlusLikeSmall(DatasetSeed) })
	return gplusSmallCache
}
