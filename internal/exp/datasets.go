package exp

import (
	"rewire/internal/dataset"
	"rewire/internal/graph"
)

// Dataset pairs a named graph with its generator; the presets themselves
// live in internal/dataset so the public SDK can share them without
// importing the experiment drivers.
type Dataset = dataset.Dataset

// DatasetSeed fixes the generator seed for every preset dataset, so all
// drivers and benches agree on the exact topologies.
const DatasetSeed = dataset.Seed

// LocalDatasets returns the paper's Table I datasets at full scale.
func LocalDatasets() []Dataset { return dataset.Local() }

// SmallDatasets returns 1/10-scale counterparts for tests and quick benches.
func SmallDatasets() []Dataset { return dataset.Small() }

// Datasets selects full or small scale.
func Datasets(full bool) []Dataset { return dataset.All(full) }

// DatasetByName finds one dataset, nil when missing.
func DatasetByName(name string, full bool) *Dataset { return dataset.ByName(name, full) }

// GooglePlusGraph returns the Google Plus stand-in at the requested scale.
func GooglePlusGraph(full bool) *graph.Graph { return dataset.GooglePlus(full) }
