package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"rewire/internal/core"
	"rewire/internal/gen"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// MemSmokeConfig controls the memory-footprint smoke test: generate a
// million-node heavy-tailed graph into CSR form, stand up a zero-latency
// provider over it, run a k-walker fleet through the sharded client cache,
// and fail if the post-GC heap exceeds the budget. CI runs it under a fixed
// GOMEMLIMIT, so a storage-layer memory regression either trips the explicit
// LimitBytes check or thrashes GC hard enough to blow the job's time budget
// — both loud.
type MemSmokeConfig struct {
	// Nodes is the graph size (default one million).
	Nodes int
	// EdgesPerNode is the Barabási–Albert attachment count m (default 8,
	// ~8M edges at the default Nodes).
	EdgesPerNode int
	// FleetK is the walker-fleet size (default 16).
	FleetK int
	// Samples is the fleet's partitioned step budget (default 100k).
	Samples int
	// LimitBytes fails the smoke when the post-walk, post-GC heap exceeds
	// it (0 = report only). The default, 400 MiB, is ~4x the CSR footprint
	// of the default graph — headroom for the generator's transient state
	// and the client cache, none for a return to per-node slice storage.
	LimitBytes uint64
}

// DefaultMemSmokeConfig is what CI runs.
func DefaultMemSmokeConfig() MemSmokeConfig {
	return MemSmokeConfig{
		Nodes:        1_000_000,
		EdgesPerNode: 8,
		FleetK:       16,
		Samples:      100_000,
		LimitBytes:   400 << 20,
	}
}

// MemSmokeResult reports the smoke's measurements.
type MemSmokeResult struct {
	Nodes, Edges   int
	GraphBytes     int // CSR arrays only
	HeapAfterBuild uint64
	HeapAfterWalk  uint64
	BuildWall      time.Duration
	WalkWall       time.Duration
	Samples        int
	UniqueQueries  int64
	LimitBytes     uint64
}

// MemSmoke builds the graph and runs the fleet, returning an error when the
// heap budget is exceeded.
func MemSmoke(cfg MemSmokeConfig, seed uint64) (*MemSmokeResult, error) {
	if cfg.Nodes <= 0 {
		cfg = DefaultMemSmokeConfig()
	}
	res := &MemSmokeResult{LimitBytes: cfg.LimitBytes}

	t0 := time.Now()
	g := gen.BarabasiAlbert(cfg.Nodes, cfg.EdgesPerNode, rng.New(seed))
	res.BuildWall = time.Since(t0)
	res.Nodes = g.NumNodes()
	res.Edges = g.NumEdges()
	res.GraphBytes = g.FootprintBytes()
	res.HeapAfterBuild = heapNow()

	svc := osn.NewService(g, nil, osn.Config{})
	client := osn.NewClient(svc)
	r := rng.New(seed + 1)
	starts := core.SpreadStarts(cfg.FleetK, g.NumNodes(), r)
	fleet := walk.NewFleetSimple(client, starts, r)
	t1 := time.Now()
	samples := fleet.SamplesPartitioned(cfg.Samples)
	res.WalkWall = time.Since(t1)
	res.Samples = len(samples)
	res.UniqueQueries = client.UniqueQueries()
	res.HeapAfterWalk = heapNow()
	// Keep the graph and the populated cache live past the heap read —
	// without this the collector (correctly) deems them dead and the
	// measurement reports an empty heap.
	runtime.KeepAlive(g)
	runtime.KeepAlive(client)

	if res.Samples != cfg.Samples {
		return res, fmt.Errorf("memory smoke: fleet drew %d samples, want %d", res.Samples, cfg.Samples)
	}
	if cfg.LimitBytes > 0 && res.HeapAfterWalk > cfg.LimitBytes {
		return res, fmt.Errorf("memory smoke: post-walk heap %s exceeds the %s budget",
			mib(res.HeapAfterWalk), mib(cfg.LimitBytes))
	}
	return res, nil
}

// heapNow returns the live heap after a forced collection.
func heapNow() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func mib(b uint64) string { return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20)) }

// Render writes the smoke report.
func (r *MemSmokeResult) Render(w io.Writer) {
	fmt.Fprintf(w, "graph: %d nodes, %d edges — CSR footprint %s (built in %v)\n",
		r.Nodes, r.Edges, mib(uint64(r.GraphBytes)), r.BuildWall.Round(time.Millisecond))
	fmt.Fprintf(w, "heap after build: %s\n", mib(r.HeapAfterBuild))
	fmt.Fprintf(w, "fleet walk: %d samples, %d unique queries in %v\n",
		r.Samples, r.UniqueQueries, r.WalkWall.Round(time.Millisecond))
	budget := "report-only"
	if r.LimitBytes > 0 {
		budget = mib(r.LimitBytes)
	}
	fmt.Fprintf(w, "heap after walk: %s (budget %s)\n", mib(r.HeapAfterWalk), budget)
}
