package exp

import (
	"io"

	"rewire/internal/rng"
)

// Table1Row is one dataset row of the paper's Table I.
type Table1Row struct {
	Name       string
	Nodes      int
	Edges      int
	Diameter90 float64
}

// Table1Result reproduces Table I: dataset name, #nodes, #edges, 90%
// effective diameter.
type Table1Result struct {
	Rows []Table1Row
	// Paper holds the published values for side-by-side rendering.
	Paper []Table1Row
}

// PaperTable1 returns the values printed in the paper.
func PaperTable1() []Table1Row {
	return []Table1Row{
		{"Epinions", 26588, 100120, 4.8},
		{"Slashdot A", 70068, 428714, 4.5},
		{"Slashdot B", 70999, 436453, 4.5},
	}
}

// Table1 measures the (generated) local datasets. diameterSamples BFS
// sources estimate the 90% effective diameter (paper-scale graphs: a few
// hundred sources suffice).
func Table1(full bool, diameterSamples int, seed uint64) Table1Result {
	if diameterSamples <= 0 {
		diameterSamples = 200
	}
	res := Table1Result{Paper: PaperTable1()}
	r := rng.New(seed)
	for _, d := range Datasets(full) {
		res.Rows = append(res.Rows, Table1Row{
			Name:       d.Name,
			Nodes:      d.Graph.NumNodes(),
			Edges:      d.Graph.NumEdges(),
			Diameter90: d.Graph.EffectiveDiameter(0.9, diameterSamples, r.Split()),
		})
	}
	return res
}

// Render writes the measured-vs-paper table.
func (t Table1Result) Render(w io.Writer) {
	tab := &Table{Header: []string{
		"Dataset", "#nodes", "#edges", "90% diameter",
		"paper #nodes", "paper #edges", "paper diam",
	}}
	for i, row := range t.Rows {
		var p Table1Row
		if i < len(t.Paper) {
			p = t.Paper[i]
		}
		tab.AddRow(row.Name,
			itoa(int64(row.Nodes)), itoa(int64(row.Edges)), f1(row.Diameter90),
			itoa(int64(p.Nodes)), itoa(int64(p.Edges)), f1(p.Diameter90))
	}
	tab.Render(w)
}
