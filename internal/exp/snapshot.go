package exp

import (
	"context"
	"os"
	"path/filepath"
	"slices"
	"time"

	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// SnapshotColdRow is one cold-open snapshot measurement: wall-clock covers
// OpenSnapshot plus the full walk, so a regression in either the O(1) open
// path or per-row access cost shows up.
type SnapshotColdRow struct {
	Wall time.Duration
	// Unique is the deterministic unique-query bill of the fixed-seed walk.
	Unique int64
}

// snapshotBackend lifts a read-only CSR snapshot onto the client's Backend
// contract, row-cloning exactly like the public snapshot: driver does — the
// gate must measure the shipped fetch path (clone included: cached lists
// must outlive the mapping), not a cheaper look-alike.
type snapshotBackend struct{ snap *graph.Snapshot }

func (b snapshotBackend) Fetch(ctx context.Context, ids []graph.NodeID) ([]osn.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]osn.Response, len(ids))
	for i, v := range ids {
		nbrs, err := b.snap.Neighbors(v)
		if err != nil {
			return nil, err
		}
		out[i] = osn.Response{User: v, Neighbors: slices.Clone(nbrs)}
	}
	return out, nil
}

func (b snapshotBackend) NumUsers() int { return b.snap.NumNodes() }

// RunSnapshotCold serializes ds to a snapshot file, then measures the cold
// path a resumed crawl pays: open the snapshot and drive a single SRW walker
// through `samples` steps over the full client stack (sharded cache, demand
// billing). The write is setup, not measurement. The unique-query bill is a
// deterministic function of the seed — the CI gate pins it.
func RunSnapshotCold(ds Dataset, samples int, seed uint64) (SnapshotColdRow, error) {
	dir, err := os.MkdirTemp("", "rewire-snapbench-*")
	if err != nil {
		return SnapshotColdRow{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.csr")
	if err := ds.Graph.WriteSnapshotFile(path); err != nil {
		return SnapshotColdRow{}, err
	}

	t0 := time.Now()
	snap, err := graph.OpenSnapshot(path)
	if err != nil {
		return SnapshotColdRow{}, err
	}
	defer snap.Close()
	client := osn.NewClient(snapshotBackend{snap: snap})
	r := rng.New(seed)
	w := walk.NewSimple(client, 0, r.Split())
	for i := 0; i < samples; i++ {
		w.Step()
	}
	return SnapshotColdRow{Wall: time.Since(t0), Unique: client.UniqueQueries()}, nil
}
