package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rewire/internal/gen"
	"rewire/internal/rng"
)

func TestNewWalkerAllAlgorithms(t *testing.T) {
	g := gen.Barbell(5)
	for _, alg := range []string{AlgSRW, AlgMTO, AlgMTORM, AlgMTORP, AlgMHRW, AlgRJ} {
		w, weighter, err := NewWalker(alg, g, g.NumNodes(), 0, rng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if w == nil || weighter == nil {
			t.Fatalf("%s: nil walker or weighter", alg)
		}
		for i := 0; i < 50; i++ {
			v := w.Step()
			if v < 0 || int(v) >= g.NumNodes() {
				t.Fatalf("%s: stepped out of range: %d", alg, v)
			}
		}
	}
	if _, _, err := NewWalker("nope", g, g.NumNodes(), 0, rng.New(1)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Header: []string{"a", "long-header"}}
	tab.AddRow("x", "1")
	tab.AddRow("longer-cell", "2")
	var buf bytes.Buffer
	tab.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	var csv bytes.Buffer
	tab.RenderCSV(&csv)
	if !strings.HasPrefix(csv.String(), "a,long-header\n") {
		t.Errorf("csv = %q", csv.String())
	}
}

func TestDatasets(t *testing.T) {
	small := SmallDatasets()
	if len(small) != 3 {
		t.Fatalf("got %d small datasets", len(small))
	}
	for _, d := range small {
		if !d.Graph.IsConnected() {
			t.Errorf("%s: disconnected", d.Name)
		}
	}
	if DatasetByName("Epinions", false) == nil {
		t.Error("Epinions lookup failed")
	}
	if DatasetByName("nope", false) != nil {
		t.Error("bogus lookup succeeded")
	}
	// Caching: same pointer on second call.
	if SmallDatasets()[0].Graph != small[0].Graph {
		t.Error("dataset cache not reused")
	}
}

func TestTable1Quick(t *testing.T) {
	res := Table1(false, 50, 1)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Nodes <= 0 || row.Edges <= 0 {
			t.Errorf("%s: empty dataset", row.Name)
		}
		if row.Diameter90 <= 0 || row.Diameter90 > 20 {
			t.Errorf("%s: 90%% diameter %v implausible", row.Name, row.Diameter90)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Epinions") {
		t.Error("render missing dataset name")
	}
}

func TestRunningExample(t *testing.T) {
	res, err := RunningExample(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 22 || res.Edges != 111 {
		t.Fatalf("barbell = %d/%d", res.Nodes, res.Edges)
	}
	if math.Abs(res.Phi0-1.0/56) > 1e-9 {
		t.Errorf("Φ(G) = %v, want 1/56", res.Phi0)
	}
	if res.PhiRM <= res.Phi0 {
		t.Errorf("Φ(G*) = %v not above Φ(G) = %v", res.PhiRM, res.Phi0)
	}
	if res.PhiBoth <= res.Phi0 {
		t.Errorf("Φ(G**) = %v not above Φ(G)", res.PhiBoth)
	}
	// The paper's coefficient at the measured Φ0 is ~14212.
	if math.Abs(res.Coeff0-14212.3)/14212.3 > 0.05 {
		t.Errorf("coefficient = %v, want ≈14212.3", res.Coeff0)
	}
	// Mixing-time bound drops substantially under rewiring.
	if res.CoeffRM >= res.Coeff0 || res.CoeffBoth >= res.Coeff0 {
		t.Error("mixing bound did not decrease")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "G**") {
		t.Error("render incomplete")
	}
}

func TestFig7Quick(t *testing.T) {
	res, err := Fig7(*DatasetByName("Epinions", false), QuickFig7Config(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if res.Truth <= 0 {
		t.Fatal("no ground truth")
	}
	for _, s := range res.Series {
		if len(s.MeanCost) != len(res.ErrorGrid) {
			t.Fatalf("%s: grid mismatch", s.Algorithm)
		}
		if s.MeanFinalCost <= 0 {
			t.Errorf("%s: zero cost", s.Algorithm)
		}
		for i, settled := range s.Settled {
			if settled < 0 || settled > QuickFig7Config().Runs {
				t.Errorf("%s: settled[%d] = %d out of range", s.Algorithm, i, settled)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "MTO") {
		t.Error("render incomplete")
	}
}

func TestFig8And9Quick(t *testing.T) {
	cfg := QuickFig8Config()
	res, err := Fig8(SmallDatasets()[:1], cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.KL < 0 || math.IsNaN(c.KL) || math.IsInf(c.KL, 0) {
			t.Errorf("%s/%s: KL = %v", c.Dataset, c.Algorithm, c.KL)
		}
		if c.QueryCost <= 0 {
			t.Errorf("%s/%s: cost = %d", c.Dataset, c.Algorithm, c.QueryCost)
		}
	}
	f9, err := Fig9(*DatasetByName("Epinions", false), QuickFig9Config(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) != 3 {
		t.Fatalf("fig9 rows = %d", len(f9.Rows))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	f9.Render(&buf)
	if !strings.Contains(buf.String(), "threshold") {
		t.Error("fig9 render incomplete")
	}
}

func TestFig10Quick(t *testing.T) {
	res, err := Fig10(QuickFig10Config(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GainBound-1.052) > 0.003 {
		t.Errorf("gain bound = %v", res.GainBound)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.Original <= 0 || row.MTOBoth <= 0 || row.MTORemoveOnly <= 0 || row.MTOReplaceOnly <= 0 {
			t.Errorf("size %d: nonpositive mixing times %+v", row.Nodes, row)
		}
		if row.TheoryBound >= row.Original {
			t.Errorf("size %d: theory bound %v not below original %v", row.Nodes, row.TheoryBound, row.Original)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "MTO_RM") {
		t.Error("render incomplete")
	}
}

func TestFig11Quick(t *testing.T) {
	res, err := Fig11(false, QuickFig11Config(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 { // 2 algorithms x 2 aggregates
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if s.ConvergedValue <= 0 || s.ExactTruth <= 0 {
			t.Errorf("%s/%s: degenerate values %+v", s.Algorithm, s.Aggregate, s)
		}
		// The converged value should land within 50% of exact truth even at
		// quick scale.
		if rel := math.Abs(s.ConvergedValue-s.ExactTruth) / s.ExactTruth; rel > 0.5 {
			t.Errorf("%s/%s: converged %v vs exact %v", s.Algorithm, s.Aggregate, s.ConvergedValue, s.ExactTruth)
		}
	}
	if len(res.Trace) != 2 {
		t.Errorf("trace algorithms = %d", len(res.Trace))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "self-description") {
		t.Error("render incomplete")
	}
}

func TestTheorem6Quick(t *testing.T) {
	res, err := Theorem6(QuickTheorem6Config(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GainBound-1.052) > 0.003 {
		t.Errorf("gain bound = %v, want ≈1.052", res.GainBound)
	}
	if math.Abs(res.PNumeric-res.PMonteCarlo) > 0.02 {
		t.Errorf("numeric %v vs MC %v", res.PNumeric, res.PMonteCarlo)
	}
	if float64(res.GeometricCount) < res.BoundCount {
		t.Errorf("eq.(23) bound violated: %d < %v", res.GeometricCount, res.BoundCount)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "1.052") {
		t.Error("render incomplete")
	}
}
