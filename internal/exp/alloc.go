package exp

import (
	"runtime"

	"rewire/internal/core"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// AllocRow reports heap allocations per steady-state walk step. "Steady
// state" means the client cache is fully warm (every node demanded once, so
// no step pays a fetch) and, for MTO, the step commits no rewiring — edge
// removals and replacements are amortized-finite (each edge removed at most
// once, each pivot used once) and legitimately allocate when they restructure
// the overlay's lists. In that regime the inner loop is the pure hot path —
// pick a cached neighbor list, draw from the RNG, apply the criteria, move —
// and the repo's performance contract is that it allocates nothing: an
// allocation per step is a GC-pressure regression that wall-clock benches on
// fast machines hide.
type AllocRow struct {
	// SRW is allocations per Simple.Step over a warm osn.Client.
	SRW float64
	// MTO is allocations per non-mutating core.Sampler.Step over a warm
	// osn.Client.
	MTO float64
}

// steadyWarmups is how many steps retire before measuring: enough for the
// MTO sampler to exhaust removals/replacements on the small datasets and for
// both walkers to stop touching cold cache entries.
const steadyWarmups = 20_000

// allocMeasureRuns is the sample size for the per-step allocation average.
const allocMeasureRuns = 2_000

// SteadyStateAllocs measures AllocRow on ds at the given seed. The service
// is zero-latency: only the in-process hot path is exercised.
func SteadyStateAllocs(ds Dataset, seed uint64) AllocRow {
	var row AllocRow

	warmClient := func() *osn.Client {
		svc := osn.NewService(ds.Graph, nil, osn.Config{})
		client := osn.NewClient(svc)
		for v := 0; v < ds.Graph.NumNodes(); v++ {
			client.Query(graph.NodeID(v))
		}
		return client
	}

	srw := walk.NewSimple(warmClient(), 0, rng.New(seed))
	for i := 0; i < steadyWarmups; i++ {
		srw.Step()
	}
	row.SRW = minAllocsPerOp(3, allocMeasureRuns, func() { srw.Step() })

	mto := core.NewSampler(warmClient(), 0, core.DefaultConfig(), rng.New(seed+1))
	for i := 0; i < steadyWarmups; i++ {
		mto.Step()
	}
	row.MTO = samplerSteadyAllocs(mto, allocMeasureRuns)
	return row
}

// samplerSteadyAllocs measures allocations per non-mutating Sampler step: a
// step that commits a removal or replacement is excluded (the overlay's list
// surgery allocates by design and happens a bounded number of times per
// graph), every other step must be free. Per-step ReadMemStats bracketing is
// slow — runs are small — but exact.
func samplerSteadyAllocs(s *core.Sampler, runs int) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	s.Step()
	runtime.GC()
	var before, after runtime.MemStats
	var mallocs uint64
	counted := 0
	for guard := 0; counted < runs && guard < 100*runs; guard++ {
		st := s.Stats()
		runtime.ReadMemStats(&before)
		s.Step()
		runtime.ReadMemStats(&after)
		now := s.Stats()
		if now.Removals != st.Removals || now.Replacements != st.Replacements {
			continue // rewiring committed: list surgery is allowed to allocate
		}
		mallocs += after.Mallocs - before.Mallocs
		counted++
	}
	return float64(mallocs) / float64(counted)
}

// minAllocsPerOp takes the best of n allocsPerOp attempts — the bestOf
// de-noising idiom. A walk that genuinely allocates per step shows it in
// every attempt; a stray straggler (a concurrent GC cycle's bookkeeping)
// only taints some.
func minAllocsPerOp(n, runs int, f func()) float64 {
	best := allocsPerOp(runs, f)
	for i := 1; i < n && best > 0; i++ {
		if a := allocsPerOp(runs, f); a < best {
			best = a
		}
	}
	return best
}

// allocsPerOp mirrors testing.AllocsPerRun (which the bench suite cannot
// import outside a test binary): pin to one proc, warm once, then average
// mallocs over runs calls of f.
func allocsPerOp(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
