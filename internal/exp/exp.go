// Package exp contains one driver per table/figure of the paper's
// evaluation (§V), each reproducible at full paper scale (cmd/mto-bench) or
// at reduced scale (tests, benches), plus the fleet-scaling experiment. See
// README.md for the experiment index and how to run everything.
package exp

import (
	"fmt"
	"io"
	"strings"

	"rewire/internal/core"
	"rewire/internal/graph"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// Algorithm names accepted by NewWalker; the paper's four competitors plus
// the two MTO ablations of Fig 10.
const (
	AlgSRW   = "SRW"
	AlgMTO   = "MTO"
	AlgMTORM = "MTO_RM"
	AlgMTORP = "MTO_RP"
	AlgMHRW  = "MHRW"
	AlgRJ    = "RJ"
)

// PaperAlgorithms lists the Fig 7 competitors in the paper's order.
func PaperAlgorithms() []string { return []string{AlgSRW, AlgMTO, AlgMHRW, AlgRJ} }

// NewWalker builds the named sampler over src. numUsers is the provider-
// published ID-space size (needed by RJ; the paper uses jump probability
// 0.5). The returned Weighter may equal the Walker or be nil-equivalent
// (constant 1) depending on the algorithm.
func NewWalker(name string, src walk.Source, numUsers int, start graph.NodeID, r *rng.Rand) (walk.Walker, walk.Weighter, error) {
	switch name {
	case AlgSRW:
		w := walk.NewSimple(src, start, r)
		return w, w, nil
	case AlgMHRW:
		w := walk.NewMetropolisHastings(src, start, r)
		return w, w, nil
	case AlgRJ:
		w := walk.NewRandomJump(src, start, numUsers, 0.5, r)
		return w, w, nil
	case AlgMTO:
		s := core.NewSampler(src, start, core.DefaultConfig(), r)
		return s, s, nil
	case AlgMTORM:
		s := core.NewSampler(src, start, core.RemovalOnlyConfig(), r)
		return s, s, nil
	case AlgMTORP:
		s := core.NewSampler(src, start, core.ReplacementOnlyConfig(), r)
		return s, s, nil
	default:
		return nil, nil, fmt.Errorf("exp: unknown algorithm %q", name)
	}
}

// Table is a minimal aligned-text table renderer used by every driver.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.Header))
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

// RenderCSV writes the table as CSV (no quoting; the harness only emits
// numbers and simple identifiers).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f1, f2, f3, f4 format floats at fixed precision for table cells.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// itoa formats ints for table cells.
func itoa(x int64) string { return fmt.Sprintf("%d", x) }
