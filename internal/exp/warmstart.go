package exp

import (
	"os"
	"time"

	"rewire/internal/durable"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// WarmStartRow is one durable-cache cold-vs-reopen measurement: the cold leg
// crawls into a fresh cache directory (WAL appends on every billed fetch),
// the warm leg reopens the same directory and repeats the identical
// fixed-seed crawl over the recovered state.
type WarmStartRow struct {
	// ColdWall covers Open + attach + the cold crawl + Close (WAL seal).
	ColdWall time.Duration
	// WarmWall covers reopen (recovery replay) + the same crawl warm.
	WarmWall time.Duration
	// ColdUnique is the cold crawl's deterministic unique-query bill — every
	// one of these entries persisted through the WAL.
	ColdUnique int64
	// WarmNew is the number of unique queries the warm crawl billed beyond
	// the recovered ledger. The durability contract pins it at exactly 0:
	// every replayed entry is a cache hit, never re-billed.
	WarmNew int64
	// Recovered is the unique-query ledger recovered at reopen (equals
	// ColdUnique when recovery is exact).
	Recovered int64
}

// RunWarmStart measures the warm-start path a restarted crawl pays with a
// durable cache: cold crawl into a fresh directory, reopen, identical crawl
// again. Both legs drive a single SRW walker through `samples` steps over
// the full client stack; the counters are deterministic functions of the
// seed, so the CI gate pins ColdUnique within tolerance and WarmNew exactly
// at zero.
func RunWarmStart(ds Dataset, samples int, seed uint64) (WarmStartRow, error) {
	dir, err := os.MkdirTemp("", "rewire-warmbench-*")
	if err != nil {
		return WarmStartRow{}, err
	}
	defer os.RemoveAll(dir)
	var row WarmStartRow

	crawl := func() (*osn.Client, func() error, error) {
		c, err := durable.Open(dir, durable.Options{})
		if err != nil {
			return nil, nil, err
		}
		client := osn.NewClient(osn.NewService(ds.Graph, nil, osn.Config{}))
		if err := c.Attach(client); err != nil {
			c.Close()
			return nil, nil, err
		}
		return client, c.Close, nil
	}

	t0 := time.Now()
	client, closeCache, err := crawl()
	if err != nil {
		return row, err
	}
	w := walk.NewSimple(client, 0, rng.New(seed).Split())
	for i := 0; i < samples; i++ {
		w.Step()
	}
	row.ColdUnique = client.UniqueQueries()
	if err := closeCache(); err != nil {
		return row, err
	}
	row.ColdWall = time.Since(t0)

	t1 := time.Now()
	client, closeCache, err = crawl()
	if err != nil {
		return row, err
	}
	row.Recovered = client.UniqueQueries()
	w = walk.NewSimple(client, 0, rng.New(seed).Split())
	for i := 0; i < samples; i++ {
		w.Step()
	}
	row.WarmNew = client.UniqueQueries() - row.Recovered
	if err := closeCache(); err != nil {
		return row, err
	}
	row.WarmWall = time.Since(t1)
	return row, nil
}
