package exp

import (
	"context"
	"fmt"
	"time"

	"rewire/internal/benchcmp"
)

// BenchSuite runs the deterministic workloads behind the CI bench-gate and
// returns their machine-readable measurements (cmd/mto-bench -exp bench
// -json). Every workload is schedule-independent — partitioned fleet
// budgets, single samplers — so the unique-query counters are exact
// functions of the seed and can be gated tightly; wall-clock enters only
// through in-process speedup ratios, which transfer across machines because
// the runs are latency-dominated (see internal/benchcmp). A non-nil error
// means a workload could not run at all (e.g. the snapshot round-trip
// failed) — the partial suite is still returned for diagnosis.
func BenchSuite(ctx context.Context, seed uint64) (benchcmp.Suite, error) {
	ds := SmallDatasets()[0]
	cfg := QuickPrefetchExpConfig()
	suite := benchcmp.Suite{Schema: benchcmp.Schema, Seed: seed}

	// Steady-state allocation counters: with the cache warm and rewiring at
	// its fixpoint, a walk step must not allocate. Allocations, like query
	// counters, are machine-portable — the baseline gates them at zero — and
	// they are measured first, before the latency workloads fill the process
	// with worker pools, mmaps, and finalizers whose background churn would
	// taint the malloc counter.
	alloc := SteadyStateAllocs(ds, seed)
	suite.Results = append(suite.Results,
		benchcmp.Result{Name: "WalkSteadySRWAllocs", Samples: allocMeasureRuns, AllocsPerOp: alloc.SRW},
		benchcmp.Result{Name: "WalkSteadyMTOAllocs", Samples: allocMeasureRuns, AllocsPerOp: alloc.MTO},
	)
	add := func(name string, samples int, row PrefetchRow, ref time.Duration) time.Duration {
		r := benchcmp.Result{
			Name:    name,
			WallNS:  row.Wall.Nanoseconds(),
			Samples: samples,
			Queries: row.Unique,
		}
		if ref > 0 && row.Wall > 0 {
			r.Speedup = float64(ref) / float64(row.Wall)
		}
		suite.Results = append(suite.Results, r)
		return row.Wall
	}

	fleetRef := add("FleetPrefetchOff", cfg.Samples, RunPrefetchFleet(ds, cfg, PrefetchNone, seed), 0)
	add("FleetPrefetchNextHop", cfg.Samples, RunPrefetchFleet(ds, cfg, PrefetchNextHop, seed), fleetRef)
	add("FleetPrefetchFrontier", cfg.Samples, RunPrefetchFleet(ds, cfg, PrefetchFrontier, seed), fleetRef)

	mtoRef := add("MTOPivotPrefetchOff", cfg.MTOSteps, RunPrefetchMTO(ds, cfg, false, seed), 0)
	add("MTOPivotPrefetchOn", cfg.MTOSteps, RunPrefetchMTO(ds, cfg, true, seed), mtoRef)

	// Storage-engine contention: a k=16 zero-latency fleet over the legacy
	// single-lock client versus the sharded one. Queries are deterministic
	// (partitioned quotas) and identical across layouts by construction; the
	// sharded row's speedup is gated by a floor in the baseline. The gap is
	// a multicore effect — on a single-core runner the layouts tie — so the
	// committed floor is deliberately conservative.
	ccfg := QuickContentionConfig()
	legacy := bestOf(3, func() ContentionRow { return RunContention(ds, 16, 1, ccfg.Samples, seed) })
	suite.Results = append(suite.Results, benchcmp.Result{
		Name:    "ContentionLegacyK16",
		WallNS:  legacy.Wall.Nanoseconds(),
		Samples: ccfg.Samples,
		Queries: legacy.Unique,
	})
	sharded := bestOf(3, func() ContentionRow { return RunContention(ds, 16, ccfg.Shards, ccfg.Samples, seed) })
	shardedRes := benchcmp.Result{
		Name:    "ContentionShardedK16",
		WallNS:  sharded.Wall.Nanoseconds(),
		Samples: ccfg.Samples,
		Queries: sharded.Unique,
	}
	if legacy.Wall > 0 && sharded.Wall > 0 {
		shardedRes.Speedup = float64(legacy.Wall) / float64(sharded.Wall)
	}
	suite.Results = append(suite.Results, shardedRes)

	// Snapshot cold path: open a CSR snapshot and walk 10k steps through the
	// full client stack. The unique-query counter is deterministic and gated;
	// wall-clock (best of 3) is recorded so snapshot-load regressions are
	// visible in the artifact even before they trip anything.
	const snapSamples = 10_000
	snap, err := RunSnapshotCold(ds, snapSamples, seed)
	for i := 1; i < 3 && err == nil; i++ {
		row, e := RunSnapshotCold(ds, snapSamples, seed)
		if e != nil {
			err = e
			break
		}
		if row.Wall < snap.Wall {
			snap = row
		}
	}
	if err != nil {
		return suite, fmt.Errorf("exp: SnapshotOpenCold workload failed: %w", err)
	}
	suite.Results = append(suite.Results, benchcmp.Result{
		Name:    "SnapshotOpenCold",
		WallNS:  snap.Wall.Nanoseconds(),
		Samples: snapSamples,
		Queries: snap.Unique,
	})

	// Durable warm start: a cold crawl into a WAL-backed cache directory,
	// then the identical fixed-seed crawl after reopening it. The cold bill
	// is gated within tolerance like any deterministic counter; the warm
	// row's Queries is the bill the reopened crawl added on top of the
	// recovered ledger, gated EXACTLY at zero in the baseline — the
	// durability contract is that a replayed entry is never re-billed.
	const warmSamples = 10_000
	warm, err := RunWarmStart(ds, warmSamples, seed)
	if err != nil {
		return suite, fmt.Errorf("exp: DurableWarmStart workload failed: %w", err)
	}
	suite.Results = append(suite.Results,
		benchcmp.Result{
			Name:    "DurableColdCrawl",
			WallNS:  warm.ColdWall.Nanoseconds(),
			Samples: warmSamples,
			Queries: warm.ColdUnique,
		},
		benchcmp.Result{
			Name:    "DurableWarmCrawl",
			WallNS:  warm.WarmWall.Nanoseconds(),
			Samples: warmSamples,
			Queries: warm.WarmNew,
		},
	)

	// HTTP fleet batching: the same fixed-seed fleet demand over a serialized
	// HTTP provider (one request at a time, fixed service latency), with and
	// without the demand-coalescing middleware. Queries are deterministic and
	// identical across the two rows — coalescing repacks demand, never changes
	// it — and the speedup is the round-trip-count ratio in disguise, so the
	// baseline can put a hard floor under it on any machine.
	bcfg := QuickBatchingConfig()
	httpBest := func(wait time.Duration) (BatchingRow, error) {
		best, err := RunHTTPFleet(ctx, ds, bcfg, wait, seed)
		if err != nil {
			return best, err
		}
		row, err := RunHTTPFleet(ctx, ds, bcfg, wait, seed)
		if err != nil {
			return best, err
		}
		if row.Wall < best.Wall {
			best = row
		}
		return best, nil
	}
	unbatched, err := httpBest(0)
	if err != nil {
		return suite, fmt.Errorf("exp: HTTPFleetUnbatched workload failed: %w", err)
	}
	batched, err := httpBest(bcfg.Waits[len(bcfg.Waits)-1])
	if err != nil {
		return suite, fmt.Errorf("exp: HTTPFleetBatched workload failed: %w", err)
	}
	batchedRes := benchcmp.Result{
		Name:    "HTTPFleetBatchedK16",
		WallNS:  batched.Wall.Nanoseconds(),
		Samples: bcfg.Samples,
		Queries: batched.Unique,
	}
	if unbatched.Wall > 0 && batched.Wall > 0 {
		batchedRes.Speedup = float64(unbatched.Wall) / float64(batched.Wall)
	}
	suite.Results = append(suite.Results,
		benchcmp.Result{
			Name:    "HTTPFleetUnbatchedK16",
			WallNS:  unbatched.Wall.Nanoseconds(),
			Samples: bcfg.Samples,
			Queries: unbatched.Unique,
		},
		batchedRes,
	)
	return suite, nil
}

// bestOf runs f n times and keeps the row with the smallest wall-clock —
// the standard way to de-noise a short benchmark (the minimum is the run
// least disturbed by the scheduler).
func bestOf(n int, f func() ContentionRow) ContentionRow {
	best := f()
	for i := 1; i < n; i++ {
		if row := f(); row.Wall < best.Wall {
			best = row
		}
	}
	return best
}
