package exp

import (
	"time"

	"rewire/internal/benchcmp"
)

// BenchSuite runs the deterministic workloads behind the CI bench-gate and
// returns their machine-readable measurements (cmd/mto-bench -exp bench
// -json). Every workload is schedule-independent — partitioned fleet
// budgets, single samplers — so the unique-query counters are exact
// functions of the seed and can be gated tightly; wall-clock enters only
// through in-process speedup ratios, which transfer across machines because
// the runs are latency-dominated (see internal/benchcmp).
func BenchSuite(seed uint64) benchcmp.Suite {
	ds := SmallDatasets()[0]
	cfg := QuickPrefetchExpConfig()
	suite := benchcmp.Suite{Schema: benchcmp.Schema, Seed: seed}
	add := func(name string, samples int, row PrefetchRow, ref time.Duration) time.Duration {
		r := benchcmp.Result{
			Name:    name,
			WallNS:  row.Wall.Nanoseconds(),
			Samples: samples,
			Queries: row.Unique,
		}
		if ref > 0 && row.Wall > 0 {
			r.Speedup = float64(ref) / float64(row.Wall)
		}
		suite.Results = append(suite.Results, r)
		return row.Wall
	}

	fleetRef := add("FleetPrefetchOff", cfg.Samples, RunPrefetchFleet(ds, cfg, PrefetchNone, seed), 0)
	add("FleetPrefetchNextHop", cfg.Samples, RunPrefetchFleet(ds, cfg, PrefetchNextHop, seed), fleetRef)
	add("FleetPrefetchFrontier", cfg.Samples, RunPrefetchFleet(ds, cfg, PrefetchFrontier, seed), fleetRef)

	mtoRef := add("MTOPivotPrefetchOff", cfg.MTOSteps, RunPrefetchMTO(ds, cfg, false, seed), 0)
	add("MTOPivotPrefetchOn", cfg.MTOSteps, RunPrefetchMTO(ds, cfg, true, seed), mtoRef)
	return suite
}
