package exp

import (
	"fmt"
	"io"

	"rewire/internal/core"
	"rewire/internal/gen"
	"rewire/internal/rng"
	"rewire/internal/spectral"
)

// RunningExampleResult reproduces the paper's §II–III barbell narrative:
// the conductance and mixing-time trail Φ(G) → Φ(G*) → Φ(G**).
type RunningExampleResult struct {
	Nodes, Edges int

	Phi0    float64 // measured Φ(G); paper 0.018
	PhiRM   float64 // measured Φ(G*) after removals; paper 0.053
	PhiBoth float64 // measured Φ(G**) after removal+replacement; paper 0.105

	// Paper coefficients ln(100)/Φ² for each stage (paper: 14212.3,
	// 1638.3, 416.6) computed from the *measured* conductances.
	Coeff0, CoeffRM, CoeffBoth float64

	// SLEM-based theoretical mixing times (footnote 12) for each stage.
	Mixing0, MixingRM, MixingBoth float64

	RemovedEdges int
	Replacements int
}

// RunningExample builds the 22-node barbell, applies the offline overlay
// construction (removal only, then removal+replacement) and measures
// conductance exactly plus SLEM mixing times.
func RunningExample(seed uint64) (RunningExampleResult, error) {
	g := gen.Barbell(11)
	var res RunningExampleResult
	res.Nodes, res.Edges = g.NumNodes(), g.NumEdges()

	var err error
	res.Phi0, _, err = spectral.ExactConductance(g)
	if err != nil {
		return res, err
	}
	gRM, stRM := core.BuildOverlay(g, core.BuildOptions{Removal: true}, rng.New(seed))
	res.RemovedEdges = stRM.Removed
	res.PhiRM, _, err = spectral.ExactConductance(gRM)
	if err != nil {
		return res, err
	}
	gBoth, stBoth := core.BuildOverlay(g, core.BuildOptions{Removal: true, Replacement: true}, rng.New(seed))
	res.Replacements = stBoth.Replacements
	res.PhiBoth, _, err = spectral.ExactConductance(gBoth)
	if err != nil {
		return res, err
	}

	res.Coeff0 = spectral.PaperMixingCoefficient(res.Phi0)
	res.CoeffRM = spectral.PaperMixingCoefficient(res.PhiRM)
	res.CoeffBoth = spectral.PaperMixingCoefficient(res.PhiBoth)

	if res.Mixing0, err = spectral.GraphMixingTime(g); err != nil {
		return res, err
	}
	if res.MixingRM, err = spectral.GraphMixingTime(gRM); err != nil {
		return res, err
	}
	if res.MixingBoth, err = spectral.GraphMixingTime(gBoth); err != nil {
		return res, err
	}
	return res, nil
}

// Render prints the paper-vs-measured trail.
func (r RunningExampleResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Barbell running example: %d nodes, %d edges (paper: 22, 111)\n", r.Nodes, r.Edges)
	fmt.Fprintf(w, "Rewiring: %d removals, %d replacements\n\n", r.RemovedEdges, r.Replacements)
	tab := &Table{Header: []string{"stage", "Φ measured", "Φ paper", "ln(100)/Φ²", "coeff paper", "SLEM mixing"}}
	tab.AddRow("G (original)", f4(r.Phi0), "0.018", f1(r.Coeff0), "14212.3", f1(r.Mixing0))
	tab.AddRow("G* (removal)", f4(r.PhiRM), "0.053", f1(r.CoeffRM), "1638.3", f1(r.MixingRM))
	tab.AddRow("G** (both)", f4(r.PhiBoth), "0.105", f1(r.CoeffBoth), "416.6", f1(r.MixingBoth))
	tab.Render(w)
	fmt.Fprintf(w, "\nBound reduction: removal %.0f%% (paper 89%%), removal+replacement %.0f%% (paper 97%%)\n",
		100*(1-r.CoeffRM/r.Coeff0), 100*(1-r.CoeffBoth/r.Coeff0))
}
