package exp

import "testing"

// TestSteadyStateWalkZeroAlloc is the allocation gate for the walk inner
// loop: once the cache is warm, a step must not allocate — not 8 bytes, not
// one interface box. It asserts on SteadyStateAllocs, the exact measurement
// the bench artifact gates (testing.AllocsPerRun rounds mallocs/runs down,
// so a handful of stray allocations per thousand steps would slip past it).
func TestSteadyStateWalkZeroAlloc(t *testing.T) {
	row := SteadyStateAllocs(SmallDatasets()[0], 1)
	if row.SRW != 0 {
		t.Errorf("SRW steady-state step allocates %.4f times/op; want 0", row.SRW)
	}
	if row.MTO != 0 {
		t.Errorf("MTO non-mutating step allocates %.4f times/op; want 0", row.MTO)
	}
}

// TestSteadyStateAllocsSeedIndependent re-measures at a different seed: the
// zero-allocation contract is a property of the code path, not of one lucky
// trajectory.
func TestSteadyStateAllocsSeedIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate measurement at a second seed")
	}
	row := SteadyStateAllocs(SmallDatasets()[0], 7)
	if row.SRW != 0 || row.MTO != 0 {
		t.Errorf("steady-state allocations at seed 7: SRW=%.4f MTO=%.4f; want 0, 0", row.SRW, row.MTO)
	}
}
