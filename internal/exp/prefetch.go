package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"rewire/internal/core"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// Prefetch strategy names accepted by PrefetchExpConfig.Strategies and the
// mto-bench -prefetch flag.
const (
	PrefetchNone     = "none"
	PrefetchNextHop  = "nexthop"
	PrefetchFrontier = "frontier"
)

// PrefetchExpConfig controls the prefetch-scaling measurement: the same
// fixed-seed workloads run once per strategy, so every wall-clock difference
// is attributable to speculation — trajectories and unique-query bills are
// identical by construction (speculative responses are invisible until
// demanded).
type PrefetchExpConfig struct {
	// K is the SRW fleet size (partitioned budget, so runs are
	// deterministic).
	K int
	// Samples is the fleet's total sample budget.
	Samples int
	// MTOSteps is the single-walker MTO workload length.
	MTOSteps int
	// Latency is the real (goroutine-blocking) round-trip per unique query.
	Latency time.Duration
	// Workers / Depth / Queue configure the client's prefetch pool.
	Workers int
	Depth   int
	Queue   int
	// TopK is the frontier strategy's width.
	TopK int
	// Strategies restricts the fleet rows (nil = all three).
	Strategies []string
}

// DefaultPrefetchExpConfig measures at a budget large enough for stable
// timings with a 1ms simulated round-trip.
func DefaultPrefetchExpConfig() PrefetchExpConfig {
	return PrefetchExpConfig{
		K: 4, Samples: 40000, MTOSteps: 8000, Latency: time.Millisecond,
		Workers: 32, Depth: 2, Queue: 8192, TopK: 8,
	}
}

// QuickPrefetchExpConfig is the reduced-scale variant for smoke runs.
func QuickPrefetchExpConfig() PrefetchExpConfig {
	return PrefetchExpConfig{
		K: 4, Samples: 4000, MTOSteps: 1500, Latency: 200 * time.Microsecond,
		Workers: 32, Depth: 2, Queue: 8192, TopK: 8,
	}
}

// PrefetchRow is one (workload, strategy) measurement.
type PrefetchRow struct {
	Workload string
	Strategy string
	Wall     time.Duration
	// Speedup is wall-clock relative to the same workload's no-prefetch row.
	Speedup float64
	// Unique is the paper's cost metric — identical across strategies.
	Unique int64
	// ServiceQueries counts every provider round-trip, speculative included.
	ServiceQueries int64
	Stats          osn.PrefetchStats
}

// PrefetchResult collects all rows for one dataset.
type PrefetchResult struct {
	Dataset    string
	Cfg        PrefetchExpConfig
	GoMaxProcs int
	Rows       []PrefetchRow
}

// fleetStrategy builds the per-member Prefetcher factory for a named
// strategy (nil for none).
func fleetStrategy(name string, client *osn.Client, topK int) func() walk.Prefetcher {
	switch name {
	case PrefetchNextHop:
		return func() walk.Prefetcher { return walk.NewNextHop(client) }
	case PrefetchFrontier:
		return func() walk.Prefetcher { return walk.NewFrontier(client, topK) }
	default:
		return nil
	}
}

// prefetchPool derives the pool config for one run.
func (cfg PrefetchExpConfig) pool() osn.PrefetchConfig {
	return osn.PrefetchConfig{Workers: cfg.Workers, Depth: cfg.Depth, Queue: cfg.Queue}
}

// RunPrefetchFleet measures one SRW-fleet strategy row.
func RunPrefetchFleet(ds Dataset, cfg PrefetchExpConfig, strategy string, seed uint64) PrefetchRow {
	svc := osn.NewService(ds.Graph, nil, osn.Config{RealLatency: cfg.Latency})
	var client *osn.Client
	if strategy == PrefetchNone {
		client = osn.NewClient(svc)
	} else {
		client = osn.NewPrefetchingClient(svc, cfg.pool())
	}
	starts := core.SpreadStarts(cfg.K, ds.Graph.NumNodes(), rng.New(seed))
	fleet := walk.NewFleetSimple(client, starts, rng.New(seed+1))
	if mk := fleetStrategy(strategy, client, cfg.TopK); mk != nil {
		fleet = fleet.Prefetched(mk)
	}
	t0 := time.Now()
	fleet.SamplesPartitioned(cfg.Samples)
	wall := time.Since(t0)
	client.StopPrefetch()
	return PrefetchRow{
		Workload:       fmt.Sprintf("SRW fleet k=%d", cfg.K),
		Strategy:       strategy,
		Wall:           wall,
		Unique:         client.UniqueQueries(),
		ServiceQueries: svc.TotalQueries(),
		Stats:          client.PrefetchStats(),
	}
}

// RunPrefetchMTO measures the single-walker MTO workload with or without
// pivot-candidate prefetch.
func RunPrefetchMTO(ds Dataset, cfg PrefetchExpConfig, prefetch bool, seed uint64) PrefetchRow {
	svc := osn.NewService(ds.Graph, nil, osn.Config{RealLatency: cfg.Latency})
	var client *osn.Client
	strategy := PrefetchNone
	sCfg := core.DefaultConfig()
	if prefetch {
		client = osn.NewPrefetchingClient(svc, cfg.pool())
		sCfg.Prefetch = true
		strategy = "pivot"
	} else {
		client = osn.NewClient(svc)
	}
	start := graph.NodeID(rng.New(seed).Intn(ds.Graph.NumNodes()))
	s := core.NewSampler(client, start, sCfg, rng.New(seed+1))
	t0 := time.Now()
	walk.Run(s, cfg.MTOSteps)
	wall := time.Since(t0)
	client.StopPrefetch()
	return PrefetchRow{
		Workload:       "MTO single",
		Strategy:       strategy,
		Wall:           wall,
		Unique:         client.UniqueQueries(),
		ServiceQueries: svc.TotalQueries(),
		Stats:          client.PrefetchStats(),
	}
}

// PrefetchScaling measures every configured strategy against its
// no-prefetch reference on one dataset.
func PrefetchScaling(ds Dataset, cfg PrefetchExpConfig, seed uint64) *PrefetchResult {
	res := &PrefetchResult{Dataset: ds.Name, Cfg: cfg, GoMaxProcs: runtime.GOMAXPROCS(0)}
	strategies := cfg.Strategies
	if strategies == nil {
		strategies = []string{PrefetchNone, PrefetchNextHop, PrefetchFrontier}
	}
	var fleetRef time.Duration
	for _, st := range strategies {
		row := RunPrefetchFleet(ds, cfg, st, seed)
		if st == PrefetchNone {
			fleetRef = row.Wall
		}
		if fleetRef > 0 && row.Wall > 0 {
			row.Speedup = float64(fleetRef) / float64(row.Wall)
		}
		res.Rows = append(res.Rows, row)
	}
	mtoOff := RunPrefetchMTO(ds, cfg, false, seed)
	mtoOff.Speedup = 1
	mtoOn := RunPrefetchMTO(ds, cfg, true, seed)
	if mtoOn.Wall > 0 {
		mtoOn.Speedup = float64(mtoOff.Wall) / float64(mtoOn.Wall)
	}
	res.Rows = append(res.Rows, mtoOff, mtoOn)
	return res
}

// Render writes the paper-style aligned table.
func (r *PrefetchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "dataset: %s, fleet k=%d × %d samples, MTO × %d steps, %v round-trip, pool %d workers depth %d, GOMAXPROCS=%d\n\n",
		r.Dataset, r.Cfg.K, r.Cfg.Samples, r.Cfg.MTOSteps, r.Cfg.Latency,
		r.Cfg.Workers, r.Cfg.Depth, r.GoMaxProcs)
	t := &Table{Header: []string{"workload", "strategy", "wall", "speedup", "unique queries", "service queries", "prefetched", "dropped", "unused"}}
	for _, row := range r.Rows {
		t.AddRow(
			row.Workload,
			row.Strategy,
			row.Wall.Round(time.Millisecond).String(),
			f2(row.Speedup)+"x",
			itoa(row.Unique),
			itoa(row.ServiceQueries),
			itoa(row.Stats.Fetched),
			itoa(row.Stats.Dropped),
			itoa(row.Stats.Unused),
		)
	}
	t.Render(w)
}
