package exp

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"time"

	"rewire"
	"rewire/internal/httpsrc"
)

// BatchingConfig controls the demand-coalescing measurement: a k-walker SRW
// fleet sampling over a real HTTP provider served in-process with Serialize
// on — the server admits one request at a time and each occupies it for
// Latency, so wall-clock is (round-trips × Latency) whatever the client's
// parallelism. That makes the batched-vs-unbatched ratio a direct readout of
// how many round-trips coalescing removed: machine-portable, like every
// latency-dominated ratio the bench gate pins.
//
// Budgets are partitioned per walker, so trajectories — and the unique-query
// bill — are exact functions of the seed. Coalescing must not change them:
// the same fetches ride fewer wires, which is the whole point and the
// invariant the conformance suite proves.
type BatchingConfig struct {
	// K is the fleet size.
	K int
	// Samples is the total sample budget, split evenly across walkers.
	Samples int
	// Latency is the serialized provider's per-request service time.
	Latency time.Duration
	// MaxBatch caps ids per coalesced round-trip.
	MaxBatch int
	// Waits lists the coalescing windows to measure; 0 means batching off.
	Waits []time.Duration
}

// DefaultBatchingConfig measures at a budget big enough for stable ratios.
func DefaultBatchingConfig() BatchingConfig {
	return BatchingConfig{
		K: 16, Samples: 8000, Latency: 500 * time.Microsecond, MaxBatch: 64,
		Waits: []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond},
	}
}

// QuickBatchingConfig is the reduced-scale variant for smoke runs and the CI
// suite.
func QuickBatchingConfig() BatchingConfig {
	return BatchingConfig{
		K: 16, Samples: 2000, Latency: 300 * time.Microsecond, MaxBatch: 64,
		Waits: []time.Duration{0, 2 * time.Millisecond},
	}
}

// BatchingRow is one (coalescing window) measurement.
type BatchingRow struct {
	// Wait is the coalescing window (0 = batching off).
	Wait time.Duration
	Wall time.Duration
	// Unique is the deterministic unique-query bill (identical across
	// windows for a fixed seed — coalescing must never change behavior).
	Unique int64
	// RoundTrips is how many fetches reached the provider stack; IDs is how
	// many ids they carried in total (IDs/RoundTrips = mean batch size).
	RoundTrips int64
	IDs        int64
	// Speedup is wall-clock relative to the unbatched run.
	Speedup float64
}

// RunHTTPFleet measures one row: a k-walker SRW fleet with partitioned
// budgets sampling through the full public stack — HTTP driver, metrics
// middleware, optionally the coalescing middleware — against a serialized
// in-process provider.
func RunHTTPFleet(ctx context.Context, ds Dataset, cfg BatchingConfig, batchWait time.Duration, seed uint64) (BatchingRow, error) {
	srv := httptest.NewServer(httpsrc.Handler(ds.Graph, httpsrc.ServerOptions{
		Latency:   cfg.Latency,
		Serialize: true,
	}))
	defer srv.Close()

	be, err := rewire.OpenBackend(ctx, srv.URL+"?timeout=30s&backoff=1ms&max_backoff=10ms")
	if err != nil {
		return BatchingRow{}, err
	}
	metrics := &rewire.BackendMetrics{}
	wrapped := rewire.WithMetrics(be, metrics)
	if batchWait > 0 {
		wrapped = rewire.WithBatching(wrapped, rewire.BatchingOptions{
			MaxBatch: cfg.MaxBatch,
			MaxWait:  batchWait,
		})
	}
	prov := rewire.BackendSource(wrapped)
	defer prov.Close()

	sess, err := rewire.NewSession(prov,
		rewire.WithAlgorithm(rewire.AlgSRW),
		rewire.WithFleet(cfg.K),
		rewire.WithSeed(seed),
		rewire.WithPartitionedBudget(true),
	)
	if err != nil {
		return BatchingRow{}, err
	}
	t0 := time.Now()
	if _, err := sess.Samples(ctx, cfg.Samples); err != nil {
		return BatchingRow{}, err
	}
	wall := time.Since(t0)
	snap := metrics.Snapshot()
	return BatchingRow{
		Wait:       batchWait,
		Wall:       wall,
		Unique:     prov.UniqueQueries(),
		RoundTrips: snap.Fetches,
		IDs:        snap.IDs,
	}, nil
}

// BatchingResult collects all rows for one dataset.
type BatchingResult struct {
	Dataset    string
	Cfg        BatchingConfig
	GoMaxProcs int
	Rows       []BatchingRow
}

// BatchingScaling measures every configured coalescing window. Rows carry
// Speedup relative to the unbatched (Wait=0) run.
func BatchingScaling(ctx context.Context, ds Dataset, cfg BatchingConfig, seed uint64) (*BatchingResult, error) {
	res := &BatchingResult{Dataset: ds.Name, Cfg: cfg, GoMaxProcs: runtime.GOMAXPROCS(0)}
	var ref time.Duration
	for _, wait := range cfg.Waits {
		row, err := RunHTTPFleet(ctx, ds, cfg, wait, seed)
		if err != nil {
			return res, err
		}
		if wait == 0 {
			ref = row.Wall
			row.Speedup = 1
		} else if ref > 0 && row.Wall > 0 {
			row.Speedup = float64(ref) / float64(row.Wall)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the paper-style aligned table.
func (r *BatchingResult) Render(w io.Writer) {
	fmt.Fprintf(w, "dataset: %s, k=%d fleet, %d samples (partitioned), serialized HTTP provider at %s/request, GOMAXPROCS=%d\n",
		r.Dataset, r.Cfg.K, r.Cfg.Samples, r.Cfg.Latency, r.GoMaxProcs)
	fmt.Fprintf(w, "identical unique-query bills across rows: coalescing repacks the same demand onto fewer wires\n\n")
	t := &Table{Header: []string{"window", "wall", "round-trips", "ids/trip", "speedup", "unique queries"}}
	for _, row := range r.Rows {
		window := "off"
		if row.Wait > 0 {
			window = row.Wait.String()
		}
		mean := "-"
		if row.RoundTrips > 0 {
			mean = fmt.Sprintf("%.2f", float64(row.IDs)/float64(row.RoundTrips))
		}
		t.AddRow(
			window,
			row.Wall.Round(time.Millisecond).String(),
			itoa(row.RoundTrips),
			mean,
			f2(row.Speedup)+"x",
			itoa(row.Unique),
		)
	}
	t.Render(w)
}
