package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"rewire/internal/core"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// FleetConfig controls the fleet-scaling measurement: for each k it runs the
// identical shared-overlay MTO sampling workload twice — sequentially
// round-robin (walk.Parallel, one goroutine) and concurrently (walk.Fleet,
// k goroutines) — and reports wall-clock time, speedup, and query cost.
type FleetConfig struct {
	// Ks are the fleet sizes to measure.
	Ks []int
	// Samples is the total sample budget shared by each run's members.
	Samples int
	// Latency is the real (goroutine-blocking) round-trip time per unique
	// query, the quantity a concurrent fleet overlaps. 0 measures pure CPU.
	Latency time.Duration
	// Sampler is the MTO configuration every member runs.
	Sampler core.Config
}

// DefaultFleetConfig measures k in {1, 4, 16} at a budget large enough for
// stable timings, with a 1ms simulated-network round-trip per unique query.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{Ks: []int{1, 4, 16}, Samples: 200000, Latency: time.Millisecond, Sampler: core.DefaultConfig()}
}

// QuickFleetConfig is the reduced-scale variant for smoke runs.
func QuickFleetConfig() FleetConfig {
	return FleetConfig{Ks: []int{1, 4, 16}, Samples: 10000, Latency: 200 * time.Microsecond, Sampler: core.DefaultConfig()}
}

// FleetRow is one fleet size's measurements.
type FleetRow struct {
	K             int
	SeqWall       time.Duration
	FleetWall     time.Duration
	Speedup       float64
	SeqQueries    int64
	FleetQueries  int64
	FleetRemovals int
}

// FleetResult collects all rows for one dataset.
type FleetResult struct {
	Dataset    string
	Samples    int
	GoMaxProcs int
	Rows       []FleetRow
}

// FleetScaling measures sequential-vs-concurrent fleet sampling on one
// dataset. Each mode gets a fresh service and client so the budgets are
// independent; starts are identical across modes so both explore from the
// same seeds.
func FleetScaling(ds Dataset, cfg FleetConfig, seed uint64) *FleetResult {
	res := &FleetResult{Dataset: ds.Name, Samples: cfg.Samples, GoMaxProcs: runtime.GOMAXPROCS(0)}
	svcCfg := osn.Config{RealLatency: cfg.Latency}
	for _, k := range cfg.Ks {
		starts := core.SpreadStarts(k, ds.Graph.NumNodes(), rng.New(seed))

		svcSeq := osn.NewService(ds.Graph, nil, svcCfg)
		clientSeq := osn.NewClient(svcSeq)
		p, _ := core.NewParallelSamplers(clientSeq, starts, cfg.Sampler, rng.New(seed+1))
		t0 := time.Now()
		walk.Run(p, cfg.Samples)
		seqWall := time.Since(t0)

		svcFl := osn.NewService(ds.Graph, nil, svcCfg)
		clientFl := osn.NewClient(svcFl)
		f, ov := core.NewFleet(clientFl, starts, cfg.Sampler, rng.New(seed+1))
		t1 := time.Now()
		f.Samples(cfg.Samples)
		fleetWall := time.Since(t1)

		row := FleetRow{
			K:             k,
			SeqWall:       seqWall,
			FleetWall:     fleetWall,
			SeqQueries:    clientSeq.UniqueQueries(),
			FleetQueries:  clientFl.UniqueQueries(),
			FleetRemovals: ov.RemovedCount(),
		}
		if fleetWall > 0 {
			row.Speedup = float64(seqWall) / float64(fleetWall)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render writes the paper-style aligned table.
func (r *FleetResult) Render(w io.Writer) {
	fmt.Fprintf(w, "dataset: %s, %d samples per run, GOMAXPROCS=%d\n\n", r.Dataset, r.Samples, r.GoMaxProcs)
	t := &Table{Header: []string{"k", "seq wall", "fleet wall", "speedup", "seq queries", "fleet queries", "fleet removals"}}
	for _, row := range r.Rows {
		t.AddRow(
			itoa(int64(row.K)),
			row.SeqWall.Round(time.Millisecond).String(),
			row.FleetWall.Round(time.Millisecond).String(),
			f2(row.Speedup)+"x",
			itoa(row.SeqQueries),
			itoa(row.FleetQueries),
			itoa(int64(row.FleetRemovals)),
		)
	}
	t.Render(w)
}
