package exp

import (
	"fmt"
	"io"

	"rewire/internal/core"
	"rewire/internal/diag"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/stats"
	"rewire/internal/walk"
)

// Fig8Config controls the long-run bias measurement (paper Fig 8: query
// cost and symmetric KL divergence of SRW vs MTO over the three local
// datasets, 20,000 samples each, Geweke threshold 0.1).
type Fig8Config struct {
	// Samples per sampler after burn-in (paper: 20000).
	Samples int
	// GewekeThreshold for burn-in (paper: 0.1; swept by Fig 9).
	GewekeThreshold float64
	// MaxBurnIn caps burn-in steps.
	MaxBurnIn int
}

// DefaultFig8Config mirrors the paper.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{Samples: 20000, GewekeThreshold: 0.1, MaxBurnIn: 50000}
}

// QuickFig8Config is the reduced-scale variant.
func QuickFig8Config() Fig8Config {
	return Fig8Config{Samples: 5000, GewekeThreshold: 0.3, MaxBurnIn: 5000}
}

// Fig8Cell is one (dataset, algorithm) measurement.
type Fig8Cell struct {
	Dataset   string
	Algorithm string
	KL        float64
	QueryCost int64
	BurnIn    int
}

// Fig8Result collects all cells.
type Fig8Result struct {
	Cells []Fig8Cell
}

// measureBias runs one sampler for cfg.Samples post-burn-in steps and
// measures the symmetric KL divergence between the empirical per-node
// sampling distribution and the sampler's ideal stationary distribution —
// degree-proportional for SRW, overlay-degree-proportional for MTO (each
// sampler is held to its own target, as in §V-A.3). Returns (KL, cost,
// burn-in steps).
func measureBias(ds Dataset, alg string, cfg Fig8Config, r *rng.Rand) (Fig8Cell, error) {
	svc := osn.NewService(ds.Graph, nil, osn.Config{})
	client := osn.NewClient(svc)
	start := graph.NodeID(r.Intn(ds.Graph.NumNodes()))
	walker, _, err := NewWalker(alg, client, client.NumUsers(), start, r)
	if err != nil {
		return Fig8Cell{}, err
	}
	// Burn-in on the degree trace.
	monitor := diag.NewGeweke(cfg.GewekeThreshold, 200)
	burn := 0
	for ; burn < cfg.MaxBurnIn; burn++ {
		v := walker.Step()
		monitor.Observe(float64(client.Degree(v)))
		if burn%25 == 24 && monitor.Converged() {
			break
		}
	}
	// Sampling phase: count visits.
	n := ds.Graph.NumNodes()
	hist := stats.NewCountHistogram(n)
	for i := 0; i < cfg.Samples; i++ {
		hist.Observe(int(walker.Step()))
	}
	cost := client.UniqueQueries() // capture before any measurement reads
	// Ideal stationary distribution: degree-proportional for the baselines,
	// overlay-degree-proportional for MTO — reconstructed from the local
	// graph plus the overlay's edge deltas so no extra queries are spent.
	ideal := make([]float64, n)
	for v := 0; v < n; v++ {
		ideal[v] = float64(ds.Graph.Degree(graph.NodeID(v)))
	}
	if s, ok := walker.(*core.Sampler); ok {
		for _, k := range s.Overlay().RemovedEdges() {
			u, v := k.Nodes()
			ideal[u]--
			ideal[v]--
		}
		for _, k := range s.Overlay().AddedEdges() {
			u, v := k.Nodes()
			ideal[u]++
			ideal[v]++
		}
	}
	// Finite samples cannot hit every node; smooth with mass 1/(10·samples).
	eps := 1.0 / (10 * float64(cfg.Samples))
	kl, err := stats.SymmetricKL(ideal, hist.Distribution(), eps)
	if err != nil {
		return Fig8Cell{}, err
	}
	return Fig8Cell{
		Dataset:   ds.Name,
		Algorithm: alg,
		KL:        kl,
		QueryCost: cost,
		BurnIn:    burn,
	}, nil
}

// Fig8 runs SRW vs MTO over the given datasets.
func Fig8(datasets []Dataset, cfg Fig8Config, seed uint64) (Fig8Result, error) {
	master := rng.New(seed)
	var res Fig8Result
	for _, ds := range datasets {
		for _, alg := range []string{AlgSRW, AlgMTO} {
			cell, err := measureBias(ds, alg, cfg, master.Split())
			if err != nil {
				return res, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Render prints the KL/cost comparison.
func (r Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 8 — symmetric KL divergence and unique-query cost, SRW vs MTO")
	tab := &Table{Header: []string{"dataset", "algorithm", "KL divergence", "query cost", "burn-in steps"}}
	for _, c := range r.Cells {
		tab.AddRow(c.Dataset, c.Algorithm, f4(c.KL), itoa(c.QueryCost), itoa(int64(c.BurnIn)))
	}
	tab.Render(w)
}

// Fig9Config controls the Geweke-threshold sweep on Slashdot B (paper
// Fig 9: thresholds 0.1–0.8, reporting KL divergence and query cost for SRW
// and MTO).
type Fig9Config struct {
	Thresholds []float64
	Samples    int
	MaxBurnIn  int
}

// DefaultFig9Config mirrors the paper.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Thresholds: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		Samples:    20000,
		MaxBurnIn:  50000,
	}
}

// QuickFig9Config is the reduced-scale variant.
func QuickFig9Config() Fig9Config {
	return Fig9Config{Thresholds: []float64{0.2, 0.5, 0.8}, Samples: 4000, MaxBurnIn: 4000}
}

// Fig9Row is one threshold's measurements for both samplers.
type Fig9Row struct {
	Threshold float64
	KLSRW     float64
	KLMTO     float64
	CostSRW   int64
	CostMTO   int64
}

// Fig9Result is the sweep.
type Fig9Result struct {
	Dataset string
	Rows    []Fig9Row
}

// Fig9 sweeps the Geweke threshold on one dataset (the paper uses
// Slashdot B).
func Fig9(ds Dataset, cfg Fig9Config, seed uint64) (Fig9Result, error) {
	master := rng.New(seed)
	res := Fig9Result{Dataset: ds.Name}
	for _, th := range cfg.Thresholds {
		f8 := Fig8Config{Samples: cfg.Samples, GewekeThreshold: th, MaxBurnIn: cfg.MaxBurnIn}
		srw, err := measureBias(ds, AlgSRW, f8, master.Split())
		if err != nil {
			return res, err
		}
		mto, err := measureBias(ds, AlgMTO, f8, master.Split())
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Fig9Row{
			Threshold: th,
			KLSRW:     srw.KL, KLMTO: mto.KL,
			CostSRW: srw.QueryCost, CostMTO: mto.QueryCost,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r Fig9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 9 — Geweke threshold sweep on %s\n", r.Dataset)
	tab := &Table{Header: []string{"threshold", "KL SRW", "KL MTO", "cost SRW", "cost MTO"}}
	for _, row := range r.Rows {
		tab.AddRow(f2(row.Threshold), f4(row.KLSRW), f4(row.KLMTO),
			itoa(row.CostSRW), itoa(row.CostMTO))
	}
	tab.Render(w)
}

var _ walk.Walker = (*core.Sampler)(nil)
