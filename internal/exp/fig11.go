package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"rewire/internal/diag"
	"rewire/internal/estimate"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
)

// Fig11Config controls the Google Plus experiment (paper Fig 11): walks
// against a rate-limited live-style interface, (a) the estimated-average-
// degree trace vs query cost, and (b,c) the query cost to settle below a
// relative-error grid for average degree and average self-description
// length. The paper's two-step protocol is followed: each sampler first
// runs to Geweke convergence and its final estimate becomes the presumptive
// truth ("converged value"); error curves are then measured against it. Our
// synthetic stand-in also has exact ground truth, so both references are
// reported.
type Fig11Config struct {
	Runs            int
	Samples         int
	ErrorGrid       []float64
	GewekeThreshold float64
	MaxBurnIn       int
	TracePoints     int
	// RateLimit applies the provider quota to the simulated interface.
	RateLimit osn.Config
}

// DefaultFig11Config mirrors the paper's setup with Facebook-style limits
// (Google's quota was "the most generous"; the limiter only affects
// simulated wall-clock, not unique-query counts).
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		Runs:            10,
		Samples:         4000,
		ErrorGrid:       []float64{0.50, 0.40, 0.30, 0.20, 0.15, 0.10},
		GewekeThreshold: diag.DefaultThreshold,
		MaxBurnIn:       30000,
		TracePoints:     60,
		RateLimit:       osn.FacebookLimits(),
	}
}

// QuickFig11Config is the reduced-scale variant.
func QuickFig11Config() Fig11Config {
	return Fig11Config{
		Runs:            3,
		Samples:         1200,
		ErrorGrid:       []float64{0.50, 0.30, 0.15},
		GewekeThreshold: 0.3,
		MaxBurnIn:       4000,
		TracePoints:     30,
		RateLimit:       osn.Config{PerQueryLatency: 50 * time.Millisecond},
	}
}

// Fig11Series is one (algorithm, aggregate) error curve.
type Fig11Series struct {
	Algorithm      string
	Aggregate      string
	ConvergedValue float64 // the paper's presumptive ground truth
	ExactTruth     float64 // available because the dataset is synthetic
	MeanCost       []float64
	Settled        []int
}

// Fig11Result is the figure's data.
type Fig11Result struct {
	Nodes, Edges int
	ErrorGrid    []float64
	// Trace is Fig 11(a): (cost, estimated average degree) points for SRW
	// and MTO from one representative run each.
	Trace map[string]*estimate.Trajectory
	// Series covers Fig 11(b) (average degree) and (c) (self-description
	// length).
	Series []Fig11Series
	// SimulatedHours reports rate-limited wall-clock per algorithm (the
	// cost the paper's quota discussion is about).
	SimulatedHours map[string]float64
}

// Fig11 runs the Google Plus experiment at the requested scale.
func Fig11(full bool, cfg Fig11Config, seed uint64) (Fig11Result, error) {
	g := GooglePlusGraph(full)
	master := rng.New(seed)
	attrs := osn.SynthesizeAttributes(g, master.Split())
	res := Fig11Result{
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		ErrorGrid:      cfg.ErrorGrid,
		Trace:          map[string]*estimate.Trajectory{},
		SimulatedHours: map[string]float64{},
	}

	aggs := []estimate.Aggregate{estimate.AvgDegree(), estimate.AvgDescLen()}
	exact := map[string]float64{
		aggs[0].Name: estimate.GroundTruthDegree(g),
		aggs[1].Name: attrs.MeanDescLen(),
	}

	for _, alg := range []string{AlgSRW, AlgMTO} {
		for _, agg := range aggs {
			trajectories := make([]*estimate.Trajectory, 0, cfg.Runs)
			var convergedSum float64
			var simSeconds float64
			for run := 0; run < cfg.Runs; run++ {
				r := master.Split()
				svc := osn.NewService(g, attrs, cfg.RateLimit)
				client := osn.NewClient(svc)
				start := graph.NodeID(r.Intn(g.NumNodes()))
				walker, weighter, err := NewWalker(alg, client, client.NumUsers(), start, r)
				if err != nil {
					return res, err
				}
				info := func(v graph.NodeID) (int, estimate.Attrs) {
					resp, err := client.Query(v)
					if err != nil {
						return 0, estimate.Attrs{}
					}
					return resp.Degree(), estimate.Attrs{
						Age:     resp.Attrs.Age,
						DescLen: resp.Attrs.DescLen,
						Posts:   resp.Attrs.Posts,
					}
				}
				sr := estimate.RunSession(walker, weighter, agg, info, client.UniqueQueries,
					estimate.SessionConfig{
						BurnIn:         diag.NewGeweke(cfg.GewekeThreshold, 200),
						MaxBurnInSteps: cfg.MaxBurnIn,
						Samples:        cfg.Samples,
						RecordEvery:    maxInt(1, cfg.Samples/cfg.TracePoints),
					})
				trajectories = append(trajectories, sr.Trajectory)
				convergedSum += sr.Estimate
				simSeconds += svc.SimulatedElapsed().Seconds()
				if run == 0 && agg.Name == aggs[0].Name {
					res.Trace[alg] = sr.Trajectory
				}
			}
			converged := convergedSum / float64(cfg.Runs)
			series := Fig11Series{
				Algorithm:      alg,
				Aggregate:      agg.Name,
				ConvergedValue: converged,
				ExactTruth:     exact[agg.Name],
			}
			for _, e := range cfg.ErrorGrid {
				mean, settled := estimate.MeanCostToReach(trajectories, converged, e)
				series.MeanCost = append(series.MeanCost, mean)
				series.Settled = append(series.Settled, settled)
			}
			res.Series = append(res.Series, series)
			res.SimulatedHours[alg] += simSeconds / 3600 / float64(cfg.Runs)
		}
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render prints the trace summary and error curves.
func (r Fig11Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 11 — Google Plus stand-in: %d nodes, %d edges\n\n", r.Nodes, r.Edges)
	fmt.Fprintln(w, "(a) estimated average degree vs query cost (first run per algorithm):")
	for _, alg := range []string{AlgSRW, AlgMTO} {
		tr := r.Trace[alg]
		if tr == nil || len(tr.Points) == 0 {
			continue
		}
		step := maxInt(1, len(tr.Points)/6)
		fmt.Fprintf(w, "  %-4s:", alg)
		for i := 0; i < len(tr.Points); i += step {
			p := tr.Points[i]
			fmt.Fprintf(w, "  (%d, %.2f)", p.Cost, p.Estimate)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n(b,c) query cost to settle below relative error (vs converged value):")
	header := []string{"algorithm", "aggregate", "converged", "exact"}
	for _, e := range r.ErrorGrid {
		header = append(header, fmt.Sprintf("err<=%.2f", e))
	}
	tab := &Table{Header: header}
	for _, s := range r.Series {
		row := []string{s.Algorithm, s.Aggregate, f2(s.ConvergedValue), f2(s.ExactTruth)}
		for i := range r.ErrorGrid {
			if math.IsNaN(s.MeanCost[i]) {
				row = append(row, "-")
			} else {
				row = append(row, f1(s.MeanCost[i]))
			}
		}
		tab.AddRow(row...)
	}
	tab.Render(w)
	fmt.Fprintln(w, "\nsimulated rate-limited hours per run (degree+desc sessions):")
	for alg, h := range r.SimulatedHours {
		fmt.Fprintf(w, "  %-4s %.2f h\n", alg, h)
	}
}
