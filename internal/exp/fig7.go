package exp

import (
	"fmt"
	"io"
	"math"

	"rewire/internal/diag"
	"rewire/internal/estimate"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
)

// Fig7Config controls the bias-vs-query-cost experiment (paper Fig 7: query
// cost needed to reach a given relative error when estimating the average
// degree, for SRW / MTO / MHRW / RJ).
type Fig7Config struct {
	// Runs is the number of independent walks averaged per point (paper: 20).
	Runs int
	// Samples drawn per run after burn-in.
	Samples int
	// ErrorGrid lists the relative-error thresholds (paper: 0.10–0.20 for
	// Slashdot, 0.10–0.30 for Epinions).
	ErrorGrid []float64
	// GewekeThreshold for the burn-in monitor (paper default 0.1).
	GewekeThreshold float64
	// MaxBurnIn caps burn-in steps per run.
	MaxBurnIn int
	// Algorithms to compare; defaults to the paper's four.
	Algorithms []string
}

// DefaultFig7Config mirrors the paper at full scale.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Runs:            20,
		Samples:         4000,
		ErrorGrid:       []float64{0.20, 0.18, 0.16, 0.14, 0.12, 0.10},
		GewekeThreshold: diag.DefaultThreshold,
		MaxBurnIn:       30000,
		Algorithms:      PaperAlgorithms(),
	}
}

// QuickFig7Config is a reduced-scale variant for tests and benches.
func QuickFig7Config() Fig7Config {
	return Fig7Config{
		Runs:            4,
		Samples:         1200,
		ErrorGrid:       []float64{0.20, 0.15, 0.10},
		GewekeThreshold: 0.3,
		MaxBurnIn:       4000,
		Algorithms:      PaperAlgorithms(),
	}
}

// Fig7Series is one algorithm's cost-at-error curve.
type Fig7Series struct {
	Algorithm string
	// MeanCost[i] is the average query cost needed to settle below
	// ErrorGrid[i]; NaN when no run settled.
	MeanCost []float64
	// Settled[i] counts runs that settled below ErrorGrid[i].
	Settled []int
	// MeanFinalCost is the average total cost of a full run.
	MeanFinalCost float64
}

// Fig7Result is the full figure for one dataset.
type Fig7Result struct {
	Dataset   string
	Truth     float64
	ErrorGrid []float64
	Series    []Fig7Series
}

// Fig7 runs the experiment on one dataset.
func Fig7(ds Dataset, cfg Fig7Config, seed uint64) (Fig7Result, error) {
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = PaperAlgorithms()
	}
	truth := estimate.GroundTruthDegree(ds.Graph)
	res := Fig7Result{Dataset: ds.Name, Truth: truth, ErrorGrid: cfg.ErrorGrid}
	master := rng.New(seed)
	for _, alg := range cfg.Algorithms {
		trajectories := make([]*estimate.Trajectory, 0, cfg.Runs)
		var costSum float64
		for run := 0; run < cfg.Runs; run++ {
			r := master.Split()
			svc := osn.NewService(ds.Graph, nil, osn.Config{})
			client := osn.NewClient(svc)
			start := graph.NodeID(r.Intn(ds.Graph.NumNodes()))
			walker, weighter, err := NewWalker(alg, client, client.NumUsers(), start, r)
			if err != nil {
				return res, err
			}
			info := func(v graph.NodeID) (int, estimate.Attrs) {
				return client.Degree(v), estimate.Attrs{}
			}
			sr := estimate.RunSession(walker, weighter, estimate.AvgDegree(), info, client.UniqueQueries,
				estimate.SessionConfig{
					BurnIn:         diag.NewGeweke(cfg.GewekeThreshold, 200),
					MaxBurnInSteps: cfg.MaxBurnIn,
					Samples:        cfg.Samples,
					RecordEvery:    10,
				})
			trajectories = append(trajectories, sr.Trajectory)
			costSum += float64(sr.FinalCost)
		}
		series := Fig7Series{Algorithm: alg, MeanFinalCost: costSum / float64(cfg.Runs)}
		for _, e := range cfg.ErrorGrid {
			mean, settled := estimate.MeanCostToReach(trajectories, truth, e)
			series.MeanCost = append(series.MeanCost, mean)
			series.Settled = append(series.Settled, settled)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render prints the cost-at-error matrix.
func (r Fig7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 7 — %s: query cost to settle below relative error (truth avg degree %.3f)\n",
		r.Dataset, r.Truth)
	header := []string{"algorithm"}
	for _, e := range r.ErrorGrid {
		header = append(header, fmt.Sprintf("err<=%.2f", e))
	}
	header = append(header, "runs settled", "mean total cost")
	tab := &Table{Header: header}
	for _, s := range r.Series {
		row := []string{s.Algorithm}
		minSettled := math.MaxInt
		for i := range r.ErrorGrid {
			if math.IsNaN(s.MeanCost[i]) {
				row = append(row, "-")
			} else {
				row = append(row, f1(s.MeanCost[i]))
			}
			if s.Settled[i] < minSettled {
				minSettled = s.Settled[i]
			}
		}
		row = append(row, itoa(int64(minSettled)), f1(s.MeanFinalCost))
		tab.AddRow(row...)
	}
	tab.Render(w)
}
