package exp

import (
	"fmt"
	"io"

	"rewire/internal/gen"
	"rewire/internal/latent"
	"rewire/internal/rng"
)

// Theorem6Config controls the §IV-B verification: the numeric removal
// probability against Monte Carlo, and the eq. (23) removable-edge bound
// against generated latent graphs.
type Theorem6Config struct {
	// MonteCarloPairs samples for P(d <= d0) (paper: "20000 points").
	MonteCarloPairs int
	// GraphNodes and GraphTrials size the empirical removable-edge check.
	GraphNodes  int
	GraphTrials int
}

// DefaultTheorem6Config mirrors the paper's simulation scale.
func DefaultTheorem6Config() Theorem6Config {
	return Theorem6Config{MonteCarloPairs: 20000, GraphNodes: 500, GraphTrials: 20}
}

// QuickTheorem6Config is the reduced-scale variant.
func QuickTheorem6Config() Theorem6Config {
	return Theorem6Config{MonteCarloPairs: 5000, GraphNodes: 150, GraphTrials: 5}
}

// Theorem6Result holds the verification numbers.
type Theorem6Result struct {
	D0          float64
	PNumeric    float64
	PMonteCarlo float64
	GainBound   float64 // paper eq. (13): 1.052

	Edges            int
	GeometricCount   int     // edges with d <= d0 (Theorem 6 certificate)
	CombinatorialCnt int     // edges passing the |N∩N| >= |N∪N|-2 test
	BoundCount       float64 // eq. (23): |E| * P
}

// Theorem6 runs the verification with the paper's parameters (r = 0.7,
// box [0,4]×[0,5], hard threshold).
func Theorem6(cfg Theorem6Config, seed uint64) (Theorem6Result, error) {
	master := rng.New(seed)
	var res Theorem6Result
	res.D0 = latent.ThresholdD0(0.7)
	var err error
	res.PNumeric, err = latent.RemovalProbability(res.D0, 4, 5)
	if err != nil {
		return res, err
	}
	res.PMonteCarlo = latent.MonteCarloRemovalProbability(res.D0, 4, 5, cfg.MonteCarloPairs, master.Split())
	res.GainBound = latent.PaperGainBound()

	for trial := 0; trial < cfg.GraphTrials; trial++ {
		g, pts, err := gen.LatentSpace(gen.PaperLatentConfig(cfg.GraphNodes), master.Split())
		if err != nil {
			return res, err
		}
		res.Edges += g.NumEdges()
		res.GeometricCount += latent.GeometricallyRemovableEdges(g, pts, res.D0)
		res.CombinatorialCnt += latent.CombinatoriallyRemovableEdges(g)
	}
	res.BoundCount, err = latent.ExpectedRemovableEdgesBound(res.Edges, 0.7, 4, 5)
	return res, err
}

// Render prints the verification.
func (r Theorem6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Theorem 6 — latent-space removal bound (r=0.7, box [0,4]x[0,5], D=2)")
	fmt.Fprintf(w, "  d0 = %.4f\n", r.D0)
	fmt.Fprintf(w, "  P(d <= d0): numeric %.4f, Monte Carlo %.4f\n", r.PNumeric, r.PMonteCarlo)
	fmt.Fprintf(w, "  conductance gain bound 1/(1-P) = %.4f (paper eq. 13: 1.052)\n", r.GainBound)
	fmt.Fprintf(w, "  edges across trials: %d\n", r.Edges)
	fmt.Fprintf(w, "  removable edges: geometric certificate %d, combinatorial certificate %d, eq.(23) bound %.1f\n",
		r.GeometricCount, r.CombinatorialCnt, r.BoundCount)
}
