package exp

import (
	"fmt"
	"io"

	"rewire/internal/core"
	"rewire/internal/gen"
	"rewire/internal/latent"
	"rewire/internal/rng"
	"rewire/internal/spectral"
)

// Fig10Config controls the latent-space mixing-time experiment (paper
// Fig 10: theoretical mixing time of the original graph, the Theorem 6
// bound, and the walk-built overlays MTO_Both / MTO_RM / MTO_RP, as the
// number of nodes grows).
type Fig10Config struct {
	// Sizes lists the node counts (paper: 50–100 in the plot, nodes
	// distributed on [0,4]×[0,5] with r = 0.7).
	Sizes []int
	// Trials averaged per size.
	Trials int
	// CoverageSteps caps the walk-to-coverage phase per trial.
	CoverageSteps int
}

// DefaultFig10Config mirrors the paper.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Sizes:         []int{50, 55, 60, 65, 70, 75},
		Trials:        20,
		CoverageSteps: 200000,
	}
}

// QuickFig10Config is the reduced-scale variant.
func QuickFig10Config() Fig10Config {
	return Fig10Config{Sizes: []int{50, 60}, Trials: 3, CoverageSteps: 50000}
}

// Fig10Row aggregates one size's mixing times (averaged over trials, on the
// giant component of each sampled latent graph).
type Fig10Row struct {
	Nodes          int // requested size
	GiantNodes     float64
	Original       float64
	TheoryBound    float64
	MTOBoth        float64
	MTORemoveOnly  float64
	MTOReplaceOnly float64
}

// Fig10Result is the figure's data.
type Fig10Result struct {
	GainBound float64 // Theorem 6 conductance-gain bound (≈1.052)
	Rows      []Fig10Row
}

// Fig10 runs the experiment. For every size and trial it samples a paper-
// configured latent graph, takes the giant component, computes SLEM mixing
// times for the original graph and for overlays extracted by running the
// three MTO variants to full node coverage (the paper's §V-A.3 procedure),
// plus the Theorem 6 theoretical series: the original mixing time shrunk by
// the conductance-gain bound squared (mixing time scales as 1/Φ², eq. 6).
func Fig10(cfg Fig10Config, seed uint64) (Fig10Result, error) {
	master := rng.New(seed)
	gain := latent.PaperGainBound()
	res := Fig10Result{GainBound: gain}
	for _, n := range cfg.Sizes {
		row := Fig10Row{Nodes: n}
		valid := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			r := master.Split()
			g0, _, err := gen.LatentSpace(gen.PaperLatentConfig(n), r)
			if err != nil {
				return res, err
			}
			g, _ := g0.LargestComponent()
			if g.NumNodes() < 4 || g.NumEdges() < 4 {
				continue // degenerate draw; sparse small graphs happen
			}
			orig, err := spectral.GraphMixingTime(g)
			if err != nil || orig == 0 {
				continue
			}
			mixOf := func(cfgMTO core.Config) (float64, error) {
				s := core.NewSampler(g, 0, cfgMTO, r.Split())
				core.WalkToCoverage(s, g.NumNodes(), cfg.CoverageSteps)
				ov := s.Overlay().Materialize(g.NumNodes())
				return spectral.GraphMixingTime(ov)
			}
			both, err := mixOf(core.DefaultConfig())
			if err != nil {
				continue
			}
			rm, err := mixOf(core.RemovalOnlyConfig())
			if err != nil {
				continue
			}
			rp, err := mixOf(core.ReplacementOnlyConfig())
			if err != nil {
				continue
			}
			row.GiantNodes += float64(g.NumNodes())
			row.Original += orig
			row.TheoryBound += orig / (gain * gain)
			row.MTOBoth += both
			row.MTORemoveOnly += rm
			row.MTOReplaceOnly += rp
			valid++
		}
		if valid == 0 {
			continue
		}
		f := float64(valid)
		row.GiantNodes /= f
		row.Original /= f
		row.TheoryBound /= f
		row.MTOBoth /= f
		row.MTORemoveOnly /= f
		row.MTOReplaceOnly /= f
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the five series.
func (r Fig10Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 10 — latent-space theoretical mixing time (Theorem 6 gain bound %.4f)\n", r.GainBound)
	tab := &Table{Header: []string{
		"nodes", "giant", "original", "theory bound", "MTO_Both", "MTO_RM", "MTO_RP",
	}}
	for _, row := range r.Rows {
		tab.AddRow(itoa(int64(row.Nodes)), f1(row.GiantNodes), f2(row.Original),
			f2(row.TheoryBound), f2(row.MTOBoth), f2(row.MTORemoveOnly), f2(row.MTOReplaceOnly))
	}
	tab.Render(w)
}
