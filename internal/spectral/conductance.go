package spectral

import (
	"errors"
	"math"
	"sort"

	"rewire/internal/graph"
)

// The conductance code implements the paper's Definition 3, which counts
// *edges touching* each side in the denominator:
//
//	Φ(G) = min_S cut(S) / min(|{e : e ∩ S ≠ ∅}|, |{e : e ∩ S̄ ≠ ∅}|)
//
// (so the 22-node barbell gives 1/56 ≈ 0.018, as printed in the paper),
// rather than the more common degree-volume denominator.

// CutStats describes one side of a cut under the paper's definition.
type CutStats struct {
	Cut          int // edges crossing the cut
	TouchingS    int // edges with at least one endpoint in S
	TouchingSbar int // edges with at least one endpoint in S̄
}

// Phi returns the paper's φ(S) ratio; +Inf for degenerate cuts.
func (c CutStats) Phi() float64 {
	den := c.TouchingS
	if c.TouchingSbar < den {
		den = c.TouchingSbar
	}
	if den == 0 {
		return math.Inf(1)
	}
	return float64(c.Cut) / float64(den)
}

// CutOf computes CutStats for the cut defined by inS, whose length must
// equal the node count (a mismatch panics — the membership vector is always
// derived from the same graph).
func CutOf(g *graph.Graph, inS []bool) CutStats {
	if len(inS) != g.NumNodes() {
		panic("spectral: CutOf membership length mismatch")
	}
	var cut, internalS, internalSbar int
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) >= v {
				continue
			}
			su, sv := inS[u], inS[v]
			switch {
			case su && sv:
				internalS++
			case !su && !sv:
				internalSbar++
			default:
				cut++
			}
		}
	}
	return CutStats{Cut: cut, TouchingS: internalS + cut, TouchingSbar: internalSbar + cut}
}

// ConductanceOfCut returns φ(S) for the given membership vector.
func ConductanceOfCut(g *graph.Graph, inS []bool) float64 {
	return CutOf(g, inS).Phi()
}

// MaxExactNodes bounds the brute-force conductance search: 2^(n-1) subsets.
const MaxExactNodes = 26

// ExactConductance enumerates every cut of g (node 0 pinned to S̄ to skip
// complements) and returns the minimum φ(S) along with one optimal S as a
// membership vector. Subsets are visited in Gray-code order so each step
// updates the cut statistics incrementally in O(deg). It refuses graphs with
// more than MaxExactNodes nodes — finding the optimal cut is NP-hard in
// general (the paper's Theorem 1).
func ExactConductance(g *graph.Graph) (float64, []bool, error) {
	n := g.NumNodes()
	if n < 2 {
		return 0, nil, errors.New("spectral: conductance needs at least 2 nodes")
	}
	if n > MaxExactNodes {
		return 0, nil, errors.New("spectral: graph too large for exact conductance")
	}
	if g.NumEdges() == 0 {
		return 0, nil, errors.New("spectral: conductance of edgeless graph undefined")
	}
	m := g.NumEdges()
	// Nodes 1..n-1 toggle through Gray code; node 0 stays in S̄.
	inS := make([]bool, n)
	// linksS[v] = number of v's neighbors currently in S.
	linksS := make([]int, n)
	cut, internalS := 0, 0

	best := math.Inf(1)
	var bestSet []bool
	free := n - 1
	total := uint64(1) << uint(free)
	prevGray := uint64(0)
	for i := uint64(1); i < total; i++ {
		gray := i ^ (i >> 1)
		changed := gray ^ prevGray
		prevGray = gray
		// changed has exactly one bit set: node index bit+1 flips.
		bit := 0
		for changed>>uint(bit+1) != 0 {
			bit++
		}
		v := graph.NodeID(bit + 1)
		l := linksS[v] // v's neighbors currently in S (v is never its own neighbor)
		deg := g.Degree(v)
		if !inS[v] {
			inS[v] = true
			internalS += l
			cut += deg - 2*l
			for _, w := range g.Neighbors(v) {
				linksS[w]++
			}
		} else {
			inS[v] = false
			internalS -= l
			cut -= deg - 2*l
			for _, w := range g.Neighbors(v) {
				linksS[w]--
			}
		}
		internalSbar := m - internalS - cut
		touchS := internalS + cut
		touchSbar := internalSbar + cut
		den := touchS
		if touchSbar < den {
			den = touchSbar
		}
		if den == 0 {
			continue
		}
		phi := float64(cut) / float64(den)
		if phi < best {
			best = phi
			bestSet = append(bestSet[:0], inS...)
		}
	}
	if math.IsInf(best, 1) {
		return 0, nil, errors.New("spectral: no valid cut found")
	}
	out := make([]bool, n)
	copy(out, bestSet)
	return best, out, nil
}

// CrossCuttingEdges returns the set of edges that are cross-cutting per the
// paper's Definition 4: edges crossing some optimal-conductance cut. It
// enumerates all optimal cuts (exact, small graphs only) and collects every
// edge that crosses at least one of them.
func CrossCuttingEdges(g *graph.Graph) (map[graph.EdgeKey]bool, error) {
	n := g.NumNodes()
	if n < 2 || n > MaxExactNodes {
		return nil, errors.New("spectral: CrossCuttingEdges needs 2..26 nodes")
	}
	phiStar, _, err := ExactConductance(g)
	if err != nil {
		return nil, err
	}
	out := make(map[graph.EdgeKey]bool)
	inS := make([]bool, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			cs := CutOf(g, inS)
			if phi := cs.Phi(); !math.IsInf(phi, 1) && phi <= phiStar+1e-12 {
				for _, e := range g.Edges() {
					if inS[e.U] != inS[e.V] {
						out[e.Key()] = true
					}
				}
			}
			return
		}
		inS[v] = false
		rec(v + 1)
		if v > 0 { // pin node 0 to S̄
			inS[v] = true
			rec(v + 1)
			inS[v] = false
		}
	}
	rec(0)
	return out, nil
}

// SweepCutConductance sorts nodes by score and sweeps prefixes, returning
// the best paper-definition conductance found and its membership vector.
// With the D^{-1/2}-scaled second eigenvector as the score this is the
// classic Cheeger sweep; it upper-bounds the true conductance. A score
// vector of the wrong length panics (programmer error, as in CutOf).
func SweepCutConductance(g *graph.Graph, score []float64) (float64, []bool) {
	n := g.NumNodes()
	if len(score) != n {
		panic("spectral: SweepCutConductance score length mismatch")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort ascending by score.
	sortByScore(order, score)

	m := g.NumEdges()
	inS := make([]bool, n)
	cut, internalS := 0, 0
	best := math.Inf(1)
	bestPrefix := -1
	for i, u := range order[:n-1] { // leave at least one node in S̄
		l := 0
		for _, w := range g.Neighbors(graph.NodeID(u)) {
			if inS[w] {
				l++
			}
		}
		inS[u] = true
		internalS += l
		cut += g.Degree(graph.NodeID(u)) - 2*l
		internalSbar := m - internalS - cut
		touchS := internalS + cut
		touchSbar := internalSbar + cut
		den := touchS
		if touchSbar < den {
			den = touchSbar
		}
		if den == 0 {
			continue
		}
		if phi := float64(cut) / float64(den); phi < best {
			best = phi
			bestPrefix = i
		}
	}
	out := make([]bool, n)
	for i := 0; i <= bestPrefix; i++ {
		out[order[i]] = true
	}
	return best, out
}

func sortByScore(order []int, score []float64) {
	sort.Slice(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })
}

// SpectralConductance estimates Φ(G) by a sweep cut over the (power-
// iteration) second eigenvector of the walk. Works on large graphs where
// exact search is impossible. Returns the conductance estimate (an upper
// bound on the true Φ) and the cut.
func SpectralConductance(g *graph.Graph, maxIter int, tol float64) (float64, []bool, error) {
	if g.NumEdges() == 0 {
		return 0, nil, errors.New("spectral: conductance of edgeless graph undefined")
	}
	_, vec, err := Lambda2(g, maxIter, tol)
	if err != nil {
		return 0, nil, err
	}
	// Scale to the random-walk eigenvector: x_u = y_u / sqrt(deg u).
	score := make([]float64, g.NumNodes())
	for u := range score {
		d := g.Degree(graph.NodeID(u))
		if d > 0 {
			score[u] = vec[u] / math.Sqrt(float64(d))
		}
	}
	phi, cutSet := SweepCutConductance(g, score)
	return phi, cutSet, nil
}
