// Package spectral provides the linear-algebra layer of the reproduction:
// a dense symmetric eigensolver (Householder tridiagonalization followed by
// implicit-shift QL), sparse power iteration, the second-largest-eigenvalue-
// modulus (SLEM) mixing time of the paper's footnote 12, the relative
// point-wise distance of Definition 2, and graph conductance under the
// paper's Definition 3 — exactly (brute force, small n) and via spectral
// sweep cuts (large n).
package spectral

import "fmt"

// Dense is a dense row-major square matrix.
type Dense struct {
	N    int
	Data []float64
}

// NewDense returns an n×n zero matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add increments element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = m * x. dst must have length N and may not alias x;
// a dimension mismatch panics (programmer error — every caller sizes its
// buffers from the same matrix).
func (m *Dense) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic("spectral: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Mul returns the matrix product m * other. Mismatched dimensions panic
// (programmer error, as in MulVec).
func (m *Dense) Mul(other *Dense) *Dense {
	if m.N != other.N {
		panic("spectral: Mul dimension mismatch")
	}
	n := m.N
	out := NewDense(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.Data[i*n+k]
			if a == 0 {
				continue
			}
			rowK := other.Data[k*n : (k+1)*n]
			rowOut := out.Data[i*n : (i+1)*n]
			for j, v := range rowK {
				rowOut[j] += a * v
			}
		}
	}
	return out
}

// IsSymmetric reports whether the matrix is symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			d := m.At(i, j) - m.At(j, i)
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}

func (m *Dense) String() string {
	return fmt.Sprintf("Dense(%dx%d)", m.N, m.N)
}
