package spectral

import (
	"math"
	"testing"

	"rewire/internal/graph"
	"rewire/internal/rng"
)

func TestExactConductanceBarbell(t *testing.T) {
	// The paper's running example: Φ(barbell of two K11) = 1/56 ≈ 0.018.
	g := barbell(11)
	if g.NumNodes() != 22 || g.NumEdges() != 111 {
		t.Fatalf("barbell has %d nodes %d edges, want 22/111", g.NumNodes(), g.NumEdges())
	}
	phi, cut, err := ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(phi, 1.0/56, 1e-12) {
		t.Fatalf("Φ = %v, want %v", phi, 1.0/56)
	}
	// The optimal cut splits the two cliques.
	sizeS := 0
	for _, in := range cut {
		if in {
			sizeS++
		}
	}
	if sizeS != 11 {
		t.Errorf("optimal cut size %d, want 11", sizeS)
	}
	if got := ConductanceOfCut(g, cut); !almost(got, phi, 1e-12) {
		t.Errorf("ConductanceOfCut disagrees: %v vs %v", got, phi)
	}
}

func TestExactConductanceComplete(t *testing.T) {
	// K4: any single node S gives cut 3, touching(S)=3, touching(S̄)=6 → 1.
	// The 2-2 split gives cut 4, touching 5 and 5 → 0.8, the minimum.
	phi, _, err := ExactConductance(completeGraph(4))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(phi, 0.8, 1e-12) {
		t.Errorf("Φ(K4) = %v, want 0.8", phi)
	}
}

func TestExactConductanceDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	phi, _, err := ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 0 {
		t.Errorf("disconnected Φ = %v, want 0", phi)
	}
}

func TestExactConductanceErrors(t *testing.T) {
	if _, _, err := ExactConductance(graph.FromEdges(1, nil)); err == nil {
		t.Error("1 node should error")
	}
	if _, _, err := ExactConductance(graph.FromEdges(3, nil)); err == nil {
		t.Error("edgeless should error")
	}
	big := graph.NewBuilder(MaxExactNodes + 1)
	for i := 0; i < MaxExactNodes; i++ {
		big.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	if _, _, err := ExactConductance(big.Build()); err == nil {
		t.Error("oversized graph should error")
	}
}

func TestCutOfMatchesBruteForce(t *testing.T) {
	// Cross-check the incremental Gray-code accounting against the direct
	// CutOf computation on random graphs and random cuts.
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(6)
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bernoulli(0.4) {
					b.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		g := b.Build()
		if g.NumEdges() == 0 {
			continue
		}
		phi, cut, err := ExactConductance(g)
		if err != nil {
			t.Fatal(err)
		}
		if got := ConductanceOfCut(g, cut); !almost(got, phi, 1e-12) {
			t.Fatalf("trial %d: incremental %v vs direct %v", trial, phi, got)
		}
		// Exhaustive check that no cut beats phi.
		for mask := 1; mask < (1<<n)-1; mask++ {
			inS := make([]bool, n)
			for i := 0; i < n; i++ {
				inS[i] = mask&(1<<i) != 0
			}
			if got := ConductanceOfCut(g, inS); got < phi-1e-12 {
				t.Fatalf("trial %d: cut %b has φ %v < Φ %v", trial, mask, got, phi)
			}
		}
	}
}

func TestCrossCuttingEdgesBarbell(t *testing.T) {
	g := barbell(5)
	cc, err := CrossCuttingEdges(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cc) != 1 {
		t.Fatalf("barbell cross-cutting edges = %d, want 1", len(cc))
	}
	if !cc[graph.KeyOf(0, 5)] {
		t.Errorf("bridge (0,5) not identified as cross-cutting")
	}
}

func TestSweepCutConductanceBarbell(t *testing.T) {
	g := barbell(8)
	phi, cut, err := SpectralConductance(g, 2000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	exact, _, _ := ExactConductance(g)
	if phi < exact-1e-12 {
		t.Fatalf("sweep %v below exact %v (impossible)", phi, exact)
	}
	// On the barbell the Fiedler sweep finds the optimal cut.
	if !almost(phi, exact, 1e-9) {
		t.Errorf("sweep %v, exact %v: expected match on barbell", phi, exact)
	}
	sizeS := 0
	for _, in := range cut {
		if in {
			sizeS++
		}
	}
	if sizeS != 8 {
		t.Errorf("sweep cut size %d, want 8", sizeS)
	}
}

func TestSweepNeverBelowExactProperty(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 20; trial++ {
		n := 6 + r.Intn(7)
		b := graph.NewBuilder(n)
		// Random connected-ish graph: a path backbone plus random chords.
		for i := 0; i < n-1; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		}
		for i := 0; i < n; i++ {
			for j := i + 2; j < n; j++ {
				if r.Bernoulli(0.25) {
					b.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		g := b.Build()
		exact, _, err := ExactConductance(g)
		if err != nil {
			t.Fatal(err)
		}
		sweep, _, err := SpectralConductance(g, 3000, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if sweep < exact-1e-9 {
			t.Fatalf("trial %d: sweep %v < exact %v", trial, sweep, exact)
		}
	}
}

func TestLambda2MatchesDense(t *testing.T) {
	for _, g := range []*graph.Graph{barbell(6), completeGraph(9), cycleGraph(11)} {
		vals, err := WalkSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		wantLam2 := vals[len(vals)-2]
		got, _, err := Lambda2(g, 20000, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-wantLam2) > 1e-6 {
			t.Errorf("Lambda2 = %v, dense λ2 = %v", got, wantLam2)
		}
	}
}

func TestLambda2Errors(t *testing.T) {
	if _, _, err := Lambda2(graph.FromEdges(1, nil), 10, 1e-6); err == nil {
		t.Error("1-node should error")
	}
	if _, _, err := Lambda2(graph.FromEdges(3, nil), 10, 1e-6); err == nil {
		t.Error("edgeless should error")
	}
}

func BenchmarkExactConductanceBarbell22(b *testing.B) {
	g := barbell(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExactConductance(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym100(b *testing.B) {
	r := rng.New(1)
	m := randomSymmetric(r, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(m); err != nil {
			b.Fatal(err)
		}
	}
}
