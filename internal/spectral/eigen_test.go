package spectral

import (
	"math"
	"testing"
	"testing/quick"

	"rewire/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEigenSymDiagonal(t *testing.T) {
	m := NewDense(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if !almost(vals[i], w, 1e-12) {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], w)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit vectors.
	for k := 0; k < 3; k++ {
		nonZero := 0
		for i := 0; i < 3; i++ {
			if math.Abs(vecs.At(i, k)) > 1e-9 {
				nonZero++
			}
		}
		if nonZero != 1 {
			t.Errorf("eigenvector %d not axis-aligned", k)
		}
	}
}

func TestEigenSym2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewDense(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(vals[0], 1, 1e-12) || !almost(vals[1], 3, 1e-12) {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
	// Check A v = λ v for both.
	for k := 0; k < 2; k++ {
		v := []float64{vecs.At(0, k), vecs.At(1, k)}
		av := []float64{m.At(0, 0)*v[0] + m.At(0, 1)*v[1], m.At(1, 0)*v[0] + m.At(1, 1)*v[1]}
		for i := range v {
			if !almost(av[i], vals[k]*v[i], 1e-10) {
				t.Errorf("A v != λ v for k=%d", k)
			}
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 1, 1)
	if _, _, err := EigenSym(m); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

// randomSymmetric builds a random symmetric matrix with entries in [-1, 1].
func randomSymmetric(r *rng.Rand, n int) *Dense {
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := 2*r.Float64() - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigenSymReconstruction(t *testing.T) {
	r := rng.New(99)
	for _, n := range []int{1, 2, 3, 5, 8, 13, 20, 40} {
		m := randomSymmetric(r, n)
		vals, vecs, err := EigenSym(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Orthonormality: V^T V = I.
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				s := 0.0
				for i := 0; i < n; i++ {
					s += vecs.At(i, a) * vecs.At(i, b)
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if !almost(s, want, 1e-8) {
					t.Errorf("n=%d: V^T V [%d,%d] = %v, want %v", n, a, b, s, want)
				}
			}
		}
		// Reconstruction: V Λ V^T = A.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += vals[k] * vecs.At(i, k) * vecs.At(j, k)
				}
				if !almost(s, m.At(i, j), 1e-8) {
					t.Fatalf("n=%d: reconstruction [%d,%d] = %v, want %v", n, i, j, s, m.At(i, j))
				}
			}
		}
		// Ascending order.
		for k := 1; k < n; k++ {
			if vals[k] < vals[k-1]-1e-12 {
				t.Errorf("n=%d: eigenvalues not ascending: %v", n, vals)
			}
		}
	}
}

func TestEigenSymTraceProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + int(seed%9)
		m := randomSymmetric(r, n)
		vals, _, err := EigenSym(m)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += m.At(i, i)
			sum += vals[i]
		}
		return almost(trace, sum, 1e-8*math.Max(1, math.Abs(trace)))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMulVecAndMul(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("MulVec = %v", dst)
	}
	p := m.Mul(m)
	want := [][]float64{{7, 10}, {15, 22}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestEigenSymEmpty(t *testing.T) {
	vals, vecs, err := EigenSym(NewDense(0))
	if err != nil || len(vals) != 0 || vecs.N != 0 {
		t.Fatalf("empty eigen: %v %v %v", vals, vecs, err)
	}
}
