package spectral

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix:
// eigenvalues in ascending order and the matching orthonormal eigenvectors as
// columns of the returned matrix (vectors.At(i, k) is component i of
// eigenvector k). The input is not modified.
//
// The implementation is the classic two-stage dense symmetric solver:
// Householder reduction to tridiagonal form (tred2) followed by the
// implicit-shift QL iteration (tql2), ported from the EISPACK lineage. It is
// O(n^3) and intended for the paper's small-graph spectra (Fig 10 uses
// 50-100 nodes; the running example 22).
func EigenSym(m *Dense) (values []float64, vectors *Dense, err error) {
	if !m.IsSymmetric(1e-9) {
		return nil, nil, errors.New("spectral: EigenSym requires a symmetric matrix")
	}
	n := m.N
	if n == 0 {
		return nil, NewDense(0), nil
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = m.At(i, j)
		}
	}
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(a, d, e)
	if err := tql2(d, e, a); err != nil {
		return nil, nil, err
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return d[idx[x]] < d[idx[y]] })
	values = make([]float64, n)
	vectors = NewDense(n)
	for k, src := range idx {
		values[k] = d[src]
		for i := 0; i < n; i++ {
			vectors.Set(i, k, a[i][src])
		}
	}
	return values, vectors, nil
}

// tred2 reduces the symmetric matrix a (n×n, overwritten with the
// accumulated orthogonal transform) to tridiagonal form with diagonal d and
// subdiagonal e (e[0] unused).
func tred2(a [][]float64, d, e []float64) {
	n := len(a)
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a[i][k])
			}
			if scale == 0 {
				e[i] = a[i][l]
			} else {
				for k := 0; k <= l; k++ {
					a[i][k] /= scale
					h += a[i][k] * a[i][k]
				}
				f := a[i][l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a[i][l] = f - g
				f = 0
				for j := 0; j <= l; j++ {
					a[j][i] = a[i][j] / h
					g = 0
					for k := 0; k <= j; k++ {
						g += a[j][k] * a[i][k]
					}
					for k := j + 1; k <= l; k++ {
						g += a[k][j] * a[i][k]
					}
					e[j] = g / h
					f += e[j] * a[i][j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = a[i][j]
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a[j][k] -= f*e[k] + g*a[i][k]
					}
				}
			}
		} else {
			e[i] = a[i][l]
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += a[i][k] * a[k][j]
				}
				for k := 0; k <= l; k++ {
					a[k][j] -= g * a[k][i]
				}
			}
		}
		d[i] = a[i][i]
		a[i][i] = 1
		for j := 0; j <= l; j++ {
			a[j][i] = 0
			a[i][j] = 0
		}
	}
}

// tql2 finds the eigenvalues (into d) and eigenvectors (accumulated into z,
// which on entry holds the tred2 transform) of a symmetric tridiagonal
// matrix with diagonal d and subdiagonal e.
func tql2(d, e []float64, z [][]float64) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= machEps*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 64 {
				return errors.New("spectral: tql2 failed to converge")
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+withSign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z[k][i+1]
					z[k][i+1] = s*z[k][i] + c*f
					z[k][i] = c*z[k][i] - s*f
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

const machEps = 2.220446049250313e-16

func withSign(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}
