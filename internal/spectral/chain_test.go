package spectral

import (
	"math"
	"testing"

	"rewire/internal/graph"
)

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := graph.NodeID(0); int(i) < n; i++ {
		for j := i + 1; int(j) < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

func barbell(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for side := 0; side < 2; side++ {
		off := graph.NodeID(side * k)
		for i := graph.NodeID(0); int(i) < k; i++ {
			for j := i + 1; int(j) < k; j++ {
				b.AddEdge(off+i, off+j)
			}
		}
	}
	b.AddEdge(0, graph.NodeID(k)) // the single cross-cutting edge
	return b.Build()
}

func TestWalkSpectrumComplete(t *testing.T) {
	// SRW on K_n has eigenvalues 1 (once) and -1/(n-1) (n-1 times).
	for _, n := range []int{3, 5, 8} {
		vals, err := WalkSpectrum(completeGraph(n))
		if err != nil {
			t.Fatal(err)
		}
		if !almost(vals[n-1], 1, 1e-10) {
			t.Errorf("K%d: top eigenvalue %v, want 1", n, vals[n-1])
		}
		for i := 0; i < n-1; i++ {
			if !almost(vals[i], -1/float64(n-1), 1e-10) {
				t.Errorf("K%d: vals[%d] = %v, want %v", n, i, vals[i], -1/float64(n-1))
			}
		}
	}
}

func TestWalkSpectrumCycle(t *testing.T) {
	// SRW on C_n has eigenvalues cos(2πk/n).
	n := 7
	vals, err := WalkSpectrum(cycleGraph(n))
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for k := 0; k < n; k++ {
		want = append(want, math.Cos(2*math.Pi*float64(k)/float64(n)))
	}
	// Sort want ascending.
	for i := range want {
		for j := i + 1; j < len(want); j++ {
			if want[j] < want[i] {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	for i := range want {
		if !almost(vals[i], want[i], 1e-10) {
			t.Errorf("C%d: vals[%d] = %v, want %v", n, i, vals[i], want[i])
		}
	}
}

func TestSLEMComplete(t *testing.T) {
	mu, err := SLEM(completeGraph(5))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mu, 0.25, 1e-10) {
		t.Errorf("SLEM(K5) = %v, want 0.25", mu)
	}
}

func TestSLEMBipartiteIsOne(t *testing.T) {
	// K2 (a single edge) is bipartite: eigenvalues ±1, SLEM = 1, so the
	// non-lazy chain never mixes and mixing time is +Inf.
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	mu, err := SLEM(g)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mu, 1, 1e-12) {
		t.Errorf("SLEM(K2) = %v, want 1", mu)
	}
	if mt := MixingTimeSLEM(mu); !math.IsInf(mt, 1) {
		t.Errorf("mixing time = %v, want +Inf", mt)
	}
	lazy, err := LazySLEM(g)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lazy, 0, 1e-12) {
		t.Errorf("LazySLEM(K2) = %v, want 0", lazy)
	}
}

func TestMixingTimeSLEMEdgeCases(t *testing.T) {
	if got := MixingTimeSLEM(0); got != 0 {
		t.Errorf("mu=0: %v", got)
	}
	if got := MixingTimeSLEM(0.5); !almost(got, 1/math.Log(2), 1e-12) {
		t.Errorf("mu=0.5: %v", got)
	}
}

func TestBarbellSlowerThanComplete(t *testing.T) {
	tBar, err := GraphMixingTime(barbell(11))
	if err != nil {
		t.Fatal(err)
	}
	tK, err := GraphMixingTime(completeGraph(22))
	if err != nil {
		t.Fatal(err)
	}
	if tBar < 50*tK {
		t.Errorf("barbell mixing %v should dwarf complete-graph mixing %v", tBar, tK)
	}
}

func TestPaperMixingCoefficientMatchesPrintedValues(t *testing.T) {
	// The paper's §II-D running-example numbers.
	cases := []struct {
		phi  float64
		want float64
	}{
		{0.010, 46050.5}, {0.012, 31979.1}, {0.018, 14212.3},
		{0.035, 3758.1}, {0.053, 1638.3}, {0.105, 416.6},
	}
	for _, c := range cases {
		got := PaperMixingCoefficient(c.phi)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("coefficient(%v) = %v, want ~%v", c.phi, got, c.want)
		}
	}
}

func TestMixingBoundEq6(t *testing.T) {
	// For small phi, -1/log(1-phi^2) ~ 1/phi^2.
	phi := 0.01
	got := MixingBoundEq6(phi)
	if math.Abs(got-1/(phi*phi))/got > 0.01 {
		t.Errorf("eq6 bound = %v, want ~%v", got, 1/(phi*phi))
	}
	if !math.IsInf(MixingBoundEq6(0), 1) || !math.IsInf(MixingBoundEq6(1), 1) {
		t.Error("degenerate phi should give +Inf")
	}
}

func TestRelPointwiseDistanceDecay(t *testing.T) {
	g := completeGraph(6)
	d1, err := RelPointwiseDistance(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	d10, err := RelPointwiseDistance(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d10 >= d1 {
		t.Errorf("Δ(10)=%v not < Δ(1)=%v", d10, d1)
	}
	if d10 > 1e-3 {
		t.Errorf("complete graph should mix almost instantly, Δ(10)=%v", d10)
	}
}

func TestMixingTimeExact(t *testing.T) {
	g := completeGraph(8)
	tm, ok, err := MixingTimeExact(g, 0.01, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("complete graph did not reach threshold")
	}
	if tm < 1 || tm > 10 {
		t.Errorf("K8 mixing time = %d, want small", tm)
	}
	// Barbell needs far longer.
	tb, ok, err := MixingTimeExact(barbell(6), 0.01, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("barbell did not reach threshold")
	}
	if tb <= 10*tm {
		t.Errorf("barbell mixing %d vs K8 %d: expected much slower", tb, tm)
	}
}

func TestTransitionMatrixRowStochastic(t *testing.T) {
	g := barbell(4)
	p := TransitionMatrix(g)
	for i := 0; i < p.N; i++ {
		s := 0.0
		for j := 0; j < p.N; j++ {
			s += p.At(i, j)
		}
		if !almost(s, 1, 1e-12) {
			t.Errorf("row %d sums to %v", i, s)
		}
	}
}

func TestDistanceCalculatorRejectsEdgeless(t *testing.T) {
	if _, err := NewDistanceCalculator(graph.FromEdges(3, nil)); err == nil {
		t.Fatal("expected error for edgeless graph")
	}
}
