package spectral

import (
	"errors"
	"math"

	"rewire/internal/graph"
)

// NormalizedAdjacency returns the symmetric normalized adjacency
// N = D^{-1/2} A D^{-1/2} of g as a dense matrix. N is similar to the simple
// random walk transition matrix P = D^{-1} A, so they share eigenvalues and
// N's eigenvectors map to P's by the D^{-1/2} scaling. Rows/columns of
// isolated nodes are zero.
func NormalizedAdjacency(g *graph.Graph) *Dense {
	n := g.NumNodes()
	m := NewDense(n)
	for u := 0; u < n; u++ {
		du := g.Degree(graph.NodeID(u))
		if du == 0 {
			continue
		}
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			dv := g.Degree(v)
			m.Set(u, int(v), 1/math.Sqrt(float64(du)*float64(dv)))
		}
	}
	return m
}

// TransitionMatrix returns the dense simple-random-walk transition matrix
// P[u][v] = 1/deg(u) for v in N(u) (Definition 1 of the paper).
func TransitionMatrix(g *graph.Graph) *Dense {
	n := g.NumNodes()
	m := NewDense(n)
	for u := 0; u < n; u++ {
		du := g.Degree(graph.NodeID(u))
		if du == 0 {
			continue
		}
		p := 1 / float64(du)
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			m.Set(u, int(v), p)
		}
	}
	return m
}

// WalkSpectrum returns the eigenvalues of the simple random walk on g in
// ascending order (computed from the symmetric similarity transform).
func WalkSpectrum(g *graph.Graph) ([]float64, error) {
	vals, _, err := EigenSym(NormalizedAdjacency(g))
	return vals, err
}

// SLEM returns the second largest eigenvalue modulus of the simple random
// walk on g: max(|λ_2|, |λ_n|) with λ_1 = 1 excluded. The paper's footnote
// 12 defines the theoretical mixing time from this quantity. Requires at
// least 2 nodes.
func SLEM(g *graph.Graph) (float64, error) {
	vals, err := WalkSpectrum(g)
	if err != nil {
		return 0, err
	}
	return slemOf(vals)
}

func slemOf(ascending []float64) (float64, error) {
	n := len(ascending)
	if n < 2 {
		return 0, errors.New("spectral: SLEM needs at least 2 nodes")
	}
	return math.Max(math.Abs(ascending[0]), math.Abs(ascending[n-2])), nil
}

// LazySLEM returns the SLEM of the lazy walk (P+I)/2, whose spectrum is
// non-negative; useful when the underlying chain is (nearly) bipartite.
func LazySLEM(g *graph.Graph) (float64, error) {
	vals, err := WalkSpectrum(g)
	if err != nil {
		return 0, err
	}
	n := len(vals)
	if n < 2 {
		return 0, errors.New("spectral: SLEM needs at least 2 nodes")
	}
	return (1 + vals[n-2]) / 2, nil
}

// MixingTimeSLEM converts a SLEM μ into the paper's theoretical mixing time
// Θ(1/log(1/μ)) (footnote 12). Returns +Inf when μ >= 1 (disconnected or
// exactly bipartite chains never mix).
func MixingTimeSLEM(mu float64) float64 {
	// Eigensolver round-off can return μ = 1 - O(ε) for chains whose true
	// SLEM is exactly 1 (bipartite, disconnected); treat those as non-mixing.
	if mu >= 1-1e-12 {
		return math.Inf(1)
	}
	if mu <= 0 {
		return 0
	}
	return 1 / math.Log(1/mu)
}

// GraphMixingTime computes MixingTimeSLEM(SLEM(g)) in one call.
func GraphMixingTime(g *graph.Graph) (float64, error) {
	mu, err := SLEM(g)
	if err != nil {
		return 0, err
	}
	return MixingTimeSLEM(mu), nil
}

// PaperMixingCoefficient returns ln(100)/Φ², the coefficient the paper
// multiplies by log(c/ε) in its running example (§II-D). The constant was
// reverse-engineered from the paper's printed values: Φ=0.010 → 46050.5,
// Φ=0.012 → 31979.1, Φ=0.018 → 14212.3, Φ=0.035 → 3758.1, Φ=0.053 → 1638.3,
// Φ=0.105 → 416.6 — all equal to ln(100)/Φ² to the printed precision (it is
// the small-Φ limit of -log(1-Φ²)^{-1} scaled by ln 100).
func PaperMixingCoefficient(phi float64) float64 {
	if phi <= 0 {
		return math.Inf(1)
	}
	return math.Log(100) / (phi * phi)
}

// MixingBoundEq6 returns the exact eq. (6) lower-bound coefficient
// -1/log(1-Φ²); the mixing time bound is this times log(c/ε) with
// c = 2|E|/min_v k_v.
func MixingBoundEq6(phi float64) float64 {
	if phi <= 0 || phi >= 1 {
		return math.Inf(1)
	}
	return -1 / math.Log(1-phi*phi)
}

// RelPointwiseDistance computes Δ(t) of Definition 2: the maximum over edges
// (u,v) (v ∈ N(u)) of |P^t_{uv} - π(v)| / π(v), with π(v) = deg(v)/2|E|.
// P^t is evaluated through the eigendecomposition of the normalized
// adjacency, so calls with many different t values are cheap after the
// initial O(n³) factorization. Use NewDistanceCalculator for repeated
// queries.
func RelPointwiseDistance(g *graph.Graph, t int) (float64, error) {
	dc, err := NewDistanceCalculator(g)
	if err != nil {
		return 0, err
	}
	return dc.Delta(t), nil
}

// DistanceCalculator caches the eigendecomposition needed by Δ(t).
type DistanceCalculator struct {
	g       *graph.Graph
	vals    []float64
	vecs    *Dense
	pi      []float64
	sqrtDeg []float64
}

// NewDistanceCalculator factorizes the walk on g once.
func NewDistanceCalculator(g *graph.Graph) (*DistanceCalculator, error) {
	if g.NumEdges() == 0 {
		return nil, errors.New("spectral: distance calculator needs edges")
	}
	vals, vecs, err := EigenSym(NormalizedAdjacency(g))
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	dc := &DistanceCalculator{g: g, vals: vals, vecs: vecs,
		pi: make([]float64, n), sqrtDeg: make([]float64, n)}
	twoM := float64(2 * g.NumEdges())
	for u := 0; u < n; u++ {
		d := float64(g.Degree(graph.NodeID(u)))
		dc.pi[u] = d / twoM
		dc.sqrtDeg[u] = math.Sqrt(d)
	}
	return dc, nil
}

// Delta returns Δ(t).
func (dc *DistanceCalculator) Delta(t int) float64 {
	n := dc.g.NumNodes()
	lt := make([]float64, n)
	for k, l := range dc.vals {
		lt[k] = math.Pow(l, float64(t))
	}
	maxD := 0.0
	for u := 0; u < n; u++ {
		if dc.g.Degree(graph.NodeID(u)) == 0 {
			continue
		}
		for _, v := range dc.g.Neighbors(graph.NodeID(u)) {
			// P^t_{uv} = sqrt(d_v/d_u) Σ_k λ_k^t q_{uk} q_{vk}
			s := 0.0
			for k := 0; k < n; k++ {
				s += lt[k] * dc.vecs.At(u, k) * dc.vecs.At(int(v), k)
			}
			ptuv := s * dc.sqrtDeg[v] / dc.sqrtDeg[u]
			d := math.Abs(ptuv-dc.pi[v]) / dc.pi[v]
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// MixingTimeExact returns the smallest t <= tMax with Δ(t) <= eps, or
// (tMax, false) if the threshold is not reached. It exploits the typical
// monotone decay of Δ(t) with an exponential gallop followed by binary
// search; graphs with strong negative eigenvalues may oscillate, in which
// case the result is the first power-of-two bracket refinement.
func MixingTimeExact(g *graph.Graph, eps float64, tMax int) (int, bool, error) {
	dc, err := NewDistanceCalculator(g)
	if err != nil {
		return 0, false, err
	}
	if dc.Delta(0) <= eps {
		return 0, true, nil
	}
	hi := 1
	for hi <= tMax && dc.Delta(hi) > eps {
		hi *= 2
	}
	if hi > tMax {
		return tMax, false, nil
	}
	lo := hi / 2 // Δ(lo) > eps, Δ(hi) <= eps
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if dc.Delta(mid) <= eps {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}
