package spectral

import (
	"errors"
	"math"

	"rewire/internal/graph"
)

// Lambda2 estimates the second-largest eigenvalue λ2 of the simple random
// walk on g (equivalently of the normalized adjacency N) together with the
// corresponding eigenvector of N, using deflated power iteration on the
// half-shifted operator M = (N + I)/2 whose spectrum lies in [0, 1]. The
// top eigenvector of N for a connected graph is known in closed form
// (proportional to sqrt(deg)), so the iteration simply keeps the iterate
// orthogonal to it. This is the large-graph path: O(maxIter * |E|) time and
// O(|V|) memory, no dense matrices.
func Lambda2(g *graph.Graph, maxIter int, tol float64) (float64, []float64, error) {
	n := g.NumNodes()
	if n < 2 {
		return 0, nil, errors.New("spectral: Lambda2 needs at least 2 nodes")
	}
	if g.NumEdges() == 0 {
		return 0, nil, errors.New("spectral: Lambda2 needs edges")
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	if tol <= 0 {
		tol = 1e-9
	}
	// Top eigenvector of N: v1_u = sqrt(deg u), normalized.
	v1 := make([]float64, n)
	norm := 0.0
	for u := 0; u < n; u++ {
		v1[u] = math.Sqrt(float64(g.Degree(graph.NodeID(u))))
		norm += v1[u] * v1[u]
	}
	norm = math.Sqrt(norm)
	for u := range v1 {
		v1[u] /= norm
	}

	// Deterministic, well-spread start vector (index-parity wave), then
	// orthogonalize. A fixed start keeps experiments reproducible.
	x := make([]float64, n)
	for u := 0; u < n; u++ {
		x[u] = math.Sin(float64(u+1) * 0.7)
	}
	orthonormalize(x, v1)

	y := make([]float64, n)
	invSqrtDeg := make([]float64, n)
	for u := 0; u < n; u++ {
		d := g.Degree(graph.NodeID(u))
		if d > 0 {
			invSqrtDeg[u] = 1 / math.Sqrt(float64(d))
		}
	}
	applyM := func(dst, src []float64) {
		// dst = (N + I)/2 * src with N = D^{-1/2} A D^{-1/2}.
		for u := 0; u < n; u++ {
			s := 0.0
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				s += src[v] * invSqrtDeg[v]
			}
			dst[u] = 0.5 * (s*invSqrtDeg[u] + src[u])
		}
	}

	prev := math.Inf(1)
	mu := 0.0
	for iter := 0; iter < maxIter; iter++ {
		applyM(y, x)
		// Rayleigh quotient before renormalizing: x is unit length.
		mu = dot(x, y)
		orthonormalize(y, v1)
		x, y = y, x
		if math.Abs(mu-prev) < tol {
			break
		}
		prev = mu
	}
	// λ of N from μ of M = (N+I)/2.
	lam2 := 2*mu - 1
	vec := make([]float64, n)
	copy(vec, x)
	return lam2, vec, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// orthonormalize removes the v1 component from x and scales x to unit norm.
// If x collapses to (numerical) zero it is reseeded deterministically.
func orthonormalize(x, v1 []float64) {
	c := dot(x, v1)
	for i := range x {
		x[i] -= c * v1[i]
	}
	norm := math.Sqrt(dot(x, x))
	if norm < 1e-300 {
		for i := range x {
			x[i] = math.Cos(float64(2*i+1) * 1.3)
		}
		c := dot(x, v1)
		for i := range x {
			x[i] -= c * v1[i]
		}
		norm = math.Sqrt(dot(x, x))
	}
	for i := range x {
		x[i] /= norm
	}
}
