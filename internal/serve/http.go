package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rewire"
	"rewire/internal/httpsrc"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	errNoSuchJob  = errors.New("serve: no such job")
	errWrongState = errors.New("serve: job is not in the required state")
	errDraining   = errors.New("serve: server is draining")
	errTenantBusy = errors.New("serve: tenant job limit reached")
)

// JobStatus is the wire form of a job's current position — the GET
// /v1/jobs/{id} body and the list entries of GET /v1/jobs.
type JobStatus struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant,omitempty"`
	Backend string `json:"backend"`
	State   State  `json:"state"`
	Samples int    `json:"samples"` // delivered so far
	Total   int    `json:"total"`   // the spec's budget
	// Estimate is the self-normalized average-degree estimate, present once
	// the job is done.
	Estimate *float64 `json:"estimate,omitempty"`
	Error    string   `json:"error,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.id,
		Tenant:  j.spec.Tenant,
		Backend: j.spec.Backend,
		State:   j.state,
		Samples: len(j.samples),
		Total:   j.spec.Samples,
	}
	if j.estimateOK {
		est := j.estimate
		st.Estimate = &est
	}
	if j.runErr != nil {
		st.Error = j.runErr.Error()
	}
	return st
}

// streamEvent is one JSON line of GET /v1/jobs/{id}/stream. Sample lines
// carry Index and Sample; the terminating line carries State (and, when
// available, Estimate or Error) so the client knows WHY the stream ended —
// "done", "paused", "cancelled", or "failed".
type streamEvent struct {
	Index    int            `json:"index,omitempty"`
	Sample   *rewire.Sample `json:"sample,omitempty"`
	State    State          `json:"state,omitempty"`
	Estimate *float64       `json:"estimate,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs                    submit a JobSpec, returns {"id": ...}
//	GET    /v1/jobs                    list job statuses
//	GET    /v1/jobs/{id}               one job's status
//	GET    /v1/jobs/{id}/stream?from=N samples as JSON lines (replay + follow)
//	POST   /v1/jobs/{id}/pause         quiesce at the next step boundary
//	POST   /v1/jobs/{id}/resume        continue from the stored checkpoint
//	GET    /v1/jobs/{id}/checkpoint    the raw checkpoint bytes (paused jobs)
//	DELETE /v1/jobs/{id}               cancel
//	GET    /v1/tenants                 every tenant's bill per backend
//	POST   /v1/tenants/{name}/budget   set {"backend": url, "budget": n}
//	GET    /v1/backends                opened backends + transport metrics
//	GET    /healthz                    liveness ("draining" while shutting down)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/jobs/{id}/pause", s.handlePause)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("POST /v1/tenants/{name}/budget", s.handleBudget)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// httpError maps a serving-layer error to a status code and writes the JSON
// error body.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, errNoSuchJob):
		code = http.StatusNotFound
	case errors.Is(err, errWrongState):
		code = http.StatusConflict
	case errors.Is(err, errDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, errTenantBusy):
		code = http.StatusTooManyRequests
	case errors.Is(err, rewire.ErrUnknownDriver),
		errors.Is(err, rewire.ErrCheckpointVersion):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("serve: decoding job spec: %v", err)})
		return
	}
	id, err := s.Submit(r.Context(), spec)
	if err != nil {
		if _, bad := validationError(err); bad {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// validationError reports whether err is a spec/session validation failure
// (client's fault) rather than a serving-layer fault.
func validationError(err error) (error, bool) {
	switch {
	case errors.Is(err, errDraining), errors.Is(err, errTenantBusy),
		errors.Is(err, errNoSuchJob), errors.Is(err, errWrongState):
		return err, false
	}
	return err, true
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobList()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, map[string][]JobStatus{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, errNoSuchJob)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStream writes the job's samples as JSON lines: first a replay of
// everything already delivered from ?from=N (default 0), then a live follow.
// The stream ends with one state line once the job reaches a terminal state
// OR pauses — a paused job's followers are released (resume and re-attach
// with ?from=<index> to continue exactly where the stream left off).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, errNoSuchJob)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "serve: from must be a non-negative integer"})
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	next := from
	for {
		j.mu.Lock()
		total := len(j.samples)
		state := j.state
		wake := j.wake
		j.mu.Unlock()

		for ; next < total; next++ {
			smp := j.samplesView()[next]
			if err := enc.Encode(streamEvent{Index: next + 1, Sample: &smp}); err != nil {
				return // client went away
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(state) || state == StatePaused {
			// Re-check under the lock that no samples landed between the
			// snapshot above and now (state is monotone once settled).
			j.mu.Lock()
			more := len(j.samples) > next
			j.mu.Unlock()
			if more {
				continue
			}
			st := j.status()
			end := streamEvent{State: state, Estimate: st.Estimate, Error: st.Error}
			_ = enc.Encode(end)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	if err := s.Pause(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "pausing"})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if err := s.Resume(r.Context(), r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": string(StateRunning)})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, errNoSuchJob)
		return
	}
	j.mu.Lock()
	cp := j.checkpoint
	state := j.state
	j.mu.Unlock()
	if state != StatePaused || cp == nil {
		httpError(w, fmt.Errorf("%w: job is %s, checkpoints exist only for paused jobs", errWrongState, state))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(cp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": string(StateCancelled)})
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.TenantBills()})
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Backend string `json:"backend"`
		Budget  int64  `json:"budget"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("serve: decoding budget request: %v", err)})
		return
	}
	if req.Backend == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "serve: budget request needs a backend URL"})
		return
	}
	s.setTenantBudget(r.PathValue("name"), req.Backend, req.Budget)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// BackendInfo is one opened backend's public view: its URL, its global
// ledger, its transport-level metrics (fetches that actually went over the
// wire, after cache and coalescing), and — when the stack has the matching
// capability — its coalescing and HTTP revalidation counters.
type BackendInfo struct {
	URL           string `json:"url"`
	UniqueQueries int64  `json:"unique_queries"`
	CacheSize     int    `json:"cache_size"`
	Fetches       int64  `json:"fetches"`
	FetchedIDs    int64  `json:"fetched_ids"`
	Failures      int64  `json:"failures"`
	// BatchSizeBuckets is the dispatched-batch size histogram (buckets 1, 2,
	// ≤4, ≤8, ≤16, ≤32, ≤64, >64), absent when nothing was fetched.
	BatchSizeBuckets []int64 `json:"batch_size_buckets,omitempty"`
	// BatchesDispatched / CoalescedIDs report the coalescing middleware's
	// work (present only when the server runs with -batchwait).
	BatchesDispatched *int64 `json:"batches_dispatched,omitempty"`
	CoalescedIDs      *int64 `json:"coalesced_ids,omitempty"`
	// Revalidated counts HTTP 304 answers served from the driver's ETag
	// validation cache (present only for HTTP backends).
	Revalidated *int64 `json:"revalidated,omitempty"`
}

func (s *Server) handleBackends(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	backends := make([]*sharedBackend, 0, len(s.backends))
	for _, sb := range s.backends {
		backends = append(backends, sb)
	}
	s.mu.Unlock()
	out := make([]BackendInfo, 0, len(backends))
	for _, sb := range backends {
		snap := sb.metrics.Snapshot()
		info := BackendInfo{
			URL:           sb.url,
			UniqueQueries: sb.provider.UniqueQueries(),
			CacheSize:     sb.provider.CacheSize(),
			Fetches:       snap.Fetches,
			FetchedIDs:    snap.IDs,
			Failures:      snap.Failures,
		}
		for _, n := range snap.BatchSizeBuckets {
			if n > 0 {
				info.BatchSizeBuckets = snap.BatchSizeBuckets[:]
				break
			}
		}
		if bs, ok := rewire.BackendAs[rewire.BatchStatser](sb.backend); ok {
			st := bs.BatchStats()
			info.BatchesDispatched = &st.Batches
			info.CoalescedIDs = &st.IDs
		}
		if hs, ok := rewire.BackendAs[interface{ Stats() httpsrc.Stats }](sb.backend); ok {
			st := hs.Stats()
			info.Revalidated = &st.Revalidated
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string][]BackendInfo{"backends": out})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": status})
}
