package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"rewire"
	"rewire/internal/durable"
)

// jobRecord is the on-disk form of one job: everything needed to re-present
// its status and stream after a restart, plus — for paused jobs — the
// checkpoint that makes resumption byte-identical across processes.
type jobRecord struct {
	ID         string          `json:"id"`
	Spec       JobSpec         `json:"spec"`
	State      State           `json:"state"`
	Samples    []rewire.Sample `json:"samples,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	Error      string          `json:"error,omitempty"`
	Estimate   float64         `json:"estimate,omitempty"`
	EstimateOK bool            `json:"estimate_ok,omitempty"`
}

// serverRecord is the on-disk form of the server's own durable state.
type serverRecord struct {
	NextID int `json:"next_id"`
	// Budgets is tenant → backend URL → unique-query cap, reapplied to each
	// provider as its backend reopens.
	Budgets map[string]map[string]int64 `json:"budgets,omitempty"`
}

// SaveState writes the server's durable state into dir: one job-<id>.json
// per job plus server.json. Call it after Drain — a drained server has no
// running jobs, so every record is settled (paused jobs carry their
// checkpoints). Files are written via the durable package's fsync'd
// temp-and-rename, so a crash mid-save — even a power cut — never leaves a
// half-written or missing record where a complete one existed.
func (s *Server) SaveState(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating state dir: %w", err)
	}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	rec := serverRecord{NextID: s.nextID, Budgets: make(map[string]map[string]int64, len(s.budgets))}
	for tenant, perURL := range s.budgets {
		cp := make(map[string]int64, len(perURL))
		for url, n := range perURL {
			cp[url] = n
		}
		rec.Budgets[tenant] = cp
	}
	s.mu.Unlock()

	for _, j := range jobs {
		j.mu.Lock()
		jr := jobRecord{
			ID:         j.id,
			Spec:       j.spec,
			State:      j.state,
			Samples:    j.samples[:len(j.samples):len(j.samples)],
			Checkpoint: j.checkpoint,
			Estimate:   j.estimate,
			EstimateOK: j.estimateOK,
		}
		if j.runErr != nil {
			jr.Error = j.runErr.Error()
		}
		j.mu.Unlock()
		if jr.State == StateRunning {
			// SaveState without a prior Drain: the live session's walkers
			// can't be serialized mid-run, so the record demotes the job to
			// cancelled rather than persisting a lie.
			jr.State = StateCancelled
		}
		if err := writeFileAtomic(filepath.Join(dir, "job-"+j.id+".json"), jr); err != nil {
			return err
		}
	}
	return writeFileAtomic(filepath.Join(dir, "server.json"), rec)
}

// writeFileAtomic encodes v and commits it through durable.WriteFileAtomic —
// unique temp file, fsync, rename, directory fsync. The old fixed-name
// ".tmp" + rename here survived process crashes but not power loss (nothing
// was synced), and racing savers could clobber each other's temp file; both
// holes closed by unifying on the durable helper.
func writeFileAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding %s: %w", filepath.Base(path), err)
	}
	if err := durable.WriteFileAtomic(path, data, 0o644); err != nil {
		return fmt.Errorf("serve: committing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// LoadState restores the state SaveState wrote: terminal jobs come back
// queryable (status, replayable stream, estimate), paused jobs come back
// resumable — POST /v1/jobs/{id}/resume reopens the backend and continues
// the trajectory exactly where the previous process stopped it. Call it on
// a fresh server, before serving requests. A missing dir is an empty state,
// not an error.
func (s *Server) LoadState(dir string) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: reading state dir: %w", err)
	}
	var rec serverRecord
	if data, err := os.ReadFile(filepath.Join(dir, "server.json")); err == nil {
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("serve: decoding server.json: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("serve: reading server.json: %w", err)
	}

	var jobs []*job
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("serve: reading %s: %w", name, err)
		}
		var jr jobRecord
		if err := json.Unmarshal(data, &jr); err != nil {
			return fmt.Errorf("serve: decoding %s: %w", name, err)
		}
		if jr.ID == "" || jr.State == "" {
			return fmt.Errorf("serve: %s: record missing id or state", name)
		}
		if jr.State == StatePaused && len(jr.Checkpoint) == 0 {
			// Unresumable without its checkpoint; keep the history honest.
			jr.State = StateCancelled
		}
		j := &job{
			id:         jr.ID,
			spec:       jr.Spec,
			state:      jr.State,
			samples:    jr.Samples,
			wake:       make(chan struct{}),
			checkpoint: jr.Checkpoint,
			estimate:   jr.Estimate,
			estimateOK: jr.EstimateOK,
		}
		if jr.Error != "" {
			j.runErr = fmt.Errorf("%s", jr.Error)
		}
		jobs = append(jobs, j)
	}
	slices.SortFunc(jobs, func(a, b *job) int { return jobIDNum(a.id) - jobIDNum(b.id) })

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range jobs {
		if _, dup := s.jobs[j.id]; dup {
			return fmt.Errorf("serve: duplicate job id %s in state dir", j.id)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if n := jobIDNum(j.id); n > s.nextID {
			s.nextID = n
		}
	}
	if rec.NextID > s.nextID {
		s.nextID = rec.NextID
	}
	for tenant, perURL := range rec.Budgets {
		dst := s.budgets[tenant]
		if dst == nil {
			dst = make(map[string]int64, len(perURL))
			s.budgets[tenant] = dst
		}
		for url, n := range perURL {
			dst[url] = n
		}
	}
	return nil
}

// jobIDNum extracts the numeric suffix of a "j<n>" id (0 when malformed).
func jobIDNum(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return 0
	}
	return n
}
