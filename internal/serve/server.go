package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"rewire"
	"rewire/internal/estimate"
)

// State is a job's lifecycle position.
type State string

const (
	// StateRunning: a runner goroutine is streaming samples.
	StateRunning State = "running"
	// StatePaused: the job quiesced at a step boundary; its checkpoint is
	// stored and POST …/resume continues it byte-identically.
	StatePaused State = "paused"
	// StateDone: the full sample budget was delivered and the estimate
	// computed.
	StateDone State = "done"
	// StateCancelled: the job was cancelled (DELETE) and will not resume.
	StateCancelled State = "cancelled"
	// StateFailed: the run aborted on an error (see JobStatus.Error).
	StateFailed State = "failed"
)

// terminal reports whether a state is final — no runner exists and none will.
func terminal(st State) bool {
	return st == StateDone || st == StateCancelled || st == StateFailed
}

// Options tunes a Server.
type Options struct {
	// RateLimitRPS, when positive, wraps every opened backend with the SDK's
	// WithRateLimit middleware at this service-wide rate — the daemon's
	// politeness cap toward each provider, shared by all tenants (per-tenant
	// caps are budgets, not rates: queries, not queries-per-second, are what
	// providers bill).
	RateLimitRPS   float64
	RateLimitBurst int
	// MaxJobsPerTenant caps a tenant's simultaneously live (running or
	// paused) jobs; 0 = unlimited.
	MaxJobsPerTenant int
	// CacheDir, when set, gives every opened backend a durable write-ahead-
	// logged cache in a per-URL subdirectory: committed fetches persist
	// before they are served, and a restarted daemon reopens each backend
	// warm — replayed entries are cache hits, never re-billed, so resumed
	// checkpointed jobs continue their trajectories without re-paying for
	// topology any tenant already demanded.
	CacheDir string
	// BatchWait, when positive, wraps every opened backend with the SDK's
	// demand-coalescing middleware (rewire.WithBatching): misses from all
	// tenants' walkers that land within this window ride one provider
	// round-trip. Coalescing sits OUTERMOST in the stack — above metrics and
	// the rate limit — so walker demand is merged before it is metered or
	// throttled, and each dispatched batch spends one rate-limit token.
	BatchWait time.Duration
	// BatchMax caps the ids per coalesced batch (0 = the SDK default).
	// Meaningful only with BatchWait.
	BatchMax int
}

// sharedBackend is the one-per-URL provider stack every job on that URL
// shares: metrics middleware, optional rate-limit middleware, optional
// demand-coalescing middleware outermost, then the Provider (cache +
// singleflight + global and per-tenant ledgers).
type sharedBackend struct {
	url      string
	provider *rewire.Provider
	metrics  *rewire.BackendMetrics
	// backend is the outermost middleware — the stack's capability probe
	// root for batch and transport stats (rewire.BackendAs walks it).
	backend rewire.Backend
}

// job is one submitted sampling job. samples is append-only — a delivered
// sample never changes — which is what lets the stream handler hand out
// stable slice views and lets ?from=N replay be exact.
type job struct {
	id   string
	spec JobSpec

	mu      sync.Mutex
	state   State
	samples []rewire.Sample
	// wake is closed and replaced on every append and state change — a
	// broadcast to stream followers. Always swapped under mu, always closed
	// AFTER mu is released.
	wake       chan struct{}
	sess       *rewire.Session // non-nil while a runner owns a live session
	cancel     context.CancelFunc
	runnerDone chan struct{} // closed when the runner exits; nil when none
	checkpoint []byte        // versioned envelope, stored on pause
	runErr     error         // why the job failed (StateFailed)
	estimate   float64       // avg-degree estimate, valid when estimateOK
	estimateOK bool
}

// swapWakeLocked replaces the broadcast channel and returns the old one for
// the caller to close once the lock is released.
func (j *job) swapWakeLocked() chan struct{} {
	old := j.wake
	j.wake = make(chan struct{})
	return old
}

// Server hosts the jobs, the shared per-URL backends, and the tenant budget
// table. Construct with New, mount Handler on an http.Server, and on
// shutdown call Drain then SaveState.
type Server struct {
	// ctx is the runners' root context: job runs outlive the HTTP requests
	// that start them, so they bind to the server's lifetime instead.
	ctx  context.Context
	stop context.CancelFunc
	opts Options

	mu       sync.Mutex
	backends map[string]*sharedBackend
	jobs     map[string]*job
	order    []string // job ids in submission order, for stable listings
	// budgets is the durable tenant → backend URL → unique-query cap table;
	// applied to a provider when the backend opens (and immediately when
	// already open), persisted by SaveState so caps survive restarts.
	budgets  map[string]map[string]int64
	nextID   int
	draining bool
}

// New builds an idle server. ctx bounds every job the server will ever run:
// cancelling it aborts all runners (Close does this for you).
func New(ctx context.Context, opts Options) *Server {
	ctx, stop := context.WithCancel(ctx)
	return &Server{
		ctx:      ctx,
		stop:     stop,
		opts:     opts,
		backends: make(map[string]*sharedBackend),
		jobs:     make(map[string]*job),
		budgets:  make(map[string]map[string]int64),
	}
}

// Close aborts every running job (as cancelled, not paused — use Drain first
// for a checkpointing shutdown) and releases the backends.
func (s *Server) Close() error {
	s.stop()
	s.mu.Lock()
	var doneChans []chan struct{}
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.runnerDone != nil {
			doneChans = append(doneChans, j.runnerDone)
		}
		j.mu.Unlock()
	}
	backends := make([]*sharedBackend, 0, len(s.backends))
	for _, sb := range s.backends {
		backends = append(backends, sb)
	}
	s.mu.Unlock()
	for _, ch := range doneChans {
		<-ch
	}
	var err error
	for _, sb := range backends {
		if cerr := sb.provider.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// backend returns (opening on first use) the shared provider stack for url.
// The driver's Open round-trips run OUTSIDE the server lock — an unreachable
// provider must not stall the whole API — so two racing first-openers may
// both construct; the loser's stack is closed and the winner's kept.
func (s *Server) backend(ctx context.Context, url string) (*sharedBackend, error) {
	s.mu.Lock()
	sb := s.backends[url]
	s.mu.Unlock()
	if sb != nil {
		return sb, nil
	}
	be, err := rewire.OpenBackend(ctx, url)
	if err != nil {
		return nil, err
	}
	metrics := &rewire.BackendMetrics{}
	wrapped := rewire.WithMetrics(be, metrics)
	if s.opts.RateLimitRPS > 0 {
		wrapped = rewire.WithRateLimit(wrapped, s.opts.RateLimitRPS, s.opts.RateLimitBurst)
	}
	if s.opts.BatchWait > 0 {
		wrapped = rewire.WithBatching(wrapped, rewire.BatchingOptions{
			MaxBatch: s.opts.BatchMax,
			MaxWait:  s.opts.BatchWait,
		})
	}
	fresh := &sharedBackend{url: url, provider: rewire.BackendSource(wrapped), metrics: metrics, backend: wrapped}
	s.mu.Lock()
	if won := s.backends[url]; won != nil {
		s.mu.Unlock()
		fresh.provider.Close()
		return won, nil
	}
	if s.opts.CacheDir != "" {
		// Attach under s.mu, before publication: the replay must land in a
		// still-fresh client, and serializing here guarantees exactly one
		// racing first-opener ever takes the directory's flock (the loser
		// closed its stack above without touching the cache). The cost is a
		// local-disk replay inside the lock, paid once per backend URL.
		if err := fresh.provider.AttachDurableCache(filepath.Join(s.opts.CacheDir, cacheSubdir(url))); err != nil {
			s.mu.Unlock()
			fresh.provider.Close()
			return nil, fmt.Errorf("serve: opening durable cache for %s: %w", url, err)
		}
	}
	s.backends[url] = fresh
	for tenant, perURL := range s.budgets {
		if n, ok := perURL[url]; ok {
			fresh.provider.SetTenantBudget(tenant, n)
		}
	}
	s.mu.Unlock()
	return fresh, nil
}

// cacheSubdir names the per-URL durable cache directory. URLs contain
// characters no filesystem path wants (slashes, query strings), so the name
// is a content hash: stable across restarts, collision-free in practice,
// and opaque on purpose — the manifest inside the directory is the state.
func cacheSubdir(url string) string {
	sum := sha256.Sum256([]byte(url))
	return "be-" + hex.EncodeToString(sum[:8])
}

// setTenantBudget records (durably) and applies the tenant's cap on url.
func (s *Server) setTenantBudget(tenant, url string, n int64) {
	s.mu.Lock()
	perURL := s.budgets[tenant]
	if perURL == nil {
		perURL = make(map[string]int64)
		s.budgets[tenant] = perURL
	}
	perURL[url] = n
	sb := s.backends[url]
	s.mu.Unlock()
	if sb != nil {
		sb.provider.SetTenantBudget(tenant, n)
	}
}

// liveJobs counts the tenant's non-terminal jobs. Callers hold s.mu.
func (s *Server) liveJobsLocked(tenant string) int {
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.spec.Tenant == tenant && !terminal(j.state) {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Submit validates spec, opens (or joins) its backend, and starts the job's
// runner. It returns the job id immediately; samples arrive on the stream.
func (s *Server) Submit(ctx context.Context, spec JobSpec) (string, error) {
	if err := spec.normalize(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", errDraining
	}
	if max := s.opts.MaxJobsPerTenant; max > 0 && s.liveJobsLocked(spec.Tenant) >= max {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: tenant %q already has %d live jobs", errTenantBusy, spec.Tenant, max)
	}
	s.mu.Unlock()

	sb, err := s.backend(ctx, spec.Backend)
	if err != nil {
		return "", err
	}
	if spec.Budget > 0 {
		s.setTenantBudget(spec.Tenant, spec.Backend, spec.Budget)
	}
	opts, err := spec.options()
	if err != nil {
		return "", err
	}
	sess, err := rewire.NewSession(sb.provider, opts...)
	if err != nil {
		return "", err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", errDraining
	}
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("j%d", s.nextID),
		spec:  spec,
		state: StateRunning,
		wake:  make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	s.launch(j, sb, sess)
	return j.id, nil
}

// launch installs sess as j's live session and starts the runner goroutine.
func (s *Server) launch(j *job, sb *sharedBackend, sess *rewire.Session) {
	runCtx, cancel := context.WithCancel(rewire.WithTenant(s.ctx, j.spec.Tenant))
	done := make(chan struct{})
	j.mu.Lock()
	j.state = StateRunning
	j.sess = sess
	j.cancel = cancel
	j.runnerDone = done
	remaining := j.spec.Samples - len(j.samples)
	old := j.swapWakeLocked()
	j.mu.Unlock()
	close(old)
	go s.run(runCtx, j, sb, sess, done, remaining)
}

// run is the job's runner goroutine: it drains the session stream into the
// job's sample buffer, broadcasting each append, then settles the job into
// its next state — done (estimate computed), paused (checkpoint stored),
// cancelled, or failed.
func (s *Server) run(ctx context.Context, j *job, sb *sharedBackend, sess *rewire.Session, done chan struct{}, remaining int) {
	defer close(done)
	var runErr error
	for smp, err := range sess.Stream(ctx, remaining) {
		if err != nil {
			runErr = err
			break
		}
		j.mu.Lock()
		j.samples = append(j.samples, smp)
		old := j.swapWakeLocked()
		j.mu.Unlock()
		close(old)
	}

	var (
		next       State
		checkpoint []byte
		est        float64
		estOK      bool
	)
	switch {
	case runErr == nil:
		next = StateDone
	case errors.Is(runErr, rewire.ErrPaused):
		j.mu.Lock()
		have := len(j.samples)
		j.mu.Unlock()
		if have >= j.spec.Samples {
			// The pause raced a clean completion: nothing left to resume.
			next = StateDone
			runErr = nil
			break
		}
		cp, err := sess.Checkpoint(ctx)
		if err != nil {
			next = StateFailed
			runErr = fmt.Errorf("serve: checkpointing paused job: %w", err)
			break
		}
		next = StatePaused
		checkpoint = cp
		runErr = nil
	case errors.Is(runErr, context.Canceled) && ctx.Err() != nil:
		next = StateCancelled
		runErr = nil
	default:
		next = StateFailed
	}
	if next == StateDone {
		est, estOK = estimateSamples(j.samplesView(), sb.provider)
	}

	j.mu.Lock()
	j.state = next
	j.checkpoint = checkpoint
	j.runErr = runErr
	j.estimate, j.estimateOK = est, estOK
	j.sess = nil
	j.cancel = nil
	j.runnerDone = nil
	old := j.swapWakeLocked()
	j.mu.Unlock()
	close(old)
}

// samplesView returns a stable read-only view of the samples delivered so
// far (append-only buffer: existing entries never mutate).
func (j *job) samplesView() []rewire.Sample {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.samples[:len(j.samples):len(j.samples)]
}

// estimateSamples computes the paper's self-normalized average-degree
// estimate from delivered samples, reading degrees through the provider's
// free CachedDegree accessor — every sampled node was demanded by the walk
// itself, so serving-layer estimation never perturbs any tenant's bill.
func estimateSamples(samples []rewire.Sample, prov *rewire.Provider) (float64, bool) {
	var is estimate.ImportanceSampler
	for _, smp := range samples {
		deg, ok := prov.CachedDegree(smp.Node)
		if !ok {
			continue
		}
		if err := is.Add(float64(deg), smp.Weight); err != nil {
			continue
		}
	}
	if is.N() == 0 {
		return 0, false
	}
	return is.Estimate(), true
}

// Pause asks the named job to quiesce at its next step boundary. The
// transition is asynchronous: the job reports StatePaused once its walkers
// retired and the checkpoint is stored (poll the status, or follow the
// stream — it ends with a "paused" event).
func (s *Server) Pause(id string) error {
	j := s.jobByID(id)
	if j == nil {
		return errNoSuchJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StatePaused:
		return nil // idempotent
	case j.state != StateRunning || j.sess == nil:
		return fmt.Errorf("%w: job %s is %s", errWrongState, id, j.state)
	}
	j.sess.Pause()
	return nil
}

// Resume continues a paused job from its stored checkpoint — the serving
// layer is the public checkpoint API's first consumer: the bytes go through
// rewire.Resume with the SHARED provider reattached via WithSource, so the
// resumed walk keeps every cache entry the fleet (its own and other
// tenants') already paid for, and its future trajectory is byte-identical
// to never having paused.
func (s *Server) Resume(ctx context.Context, id string) error {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return errDraining
	}
	j := s.jobByID(id)
	if j == nil {
		return errNoSuchJob
	}
	j.mu.Lock()
	if j.state != StatePaused {
		j.mu.Unlock()
		return fmt.Errorf("%w: job %s is %s", errWrongState, id, j.state)
	}
	if len(j.samples) >= j.spec.Samples {
		// Nothing left to draw: settle as done without a runner.
		j.state = StateDone
		j.checkpoint = nil
		old := j.swapWakeLocked()
		j.mu.Unlock()
		close(old)
		return nil
	}
	// Claim the transition (locking out concurrent Resumes) before the
	// backend round-trip and session rebuild happen outside the lock.
	j.state = StateRunning
	checkpoint := j.checkpoint
	spec := j.spec
	old := j.swapWakeLocked()
	j.mu.Unlock()
	close(old)

	revert := func(err error) error {
		j.mu.Lock()
		j.state = StatePaused
		o := j.swapWakeLocked()
		j.mu.Unlock()
		close(o)
		return err
	}
	sb, err := s.backend(ctx, spec.Backend)
	if err != nil {
		return revert(err)
	}
	sess, err := rewire.Resume(ctx, checkpoint, rewire.WithSource(sb.provider))
	if err != nil {
		return revert(fmt.Errorf("serve: resuming job %s: %w", id, err))
	}
	s.launch(j, sb, sess)
	return nil
}

// Cancel aborts the named job. Running jobs stop mid-stream (their context
// is cancelled); paused or pending ones settle immediately. Terminal jobs
// are left as they are (idempotent for already-cancelled ones).
func (s *Server) Cancel(id string) error {
	j := s.jobByID(id)
	if j == nil {
		return errNoSuchJob
	}
	j.mu.Lock()
	switch {
	case j.state == StateCancelled:
		j.mu.Unlock()
		return nil
	case terminal(j.state):
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("%w: job %s is %s", errWrongState, id, st)
	case j.cancel != nil: // running: the runner settles the state
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return nil
	default: // paused: settle in place
		j.state = StateCancelled
		j.checkpoint = nil
		old := j.swapWakeLocked()
		j.mu.Unlock()
		close(old)
		return nil
	}
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobList returns the jobs in submission order.
func (s *Server) jobList() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Drain is the graceful-shutdown half the SIGTERM handler calls: it stops
// accepting submissions and resumes, asks every running job to pause at its
// next step boundary, and waits (bounded by ctx) until every runner has
// checkpointed and exited. After a clean drain every non-terminal job is
// StatePaused with its checkpoint stored — SaveState then persists them.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	var doneChans []chan struct{}
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == StateRunning && j.sess != nil {
			j.sess.Pause()
		}
		if j.runnerDone != nil {
			doneChans = append(doneChans, j.runnerDone)
		}
		j.mu.Unlock()
	}
	for _, ch := range doneChans {
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
		}
	}
	return nil
}

// TenantBills returns every tenant's bill on every opened backend:
// tenant → backend URL → bill. The per-URL maps are consistent snapshots of
// each provider's ledger.
func (s *Server) TenantBills() map[string]map[string]rewire.TenantBill {
	s.mu.Lock()
	backends := make([]*sharedBackend, 0, len(s.backends))
	for _, sb := range s.backends {
		backends = append(backends, sb)
	}
	s.mu.Unlock()
	out := make(map[string]map[string]rewire.TenantBill)
	for _, sb := range backends {
		for tenant, bill := range sb.provider.TenantBills() {
			perURL := out[tenant]
			if perURL == nil {
				perURL = make(map[string]rewire.TenantBill)
				out[tenant] = perURL
			}
			perURL[sb.url] = bill
		}
	}
	return out
}

// BackendURLs returns the opened backend URLs, sorted.
func (s *Server) BackendURLs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.backends))
	for url := range s.backends {
		out = append(out, url)
	}
	slices.Sort(out)
	return out
}
