package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rewire"
	"rewire/internal/estimate"
	"rewire/internal/httpsrc"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(context.Background(), opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func request(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func submitJob(t *testing.T, base string, spec JobSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, data := request(t, http.MethodPost, base+"/v1/jobs", string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, data)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &out); err != nil || out.ID == "" {
		t.Fatalf("submit: bad response %s (%v)", data, err)
	}
	return out.ID
}

// readStream follows the job's sample stream from index `from`, invoking
// onSample with the count read so far after each sample line, until the
// stream's closing state line arrives.
func readStream(t *testing.T, base, id string, from int, onSample func(n int)) ([]rewire.Sample, streamEvent) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?from=%d", base, id, from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: status %d: %s", resp.StatusCode, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var samples []rewire.Sample
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream: bad line %q: %v", sc.Text(), err)
		}
		if ev.Sample != nil {
			samples = append(samples, *ev.Sample)
			if onSample != nil {
				onSample(len(samples))
			}
			continue
		}
		if ev.State != "" {
			return samples, ev
		}
		t.Fatalf("stream: line with neither sample nor state: %q", sc.Text())
	}
	t.Fatalf("stream for %s ended without a state line: %v", id, sc.Err())
	return nil, streamEvent{}
}

func jobStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	code, data := request(t, http.MethodGet, base+"/v1/jobs/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("status: %d: %s", code, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, base, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := jobStatus(t, base, id)
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (want %q): %+v", id, st.State, want, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitSamples(t *testing.T, base, id string, n int) JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := jobStatus(t, base, id)
		if st.Samples >= n || terminal(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s delivered %d samples (want >= %d)", id, st.Samples, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// directSamples runs the spec's option set as a plain SDK session over its
// own provider and returns the first n samples of its trajectory.
func directSamples(t *testing.T, url string, spec JobSpec, n int) ([]rewire.Sample, *rewire.Provider) {
	t.Helper()
	prov, err := rewire.Open(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { prov.Close() })
	if err := spec.normalize(); err != nil { // same defaulting Submit applies
		t.Fatal(err)
	}
	opts, err := spec.options()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := rewire.NewSession(prov, opts...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Samples(rewire.WithTenant(context.Background(), spec.Tenant), n)
	if err != nil {
		t.Fatal(err)
	}
	return out, prov
}

// TestConformanceWithDirectSession pins the tentpole's core promise: a job
// submitted over the HTTP API and a Session built directly from the
// equivalent functional options produce the identical trajectory, the
// identical unique-query bill, and the identical estimate.
func TestConformanceWithDirectSession(t *testing.T) {
	const url = "mem:social?nodes=300&edges=1200&seed=3"
	spec := JobSpec{Backend: url, Tenant: "alice", Samples: 800, Algorithm: "MTO", Seed: 9}
	s, ts := newTestServer(t, Options{})
	id := submitJob(t, ts.URL, spec)
	got, end := readStream(t, ts.URL, id, 0, nil)
	if end.State != StateDone {
		t.Fatalf("stream ended %q (err %q), want done", end.State, end.Error)
	}
	if len(got) != spec.Samples {
		t.Fatalf("HTTP job delivered %d samples, want %d", len(got), spec.Samples)
	}

	want, prov := directSamples(t, url, spec, spec.Samples)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: HTTP %+v, direct %+v", i, got[i], want[i])
		}
	}

	// Bills: the lone tenant carries the entire shared ledger, and it matches
	// the direct session's bill query for query.
	sb, err := s.backend(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	alice := sb.provider.TenantBill("alice").Unique
	if alice != prov.UniqueQueries() {
		t.Fatalf("HTTP job billed %d unique queries, direct session %d", alice, prov.UniqueQueries())
	}
	if global := sb.provider.UniqueQueries(); alice != global {
		t.Fatalf("alice's bill %d != shared ledger %d", alice, global)
	}

	// Estimate: exactly the SDK-side computation over the same samples.
	var is estimate.ImportanceSampler
	for _, smp := range want {
		deg, ok := prov.CachedDegree(smp.Node)
		if !ok {
			t.Fatalf("node %d not cached after the walk visited it", smp.Node)
		}
		if err := is.Add(float64(deg), smp.Weight); err != nil {
			t.Fatal(err)
		}
	}
	st := jobStatus(t, ts.URL, id)
	if st.Estimate == nil {
		t.Fatal("done job has no estimate")
	}
	if *st.Estimate != is.Estimate() {
		t.Fatalf("HTTP estimate %v, direct %v", *st.Estimate, is.Estimate())
	}
}

// TestConformanceFleetPartitioned extends conformance to a multi-walker
// partitioned job: merged arrival order is nondeterministic, but each
// walker's own subsequence — and the total bill — must match the direct run.
// MHRW keeps the walkers' chains independent (MTO's shared overlay makes
// multi-walker weights interleaving-dependent by design).
func TestConformanceFleetPartitioned(t *testing.T) {
	const url = "mem:social?nodes=400&edges=1600&seed=8"
	spec := JobSpec{Backend: url, Tenant: "fleet", Samples: 600, Fleet: 3, Seed: 17, Partitioned: true, Algorithm: "MHRW"}
	s, ts := newTestServer(t, Options{})
	id := submitJob(t, ts.URL, spec)
	got, end := readStream(t, ts.URL, id, 0, nil)
	if end.State != StateDone {
		t.Fatalf("stream ended %q (err %q), want done", end.State, end.Error)
	}
	want, prov := directSamples(t, url, spec, spec.Samples)
	byWalker := func(samples []rewire.Sample) map[int][]rewire.Sample {
		out := make(map[int][]rewire.Sample)
		for _, smp := range samples {
			out[smp.Walker] = append(out[smp.Walker], smp)
		}
		return out
	}
	gw, ww := byWalker(got), byWalker(want)
	if len(gw) != len(ww) {
		t.Fatalf("HTTP run used %d walkers, direct %d", len(gw), len(ww))
	}
	for w, wantSeq := range ww {
		gotSeq := gw[w]
		if len(gotSeq) != len(wantSeq) {
			t.Fatalf("walker %d: HTTP drew %d samples, direct %d", w, len(gotSeq), len(wantSeq))
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Fatalf("walker %d sample %d: HTTP %+v, direct %+v", w, i, gotSeq[i], wantSeq[i])
			}
		}
	}
	sb, err := s.backend(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sb.provider.TenantBill("fleet").Unique, prov.UniqueQueries(); got != want {
		t.Fatalf("HTTP fleet billed %d, direct %d", got, want)
	}
}

// TestTenantHammerSharedCache races 8 tenants' jobs over ONE shared backend
// (run under -race in CI) and asserts the billing-isolation invariant the
// tentpole rests on: per-tenant bills partition the global ledger exactly —
// cross-tenant cache hits are free, nothing is double-billed, nothing leaks.
func TestTenantHammerSharedCache(t *testing.T) {
	const url = "mem:social?nodes=500&edges=2000&seed=5"
	const tenants = 8
	s, ts := newTestServer(t, Options{})
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := JobSpec{
				Backend: url,
				Tenant:  fmt.Sprintf("tenant-%d", i),
				Samples: 300,
				Seed:    uint64(100 + i),
			}
			body, err := json.Marshal(spec)
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("tenant %d submit: %d: %s", i, resp.StatusCode, data)
				return
			}
			var out struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(data, &out); err != nil {
				errs <- err
				return
			}
			// Follow the stream to completion — concurrent stream handlers
			// are part of what the race detector should see.
			sr, err := http.Get(ts.URL + "/v1/jobs/" + out.ID + "/stream")
			if err != nil {
				errs <- err
				return
			}
			defer sr.Body.Close()
			sc := bufio.NewScanner(sr.Body)
			sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
			n := 0
			for sc.Scan() {
				var ev streamEvent
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					errs <- err
					return
				}
				if ev.Sample != nil {
					n++
					continue
				}
				if ev.State != StateDone {
					errs <- fmt.Errorf("tenant %d job ended %q: %s", i, ev.State, ev.Error)
				} else if n != spec.Samples {
					errs <- fmt.Errorf("tenant %d streamed %d samples, want %d", i, n, spec.Samples)
				}
				return
			}
			errs <- fmt.Errorf("tenant %d stream ended without a state line", i)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	sb, err := s.backend(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	global := sb.provider.UniqueQueries()
	var sum int64
	for name, perURL := range s.TenantBills() {
		bill := perURL[url]
		sum += bill.Unique
		if bill.Reserved != 0 {
			t.Fatalf("tenant %q left a dangling reservation: %+v", name, bill)
		}
	}
	if sum != global {
		t.Fatalf("tenant bills sum to %d, shared ledger says %d", sum, global)
	}
	if global == 0 || global > 500 {
		t.Fatalf("shared ledger %d outside (0, 500]: cache sharing broken", global)
	}

	// The same invariant must hold through the public endpoints.
	code, data := request(t, http.MethodGet, ts.URL+"/v1/tenants", "")
	if code != http.StatusOK {
		t.Fatalf("tenants: %d: %s", code, data)
	}
	var tl struct {
		Tenants map[string]map[string]rewire.TenantBill `json:"tenants"`
	}
	if err := json.Unmarshal(data, &tl); err != nil {
		t.Fatal(err)
	}
	var apiSum int64
	for _, perURL := range tl.Tenants {
		apiSum += perURL[url].Unique
	}
	code, data = request(t, http.MethodGet, ts.URL+"/v1/backends", "")
	if code != http.StatusOK {
		t.Fatalf("backends: %d: %s", code, data)
	}
	var bl struct {
		Backends []BackendInfo `json:"backends"`
	}
	if err := json.Unmarshal(data, &bl); err != nil {
		t.Fatal(err)
	}
	if len(bl.Backends) != 1 {
		t.Fatalf("got %d backends, want 1 shared", len(bl.Backends))
	}
	if apiSum != bl.Backends[0].UniqueQueries {
		t.Fatalf("API tenant sum %d != API ledger %d", apiSum, bl.Backends[0].UniqueQueries)
	}
}

// TestPauseResumeByteIdenticalOverHTTP is the acceptance scenario end to
// end: pause a live job mid-run over HTTP, resume it, and verify the
// stitched trajectory is byte-identical to an uninterrupted direct run of
// the same chain. The sim backend's real per-fetch latency paces the walk so
// the pause lands mid-run; the job's huge budget means it can never win the
// race by finishing first.
func TestPauseResumeByteIdenticalOverHTTP(t *testing.T) {
	const simURL = "sim:social?nodes=2000&edges=8000&seed=11&real=500us"
	const memURL = "mem:social?nodes=2000&edges=8000&seed=11"
	spec := JobSpec{Backend: simURL, Tenant: "walker", Samples: 1000000, Algorithm: "MTO", Seed: 4}
	_, ts := newTestServer(t, Options{})
	id := submitJob(t, ts.URL, spec)

	pause := func() {
		code, data := request(t, http.MethodPost, ts.URL+"/v1/jobs/"+id+"/pause", "")
		if code != http.StatusAccepted {
			t.Errorf("pause: %d: %s", code, data)
		}
	}
	var once1 sync.Once
	first, end := readStream(t, ts.URL, id, 0, func(n int) {
		if n >= 50 {
			once1.Do(pause)
		}
	})
	if end.State != StatePaused {
		t.Fatalf("stream ended %q (err %q), want paused", end.State, end.Error)
	}
	st := waitState(t, ts.URL, id, StatePaused)
	if st.Samples != len(first) {
		t.Fatalf("paused status reports %d samples, stream delivered %d", st.Samples, len(first))
	}

	code, cp := request(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/checkpoint", "")
	if code != http.StatusOK || !bytes.Contains(cp, []byte("rewire_checkpoint")) {
		t.Fatalf("checkpoint endpoint: %d: %.80s", code, cp)
	}

	code, data := request(t, http.MethodPost, ts.URL+"/v1/jobs/"+id+"/resume", "")
	if code != http.StatusAccepted {
		t.Fatalf("resume: %d: %s", code, data)
	}
	var once2 sync.Once
	second, end2 := readStream(t, ts.URL, id, len(first), func(n int) {
		if n >= 200 {
			once2.Do(pause)
		}
	})
	if end2.State != StatePaused {
		t.Fatalf("second stream ended %q (err %q), want paused", end2.State, end2.Error)
	}
	got := append(append([]rewire.Sample{}, first...), second...)

	// The uninterrupted reference walks the identical topology without the
	// sim latency (mem: and sim: build the same graph from the same spec).
	want, _ := directSamples(t, memURL, spec, len(got))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: paused-and-resumed %+v, uninterrupted %+v", i, got[i], want[i])
		}
	}
}

// TestDrainSaveLoadResume is the redeploy story: SIGTERM-style drain
// checkpoints the live job, SaveState persists it, a FRESH server process
// loads it, and resuming there continues the trajectory byte-identically —
// plus the tenant budget table survives the restart.
func TestDrainSaveLoadResume(t *testing.T) {
	const simURL = "sim:social?nodes=1500&edges=6000&seed=21&real=400us"
	const memURL = "mem:social?nodes=1500&edges=6000&seed=21"
	dir := t.TempDir()
	spec := JobSpec{Backend: simURL, Tenant: "crawler", Samples: 1000000, Seed: 6}

	s1 := New(context.Background(), Options{})
	ts1 := httptest.NewServer(s1.Handler())
	id := submitJob(t, ts1.URL, spec)
	waitSamples(t, ts1.URL, id, 30)
	code, data := request(t, http.MethodPost, ts1.URL+"/v1/tenants/crawler/budget",
		fmt.Sprintf(`{"backend": %q, "budget": 12345}`, simURL))
	if code != http.StatusOK {
		t.Fatalf("budget: %d: %s", code, data)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	// A draining server refuses new work and reports it on health.
	body, err := json.Marshal(JobSpec{Backend: simURL, Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := request(t, http.MethodPost, ts1.URL+"/v1/jobs", string(body)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
	if code, _ := request(t, http.MethodGet, ts1.URL+"/healthz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", code)
	}
	st := waitState(t, ts1.URL, id, StatePaused)
	if err := s1.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server loads the state dir.
	s2 := New(context.Background(), Options{})
	if err := s2.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		s2.Close()
	})
	st2 := jobStatus(t, ts2.URL, id)
	if st2.State != StatePaused || st2.Samples != st.Samples {
		t.Fatalf("restored job: %+v, want paused with %d samples", st2, st.Samples)
	}
	replay, endR := readStream(t, ts2.URL, id, 0, nil)
	if endR.State != StatePaused || len(replay) != st.Samples {
		t.Fatalf("restored replay: %d samples ending %q, want %d ending paused", len(replay), endR.State, st.Samples)
	}

	code, data = request(t, http.MethodPost, ts2.URL+"/v1/jobs/"+id+"/resume", "")
	if code != http.StatusAccepted {
		t.Fatalf("resume after restart: %d: %s", code, data)
	}
	// The persisted budget reached the freshly reopened provider.
	sb, err := s2.backend(context.Background(), simURL)
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.provider.TenantBill("crawler").Budget; got != 12345 {
		t.Fatalf("restored budget %d, want 12345", got)
	}
	var once sync.Once
	second, end2 := readStream(t, ts2.URL, id, len(replay), func(n int) {
		if n >= 150 {
			once.Do(func() {
				if code, data := request(t, http.MethodPost, ts2.URL+"/v1/jobs/"+id+"/pause", ""); code != http.StatusAccepted {
					t.Errorf("pause: %d: %s", code, data)
				}
			})
		}
	})
	if end2.State != StatePaused {
		t.Fatalf("post-restart stream ended %q (err %q), want paused", end2.State, end2.Error)
	}
	got := append(append([]rewire.Sample{}, replay...), second...)
	want, _ := directSamples(t, memURL, spec, len(got))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d after restart: %+v, uninterrupted %+v", i, got[i], want[i])
		}
	}
}

// TestCancelRunningJob: DELETE aborts a live run and the stream reports why.
func TestCancelRunningJob(t *testing.T) {
	const simURL = "sim:social?nodes=1000&edges=4000&seed=9&real=400us"
	_, ts := newTestServer(t, Options{})
	id := submitJob(t, ts.URL, JobSpec{Backend: simURL, Samples: 1000000, Seed: 3})
	waitSamples(t, ts.URL, id, 5)
	if code, data := request(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, ""); code != http.StatusOK {
		t.Fatalf("cancel: %d: %s", code, data)
	}
	waitState(t, ts.URL, id, StateCancelled)
	_, end := readStream(t, ts.URL, id, 0, nil)
	if end.State != StateCancelled {
		t.Fatalf("stream ended %q, want cancelled", end.State)
	}
	// Idempotent; and a cancelled job cannot resume.
	if code, _ := request(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, ""); code != http.StatusOK {
		t.Fatalf("second cancel: %d, want 200", code)
	}
	if code, _ := request(t, http.MethodPost, ts.URL+"/v1/jobs/"+id+"/resume", ""); code != http.StatusConflict {
		t.Fatalf("resume of cancelled job: %d, want 409", code)
	}
}

// TestTenantBudgetFailsJob: a job whose tenant cap is too small for its walk
// fails with the budget error — and only that tenant is affected.
func TestTenantBudgetFailsJob(t *testing.T) {
	const url = "mem:social?nodes=500&edges=2000&seed=13"
	_, ts := newTestServer(t, Options{})
	id := submitJob(t, ts.URL, JobSpec{Backend: url, Tenant: "capped", Samples: 5000, Seed: 2, Budget: 40})
	st := waitState(t, ts.URL, id, StateFailed)
	if !strings.Contains(st.Error, "budget") {
		t.Fatalf("failed job error %q does not name the budget", st.Error)
	}
	// Another tenant on the same shared backend is untouched.
	id2 := submitJob(t, ts.URL, JobSpec{Backend: url, Tenant: "free", Samples: 200, Seed: 2})
	_, end := readStream(t, ts.URL, id2, 0, nil)
	if end.State != StateDone {
		t.Fatalf("free tenant's job ended %q (err %q), want done", end.State, end.Error)
	}
}

// TestMaxJobsPerTenant: the per-tenant concurrency cap returns 429 for the
// capped tenant and leaves others unaffected.
func TestMaxJobsPerTenant(t *testing.T) {
	const simURL = "sim:social?nodes=1000&edges=4000&seed=7&real=400us"
	_, ts := newTestServer(t, Options{MaxJobsPerTenant: 1})
	submitJob(t, ts.URL, JobSpec{Backend: simURL, Tenant: "busy", Samples: 1000000})
	body, err := json.Marshal(JobSpec{Backend: simURL, Tenant: "busy", Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := request(t, http.MethodPost, ts.URL+"/v1/jobs", string(body)); code != http.StatusTooManyRequests {
		t.Fatalf("second job for capped tenant: %d, want 429", code)
	}
	id := submitJob(t, ts.URL, JobSpec{Backend: simURL, Tenant: "other", Samples: 50})
	_, end := readStream(t, ts.URL, id, 0, nil)
	if end.State != StateDone {
		t.Fatalf("other tenant's job ended %q, want done", end.State)
	}
}

// TestRateLimitedBackendConforms: the service-wide rate-limit middleware
// slows fetches without changing the trajectory.
func TestRateLimitedBackendConforms(t *testing.T) {
	const url = "mem:social?nodes=200&edges=800&seed=4"
	spec := JobSpec{Backend: url, Samples: 150, Seed: 5}
	_, ts := newTestServer(t, Options{RateLimitRPS: 5000, RateLimitBurst: 50})
	id := submitJob(t, ts.URL, spec)
	got, end := readStream(t, ts.URL, id, 0, nil)
	if end.State != StateDone {
		t.Fatalf("stream ended %q (err %q), want done", end.State, end.Error)
	}
	want, _ := directSamples(t, url, spec, spec.Samples)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d under rate limit: %+v, direct %+v", i, got[i], want[i])
		}
	}
}

// TestHTTPErrorMapping sweeps the client-error surface.
func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	base := ts.URL
	badSpecs := []string{
		`{bad json`,
		`{"backend": ""}`,
		`{"backend": "bogus:x"}`,
		`{"backend": "mem:barbell?n=20", "algorithm": "XXX"}`,
		`{"backend": "mem:barbell?n=20", "weight_mode": "nope"}`,
		`{"backend": "mem:barbell?n=20", "samples": -1}`,
	}
	for _, body := range badSpecs {
		if code, data := request(t, http.MethodPost, base+"/v1/jobs", body); code != http.StatusBadRequest {
			t.Fatalf("submit %s: %d (%s), want 400", body, code, data)
		}
	}
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/zzz"},
		{http.MethodGet, "/v1/jobs/zzz/stream"},
		{http.MethodGet, "/v1/jobs/zzz/checkpoint"},
		{http.MethodPost, "/v1/jobs/zzz/pause"},
		{http.MethodPost, "/v1/jobs/zzz/resume"},
		{http.MethodDelete, "/v1/jobs/zzz"},
	} {
		if code, _ := request(t, probe.method, base+probe.path, ""); code != http.StatusNotFound {
			t.Fatalf("%s %s: %d, want 404", probe.method, probe.path, code)
		}
	}

	// A completed job rejects the pause-family verbs with 409.
	id := submitJob(t, base, JobSpec{Backend: "mem:barbell?n=30", Samples: 40})
	waitState(t, base, id, StateDone)
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v1/jobs/" + id + "/pause"},
		{http.MethodPost, "/v1/jobs/" + id + "/resume"},
		{http.MethodGet, "/v1/jobs/" + id + "/checkpoint"},
		{http.MethodDelete, "/v1/jobs/" + id},
	} {
		if code, _ := request(t, probe.method, base+probe.path, ""); code != http.StatusConflict {
			t.Fatalf("%s %s on done job: %d, want 409", probe.method, probe.path, code)
		}
	}
	if code, _ := request(t, http.MethodGet, base+"/v1/jobs/"+id+"/stream?from=-1", ""); code != http.StatusBadRequest {
		t.Fatal("negative from accepted")
	}
	if code, _ := request(t, http.MethodGet, base+"/healthz", ""); code != http.StatusOK {
		t.Fatal("healthz not ok on an idle server")
	}
	// Replay of a finished job ends immediately with its state line.
	samples, end := readStream(t, base, id, 0, nil)
	if end.State != StateDone || len(samples) != 40 {
		t.Fatalf("replay: %d samples ending %q, want 40 ending done", len(samples), end.State)
	}
	// from= beyond the buffer yields just the state line.
	samples, end = readStream(t, base, id, 1000, nil)
	if len(samples) != 0 || end.State != StateDone {
		t.Fatalf("replay past end: %d samples ending %q", len(samples), end.State)
	}
}

// TestDurableCacheWarmRestart: with Options.CacheDir, a restarted daemon
// reopens each backend's durable cache warm — the recovered ledger equals
// the pre-restart bill, and re-running the identical job bills nothing new
// while producing the identical samples.
func TestDurableCacheWarmRestart(t *testing.T) {
	const url = "mem:social?nodes=400&edges=1600&seed=17"
	cacheDir := t.TempDir()
	stateDir := t.TempDir()
	// SRW: trajectory depends only on demanded neighbor lists, so the warm
	// rerun is comparable sample-for-sample (MTO's Theorem 5 criterion
	// legitimately uses extra cache knowledge and may rewire differently).
	spec := JobSpec{Backend: url, Tenant: "crawler", Algorithm: "SRW", Samples: 1500, Seed: 4}

	s1 := New(context.Background(), Options{CacheDir: cacheDir})
	ts1 := httptest.NewServer(s1.Handler())
	id := submitJob(t, ts1.URL, spec)
	waitState(t, ts1.URL, id, StateDone)
	coldSamples, _ := readStream(t, ts1.URL, id, 0, nil)
	sb, err := s1.backend(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	bill := sb.provider.UniqueQueries()
	if bill == 0 {
		t.Fatal("cold job billed nothing")
	}
	if st, ok := sb.provider.DurableCacheStats(); !ok || st.Appends < bill {
		t.Fatalf("durable stats %+v ok=%v, want >= %d appends", st, ok, bill)
	}
	if err := s1.SaveState(stateDir); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": same cache dir, fresh server. The backend reopens warm.
	s2 := New(context.Background(), Options{CacheDir: cacheDir})
	if err := s2.LoadState(stateDir); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		s2.Close()
	})
	sb2, err := s2.backend(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if got := sb2.provider.UniqueQueries(); got != bill {
		t.Fatalf("recovered ledger = %d, want %d", got, bill)
	}
	if st, ok := sb2.provider.DurableCacheStats(); !ok || st.Entries == 0 {
		t.Fatalf("reopened durable stats %+v ok=%v, want recovered entries", st, ok)
	}

	id2 := submitJob(t, ts2.URL, spec)
	waitState(t, ts2.URL, id2, StateDone)
	warmSamples, _ := readStream(t, ts2.URL, id2, 0, nil)
	if len(warmSamples) != len(coldSamples) {
		t.Fatalf("warm job drew %d samples, cold drew %d", len(warmSamples), len(coldSamples))
	}
	for i := range warmSamples {
		if warmSamples[i] != coldSamples[i] {
			t.Fatalf("warm sample %d = %+v, cold %+v", i, warmSamples[i], coldSamples[i])
		}
	}
	if got := sb2.provider.UniqueQueries(); got != bill {
		t.Fatalf("warm rerun billed %d new queries", got-bill)
	}
}

// TestBatchingBackendStats runs jobs through a daemon configured with demand
// coalescing over a real HTTP provider and checks the /v1/backends view
// reports the middleware's work: batches dispatched, the ids/batch
// histogram, and the driver's revalidation counter.
func TestBatchingBackendStats(t *testing.T) {
	g, err := rewire.SocialGraph(200, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	provider := httptest.NewServer(httpsrc.Handler(g, httpsrc.ServerOptions{}))
	defer provider.Close()
	url := provider.URL + "?timeout=5s&backoff=1ms&max_backoff=10ms"

	_, ts := newTestServer(t, Options{BatchWait: time.Millisecond, BatchMax: 16})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := submitJob(t, ts.URL, JobSpec{
				Backend: url,
				Tenant:  fmt.Sprintf("tenant-%d", i),
				Samples: 150,
				Seed:    uint64(40 + i),
			})
			if _, ev := readStream(t, ts.URL, id, 0, nil); ev.State != StateDone {
				t.Errorf("job %s ended %q: %s", id, ev.State, ev.Error)
			}
		}(i)
	}
	wg.Wait()

	code, data := request(t, http.MethodGet, ts.URL+"/v1/backends", "")
	if code != http.StatusOK {
		t.Fatalf("backends: %d: %s", code, data)
	}
	var bl struct {
		Backends []BackendInfo `json:"backends"`
	}
	if err := json.Unmarshal(data, &bl); err != nil {
		t.Fatal(err)
	}
	if len(bl.Backends) != 1 {
		t.Fatalf("got %d backends, want 1", len(bl.Backends))
	}
	info := bl.Backends[0]
	if info.BatchesDispatched == nil || *info.BatchesDispatched == 0 {
		t.Fatalf("no batch stats in %+v — coalescing middleware not probed", info)
	}
	if info.CoalescedIDs == nil || *info.CoalescedIDs < *info.BatchesDispatched {
		t.Fatalf("coalesced ids %v < batches %d", info.CoalescedIDs, *info.BatchesDispatched)
	}
	var hist int64
	for _, n := range info.BatchSizeBuckets {
		hist += n
	}
	if hist != info.Fetches {
		t.Fatalf("histogram total %d != fetches %d", hist, info.Fetches)
	}
	if info.Revalidated == nil {
		t.Fatal("HTTP backend published no revalidation counter")
	}
	// The walkers' single-id demand was merged: dispatched round-trips must
	// number strictly fewer than the ids they carried for coalescing to have
	// done anything at all.
	if *info.CoalescedIDs <= *info.BatchesDispatched {
		t.Logf("note: no multi-id batches formed (ids=%d batches=%d)", *info.CoalescedIDs, *info.BatchesDispatched)
	}
}
