// Package serve is the multi-tenant sampling daemon behind cmd/rewire-serve:
// a long-running HTTP/JSON service hosting any number of concurrent sampling
// jobs over shared backends. Each backend URL gets exactly ONE Provider —
// one cache, one singleflight, one global ledger — so every tenant's walk
// warms every other tenant's cache, while the per-tenant ledger (see
// rewire.WithTenant) keeps their bills exactly separable. Jobs stream their
// samples incrementally as JSON lines, can be paused and resumed across
// requests — and, via the state dir, across process restarts — and a
// graceful drain checkpoints every live job at a step boundary, so a
// redeploy never loses a trajectory.
package serve

import (
	"fmt"

	"rewire"
)

// JobSpec is the wire form of a sampling job: a JSON mirror of the SDK's
// functional options plus the two serving-layer bindings (backend URL and
// tenant). Zero values mean "SDK default" throughout, so the minimal spec is
// just {"backend": "...", "samples": n}.
type JobSpec struct {
	// Backend is the driver URL the job samples from (mem:, sim:, http://,
	// snapshot:, or any registered scheme). Jobs naming the same URL share
	// one Provider — cache, ledger, rate limit, and all.
	Backend string `json:"backend"`
	// Tenant is the billing account the job's unique queries land on
	// ("" = the anonymous tenant).
	Tenant string `json:"tenant,omitempty"`
	// Samples is the job's sample budget (default 1000).
	Samples int `json:"samples,omitempty"`
	// Algorithm is "MTO" (default), "SRW", "MHRW", or "RJ".
	Algorithm string `json:"algorithm,omitempty"`
	// Fleet runs k concurrent walkers (default 1).
	Fleet int `json:"fleet,omitempty"`
	// Starts pins the walkers' start nodes (default: spread from the seed).
	Starts []rewire.NodeID `json:"starts,omitempty"`
	// Seed fixes the session RNG (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// JumpProb is AlgRJ's teleport probability (default 0.5).
	JumpProb float64 `json:"jump_prob,omitempty"`
	// Partitioned splits the sample budget per walker up front instead of
	// racing for it (reproducible multi-walker trajectories).
	Partitioned bool `json:"partitioned,omitempty"`
	// Removal / Replacement / Extended toggle the MTO rewiring operations
	// (nil = SDK default, i.e. all on).
	Removal     *bool `json:"removal,omitempty"`
	Replacement *bool `json:"replacement,omitempty"`
	Extended    *bool `json:"extended,omitempty"`
	// WeightMode is "overlay" (default), "exact", or "sampled".
	WeightMode string `json:"weight_mode,omitempty"`
	// Budget caps the TENANT's unique queries on this job's backend before
	// the job starts (0 = leave the tenant's cap alone). It is a tenant
	// property, not a job one — shorthand for POST /v1/tenants/{t}/budget.
	Budget int64 `json:"budget,omitempty"`
}

// normalize fills defaults and validates everything that can be checked
// without touching a backend.
func (sp *JobSpec) normalize() error {
	if sp.Backend == "" {
		return fmt.Errorf("serve: job spec needs a backend URL")
	}
	if sp.Samples == 0 {
		sp.Samples = 1000
	}
	if sp.Samples < 0 {
		return fmt.Errorf("serve: job spec samples %d < 0", sp.Samples)
	}
	if sp.Algorithm == "" {
		sp.Algorithm = rewire.AlgMTO.String()
	}
	if _, err := sp.algorithm(); err != nil {
		return err
	}
	if _, err := sp.options(); err != nil {
		return err
	}
	return nil
}

func (sp *JobSpec) algorithm() (rewire.Algorithm, error) {
	for a := rewire.AlgMTO; a <= rewire.AlgRJ; a++ {
		if a.String() == sp.Algorithm {
			return a, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown algorithm %q (want MTO, SRW, MHRW, or RJ)", sp.Algorithm)
}

// options translates the spec into the SDK's functional options — the same
// fold NewSession performs, so a job submitted over HTTP and a Session built
// directly from the equivalent options run the identical chain (the
// conformance tests pin this).
func (sp *JobSpec) options() ([]rewire.Option, error) {
	alg, err := sp.algorithm()
	if err != nil {
		return nil, err
	}
	opts := []rewire.Option{rewire.WithAlgorithm(alg)}
	if sp.Fleet > 0 {
		opts = append(opts, rewire.WithFleet(sp.Fleet))
	}
	if len(sp.Starts) > 0 {
		opts = append(opts, rewire.WithStarts(sp.Starts...))
	}
	if sp.Seed != 0 {
		opts = append(opts, rewire.WithSeed(sp.Seed))
	}
	if sp.JumpProb != 0 {
		opts = append(opts, rewire.WithJumpProbability(sp.JumpProb))
	}
	if sp.Partitioned {
		opts = append(opts, rewire.WithPartitionedBudget(true))
	}
	if sp.Removal != nil {
		opts = append(opts, rewire.WithRemoval(*sp.Removal))
	}
	if sp.Replacement != nil {
		opts = append(opts, rewire.WithReplacement(*sp.Replacement))
	}
	if sp.Extended != nil {
		opts = append(opts, rewire.WithExtendedCriterion(*sp.Extended))
	}
	switch sp.WeightMode {
	case "":
	case "overlay":
		opts = append(opts, rewire.WithWeightMode(rewire.WeightOverlayDegree))
	case "exact":
		opts = append(opts, rewire.WithWeightMode(rewire.WeightExact))
	case "sampled":
		opts = append(opts, rewire.WithWeightMode(rewire.WeightSampled))
	default:
		return nil, fmt.Errorf("serve: unknown weight mode %q (want overlay, exact, or sampled)", sp.WeightMode)
	}
	return opts, nil
}
