package stats

// CountHistogram turns per-item visit counts into an empirical probability
// distribution. It is how the long-run sampling distribution of a walker is
// measured for the paper's KL-divergence experiments (Fig 8, Fig 9).
type CountHistogram struct {
	counts []int64
	total  int64
}

// NewCountHistogram creates a histogram over n items.
func NewCountHistogram(n int) *CountHistogram {
	return &CountHistogram{counts: make([]int64, n)}
}

// Observe increments the count of item i.
func (h *CountHistogram) Observe(i int) {
	h.counts[i]++
	h.total++
}

// Count returns the raw count of item i.
func (h *CountHistogram) Count(i int) int64 { return h.counts[i] }

// Total returns the total number of observations.
func (h *CountHistogram) Total() int64 { return h.total }

// Distribution returns the normalized empirical distribution. With no
// observations it returns all zeros.
func (h *CountHistogram) Distribution() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}
