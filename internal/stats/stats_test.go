package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummary(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if !almost(s.PopVariance(), 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", s.PopVariance())
	}
	if !almost(s.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.StdErr(), math.Sqrt(32.0/7/8), 1e-12) {
		t.Errorf("StdErr = %v", s.StdErr())
	}
}

func TestSummaryEdgeCases(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should be zeroed")
	}
	s.Add(3)
	if s.Variance() != 0 {
		t.Error("single observation variance should be 0")
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestSummaryMatchesBatchProperty(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Summary
		s.AddAll(xs)
		scale := math.Max(1, math.Abs(s.Mean()))
		return almost(s.Mean(), Mean(xs), 1e-8*scale) &&
			almost(s.Variance(), Variance(xs), 1e-6*math.Max(1, s.Variance()))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q.25 = %v", got)
	}
	// Interpolation between order stats.
	if got := Quantile([]float64{0, 10}, 0.3); !almost(got, 3, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(11, 10); !almost(got, 0.1, 1e-12) {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(9, 10); !almost(got, 0.1, 1e-12) {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("0/0 = %v", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("x/0 = %v", got)
	}
}

func mustKL(t *testing.T, p, q []float64, eps float64) float64 {
	t.Helper()
	d, err := KLDivergence(p, q, eps)
	if err != nil {
		t.Fatalf("KLDivergence: %v", err)
	}
	return d
}

func TestKLDivergenceBasics(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.9, 0.1}
	d := mustKL(t, p, q, 0)
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if !almost(d, want, 1e-12) {
		t.Errorf("KL = %v, want %v", d, want)
	}
	if got := mustKL(t, p, p, 0); got != 0 {
		t.Errorf("KL(p||p) = %v, want 0", got)
	}
}

func TestKLDivergenceZeroHandling(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{1, 0, 0}
	if got := mustKL(t, p, q, 0); !math.IsInf(got, 1) {
		t.Errorf("KL with unsupported mass = %v, want +Inf", got)
	}
	if got := mustKL(t, p, q, 1e-9); math.IsInf(got, 1) || got < 0 {
		t.Errorf("smoothed KL = %v, want finite non-negative", got)
	}
	// q-only zeros are fine without smoothing.
	if got := mustKL(t, q, p, 0); math.IsInf(got, 1) {
		t.Errorf("KL(q||p) = %v, want finite", got)
	}
}

func TestKLZeroMassError(t *testing.T) {
	if _, err := KLDivergence([]float64{0, 0}, []float64{1, 1}, 0); !errors.Is(err, ErrZeroMass) {
		t.Fatalf("got %v, want ErrZeroMass", err)
	}
	if _, err := TotalVariation([]float64{1, 1}, []float64{0, 0}); !errors.Is(err, ErrZeroMass) {
		t.Fatalf("got %v, want ErrZeroMass", err)
	}
	if _, err := KSDistance(nil, []float64{1}); !errors.Is(err, ErrEmptySample) {
		t.Fatalf("got %v, want ErrEmptySample", err)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	check := func(praw, qraw [8]uint8) bool {
		p := make([]float64, 8)
		q := make([]float64, 8)
		for i := range p {
			p[i] = float64(praw[i]) + 1 // strictly positive
			q[i] = float64(qraw[i]) + 1
		}
		d, err := KLDivergence(p, q, 0)
		return err == nil && d >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSymmetricKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.8, 0.2}
	want := mustKL(t, p, q, 0) + mustKL(t, q, p, 0)
	if got, err := SymmetricKL(p, q, 0); err != nil || !almost(got, want, 1e-12) {
		t.Errorf("SymmetricKL = %v (err %v), want %v", got, err, want)
	}
	if got, err := SymmetricKL(q, p, 0); err != nil || !almost(got, want, 1e-12) {
		t.Error("SymmetricKL is not symmetric")
	}
}

func TestKLPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KLDivergence([]float64{1}, []float64{1, 2}, 0)
}

func TestTotalVariation(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if got, err := TotalVariation(p, q); err != nil || !almost(got, 1, 1e-12) {
		t.Errorf("TV = %v (err %v), want 1", got, err)
	}
	if got, err := TotalVariation(p, p); err != nil || got != 0 {
		t.Errorf("TV(p,p) = %v (err %v)", got, err)
	}
	// Normalization: unnormalized inputs give the same result.
	if got, err := TotalVariation([]float64{2, 2}, []float64{3, 1}); err != nil || !almost(got, 0.25, 1e-12) {
		t.Errorf("TV = %v (err %v), want 0.25", got, err)
	}
}

func TestKSDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3, 4}
	if got, err := KSDistance(a, b); err != nil || got != 0 {
		t.Errorf("KS identical = %v (err %v)", got, err)
	}
	// Disjoint supports: KS = 1.
	if got, err := KSDistance([]float64{1, 2}, []float64{10, 20}); err != nil || !almost(got, 1, 1e-12) {
		t.Errorf("KS disjoint = %v (err %v), want 1", got, err)
	}
	// Half-shifted.
	got, err := KSDistance([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6})
	if err != nil || !almost(got, 0.5, 1e-12) {
		t.Errorf("KS shifted = %v, want 0.5", got)
	}
}

func TestCountHistogram(t *testing.T) {
	h := NewCountHistogram(3)
	for i := 0; i < 6; i++ {
		h.Observe(i % 3)
	}
	h.Observe(0)
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(0) != 3 || h.Count(1) != 2 || h.Count(2) != 2 {
		t.Errorf("counts = %d %d %d", h.Count(0), h.Count(1), h.Count(2))
	}
	d := h.Distribution()
	if !almost(d[0], 3.0/7, 1e-12) || !almost(d[1], 2.0/7, 1e-12) {
		t.Errorf("distribution = %v", d)
	}
	empty := NewCountHistogram(2)
	if d := empty.Distribution(); d[0] != 0 || d[1] != 0 {
		t.Errorf("empty distribution = %v", d)
	}
}
