package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrZeroMass is returned by distribution distances when an input has no
// positive probability mass — a data-dependent condition (e.g. an empty
// sampling histogram), not a programming error.
var ErrZeroMass = errors.New("stats: distribution has no positive mass")

// ErrEmptySample is returned by sample distances when an input sample is
// empty.
var ErrEmptySample = errors.New("stats: empty sample")

// normalize returns p scaled to sum 1; it returns nil when the total mass is
// not positive.
func normalize(p []float64) []float64 {
	total := 0.0
	for _, x := range p {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		return nil
	}
	out := make([]float64, len(p))
	for i, x := range p {
		if x > 0 {
			out[i] = x / total
		}
	}
	return out
}

// KLDivergence returns D_KL(P || Q) over the shared support. Terms where
// p[i] = 0 contribute zero. Terms where p[i] > 0 but q[i] = 0 are handled
// with additive smoothing eps (the standard practical fix for finite-sample
// distributions, which the paper's 20,000-sample measurement also needs);
// pass eps = 0 to get +Inf in that case instead.
//
// A zero-mass input (possible with empirical data) is reported as
// ErrZeroMass. Mismatched lengths panic: the two vectors index the same
// support by construction, so a mismatch is a programming error.
func KLDivergence(p, q []float64, eps float64) (float64, error) {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	pp := append([]float64(nil), p...)
	qq := append([]float64(nil), q...)
	if eps > 0 {
		for i := range pp {
			pp[i] += eps
			qq[i] += eps
		}
	}
	pn := normalize(pp)
	qn := normalize(qq)
	if pn == nil || qn == nil {
		return 0, ErrZeroMass
	}
	d := 0.0
	for i := range pn {
		if pn[i] == 0 {
			continue
		}
		if qn[i] == 0 {
			return math.Inf(1), nil
		}
		d += pn[i] * math.Log(pn[i]/qn[i])
	}
	// Guard against tiny negative values from floating-point cancellation.
	if d < 0 && d > -1e-12 {
		d = 0
	}
	return d, nil
}

// SymmetricKL returns the paper's bias measure (§V-A.3):
// D_KL(P||Psam) + D_KL(Psam||P).
func SymmetricKL(p, psam []float64, eps float64) (float64, error) {
	a, err := KLDivergence(p, psam, eps)
	if err != nil {
		return 0, err
	}
	b, err := KLDivergence(psam, p, eps)
	if err != nil {
		return 0, err
	}
	return a + b, nil
}

// TotalVariation returns (1/2) Σ |p_i - q_i| after normalization. Zero-mass
// inputs are reported as ErrZeroMass; mismatched lengths panic (programming
// error, as in KLDivergence).
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		panic("stats: TotalVariation length mismatch")
	}
	pn := normalize(p)
	qn := normalize(q)
	if pn == nil || qn == nil {
		return 0, ErrZeroMass
	}
	d := 0.0
	for i := range pn {
		d += math.Abs(pn[i] - qn[i])
	}
	return d / 2, nil
}

// KSDistance returns the Kolmogorov–Smirnov distance between the empirical
// CDFs of two samples (each sorted internally). It is one of the convergence
// measures the paper cites when comparing SRW and MHRW. Empty samples are
// reported as ErrEmptySample.
func KSDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptySample
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	maxD := 0.0
	for i < len(as) && j < len(bs) {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		d := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}
