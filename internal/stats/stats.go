// Package stats provides the descriptive statistics and distribution
// distances used by the evaluation: running mean/variance, quantiles, and the
// bias measures from the paper's §V-A.3 — the symmetric Kullback–Leibler
// divergence between the ideal and measured sampling distributions, plus the
// Kolmogorov–Smirnov and total-variation distances used in related work.
package stats

import (
	"math"
	"sort"
)

// Summary accumulates count, mean and variance online (Welford's algorithm),
// so walk traces of arbitrary length can be summarized in O(1) memory.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll incorporates every value of xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// PopVariance returns the population (biased) variance.
func (s *Summary) PopVariance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean, sqrt(var/n).
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return math.Sqrt(s.Variance() / float64(s.n))
}

// Min returns the smallest observation (0 with no observations).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with no observations).
func (s *Summary) Max() float64 { return s.max }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var s Summary
	s.AddAll(xs)
	return s.Variance()
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// RelativeError returns |estimate - truth| / |truth|; +Inf when truth is 0
// and the estimate is not.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}
