// Package dataset generates the paper's Table I stand-in datasets. It sits
// below both the public SDK (rewire.PresetGraph) and the experiment drivers
// (internal/exp), so either side can request the exact same topologies
// without depending on the other.
package dataset

import (
	"sync"

	"rewire/internal/gen"
	"rewire/internal/graph"
)

// Dataset pairs a named graph with its generator so drivers can request the
// paper's datasets by name at either scale.
type Dataset struct {
	Name  string
	Graph *graph.Graph
}

// Seed fixes the generator seed for every preset dataset, so all drivers and
// benches agree on the exact topologies.
const Seed = 20130408 // ICDE 2013 conference date

var (
	localOnce  sync.Once
	localCache map[string]*graph.Graph
	smallOnce  sync.Once
	smallCache map[string]*graph.Graph
)

// Local returns the paper's Table I datasets (full scale: Epinions,
// Slashdot A, Slashdot B). Generation happens once per process and is then
// shared — the graphs are immutable.
func Local() []Dataset {
	localOnce.Do(func() {
		localCache = map[string]*graph.Graph{
			"Epinions":   gen.EpinionsLike(Seed),
			"Slashdot A": gen.SlashdotALike(Seed),
			"Slashdot B": gen.SlashdotBLike(Seed),
		}
	})
	return []Dataset{
		{"Epinions", localCache["Epinions"]},
		{"Slashdot A", localCache["Slashdot A"]},
		{"Slashdot B", localCache["Slashdot B"]},
	}
}

// Small returns 1/10-scale counterparts for tests and quick benches.
func Small() []Dataset {
	smallOnce.Do(func() {
		smallCache = map[string]*graph.Graph{
			"Epinions":   gen.EpinionsLikeSmall(Seed),
			"Slashdot A": gen.SlashdotLikeSmall(Seed),
			"Slashdot B": gen.SlashdotLikeSmall(Seed + 1),
		}
	})
	return []Dataset{
		{"Epinions", smallCache["Epinions"]},
		{"Slashdot A", smallCache["Slashdot A"]},
		{"Slashdot B", smallCache["Slashdot B"]},
	}
}

// All selects full or small scale.
func All(full bool) []Dataset {
	if full {
		return Local()
	}
	return Small()
}

// ByName finds one dataset, nil when missing.
func ByName(name string, full bool) *Dataset {
	for _, d := range All(full) {
		if d.Name == name {
			return &d
		}
	}
	return nil
}

var (
	gplusOnce       sync.Once
	gplusCache      *graph.Graph
	gplusSmallOnce  sync.Once
	gplusSmallCache *graph.Graph
)

// GooglePlus returns the Google Plus stand-in at the requested scale.
func GooglePlus(full bool) *graph.Graph {
	if full {
		gplusOnce.Do(func() { gplusCache = gen.GooglePlusLike(Seed) })
		return gplusCache
	}
	gplusSmallOnce.Do(func() { gplusSmallCache = gen.GooglePlusLikeSmall(Seed) })
	return gplusSmallCache
}
