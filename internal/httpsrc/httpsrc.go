// Package httpsrc is the live-provider driver: a Backend that speaks a small
// JSON neighbor-list protocol over HTTP — the paper's restrictive third-party
// web interface made literal. It handles what real rate-limited endpoints
// throw at a crawler: X-RateLimit-* feedback, 429 with Retry-After, transient
// 5xx, and slow responses, with bounded-jitter exponential backoff and a
// per-attempt context deadline. The package also ships the reference server
// (Handler) the conformance and driver tests run against.
//
// Protocol (all responses JSON):
//
//	GET {base}/neighbors?ids=1,2,3
//	  200 {"results":[{"id":1,"neighbors":[2,3]}, ...]}   (request order)
//	  404 {"error":"no such user","id":9}                 (whole batch fails)
//	  429 + Retry-After: <seconds>                        (quota exhausted)
//	GET {base}/meta
//	  200 {"num_users":12345}
//
// Every response may carry X-RateLimit-Limit / X-RateLimit-Remaining /
// X-RateLimit-Reset (unix seconds); the backend records the latest values
// for rate-limit feedback.
package httpsrc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"rewire/internal/graph"
	"rewire/internal/osn"
)

// Defaults for Options zero values.
const (
	DefaultMaxAttempts    = 4
	DefaultBaseBackoff    = 100 * time.Millisecond
	DefaultMaxBackoff     = 5 * time.Second
	DefaultRequestTimeout = 10 * time.Second
	DefaultBatchSize      = 64
)

// maxResponseBytes caps how much of a response body is read — a misbehaving
// server must not balloon the crawler's memory.
const maxResponseBytes = 32 << 20

// Options configures an HTTP backend. The zero value of every field selects
// its default; only BaseURL is required.
type Options struct {
	// BaseURL is the provider root, e.g. "http://host:8080/graph". The
	// protocol paths (/neighbors, /meta) are appended to it.
	BaseURL string
	// Client is the http.Client to use (default: a fresh client, so closing
	// idle connections never touches a shared transport).
	Client *http.Client
	// MaxAttempts bounds tries per batch, first attempt included.
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the exponential backoff between
	// retries. The delay before retry n is min(MaxBackoff, BaseBackoff·2ⁿ⁻¹)
	// with bounded jitter in [delay/2, delay), and a server Retry-After
	// overrides the computed delay when longer — up to MaxBackoff. A
	// Retry-After beyond MaxBackoff (a 429 on an hour-long quota window) is
	// not slept out: the StatusError is returned, RetryAfter included, for
	// the caller to schedule around.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RequestTimeout is the per-attempt deadline, layered under the caller's
	// context: one slow attempt fails fast and retries instead of eating the
	// whole walk deadline.
	RequestTimeout time.Duration
	// BatchSize caps ids per GET; larger Fetch batches are chunked.
	BatchSize int
}

func (o *Options) withDefaults() {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = DefaultBaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
}

// StatusError reports a non-2xx provider response.
type StatusError struct {
	Code int
	// RetryAfter is the parsed Retry-After duration (0 when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("httpsrc: provider returned %d %s", e.Code, http.StatusText(e.Code))
}

// Temporary reports whether retrying can help: quota exhaustion and server
// errors are transient, other 4xx are not.
func (e *StatusError) Temporary() bool { return e.Code == http.StatusTooManyRequests || e.Code >= 500 }

// ProtocolError reports a response that is not valid protocol JSON (or that
// answers a different question than asked). It is permanent: retrying a
// server that speaks garbage is not a recovery strategy.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return "httpsrc: " + e.msg }

// RateLimitState is the latest provider-published quota feedback.
type RateLimitState struct {
	// Limit and Remaining mirror X-RateLimit-Limit / X-RateLimit-Remaining.
	Limit, Remaining int
	// Reset is when the window replenishes (X-RateLimit-Reset, unix seconds).
	Reset time.Time
}

// Backend fetches neighbor lists from an HTTP provider. It implements the
// osn Backend contract and is safe for concurrent use — the walker fleet and
// the prefetch pool share one Backend, and the underlying http.Client pools
// connections across them.
type Backend struct {
	base *url.URL
	opt  Options

	mu    sync.Mutex
	rl    RateLimitState
	rlSet bool
	users int // cached /meta answer; 0 = not yet known
}

// New builds a backend for the provider at o.BaseURL. No request is made —
// use Meta to validate connectivity eagerly.
func New(o Options) (*Backend, error) {
	o.withDefaults()
	u, err := url.Parse(o.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("httpsrc: bad base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("httpsrc: base URL scheme %q is not http(s)", u.Scheme)
	}
	return &Backend{base: u, opt: o}, nil
}

// endpoint builds {base}/{leaf}?{query}, preserving any query the base URL
// already carries.
func (b *Backend) endpoint(leaf string, extra url.Values) string {
	u := *b.base
	u.Path = strings.TrimRight(u.Path, "/") + "/" + leaf
	q := u.Query()
	for k, vs := range extra {
		for _, v := range vs {
			q.Set(k, v)
		}
	}
	u.RawQuery = q.Encode()
	return u.String()
}

// Fetch resolves the ids' neighbor lists (one per id, input order), chunking
// into BatchSize-id requests and retrying transient failures with
// bounded-jitter exponential backoff. Any id outside the provider's user
// space fails the batch with an error matching osn.ErrNoSuchUser.
func (b *Backend) Fetch(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, error) {
	out := make([][]graph.NodeID, 0, len(ids))
	for len(ids) > 0 {
		n := min(len(ids), b.opt.BatchSize)
		lists, err := b.fetchChunk(ctx, ids[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, lists...)
		ids = ids[n:]
	}
	return out, nil
}

// fetchChunk is one protocol request with the retry loop around it.
func (b *Backend) fetchChunk(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, error) {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 1; attempt <= b.opt.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := b.sleepBackoff(ctx, attempt-1, retryAfter); err != nil {
				return nil, err
			}
		}
		lists, err := b.doNeighbors(ctx, ids)
		if err == nil {
			return lists, nil
		}
		if ctx.Err() != nil {
			// The caller's context ended (their cancellation or deadline, not
			// the per-attempt timeout): report it, not the transport noise.
			return nil, ctx.Err()
		}
		if !temporary(err) {
			return nil, err
		}
		lastErr = err
		retryAfter = 0
		var se *StatusError
		if errors.As(err, &se) {
			retryAfter = se.RetryAfter
			if retryAfter > b.opt.MaxBackoff {
				// The provider wants a wait longer than this client is
				// configured to block (a 429 on an hour-long quota window,
				// say). Sleeping it out here would wedge the walk — surface
				// the StatusError, RetryAfter included, and let the caller
				// decide (budget the crawl, WithRateLimit, resume later).
				return nil, err
			}
		}
	}
	return nil, fmt.Errorf("httpsrc: %d attempts exhausted: %w", b.opt.MaxAttempts, lastErr)
}

// temporary reports whether err is worth a retry.
func temporary(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	var pe *ProtocolError
	if errors.As(err, &pe) || errors.Is(err, osn.ErrNoSuchUser) {
		return false
	}
	// Transport-level failures (connection refused/reset, the per-attempt
	// timeout) are transient by default.
	return true
}

// sleepBackoff waits out the bounded-jitter exponential delay before retry n
// (1-based), or the server's Retry-After when that is longer. Cancellation
// interrupts the wait immediately.
func (b *Backend) sleepBackoff(ctx context.Context, n int, retryAfter time.Duration) error {
	d := b.opt.BaseBackoff << (n - 1)
	if d > b.opt.MaxBackoff || d <= 0 {
		d = b.opt.MaxBackoff
	}
	// Bounded jitter: uniform in [d/2, d). Decorrelates a fleet of crawlers
	// without ever waiting less than half the intended delay.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// neighborsResponse is the wire shape of a /neighbors answer.
type neighborsResponse struct {
	Results []struct {
		ID        graph.NodeID   `json:"id"`
		Neighbors []graph.NodeID `json:"neighbors"`
	} `json:"results"`
}

// errorResponse is the wire shape of a protocol error body.
type errorResponse struct {
	Error string       `json:"error"`
	ID    graph.NodeID `json:"id"`
}

// doNeighbors performs one /neighbors attempt under the per-attempt deadline.
func (b *Backend) doNeighbors(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, error) {
	strs := make([]string, len(ids))
	for i, v := range ids {
		strs[i] = strconv.FormatInt(int64(v), 10)
	}
	body, err := b.get(ctx, b.endpoint("neighbors", url.Values{"ids": {strings.Join(strs, ",")}}), true)
	if err != nil {
		return nil, err
	}
	var nr neighborsResponse
	if err := json.Unmarshal(body, &nr); err != nil {
		return nil, &ProtocolError{msg: fmt.Sprintf("malformed neighbors JSON: %v", err)}
	}
	if len(nr.Results) != len(ids) {
		return nil, &ProtocolError{msg: fmt.Sprintf("asked for %d ids, got %d results", len(ids), len(nr.Results))}
	}
	out := make([][]graph.NodeID, len(ids))
	for i, res := range nr.Results {
		if res.ID != ids[i] {
			return nil, &ProtocolError{msg: fmt.Sprintf("result %d answers id %d, want %d", i, res.ID, ids[i])}
		}
		out[i] = res.Neighbors
	}
	return out, nil
}

// Meta fetches the provider-published user count (with the same retry
// policy) and caches it for NumUsers.
func (b *Backend) Meta(ctx context.Context) (int, error) {
	var n int
	var lastErr error
	for attempt := 1; attempt <= b.opt.MaxAttempts; attempt++ {
		if attempt > 1 {
			var retryAfter time.Duration
			var se *StatusError
			if errors.As(lastErr, &se) {
				retryAfter = se.RetryAfter
				if retryAfter > b.opt.MaxBackoff {
					return 0, lastErr // see fetchChunk: never out-sleep MaxBackoff
				}
			}
			if err := b.sleepBackoff(ctx, attempt-1, retryAfter); err != nil {
				return 0, err
			}
		}
		body, err := b.get(ctx, b.endpoint("meta", nil), false)
		if err == nil {
			var meta struct {
				NumUsers int `json:"num_users"`
			}
			if err := json.Unmarshal(body, &meta); err != nil {
				return 0, &ProtocolError{msg: fmt.Sprintf("malformed meta JSON: %v", err)}
			}
			n = meta.NumUsers
			b.mu.Lock()
			b.users = n
			b.mu.Unlock()
			return n, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if !temporary(err) {
			return 0, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("httpsrc: %d attempts exhausted: %w", b.opt.MaxAttempts, lastErr)
}

// NumUsers returns the cached /meta user count, fetching it once on first
// use (0 when the provider is unreachable — open the backend with Meta to
// surface that as an error instead).
func (b *Backend) NumUsers() int {
	b.mu.Lock()
	n := b.users
	b.mu.Unlock()
	if n > 0 {
		return n
	}
	//rewirelint:allow ctxflow osn.UserCounter is context-less by contract; timeout bounds the lazy fetch
	ctx, cancel := context.WithTimeout(context.Background(), b.opt.RequestTimeout)
	defer cancel()
	n, _ = b.Meta(ctx)
	return n
}

// RateLimit returns the latest provider-published quota feedback; ok is
// false until a response has carried X-RateLimit headers.
func (b *Backend) RateLimit() (RateLimitState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rl, b.rlSet
}

// Close releases idle connections held by the backend's transport.
func (b *Backend) Close() error {
	b.opt.Client.CloseIdleConnections()
	return nil
}

// get performs one GET under the per-attempt deadline and maps the status
// code onto the error taxonomy. A 2xx returns the (bounded) body. Only the
// /neighbors endpoint defines 404 as "no such user" (idLookup); anywhere
// else — a mistyped base URL 404ing on /meta, say — a 404 stays a plain
// StatusError so configuration mistakes are not disguised as missing users.
func (b *Backend) get(ctx context.Context, rawURL string, idLookup bool) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, b.opt.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
	}()
	b.noteRateHeaders(resp.Header)
	switch {
	case resp.StatusCode == http.StatusOK:
		return io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	case resp.StatusCode == http.StatusNotFound && idLookup:
		var er errorResponse
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("%w: id %d", osn.ErrNoSuchUser, er.ID)
		}
		return nil, fmt.Errorf("%w: %s", osn.ErrNoSuchUser, rawURL)
	default:
		return nil, &StatusError{Code: resp.StatusCode, RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
}

// noteRateHeaders records X-RateLimit feedback when present.
func (b *Backend) noteRateHeaders(h http.Header) {
	rem := h.Get("X-RateLimit-Remaining")
	if rem == "" {
		return
	}
	var rl RateLimitState
	rl.Remaining, _ = strconv.Atoi(rem)
	rl.Limit, _ = strconv.Atoi(h.Get("X-RateLimit-Limit"))
	if sec, err := strconv.ParseInt(h.Get("X-RateLimit-Reset"), 10, 64); err == nil && sec > 0 {
		rl.Reset = time.Unix(sec, 0)
	}
	b.mu.Lock()
	b.rl, b.rlSet = rl, true
	b.mu.Unlock()
}

// parseRetryAfter handles both forms of the header: delay-seconds and
// HTTP-date.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	if sec, err := strconv.Atoi(s); err == nil && sec >= 0 {
		return time.Duration(sec) * time.Second
	}
	if t, err := http.ParseTime(s); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
