// Package httpsrc is the live-provider driver: a Backend that speaks a small
// JSON neighbor-list protocol over HTTP — the paper's restrictive third-party
// web interface made literal. It handles what real rate-limited endpoints
// throw at a crawler: X-RateLimit-* feedback, 429 with Retry-After, transient
// 5xx, and slow responses, with bounded-jitter exponential backoff and a
// per-attempt context deadline. The package also ships the reference server
// (Handler) the conformance and driver tests run against.
//
// Protocol (all responses JSON):
//
//	GET {base}/neighbors?ids=1,2,3
//	  200 {"results":[{"id":1,"neighbors":[2,3]}, ...]}   (request order)
//	  404 {"error":"no such user","id":9}                 (whole batch fails)
//	  429 + Retry-After: <seconds>                        (quota exhausted)
//	POST {base}/neighbors/batch   body {"ids":[1,2,9]}
//	  200 {"results":[{"id":1,"neighbors":[2,3]},
//	                  {"id":2,"neighbors":[1]},
//	                  {"id":9,"neighbors":[],"error":"no such user"}]}
//	  404/405                                             (route unsupported)
//	GET {base}/meta
//	  200 {"num_users":12345}
//
// The batch POST is the coalescing-friendly form: results are per-id partial
// — an unknown id is an error ENTRY in a 200 response, never a whole-batch
// failure — so one walker's bad id cannot poison the strangers batched with
// it. A backend probes the route once and falls back to GETs forever after a
// 404/405, so it interoperates with providers that only speak the GET form;
// on that path a 404 names the guilty id and the client re-requests the rest.
//
// Both /neighbors and /neighbors/batch 200 responses carry a strong ETag;
// the backend remembers recent (ids → ETag, lists) pairs and revalidates
// with If-None-Match, so a provider answering 304 Not Modified spends
// bandwidth — and, for providers that meter bytes or work, cost — only when
// the answer actually changed.
//
// Every response may carry X-RateLimit-Limit / X-RateLimit-Remaining /
// X-RateLimit-Reset (unix seconds); the backend records the latest values
// for rate-limit feedback.
package httpsrc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rewire/internal/graph"
	"rewire/internal/osn"
)

// Defaults for Options zero values.
const (
	DefaultMaxAttempts     = 4
	DefaultBaseBackoff     = 100 * time.Millisecond
	DefaultMaxBackoff      = 5 * time.Second
	DefaultRequestTimeout  = 10 * time.Second
	DefaultBatchSize       = 64
	DefaultChunkParallel   = 4
	DefaultValidationCache = 256
)

// maxResponseBytes caps how much of a response body is read — a misbehaving
// server must not balloon the crawler's memory.
const maxResponseBytes = 32 << 20

// Options configures an HTTP backend. The zero value of every field selects
// its default; only BaseURL is required.
type Options struct {
	// BaseURL is the provider root, e.g. "http://host:8080/graph". The
	// protocol paths (/neighbors, /meta) are appended to it.
	BaseURL string
	// Client is the http.Client to use (default: a fresh client, so closing
	// idle connections never touches a shared transport).
	Client *http.Client
	// MaxAttempts bounds tries per batch, first attempt included.
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the exponential backoff between
	// retries. The delay before retry n is min(MaxBackoff, BaseBackoff·2ⁿ⁻¹)
	// with bounded jitter in [delay/2, delay), and a server Retry-After
	// overrides the computed delay when longer — up to MaxBackoff. A
	// Retry-After beyond MaxBackoff (a 429 on an hour-long quota window) is
	// not slept out: the StatusError is returned, RetryAfter included, for
	// the caller to schedule around.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RequestTimeout is the per-attempt deadline, layered under the caller's
	// context: one slow attempt fails fast and retries instead of eating the
	// whole walk deadline.
	RequestTimeout time.Duration
	// BatchSize caps ids per request; larger Fetch batches are chunked.
	BatchSize int
	// ChunkParallel caps how many chunks of one oversized Fetch are in
	// flight concurrently (default 4; 1 restores strictly sequential
	// chunking). Result order is preserved regardless.
	ChunkParallel int
	// ValidationCache bounds the ETag revalidation cache: how many recent
	// (ids → ETag, lists) pairs are kept for If-None-Match conditional
	// requests (default 256; negative disables revalidation).
	ValidationCache int
	// DisableBatchPost forces the legacy GET protocol even against providers
	// that advertise POST /neighbors/batch.
	DisableBatchPost bool
}

func (o *Options) withDefaults() {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = DefaultBaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.ChunkParallel <= 0 {
		o.ChunkParallel = DefaultChunkParallel
	}
	if o.ValidationCache == 0 {
		o.ValidationCache = DefaultValidationCache
	}
}

// StatusError reports a non-2xx provider response.
type StatusError struct {
	Code int
	// RetryAfter is the parsed Retry-After duration (0 when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("httpsrc: provider returned %d %s", e.Code, http.StatusText(e.Code))
}

// Temporary reports whether retrying can help: quota exhaustion and server
// errors are transient, other 4xx are not.
func (e *StatusError) Temporary() bool { return e.Code == http.StatusTooManyRequests || e.Code >= 500 }

// ProtocolError reports a response that is not valid protocol JSON (or that
// answers a different question than asked). It is permanent: retrying a
// server that speaks garbage is not a recovery strategy.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return "httpsrc: " + e.msg }

// RateLimitState is the latest provider-published quota feedback.
type RateLimitState struct {
	// Limit and Remaining mirror X-RateLimit-Limit / X-RateLimit-Remaining.
	Limit, Remaining int
	// Reset is when the window replenishes (X-RateLimit-Reset, unix seconds).
	Reset time.Time
}

// Backend fetches neighbor lists from an HTTP provider. It implements the
// osn Backend contract and is safe for concurrent use — the walker fleet and
// the prefetch pool share one Backend, and the underlying http.Client pools
// connections across them.
type Backend struct {
	base *url.URL
	opt  Options

	mu    sync.Mutex
	rl    RateLimitState
	rlSet bool
	users int // cached /meta answer; 0 = not yet known

	// Wire-activity counters (Stats) and the batch-route probe result.
	batchPosts       atomic.Int64
	gets             atomic.Int64
	revalidated      atomic.Int64
	fallbacks        atomic.Int64
	batchUnsupported atomic.Bool

	// ETag revalidation cache: recent (request key → ETag, decoded lists),
	// FIFO-bounded by Options.ValidationCache. Entries are immutable once
	// stored; lists are deep-cloned both in and out, so cached slices never
	// alias what callers own.
	vmu    sync.Mutex
	vcache map[string]*valEntry
	vorder []string
}

// valEntry is one revalidation-cache slot.
type valEntry struct {
	etag  string
	lists [][]graph.NodeID
}

// Stats counts a backend's wire activity since construction.
type Stats struct {
	// BatchPosts and Gets count POST /neighbors/batch and GET /neighbors
	// attempts (retries included).
	BatchPosts, Gets int64
	// Revalidated counts answers served from the validation cache after a
	// 304 Not Modified.
	Revalidated int64
	// BatchFallbacks counts batch-route probes that found no route (at most
	// one: the result is remembered).
	BatchFallbacks int64
}

// Stats returns the backend's wire-activity counters.
func (b *Backend) Stats() Stats {
	return Stats{
		BatchPosts:     b.batchPosts.Load(),
		Gets:           b.gets.Load(),
		Revalidated:    b.revalidated.Load(),
		BatchFallbacks: b.fallbacks.Load(),
	}
}

// New builds a backend for the provider at o.BaseURL. No request is made —
// use Meta to validate connectivity eagerly.
func New(o Options) (*Backend, error) {
	o.withDefaults()
	u, err := url.Parse(o.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("httpsrc: bad base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("httpsrc: base URL scheme %q is not http(s)", u.Scheme)
	}
	return &Backend{base: u, opt: o}, nil
}

// endpoint builds {base}/{leaf}?{query}, preserving any query the base URL
// already carries.
func (b *Backend) endpoint(leaf string, extra url.Values) string {
	u := *b.base
	u.Path = strings.TrimRight(u.Path, "/") + "/" + leaf
	q := u.Query()
	for k, vs := range extra {
		for _, v := range vs {
			q.Set(k, v)
		}
	}
	u.RawQuery = q.Encode()
	return u.String()
}

// Fetch resolves the ids' neighbor lists (one per id, input order), chunking
// into BatchSize-id requests and retrying transient failures with
// bounded-jitter exponential backoff. Any id outside the provider's user
// space fails the batch with an error matching osn.ErrNoSuchUser — the
// strict Backend contract. Callers that want one bad id isolated instead of
// fatal use FetchPartial.
func (b *Backend) Fetch(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, error) {
	lists, errs, err := b.FetchPartial(ctx, ids)
	if err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return lists, nil
}

// FetchPartial resolves the ids with per-id granularity: lists[i] is valid
// where errs[i] is nil, and an id outside the provider's user space yields
// errs[i] matching osn.ErrNoSuchUser without disturbing the others. The
// batch error is non-nil only when the round-trip as a whole failed (errs
// may be nil when every id succeeded). Oversized batches are chunked into
// BatchSize-id requests dispatched with at most ChunkParallel in flight;
// result order is the input order.
func (b *Backend) FetchPartial(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, []error, error) {
	lists := make([][]graph.NodeID, len(ids))
	var errs []error
	type chunk struct{ off, n int }
	var chunks []chunk
	for off := 0; off < len(ids); off += b.opt.BatchSize {
		chunks = append(chunks, chunk{off, min(b.opt.BatchSize, len(ids)-off)})
	}
	merge := func(off int, ls [][]graph.NodeID, es []error) {
		copy(lists[off:], ls)
		for j, e := range es {
			if e == nil {
				continue
			}
			if errs == nil {
				errs = make([]error, len(ids))
			}
			errs[off+j] = e
		}
	}
	if len(chunks) <= 1 || b.opt.ChunkParallel == 1 {
		for _, c := range chunks {
			ls, es, err := b.fetchChunkPartial(ctx, ids[c.off:c.off+c.n])
			if err != nil {
				return nil, nil, err
			}
			merge(c.off, ls, es)
		}
		return lists, errs, nil
	}
	// Bounded-parallel chunk dispatch: a semaphore caps in-flight requests,
	// each chunk writes into its own offset so order is preserved, and the
	// first chunk-level failure cancels the rest.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, b.opt.ChunkParallel)
	var wg sync.WaitGroup
	var fmu sync.Mutex
	var firstErr error
	for _, c := range chunks {
		fmu.Lock()
		failed := firstErr != nil
		fmu.Unlock()
		if failed {
			break
		}
		select {
		case sem <- struct{}{}:
		case <-cctx.Done():
		}
		if cctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(c chunk) {
			defer wg.Done()
			defer func() { <-sem }()
			ls, es, err := b.fetchChunkPartial(cctx, ids[c.off:c.off+c.n])
			fmu.Lock()
			defer fmu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				return
			}
			merge(c.off, ls, es)
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return lists, errs, nil
}

// fetchChunkPartial is one chunk's resolution with the retry loop around it.
// Per-id errors are final answers and never retried; only whole-chunk
// transient failures re-attempt.
func (b *Backend) fetchChunkPartial(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, []error, error) {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 1; attempt <= b.opt.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := b.sleepBackoff(ctx, attempt-1, retryAfter); err != nil {
				return nil, nil, err
			}
		}
		lists, errs, err := b.attemptChunk(ctx, ids)
		if err == nil {
			return lists, errs, nil
		}
		if ctx.Err() != nil {
			// The caller's context ended (their cancellation or deadline, not
			// the per-attempt timeout): report it, not the transport noise.
			return nil, nil, ctx.Err()
		}
		if !temporary(err) {
			return nil, nil, err
		}
		lastErr = err
		retryAfter = 0
		var se *StatusError
		if errors.As(err, &se) {
			retryAfter = se.RetryAfter
			if retryAfter > b.opt.MaxBackoff {
				// The provider wants a wait longer than this client is
				// configured to block (a 429 on an hour-long quota window,
				// say). Sleeping it out here would wedge the walk — surface
				// the StatusError, RetryAfter included, and let the caller
				// decide (budget the crawl, WithRateLimit, resume later).
				return nil, nil, err
			}
		}
	}
	return nil, nil, fmt.Errorf("httpsrc: %d attempts exhausted: %w", b.opt.MaxAttempts, lastErr)
}

// attemptChunk is one protocol attempt for a chunk: the batch POST when the
// provider supports it, the GET form (with guilty-id isolation) otherwise.
// The route probe result is remembered, so exactly one wasted round-trip is
// spent discovering a GET-only provider.
func (b *Backend) attemptChunk(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, []error, error) {
	if !b.opt.DisableBatchPost && !b.batchUnsupported.Load() {
		lists, errs, err := b.doBatchPost(ctx, ids)
		var se *StatusError
		if err != nil && errors.As(err, &se) && (se.Code == http.StatusNotFound || se.Code == http.StatusMethodNotAllowed) {
			// No batch route on this provider: remember and speak GET forever.
			b.batchUnsupported.Store(true)
			b.fallbacks.Add(1)
		} else {
			return lists, errs, err
		}
	}
	return b.getChunkPartial(ctx, ids)
}

// getChunkPartial resolves a chunk over the legacy GET protocol, isolating
// per-id 404s: when the provider names the guilty id, it is struck and the
// rest re-requested; when it does not, the chunk degrades to single-id GETs.
func (b *Backend) getChunkPartial(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, []error, error) {
	lists := make([][]graph.NodeID, len(ids))
	var errs []error
	remaining := slices.Clone(ids)
	idx := make([]int, len(ids)) // idx[j] = original position of remaining[j]
	for i := range idx {
		idx[i] = i
	}
	for len(remaining) > 0 {
		got, err := b.doNeighbors(ctx, remaining)
		if err == nil {
			for j, l := range got {
				lists[idx[j]] = l
			}
			return lists, errs, nil
		}
		var nse *noSuchUserError
		if !errors.As(err, &nse) {
			return nil, nil, err
		}
		if errs == nil {
			errs = make([]error, len(ids))
		}
		if nse.hasID {
			j := slices.Index(remaining, nse.id)
			if j < 0 {
				return nil, nil, &ProtocolError{msg: fmt.Sprintf("404 blames id %d, which was not requested", nse.id)}
			}
			errs[idx[j]] = err
			remaining = slices.Delete(remaining, j, j+1)
			idx = slices.Delete(idx, j, j+1)
			continue
		}
		if len(remaining) == 1 {
			errs[idx[0]] = err
			return lists, errs, nil
		}
		// The provider did not name the guilty id: isolate one by one.
		for j, v := range remaining {
			got, err := b.doNeighbors(ctx, []graph.NodeID{v})
			switch {
			case err == nil:
				lists[idx[j]] = got[0]
			case errors.Is(err, osn.ErrNoSuchUser):
				errs[idx[j]] = err
			default:
				return nil, nil, err
			}
		}
		return lists, errs, nil
	}
	return lists, errs, nil
}

// temporary reports whether err is worth a retry.
func temporary(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	var pe *ProtocolError
	if errors.As(err, &pe) || errors.Is(err, osn.ErrNoSuchUser) {
		return false
	}
	// Transport-level failures (connection refused/reset, the per-attempt
	// timeout) are transient by default.
	return true
}

// sleepBackoff waits out the bounded-jitter exponential delay before retry n
// (1-based), or the server's Retry-After when that is longer. Cancellation
// interrupts the wait immediately.
func (b *Backend) sleepBackoff(ctx context.Context, n int, retryAfter time.Duration) error {
	d := b.opt.BaseBackoff << (n - 1)
	if d > b.opt.MaxBackoff || d <= 0 {
		d = b.opt.MaxBackoff
	}
	// Bounded jitter: uniform in [d/2, d). Decorrelates a fleet of crawlers
	// without ever waiting less than half the intended delay.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// neighborsResponse is the wire shape of a /neighbors answer.
type neighborsResponse struct {
	Results []struct {
		ID        graph.NodeID   `json:"id"`
		Neighbors []graph.NodeID `json:"neighbors"`
	} `json:"results"`
}

// errorResponse is the wire shape of a protocol error body.
type errorResponse struct {
	Error string       `json:"error"`
	ID    graph.NodeID `json:"id"`
}

// batchResult is one id's answer in a /neighbors/batch response: a neighbor
// list, or — when Error is non-empty — a per-id failure that leaves the
// other results valid.
type batchResult struct {
	ID        graph.NodeID   `json:"id"`
	Neighbors []graph.NodeID `json:"neighbors"`
	Error     string         `json:"error,omitempty"`
}

// batchResponse is the wire shape of a /neighbors/batch answer.
type batchResponse struct {
	Results []batchResult `json:"results"`
}

// noSuchUserError is the driver's typed "no such user" answer. It matches
// osn.ErrNoSuchUser via errors.Is; hasID says whether the provider named the
// guilty id (getChunkPartial needs it to strike exactly that id — 0 is a
// valid id, so presence must be explicit).
type noSuchUserError struct {
	id    graph.NodeID
	hasID bool
	ref   string
}

func (e *noSuchUserError) Error() string {
	if e.hasID {
		return fmt.Sprintf("%v: id %d", osn.ErrNoSuchUser, e.id)
	}
	return fmt.Sprintf("%v: %s", osn.ErrNoSuchUser, e.ref)
}

func (e *noSuchUserError) Unwrap() error { return osn.ErrNoSuchUser }

// idsKey renders ids as the comma-joined decimal form used both in GET query
// strings and as the revalidation-cache key.
func idsKey(ids []graph.NodeID) string {
	strs := make([]string, len(ids))
	for i, v := range ids {
		strs[i] = strconv.FormatInt(int64(v), 10)
	}
	return strings.Join(strs, ",")
}

// doNeighbors performs one /neighbors attempt under the per-attempt deadline,
// revalidating with If-None-Match when the answer is cached.
func (b *Backend) doNeighbors(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, error) {
	joined := idsKey(ids)
	key := "G:" + joined
	entry := b.cacheLookup(key)
	var ifNoneMatch string
	if entry != nil {
		ifNoneMatch = entry.etag
	}
	body, etag, notModified, err := b.do(ctx, http.MethodGet,
		b.endpoint("neighbors", url.Values{"ids": {joined}}), nil, ifNoneMatch, true)
	b.gets.Add(1)
	if err != nil {
		return nil, err
	}
	if notModified {
		b.revalidated.Add(1)
		return cloneLists(entry.lists), nil
	}
	var nr neighborsResponse
	if err := json.Unmarshal(body, &nr); err != nil {
		return nil, &ProtocolError{msg: fmt.Sprintf("malformed neighbors JSON: %v", err)}
	}
	if len(nr.Results) != len(ids) {
		return nil, &ProtocolError{msg: fmt.Sprintf("asked for %d ids, got %d results", len(ids), len(nr.Results))}
	}
	out := make([][]graph.NodeID, len(ids))
	for i, res := range nr.Results {
		if res.ID != ids[i] {
			return nil, &ProtocolError{msg: fmt.Sprintf("result %d answers id %d, want %d", i, res.ID, ids[i])}
		}
		out[i] = res.Neighbors
	}
	if etag != "" {
		b.cacheStore(key, etag, out)
	}
	return out, nil
}

// doBatchPost performs one POST /neighbors/batch attempt: per-id partial
// results, ETag revalidation. A 404/405 StatusError means the provider has
// no batch route (attemptChunk handles the fallback).
func (b *Backend) doBatchPost(ctx context.Context, ids []graph.NodeID) ([][]graph.NodeID, []error, error) {
	payload, err := json.Marshal(struct {
		IDs []graph.NodeID `json:"ids"`
	}{IDs: ids})
	if err != nil {
		return nil, nil, err
	}
	key := "P:" + idsKey(ids)
	entry := b.cacheLookup(key)
	var ifNoneMatch string
	if entry != nil {
		ifNoneMatch = entry.etag
	}
	body, etag, notModified, err := b.do(ctx, http.MethodPost, b.endpoint("neighbors/batch", nil), payload, ifNoneMatch, false)
	b.batchPosts.Add(1)
	if err != nil {
		return nil, nil, err
	}
	if notModified {
		b.revalidated.Add(1)
		return cloneLists(entry.lists), nil, nil
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		return nil, nil, &ProtocolError{msg: fmt.Sprintf("malformed batch JSON: %v", err)}
	}
	if len(br.Results) != len(ids) {
		return nil, nil, &ProtocolError{msg: fmt.Sprintf("asked for %d ids, got %d results", len(ids), len(br.Results))}
	}
	lists := make([][]graph.NodeID, len(ids))
	var errs []error
	for i, res := range br.Results {
		if res.ID != ids[i] {
			return nil, nil, &ProtocolError{msg: fmt.Sprintf("result %d answers id %d, want %d", i, res.ID, ids[i])}
		}
		switch res.Error {
		case "":
			lists[i] = res.Neighbors
		case "no such user":
			if errs == nil {
				errs = make([]error, len(ids))
			}
			errs[i] = &noSuchUserError{id: res.ID, hasID: true}
		default:
			return nil, nil, &ProtocolError{msg: fmt.Sprintf("result %d carries unknown error %q", i, res.Error)}
		}
	}
	if errs == nil && etag != "" {
		b.cacheStore(key, etag, lists)
	}
	return lists, errs, nil
}

// cloneLists deep-copies a result set — cache entries are immutable, and
// returned slices pass ownership to the caller.
func cloneLists(lists [][]graph.NodeID) [][]graph.NodeID {
	out := make([][]graph.NodeID, len(lists))
	for i, l := range lists {
		out[i] = slices.Clone(l)
	}
	return out
}

// cacheLookup returns the revalidation-cache entry for key, nil when absent
// or when the cache is disabled.
func (b *Backend) cacheLookup(key string) *valEntry {
	if b.opt.ValidationCache < 0 {
		return nil
	}
	b.vmu.Lock()
	defer b.vmu.Unlock()
	return b.vcache[key]
}

// cacheStore remembers (key → etag, lists), evicting FIFO past the bound.
// Only fully successful answers are stored — per-id errors have no cacheable
// representation.
func (b *Backend) cacheStore(key, etag string, lists [][]graph.NodeID) {
	if b.opt.ValidationCache < 0 {
		return
	}
	b.vmu.Lock()
	defer b.vmu.Unlock()
	if b.vcache == nil {
		b.vcache = make(map[string]*valEntry)
	}
	if _, ok := b.vcache[key]; !ok {
		b.vorder = append(b.vorder, key)
		for len(b.vorder) > b.opt.ValidationCache {
			delete(b.vcache, b.vorder[0])
			b.vorder = b.vorder[1:]
		}
	}
	b.vcache[key] = &valEntry{etag: etag, lists: cloneLists(lists)}
}

// Meta fetches the provider-published user count (with the same retry
// policy) and caches it for NumUsers.
func (b *Backend) Meta(ctx context.Context) (int, error) {
	var n int
	var lastErr error
	for attempt := 1; attempt <= b.opt.MaxAttempts; attempt++ {
		if attempt > 1 {
			var retryAfter time.Duration
			var se *StatusError
			if errors.As(lastErr, &se) {
				retryAfter = se.RetryAfter
				if retryAfter > b.opt.MaxBackoff {
					return 0, lastErr // see fetchChunk: never out-sleep MaxBackoff
				}
			}
			if err := b.sleepBackoff(ctx, attempt-1, retryAfter); err != nil {
				return 0, err
			}
		}
		body, err := b.get(ctx, b.endpoint("meta", nil), false)
		if err == nil {
			var meta struct {
				NumUsers int `json:"num_users"`
			}
			if err := json.Unmarshal(body, &meta); err != nil {
				return 0, &ProtocolError{msg: fmt.Sprintf("malformed meta JSON: %v", err)}
			}
			n = meta.NumUsers
			b.mu.Lock()
			b.users = n
			b.mu.Unlock()
			return n, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if !temporary(err) {
			return 0, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("httpsrc: %d attempts exhausted: %w", b.opt.MaxAttempts, lastErr)
}

// NumUsers returns the cached /meta user count, fetching it once on first
// use (0 when the provider is unreachable — open the backend with Meta to
// surface that as an error instead).
func (b *Backend) NumUsers() int {
	b.mu.Lock()
	n := b.users
	b.mu.Unlock()
	if n > 0 {
		return n
	}
	//rewirelint:allow ctxflow osn.UserCounter is context-less by contract; timeout bounds the lazy fetch
	ctx, cancel := context.WithTimeout(context.Background(), b.opt.RequestTimeout)
	defer cancel()
	n, _ = b.Meta(ctx)
	return n
}

// RateLimit returns the latest provider-published quota feedback; ok is
// false until a response has carried X-RateLimit headers.
func (b *Backend) RateLimit() (RateLimitState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rl, b.rlSet
}

// Close releases idle connections held by the backend's transport.
func (b *Backend) Close() error {
	b.opt.Client.CloseIdleConnections()
	return nil
}

// get performs one GET under the per-attempt deadline and returns the
// (bounded) body — the simple form of do for endpoints without conditional
// requests (/meta).
func (b *Backend) get(ctx context.Context, rawURL string, idLookup bool) ([]byte, error) {
	body, _, _, err := b.do(ctx, http.MethodGet, rawURL, nil, "", idLookup)
	return body, err
}

// do performs one request under the per-attempt deadline and maps the status
// code onto the error taxonomy. A 200 returns the (bounded) body and the
// response's ETag; a 304 against the sent If-None-Match returns
// notModified. Only the neighbor endpoints define 404 as "no such user"
// (idLookup); anywhere else — a mistyped base URL 404ing on /meta, say — a
// 404 stays a plain StatusError so configuration mistakes are not disguised
// as missing users.
func (b *Backend) do(ctx context.Context, method, rawURL string, payload []byte, ifNoneMatch string, idLookup bool) (body []byte, etag string, notModified bool, err error) {
	actx, cancel := context.WithTimeout(ctx, b.opt.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, rawURL, rd)
	if err != nil {
		return nil, "", false, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := b.opt.Client.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
	}()
	b.noteRateHeaders(resp.Header)
	switch {
	case resp.StatusCode == http.StatusOK:
		body, err = io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		return body, resp.Header.Get("ETag"), false, err
	case resp.StatusCode == http.StatusNotModified && ifNoneMatch != "":
		return nil, "", true, nil
	case resp.StatusCode == http.StatusNotFound && idLookup:
		var er errorResponse
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return nil, "", false, &noSuchUserError{id: er.ID, hasID: true}
		}
		return nil, "", false, &noSuchUserError{ref: rawURL}
	default:
		return nil, "", false, &StatusError{Code: resp.StatusCode, RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
}

// noteRateHeaders records X-RateLimit feedback when present.
func (b *Backend) noteRateHeaders(h http.Header) {
	rem := h.Get("X-RateLimit-Remaining")
	if rem == "" {
		return
	}
	var rl RateLimitState
	rl.Remaining, _ = strconv.Atoi(rem)
	rl.Limit, _ = strconv.Atoi(h.Get("X-RateLimit-Limit"))
	if sec, err := strconv.ParseInt(h.Get("X-RateLimit-Reset"), 10, 64); err == nil && sec > 0 {
		rl.Reset = time.Unix(sec, 0)
	}
	b.mu.Lock()
	b.rl, b.rlSet = rl, true
	b.mu.Unlock()
}

// parseRetryAfter handles both forms of the header: delay-seconds and
// HTTP-date.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	if sec, err := strconv.Atoi(s); err == nil && sec >= 0 {
		return time.Duration(sec) * time.Second
	}
	if t, err := http.ParseTime(s); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
