package httpsrc

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/walk"
)

// testGraph is a small connected graph.
func testGraph() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := int32(0); i < 10; i++ {
		b.AddEdge(i, (i+1)%10)
		b.AddEdge(i, (i+3)%10)
	}
	return b.Build()
}

// fastOptions keeps retry delays test-sized.
func fastOptions(baseURL string) Options {
	return Options{
		BaseURL:        baseURL,
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	}
}

func mustFetch(t *testing.T, b *Backend, ids ...graph.NodeID) [][]graph.NodeID {
	t.Helper()
	lists, err := b.Fetch(context.Background(), ids)
	if err != nil {
		t.Fatalf("Fetch(%v): %v", ids, err)
	}
	if len(lists) != len(ids) {
		t.Fatalf("Fetch(%v) returned %d lists", ids, len(lists))
	}
	return lists
}

func TestFetchAgainstReferenceServer(t *testing.T) {
	g := testGraph()
	srv := httptest.NewServer(Handler(g, ServerOptions{}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	lists := mustFetch(t, b, 0, 5, 9)
	for i, want := range []graph.NodeID{0, 5, 9} {
		exp := g.Neighbors(want)
		if len(lists[i]) != len(exp) {
			t.Fatalf("user %d: %d neighbors, want %d", want, len(lists[i]), len(exp))
		}
		for j := range exp {
			if lists[i][j] != exp[j] {
				t.Fatalf("user %d neighbor %d = %d, want %d", want, j, lists[i][j], exp[j])
			}
		}
	}
	if n, err := b.Meta(context.Background()); err != nil || n != g.NumNodes() {
		t.Fatalf("Meta = %d, %v; want %d", n, err, g.NumNodes())
	}
	if n := b.NumUsers(); n != g.NumNodes() {
		t.Fatalf("NumUsers = %d, want %d", n, g.NumNodes())
	}
	if _, err := b.Fetch(context.Background(), []graph.NodeID{3, 42}); !errors.Is(err, osn.ErrNoSuchUser) {
		t.Fatalf("unknown id error = %v, want ErrNoSuchUser", err)
	}
	if _, err := b.Fetch(context.Background(), []graph.NodeID{-1}); !errors.Is(err, osn.ErrNoSuchUser) {
		t.Fatalf("negative id error = %v, want ErrNoSuchUser", err)
	}
}

func TestFetchChunksLargeBatches(t *testing.T) {
	g := testGraph()
	var calls atomic.Int64
	inner := Handler(g, ServerOptions{MaxIDsPerRequest: 3})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	o := fastOptions(srv.URL)
	o.BatchSize = 3
	b, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	lists := mustFetch(t, b, 0, 1, 2, 3, 4, 5, 6)
	for i, nbrs := range lists {
		if len(nbrs) != g.Degree(graph.NodeID(i)) {
			t.Fatalf("user %d: %d neighbors, want %d", i, len(nbrs), g.Degree(graph.NodeID(i)))
		}
	}
	if c := calls.Load(); c != 3 { // ceil(7/3)
		t.Fatalf("server saw %d calls, want 3", c)
	}
}

func TestRetryAfter429(t *testing.T) {
	g := testGraph()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("X-RateLimit-Limit", "2")
			w.Header().Set("X-RateLimit-Remaining", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		Handler(g, ServerOptions{}).ServeHTTP(w, r)
	}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	lists := mustFetch(t, b, 4)
	if len(lists[0]) != g.Degree(4) {
		t.Fatalf("user 4: %d neighbors, want %d", len(lists[0]), g.Degree(4))
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 429s then success)", calls.Load())
	}
	rl, ok := b.RateLimit()
	if !ok || rl.Limit != 2 || rl.Remaining != 0 {
		t.Fatalf("RateLimit = %+v, %v; want limit 2 remaining 0", rl, ok)
	}
}

func TestRateLimitedServerEmits429(t *testing.T) {
	g := testGraph()
	srv := httptest.NewServer(Handler(g, ServerOptions{QueriesPerWindow: 1, Window: time.Hour}))
	defer srv.Close()
	o := fastOptions(srv.URL)
	o.MaxAttempts = 2
	b, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	mustFetch(t, b, 0) // spends the window's only slot
	_, err = b.Fetch(context.Background(), []graph.NodeID{1})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429 StatusError", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", se.RetryAfter)
	}
}

func TestRetry5xxThenSucceed(t *testing.T) {
	g := testGraph()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		Handler(g, ServerOptions{}).ServeHTTP(w, r)
	}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	mustFetch(t, b, 7)
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

func TestPermanent4xxDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Fetch(context.Background(), []graph.NodeID{0})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusForbidden {
		t.Fatalf("err = %v, want 403 StatusError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want exactly 1 (no retry on 403)", calls.Load())
	}
}

func TestMalformedJSONIsPermanent(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write([]byte(`{"results": [{"id": 0, "neighbors": [1,`)) // truncated
	}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Fetch(context.Background(), []graph.NodeID{0})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ProtocolError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (garbage is not retried)", calls.Load())
	}
}

func TestWrongAnswerIsProtocolError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"results": [{"id": 3, "neighbors": [1]}]}`)) // asked for 0
	}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Fetch(context.Background(), []graph.NodeID{0})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ProtocolError", err)
	}
}

// TestMeta404IsNotNoSuchUser pins that a 404 outside /neighbors — a
// mistyped base path, a server without /meta — reports a status error, not
// a bogus "no such user".
func TestMeta404IsNotNoSuchUser(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	o := fastOptions(srv.URL + "/wrongpath")
	o.MaxAttempts = 1
	b, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Meta(context.Background())
	if errors.Is(err, osn.ErrNoSuchUser) {
		t.Fatalf("meta 404 reported as ErrNoSuchUser: %v", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
}

func TestCancellationMidBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests) // no Retry-After: backoff applies
	}))
	defer srv.Close()
	o := fastOptions(srv.URL)
	o.BaseBackoff = 10 * time.Second // park the retry loop in a long sleep
	o.MaxBackoff = 30 * time.Second
	b, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Fetch(ctx, []graph.NodeID{0})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it land in the backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Fetch did not return promptly after cancellation mid-backoff")
	}
}

func TestPerAttemptTimeoutRetries(t *testing.T) {
	g := testGraph()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // hang well past the per-attempt deadline
			case <-time.After(5 * time.Second):
			case <-r.Context().Done():
			}
			return
		}
		Handler(g, ServerOptions{}).ServeHTTP(w, r)
	}))
	defer srv.Close()
	o := fastOptions(srv.URL)
	o.RequestTimeout = 50 * time.Millisecond
	b, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	mustFetch(t, b, 2)
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2 (timeout then success)", calls.Load())
	}
}

// osnAdapter lifts the driver-shaped Fetch onto the internal client contract
// (the public SDK does the same through its Backend adapter).
type osnAdapter struct{ b *Backend }

func (a osnAdapter) Fetch(ctx context.Context, ids []graph.NodeID) ([]osn.Response, error) {
	lists, err := a.b.Fetch(ctx, ids)
	if err != nil {
		return nil, err
	}
	out := make([]osn.Response, len(ids))
	for i, v := range ids {
		out[i] = osn.Response{User: v, Neighbors: lists[i]}
	}
	return out, nil
}

// TestConcurrentWalkersOverHTTP is the -race hammer: a fleet of SRW walkers
// sharing one osn.Client over the HTTP backend, so the full stack — sharded
// cache, per-user singleflight, demand billing, HTTP connection pool — runs
// under contention. The unique-query bill must equal the client's cache size
// and every walker must finish its quota.
func TestConcurrentWalkersOverHTTP(t *testing.T) {
	g := testGraph()
	srv := httptest.NewServer(Handler(g, ServerOptions{Latency: 200 * time.Microsecond}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	client := osn.NewClient(osnAdapter{b})
	const k, steps = 8, 200
	r := rng.New(7)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		w := walk.NewSimple(client, graph.NodeID(i), r.Split())
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				w.Step()
			}
		}()
	}
	wg.Wait()
	if got, want := client.UniqueQueries(), int64(client.CacheSize()); got != want {
		t.Fatalf("unique queries %d != cache size %d (no prefetching ran)", got, want)
	}
	if client.UniqueQueries() > int64(g.NumNodes()) {
		t.Fatalf("billed %d unique queries over a %d-user graph", client.UniqueQueries(), g.NumNodes())
	}
}

// TestFetchPartialIsolatesUnknownID: over the batch POST protocol, one bad
// id is a per-id error entry; co-batched ids still resolve.
func TestFetchPartialIsolatesUnknownID(t *testing.T) {
	g := testGraph()
	srv := httptest.NewServer(Handler(g, ServerOptions{}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	lists, errs, err := b.FetchPartial(context.Background(), []graph.NodeID{0, 42, 5})
	if err != nil {
		t.Fatalf("FetchPartial: %v", err)
	}
	if errs == nil || !errors.Is(errs[1], osn.ErrNoSuchUser) {
		t.Fatalf("errs[1] = %v, want ErrNoSuchUser", errs)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good ids got errors: %v", errs)
	}
	for _, i := range []int{0, 2} {
		want := g.Neighbors([]graph.NodeID{0, 42, 5}[i])
		if len(lists[i]) != len(want) {
			t.Fatalf("lists[%d] has %d neighbors, want %d", i, len(lists[i]), len(want))
		}
	}
	if st := b.Stats(); st.BatchPosts == 0 || st.Gets != 0 {
		t.Fatalf("stats = %+v, want the batch POST protocol in use", st)
	}
}

// TestFetchPartialGETFallback: a provider without the batch route (404 on
// POST) degrades to GETs — once — and still isolates the guilty id via the
// 404 body's id field.
func TestFetchPartialGETFallback(t *testing.T) {
	g := testGraph()
	srv := httptest.NewServer(Handler(g, ServerOptions{DisableBatch: true}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	lists, errs, err := b.FetchPartial(context.Background(), []graph.NodeID{0, 42, 5})
	if err != nil {
		t.Fatalf("FetchPartial: %v", err)
	}
	if errs == nil || !errors.Is(errs[1], osn.ErrNoSuchUser) {
		t.Fatalf("errs[1] = %v, want ErrNoSuchUser", errs)
	}
	if lists[0] == nil || lists[2] == nil {
		t.Fatal("good ids unresolved after guilty-id isolation")
	}
	st := b.Stats()
	if st.BatchFallbacks != 1 {
		t.Fatalf("stats = %+v, want exactly one fallback probe", st)
	}
	// The probe result is remembered: further fetches go straight to GET.
	if _, _, err := b.FetchPartial(context.Background(), []graph.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	if st2 := b.Stats(); st2.BatchPosts != st.BatchPosts {
		t.Fatalf("batch POST retried after a remembered fallback: %+v -> %+v", st, st2)
	}
}

// TestWholeBatch404NoLongerPoisons: the satellite fix on the GET path — the
// strict Fetch still fails the batch on an unknown id, but FetchPartial over
// the same GET-only provider answers every other id.
func TestWholeBatch404NoLongerPoisons(t *testing.T) {
	g := testGraph()
	srv := httptest.NewServer(Handler(g, ServerOptions{DisableBatch: true}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Fetch(context.Background(), []graph.NodeID{3, 42}); !errors.Is(err, osn.ErrNoSuchUser) {
		t.Fatalf("strict Fetch err = %v, want ErrNoSuchUser", err)
	}
	lists, errs, err := b.FetchPartial(context.Background(), []graph.NodeID{3, 42})
	if err != nil || !errors.Is(errs[1], osn.ErrNoSuchUser) || lists[0] == nil {
		t.Fatalf("partial GET = (%v, %v, %v), want id 3 answered and id 42 isolated", lists, errs, err)
	}
}

// TestETagRevalidation: a repeated request revalidates with If-None-Match
// and serves the cached answer on 304 — on both the POST and GET protocols.
func TestETagRevalidation(t *testing.T) {
	for _, mode := range []struct {
		name         string
		disableBatch bool
	}{{"post", false}, {"get", true}} {
		t.Run(mode.name, func(t *testing.T) {
			g := testGraph()
			srv := httptest.NewServer(Handler(g, ServerOptions{DisableBatch: mode.disableBatch}))
			defer srv.Close()
			b, err := New(fastOptions(srv.URL))
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()

			first := mustFetch(t, b, 2, 4)
			again := mustFetch(t, b, 2, 4)
			for i := range first {
				if len(first[i]) != len(again[i]) {
					t.Fatalf("revalidated answer diverged: %v vs %v", first[i], again[i])
				}
				for j := range first[i] {
					if first[i][j] != again[i][j] {
						t.Fatalf("revalidated answer diverged: %v vs %v", first[i], again[i])
					}
				}
			}
			if st := b.Stats(); st.Revalidated != 1 {
				t.Fatalf("stats = %+v, want exactly one 304 revalidation", st)
			}
			// Cached lists must not alias what earlier callers own.
			for i := range again[0] {
				again[0][i] = -99
			}
			third := mustFetch(t, b, 2, 4)
			for j, v := range third[0] {
				if v != first[0][j] {
					t.Fatal("caller mutation leaked into the revalidation cache")
				}
			}
		})
	}
}

// TestChunkParallelism: an oversized fetch dispatches chunks concurrently,
// bounded by ChunkParallel, and reassembles results in input order.
func TestChunkParallelism(t *testing.T) {
	g := testGraph()
	var inflight, maxInflight atomic.Int64
	inner := Handler(g, ServerOptions{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inflight.Add(1)
		for {
			old := maxInflight.Load()
			if cur <= old || maxInflight.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	o := fastOptions(srv.URL)
	o.BatchSize = 2
	o.ChunkParallel = 3
	b, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ids := make([]graph.NodeID, 20)
	for i := range ids {
		ids[i] = graph.NodeID(i % 10)
	}
	lists, err := b.Fetch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ids {
		want := g.Neighbors(v)
		if len(lists[i]) != len(want) {
			t.Fatalf("lists[%d] (id %d): %d neighbors, want %d", i, v, len(lists[i]), len(want))
		}
		for j := range want {
			if lists[i][j] != want[j] {
				t.Fatalf("lists[%d] (id %d) out of order", i, v)
			}
		}
	}
	if m := maxInflight.Load(); m < 2 {
		t.Fatalf("max in-flight chunks = %d, want concurrent dispatch", m)
	}
	if m := maxInflight.Load(); m > 3 {
		t.Fatalf("max in-flight chunks = %d, cap is 3", m)
	}
}

// TestSerializedServerAdmitsOneAtATime: the bench discriminator — under
// Serialize, wall-clock grows with the request count whatever the client
// parallelism.
func TestSerializedServerAdmitsOneAtATime(t *testing.T) {
	g := testGraph()
	srv := httptest.NewServer(Handler(g, ServerOptions{Serialize: true, Latency: 5 * time.Millisecond}))
	defer srv.Close()
	b, err := New(fastOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const reqs = 4
	start := time.Now()
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(v graph.NodeID) {
			defer wg.Done()
			if _, err := b.Fetch(context.Background(), []graph.NodeID{v}); err != nil {
				t.Error(err)
			}
		}(graph.NodeID(i))
	}
	wg.Wait()
	if el := time.Since(start); el < reqs*5*time.Millisecond {
		t.Fatalf("4 parallel requests finished in %v — serialization not enforced", el)
	}
}
