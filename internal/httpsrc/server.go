package httpsrc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rewire/internal/graph"
)

// ServerOptions configures the reference provider server.
type ServerOptions struct {
	// QueriesPerWindow caps /neighbors requests per Window (0 disables rate
	// limiting). One request counts once regardless of how many ids it
	// carries — mirroring providers that meter calls, not entities.
	QueriesPerWindow int
	// Window is the rate-limit window length.
	Window time.Duration
	// Latency, when positive, sleeps that long before answering — a knob for
	// exercising timeout and cancellation paths.
	Latency time.Duration
	// MaxIDsPerRequest rejects oversized batches with 400 (0 = unlimited).
	MaxIDsPerRequest int
}

// server serves the neighbor-list protocol over an in-memory graph.
type server struct {
	g   *graph.Graph
	opt ServerOptions

	mu          sync.Mutex
	windowStart time.Time
	used        int
}

// Handler returns an http.Handler serving the protocol over g: the reference
// implementation of the provider side, used by the driver tests and the
// conformance suite, and a ready-made way to put any local graph behind a
// real socket.
func Handler(g *graph.Graph, opt ServerOptions) http.Handler {
	s := &server{g: g, opt: opt}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /neighbors", s.neighbors)
	mux.HandleFunc("GET /meta", s.meta)
	return mux
}

// admit applies the rate limit, returning the Retry-After delay when the
// window's quota is spent.
func (s *server) admit(now time.Time) (time.Duration, bool) {
	if s.opt.QueriesPerWindow <= 0 {
		return 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.windowStart.IsZero() || now.Sub(s.windowStart) >= s.opt.Window {
		s.windowStart = now
		s.used = 0
	}
	if s.used >= s.opt.QueriesPerWindow {
		return s.windowStart.Add(s.opt.Window).Sub(now), false
	}
	s.used++
	return 0, true
}

// rateHeaders publishes the provider's quota state on every response.
func (s *server) rateHeaders(w http.ResponseWriter, now time.Time) {
	if s.opt.QueriesPerWindow <= 0 {
		return
	}
	s.mu.Lock()
	remaining := s.opt.QueriesPerWindow - s.used
	reset := s.windowStart.Add(s.opt.Window)
	s.mu.Unlock()
	if remaining < 0 {
		remaining = 0
	}
	w.Header().Set("X-RateLimit-Limit", strconv.Itoa(s.opt.QueriesPerWindow))
	w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(remaining))
	if !reset.Before(now) {
		w.Header().Set("X-RateLimit-Reset", strconv.FormatInt(reset.Unix(), 10))
	}
}

func (s *server) neighbors(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	if wait, ok := s.admit(now); !ok {
		s.rateHeaders(w, now)
		secs := int(wait/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"error":"rate limited"}`)
		return
	}
	s.rateHeaders(w, now)
	if s.opt.Latency > 0 {
		select {
		case <-time.After(s.opt.Latency):
		case <-r.Context().Done():
			return
		}
	}
	raw := r.URL.Query().Get("ids")
	if raw == "" {
		http.Error(w, `{"error":"missing ids"}`, http.StatusBadRequest)
		return
	}
	parts := strings.Split(raw, ",")
	if s.opt.MaxIDsPerRequest > 0 && len(parts) > s.opt.MaxIDsPerRequest {
		http.Error(w, `{"error":"too many ids"}`, http.StatusBadRequest)
		return
	}
	var nr neighborsResponse
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":"bad id %q"}`, p), http.StatusBadRequest)
			return
		}
		v := graph.NodeID(id)
		if v < 0 || int(v) >= s.g.NumNodes() {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(errorResponse{Error: "no such user", ID: v})
			return
		}
		nbrs := s.g.Neighbors(v)
		if nbrs == nil {
			nbrs = []graph.NodeID{}
		}
		nr.Results = append(nr.Results, struct {
			ID        graph.NodeID   `json:"id"`
			Neighbors []graph.NodeID `json:"neighbors"`
		}{ID: v, Neighbors: nbrs})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(nr)
}

func (s *server) meta(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.rateHeaders(w, now)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"num_users":%d}`, s.g.NumNodes())
}
