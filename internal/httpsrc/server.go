package httpsrc

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rewire/internal/graph"
)

// ServerOptions configures the reference provider server.
type ServerOptions struct {
	// QueriesPerWindow caps /neighbors requests per Window (0 disables rate
	// limiting). One request counts once regardless of how many ids it
	// carries — mirroring providers that meter calls, not entities.
	QueriesPerWindow int
	// Window is the rate-limit window length.
	Window time.Duration
	// Latency, when positive, sleeps that long before answering — a knob for
	// exercising timeout and cancellation paths.
	Latency time.Duration
	// MaxIDsPerRequest rejects oversized batches with 400 (0 = unlimited).
	MaxIDsPerRequest int
	// DisableBatch withholds the POST /neighbors/batch route, modeling a
	// provider that only speaks the legacy GET form (the driver's fallback
	// path is tested against this).
	DisableBatch bool
	// Serialize admits one neighbor request at a time: each request occupies
	// the server for its full Latency before the next begins, modeling a
	// provider whose cost is per round-trip. Under it, wall-clock is
	// (requests × Latency) whatever the client's parallelism — the property
	// the batching benchmark measures.
	Serialize bool
}

// server serves the neighbor-list protocol over an in-memory graph.
type server struct {
	g   *graph.Graph
	opt ServerOptions

	// serial, when non-nil, is a one-token admission channel (a channel
	// rather than a mutex so no lock is ever held across the latency sleep).
	serial chan struct{}

	mu          sync.Mutex
	windowStart time.Time
	used        int
}

// Handler returns an http.Handler serving the protocol over g: the reference
// implementation of the provider side, used by the driver tests and the
// conformance suite, and a ready-made way to put any local graph behind a
// real socket.
func Handler(g *graph.Graph, opt ServerOptions) http.Handler {
	s := &server{g: g, opt: opt}
	if opt.Serialize {
		s.serial = make(chan struct{}, 1)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /neighbors", s.neighbors)
	if !opt.DisableBatch {
		mux.HandleFunc("POST /neighbors/batch", s.batch)
	}
	mux.HandleFunc("GET /meta", s.meta)
	return mux
}

// admit applies the rate limit, returning the Retry-After delay when the
// window's quota is spent.
func (s *server) admit(now time.Time) (time.Duration, bool) {
	if s.opt.QueriesPerWindow <= 0 {
		return 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.windowStart.IsZero() || now.Sub(s.windowStart) >= s.opt.Window {
		s.windowStart = now
		s.used = 0
	}
	if s.used >= s.opt.QueriesPerWindow {
		return s.windowStart.Add(s.opt.Window).Sub(now), false
	}
	s.used++
	return 0, true
}

// rateHeaders publishes the provider's quota state on every response.
func (s *server) rateHeaders(w http.ResponseWriter, now time.Time) {
	if s.opt.QueriesPerWindow <= 0 {
		return
	}
	s.mu.Lock()
	remaining := s.opt.QueriesPerWindow - s.used
	reset := s.windowStart.Add(s.opt.Window)
	s.mu.Unlock()
	if remaining < 0 {
		remaining = 0
	}
	w.Header().Set("X-RateLimit-Limit", strconv.Itoa(s.opt.QueriesPerWindow))
	w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(remaining))
	if !reset.Before(now) {
		w.Header().Set("X-RateLimit-Reset", strconv.FormatInt(reset.Unix(), 10))
	}
}

// occupy models the request's service time: take the serialization token
// (when configured), then sleep out the latency while holding it. The
// returned release func is nil when the client gave up while queued.
func (s *server) occupy(r *http.Request) func() {
	release := func() {}
	if s.serial != nil {
		select {
		case s.serial <- struct{}{}:
			release = func() { <-s.serial }
		case <-r.Context().Done():
			return nil
		}
	}
	if s.opt.Latency > 0 {
		select {
		case <-time.After(s.opt.Latency):
		case <-r.Context().Done():
			release()
			return nil
		}
	}
	return release
}

// writeJSON marshals v, stamps a strong ETag over the exact bytes, and
// answers 304 when the request's If-None-Match already names them.
func writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	h := fnv.New64a()
	h.Write(body)
	etag := fmt.Sprintf("%q", strconv.FormatUint(h.Sum64(), 16))
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Write(append(body, '\n'))
}

func (s *server) neighbors(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	if wait, ok := s.admit(now); !ok {
		s.rateHeaders(w, now)
		secs := int(wait/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"error":"rate limited"}`)
		return
	}
	s.rateHeaders(w, now)
	release := s.occupy(r)
	if release == nil {
		return
	}
	defer release()
	raw := r.URL.Query().Get("ids")
	if raw == "" {
		http.Error(w, `{"error":"missing ids"}`, http.StatusBadRequest)
		return
	}
	parts := strings.Split(raw, ",")
	if s.opt.MaxIDsPerRequest > 0 && len(parts) > s.opt.MaxIDsPerRequest {
		http.Error(w, `{"error":"too many ids"}`, http.StatusBadRequest)
		return
	}
	var nr neighborsResponse
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":"bad id %q"}`, p), http.StatusBadRequest)
			return
		}
		v := graph.NodeID(id)
		if v < 0 || int(v) >= s.g.NumNodes() {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(errorResponse{Error: "no such user", ID: v})
			return
		}
		nr.Results = append(nr.Results, struct {
			ID        graph.NodeID   `json:"id"`
			Neighbors []graph.NodeID `json:"neighbors"`
		}{ID: v, Neighbors: s.neighborsOf(v)})
	}
	writeJSON(w, r, nr)
}

// batch serves POST /neighbors/batch: per-id results, unknown ids as error
// entries in a 200 answer — the partial-result contract that keeps one bad
// id from failing the walkers coalesced alongside it.
func (s *server) batch(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	if wait, ok := s.admit(now); !ok {
		s.rateHeaders(w, now)
		secs := int(wait/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"error":"rate limited"}`)
		return
	}
	s.rateHeaders(w, now)
	release := s.occupy(r)
	if release == nil {
		return
	}
	defer release()
	var req struct {
		IDs []graph.NodeID `json:"ids"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxResponseBytes)).Decode(&req); err != nil {
		http.Error(w, `{"error":"malformed batch body"}`, http.StatusBadRequest)
		return
	}
	if len(req.IDs) == 0 {
		http.Error(w, `{"error":"missing ids"}`, http.StatusBadRequest)
		return
	}
	if s.opt.MaxIDsPerRequest > 0 && len(req.IDs) > s.opt.MaxIDsPerRequest {
		http.Error(w, `{"error":"too many ids"}`, http.StatusBadRequest)
		return
	}
	br := batchResponse{Results: make([]batchResult, len(req.IDs))}
	for i, v := range req.IDs {
		if v < 0 || int(v) >= s.g.NumNodes() {
			br.Results[i] = batchResult{ID: v, Neighbors: []graph.NodeID{}, Error: "no such user"}
			continue
		}
		br.Results[i] = batchResult{ID: v, Neighbors: s.neighborsOf(v)}
	}
	writeJSON(w, r, br)
}

// neighborsOf returns v's neighbor list, never nil (the wire shape encodes
// an isolated user as an empty array).
func (s *server) neighborsOf(v graph.NodeID) []graph.NodeID {
	nbrs := s.g.Neighbors(v)
	if nbrs == nil {
		nbrs = []graph.NodeID{}
	}
	return nbrs
}

func (s *server) meta(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.rateHeaders(w, now)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"num_users":%d}`, s.g.NumNodes())
}
