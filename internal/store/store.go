// Package store is the sharded, memory-compact storage engine shared by the
// client cache (internal/osn), the rewiring overlay (internal/core), and the
// public SDK's session plumbing. It exists because every layer of walk
// bookkeeping used to be a single-RWMutex Go map: correct, but a serialization
// point that a k=16 walker fleet plus a prefetch worker pool all funnel
// through. "Walk, Not Wait" (Nazi et al.) and "Leveraging History for Faster
// Sampling" (Zhou et al.) both observe that at scale the sampling frontier is
// client-side state management, not the walk itself — so the state gets its
// own engine:
//
//   - Map is a power-of-two-sharded hash map with one RWMutex per shard.
//     Operations on keys that hash to different shards never contend, and a
//     writer stalls only 1/shards of the traffic. Compound read-modify-write
//     sequences (the osn client's per-node singleflight with demand-counted
//     billing) run under a single shard lock via Locked/RLocked, so the
//     engine supports per-shard singleflight without a global mutex.
//   - Arena is a slab allocator for the short int32 neighbor lists the
//     overlay materializes by the tens of thousands: one slab allocation
//     amortizes hundreds of list allocations, and dropped lists release
//     their slab to the GC once the last list carved from it dies.
//
// Shard counts are powers of two so the shard index is a mask, not a modulo,
// and keys are mixed through a 64-bit finalizer first — dense NodeIDs would
// otherwise stripe consecutive nodes into consecutive shards and turn a
// BFS-ish access pattern into a single-shard hotspot.
package store

import (
	"runtime"
	"sync"
)

// Default shard-count clamp: MinDefaultShards keeps even a single-core box
// reasonably collision-free (walkers + prefetch workers), MaxDefaultShards
// caps the per-map footprint on very wide machines — beyond a few hundred
// shards the birthday bound stops improving anything measurable.
const (
	MinDefaultShards = 8
	MaxDefaultShards = 256
)

// DefaultShards returns the shard count used when a caller passes n <= 0:
// the next power of two >= 4x GOMAXPROCS, clamped to [MinDefaultShards,
// MaxDefaultShards]. 4x over-provisioning keeps the expected collision count
// of a fully loaded fleet (one walker per P plus prefetch workers) near the
// birthday bound's comfortable regime, and sizing from GOMAXPROCS instead of
// a fixed 64 means a 2-core CI runner stops paying for shards it cannot
// contend on while a 64-core box stops funneling 64 walkers through 64
// shards at ~1 expected collision each. Sharding is invisible to results —
// trajectories and query bills at a fixed seed are identical at any shard
// count — so the adaptive default is purely a contention decision.
func DefaultShards() int {
	n := ceilPow2(4 * runtime.GOMAXPROCS(0))
	if n < MinDefaultShards {
		return MinDefaultShards
	}
	if n > MaxDefaultShards {
		return MaxDefaultShards
	}
	return n
}

// Key is the set of integer key types the engine shards over: node IDs
// (int32) and packed edge keys (uint64).
type Key interface {
	~int32 | ~uint32 | ~int64 | ~uint64
}

// mix is the splitmix64 finalizer: a full-avalanche 64-bit mixer, so dense
// sequential keys spread uniformly over shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shard pads each lock+map pair to its own cache line so reader-side lock
// traffic on one shard does not false-share with its neighbors.
type shard[K Key, V any] struct {
	mu sync.RWMutex
	m  map[K]V
	_  [64 - 24 - 8]byte
}

// Map is a sharded hash map safe for concurrent use. The zero value is not
// usable; construct with NewMap.
type Map[K Key, V any] struct {
	shards []shard[K, V]
	mask   uint64
}

// NewMap returns a map with the given shard count rounded up to a power of
// two (n <= 0 selects the adaptive DefaultShards(); n == 1 is a valid
// single-lock map, the pre-sharding behavior the contention benchmarks
// compare against).
func NewMap[K Key, V any](n int) *Map[K, V] {
	n = ceilPow2(n)
	m := &Map[K, V]{shards: make([]shard[K, V], n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i].m = make(map[K]V)
	}
	return m
}

// ceilPow2 rounds n up to the next power of two (n <= 0 => DefaultShards()).
func ceilPow2(n int) int {
	if n <= 0 {
		return DefaultShards()
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the shard count (always a power of two).
func (m *Map[K, V]) Shards() int { return len(m.shards) }

func (m *Map[K, V]) shardOf(k K) *shard[K, V] {
	return &m.shards[mix(uint64(k))&m.mask]
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	s := m.shardOf(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Put stores v under k.
func (m *Map[K, V]) Put(k K, v V) {
	s := m.shardOf(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Delete removes k.
func (m *Map[K, V]) Delete(k K) {
	s := m.shardOf(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Len returns the total entry count. Shards are read-locked one at a time, so
// with concurrent writers the result is a consistent-per-shard snapshot, not
// a global one — the same guarantee len(map) under a shared RWMutex gave
// callers that raced it.
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Iteration order is
// unspecified (as with Go maps). Each shard is read-locked while its entries
// are visited; f must not call back into the same Map with a write operation
// on a key that could hash to the shard being visited — collect first,
// mutate after.
func (m *Map[K, V]) Range(f func(K, V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !f(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Keys returns all keys (order unspecified).
func (m *Map[K, V]) Keys() []K {
	out := make([]K, 0, m.Len())
	m.Range(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Locked runs f with k's shard write-locked, passing a view of the shard's
// raw map. This is the compound-operation primitive: everything f does to the
// view is atomic with respect to every other operation on keys of the same
// shard — it is what lets the osn client keep "check cache, join in-flight
// fetch, or claim the fetch" a single atomic step per node (per-shard
// singleflight). f must not call other methods of the same Map (self
// deadlock) and should stay short: it holds up 1/shards of the traffic.
func (m *Map[K, V]) Locked(k K, f func(s LockedShard[K, V])) {
	s := m.shardOf(k)
	s.mu.Lock()
	f(LockedShard[K, V]{m: s.m})
	s.mu.Unlock()
}

// RLocked runs f with k's shard read-locked. f sees a consistent snapshot of
// the shard but must only read.
func (m *Map[K, V]) RLocked(k K, f func(s LockedShard[K, V])) {
	s := m.shardOf(k)
	s.mu.RLock()
	f(LockedShard[K, V]{m: s.m})
	s.mu.RUnlock()
}

// LockedShard is the raw view of one shard's map passed to Locked/RLocked
// callbacks. It is only valid for the duration of the callback.
type LockedShard[K Key, V any] struct {
	m map[K]V
}

// Get returns the value stored under k in the locked shard.
func (s LockedShard[K, V]) Get(k K) (V, bool) {
	v, ok := s.m[k]
	return v, ok
}

// Put stores v under k in the locked shard (write-locked callbacks only).
func (s LockedShard[K, V]) Put(k K, v V) { s.m[k] = v }

// Delete removes k from the locked shard (write-locked callbacks only).
func (s LockedShard[K, V]) Delete(k K) { delete(s.m, k) }

// Reshard rebuilds the map with a new shard count (rounded up to a power of
// two), carrying every entry over. It is NOT safe to call concurrently with
// other operations — it exists so a session can apply WithStoreShards to an
// idle, typically still-empty store before its first run.
func (m *Map[K, V]) Reshard(n int) {
	n = ceilPow2(n)
	if n == len(m.shards) {
		return
	}
	shards := make([]shard[K, V], n)
	for i := range shards {
		shards[i].m = make(map[K]V)
	}
	mask := uint64(n - 1)
	for i := range m.shards {
		for k, v := range m.shards[i].m {
			shards[mix(uint64(k))&mask].m[k] = v
		}
	}
	m.shards = shards
	m.mask = mask
}
