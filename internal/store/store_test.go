package store

import (
	"runtime"
	"sync"
	"testing"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[int32, string](8)
	if m.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", m.Shards())
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Put(1, "a")
	m.Put(2, "b")
	m.Put(1, "c") // overwrite
	if v, ok := m.Get(1); !ok || v != "c" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Delete(1)
	if m.Contains(1) {
		t.Fatal("deleted key still present")
	}
	if m.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", m.Len())
	}
}

func TestMapShardRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{-1, DefaultShards()}, {0, DefaultShards()}, {1, 1}, {2, 2}, {3, 4},
		{5, 8}, {64, 64}, {65, 128},
	}
	for _, c := range cases {
		if got := NewMap[uint64, int](c.in).Shards(); got != c.want {
			t.Errorf("NewMap(%d).Shards() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDefaultShardsAdaptive(t *testing.T) {
	n := DefaultShards()
	if n < MinDefaultShards || n > MaxDefaultShards {
		t.Fatalf("DefaultShards() = %d outside [%d, %d]", n, MinDefaultShards, MaxDefaultShards)
	}
	if n&(n-1) != 0 {
		t.Fatalf("DefaultShards() = %d not a power of two", n)
	}
	procs := runtime.GOMAXPROCS(0)
	if want := ceilPow2(4 * procs); n != want && want >= MinDefaultShards && want <= MaxDefaultShards {
		t.Fatalf("DefaultShards() = %d, want %d for GOMAXPROCS=%d", n, want, procs)
	}
}

func TestMapRangeAndKeys(t *testing.T) {
	m := NewMap[uint64, int](4)
	want := map[uint64]int{}
	for i := uint64(0); i < 100; i++ {
		m.Put(i, int(i)*3)
		want[i] = int(i) * 3
	}
	got := map[uint64]int{}
	m.Range(func(k uint64, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range saw %d=%d, want %d", k, got[k], v)
		}
	}
	if len(m.Keys()) != 100 {
		t.Fatalf("Keys len = %d", len(m.Keys()))
	}
	// Early stop.
	n := 0
	m.Range(func(uint64, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range with false continued: %d visits", n)
	}
}

func TestMapLockedCompound(t *testing.T) {
	m := NewMap[int32, int](16)
	// A read-modify-write that must be atomic: increment-or-init.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := int32(i % 10)
				m.Locked(k, func(s LockedShard[int32, int]) {
					v, _ := s.Get(k)
					s.Put(k, v+1)
				})
			}
		}()
	}
	wg.Wait()
	total := 0
	m.Range(func(_ int32, v int) bool { total += v; return true })
	if total != 8*1000 {
		t.Fatalf("lost updates: total = %d, want %d", total, 8*1000)
	}
}

func TestMapRLocked(t *testing.T) {
	m := NewMap[int32, int](4)
	m.Put(7, 42)
	saw := -1
	m.RLocked(7, func(s LockedShard[int32, int]) {
		v, _ := s.Get(7)
		saw = v
	})
	if saw != 42 {
		t.Fatalf("RLocked saw %d", saw)
	}
}

func TestMapReshard(t *testing.T) {
	m := NewMap[uint64, int](1)
	for i := uint64(0); i < 500; i++ {
		m.Put(i, int(i))
	}
	m.Reshard(32)
	if m.Shards() != 32 {
		t.Fatalf("Shards after Reshard = %d", m.Shards())
	}
	if m.Len() != 500 {
		t.Fatalf("Len after Reshard = %d", m.Len())
	}
	for i := uint64(0); i < 500; i++ {
		if v, ok := m.Get(i); !ok || v != int(i) {
			t.Fatalf("entry %d lost in Reshard: %d, %v", i, v, ok)
		}
	}
	// Resharding to the same count is a no-op.
	m.Reshard(32)
	if m.Len() != 500 {
		t.Fatal("same-count Reshard lost entries")
	}
}

func TestMapConcurrentMixed(t *testing.T) {
	m := NewMap[int32, int64](0) // default shards
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := int32((g*7 + i) % 257)
				switch i % 4 {
				case 0:
					m.Put(k, int64(i))
				case 1:
					m.Get(k)
				case 2:
					m.Contains(k)
				case 3:
					if i%16 == 3 {
						m.Delete(k)
					} else {
						m.Len()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestArenaCarving(t *testing.T) {
	a := NewArena[int32](8)
	x := a.Alloc(3)
	y := a.Alloc(3)
	if len(x) != 0 || cap(x) != 3 || len(y) != 0 || cap(y) != 3 {
		t.Fatalf("carves have wrong shape: len/cap %d/%d, %d/%d", len(x), cap(x), len(y), cap(y))
	}
	x = append(x, 1, 2, 3)
	y = append(y, 4, 5, 6)
	if x[0] != 1 || y[0] != 4 {
		t.Fatal("carves overlap")
	}
	// Appending past a carve's capacity must reallocate, not bleed into the
	// neighboring carve.
	x = append(x, 99)
	if y[0] != 4 {
		t.Fatal("append past capacity corrupted the next carve")
	}
	// Oversized requests get dedicated allocations.
	big := a.Alloc(100)
	if cap(big) != 100 {
		t.Fatalf("oversized carve cap = %d", cap(big))
	}
	if a.Alloc(0) != nil {
		t.Fatal("Alloc(0) should be nil")
	}
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena[int32](1024)
	var wg sync.WaitGroup
	out := make([][]int32, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := a.Alloc(5)
				for j := 0; j < 5; j++ {
					s = append(s, int32(g))
				}
				out[g] = s
			}
		}(g)
	}
	wg.Wait()
	for g, s := range out {
		for _, v := range s {
			if v != int32(g) {
				t.Fatalf("goroutine %d's carve contains %d — carves overlapped", g, v)
			}
		}
	}
}
