package store

import "sync"

// DefaultSlabLen is the default slab capacity (in elements) of an Arena.
// At int32 elements that is a 256 KiB slab — large enough to amortize
// hundreds of typical OSN neighbor lists, small enough that a slab pinned by
// one surviving list is cheap.
const DefaultSlabLen = 1 << 16

// Arena carves many short slices out of few large slabs. It is the allocator
// behind the overlay's materialized neighbor lists: a fleet walking a fresh
// graph materializes one list per visited node, and without the arena each
// list is its own heap allocation (plus size-class rounding waste). With it,
// a slab serves every list until full, then the arena forgets the slab — the
// carved slices keep it alive, and once the last of them is dropped
// (invalidated lists replaced by fresh ones) the GC reclaims the whole slab.
//
// Carved slices are never recycled by the arena, so there is no use-after-free
// hazard: a reader can hold a carved list across any number of later
// allocations and invalidations. The cost is that one live list pins its
// whole slab; keep slabs modest (DefaultSlabLen) where lists are long-lived.
//
// Arena is safe for concurrent use.
type Arena[T any] struct {
	mu      sync.Mutex
	slab    []T
	slabLen int
}

// NewArena returns an arena with the given slab capacity in elements
// (<= 0 selects DefaultSlabLen).
func NewArena[T any](slabLen int) *Arena[T] {
	if slabLen <= 0 {
		slabLen = DefaultSlabLen
	}
	return &Arena[T]{slabLen: slabLen}
}

// Alloc returns a zero-length slice with capacity exactly n, carved from the
// current slab. Requests larger than the slab capacity get a dedicated
// allocation. The returned slice's capacity is clipped, so appending past n
// reallocates instead of bleeding into a neighboring carve.
func (a *Arena[T]) Alloc(n int) []T {
	if n <= 0 {
		return nil
	}
	if n > a.slabLen {
		return make([]T, 0, n)
	}
	a.mu.Lock()
	if cap(a.slab)-len(a.slab) < n {
		a.slab = make([]T, 0, a.slabLen)
	}
	start := len(a.slab)
	a.slab = a.slab[:start+n]
	out := a.slab[start : start : start+n]
	a.mu.Unlock()
	//rewirelint:allow aliasing the arena carve IS the product: caller owns [0,n), capacity clipped against neighbors
	return out
}
