package benchcmp

import (
	"path/filepath"
	"testing"
)

func baseSuite() Suite {
	return Suite{
		Schema: Schema,
		Seed:   1,
		Results: []Result{
			{Name: "FleetPrefetchOff", WallNS: 1000, Queries: 500},
			{Name: "FleetPrefetchOn", WallNS: 400, Queries: 500, Speedup: 2.5, MinSpeedup: 2.0},
			{Name: "WalkSteadyAllocs", AllocsPerOp: 0, GateAllocs: true},
		},
	}
}

func runSuite() Suite {
	return Suite{
		Schema: Schema,
		Seed:   1,
		Results: []Result{
			{Name: "FleetPrefetchOff", WallNS: 1100, Queries: 500},
			{Name: "FleetPrefetchOn", WallNS: 420, Queries: 500, Speedup: 2.6},
			{Name: "WalkSteadyAllocs", AllocsPerOp: 0},
		},
	}
}

func TestCleanRunPasses(t *testing.T) {
	fs := Compare(baseSuite(), runSuite(), 0.2)
	if HasRegression(fs) {
		t.Fatalf("clean run flagged: %v", fs)
	}
}

func TestQueryRegressionFails(t *testing.T) {
	run := runSuite()
	run.Results[0].Queries = 650 // +30% > 20% tolerance
	fs := Compare(baseSuite(), run, 0.2)
	if !HasRegression(fs) {
		t.Fatal("query-cost regression not flagged")
	}
}

func TestQueryDriftWithinTolerancePasses(t *testing.T) {
	run := runSuite()
	run.Results[0].Queries = 590 // +18% < 20% tolerance
	if fs := Compare(baseSuite(), run, 0.2); HasRegression(fs) {
		t.Fatalf("within-tolerance drift flagged: %v", fs)
	}
}

func TestQueryDropBeyondToleranceFails(t *testing.T) {
	// Query counters are deterministic, so a large drop is as alarming as a
	// large growth: the cheapest way to "improve" the bill is to stop
	// billing queries that should be billed.
	run := runSuite()
	run.Results[0].Queries = 300 // -40%
	fs := Compare(baseSuite(), run, 0.2)
	if !HasRegression(fs) {
		t.Fatal("beyond-tolerance query drop not flagged")
	}
}

func TestExactQueryGate(t *testing.T) {
	base := baseSuite()
	base.Results = append(base.Results, Result{Name: "DurableWarmCrawl", Queries: 0, GateExactQueries: true})
	run := runSuite()
	run.Results = append(run.Results, Result{Name: "DurableWarmCrawl", Queries: 0})
	if fs := Compare(base, run, 0.2); HasRegression(fs) {
		t.Fatalf("exact match flagged: %v", fs)
	}
	// A single billed query fails — the tolerance-band gate would wave a
	// zero-baseline row through, the exact gate must not.
	run.Results[len(run.Results)-1].Queries = 1
	if fs := Compare(base, run, 0.2); !HasRegression(fs) {
		t.Fatal("exact gate missed a nonzero bill on a zero baseline")
	}
	// And the exact gate allows no tolerance band on nonzero baselines.
	base.Results[len(base.Results)-1].Queries = 100
	run.Results[len(run.Results)-1].Queries = 101 // +1%, inside any band
	if fs := Compare(base, run, 0.2); !HasRegression(fs) {
		t.Fatal("exact gate tolerated off-by-one drift")
	}
}

func TestSpeedupBelowFloorFails(t *testing.T) {
	run := runSuite()
	run.Results[1].Speedup = 1.4
	fs := Compare(baseSuite(), run, 0.2)
	if !HasRegression(fs) {
		t.Fatal("speedup below gated floor not flagged")
	}
}

func TestWallClockDriftIsInformational(t *testing.T) {
	run := runSuite()
	run.Results[0].WallNS = 5000 // 5x slower — noisy machines may do this
	fs := Compare(baseSuite(), run, 0.2)
	if HasRegression(fs) {
		t.Fatalf("wall-clock drift must not fail the gate: %v", fs)
	}
	found := false
	for _, f := range fs {
		if f.Metric == "wall_ns" {
			found = true
		}
	}
	if !found {
		t.Fatal("wall-clock drift should produce a note")
	}
}

func TestAllocsAboveGatedCeilingFails(t *testing.T) {
	run := runSuite()
	run.Results[2].AllocsPerOp = 0.01 // one stray allocation per hundred steps
	fs := Compare(baseSuite(), run, 0.2)
	if !HasRegression(fs) {
		t.Fatal("allocs/op above the gated ceiling not flagged")
	}
}

func TestAllocsNotGatedWithoutFlag(t *testing.T) {
	base := baseSuite()
	base.Results[2].GateAllocs = false
	run := runSuite()
	run.Results[2].AllocsPerOp = 3
	if fs := Compare(base, run, 0.2); HasRegression(fs) {
		t.Fatalf("ungated allocs/op must not fail the gate: %v", fs)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	run := runSuite()
	run.Results = run.Results[:1]
	if fs := Compare(baseSuite(), run, 0.2); !HasRegression(fs) {
		t.Fatal("missing benchmark not flagged")
	}
}

func TestSeedMismatchFails(t *testing.T) {
	run := runSuite()
	run.Seed = 2
	if fs := Compare(baseSuite(), run, 0.2); !HasRegression(fs) {
		t.Fatal("seed mismatch not flagged")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	want := baseSuite()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) || got.Seed != want.Seed || got.Schema != want.Schema {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	if got.Results[1].MinSpeedup != want.Results[1].MinSpeedup {
		t.Fatal("MinSpeedup lost in round trip")
	}
}
