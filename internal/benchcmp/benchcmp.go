// Package benchcmp diffs a machine-readable benchmark run (cmd/mto-bench
// -exp bench -json) against a committed baseline, so CI can fail a build
// that regresses the hot path instead of letting it ship silently.
//
// Two kinds of metric are gated, chosen to be meaningful on ANY machine:
//
//   - Queries: the unique-query bill of a fixed-seed workload. The suite's
//     workloads are deterministic (partitioned fleet budgets, single
//     samplers), so this number is exact and portable — any drift beyond
//     tolerance is a real behavior change, not noise.
//   - Speedup: a wall-clock ratio between two workloads measured in the
//     same process (e.g. prefetching fleet vs the identical fleet without
//     prefetch). Ratios of latency-dominated runs transfer across machines
//     where absolute nanoseconds do not; each baseline entry declares the
//     floor (MinSpeedup) it must keep.
//
// Absolute wall-clock is recorded but never gated — a laptop and a CI
// runner legitimately disagree about it.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema identifies the JSON layout; bump on incompatible changes.
const Schema = 1

// DefaultTolerance is the relative drift allowed on gated counters.
const DefaultTolerance = 0.20

// Result is one benchmark's measurements.
type Result struct {
	Name    string `json:"name"`
	WallNS  int64  `json:"wall_ns"`
	Samples int    `json:"samples,omitempty"`
	// Queries is the unique-query bill (deterministic on a fixed seed).
	Queries int64 `json:"queries"`
	// Speedup is the wall-clock ratio versus this benchmark's in-process
	// reference run (0 when the benchmark has none).
	Speedup float64 `json:"speedup,omitempty"`
	// MinSpeedup is the gate floor for Speedup, set in the baseline file
	// (runs leave it 0).
	MinSpeedup float64 `json:"min_speedup,omitempty"`
	// AllocsPerOp is the benchmark's heap allocations per operation (the
	// -benchmem metric, measured in-process). Like Queries it is a
	// machine-portable counter: a warm hot path either allocates or it
	// does not, whatever the hardware.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// GateAllocs, set in the baseline file, makes AllocsPerOp a hard
	// ceiling: a run whose allocs/op exceeds the baseline's fails the gate.
	// With a baseline AllocsPerOp of 0 this is the zero-allocation gate.
	GateAllocs bool `json:"gate_allocs,omitempty"`
	// GateExactQueries, set in the baseline file, gates Queries with zero
	// tolerance: the run must reproduce the baseline bill to the query.
	// The tolerance-band gate above skips baselines of 0 (nothing to take a
	// ratio against); this one has no such blind spot, which is what the
	// durable warm-start row needs — its whole claim is that a reopened
	// cache bills exactly nothing.
	GateExactQueries bool `json:"gate_exact_queries,omitempty"`
}

// Suite is a full benchmark run.
type Suite struct {
	Schema  int      `json:"schema"`
	Seed    uint64   `json:"seed"`
	Results []Result `json:"results"`
}

// Finding is one comparison outcome. Regression findings fail the gate;
// informational ones (improvements worth a baseline refresh, wall-clock
// drift) are printed but never fail.
type Finding struct {
	Name       string
	Metric     string
	Base, Run  float64
	Regression bool
	Msg        string
}

// String renders the finding for CI logs.
func (f Finding) String() string {
	tag := "note"
	if f.Regression {
		tag = "REGRESSION"
	}
	return fmt.Sprintf("%s: %s/%s: %s (baseline %.4g, run %.4g)", tag, f.Name, f.Metric, f.Msg, f.Base, f.Run)
}

// Load reads a suite from a JSON file.
func Load(path string) (Suite, error) {
	var s Suite
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("benchcmp: parsing %s: %w", path, err)
	}
	return s, nil
}

// Save writes a suite as indented JSON.
func Save(path string, s Suite) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare diffs run against base with the given relative tolerance (<= 0
// selects DefaultTolerance) and returns findings sorted regressions-first.
func Compare(base, run Suite, tol float64) []Finding {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	var out []Finding
	if base.Schema != run.Schema {
		out = append(out, Finding{Metric: "schema", Base: float64(base.Schema), Run: float64(run.Schema),
			Regression: true, Msg: "schema mismatch — regenerate the baseline"})
		return out
	}
	if base.Seed != run.Seed {
		out = append(out, Finding{Metric: "seed", Base: float64(base.Seed), Run: float64(run.Seed),
			Regression: true, Msg: "seed mismatch — deterministic counters are not comparable"})
		return out
	}
	runBy := make(map[string]Result, len(run.Results))
	for _, r := range run.Results {
		runBy[r.Name] = r
	}
	for _, b := range base.Results {
		r, ok := runBy[b.Name]
		if !ok {
			out = append(out, Finding{Name: b.Name, Metric: "presence", Regression: true,
				Msg: "benchmark missing from run"})
			continue
		}
		delete(runBy, b.Name)
		out = append(out, compareOne(b, r, tol)...)
	}
	for _, name := range sortedKeys(runBy) {
		out = append(out, Finding{Name: name, Metric: "presence",
			Msg: "new benchmark not in baseline — add it when refreshing"})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Regression && !out[j].Regression })
	return out
}

func compareOne(b, r Result, tol float64) []Finding {
	var out []Finding
	if b.GateExactQueries && r.Queries != b.Queries {
		out = append(out, Finding{Name: b.Name, Metric: "queries",
			Base: float64(b.Queries), Run: float64(r.Queries), Regression: true,
			Msg: fmt.Sprintf("unique-query bill %d != gated exact value %d", r.Queries, b.Queries)})
	}
	if !b.GateExactQueries && b.Queries > 0 {
		// Query counters are deterministic functions of the seed, so drift in
		// EITHER direction beyond tolerance is a behavior change and fails
		// the gate. A drop is just as suspicious as a growth: the cheapest
		// way to "improve" this number is to stop billing queries the
		// accounting invariant says must be billed. An intentional
		// improvement lands by refreshing bench/baseline.json in the same PR.
		ratio := float64(r.Queries) / float64(b.Queries)
		switch {
		case ratio > 1+tol:
			out = append(out, Finding{Name: b.Name, Metric: "queries",
				Base: float64(b.Queries), Run: float64(r.Queries), Regression: true,
				Msg: fmt.Sprintf("unique-query cost grew %.1f%% (tolerance %.0f%%)", (ratio-1)*100, tol*100)})
		case ratio < 1-tol:
			out = append(out, Finding{Name: b.Name, Metric: "queries",
				Base: float64(b.Queries), Run: float64(r.Queries), Regression: true,
				Msg: fmt.Sprintf("unique-query cost dropped %.1f%% (tolerance %.0f%%) — deterministic counters must not drift; if intentional, refresh bench/baseline.json", (1-ratio)*100, tol*100)})
		}
	}
	if b.GateAllocs && r.AllocsPerOp > b.AllocsPerOp {
		out = append(out, Finding{Name: b.Name, Metric: "allocs_per_op",
			Base: b.AllocsPerOp, Run: r.AllocsPerOp, Regression: true,
			Msg: fmt.Sprintf("allocs/op %.2f exceeds the gated ceiling %.2f — this hot path must not allocate at steady state", r.AllocsPerOp, b.AllocsPerOp)})
	}
	if b.MinSpeedup > 0 && r.Speedup > 0 && r.Speedup < b.MinSpeedup {
		out = append(out, Finding{Name: b.Name, Metric: "speedup",
			Base: b.MinSpeedup, Run: r.Speedup, Regression: true,
			Msg: fmt.Sprintf("speedup %.2fx fell below the gated floor %.2fx", r.Speedup, b.MinSpeedup)})
	}
	if b.WallNS > 0 && r.WallNS > 0 {
		ratio := float64(r.WallNS) / float64(b.WallNS)
		if ratio > 1+tol {
			out = append(out, Finding{Name: b.Name, Metric: "wall_ns",
				Base: float64(b.WallNS), Run: float64(r.WallNS),
				Msg: fmt.Sprintf("wall-clock %.1f%% over baseline (informational — machines differ)", (ratio-1)*100)})
		}
	}
	return out
}

// HasRegression reports whether any finding fails the gate.
func HasRegression(fs []Finding) bool {
	for _, f := range fs {
		if f.Regression {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
