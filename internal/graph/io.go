package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a SNAP-style text edge list: a header
// comment with node and edge counts, then one "u\tv" line per canonical edge.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list: '#'-prefixed lines are comments,
// every other non-empty line must contain two integer node IDs separated by
// whitespace. Node count is max ID + 1 unless a larger hint is given.
func ReadEdgeList(r io.Reader, nodeHint int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var edges []Edge
	maxID := NodeID(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %w", line, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %w", line, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", line)
		}
		e := Edge{NodeID(u), NodeID(v)}
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := int(maxID) + 1
	if nodeHint > n {
		n = nodeHint
	}
	return FromEdges(n, edges), nil
}
