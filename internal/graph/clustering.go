package graph

import "rewire/internal/rng"

// LocalClustering returns the local clustering coefficient of u: the
// fraction of u's neighbor pairs that are themselves connected. Nodes of
// degree < 2 return 0.
func (g *Graph) LocalClustering(u NodeID) float64 {
	nbrs := g.Neighbors(u)
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return float64(links) / float64(d*(d-1)/2)
}

// AverageClustering estimates the mean local clustering coefficient over a
// uniform sample of up to `samples` nodes (all nodes when samples >= N).
// High values signal the dense local pockets the paper's removal criterion
// exploits.
func (g *Graph) AverageClustering(samples int, r *rng.Rand) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	var idx []int
	if samples >= n {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
	} else {
		idx = rng.SampleWithoutReplacement(r, n, samples)
	}
	total := 0.0
	for _, u := range idx {
		total += g.LocalClustering(NodeID(u))
	}
	return total / float64(len(idx))
}
