//go:build linux

package graph

import (
	"encoding/binary"
	"os"
	"syscall"
	"unsafe"
)

// nativeLittleEndian reports whether uint32 views into raw bytes decode as
// the snapshot format's little-endian — the precondition for handing out
// zero-copy unsafe.Slice views instead of decoding per access.
var nativeLittleEndian = func() bool {
	x := uint32(snapshotBOM)
	b := (*[4]byte)(unsafe.Pointer(&x))
	return binary.LittleEndian.Uint32(b[:]) == snapshotBOM
}()

// openSnapshotMmap maps the whole file read-only and carves the offsets and
// neighbor arrays as zero-copy views: open cost is one mmap syscall plus the
// 48-byte header validation, independent of graph size — pages fault in as
// the walk touches them. Returns errMmapUnsupported on big-endian hosts and
// for empty files (mmap of length 0 is an error; the ReaderAt path handles
// the degenerate header-only snapshot).
func openSnapshotMmap(f *os.File, size int64) (*Snapshot, error) {
	if !nativeLittleEndian || size <= 0 {
		return nil, errMmapUnsupported
	}
	if size < snapshotHeaderSize {
		// Too short to be a snapshot: report the format error directly so
		// truncated files fail identically on every path.
		return nil, snapshotTooShort(size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, errMmapUnsupported // unmappable fd (pipe, weird fs): fall back
	}
	h, err := parseSnapshotHeader(data[:snapshotHeaderSize], size)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	s := &Snapshot{
		nodes:    h.nodes,
		edges:    h.edges,
		entries:  h.entries,
		directed: h.directed,
		closer:   func() error { return syscall.Munmap(data) },
	}
	s.offsets = unsafe.Slice((*uint32)(unsafe.Pointer(&data[snapshotHeaderSize])), h.nodes+1)
	if h.entries > 0 {
		neighOff := snapshotHeaderSize + 4*(h.nodes+1)
		s.neigh = unsafe.Slice((*NodeID)(unsafe.Pointer(&data[neighOff])), h.entries)
	} else {
		s.neigh = []NodeID{}
	}
	if err := s.checkOffsets(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}
