package graph

import (
	"reflect"
	"testing"
	"testing/quick"

	"rewire/internal/rng"
)

// triangle plus a pendant: 0-1, 0-2, 1-2, 2-3
func testGraph() *Graph {
	return FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
}

func TestBuilderBasics(t *testing.T) {
	g := testGraph()
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantDeg := []int{2, 2, 3, 1}
	for u, want := range wantDeg {
		if got := g.Degree(NodeID(u)); got != want {
			t.Errorf("Degree(%d) = %d, want %d", u, got, want)
		}
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestHasEdge(t *testing.T) {
	g := testGraph()
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {2, 3, true}, {3, 2, true},
		{0, 3, false}, {1, 3, false}, {0, 0, false},
		{-1, 0, false}, {0, 99, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := testGraph()
	want := []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	check := func(a, b int16) bool {
		u, v := NodeID(abs16(a)), NodeID(abs16(b))
		k := KeyOf(u, v)
		x, y := k.Nodes()
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		return x == lo && y == hi && k == KeyOf(v, u)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func abs16(x int16) int32 {
	v := int32(x)
	if v < 0 {
		return -v
	}
	return v
}

func TestCommonNeighbors(t *testing.T) {
	g := testGraph()
	if got := g.CommonNeighbors(0, 1); !reflect.DeepEqual(got, []NodeID{2}) {
		t.Errorf("CommonNeighbors(0,1) = %v, want [2]", got)
	}
	if got := g.CountCommonNeighbors(0, 1); got != 1 {
		t.Errorf("CountCommonNeighbors(0,1) = %d, want 1", got)
	}
	if got := g.CountCommonNeighbors(0, 3); got != 1 { // both adjacent to 2
		t.Errorf("CountCommonNeighbors(0,3) = %d, want 1", got)
	}
	if got := g.CommonNeighbors(2, 3); len(got) != 0 {
		t.Errorf("CommonNeighbors(2,3) = %v, want empty", got)
	}
}

func TestIntersectSortedProperty(t *testing.T) {
	check := func(aRaw, bRaw []uint8) bool {
		a := toSortedIDs(aRaw)
		b := toSortedIDs(bRaw)
		got := IntersectSorted(a, b)
		if CountIntersectSorted(a, b) != len(got) {
			return false
		}
		// Verify against map-based intersection.
		inA := map[NodeID]bool{}
		for _, x := range a {
			inA[x] = true
		}
		var want []NodeID
		for _, x := range b {
			if inA[x] {
				want = append(want, x)
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func toSortedIDs(raw []uint8) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, x := range raw {
		seen[NodeID(x)] = true
	}
	for x := NodeID(0); x < 256; x++ {
		if seen[x] {
			out = append(out, x)
		}
	}
	return out
}

func TestDegreeStats(t *testing.T) {
	g := testGraph()
	if got := g.DegreeSum(); got != 8 {
		t.Errorf("DegreeSum = %d, want 8", got)
	}
	if got := g.MinDegree(); got != 1 {
		t.Errorf("MinDegree = %d, want 1", got)
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	if got := g.AverageDegree(); got != 2 {
		t.Errorf("AverageDegree = %v, want 2", got)
	}
	if got := g.DegreeHistogram(); !reflect.DeepEqual(got, []int{0, 1, 2, 1}) {
		t.Errorf("DegreeHistogram = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := testGraph()
	c := g.Clone()
	c.neigh[0] = 99 // reach into the clone's CSR storage
	c.offsets[1] = c.offsets[0]
	if g.Degree(0) != 2 || g.Neighbors(0)[0] == 99 {
		t.Error("mutating clone affected original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBFS(t *testing.T) {
	g := testGraph()
	dist := g.BFS(3)
	want := []int32{2, 2, 1, 0}
	if !reflect.DeepEqual(dist, want) {
		t.Errorf("BFS(3) = %v, want %v", dist, want)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {2, 3}})
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable nodes should be -1: %v", dist)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {2, 3}})
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] || labels[4] == labels[0] || labels[4] == labels[2] {
		t.Errorf("labels = %v", labels)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if !testGraph().IsConnected() {
		t.Error("connected graph reported disconnected")
	}
}

func TestLargestComponent(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	sub, ids := g.LargestComponent()
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("largest component has %d nodes %d edges", sub.NumNodes(), sub.NumEdges())
	}
	if !reflect.DeepEqual(ids, []NodeID{0, 1, 2}) {
		t.Errorf("ids = %v", ids)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Already-connected graph comes back unchanged.
	g2 := testGraph()
	sub2, ids2 := g2.LargestComponent()
	if sub2 != g2 || len(ids2) != 4 {
		t.Error("connected graph should be returned as-is")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := testGraph()
	sub, ids := g.InducedSubgraph(func(u NodeID) bool { return u != 2 })
	if sub.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", sub.NumNodes())
	}
	// Only edge 0-1 survives without node 2.
	if sub.NumEdges() != 1 || !sub.HasEdge(0, 1) {
		t.Errorf("unexpected edges: %v", sub.Edges())
	}
	if !reflect.DeepEqual(ids, []NodeID{0, 1, 3}) {
		t.Errorf("ids = %v", ids)
	}
}

func TestEccentricity(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}}) // path
	if got := g.Eccentricity(0); got != 3 {
		t.Errorf("Eccentricity(0) = %d, want 3", got)
	}
	if got := g.Eccentricity(1); got != 2 {
		t.Errorf("Eccentricity(1) = %d, want 2", got)
	}
}

func TestEffectiveDiameterPath(t *testing.T) {
	// Path of 11 nodes: distances 1..10, pair counts 10,9,...,1 each way.
	b := NewBuilder(11)
	for i := NodeID(0); i < 10; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	d := g.EffectiveDiameter(0.9, 1000, rng.New(1))
	// 90% of the 110 ordered pairs are within ~7.6 hops; accept a band.
	if d < 6.5 || d > 9 {
		t.Errorf("effective diameter = %v, want in [6.5, 9]", d)
	}
	// Full percentile returns the true diameter.
	if full := g.EffectiveDiameter(1.0, 1000, rng.New(1)); full != 10 {
		t.Errorf("100%% diameter = %v, want 10", full)
	}
}

func TestEffectiveDiameterComplete(t *testing.T) {
	b := NewBuilder(8)
	for i := NodeID(0); i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	d := g.EffectiveDiameter(0.9, 100, rng.New(2))
	if d < 0 || d > 1 {
		t.Errorf("complete graph effective diameter = %v, want <= 1", d)
	}
}

func TestEffectiveDiameterEmptyAndIsolated(t *testing.T) {
	g := FromEdges(0, nil)
	if d := g.EffectiveDiameter(0.9, 10, rng.New(3)); d != 0 {
		t.Errorf("empty graph diameter = %v", d)
	}
	iso := FromEdges(3, nil)
	if d := iso.EffectiveDiameter(0.9, 10, rng.New(3)); d != 0 {
		t.Errorf("edgeless graph diameter = %v", d)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := &Graph{offsets: []uint32{0, 1, 1}, neigh: []NodeID{1}, edges: 1}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted asymmetric adjacency")
	}
}

func TestValidateCatchesSelfLoop(t *testing.T) {
	g := &Graph{offsets: []uint32{0, 1}, neigh: []NodeID{0}, edges: 0}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted self loop")
	}
}

func TestNewFromAdjacencyCleans(t *testing.T) {
	g := NewFromAdjacency([][]NodeID{{1, 1, 0}, {0}})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
