package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"testing"
)

// snapshotTestGraph builds a small deterministic graph with varied degrees,
// an isolated node, and a high-degree hub.
func snapshotTestGraph() *Graph {
	b := NewBuilder(12)
	edges := [][2]NodeID{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
		{6, 0}, {6, 1}, {6, 2}, {6, 3}, {6, 4}, {6, 5}, {6, 7},
		{7, 8}, {8, 9}, {9, 7},
		// node 10 isolated, node 11 leaf
		{11, 6},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// checkSnapshotMatches verifies every row of s against g.
func checkSnapshotMatches(t *testing.T, s *Snapshot, g *Graph) {
	t.Helper()
	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot %d nodes / %d edges, want %d / %d",
			s.NumNodes(), s.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		deg, err := s.Degree(v)
		if err != nil {
			t.Fatalf("Degree(%d): %v", v, err)
		}
		if deg != g.Degree(v) {
			t.Fatalf("Degree(%d) = %d, want %d", v, deg, g.Degree(v))
		}
		nbrs, err := s.Neighbors(v)
		if err != nil {
			t.Fatalf("Neighbors(%d): %v", v, err)
		}
		want := g.Neighbors(v)
		if len(nbrs) != len(want) {
			t.Fatalf("Neighbors(%d) has %d entries, want %d", v, len(nbrs), len(want))
		}
		for i := range nbrs {
			if nbrs[i] != want[i] {
				t.Fatalf("Neighbors(%d)[%d] = %d, want %d", v, i, nbrs[i], want[i])
			}
		}
	}
}

func TestSnapshotRoundTripFile(t *testing.T) {
	g := snapshotTestGraph()
	path := filepath.Join(t.TempDir(), "crawl.csr")
	if err := g.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	checkSnapshotMatches(t, s, g)

	if _, err := s.Neighbors(-1); err == nil {
		t.Fatal("Neighbors(-1) did not fail")
	}
	if _, err := s.Neighbors(NodeID(g.NumNodes())); err == nil {
		t.Fatal("Neighbors(out of range) did not fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestSnapshotReaderAtRoundTrip(t *testing.T) {
	g := snapshotTestGraph()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshotReaderAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshotMatches(t, s, g)
	// The ReaderAt path hands out owned slices: mutating one must not change
	// a re-read.
	nbrs, err := s.Neighbors(6)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]NodeID(nil), nbrs...)
	for i := range nbrs {
		nbrs[i] = -99
	}
	again, err := s.Neighbors(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != want[i] {
			t.Fatalf("mutation leaked into re-read at %d", i)
		}
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshotReaderAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 0 || s.NumEdges() != 0 {
		t.Fatalf("empty snapshot reports %d nodes / %d edges", s.NumNodes(), s.NumEdges())
	}
}

// corruptSnapshot returns a valid snapshot with one byte range overwritten.
func corruptSnapshot(t *testing.T, mutate func(b []byte)) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshotTestGraph().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	mutate(b)
	return b
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	cases := map[string]func(b []byte){
		"magic":   func(b []byte) { b[0] = 'X' },
		"version": func(b []byte) { binary.LittleEndian.PutUint32(b[8:12], 99); reseal(b) },
		"bom":     func(b []byte) { binary.LittleEndian.PutUint32(b[12:16], 0x04030201); reseal(b) },
		"crc":     func(b []byte) { binary.LittleEndian.PutUint32(b[40:44], 0xDEADBEEF) },
		"node count lies": func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:24], 1<<40)
			reseal(b)
		},
		"entry count lies": func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:32], 4)
			reseal(b)
		},
	}
	for name, mutate := range cases {
		b := corruptSnapshot(t, mutate)
		if _, err := OpenSnapshotReaderAt(bytes.NewReader(b), int64(len(b))); !errors.Is(err, ErrSnapshotFormat) {
			t.Errorf("%s: err = %v, want ErrSnapshotFormat", name, err)
		}
	}
	// Truncations at every interesting boundary.
	full := corruptSnapshot(t, func([]byte) {})
	for _, n := range []int{0, 7, snapshotHeaderSize - 1, snapshotHeaderSize, snapshotHeaderSize + 5, len(full) - 1} {
		b := full[:n]
		if _, err := OpenSnapshotReaderAt(bytes.NewReader(b), int64(len(b))); !errors.Is(err, ErrSnapshotFormat) {
			t.Errorf("truncated to %d: err = %v, want ErrSnapshotFormat", n, err)
		}
	}
}

// TestSnapshotRejectsCorruptOffsets proves a decreasing offsets row is caught
// at access time rather than read out of bounds.
func TestSnapshotRejectsCorruptOffsets(t *testing.T) {
	b := corruptSnapshot(t, func(b []byte) {
		// offsets[1] (node 0's end) -> absurdly large, keeps header CRC valid
		// because offsets are not covered by it.
		binary.LittleEndian.PutUint32(b[snapshotHeaderSize+4:], 1<<30)
	})
	s, err := OpenSnapshotReaderAt(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		// Also acceptable: rejected at open (offsets[n] check may trip when
		// the final entry is the mutated one). This mutation hits offsets[1],
		// so open succeeds and the row read must fail.
		t.Fatalf("open failed early: %v", err)
	}
	if _, err := s.Neighbors(0); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("Neighbors over corrupt row: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := s.Degree(0); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("Degree over corrupt row: err = %v, want ErrSnapshotFormat", err)
	}
}

// reseal recomputes the header CRC after a deliberate header mutation, so the
// test exercises the targeted validation rather than the checksum.
func reseal(b []byte) {
	binary.LittleEndian.PutUint32(b[40:44], crc32.ChecksumIEEE(b[:40]))
}

// FuzzOpenSnapshot is the corrupt-input fuzzer: arbitrary bytes must either
// fail to open cleanly or open into a snapshot whose every row reads without
// panicking. `go test` runs the seed corpus as regression tests.
func FuzzOpenSnapshot(f *testing.F) {
	var valid bytes.Buffer
	if err := snapshotTestGraph().WriteSnapshot(&valid); err != nil {
		f.Fatal(err)
	}
	vb := valid.Bytes()
	f.Add([]byte{})
	f.Add(vb)
	f.Add(vb[:snapshotHeaderSize])
	f.Add(vb[:len(vb)-3])
	f.Add(bytes.Repeat([]byte{0xFF}, snapshotHeaderSize))
	corrupt := append([]byte(nil), vb...)
	binary.LittleEndian.PutUint64(corrupt[16:24], 1<<33)
	f.Add(corrupt)
	shuffled := append([]byte(nil), vb...)
	for i := snapshotHeaderSize; i < len(shuffled); i += 7 {
		shuffled[i] ^= 0xA5
	}
	f.Add(shuffled)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := OpenSnapshotReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		for v := 0; v < s.NumNodes(); v++ {
			nbrs, err := s.Neighbors(NodeID(v))
			if err != nil {
				continue
			}
			deg, err := s.Degree(NodeID(v))
			if err != nil || deg != len(nbrs) {
				t.Fatalf("node %d: Degree %d/%v disagrees with %d neighbors", v, deg, err, len(nbrs))
			}
		}
	})
}
