package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rewire/internal/rng"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "# Nodes: 4 Edges: 3\n0\t1\n1\t2\n2\t3\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# leading comment\n\n  \n0 1\n# interior comment\n1 2\n\n# trailing\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListCRLF(t *testing.T) {
	// Windows line endings: the scanner must not leave \r glued to the last
	// field.
	in := "# comment\r\n0\t1\r\n1\t2\r\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatalf("CRLF input rejected: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	// Non-contiguous IDs: nodes 0..6 exist, 1..4 isolated.
	in := "0 5\n5 6\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7 (max ID + 1)", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	for _, iso := range []NodeID{1, 2, 3, 4} {
		if g.Degree(iso) != 0 {
			t.Errorf("node %d should be isolated, degree %d", iso, g.Degree(iso))
		}
	}
	if !g.HasEdge(0, 5) || !g.HasEdge(5, 6) {
		t.Error("sparse edges missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListSmallHintIgnored(t *testing.T) {
	// A hint smaller than max ID + 1 is ignored.
	g, err := ReadEdgeList(strings.NewReader("0 7\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d, want 8", g.NumNodes())
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"one field", "0\n"},
		{"bad first id", "x 1\n"},
		{"bad second id", "1 y\n"},
		{"negative id", "-1 2\n"},
		{"overflow id", "99999999999 1\n"},
		{"float id", "1.5 2\n"},
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c.in), 0); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.in)
		}
	}
	// Extra fields beyond two are tolerated (SNAP files carry weights).
	if _, err := ReadEdgeList(strings.NewReader("0 1 17\n"), 0); err != nil {
		t.Errorf("three-field line rejected: %v", err)
	}
}

func TestReadEdgeListDuplicatesAndLoops(t *testing.T) {
	in := "0 1\n1 0\n0 1\n2 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (dups and self-loops dropped)", g.NumEdges())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {4, 5}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), back.Edges()) || back.NumNodes() != g.NumNodes() {
		t.Fatalf("round trip changed the graph: %v vs %v", g.Edges(), back.Edges())
	}
}

// TestCSRAdjacencyRoundTripProperty cross-checks the CSR pipeline against a
// straightforward adjacency-map reference on random multigraph inputs
// (duplicates, self-loops, both edge orientations), covering Builder,
// FromEdges, and NewFromAdjacency.
func TestCSRAdjacencyRoundTripProperty(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		m := r.Intn(4 * n)
		edges := make([]Edge, 0, m)
		ref := make([]map[NodeID]bool, n)
		for i := range ref {
			ref[i] = map[NodeID]bool{}
		}
		adj := make([][]NodeID, n)
		for i := 0; i < m; i++ {
			u := NodeID(r.Intn(n))
			v := NodeID(r.Intn(n))
			edges = append(edges, Edge{u, v})
			adj[u] = append(adj[u], v)
			if u != v {
				adj[v] = append(adj[v], u)
				ref[u][v] = true
				ref[v][u] = true
			}
		}
		for _, g := range []*Graph{FromEdges(n, edges), NewFromAdjacency(adj)} {
			if err := g.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if g.NumNodes() != n {
				t.Fatalf("trial %d: NumNodes = %d, want %d", trial, g.NumNodes(), n)
			}
			wantEdges := 0
			for u := 0; u < n; u++ {
				lst := g.Neighbors(NodeID(u))
				if len(lst) != len(ref[u]) {
					t.Fatalf("trial %d node %d: degree %d, want %d", trial, u, len(lst), len(ref[u]))
				}
				for _, v := range lst {
					if !ref[u][v] {
						t.Fatalf("trial %d: spurious edge (%d,%d)", trial, u, v)
					}
				}
				wantEdges += len(ref[u])
			}
			if g.NumEdges() != wantEdges/2 {
				t.Fatalf("trial %d: NumEdges = %d, want %d", trial, g.NumEdges(), wantEdges/2)
			}
			if g.DegreeSum() != wantEdges {
				t.Fatalf("trial %d: DegreeSum = %d, want %d", trial, g.DegreeSum(), wantEdges)
			}
		}
	}
}

// TestNeighborsViewIsAppendSafe pins the CSR aliasing contract: the returned
// view has clipped capacity, so an append cannot overwrite the next node's
// row.
func TestNeighborsViewIsAppendSafe(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	nbrs := g.Neighbors(1) // [0 2], followed in storage by node 2's row
	if cap(nbrs) != len(nbrs) {
		t.Fatalf("Neighbors view capacity %d leaks past its length %d", cap(nbrs), len(nbrs))
	}
	_ = append(nbrs, 99)
	if !reflect.DeepEqual(g.Neighbors(2), []NodeID{1, 3}) {
		t.Fatal("append through a Neighbors view corrupted the adjacent row")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintBytes(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	want := 4*4 + 4*4 // 4 offsets + 4 directed entries
	if got := g.FootprintBytes(); got != want {
		t.Fatalf("FootprintBytes = %d, want %d", got, want)
	}
}
