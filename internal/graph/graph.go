// Package graph provides the undirected-graph substrate used by every other
// component: a compact adjacency representation with sorted neighbor lists,
// builders, directed graphs with reciprocal-edge conversion (the paper's
// §V-A.2 dataset preparation), traversals, connectivity, effective diameter,
// and edge-list serialization.
//
// Node identifiers are dense int32 values in [0, N). Sorted neighbor slices
// make membership tests O(log d) and common-neighborhood intersection — the
// heart of the paper's Theorem 3 removal criterion — O(d_u + d_v).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense: a graph with N nodes uses IDs
// 0..N-1.
type NodeID = int32

// Edge is an undirected edge. By convention U <= V in normalized form.
type Edge struct {
	U, V NodeID
}

// Canon returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// EdgeKey packs a canonical edge into a single comparable 64-bit key, used by
// the overlay's delta sets.
type EdgeKey uint64

// Key returns the canonical packed key of e.
func (e Edge) Key() EdgeKey {
	c := e.Canon()
	return EdgeKey(uint64(uint32(c.U))<<32 | uint64(uint32(c.V)))
}

// KeyOf returns the packed canonical key for the edge (u, v).
func KeyOf(u, v NodeID) EdgeKey { return Edge{u, v}.Key() }

// Nodes returns the endpoints of a key in canonical (U <= V) order.
func (k EdgeKey) Nodes() (NodeID, NodeID) {
	return NodeID(uint32(k >> 32)), NodeID(uint32(k))
}

// Graph is an immutable simple undirected graph. Build one with a Builder or
// a generator from internal/gen. Neighbor lists are sorted ascending and free
// of duplicates and self-loops.
type Graph struct {
	adj   [][]NodeID
	edges int
}

// NewFromAdjacency wraps pre-built adjacency lists. The caller warrants that
// the lists are symmetric; they are sorted and deduplicated defensively and
// self-loops are dropped. Mostly useful in tests; prefer Builder elsewhere.
func NewFromAdjacency(adj [][]NodeID) *Graph {
	g := &Graph{adj: adj}
	total := 0
	for u := range adj {
		lst := adj[u]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		w := 0
		for i, v := range lst {
			if v == NodeID(u) {
				continue // self-loop
			}
			if i > 0 && w > 0 && lst[w-1] == v {
				continue // duplicate
			}
			lst[w] = v
			w++
		}
		g.adj[u] = lst[:w]
		total += w
	}
	g.edges = total / 2
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns u's sorted neighbor list. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) || u < 0 || v < 0 {
		return false
	}
	lst := g.adj[u]
	if len(g.adj[v]) < len(lst) {
		lst, v = g.adj[v], u
	}
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	return i < len(lst) && lst[i] == v
}

// Edges returns all edges in canonical order (U <= V), sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, Edge{NodeID(u), v})
			}
		}
	}
	return out
}

// CommonNeighbors returns the sorted intersection of the neighbor lists of u
// and v: |N(u) ∩ N(v)| drives the paper's removal criterion. The result is
// freshly allocated.
func (g *Graph) CommonNeighbors(u, v NodeID) []NodeID {
	return IntersectSorted(g.adj[u], g.adj[v])
}

// CountCommonNeighbors returns |N(u) ∩ N(v)| without allocating.
func (g *Graph) CountCommonNeighbors(u, v NodeID) int {
	return CountIntersectSorted(g.adj[u], g.adj[v])
}

// IntersectSorted intersects two ascending NodeID slices.
func IntersectSorted(a, b []NodeID) []NodeID {
	var out []NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// CountIntersectSorted counts the intersection size of two ascending slices.
func CountIntersectSorted(a, b []NodeID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// ContainsSorted reports whether x occurs in the ascending slice lst.
func ContainsSorted(lst []NodeID, x NodeID) bool {
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= x })
	return i < len(lst) && lst[i] == x
}

// DegreeSum returns the sum of all degrees (2 * NumEdges for consistency
// checking).
func (g *Graph) DegreeSum() int {
	s := 0
	for u := range g.adj {
		s += len(g.adj[u])
	}
	return s
}

// MinDegree returns the smallest degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	m := len(g.adj[0])
	for _, l := range g.adj[1:] {
		if len(l) < m {
			m = len(l)
		}
	}
	return m
}

// MaxDegree returns the largest degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, l := range g.adj {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// AverageDegree returns mean degree, the paper's default aggregate query for
// topological datasets.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return float64(g.DegreeSum()) / float64(len(g.adj))
}

// DegreeHistogram returns counts[d] = number of nodes of degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for _, l := range g.adj {
		counts[len(l)]++
	}
	return counts
}

// Clone returns a deep copy whose adjacency can be mutated independently
// (used by the offline overlay builder).
func (g *Graph) Clone() *Graph {
	adj := make([][]NodeID, len(g.adj))
	for u := range g.adj {
		adj[u] = append([]NodeID(nil), g.adj[u]...)
	}
	return &Graph{adj: adj, edges: g.edges}
}

// Validate checks structural invariants (sortedness, symmetry, no self loops,
// no duplicates, edge-count consistency). Generators call it in tests.
func (g *Graph) Validate() error {
	total := 0
	for u := range g.adj {
		lst := g.adj[u]
		for i, v := range lst {
			if v < 0 || int(v) >= len(g.adj) {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, v)
			}
			if v == NodeID(u) {
				return fmt.Errorf("graph: self-loop at node %d", u)
			}
			if i > 0 && lst[i-1] >= v {
				return fmt.Errorf("graph: adjacency of node %d not strictly ascending at index %d", u, i)
			}
			if !ContainsSorted(g.adj[v], NodeID(u)) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", u, v)
			}
		}
		total += len(lst)
	}
	if total != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with degree sum %d", g.edges, total)
	}
	return nil
}
